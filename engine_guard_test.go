// The engine speedup regression guard run by CI's perf-smoke job.
//
// The guard is opt-in (CMCP_PERF_GUARD=1) because it is a wall-clock
// assertion: on a developer machine running `go test ./...` alongside
// other work it would flap, and a flaky guard trains people to ignore
// red. CI runs it on an otherwise idle runner.
package cmcp_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"cmcp"
)

// TestEngineThroughputGuard compares serial and parallel engine wall
// time on the benchmark configuration, interleaving the engines and
// taking each one's best of five runs so co-tenant noise hits both
// sides alike.
//
// The threshold scales with the host, because the parallel engine's
// headroom does: the probe phase fans out across GOMAXPROCS-1 workers,
// but the sweep (commit + event processing, roughly half the serial
// profile) stays serial, so single-core hosts see only the hit-run
// batching gain (~1.1x) and even wide hosts are Amdahl-bound well
// below the naive core count. Gating "parallel >= 3x serial" would
// therefore be permanently red everywhere but a large, quiet machine;
// instead the guard asserts the parallel engine never falls below
// half the serial engine's throughput — which is exactly the class of
// regression it exists to catch (an earlier unfenced-scan bug put
// CLOCK at 0.45x and would have tripped it) — plus, on hosts wide
// enough for real fan-out, that parallel beats serial outright.
func TestEngineThroughputGuard(t *testing.T) {
	if os.Getenv("CMCP_PERF_GUARD") == "" {
		t.Skip("set CMCP_PERF_GUARD=1 to run the engine throughput guard")
	}
	minRatio := 0.5
	if runtime.GOMAXPROCS(0) >= 8 {
		minRatio = 1.0
	}
	// FIFO is the fault-heavy case; CLOCK is the scan-heavy one, whose
	// tick shootdowns exercise the rollback path hardest.
	for _, kind := range []cmcp.PolicyKind{cmcp.FIFO, cmcp.CLOCK} {
		cfg := cmcp.Config{
			Cores:       56,
			Workload:    cmcp.SCALE().Scale(0.1),
			MemoryRatio: 0.5,
			Tables:      cmcp.PSPT,
			Policy:      cmcp.PolicySpec{Kind: kind, P: -1},
			Seed:        1,
		}
		best := map[cmcp.EngineKind]time.Duration{}
		for rep := 0; rep < 5; rep++ {
			for _, eng := range []cmcp.EngineKind{cmcp.SerialEngine, cmcp.ParallelEngine} {
				c := cfg
				c.Engine = eng
				start := time.Now()
				if _, err := cmcp.Simulate(c); err != nil {
					t.Fatalf("%v/%v: %v", kind, eng, err)
				}
				el := time.Since(start)
				if cur, ok := best[eng]; !ok || el < cur {
					best[eng] = el
				}
			}
		}
		ser, par := best[cmcp.SerialEngine], best[cmcp.ParallelEngine]
		ratio := ser.Seconds() / par.Seconds()
		t.Logf("%v: serial %v, parallel %v, speedup %.2fx (floor %.2fx, GOMAXPROCS %d)",
			kind, ser, par, ratio, minRatio, runtime.GOMAXPROCS(0))
		if ratio < minRatio {
			t.Errorf("%v: parallel engine %.2fx of serial, below the %.2fx floor", kind, ratio, minRatio)
		}
	}
}
