// Package core implements the paper's primary contribution: the
// Core-Map Count based Priority (CMCP) page replacement policy (§3).
//
// CMCP exploits auxiliary knowledge that only per-core partially
// separated page tables (PSPT) can provide: the number of CPU cores
// mapping each page. Intuitively, pages mapped by many cores are (a)
// likely more important than per-core private data and (b) expensive to
// evict, because remapping them requires TLB invalidations on every
// mapping core. CMCP therefore keeps resident pages in two groups:
//
//   - a regular group maintained as a simple FIFO list, and
//   - a priority group — a priority queue ordered by core-map count —
//     holding at most a fraction p (0 <= p <= 1) of the resident pages.
//
// When a core sets up a PTE, the policy consults PSPT for the page's
// core-map count and tries to place the page into the priority group,
// displacing the current minimum if the group is full and the new page
// maps more cores. A slow aging mechanism drains stale prioritized
// pages back to FIFO so the group cannot be monopolized. Eviction takes
// the FIFO head, or the lowest-priority page when the FIFO is empty.
//
// The crucial property: no step of this requires reading or clearing
// PTE accessed bits, so CMCP issues zero statistics-related remote TLB
// invalidations — the overhead that sinks LRU-style policies on
// many-cores.
package core

import (
	"fmt"

	"cmcp/internal/dense"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
)

// DefaultP is the prioritized-pages ratio used when none is given. The
// paper tunes p per workload (Figure 9); 0.5 is a robust middle ground.
const DefaultP = 0.5

// CMCP is the Core-Map Count based Priority replacement policy.
type CMCP struct {
	host     policy.Host
	capacity int     // resident-mapping capacity (device frames / span)
	p        float64 // ratio of prioritized pages

	fifo *policy.List
	prio []prioItem  // binary min-heap by (key, seq)
	pos  dense.Index // base -> heap position

	agePeriod sim.Cycles
	ageDecay  float64
	nextAge   sim.Cycles
	seq       uint64

	// dynamic-p tuner (the paper's §5.6 future work); nil when static.
	tuner *Tuner

	// observer receives priority-group transitions; nil when nobody
	// listens (the common case — calls are guarded by one nil check).
	observer Observer
}

// Observer receives CMCP priority-group transitions. The simulator's
// flight recorder (internal/obs) satisfies it structurally; the
// interface lives here so the policy depends on nothing above it.
type Observer interface {
	// NotePromotion reports base entering the priority group with the
	// given core-map-count key.
	NotePromotion(base sim.PageID, key float64)
	// NoteDemotion reports base draining from the priority group back
	// to the FIFO list (displacement by a hotter page, or aging).
	NoteDemotion(base sim.PageID)
}

// prioItem is one page in the priority group. key starts at the page's
// core-map count and decays with aging; a page whose key falls below 1
// (a core-private page's count) drains back to FIFO.
type prioItem struct {
	base sim.PageID
	key  float64
	seq  uint64 // FIFO tie-break: older first
}

// The priority group is a value-typed binary min-heap: the root is the
// lowest-priority page, i.e. the next to be displaced or evicted from
// the group. The page-indexed position table replaces the old
// map[PageID]*prioItem, so membership tests and Remove never hash or
// allocate. (key, seq) with unique seq is a total order, so the victim
// sequence does not depend on heap layout.

func prioLess(a, b *prioItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func (c *CMCP) prioSwap(i, j int) {
	c.prio[i], c.prio[j] = c.prio[j], c.prio[i]
	c.pos.Set(c.prio[i].base, int32(i))
	c.pos.Set(c.prio[j].base, int32(j))
}

func (c *CMCP) prioUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !prioLess(&c.prio[i], &c.prio[parent]) {
			break
		}
		c.prioSwap(i, parent)
		i = parent
	}
}

func (c *CMCP) prioDown(i int) {
	n := len(c.prio)
	for {
		least := i
		if l := 2*i + 1; l < n && prioLess(&c.prio[l], &c.prio[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && prioLess(&c.prio[r], &c.prio[least]) {
			least = r
		}
		if least == i {
			return
		}
		c.prioSwap(i, least)
		i = least
	}
}

// prioRemoveAt deletes heap slot i, restoring heap order.
func (c *CMCP) prioRemoveAt(i int) prioItem {
	last := len(c.prio) - 1
	c.prioSwap(i, last)
	it := c.prio[last]
	c.prio = c.prio[:last]
	c.pos.Delete(it.base)
	if i < last {
		c.prioDown(i)
		c.prioUp(i)
	}
	return it
}

// Option customizes a CMCP instance.
type Option func(*CMCP)

// WithP sets the prioritized-pages ratio p in [0, 1].
func WithP(p float64) Option {
	return func(c *CMCP) { c.p = p }
}

// WithAgePeriod sets the aging sweep period in cycles.
func WithAgePeriod(period sim.Cycles) Option {
	return func(c *CMCP) { c.agePeriod = period }
}

// WithAgeDecay sets how much every prioritized page's key decays per
// aging sweep (default 1.0, one mapping core's worth).
func WithAgeDecay(d float64) Option {
	return func(c *CMCP) { c.ageDecay = d }
}

// WithTuner attaches a dynamic-p tuner (see Tuner).
func WithTuner(t *Tuner) Option {
	return func(c *CMCP) { c.tuner = t }
}

// WithObserver attaches a priority-group transition observer.
func WithObserver(o Observer) Option {
	return func(c *CMCP) { c.observer = o }
}

// WithArena pre-sizes the FIFO list and position table for page bases
// in [0, hint), drawing their slices from sc (RunMany's per-worker
// scratch pool).
func WithArena(sc *dense.Scratch, hint int) Option {
	return func(c *CMCP) {
		c.fifo = policy.NewListIn(sc, hint)
		c.pos = dense.NewIndex(sc, hint)
	}
}

// New creates a CMCP policy. host supplies core-map counts (PSPT);
// capacity is the number of mappings the device can hold and bounds the
// priority group at p*capacity.
func New(host policy.Host, capacity int, opts ...Option) *CMCP {
	if capacity < 0 {
		panic(fmt.Sprintf("core: negative capacity %d", capacity))
	}
	c := &CMCP{
		host:      host,
		capacity:  capacity,
		p:         DefaultP,
		fifo:      policy.NewList(),
		pos:       dense.NewIndex(nil, 0),
		agePeriod: sim.DefaultCostModel().AgePeriod,
		ageDecay:  1.0,
	}
	for _, o := range opts {
		o(c)
	}
	if c.p < 0 || c.p > 1 {
		panic(fmt.Sprintf("core: p=%v out of [0,1]", c.p))
	}
	if c.tuner != nil {
		c.tuner.attach(c)
	}
	return c
}

// Name implements policy.Policy.
func (c *CMCP) Name() string { return "CMCP" }

// P returns the current prioritized-pages ratio.
func (c *CMCP) P() float64 { return c.p }

// SetP changes the ratio at runtime (used by the dynamic tuner). A
// shrunken priority group drains lazily through aging and eviction.
func (c *CMCP) SetP(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	c.p = p
}

// maxPrio is the current priority-group bound, p * capacity.
func (c *CMCP) maxPrio() int { return int(c.p * float64(c.capacity)) }

// PTESetup implements policy.Policy. Called whenever any core installs
// a PTE for base: the policy re-reads the page's core-map count from
// PSPT and (re)considers its placement. No TLB activity is involved —
// the count is free auxiliary knowledge from the per-core page tables.
func (c *CMCP) PTESetup(base sim.PageID) {
	count := c.host.CoreMapCount(base)
	if count < 0 {
		// Running over regular page tables (no PSPT): the core-map
		// count does not exist and every page is indistinguishable.
		count = 1
	}
	key := float64(count)
	if i := c.pos.Get(base); i >= 0 {
		// Already prioritized: refresh the key if sharing grew.
		if key > c.prio[i].key {
			c.prio[i].key = key
			c.prioDown(int(i))
			c.prioUp(int(i))
		}
		return
	}
	if c.fifo.Has(base) {
		// Resident on the FIFO list; a new core mapped it. Try to
		// promote it into the priority group.
		if c.tryPromote(base, key) {
			c.fifo.Remove(base)
		}
		return
	}
	// Newly resident page.
	if !c.tryAdmit(base, key) {
		c.fifo.PushTail(base)
	}
}

// tryAdmit places a new page into the priority group if there is room
// or it beats the current minimum. The displaced minimum falls to FIFO.
func (c *CMCP) tryAdmit(base sim.PageID, key float64) bool {
	max := c.maxPrio()
	if max <= 0 {
		return false
	}
	if len(c.prio) < max {
		c.pushPrio(base, key)
		return true
	}
	if key <= c.prio[0].key {
		return false
	}
	min := c.prioRemoveAt(0)
	c.fifo.PushTail(min.base)
	if c.observer != nil {
		c.observer.NoteDemotion(min.base)
	}
	c.pushPrio(base, key)
	return true
}

// tryPromote moves a FIFO-resident page into the priority group under
// the same admission rule; the caller removes it from FIFO on success.
func (c *CMCP) tryPromote(base sim.PageID, key float64) bool {
	return c.tryAdmit(base, key)
}

func (c *CMCP) pushPrio(base sim.PageID, key float64) {
	c.seq++
	c.prio = append(c.prio, prioItem{base: base, key: key, seq: c.seq})
	c.pos.Set(base, int32(len(c.prio)-1))
	c.prioUp(len(c.prio) - 1)
	if c.observer != nil {
		c.observer.NotePromotion(base, key)
	}
}

// Victim implements policy.Policy: the FIFO head, or — only when the
// regular list is empty — the lowest-priority page (§3: "the algorithm
// either takes the first page of the regular FIFO list, or if the
// regular list is empty, the lowest priority page ... is removed").
func (c *CMCP) Victim() (sim.PageID, bool) {
	if base, ok := c.fifo.PopHead(); ok {
		return base, true
	}
	if len(c.prio) == 0 {
		return 0, false
	}
	it := c.prioRemoveAt(0)
	return it.base, true
}

// Remove implements policy.Policy.
func (c *CMCP) Remove(base sim.PageID) {
	if i := c.pos.Get(base); i >= 0 {
		c.prioRemoveAt(int(i))
		return
	}
	c.fifo.Remove(base)
}

// Resident implements policy.Policy.
func (c *CMCP) Resident() int { return c.fifo.Len() + len(c.prio) }

// Groups returns the (fifo, priority) group sizes for tests and the
// Figure 9 analysis.
func (c *CMCP) Groups() (fifo, prio int) { return c.fifo.Len(), len(c.prio) }

// Tick implements policy.Policy: the aging sweep. Every agePeriod all
// prioritized pages' keys decay by ageDecay; pages whose key drops
// below 1 (no better than core-private) fall back to the FIFO list, so
// pages that are no longer shared cannot monopolize the priority group.
// Aging also enforces a shrunken bound after SetP.
func (c *CMCP) Tick(now sim.Cycles) {
	if c.tuner != nil {
		c.tuner.tick(now)
	}
	if c.nextAge == 0 {
		// First tick: arm the timer one full period out. Sweeping here
		// would decay freshly promoted keys a whole period early.
		c.nextAge = now + c.agePeriod
		return
	}
	if now < c.nextAge {
		return
	}
	c.nextAge = now + c.agePeriod
	for i := range c.prio {
		c.prio[i].key -= c.ageDecay
	}
	// Keys changed uniformly, so heap order is preserved; only drain
	// the underflowed minimums and any excess over the (possibly
	// reduced) bound.
	for len(c.prio) > 0 && (c.prio[0].key < 1 || len(c.prio) > c.maxPrio()) {
		it := c.prioRemoveAt(0)
		c.fifo.PushTail(it.base)
		if c.observer != nil {
			c.observer.NoteDemotion(it.base)
		}
	}
}

// CheckInvariants verifies the policy's internal consistency: the heap
// satisfies the (key, seq) min-heap property, the position index is an
// exact inverse of the heap layout, and no page sits in both groups.
// The invariant auditor (internal/check) calls it through a type
// assertion; it is read-only and safe at any point between operations.
func (c *CMCP) CheckInvariants() error {
	for i := 1; i < len(c.prio); i++ {
		parent := (i - 1) / 2
		if prioLess(&c.prio[i], &c.prio[parent]) {
			return fmt.Errorf("core: heap violation at %d: (%v,%d) < parent (%v,%d)",
				i, c.prio[i].key, c.prio[i].seq, c.prio[parent].key, c.prio[parent].seq)
		}
	}
	for i := range c.prio {
		base := c.prio[i].base
		if got := c.pos.Get(base); int(got) != i {
			return fmt.Errorf("core: pos[%d] = %d, want heap slot %d", base, got, i)
		}
		if c.fifo.Has(base) {
			return fmt.Errorf("core: page %d in both priority group and FIFO", base)
		}
	}
	count := 0
	c.pos.Range(func(sim.PageID, int32) bool { count++; return true })
	if count != len(c.prio) {
		return fmt.Errorf("core: pos holds %d entries, heap holds %d", count, len(c.prio))
	}
	return nil
}

// NoteFault lets the VM report a major page fault to the policy; CMCP
// forwards it to the dynamic-p tuner when one is attached. The method
// satisfies the optional vm.FaultObserver extension.
func (c *CMCP) NoteFault() {
	if c.tuner != nil {
		c.tuner.noteFault()
	}
}
