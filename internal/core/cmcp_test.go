package core

import (
	"testing"
	"testing/quick"

	"cmcp/internal/sim"
)

// countHost serves scripted core-map counts; ScanAccessed must never be
// called — CMCP's defining property.
type countHost struct {
	t      *testing.T
	counts map[sim.PageID]int
}

func newCountHost(t *testing.T) *countHost {
	return &countHost{t: t, counts: make(map[sim.PageID]int)}
}

func (h *countHost) CoreMapCount(base sim.PageID) int {
	if c, ok := h.counts[base]; ok {
		return c
	}
	return 1
}

func (h *countHost) ScanAccessed(base sim.PageID) bool {
	if h.t != nil {
		h.t.Fatalf("CMCP must never scan access bits (page %d)", base)
	}
	return false
}

func TestCMCPName(t *testing.T) {
	c := New(newCountHost(t), 10)
	if c.Name() != "CMCP" || c.P() != DefaultP {
		t.Error("name/p defaults")
	}
}

func TestCMCPInvalidArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { New(newCountHost(nil), -1) },
		func() { New(newCountHost(nil), 10, WithP(-0.1)) },
		func() { New(newCountHost(nil), 10, WithP(1.1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCMCPWithPZeroEqualsFIFO(t *testing.T) {
	// With p converging to 0 the algorithm falls back to plain FIFO
	// (paper §3). Verify eviction order matches insertion order.
	h := newCountHost(t)
	c := New(h, 100, WithP(0))
	h.counts[1] = 50
	h.counts[2] = 1
	h.counts[3] = 30
	for _, p := range []sim.PageID{1, 2, 3} {
		c.PTESetup(p)
	}
	for _, want := range []sim.PageID{1, 2, 3} {
		v, ok := c.Victim()
		if !ok || v != want {
			t.Errorf("Victim = %d, want %d", v, want)
		}
	}
}

func TestCMCPWithPOneAllPrioritized(t *testing.T) {
	// With p approaching 1 all pages are ordered by core-map count.
	h := newCountHost(t)
	c := New(h, 3, WithP(1))
	h.counts[10] = 5
	h.counts[20] = 2
	h.counts[30] = 9
	for _, p := range []sim.PageID{10, 20, 30} {
		c.PTESetup(p)
	}
	fifo, prio := c.Groups()
	if fifo != 0 || prio != 3 {
		t.Fatalf("groups = %d/%d, want 0/3", fifo, prio)
	}
	// Eviction order: ascending core-map count.
	for _, want := range []sim.PageID{20, 10, 30} {
		v, ok := c.Victim()
		if !ok || v != want {
			t.Errorf("Victim = %d, want %d", v, want)
		}
	}
}

func TestCMCPDisplacementOfMinimum(t *testing.T) {
	h := newCountHost(t)
	c := New(h, 2, WithP(0.5)) // priority group holds 1 page
	h.counts[1] = 2
	h.counts[2] = 6
	c.PTESetup(1) // enters priority group (room available)
	c.PTESetup(2) // count 6 > min 2: displaces page 1 to FIFO
	fifo, prio := c.Groups()
	if fifo != 1 || prio != 1 {
		t.Fatalf("groups = %d/%d", fifo, prio)
	}
	v, _ := c.Victim() // FIFO head = displaced page 1
	if v != 1 {
		t.Errorf("Victim = %d, want displaced page 1", v)
	}
	v, _ = c.Victim()
	if v != 2 {
		t.Errorf("Victim = %d, want prioritized page 2", v)
	}
}

func TestCMCPLowCountGoesToFIFO(t *testing.T) {
	h := newCountHost(t)
	c := New(h, 2, WithP(0.5))
	h.counts[1] = 6
	h.counts[2] = 2
	c.PTESetup(1)
	c.PTESetup(2) // count 2 < min 6 and group full: FIFO
	fifo, prio := c.Groups()
	if fifo != 1 || prio != 1 {
		t.Fatalf("groups = %d/%d", fifo, prio)
	}
	v, _ := c.Victim()
	if v != 2 {
		t.Errorf("Victim = %d, want FIFO page 2", v)
	}
}

func TestCMCPPromotionOnLaterSetup(t *testing.T) {
	// A page that entered FIFO gets promoted when additional cores map
	// it and its count now beats the priority minimum.
	h := newCountHost(t)
	c := New(h, 2, WithP(0.5))
	h.counts[1] = 4
	h.counts[2] = 1
	c.PTESetup(1) // prio
	c.PTESetup(2) // fifo (count 1)
	h.counts[2] = 8
	c.PTESetup(2) // another core mapped page 2: promote, displace 1
	fifo, prio := c.Groups()
	if fifo != 1 || prio != 1 {
		t.Fatalf("groups = %d/%d", fifo, prio)
	}
	v, _ := c.Victim()
	if v != 1 {
		t.Errorf("Victim = %d, want displaced page 1", v)
	}
}

func TestCMCPKeyRefreshInPriorityGroup(t *testing.T) {
	h := newCountHost(t)
	c := New(h, 4, WithP(1))
	h.counts[1] = 3
	h.counts[2] = 2
	c.PTESetup(1)
	c.PTESetup(2)
	h.counts[2] = 7
	c.PTESetup(2) // refresh key in place
	v, _ := c.Victim()
	if v != 1 {
		t.Errorf("Victim = %d, want 1 (page 2 refreshed to 7)", v)
	}
}

func TestCMCPAgingDrainsToFIFO(t *testing.T) {
	h := newCountHost(t)
	c := New(h, 4, WithP(1), WithAgePeriod(100), WithAgeDecay(1))
	h.counts[1] = 2
	h.counts[2] = 3
	c.PTESetup(1)
	c.PTESetup(2)
	c.Tick(100) // first tick only arms the timer; no decay
	fifo, prio := c.Groups()
	if fifo != 0 || prio != 2 {
		t.Fatalf("after arming tick: groups = %d/%d", fifo, prio)
	}
	c.Tick(200) // sweep 1, keys: 1, 2 — both still >= 1, nothing drains yet
	fifo, prio = c.Groups()
	if fifo != 0 || prio != 2 {
		t.Fatalf("after 1 sweep: groups = %d/%d", fifo, prio)
	}
	c.Tick(300) // sweep 2, keys: 0, 1 — page 1 underflows (<1) and drains
	fifo, prio = c.Groups()
	if fifo != 1 || prio != 1 {
		t.Fatalf("after 2 sweeps: groups = %d/%d", fifo, prio)
	}
	c.Tick(400) // sweep 3: page 2 drains
	fifo, prio = c.Groups()
	if fifo != 2 || prio != 0 {
		t.Fatalf("after 3 sweeps: groups = %d/%d", fifo, prio)
	}
	// Drain order: page 1 aged out first, so it is the FIFO head.
	v, _ := c.Victim()
	if v != 1 {
		t.Errorf("Victim = %d, want 1", v)
	}
}

func TestCMCPAgingRespectsPeriod(t *testing.T) {
	h := newCountHost(t)
	c := New(h, 4, WithP(1), WithAgePeriod(1000))
	h.counts[1] = 2
	c.PTESetup(1)
	c.Tick(0)   // first tick only arms the timer (next sweep at t=1000)
	c.Tick(500) // before period: no decay
	_, prio := c.Groups()
	if prio != 1 {
		t.Fatalf("premature aging")
	}
	c.Tick(1000) // first sweep: key 2 -> 1, stays
	_, prio = c.Groups()
	if prio != 1 {
		t.Fatalf("key >= 1 drained early")
	}
	c.Tick(2000) // key 1 -> 0: drains
	_, prio = c.Groups()
	if prio != 0 {
		t.Error("aging missed")
	}
}

func TestCMCPSetPShrinksGroup(t *testing.T) {
	h := newCountHost(t)
	c := New(h, 4, WithP(1), WithAgePeriod(10))
	for p := sim.PageID(1); p <= 4; p++ {
		h.counts[p] = 10
		c.PTESetup(p)
	}
	c.SetP(0.25) // bound shrinks to 1
	c.Tick(10)   // arms the aging timer
	c.Tick(20)   // aging enforces the new bound
	fifo, prio := c.Groups()
	if prio != 1 || fifo != 3 {
		t.Errorf("groups after shrink = %d/%d, want 3/1", fifo, prio)
	}
	c.SetP(-5)
	if c.P() != 0 {
		t.Error("SetP must clamp")
	}
	c.SetP(5)
	if c.P() != 1 {
		t.Error("SetP must clamp")
	}
}

func TestCMCPRemove(t *testing.T) {
	h := newCountHost(t)
	c := New(h, 4, WithP(0.5))
	h.counts[1] = 5
	c.PTESetup(1) // prio
	h.counts[2] = 1
	c.PTESetup(2) // prio (room: bound is 2)
	h.counts[3] = 1
	c.PTESetup(3) // fifo
	c.Remove(1)   // from priority group
	c.Remove(3)   // from fifo
	c.Remove(99)  // unknown
	if c.Resident() != 1 {
		t.Errorf("Resident = %d", c.Resident())
	}
	v, ok := c.Victim()
	if !ok || v != 2 {
		t.Errorf("Victim = %d", v)
	}
}

func TestCMCPVictimEmptyAndOrder(t *testing.T) {
	h := newCountHost(t)
	c := New(h, 2, WithP(0.5))
	if _, ok := c.Victim(); ok {
		t.Error("empty CMCP")
	}
	// FIFO is preferred over priority for eviction.
	h.counts[1] = 9
	c.PTESetup(1) // prio
	h.counts[2] = 1
	c.PTESetup(2) // fifo
	v, _ := c.Victim()
	if v != 2 {
		t.Errorf("Victim = %d, want FIFO page first", v)
	}
	v, _ = c.Victim()
	if v != 1 {
		t.Errorf("Victim = %d, want priority page last", v)
	}
}

func TestCMCPRegularPTFallback(t *testing.T) {
	// Host returning -1 (regular page tables, no PSPT) must not break
	// placement: every page gets count 1.
	h := &countHost{} // nil t: ScanAccessed won't be called anyway
	for k := range h.counts {
		delete(h.counts, k)
	}
	c := New(hostNeg{}, 4, WithP(0.5))
	c.PTESetup(1)
	c.PTESetup(2)
	if c.Resident() != 2 {
		t.Error("fallback placement failed")
	}
	_ = h
}

type hostNeg struct{}

func (hostNeg) CoreMapCount(sim.PageID) int  { return -1 }
func (hostNeg) ScanAccessed(sim.PageID) bool { return false }

func TestCMCPGroupBoundInvariantProperty(t *testing.T) {
	// Property: the priority group never exceeds p*capacity, no page is
	// tracked twice, and Resident is exact — under arbitrary workloads.
	f := func(ops []uint16, pRaw uint8) bool {
		p := float64(pRaw%101) / 100
		h := &scriptHost{counts: make(map[sim.PageID]int)}
		const capacity = 32
		c := New(h, capacity, WithP(p), WithAgePeriod(50))
		resident := make(map[sim.PageID]bool)
		var now sim.Cycles
		for _, op := range ops {
			base := sim.PageID(op % 64)
			switch op >> 13 {
			case 0, 1, 2, 3:
				h.counts[base] = int(op%8) + 1
				c.PTESetup(base)
				resident[base] = true
			case 4:
				c.Remove(base)
				delete(resident, base)
			case 5:
				now += 50
				c.Tick(now)
			default:
				if v, ok := c.Victim(); ok {
					if !resident[v] {
						return false
					}
					delete(resident, v)
				}
			}
			fifo, prio := c.Groups()
			if prio > int(p*capacity) {
				return false
			}
			if fifo+prio != len(resident) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

type scriptHost struct{ counts map[sim.PageID]int }

func (h *scriptHost) CoreMapCount(base sim.PageID) int {
	if c, ok := h.counts[base]; ok {
		return c
	}
	return 1
}
func (h *scriptHost) ScanAccessed(sim.PageID) bool { return false }

func TestTunerAdjustsP(t *testing.T) {
	h := newCountHost(t)
	tuner := NewTuner(TunerConfig{Window: 100, InitialStep: 0.25})
	c := New(h, 10, WithP(0.5), WithTuner(tuner))
	p0 := c.P()
	c.NoteFault()
	c.NoteFault()
	c.Tick(100) // first window: establishes baseline, moves p
	if c.P() == p0 {
		t.Error("tuner must move p after the first window")
	}
	// Worsening fault rate must reverse direction and shrink the step.
	for i := 0; i < 50; i++ {
		c.NoteFault()
	}
	p1 := c.P()
	dir1 := p1 - p0
	c.Tick(200)
	p2 := c.P()
	dir2 := p2 - p1
	if dir1*dir2 >= 0 {
		t.Errorf("tuner must reverse on worse rate: %v then %v", dir1, dir2)
	}
	if len(tuner.History) != 2 {
		t.Errorf("history = %d entries", len(tuner.History))
	}
}

func TestTunerStaysInRange(t *testing.T) {
	h := newCountHost(t)
	tuner := NewTuner(TunerConfig{Window: 10, InitialStep: 0.5})
	c := New(h, 10, WithP(0.9), WithTuner(tuner))
	var now sim.Cycles
	for i := 0; i < 100; i++ {
		now += 10
		c.NoteFault()
		c.Tick(now)
		if c.P() < 0 || c.P() > 1 {
			t.Fatalf("p = %v escaped [0,1]", c.P())
		}
	}
}

func TestTunerDefaults(t *testing.T) {
	tn := NewTuner(TunerConfig{})
	if tn.window == 0 || tn.step == 0 {
		t.Error("defaults not applied")
	}
}

// recordingObserver captures promotion/demotion notifications.
type recordingObserver struct {
	promotions map[sim.PageID]float64
	demotions  []sim.PageID
}

func (o *recordingObserver) NotePromotion(base sim.PageID, key float64) {
	if o.promotions == nil {
		o.promotions = make(map[sim.PageID]float64)
	}
	o.promotions[base] = key
}

func (o *recordingObserver) NoteDemotion(base sim.PageID) {
	o.demotions = append(o.demotions, base)
}

func TestCMCPObserverSeesTransitions(t *testing.T) {
	h := newCountHost(t)
	o := &recordingObserver{}
	c := New(h, 4, WithP(0.5), WithObserver(o)) // priority group holds 2

	h.counts[10], h.counts[11], h.counts[12] = 3, 2, 5
	c.PTESetup(10) // admitted (room)
	c.PTESetup(11) // admitted (room)
	c.PTESetup(12) // displaces 11 (the minimum)
	if len(o.promotions) != 3 {
		t.Fatalf("promotions = %v, want 10, 11, 12", o.promotions)
	}
	if o.promotions[10] != 3 || o.promotions[12] != 5 {
		t.Errorf("promotion keys %v", o.promotions)
	}
	if len(o.demotions) != 1 || o.demotions[0] != 11 {
		t.Fatalf("demotions = %v, want [11]", o.demotions)
	}

	// Aging drains both remaining prioritized pages (keys 3 and 5 fall
	// below 1 after five sweeps; the first tick only arms the timer).
	for i := 0; i < 6; i++ {
		c.Tick(sim.Cycles(i+1) * sim.DefaultCostModel().AgePeriod)
	}
	if len(o.demotions) != 3 {
		t.Errorf("after aging demotions = %v, want 10 and 12 drained too", o.demotions)
	}
	if f, p := c.Groups(); p != 0 || f != 3 {
		t.Errorf("groups after aging: fifo=%d prio=%d", f, p)
	}
}

func TestCMCPNoObserverNoPanic(t *testing.T) {
	h := newCountHost(t)
	c := New(h, 4, WithP(0.5))
	h.counts[1] = 4
	c.PTESetup(1)
	c.PTESetup(2)
	c.Tick(sim.DefaultCostModel().AgePeriod * 10)
	if _, ok := c.Victim(); !ok {
		t.Fatal("victim expected")
	}
}
