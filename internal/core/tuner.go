package core

import "cmcp/internal/sim"

// Tuner adjusts CMCP's prioritized-pages ratio p at runtime from page
// fault frequency feedback. The paper sets p manually and names dynamic
// adjustment "based on runtime performance feedback (such as page fault
// frequency)" as future work (§5.6); this is that mechanism.
//
// The tuner is a simple hill climber: it measures faults per window,
// compares with the previous window, and keeps moving p in the same
// direction while the fault rate improves, reversing direction when it
// worsens. The step size halves on each reversal so p converges.
type Tuner struct {
	cmcp *CMCP

	window    sim.Cycles
	nextEval  sim.Cycles
	faults    uint64
	prevRate  float64
	havePrev  bool
	step      float64
	direction float64

	// History records (p, faults) per window for analysis.
	History []TunerSample
}

// TunerSample is one evaluation window's record.
type TunerSample struct {
	P      float64
	Faults uint64
}

// TunerConfig parameterizes a Tuner.
type TunerConfig struct {
	// Window is the evaluation period; defaults to 50 ms of simulated
	// time — several LRU scan periods, long enough for the fault rate
	// to respond to a p change.
	Window sim.Cycles
	// InitialStep is the first p adjustment; defaults to 0.25.
	InitialStep float64
}

// NewTuner creates a dynamic-p tuner. Attach it with WithTuner.
func NewTuner(cfg TunerConfig) *Tuner {
	if cfg.Window == 0 {
		cfg.Window = 5 * sim.DefaultCostModel().ScanPeriod
	}
	if cfg.InitialStep == 0 {
		cfg.InitialStep = 0.25
	}
	return &Tuner{window: cfg.Window, step: cfg.InitialStep, direction: 1}
}

func (t *Tuner) attach(c *CMCP) { t.cmcp = c }

func (t *Tuner) noteFault() { t.faults++ }

// tick is called from CMCP.Tick with the current virtual time.
func (t *Tuner) tick(now sim.Cycles) {
	if now < t.nextEval {
		return
	}
	t.nextEval = now + t.window
	rate := float64(t.faults)
	t.History = append(t.History, TunerSample{P: t.cmcp.P(), Faults: t.faults})
	t.faults = 0
	if !t.havePrev {
		t.prevRate = rate
		t.havePrev = true
		t.move()
		return
	}
	if rate > t.prevRate {
		// Got worse: reverse and shrink the step.
		t.direction = -t.direction
		t.step /= 2
		if t.step < 0.01 {
			t.step = 0.01
		}
	}
	t.prevRate = rate
	t.move()
}

func (t *Tuner) move() {
	p := t.cmcp.P() + t.direction*t.step
	// Bounce off the ends of the [0,1] range.
	if p < 0 || p > 1 {
		t.direction = -t.direction
		p = t.cmcp.P() + t.direction*t.step
	}
	t.cmcp.SetP(p)
}
