package policy

import (
	"cmcp/internal/dense"
	"cmcp/internal/sim"
)

// FIFO is the baseline first-in first-out policy: pages are evicted in
// the order they became resident. It needs no usage statistics and
// therefore causes no statistics shootdowns — the property that,
// surprisingly, lets it beat LRU on many-cores (paper §5.4).
type FIFO struct {
	list *List
}

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO { return &FIFO{list: NewList()} }

// NewFIFOIn returns a FIFO policy whose list is pre-sized for page
// bases in [0, hint) and drawn from sc.
func NewFIFOIn(sc *dense.Scratch, hint int) *FIFO {
	return &FIFO{list: NewListIn(sc, hint)}
}

// Name implements Policy.
func (f *FIFO) Name() string { return "FIFO" }

// PTESetup implements Policy. Only the first setup (the fault that
// brought the page in) enqueues; later cores' minor faults leave the
// queue position unchanged.
func (f *FIFO) PTESetup(base sim.PageID) {
	if !f.list.Has(base) {
		f.list.PushTail(base)
	}
}

// Victim implements Policy: the oldest resident page.
func (f *FIFO) Victim() (sim.PageID, bool) { return f.list.PopHead() }

// Remove implements Policy.
func (f *FIFO) Remove(base sim.PageID) { f.list.Remove(base) }

// Tick implements Policy (no periodic work).
func (f *FIFO) Tick(sim.Cycles) {}

// Resident implements Policy.
func (f *FIFO) Resident() int { return f.list.Len() }
