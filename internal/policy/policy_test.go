package policy

import (
	"testing"
	"testing/quick"

	"cmcp/internal/sim"
)

// fakeHost records scan calls and serves scripted accessed bits.
type fakeHost struct {
	accessed map[sim.PageID]bool
	scans    int
	counts   map[sim.PageID]int
}

func newFakeHost() *fakeHost {
	return &fakeHost{accessed: make(map[sim.PageID]bool), counts: make(map[sim.PageID]int)}
}

func (h *fakeHost) CoreMapCount(base sim.PageID) int {
	if c, ok := h.counts[base]; ok {
		return c
	}
	return 1
}

func (h *fakeHost) ScanAccessed(base sim.PageID) bool {
	h.scans++
	a := h.accessed[base]
	h.accessed[base] = false // test-and-clear semantics
	return a
}

func TestPageListBasics(t *testing.T) {
	l := NewList()
	if _, ok := l.PopHead(); ok {
		t.Error("pop from empty")
	}
	l.PushTail(1)
	l.PushTail(2)
	l.PushTail(3)
	if l.Len() != 3 || !l.Has(2) {
		t.Error("len/has")
	}
	if !l.Remove(2) || l.Remove(2) {
		t.Error("remove semantics")
	}
	b, _ := l.PopHead()
	if b != 1 {
		t.Errorf("popHead = %d", b)
	}
	l.PushTail(4)
	l.MoveToTail(3)
	b, _ = l.PopHead()
	if b != 4 {
		t.Errorf("after moveToTail popHead = %d", b)
	}
}

func TestPageListDoublePushPanics(t *testing.T) {
	l := NewList()
	l.PushTail(1)
	defer func() {
		if recover() == nil {
			t.Error("double push must panic")
		}
	}()
	l.PushTail(1)
}

func TestPageListOrderProperty(t *testing.T) {
	// Property: popHead drains in push order when nothing is removed.
	f := func(n uint8) bool {
		l := NewList()
		k := int(n%50) + 1
		for i := 0; i < k; i++ {
			l.PushTail(sim.PageID(i))
		}
		for i := 0; i < k; i++ {
			b, ok := l.PopHead()
			if !ok || b != sim.PageID(i) {
				return false
			}
		}
		_, ok := l.PopHead()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	if f.Name() != "FIFO" {
		t.Error("name")
	}
	f.PTESetup(10)
	f.PTESetup(20)
	f.PTESetup(10) // minor fault by another core: no reordering
	f.PTESetup(30)
	if f.Resident() != 3 {
		t.Errorf("Resident = %d", f.Resident())
	}
	want := []sim.PageID{10, 20, 30}
	for _, w := range want {
		v, ok := f.Victim()
		if !ok || v != w {
			t.Errorf("Victim = %d, want %d", v, w)
		}
	}
	if _, ok := f.Victim(); ok {
		t.Error("empty FIFO must report no victim")
	}
}

func TestFIFORemove(t *testing.T) {
	f := NewFIFO()
	f.PTESetup(1)
	f.PTESetup(2)
	f.Remove(1)
	f.Remove(99) // unknown: ignored
	v, _ := f.Victim()
	if v != 2 {
		t.Errorf("Victim = %d", v)
	}
	f.Tick(0) // no-op, must not panic
}

func TestLRUNewPagesInactive(t *testing.T) {
	h := newFakeHost()
	l := NewLRU(h)
	l.PTESetup(1)
	l.PTESetup(2)
	a, i := l.Lists()
	if a != 0 || i != 2 {
		t.Errorf("lists = %d/%d, want 0 active, 2 inactive", a, i)
	}
	// A repeat setup (minor fault) promotes to active.
	l.PTESetup(1)
	a, i = l.Lists()
	if a != 1 || i != 1 {
		t.Errorf("after promote: %d/%d", a, i)
	}
}

func TestLRUVictimFromInactive(t *testing.T) {
	h := newFakeHost()
	l := NewLRU(h)
	l.PTESetup(1)
	l.PTESetup(2)
	l.PTESetup(1) // 1 active
	v, ok := l.Victim()
	if !ok || v != 2 {
		t.Errorf("Victim = %d, want inactive page 2", v)
	}
	// Inactive empty: falls back to active.
	v, ok = l.Victim()
	if !ok || v != 1 {
		t.Errorf("fallback Victim = %d", v)
	}
}

func TestLRUScannerMovesPages(t *testing.T) {
	h := newFakeHost()
	l := NewLRU(h, WithScanPeriod(100), WithScanBatch(100))
	l.PTESetup(1)
	l.PTESetup(2)
	// Page 1 gets accessed; the scanner must promote it.
	h.accessed[1] = true
	l.Tick(100)
	a, i := l.Lists()
	if a != 1 || i != 1 {
		t.Fatalf("after scan: active=%d inactive=%d", a, i)
	}
	if h.scans == 0 {
		t.Error("scanner must consult access bits")
	}
	// Next period: page 1 idle on active list → demoted.
	l.Tick(200)
	a, i = l.Lists()
	if a != 0 || i != 2 {
		t.Errorf("after idle scan: active=%d inactive=%d", a, i)
	}
}

func TestLRUTickRespectsPeriod(t *testing.T) {
	h := newFakeHost()
	l := NewLRU(h, WithScanPeriod(1000))
	l.PTESetup(1)
	l.Tick(0) // first tick scans immediately (nextScan starts at 0)
	n := h.scans
	l.Tick(500) // before period: no scan
	if h.scans != n {
		t.Error("scan before period expiry")
	}
	l.Tick(1000)
	if h.scans == n {
		t.Error("scan after period expiry missing")
	}
}

func TestLRURemove(t *testing.T) {
	h := newFakeHost()
	l := NewLRU(h)
	l.PTESetup(1)
	l.PTESetup(2)
	l.PTESetup(2) // active
	l.Remove(2)
	l.Remove(1)
	l.Remove(7) // unknown
	if l.Resident() != 0 {
		t.Errorf("Resident = %d", l.Resident())
	}
}

func TestClockSecondChance(t *testing.T) {
	h := newFakeHost()
	c := NewClock(h)
	c.PTESetup(1)
	c.PTESetup(2)
	c.PTESetup(3)
	// Page 1 recently accessed: gets a second chance, 2 is evicted.
	h.accessed[1] = true
	v, ok := c.Victim()
	if !ok || v != 2 {
		t.Errorf("Victim = %d, want 2", v)
	}
	// Hand order now 3, 1 — both bits clear, 3 goes next.
	v, _ = c.Victim()
	if v != 3 {
		t.Errorf("second Victim = %d, want 3", v)
	}
}

func TestClockAllAccessed(t *testing.T) {
	h := newFakeHost()
	c := NewClock(h)
	for p := sim.PageID(1); p <= 3; p++ {
		c.PTESetup(p)
		h.accessed[p] = true
	}
	// All accessed: after one clearing lap the hand evicts page 1.
	v, ok := c.Victim()
	if !ok || v != 1 {
		t.Errorf("Victim = %d, want 1 after full lap", v)
	}
	if c.Resident() != 2 {
		t.Errorf("Resident = %d", c.Resident())
	}
}

func TestClockEmpty(t *testing.T) {
	c := NewClock(newFakeHost())
	if _, ok := c.Victim(); ok {
		t.Error("empty clock")
	}
	c.Remove(9)
	c.Tick(0)
}

func TestLFUVictimIsLeastFrequent(t *testing.T) {
	h := newFakeHost()
	l := NewLFU(h)
	l.PTESetup(1)
	l.PTESetup(2)
	l.PTESetup(3)
	l.PTESetup(2) // freq 2
	l.PTESetup(2) // freq 3
	l.PTESetup(3) // freq 2
	v, ok := l.Victim()
	if !ok || v != 1 {
		t.Errorf("Victim = %d, want least-frequent 1", v)
	}
	v, _ = l.Victim()
	if v != 3 {
		t.Errorf("second Victim = %d, want 3 (freq 2, older seq than... )", v)
	}
}

func TestLFUScanIncrementsAndDecays(t *testing.T) {
	h := newFakeHost()
	l := NewLFU(h, WithLFUScanPeriod(10), WithLFUScanBatch(100))
	l.PTESetup(1)
	l.PTESetup(2)
	l.PTESetup(2) // 2 has freq 2
	// Page 1 gets sampled as accessed twice: freq 1 -> 3 -> 5.
	h.accessed[1] = true
	l.Tick(10)
	h.accessed[1] = true
	l.Tick(20)
	// Page 2 decayed twice: freq 2 -> 1 -> 1.
	v, _ := l.Victim()
	if v != 2 {
		t.Errorf("Victim = %d, want decayed page 2", v)
	}
}

func TestLFURemoveAndEmpty(t *testing.T) {
	h := newFakeHost()
	l := NewLFU(h)
	if _, ok := l.Victim(); ok {
		t.Error("empty LFU")
	}
	l.PTESetup(5)
	l.Remove(5)
	l.Remove(5)
	if l.Resident() != 0 {
		t.Error("Remove failed")
	}
	l.Tick(sim.DefaultCostModel().ScanPeriod) // empty tick must not panic
}

func TestRandomPolicy(t *testing.T) {
	r := NewRandom(1)
	if _, ok := r.Victim(); ok {
		t.Error("empty random")
	}
	for p := sim.PageID(0); p < 100; p++ {
		r.PTESetup(p)
	}
	r.PTESetup(5) // duplicate ignored
	if r.Resident() != 100 {
		t.Errorf("Resident = %d", r.Resident())
	}
	seen := make(map[sim.PageID]bool)
	for i := 0; i < 100; i++ {
		v, ok := r.Victim()
		if !ok || seen[v] {
			t.Fatalf("victim %d repeated or missing", v)
		}
		seen[v] = true
	}
	if r.Resident() != 0 {
		t.Error("drain failed")
	}
}

func TestRandomRemove(t *testing.T) {
	r := NewRandom(2)
	r.PTESetup(1)
	r.PTESetup(2)
	r.Remove(1)
	v, ok := r.Victim()
	if !ok || v != 2 {
		t.Errorf("Victim = %d", v)
	}
	r.Remove(99)
	r.Tick(0)
}

// policiesUnderTest builds one of each policy for the generic suites.
func policiesUnderTest(h Host) []Policy {
	return []Policy{NewFIFO(), NewLRU(h), NewClock(h), NewLFU(h), NewRandom(3)}
}

func TestAllPoliciesDrainCompletely(t *testing.T) {
	h := newFakeHost()
	for _, p := range policiesUnderTest(h) {
		for i := sim.PageID(0); i < 50; i++ {
			p.PTESetup(i)
		}
		got := make(map[sim.PageID]bool)
		for {
			v, ok := p.Victim()
			if !ok {
				break
			}
			if got[v] {
				t.Fatalf("%s: victim %d returned twice", p.Name(), v)
			}
			got[v] = true
		}
		if len(got) != 50 {
			t.Errorf("%s: drained %d pages, want 50", p.Name(), len(got))
		}
		if p.Resident() != 0 {
			t.Errorf("%s: Resident = %d after drain", p.Name(), p.Resident())
		}
	}
}

func TestAllPoliciesResidencyInvariantProperty(t *testing.T) {
	// Property: Resident() always equals |setup pages| - |victims| -
	// |removed|, and Victim never returns a page that was removed.
	f := func(ops []uint16) bool {
		h := newFakeHost()
		for _, p := range policiesUnderTest(h) {
			tracked := make(map[sim.PageID]bool)
			for _, op := range ops {
				base := sim.PageID(op % 64)
				switch op >> 13 {
				case 0, 1, 2, 3:
					p.PTESetup(base)
					tracked[base] = true
				case 4, 5:
					p.Remove(base)
					delete(tracked, base)
				default:
					v, ok := p.Victim()
					if ok {
						if !tracked[v] {
							return false
						}
						delete(tracked, v)
					} else if len(tracked) != 0 {
						return false
					}
				}
				if p.Resident() != len(tracked) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
