package policy

import (
	"cmcp/internal/dense"
	"cmcp/internal/sim"
)

// LRU approximates least-recently-used the way the Linux kernel does
// (and the way the paper's comparison implementation does, §5.1): pages
// live on an active or an inactive list; a timer-driven scanner
// periodically tests and clears PTE accessed bits to move pages between
// the lists; victims come from the inactive tail.
//
// Every accessed-bit clear requires invalidating the cached translation
// on all mapping cores — the remote TLB invalidations that Table 1
// shows exploding and that make LRU lose to FIFO despite achieving
// fewer page faults. Those costs are charged inside Host.ScanAccessed.
type LRU struct {
	host     Host
	active   *List
	inactive *List

	// ScanPeriod is the virtual time between scanner runs (the paper
	// uses a 10 ms timer). ScanBatch bounds PTEs scanned per run.
	scanPeriod sim.Cycles
	scanBatch  int
	nextScan   sim.Cycles

	scratch []sim.PageID
}

// LRUOption customizes an LRU instance.
type LRUOption func(*LRU)

// WithScanPeriod sets the scanner period in cycles.
func WithScanPeriod(p sim.Cycles) LRUOption {
	return func(l *LRU) { l.scanPeriod = p }
}

// WithScanBatch caps the number of pages examined per scanner run.
func WithScanBatch(n int) LRUOption {
	return func(l *LRU) { l.scanBatch = n }
}

// WithLRUArena pre-sizes both lists for page bases in [0, hint) with
// link slices drawn from sc.
func WithLRUArena(sc *dense.Scratch, hint int) LRUOption {
	return func(l *LRU) {
		l.active = NewListIn(sc, hint)
		l.inactive = NewListIn(sc, hint)
	}
}

// NewLRU returns an LRU approximation backed by host for access-bit
// scanning. The default period matches the paper's 10 ms timer.
func NewLRU(host Host, opts ...LRUOption) *LRU {
	l := &LRU{
		host:       host,
		active:     NewList(),
		inactive:   NewList(),
		scanPeriod: sim.DefaultCostModel().ScanPeriod,
		scanBatch:  256,
	}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// PTESetup implements Policy. Newly resident pages enter the inactive
// list (Linux's default for freshly faulted pages); a minor fault by an
// additional core is itself evidence of use, refreshing the page and —
// if it was inactive — promoting it, mirroring mark_page_accessed on
// the fault path.
func (l *LRU) PTESetup(base sim.PageID) {
	switch {
	case l.active.Has(base):
		l.active.MoveToTail(base)
	case l.inactive.Has(base):
		l.inactive.Remove(base)
		l.active.PushTail(base)
	default:
		l.inactive.PushTail(base)
	}
}

// Victim implements Policy: the head (oldest) of the inactive list,
// falling back to the oldest active page under extreme pressure.
func (l *LRU) Victim() (sim.PageID, bool) {
	if base, ok := l.inactive.PopHead(); ok {
		return base, true
	}
	return l.active.PopHead()
}

// Remove implements Policy.
func (l *LRU) Remove(base sim.PageID) {
	if !l.inactive.Remove(base) {
		l.active.Remove(base)
	}
}

// Resident implements Policy.
func (l *LRU) Resident() int { return l.active.Len() + l.inactive.Len() }

// Tick implements Policy: when the scan timer expires, examine a batch
// of pages from both lists, clearing accessed bits (via the host, which
// charges shootdowns) and rebalancing the lists.
func (l *LRU) Tick(now sim.Cycles) {
	if now < l.nextScan {
		return
	}
	l.nextScan = now + l.scanPeriod
	// Capture both batches before moving anything, so a page promoted
	// in the inactive pass is not immediately re-examined (and demoted)
	// in the active pass of the same tick.
	inactiveBatch := capture(l.inactive, l.scanBatch, l.scratch[:0])
	activeBatch := capture(l.active, l.scanBatch, nil)
	for _, base := range inactiveBatch {
		if !l.inactive.Has(base) {
			continue
		}
		if l.host.ScanAccessed(base) {
			l.inactive.Remove(base)
			l.active.PushTail(base)
		}
		// Unaccessed inactive pages stay put and age toward the head.
	}
	for _, base := range activeBatch {
		if !l.active.Has(base) {
			continue
		}
		if l.host.ScanAccessed(base) {
			l.active.MoveToTail(base)
		} else {
			l.active.Remove(base)
			l.inactive.PushTail(base)
		}
	}
	// Maintain the inactive-list target (Linux deactivates from the
	// active head when the inactive list shrinks below a fraction of
	// memory). Without this, a fully-referenced working set traps every
	// page on the active list and victims degrade to freshly-faulted
	// pages -- worse than FIFO.
	target := (l.active.Len() + l.inactive.Len()) / 3
	for l.inactive.Len() < target {
		base, ok := l.active.PopHead()
		if !ok {
			break
		}
		l.inactive.PushTail(base)
	}
	l.scratch = inactiveBatch[:0]
}

// capture copies up to limit bases from the head of list into dst.
func capture(list *List, limit int, dst []sim.PageID) []sim.PageID {
	n := 0
	list.ForEachFromHead(func(base sim.PageID) bool {
		dst = append(dst, base)
		n++
		return n < limit
	})
	return dst
}

// Lists exposes the current (active, inactive) sizes for tests and
// diagnostics.
func (l *LRU) Lists() (active, inactive int) {
	return l.active.Len(), l.inactive.Len()
}
