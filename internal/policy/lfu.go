package policy

import (
	"container/heap"

	"cmcp/internal/sim"
)

// LFU approximates least-frequently-used. Real kernels cannot count
// individual references, so — like LRU — the approximation samples PTE
// accessed bits on a timer: each scan in which a page's bit was found
// set increments its frequency estimate, and frequencies decay so stale
// pages can leave. Victims are minimum-frequency pages. The paper (§3)
// lists LFU among the access-bit-dependent policies that inherit LRU's
// shootdown overhead; this implementation makes that measurable.
type LFU struct {
	host       Host
	heap       lfuHeap
	index      map[sim.PageID]*lfuItem
	scanPeriod sim.Cycles
	scanBatch  int
	nextScan   sim.Cycles
	seq        uint64
	cursor     sim.PageID // resume point for the round-robin scan
}

type lfuItem struct {
	base sim.PageID
	freq int32
	seq  uint64 // FIFO tie-break among equal frequencies
	pos  int
}

type lfuHeap []*lfuItem

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *lfuHeap) Push(x any) {
	it := x.(*lfuItem)
	it.pos = len(*h)
	*h = append(*h, it)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// LFUOption customizes an LFU instance.
type LFUOption func(*LFU)

// WithLFUScanPeriod sets the sampling period in cycles.
func WithLFUScanPeriod(p sim.Cycles) LFUOption {
	return func(l *LFU) { l.scanPeriod = p }
}

// WithLFUScanBatch caps pages sampled per run.
func WithLFUScanBatch(n int) LFUOption {
	return func(l *LFU) { l.scanBatch = n }
}

// NewLFU returns an LFU approximation backed by host.
func NewLFU(host Host, opts ...LFUOption) *LFU {
	l := &LFU{
		host:       host,
		index:      make(map[sim.PageID]*lfuItem),
		scanPeriod: sim.DefaultCostModel().ScanPeriod,
		scanBatch:  256,
	}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Name implements Policy.
func (l *LFU) Name() string { return "LFU" }

// PTESetup implements Policy. A fault is itself a reference: new pages
// start at frequency 1, and an additional core's minor fault bumps the
// estimate.
func (l *LFU) PTESetup(base sim.PageID) {
	if it, ok := l.index[base]; ok {
		it.freq++
		heap.Fix(&l.heap, it.pos)
		return
	}
	l.seq++
	it := &lfuItem{base: base, freq: 1, seq: l.seq}
	l.index[base] = it
	heap.Push(&l.heap, it)
}

// Victim implements Policy: the minimum-frequency page.
func (l *LFU) Victim() (sim.PageID, bool) {
	if l.heap.Len() == 0 {
		return 0, false
	}
	it := heap.Pop(&l.heap).(*lfuItem)
	delete(l.index, it.base)
	return it.base, true
}

// Remove implements Policy.
func (l *LFU) Remove(base sim.PageID) {
	it, ok := l.index[base]
	if !ok {
		return
	}
	heap.Remove(&l.heap, it.pos)
	delete(l.index, base)
}

// Resident implements Policy.
func (l *LFU) Resident() int { return l.heap.Len() }

// Tick implements Policy: sample a batch of pages round-robin by base,
// incrementing frequencies of accessed pages and decaying the rest.
func (l *LFU) Tick(now sim.Cycles) {
	if now < l.nextScan {
		return
	}
	l.nextScan = now + l.scanPeriod
	if len(l.index) == 0 {
		return
	}
	// Snapshot bases after the cursor to sample deterministically.
	batch := make([]*lfuItem, 0, l.scanBatch)
	var wrap []*lfuItem
	for _, it := range l.index {
		if it.base >= l.cursor {
			batch = append(batch, it)
		} else {
			wrap = append(wrap, it)
		}
	}
	sortItems(batch)
	sortItems(wrap)
	batch = append(batch, wrap...)
	if len(batch) > l.scanBatch {
		batch = batch[:l.scanBatch]
	}
	for _, it := range batch {
		if l.host.ScanAccessed(it.base) {
			it.freq += 2
		} else if it.freq > 1 {
			it.freq--
		}
		heap.Fix(&l.heap, it.pos)
	}
	if len(batch) > 0 {
		l.cursor = batch[len(batch)-1].base + 1
	}
}

// sortItems sorts by base VPN (insertion sort is fine for scan batches).
func sortItems(items []*lfuItem) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].base < items[j-1].base; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
