package policy

import (
	"cmcp/internal/dense"
	"cmcp/internal/sim"
)

// LFU approximates least-frequently-used. Real kernels cannot count
// individual references, so — like LRU — the approximation samples PTE
// accessed bits on a timer: each scan in which a page's bit was found
// set increments its frequency estimate, and frequencies decay so stale
// pages can leave. Victims are minimum-frequency pages. The paper (§3)
// lists LFU among the access-bit-dependent policies that inherit LRU's
// shootdown overhead; this implementation makes that measurable.
//
// The heap holds items by value with a page-indexed position table:
// victim selection never allocates, and the (freq, seq) order is a
// total order, so the pop sequence is independent of heap layout.
type LFU struct {
	host       Host
	heap       []lfuItem
	pos        dense.Index // base -> heap position
	scanPeriod sim.Cycles
	scanBatch  int
	nextScan   sim.Cycles
	seq        uint64
	cursor     sim.PageID // resume point for the round-robin scan

	snap, wrap []sim.PageID // reusable Tick snapshot buffers
}

type lfuItem struct {
	base sim.PageID
	freq int32
	seq  uint64 // FIFO tie-break among equal frequencies
}

func lfuLess(a, b *lfuItem) bool {
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.seq < b.seq
}

// LFUOption customizes an LFU instance.
type LFUOption func(*LFU)

// WithLFUScanPeriod sets the sampling period in cycles.
func WithLFUScanPeriod(p sim.Cycles) LFUOption {
	return func(l *LFU) { l.scanPeriod = p }
}

// WithLFUScanBatch caps pages sampled per run.
func WithLFUScanBatch(n int) LFUOption {
	return func(l *LFU) { l.scanBatch = n }
}

// WithLFUArena pre-sizes the position table for page bases in
// [0, hint) with storage drawn from sc.
func WithLFUArena(sc *dense.Scratch, hint int) LFUOption {
	return func(l *LFU) { l.pos = dense.NewIndex(sc, hint) }
}

// NewLFU returns an LFU approximation backed by host.
func NewLFU(host Host, opts ...LFUOption) *LFU {
	l := &LFU{
		host:       host,
		pos:        dense.NewIndex(nil, 0),
		scanPeriod: sim.DefaultCostModel().ScanPeriod,
		scanBatch:  256,
	}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Name implements Policy.
func (l *LFU) Name() string { return "LFU" }

// heap plumbing: standard binary min-heap over l.heap, with l.pos
// tracking each base's slot.

func (l *LFU) swap(i, j int) {
	l.heap[i], l.heap[j] = l.heap[j], l.heap[i]
	l.pos.Set(l.heap[i].base, int32(i))
	l.pos.Set(l.heap[j].base, int32(j))
}

func (l *LFU) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !lfuLess(&l.heap[i], &l.heap[parent]) {
			break
		}
		l.swap(i, parent)
		i = parent
	}
}

func (l *LFU) down(i int) {
	n := len(l.heap)
	for {
		least := i
		if c := 2*i + 1; c < n && lfuLess(&l.heap[c], &l.heap[least]) {
			least = c
		}
		if c := 2*i + 2; c < n && lfuLess(&l.heap[c], &l.heap[least]) {
			least = c
		}
		if least == i {
			return
		}
		l.swap(i, least)
		i = least
	}
}

func (l *LFU) fix(i int) {
	l.down(i)
	l.up(i)
}

// removeAt deletes heap slot i, restoring heap order.
func (l *LFU) removeAt(i int) lfuItem {
	last := len(l.heap) - 1
	l.swap(i, last)
	it := l.heap[last]
	l.heap = l.heap[:last]
	l.pos.Delete(it.base)
	if i < last {
		l.fix(i)
	}
	return it
}

// PTESetup implements Policy. A fault is itself a reference: new pages
// start at frequency 1, and an additional core's minor fault bumps the
// estimate.
func (l *LFU) PTESetup(base sim.PageID) {
	if i := l.pos.Get(base); i >= 0 {
		l.heap[i].freq++
		l.fix(int(i))
		return
	}
	l.seq++
	l.heap = append(l.heap, lfuItem{base: base, freq: 1, seq: l.seq})
	l.pos.Set(base, int32(len(l.heap)-1))
	l.up(len(l.heap) - 1)
}

// Victim implements Policy: the minimum-frequency page.
func (l *LFU) Victim() (sim.PageID, bool) {
	if len(l.heap) == 0 {
		return 0, false
	}
	it := l.removeAt(0)
	return it.base, true
}

// Remove implements Policy.
func (l *LFU) Remove(base sim.PageID) {
	if i := l.pos.Get(base); i >= 0 {
		l.removeAt(int(i))
	}
}

// Resident implements Policy.
func (l *LFU) Resident() int { return len(l.heap) }

// Tick implements Policy: sample a batch of pages round-robin by base,
// incrementing frequencies of accessed pages and decaying the rest.
func (l *LFU) Tick(now sim.Cycles) {
	if now < l.nextScan {
		return
	}
	l.nextScan = now + l.scanPeriod
	if len(l.heap) == 0 {
		return
	}
	// Snapshot bases in ascending order, starting at the cursor and
	// wrapping — the position table's Range is already base-ordered, so
	// no sort is needed.
	batch := l.snap[:0]
	wrap := l.wrap[:0]
	l.pos.Range(func(base sim.PageID, _ int32) bool {
		if base >= l.cursor {
			batch = append(batch, base)
		} else if len(wrap) < l.scanBatch {
			wrap = append(wrap, base)
		}
		return len(batch) < l.scanBatch
	})
	batch = append(batch, wrap...)
	if len(batch) > l.scanBatch {
		batch = batch[:l.scanBatch]
	}
	for _, base := range batch {
		i := l.pos.Get(base)
		if i < 0 {
			continue
		}
		if l.host.ScanAccessed(base) {
			l.heap[i].freq += 2
		} else if l.heap[i].freq > 1 {
			l.heap[i].freq--
		}
		l.fix(int(i))
	}
	if len(batch) > 0 {
		l.cursor = batch[len(batch)-1] + 1
	}
	l.snap, l.wrap = batch[:0], wrap[:0]
}
