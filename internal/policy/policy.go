// Package policy defines the page replacement policy interface of the
// simulated kernel and the baseline implementations the paper compares
// against: FIFO, a Linux-style LRU approximation (active/inactive lists
// driven by periodic access-bit scanning), CLOCK, LFU and Random.
//
// The policies operate on resident *mappings*, identified by their
// size-aligned base VPN. They never see individual memory touches —
// on real hardware the OS only observes page faults and PTE accessed
// bits, and collecting the latter is precisely the overhead the paper
// measures. Policies that need usage statistics obtain them through
// Host.ScanAccessed, whose implementation (in package vm) charges the
// scan cost and the remote TLB invalidations it causes.
//
// The paper's own policy, CMCP, lives in internal/core.
package policy

import (
	"cmcp/internal/dense"
	"cmcp/internal/sim"
)

// Host is the kernel-side interface a policy may consult. It is
// deliberately narrow: the number of mapping cores (free under PSPT)
// and the access-bit scan (expensive everywhere).
type Host interface {
	// CoreMapCount returns the number of cores currently mapping base.
	// Under regular shared page tables this information does not exist
	// and the implementation returns -1.
	CoreMapCount(base sim.PageID) int

	// ScanAccessed tests and clears the accessed bit(s) of the mapping
	// at base, charging the scan cost and the remote TLB invalidations
	// that clearing set bits requires. It reports whether the mapping
	// was accessed since the last scan.
	ScanAccessed(base sim.PageID) bool
}

// Policy is a page replacement policy. Implementations are not safe
// for concurrent use; the event engine serializes calls.
type Policy interface {
	// Name returns the short policy name used in experiment output.
	Name() string

	// PTESetup notifies the policy that a core has established a PTE
	// for the resident mapping at base: once on the major fault that
	// brought the page in, and again on every later minor fault by an
	// additional core. (Under regular page tables only the major fault
	// is visible — additional cores reuse the shared PTE silently.)
	PTESetup(base sim.PageID)

	// Victim selects the mapping to evict and removes it from the
	// policy's bookkeeping. ok is false when nothing is tracked.
	Victim() (base sim.PageID, ok bool)

	// Remove deletes base from the bookkeeping without an eviction
	// decision (explicit unmap, teardown). Unknown pages are ignored.
	Remove(base sim.PageID)

	// Tick advances periodic machinery (LRU's scan timer, CMCP's
	// aging) to virtual time now. The engine calls it from the
	// dedicated scanner pseudo-core.
	Tick(now sim.Cycles)

	// Resident returns the number of mappings currently tracked.
	Resident() int
}

// List is an intrusive doubly-linked list of page bases with O(1)
// membership, push, remove and pop, shared by the queue-like policies.
// It is a thin wrapper over dense.List: links live in page-indexed
// slices, so there is no per-node allocation and no map hashing on the
// eviction path.
type List struct {
	l dense.List
}

// NewList returns an empty list that grows on demand.
func NewList() *List { return NewListIn(nil, 0) }

// NewListIn returns an empty list pre-sized for page bases in
// [0, hint), drawing its link slices from sc (both optional).
func NewListIn(sc *dense.Scratch, hint int) *List {
	return &List{l: dense.NewList(sc, hint)}
}

// Len returns the number of elements.
func (l *List) Len() int { return l.l.Len() }

// Has reports whether base is on the list.
func (l *List) Has(base sim.PageID) bool { return l.l.Has(base) }

// PushTail appends base as the newest element. Pushing an existing
// element is a bug in the caller and panics.
func (l *List) PushTail(base sim.PageID) {
	if l.l.Has(base) {
		panic("policy: page already on list")
	}
	l.l.PushTail(base)
}

// PopHead removes and returns the oldest element.
func (l *List) PopHead() (sim.PageID, bool) { return l.l.PopHead() }

// Remove deletes base if present, reporting whether it was.
func (l *List) Remove(base sim.PageID) bool { return l.l.Remove(base) }

// MoveToTail refreshes base as the newest element.
func (l *List) MoveToTail(base sim.PageID) bool { return l.l.MoveToTail(base) }

// ForEachFromHead iterates oldest-to-newest until fn returns false.
// fn must not mutate the list; use collect-then-act patterns.
func (l *List) ForEachFromHead(fn func(base sim.PageID) bool) {
	l.l.ForEachFromHead(fn)
}
