// Package policy defines the page replacement policy interface of the
// simulated kernel and the baseline implementations the paper compares
// against: FIFO, a Linux-style LRU approximation (active/inactive lists
// driven by periodic access-bit scanning), CLOCK, LFU and Random.
//
// The policies operate on resident *mappings*, identified by their
// size-aligned base VPN. They never see individual memory touches —
// on real hardware the OS only observes page faults and PTE accessed
// bits, and collecting the latter is precisely the overhead the paper
// measures. Policies that need usage statistics obtain them through
// Host.ScanAccessed, whose implementation (in package vm) charges the
// scan cost and the remote TLB invalidations it causes.
//
// The paper's own policy, CMCP, lives in internal/core.
package policy

import (
	"cmcp/internal/sim"
)

// Host is the kernel-side interface a policy may consult. It is
// deliberately narrow: the number of mapping cores (free under PSPT)
// and the access-bit scan (expensive everywhere).
type Host interface {
	// CoreMapCount returns the number of cores currently mapping base.
	// Under regular shared page tables this information does not exist
	// and the implementation returns -1.
	CoreMapCount(base sim.PageID) int

	// ScanAccessed tests and clears the accessed bit(s) of the mapping
	// at base, charging the scan cost and the remote TLB invalidations
	// that clearing set bits requires. It reports whether the mapping
	// was accessed since the last scan.
	ScanAccessed(base sim.PageID) bool
}

// Policy is a page replacement policy. Implementations are not safe
// for concurrent use; the event engine serializes calls.
type Policy interface {
	// Name returns the short policy name used in experiment output.
	Name() string

	// PTESetup notifies the policy that a core has established a PTE
	// for the resident mapping at base: once on the major fault that
	// brought the page in, and again on every later minor fault by an
	// additional core. (Under regular page tables only the major fault
	// is visible — additional cores reuse the shared PTE silently.)
	PTESetup(base sim.PageID)

	// Victim selects the mapping to evict and removes it from the
	// policy's bookkeeping. ok is false when nothing is tracked.
	Victim() (base sim.PageID, ok bool)

	// Remove deletes base from the bookkeeping without an eviction
	// decision (explicit unmap, teardown). Unknown pages are ignored.
	Remove(base sim.PageID)

	// Tick advances periodic machinery (LRU's scan timer, CMCP's
	// aging) to virtual time now. The engine calls it from the
	// dedicated scanner pseudo-core.
	Tick(now sim.Cycles)

	// Resident returns the number of mappings currently tracked.
	Resident() int
}

// List is an intrusive doubly-linked list of page bases with O(1)
// membership, push, remove and pop, shared by the queue-like policies.
type List struct {
	nodes map[sim.PageID]*listNode
	head  *listNode // oldest
	tail  *listNode // newest
}

type listNode struct {
	base       sim.PageID
	prev, next *listNode
}

// NewList returns an empty list.
func NewList() *List {
	return &List{nodes: make(map[sim.PageID]*listNode)}
}

// Len returns the number of elements.
func (l *List) Len() int { return len(l.nodes) }

// Has reports whether base is on the list.
func (l *List) Has(base sim.PageID) bool {
	_, ok := l.nodes[base]
	return ok
}

// PushTail appends base as the newest element. Pushing an existing
// element is a bug in the caller and panics.
func (l *List) PushTail(base sim.PageID) {
	if _, ok := l.nodes[base]; ok {
		panic("policy: page already on list")
	}
	n := &listNode{base: base, prev: l.tail}
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
	l.nodes[base] = n
}

// PopHead removes and returns the oldest element.
func (l *List) PopHead() (sim.PageID, bool) {
	if l.head == nil {
		return 0, false
	}
	base := l.head.base
	l.Remove(base)
	return base, true
}

// Remove deletes base if present, reporting whether it was.
func (l *List) Remove(base sim.PageID) bool {
	n, ok := l.nodes[base]
	if !ok {
		return false
	}
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	delete(l.nodes, base)
	return true
}

// MoveToTail refreshes base as the newest element.
func (l *List) MoveToTail(base sim.PageID) bool {
	if !l.Remove(base) {
		return false
	}
	l.PushTail(base)
	return true
}

// ForEachFromHead iterates oldest-to-newest until fn returns false.
// fn must not mutate the list; use collect-then-act patterns.
func (l *List) ForEachFromHead(fn func(base sim.PageID) bool) {
	for n := l.head; n != nil; n = n.next {
		if !fn(n.base) {
			return
		}
	}
}
