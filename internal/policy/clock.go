package policy

import (
	"cmcp/internal/dense"
	"cmcp/internal/sim"
)

// Clock implements the classic second-chance CLOCK algorithm. The hand
// sweeps the resident pages in residence order; a page whose accessed
// bit is set gets a second chance (bit cleared, hand advances), an
// unaccessed page is evicted. Clearing the bit goes through
// Host.ScanAccessed and therefore pays the same remote-TLB-invalidation
// price as LRU — the paper's §3 argues CLOCK suffers the same disease,
// and this implementation lets the experiments demonstrate it.
type Clock struct {
	host Host
	list *List // head = hand position
}

// NewClock returns a CLOCK policy backed by host for access bits.
func NewClock(host Host) *Clock {
	return &Clock{host: host, list: NewList()}
}

// NewClockIn is NewClock with the list pre-sized for page bases in
// [0, hint) and drawn from sc.
func NewClockIn(host Host, sc *dense.Scratch, hint int) *Clock {
	return &Clock{host: host, list: NewListIn(sc, hint)}
}

// Name implements Policy.
func (c *Clock) Name() string { return "CLOCK" }

// PTESetup implements Policy.
func (c *Clock) PTESetup(base sim.PageID) {
	if !c.list.Has(base) {
		c.list.PushTail(base)
	}
}

// Victim implements Policy: sweep from the hand, granting second
// chances, evicting the first unaccessed page. After a full lap every
// bit has been cleared, so the lap is bounded.
func (c *Clock) Victim() (sim.PageID, bool) {
	n := c.list.Len()
	if n == 0 {
		return 0, false
	}
	for i := 0; i <= n; i++ {
		base, ok := c.list.PopHead()
		if !ok {
			return 0, false
		}
		if c.host.ScanAccessed(base) {
			c.list.PushTail(base) // second chance
			continue
		}
		return base, true
	}
	// Every page was re-accessed during the sweep; fall back to the
	// current hand position.
	return c.list.PopHead()
}

// Remove implements Policy.
func (c *Clock) Remove(base sim.PageID) { c.list.Remove(base) }

// Tick implements Policy (CLOCK scans at eviction time, not on a timer).
func (c *Clock) Tick(sim.Cycles) {}

// Resident implements Policy.
func (c *Clock) Resident() int { return c.list.Len() }
