package policy

import (
	"cmcp/internal/dense"
	"cmcp/internal/sim"
)

// Random evicts a uniformly random resident page. It is a sanity
// baseline: any policy worth running should beat it, and like FIFO it
// needs no usage statistics.
type Random struct {
	rng   *sim.RNG
	pages []sim.PageID
	index dense.Index // base -> position in pages
}

// NewRandom returns a random policy seeded deterministically.
func NewRandom(seed uint64) *Random { return NewRandomIn(seed, nil, 0) }

// NewRandomIn is NewRandom with the position index pre-sized for page
// bases in [0, hint) and drawn from sc.
func NewRandomIn(seed uint64, sc *dense.Scratch, hint int) *Random {
	return &Random{rng: sim.NewRNG(seed), index: dense.NewIndex(sc, hint)}
}

// Name implements Policy.
func (r *Random) Name() string { return "Random" }

// PTESetup implements Policy.
func (r *Random) PTESetup(base sim.PageID) {
	if r.index.Has(base) {
		return
	}
	r.index.Set(base, int32(len(r.pages)))
	r.pages = append(r.pages, base)
}

// Victim implements Policy: uniform choice, O(1) removal by swapping
// with the last slot.
func (r *Random) Victim() (sim.PageID, bool) {
	if len(r.pages) == 0 {
		return 0, false
	}
	i := r.rng.Intn(len(r.pages))
	base := r.pages[i]
	r.removeAt(base, i)
	return base, true
}

// Remove implements Policy.
func (r *Random) Remove(base sim.PageID) {
	if i := r.index.Get(base); i >= 0 {
		r.removeAt(base, int(i))
	}
}

func (r *Random) removeAt(base sim.PageID, i int) {
	last := len(r.pages) - 1
	moved := r.pages[last]
	r.pages[i] = moved
	r.index.Set(moved, int32(i))
	r.pages = r.pages[:last]
	r.index.Delete(base)
}

// Tick implements Policy (no periodic work).
func (r *Random) Tick(sim.Cycles) {}

// Resident implements Policy.
func (r *Random) Resident() int { return len(r.pages) }
