package hist

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestBucketing(t *testing.T) {
	var h H
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 20, 21}, {math.MaxUint64, 64},
	}
	for _, c := range cases {
		h.Record(c.v)
	}
	for _, c := range cases {
		if h.Buckets[c.bucket] == 0 {
			t.Errorf("value %d: bucket %d empty", c.v, c.bucket)
		}
	}
	if h.Count != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", h.Count, len(cases))
	}
	if h.Max != math.MaxUint64 {
		t.Fatalf("Max = %d", h.Max)
	}
	if !h.CheckInvariant() {
		t.Fatal("invariant broken after recording")
	}
}

func TestUpperBounds(t *testing.T) {
	if UpperBound(0) != 0 || UpperBound(1) != 1 || UpperBound(2) != 3 || UpperBound(10) != 1023 {
		t.Fatal("small bounds wrong")
	}
	if UpperBound(64) != math.MaxUint64 || UpperBound(99) != math.MaxUint64 {
		t.Fatal("top bound wrong")
	}
}

func TestQuantiles(t *testing.T) {
	var h H
	if h.P50() != 0 || h.P99() != 0 {
		t.Fatal("empty histogram quantiles must be 0")
	}
	// 99 values of 1, one value of 1000: p50 lands in bucket 1 (bound
	// 1), p99 still in bucket 1 (rank 99 of 100), p999 reports the
	// bucket holding 1000 (bit length 10 -> bound 1023).
	for i := 0; i < 99; i++ {
		h.Record(1)
	}
	h.Record(1000)
	if got := h.P50(); got != 1 {
		t.Errorf("P50 = %d, want 1", got)
	}
	if got := h.P99(); got != 1 {
		t.Errorf("P99 = %d, want 1", got)
	}
	if got := h.P999(); got != 1023 {
		t.Errorf("P999 = %d, want 1023", got)
	}
	if got := h.Mean(); math.Abs(got-10.99) > 1e-9 {
		t.Errorf("Mean = %v, want 10.99", got)
	}
	s := h.Summarize()
	if s.Count != 100 || s.Max != 1000 || s.P999 != 1023 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestMergeIsExact(t *testing.T) {
	// Merging two independently recorded histograms must equal one
	// histogram that saw both streams — the property the sweep layer's
	// Repeats pooling relies on.
	rng := rand.New(rand.NewSource(7))
	var a, b, both H
	for i := 0; i < 10_000; i++ {
		v := uint64(rng.Int63n(1 << 30))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(&b)
	if a != both {
		t.Fatal("merge is not exact")
	}
	if !a.CheckInvariant() {
		t.Fatal("invariant broken after merge")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var h H
	for _, v := range []uint64{0, 1, 5, 1 << 40, math.MaxUint64} {
		h.Record(v)
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back H
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip changed histogram:\n  got %+v\n want %+v", back, h)
	}
	// Values beyond 2^53 survive: Go marshals uint64 exactly.
	if back.Max != math.MaxUint64 {
		t.Fatalf("Max lost precision: %d", back.Max)
	}
}

func TestReset(t *testing.T) {
	var h H
	h.Record(42)
	h.Reset()
	if h != (H{}) {
		t.Fatal("Reset left state behind")
	}
}

func BenchmarkRecord(b *testing.B) {
	var h H
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
	if h.Count == 0 {
		b.Fatal("no records")
	}
}
