// Package hist provides fixed-bucket log₂ histograms for the CMCP
// simulator's latency and fan-out distributions.
//
// The end-of-run counters in internal/stats answer "how much in
// total"; a histogram answers "how is it distributed" — the p99 fault
// service time and shootdown fan-out tail that means hide. The design
// constraints come from the sweep layer rather than from statistics:
//
//   - Deterministic. Bucket bounds are exact integers (powers of two
//     minus one), never floats, so the same run yields byte-identical
//     histograms on every platform and quantiles are pure integer
//     functions of the bucket counts.
//   - Mergeable. Two histograms over the same bucket layout merge by
//     adding counts, losslessly — which is what lets sweep journals
//     round-trip them and lets Repeats replicates pool into one
//     distribution with no averaging error.
//   - Zero-alloc recording. Record is a few integer instructions on a
//     fixed-size array; attaching histograms to a run costs one
//     allocation at setup and nothing per event.
//
// Value v lands in bucket bits.Len64(v): bucket 0 holds exactly the
// value 0, bucket i (i ≥ 1) holds values in [2^(i-1), 2^i - 1]. The 65
// buckets cover the whole uint64 range, so recording can never clip.
package hist

import (
	"math"
	"math/bits"
)

// NumBuckets is the fixed bucket count: one per possible bit length of
// a uint64 value (0..64).
const NumBuckets = 65

// H is one log₂ histogram. The zero value is empty and ready to use.
// All fields are exported (and JSON-tagged) so histograms serialize
// losslessly through encoding/json with no custom marshaller.
type H struct {
	// Count is the number of recorded values (always equal to the sum
	// of Buckets; readers use the invariant to reject torn data).
	Count uint64 `json:"count"`
	// Sum is the exact total of recorded values (mod 2^64).
	Sum uint64 `json:"sum"`
	// Max is the largest recorded value.
	Max uint64 `json:"max"`
	// Buckets[i] counts recorded values of bit length i.
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// Record adds one value. Zero allocations, no branches beyond the max
// update — cheap enough for the engine's per-fault hot path.
func (h *H) Record(v uint64) {
	h.Buckets[bits.Len64(v)]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge adds other's contents into h. Exact: the merged histogram is
// identical to one that recorded both value streams.
func (h *H) Merge(other *H) {
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Reset empties the histogram in place.
func (h *H) Reset() { *h = H{} }

// UpperBound returns bucket i's inclusive upper bound: 0 for bucket 0,
// 2^i - 1 otherwise. These exact integer bounds are what quantile
// estimates report.
func UpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Mean returns the arithmetic mean of the recorded values (0 when
// empty). Mean is exact — it divides the exact Sum — unlike the
// bucket-bound quantiles.
func (h *H) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// QuantileRank returns the upper bound of the bucket holding the
// ⌈Count·num/den⌉-th smallest recorded value — a deterministic,
// integer-only quantile estimate that over-reports by at most the
// bucket width (a factor of two). Zero when the histogram is empty.
func (h *H) QuantileRank(num, den uint64) uint64 {
	if h.Count == 0 || den == 0 {
		return 0
	}
	rank := (h.Count*num + den - 1) / den
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= rank {
			return UpperBound(i)
		}
	}
	return UpperBound(NumBuckets - 1)
}

// P50 returns the median estimate.
func (h *H) P50() uint64 { return h.QuantileRank(50, 100) }

// P90 returns the 90th-percentile estimate.
func (h *H) P90() uint64 { return h.QuantileRank(90, 100) }

// P99 returns the 99th-percentile estimate.
func (h *H) P99() uint64 { return h.QuantileRank(99, 100) }

// P999 returns the 99.9th-percentile estimate.
func (h *H) P999() uint64 { return h.QuantileRank(999, 1000) }

// CheckInvariant reports whether Count equals the bucket total — the
// self-consistency test journal readers apply to detect torn or
// truncated histogram records.
func (h *H) CheckInvariant() bool {
	var total uint64
	for _, c := range h.Buckets {
		total += c
	}
	return total == h.Count
}

// Summary is the compact rendering of one histogram: the numbers that
// land in reports, bench JSON and the Prometheus-adjacent summaries.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
}

// Summarize extracts the Summary.
func (h *H) Summarize() Summary {
	return Summary{
		Count: h.Count,
		Mean:  h.Mean(),
		Max:   h.Max,
		P50:   h.P50(),
		P90:   h.P90(),
		P99:   h.P99(),
		P999:  h.P999(),
	}
}
