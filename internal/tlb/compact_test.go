package tlb

import (
	"testing"

	"cmcp/internal/sim"
)

// Regression tests for the stale-slot compaction fix: under
// invalidate/insert churn the FIFO queue used to grow linearly with
// total inserts (stale slots were only reclaimed by eviction pops,
// which a set running below capacity never performs). The queue must
// now stay within a small multiple of the set capacity, and compaction
// must preserve the eviction order of everything live.

func TestFifoSetQueueBoundedUnderChurn(t *testing.T) {
	s := newFifoSet(16, 0, nil)
	bound := 4*s.cap + 64
	for i := 0; i < 50_000; i++ {
		s.insert(sim.PageID(i%96), entry{size: sim.Size4k})
		s.invalidate(sim.PageID((i + 37) % 96))
		if len(s.queue) > bound {
			t.Fatalf("iteration %d: queue length %d exceeds bound %d", i, len(s.queue), bound)
		}
		if i%1000 == 0 {
			if err := s.checkInvariants("churn"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.checkInvariants("churn"); err != nil {
		t.Fatal(err)
	}
}

func TestTLBChurnBoundedAndConsistent(t *testing.T) {
	tb := New(Config{L1Entries4k: 8, L1Entries64k: 4, L1Entries2M: 2, L2Entries: 8})
	for i := 0; i < 30_000; i++ {
		tb.Insert(sim.PageID(i%200), sim.Size4k)
		tb.Invalidate(sim.PageID((i * 7) % 200))
		if i%500 == 0 {
			if err := tb.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range []*fifoSet{&tb.l1[sim.Size4k], &tb.l2} {
		if lim := 4*s.cap + 64; len(s.queue) > lim {
			t.Errorf("queue length %d exceeds bound %d", len(s.queue), lim)
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactLivePreservesEvictionOrder churns stale slots past the
// compaction threshold and then verifies the surviving live entries
// still evict in their original FIFO order.
func TestCompactLivePreservesEvictionOrder(t *testing.T) {
	s := newFifoSet(4, 0, nil)
	for i := 0; i < 4; i++ {
		s.insert(sim.PageID(i), entry{size: sim.Size4k})
	}
	// Open one slot so churn inserts never trigger eviction, then pile
	// stale slots for page 10 until compaction must fire.
	s.invalidate(3)
	for i := 0; i < 300; i++ {
		s.insert(10, entry{size: sim.Size4k})
		s.invalidate(10)
	}
	if len(s.queue) > 4*s.cap+64 {
		t.Fatalf("compaction never fired: queue length %d", len(s.queue))
	}
	s.insert(10, entry{size: sim.Size4k}) // back to capacity: 0,1,2,10
	want := []sim.PageID{0, 1, 2, 10}
	for i, p := range []sim.PageID{20, 21, 22, 23} {
		vb, _, ok := s.insert(p, entry{size: sim.Size4k})
		if !ok {
			t.Fatalf("insert %d evicted nothing", p)
		}
		if vb != want[i] {
			t.Errorf("eviction %d: got page %d, want %d", i, vb, want[i])
		}
	}
}
