// Package tlb models the per-core data TLBs of the simulated many-core
// and the remote-shootdown machinery. Each core has a small L1 TLB per
// page-size class (4 kB / 64 kB / 2 MB) and a unified L2; replacement
// is FIFO within a class, as in the simple in-order KNC cores. The Phi's
// 64 kB extension caches a whole 16-page group as a single entry, which
// is exactly the TLB-reach benefit the paper measures.
//
// Shootdowns: on x86 a core can only invalidate its own TLB, so
// remapping a page requires an IPI loop over every core that may cache
// the translation. With regular page tables that set is unknown and the
// loop covers all cores; with PSPT it is exactly the mapping cores.
// Package vm charges the corresponding costs from the sim.CostModel.
package tlb

import (
	"cmcp/internal/sim"
)

// HitLevel classifies the outcome of a TLB lookup.
type HitLevel uint8

const (
	// Miss means neither level holds the translation; a page walk runs.
	Miss HitLevel = iota
	// HitL1 is a first-level hit (free).
	HitL1
	// HitL2 is a second-level hit (small penalty, entry promoted).
	HitL2
)

// Config sets the per-core TLB geometry. The defaults follow Knights
// Corner: 64×4 kB and 8×2 MB L1 entries, 32 entries for the
// experimental 64 kB class, and a 64-entry unified L2.
type Config struct {
	L1Entries4k  int
	L1Entries64k int
	L1Entries2M  int
	L2Entries    int
}

// DefaultConfig returns the KNC-like geometry.
func DefaultConfig() Config {
	return Config{L1Entries4k: 64, L1Entries64k: 32, L1Entries2M: 8, L2Entries: 64}
}

// entry is a cached translation, keyed by size-aligned base VPN.
type entry struct {
	size sim.PageSize
}

// fifoSet is a fixed-capacity, fully associative set with FIFO
// replacement and lazy queue cleanup (invalidated entries leave stale
// queue slots that are skipped at eviction time).
type fifoSet struct {
	cap     int
	entries map[sim.PageID]entry
	queue   []sim.PageID
	head    int
}

func newFifoSet(capacity int) *fifoSet {
	return &fifoSet{cap: capacity, entries: make(map[sim.PageID]entry, capacity)}
}

func (s *fifoSet) has(base sim.PageID) (entry, bool) {
	e, ok := s.entries[base]
	return e, ok
}

// insert adds base and returns the entry evicted to make room, if any.
func (s *fifoSet) insert(base sim.PageID, e entry) (sim.PageID, entry, bool) {
	if s.cap <= 0 {
		return 0, entry{}, false
	}
	if _, ok := s.entries[base]; ok {
		return 0, entry{}, false // refresh: FIFO ignores re-reference
	}
	var evictedBase sim.PageID
	var evicted entry
	var hasEvicted bool
	for len(s.entries) >= s.cap {
		// Pop queue head; skip slots whose entry was invalidated.
		vb := s.queue[s.head]
		s.head++
		if ev, ok := s.entries[vb]; ok {
			delete(s.entries, vb)
			evictedBase, evicted, hasEvicted = vb, ev, true
		}
	}
	s.entries[base] = e
	s.queue = append(s.queue, base)
	s.compact()
	return evictedBase, evicted, hasEvicted
}

func (s *fifoSet) invalidate(base sim.PageID) bool {
	if _, ok := s.entries[base]; ok {
		delete(s.entries, base)
		return true
	}
	return false
}

func (s *fifoSet) flush() {
	clear(s.entries)
	s.queue = s.queue[:0]
	s.head = 0
}

// compact reclaims queue space when the consumed prefix dominates.
func (s *fifoSet) compact() {
	if s.head > 64 && s.head*2 > len(s.queue) {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
}

func (s *fifoSet) len() int { return len(s.entries) }

// TLB is one core's data TLB: three L1 size classes plus a unified L2.
// It is not safe for concurrent use; the event engine serializes cores.
type TLB struct {
	l1 [3]*fifoSet // indexed by sim.PageSize
	l2 *fifoSet
}

// New creates a TLB with the given geometry.
func New(cfg Config) *TLB {
	return &TLB{
		l1: [3]*fifoSet{
			sim.Size4k:  newFifoSet(cfg.L1Entries4k),
			sim.Size64k: newFifoSet(cfg.L1Entries64k),
			sim.Size2M:  newFifoSet(cfg.L1Entries2M),
		},
		l2: newFifoSet(cfg.L2Entries),
	}
}

var sizes = [3]sim.PageSize{sim.Size4k, sim.Size64k, sim.Size2M}

// Lookup probes the TLB for vpn. Hardware probes each size class with
// the correspondingly aligned tag. An L2 hit promotes the entry to the
// proper L1 class.
func (t *TLB) Lookup(vpn sim.PageID) HitLevel {
	for _, s := range sizes {
		if _, ok := t.l1[s].has(s.Align(vpn)); ok {
			return HitL1
		}
	}
	for _, s := range sizes {
		base := s.Align(vpn)
		if e, ok := t.l2.has(base); ok && e.size == s {
			t.l2.invalidate(base)
			t.installL1(base, e)
			return HitL2
		}
	}
	return Miss
}

// Insert caches the translation for the mapping of the given size
// covering vpn, as the hardware does after a successful page walk.
func (t *TLB) Insert(vpn sim.PageID, size sim.PageSize) {
	base := size.Align(vpn)
	t.installL1(base, entry{size: size})
}

func (t *TLB) installL1(base sim.PageID, e entry) {
	if vb, ve, ok := t.l1[e.size].insert(base, e); ok {
		// L1 victim is demoted into the unified L2.
		t.l2.insert(vb, ve)
	}
}

// Invalidate drops any cached translation covering vpn (the INVLPG
// operation). It reports whether an entry was actually present, which
// determines whether the invalidation had any effect.
func (t *TLB) Invalidate(vpn sim.PageID) bool {
	hit := false
	for _, s := range sizes {
		base := s.Align(vpn)
		if t.l1[s].invalidate(base) {
			hit = true
		}
		if e, ok := t.l2.has(base); ok && e.size == s {
			t.l2.invalidate(base)
			hit = true
		}
	}
	return hit
}

// Flush empties the TLB (full flush, e.g. on context switch).
func (t *TLB) Flush() {
	for _, s := range sizes {
		t.l1[s].flush()
	}
	t.l2.flush()
}

// Entries returns the current number of cached translations across
// both levels (diagnostics).
func (t *TLB) Entries() int {
	n := t.l2.len()
	for _, s := range sizes {
		n += t.l1[s].len()
	}
	return n
}
