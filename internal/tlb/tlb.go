// Package tlb models the per-core data TLBs of the simulated many-core
// and the remote-shootdown machinery. Each core has a small L1 TLB per
// page-size class (4 kB / 64 kB / 2 MB) and a unified L2; replacement
// is FIFO within a class, as in the simple in-order KNC cores. The Phi's
// 64 kB extension caches a whole 16-page group as a single entry, which
// is exactly the TLB-reach benefit the paper measures.
//
// Shootdowns: on x86 a core can only invalidate its own TLB, so
// remapping a page requires an IPI loop over every core that may cache
// the translation. With regular page tables that set is unknown and the
// loop covers all cores; with PSPT it is exactly the mapping cores.
// Package vm charges the corresponding costs from the sim.CostModel.
package tlb

import (
	"fmt"

	"cmcp/internal/dense"
	"cmcp/internal/sim"
)

// HitLevel classifies the outcome of a TLB lookup.
type HitLevel uint8

const (
	// Miss means neither level holds the translation; a page walk runs.
	Miss HitLevel = iota
	// HitL1 is a first-level hit (free).
	HitL1
	// HitL2 is a second-level hit (small penalty, entry promoted).
	HitL2
)

// Config sets the per-core TLB geometry. The defaults follow Knights
// Corner: 64×4 kB and 8×2 MB L1 entries, 32 entries for the
// experimental 64 kB class, and a 64-entry unified L2.
type Config struct {
	L1Entries4k  int
	L1Entries64k int
	L1Entries2M  int
	L2Entries    int
}

// DefaultConfig returns the KNC-like geometry.
func DefaultConfig() Config {
	return Config{L1Entries4k: 64, L1Entries64k: 32, L1Entries2M: 8, L2Entries: 64}
}

// entry is a cached translation, keyed by size-aligned base VPN.
type entry struct {
	size sim.PageSize
}

// fifoSet is a fixed-capacity, fully associative set with FIFO
// replacement and lazy queue cleanup (invalidated entries leave stale
// queue slots that are skipped at eviction time). Presence lives in a
// page-indexed state table (0 = absent, otherwise size+1) instead of a
// map: page IDs are dense small integers, so membership is one array
// read on the per-touch path.
type fifoSet struct {
	cap   int
	n     int // live entries
	sc    *dense.Scratch
	state []uint8 // base -> size+1; 0 = absent
	queue []int32 // FIFO order of bases, with stale slots
	head  int
	j     *Journal // nil outside the parallel engine
}

func newFifoSet(capacity, pages int, sc *dense.Scratch) fifoSet {
	// The queue holds live entries plus stale slots from invalidations;
	// compact() trims once the consumed prefix passes 64, so size for
	// that regime to keep append from reallocating.
	return fifoSet{
		cap:   capacity,
		sc:    sc,
		state: sc.U8(pages),
		queue: sc.I32(2*capacity + 80)[:0],
	}
}

func (s *fifoSet) has(base sim.PageID) (entry, bool) {
	if base < sim.PageID(len(s.state)) {
		if v := s.state[base]; v != 0 {
			return entry{size: sim.PageSize(v - 1)}, true
		}
	}
	return entry{}, false
}

func (s *fifoSet) setState(base sim.PageID, v uint8) {
	if base >= sim.PageID(len(s.state)) {
		ns := s.sc.U8(growCap(int(base) + 1))
		copy(ns, s.state)
		s.state = ns
	}
	s.state[base] = v
}

// growCap rounds n up to the next power of two (minimum 8).
func growCap(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}

// insert adds base and returns the entry evicted to make room, if any.
func (s *fifoSet) insert(base sim.PageID, e entry) (sim.PageID, entry, bool) {
	if s.cap <= 0 {
		return 0, entry{}, false
	}
	if _, ok := s.has(base); ok {
		return 0, entry{}, false // refresh: FIFO ignores re-reference
	}
	logging := s.j != nil && s.j.enabled
	if logging {
		s.j.logMeta(s)
	}
	var evictedBase sim.PageID
	var evicted entry
	var hasEvicted bool
	for s.n >= s.cap {
		// Pop queue head; skip slots whose entry was invalidated.
		vb := sim.PageID(s.queue[s.head])
		s.head++
		if v := s.state[vb]; v != 0 {
			if logging {
				s.j.logState(s, vb)
			}
			s.state[vb] = 0
			s.n--
			evictedBase, evicted, hasEvicted = vb, entry{size: sim.PageSize(v - 1)}, true
		}
	}
	if logging {
		s.j.logState(s, base)
	}
	s.setState(base, uint8(e.size)+1)
	s.n++
	s.queue = append(s.queue, int32(base))
	// Compaction runs at exactly the trigger points the serial engine
	// hits — its timing is semantically visible, because rewriting the
	// queue dedupes the stale slots that give a re-inserted page its
	// effective FIFO position. Under speculation the pre-compaction
	// queue is snapshotted for undo first.
	if s.j != nil && (s.j.enabled || s.j.Unreleased() > 0) && s.wouldCompact() {
		s.j.logQueue(s)
	}
	s.compact()
	return evictedBase, evicted, hasEvicted
}

func (s *fifoSet) invalidate(base sim.PageID) bool {
	if base < sim.PageID(len(s.state)) && s.state[base] != 0 {
		if s.j != nil && s.j.enabled {
			s.j.logMeta(s)
			s.j.logState(s, base)
		}
		s.state[base] = 0
		s.n--
		return true
	}
	return false
}

func (s *fifoSet) flush() {
	// Every live entry has a queue slot, so clearing the un-consumed
	// suffix empties the state table in O(queue), not O(pages).
	for _, qb := range s.queue[s.head:] {
		s.state[qb] = 0
	}
	s.queue = s.queue[:0]
	s.head = 0
	s.n = 0
}

// wouldCompact mirrors compact's trigger conditions (for undo logging).
func (s *fifoSet) wouldCompact() bool {
	return len(s.queue) > 4*s.cap+64 || (s.head > 64 && s.head*2 > len(s.queue))
}

// compact reclaims queue space when stale slots dominate.
func (s *fifoSet) compact() {
	// Invalidation-heavy traffic (shootdown storms, PSPT rebuilds)
	// leaves stale slots in the un-consumed suffix that only eviction
	// pops would reclaim; a set running below capacity never pops, so
	// the queue would otherwise grow linearly with total inserts. Once
	// it outgrows a small multiple of capacity, rewrite it with live
	// entries only.
	if len(s.queue) > 4*s.cap+64 {
		s.compactLive()
		return
	}
	if s.head > 64 && s.head*2 > len(s.queue) {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
}

// keptBit transiently marks state entries during compaction and
// invariant checking. It is well above any size+1 value (max 3).
const keptBit = 0x80

// compactLive rewrites the queue keeping only each live base's earliest
// slot, in order. That slot alone determines when the entry reaches the
// FIFO head, so the effective eviction order of everything currently
// cached is preserved exactly.
func (s *fifoSet) compactLive() {
	w := 0
	for _, qb := range s.queue[s.head:] {
		if v := s.state[qb]; v != 0 && v&keptBit == 0 {
			s.state[qb] = v | keptBit
			s.queue[w] = qb
			w++
		}
	}
	s.queue = s.queue[:w]
	s.head = 0
	for _, qb := range s.queue {
		s.state[qb] &^= keptBit
	}
}

func (s *fifoSet) len() int { return s.n }

// forEach visits every live entry (order unspecified; audit only).
func (s *fifoSet) forEach(fn func(base sim.PageID, size sim.PageSize)) {
	for b, v := range s.state {
		if v != 0 {
			fn(sim.PageID(b), sim.PageSize(v-1))
		}
	}
}

// checkInvariants verifies the set's internal consistency: the live
// count matches the state table and the capacity bound, and every live
// entry still owns at least one un-consumed queue slot (otherwise it
// could never be evicted).
func (s *fifoSet) checkInvariants(name string) error {
	live := 0
	for _, v := range s.state {
		if v != 0 {
			live++
		}
	}
	if live != s.n {
		return fmt.Errorf("tlb %s: n=%d but %d live state entries", name, s.n, live)
	}
	if s.cap >= 0 && s.n > s.cap {
		return fmt.Errorf("tlb %s: %d live entries exceed capacity %d", name, s.n, s.cap)
	}
	if s.head > len(s.queue) {
		return fmt.Errorf("tlb %s: head %d past queue length %d", name, s.head, len(s.queue))
	}
	covered := 0
	for _, qb := range s.queue[s.head:] {
		if v := s.state[qb]; v != 0 && v&keptBit == 0 {
			s.state[qb] = v | keptBit
			covered++
		}
	}
	for _, qb := range s.queue[s.head:] {
		s.state[qb] &^= keptBit
	}
	if covered != s.n {
		return fmt.Errorf("tlb %s: %d of %d live entries have a queue slot", name, covered, s.n)
	}
	return nil
}

// TLB is one core's data TLB: three L1 size classes plus a unified L2.
// It is not safe for concurrent use; the event engine serializes cores.
// The zero value is unusable; construct with New or NewSized. TLB is a
// plain value so a machine's per-core TLBs pack into one slice.
type TLB struct {
	l1 [3]fifoSet // indexed by sim.PageSize
	l2 fifoSet
}

// New creates a TLB with the given geometry, sizing its page-state
// tables on demand.
func New(cfg Config) *TLB {
	t := NewSized(cfg, 0, nil)
	return &t
}

// NewSized creates a TLB whose state tables are pre-sized for page IDs
// in [0, pages) and drawn from sc (both optional: pages 0 grows on
// demand, sc nil allocates normally).
func NewSized(cfg Config, pages int, sc *dense.Scratch) TLB {
	return TLB{
		l1: [3]fifoSet{
			sim.Size4k:  newFifoSet(cfg.L1Entries4k, pages, sc),
			sim.Size64k: newFifoSet(cfg.L1Entries64k, pages, sc),
			sim.Size2M:  newFifoSet(cfg.L1Entries2M, pages, sc),
		},
		l2: newFifoSet(cfg.L2Entries, pages, sc),
	}
}

var sizes = [3]sim.PageSize{sim.Size4k, sim.Size64k, sim.Size2M}

// Lookup probes the TLB for vpn. Hardware probes each size class with
// the correspondingly aligned tag. An L2 hit promotes the entry to the
// proper L1 class.
func (t *TLB) Lookup(vpn sim.PageID) HitLevel {
	for _, s := range sizes {
		if _, ok := t.l1[s].has(s.Align(vpn)); ok {
			return HitL1
		}
	}
	for _, s := range sizes {
		base := s.Align(vpn)
		if e, ok := t.l2.has(base); ok && e.size == s {
			t.l2.invalidate(base)
			t.installL1(base, e)
			return HitL2
		}
	}
	return Miss
}

// LookupInfo is Lookup also returning the hit entry's base and size
// class (valid only when level != Miss). The parallel engine's probe
// uses it to stamp speculative touches with the translation entry they
// rely on, so a later invalidation of that entry can be detected.
func (t *TLB) LookupInfo(vpn sim.PageID) (base sim.PageID, size sim.PageSize, level HitLevel) {
	for _, s := range sizes {
		b := s.Align(vpn)
		if _, ok := t.l1[s].has(b); ok {
			return b, s, HitL1
		}
	}
	for _, s := range sizes {
		b := s.Align(vpn)
		if e, ok := t.l2.has(b); ok && e.size == s {
			t.l2.invalidate(b)
			t.installL1(b, e)
			return b, s, HitL2
		}
	}
	return 0, 0, Miss
}

// Insert caches the translation for the mapping of the given size
// covering vpn, as the hardware does after a successful page walk.
func (t *TLB) Insert(vpn sim.PageID, size sim.PageSize) {
	base := size.Align(vpn)
	t.installL1(base, entry{size: size})
}

func (t *TLB) installL1(base sim.PageID, e entry) {
	if vb, ve, ok := t.l1[e.size].insert(base, e); ok {
		// L1 victim is demoted into the unified L2.
		t.l2.insert(vb, ve)
	}
}

// Invalidate drops any cached translation covering vpn (the INVLPG
// operation). It reports whether an entry was actually present, which
// determines whether the invalidation had any effect.
func (t *TLB) Invalidate(vpn sim.PageID) bool {
	hit := false
	for _, s := range sizes {
		base := s.Align(vpn)
		if t.l1[s].invalidate(base) {
			hit = true
		}
		if e, ok := t.l2.has(base); ok && e.size == s {
			t.l2.invalidate(base)
			hit = true
		}
	}
	return hit
}

// InvalDisturbs reports whether Invalidate(vpn) would interact with TLB
// state that the attached journal's speculative window observed or
// produced: an entry covering vpn is present right now, or an unreleased
// journal op recorded a state change for one of vpn's aligned bases.
// When it returns false the invalidation is independent of the window —
// it finds nothing to drop today, dropped nothing the window relied on,
// and frees no capacity the window's inserts contended for — so the
// parallel engine can keep the speculation. When it returns true the
// engine must roll the window back, because replaying it after the
// invalidation could classify touches differently.
func (t *TLB) InvalDisturbs(vpn sim.PageID) bool {
	for _, s := range sizes {
		base := s.Align(vpn)
		if _, ok := t.l1[s].has(base); ok {
			return true
		}
		if e, ok := t.l2.has(base); ok && e.size == s {
			return true
		}
	}
	if j := t.l2.j; j != nil {
		return j.Touched(sim.Size4k.Align(vpn), sim.Size64k.Align(vpn), sim.Size2M.Align(vpn))
	}
	return false
}

// SetJournal attaches j to all four sets so that speculative mutations
// are logged while j is enabled. Pass nil to detach.
func (t *TLB) SetJournal(j *Journal) {
	for _, s := range sizes {
		t.l1[s].j = j
	}
	t.l2.j = j
}

// Flush empties the TLB (full flush, e.g. on context switch).
func (t *TLB) Flush() {
	for _, s := range sizes {
		t.l1[s].flush()
	}
	t.l2.flush()
}

// Entries returns the current number of cached translations across
// both levels (diagnostics).
func (t *TLB) Entries() int {
	n := t.l2.len()
	for _, s := range sizes {
		n += t.l1[s].len()
	}
	return n
}

// ForEachEntry visits every cached translation; level is 1 or 2. The
// invariant auditor cross-checks each against the page tables.
func (t *TLB) ForEachEntry(fn func(base sim.PageID, size sim.PageSize, level int)) {
	for _, s := range sizes {
		t.l1[s].forEach(func(base sim.PageID, size sim.PageSize) { fn(base, size, 1) })
	}
	t.l2.forEach(func(base sim.PageID, size sim.PageSize) { fn(base, size, 2) })
}

// CheckInvariants verifies the internal consistency of all four sets.
func (t *TLB) CheckInvariants() error {
	for _, s := range sizes {
		if err := t.l1[s].checkInvariants(fmt.Sprintf("L1/%v", s)); err != nil {
			return err
		}
	}
	return t.l2.checkInvariants("L2")
}
