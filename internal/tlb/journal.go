package tlb

import "cmcp/internal/sim"

// Journal records undo information for speculative TLB mutations. The
// parallel engine's probe phase runs real Lookup/Insert calls against a
// core's TLB before it is known whether the touches they belong to will
// commit; every state-table byte and queue-metadata change is logged so
// that Rollback can restore the TLB to its last committed state when a
// cross-core invalidation truncates the speculation.
//
// One journal serves all four fifoSets of one core's TLB (attach with
// TLB.SetJournal). Ops below the floor are committed and can never be
// rolled back; Release raises the floor as the engine commits touches.
// Queue compaction keeps firing at its usual trigger points while the
// journal is attached (its timing is semantically visible); a full
// pre-compaction queue snapshot is logged so it can be undone.
// Marks are virtual positions, monotone over the journal's lifetime:
// they stay valid across the storage reclaim that happens when every op
// is released, so a caller may hold a mark across commit boundaries
// (the engine's partially committed bursts do).
type Journal struct {
	ops     []journalOp
	floor   int // ops[:floor] are committed
	base    int // virtual position of ops[0]
	enabled bool
}

// journalOp is one undo record: a single state-table byte (state op),
// a snapshot of one set's count/queue metadata (meta op, logged once at
// the start of each mutating call), or a full queue snapshot (queue op,
// logged before a compaction rewrites the layout — compaction timing is
// semantically visible, because rewriting dedupes the stale slots that
// determine a re-inserted page's effective FIFO position, so it must
// run at exactly the serial trigger points and be undoable).
type journalOp struct {
	set  *fifoSet
	base sim.PageID // state op: page whose byte changed
	old  uint8      // state op: previous byte value
	meta bool
	n    int
	head int
	qlen int
	snap []int32 // queue op: full pre-compaction queue content
}

// Enable turns on logging (probe phase).
func (j *Journal) Enable() { j.enabled = true }

// Disable turns off logging (sweep phase). Unreleased ops remain
// rollbackable.
func (j *Journal) Disable() { j.enabled = false }

// Mark returns the current journal position; ops at or past the mark
// are the ones logged after this call.
func (j *Journal) Mark() int { return j.base + len(j.ops) }

// Unreleased reports how many ops are still rollbackable.
func (j *Journal) Unreleased() int { return len(j.ops) - j.floor }

// Release commits every op below mark: they can no longer be undone.
// Marks may be released out of order; the floor only rises. Storage is
// reclaimed once everything is released.
func (j *Journal) Release(mark int) {
	rel := mark - j.base
	if rel > len(j.ops) {
		rel = len(j.ops)
	}
	if rel > j.floor {
		j.floor = rel
	}
	if j.floor == len(j.ops) && j.floor > 0 {
		j.base += j.floor
		j.ops = j.ops[:0]
		j.floor = 0
	}
}

// Rollback undoes every unreleased op in reverse order, restoring the
// attached sets to their state as of the floor.
func (j *Journal) Rollback() {
	for i := len(j.ops) - 1; i >= j.floor; i-- {
		op := &j.ops[i]
		s := op.set
		switch {
		case op.snap != nil:
			s.queue = append(s.queue[:0], op.snap...)
			s.head = op.head
		case op.meta:
			s.n = op.n
			s.head = op.head
			s.queue = s.queue[:op.qlen]
		default:
			s.state[op.base] = op.old
		}
	}
	j.ops = j.ops[:j.floor]
}

// Touched reports whether any unreleased op recorded a state change for
// one of the given bases (the three size-aligned bases of one vpn; see
// TLB.InvalDisturbs).
func (j *Journal) Touched(b0, b1, b2 sim.PageID) bool {
	for i := j.floor; i < len(j.ops); i++ {
		op := &j.ops[i]
		if !op.meta && (op.base == b0 || op.base == b1 || op.base == b2) {
			return true
		}
	}
	return false
}

func (j *Journal) logMeta(s *fifoSet) {
	j.ops = append(j.ops, journalOp{set: s, meta: true, n: s.n, head: s.head, qlen: len(s.queue)})
}

func (j *Journal) logQueue(s *fifoSet) {
	snap := make([]int32, len(s.queue))
	copy(snap, s.queue)
	j.ops = append(j.ops, journalOp{set: s, snap: snap, head: s.head})
}

func (j *Journal) logState(s *fifoSet, base sim.PageID) {
	var old uint8
	if base < sim.PageID(len(s.state)) {
		old = s.state[base]
	}
	j.ops = append(j.ops, journalOp{set: s, base: base, old: old})
}
