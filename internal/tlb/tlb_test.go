package tlb

import (
	"testing"
	"testing/quick"

	"cmcp/internal/sim"
)

func small() Config {
	return Config{L1Entries4k: 4, L1Entries64k: 2, L1Entries2M: 2, L2Entries: 4}
}

func TestLookupMissInsertHit(t *testing.T) {
	tb := New(small())
	if tb.Lookup(5) != Miss {
		t.Error("cold TLB must miss")
	}
	tb.Insert(5, sim.Size4k)
	if tb.Lookup(5) != HitL1 {
		t.Error("inserted entry must hit L1")
	}
	if tb.Lookup(6) != Miss {
		t.Error("neighbour page must miss for 4k entry")
	}
}

func Test64kEntryCoversGroup(t *testing.T) {
	tb := New(small())
	tb.Insert(35, sim.Size64k) // any member vpn
	for v := sim.PageID(32); v < 48; v++ {
		if tb.Lookup(v) != HitL1 {
			t.Fatalf("vpn %d must hit via the 64k entry", v)
		}
	}
	if tb.Lookup(48) == HitL1 {
		t.Error("vpn outside group must not hit")
	}
	if tb.Entries() != 1 {
		t.Errorf("group must occupy exactly one entry, got %d", tb.Entries())
	}
}

func Test2MEntryCoversRegion(t *testing.T) {
	tb := New(small())
	tb.Insert(1000, sim.Size2M)
	if tb.Lookup(512) != HitL1 || tb.Lookup(1023) != HitL1 {
		t.Error("2M entry must cover the whole aligned region")
	}
	if tb.Lookup(1024) == HitL1 {
		t.Error("next region must miss")
	}
}

func TestFIFOEvictionAndL2Demotion(t *testing.T) {
	tb := New(small()) // 4 L1 4k entries, 4 L2
	for v := sim.PageID(0); v < 5; v++ {
		tb.Insert(v, sim.Size4k)
	}
	// vpn 0 was evicted from L1 into L2.
	if got := tb.Lookup(0); got != HitL2 {
		t.Errorf("demoted entry lookup = %v, want HitL2", got)
	}
	// The L2 hit promoted it back to L1.
	if got := tb.Lookup(0); got != HitL1 {
		t.Errorf("promoted entry lookup = %v, want HitL1", got)
	}
}

func TestL2EvictionDiscards(t *testing.T) {
	tb := New(small())
	// Fill far beyond both levels.
	for v := sim.PageID(0); v < 20; v++ {
		tb.Insert(v, sim.Size4k)
	}
	// The oldest entries are gone entirely.
	if tb.Lookup(0) != Miss {
		t.Error("entry must eventually fall out of both levels")
	}
	if tb.Entries() > 8 {
		t.Errorf("capacity exceeded: %d entries", tb.Entries())
	}
}

func TestInvalidate(t *testing.T) {
	tb := New(small())
	tb.Insert(5, sim.Size4k)
	if !tb.Invalidate(5) {
		t.Error("invalidate of cached entry must report true")
	}
	if tb.Lookup(5) != Miss {
		t.Error("invalidated entry must miss")
	}
	if tb.Invalidate(5) {
		t.Error("second invalidate must report false")
	}
}

func TestInvalidateByMemberVPN(t *testing.T) {
	tb := New(small())
	tb.Insert(32, sim.Size64k)
	if !tb.Invalidate(40) { // member, not base
		t.Error("invalidate via member vpn must find the group entry")
	}
	if tb.Lookup(33) != Miss {
		t.Error("whole group must be gone")
	}
	tb.Insert(512, sim.Size2M)
	if !tb.Invalidate(700) {
		t.Error("invalidate inside 2M region")
	}
}

func TestInvalidateReachesL2(t *testing.T) {
	tb := New(small())
	for v := sim.PageID(0); v < 5; v++ {
		tb.Insert(v, sim.Size4k)
	}
	// vpn 0 now lives in L2 only.
	if !tb.Invalidate(0) {
		t.Error("invalidate must reach L2")
	}
	if tb.Lookup(0) != Miss {
		t.Error("L2 entry survived invalidation")
	}
}

func TestFlush(t *testing.T) {
	tb := New(small())
	for v := sim.PageID(0); v < 6; v++ {
		tb.Insert(v, sim.Size4k)
	}
	tb.Flush()
	if tb.Entries() != 0 {
		t.Errorf("Entries after flush = %d", tb.Entries())
	}
	for v := sim.PageID(0); v < 6; v++ {
		if tb.Lookup(v) != Miss {
			t.Error("flushed TLB must miss everywhere")
		}
	}
}

func TestZeroCapacityClass(t *testing.T) {
	tb := New(Config{L1Entries4k: 0, L1Entries64k: 0, L1Entries2M: 0, L2Entries: 0})
	tb.Insert(1, sim.Size4k) // must not panic
	if tb.Lookup(1) != Miss {
		t.Error("zero-capacity TLB always misses")
	}
}

func TestMixedSizeClassesIndependent(t *testing.T) {
	tb := New(small())
	tb.Insert(0, sim.Size4k)
	tb.Insert(16, sim.Size64k)
	tb.Insert(512, sim.Size2M)
	if tb.Lookup(0) != HitL1 || tb.Lookup(20) != HitL1 || tb.Lookup(600) != HitL1 {
		t.Error("classes must coexist")
	}
	// Filling the 4k class must not evict other classes.
	for v := sim.PageID(100); v < 110; v++ {
		tb.Insert(v, sim.Size4k)
	}
	if tb.Lookup(20) != HitL1 || tb.Lookup(600) != HitL1 {
		t.Error("4k pressure evicted other size classes from L1")
	}
}

func TestCapacityNeverExceededProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := small()
		tb := New(cfg)
		maxTotal := cfg.L1Entries4k + cfg.L1Entries64k + cfg.L1Entries2M + cfg.L2Entries
		for _, op := range ops {
			vpn := sim.PageID(op % 4096)
			switch op >> 14 {
			case 0, 1:
				tb.Insert(vpn, sim.Size4k)
			case 2:
				tb.Insert(vpn, sim.Size64k)
			default:
				tb.Invalidate(vpn)
			}
			if tb.Entries() > maxTotal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInsertLookupConsistencyProperty(t *testing.T) {
	// Property: immediately after Insert, Lookup hits (L1).
	f := func(raw []uint16) bool {
		tb := New(DefaultConfig())
		for _, r := range raw {
			vpn := sim.PageID(r)
			size := sizes[int(r)%3]
			tb.Insert(vpn, size)
			if tb.Lookup(vpn) != HitL1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
