package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64 seeding a xoshiro256**-like step). Every simulated core
// and every workload stream owns its own RNG derived from the run seed,
// so results are independent of event interleaving and bit-reproducible
// across runs and platforms.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator from seed via SplitMix64 so that
// nearby seeds yield uncorrelated streams.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives a new independent generator; the parent advances once.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm fills out with a pseudo-random permutation of 0..len(out)-1
// (Fisher-Yates).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
