package sim

// Resource models a mutually exclusive resource (a lock) in virtual
// time. The discrete-event engine advances cores in virtual-time order,
// so contention can be resolved with a simple queueing rule: a core that
// asks for the resource at time t is granted it at max(t, freeAt) and
// the resource stays busy for the requested hold time.
//
// This reproduces the serialization behaviour of the address-space-wide
// page-table lock that makes regular page tables collapse beyond ~24
// cores, and — with one Resource per page — the fine-grained locking
// that lets PSPT scale.
type Resource struct {
	freeAt Cycles
	waits  Cycles // accumulated wait time, for diagnostics
	grants uint64
}

// Acquire requests the resource at virtual time now for hold cycles.
// It returns the time the caller finishes (release time) and the time
// spent waiting in the queue.
func (r *Resource) Acquire(now, hold Cycles) (done, waited Cycles) {
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	waited = start - now
	r.freeAt = start + hold
	r.waits += waited
	r.grants++
	return r.freeAt, waited
}

// FreeAt returns the virtual time at which the resource next becomes
// available.
func (r *Resource) FreeAt() Cycles { return r.freeAt }

// Waited returns the total queueing delay accumulated by all grants.
func (r *Resource) Waited() Cycles { return r.waits }

// Grants returns the number of times the resource was acquired.
func (r *Resource) Grants() uint64 { return r.grants }

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() { *r = Resource{} }
