package sim

import "fmt"

// Topology describes a multi-socket machine: Sockets rings of
// CoresPerSocket cores each, joined by a cross-socket interconnect.
// A nil *Topology (the default everywhere) means the original flat
// single-ring KNC model, and every cost routine below degrades to the
// flat formulas exactly — nil-Topology runs are bit-identical to
// builds that predate this type, which is what the single-socket
// golden guard pins.
//
// The cost asymmetries are deliberately coarse (one interconnect
// charge per crossing, one extra-walk charge per remote table touch):
// the goal is TPP-style per-domain asymmetry in the model, not a
// cycle-accurate fabric.
type Topology struct {
	// Sockets is the number of NUMA domains (>= 1).
	Sockets int
	// CoresPerSocket is the ring size inside each domain. The flat
	// model's ring of n cores becomes Sockets rings of CoresPerSocket.
	CoresPerSocket int

	// CrossSocketIPI is the extra delivery cost, in cycles, charged
	// once per IPI that crosses the interconnect.
	CrossSocketIPI Cycles
	// RemoteWalkExtra is the extra page-walk cost charged when a walk
	// must read a page table homed on another socket (regular shared
	// tables live on socket 0; PSPT consults during sibling resolution
	// charge it when the mapping's replica set misses the socket).
	RemoteWalkExtra Cycles
	// ReplicaSync is the per-remote-socket cost of synchronizing
	// page-table replicas on a PTE update (unmap/eviction).
	ReplicaSync Cycles
	// MigrateCost is the one-time cost of migrating a hot page-table
	// page to the accessing socket.
	MigrateCost Cycles
	// MigrateThreshold is how many consecutive remote consults from
	// one socket re-home a page-table page there (<= 0 disables
	// migration).
	MigrateThreshold int
}

// DefaultTopology returns a Topology with the repo's standard NUMA
// cost constants. The defaults keep the intra-socket numbers identical
// to the flat CostModel and add interconnect charges in the same
// ballpark as the numaPTE paper's remote/local ratios (~3-4x walks,
// interconnect comparable to a local IPI delivery).
func DefaultTopology(sockets, coresPerSocket int) *Topology {
	return &Topology{
		Sockets:          sockets,
		CoresPerSocket:   coresPerSocket,
		CrossSocketIPI:   600,
		RemoteWalkExtra:  180,
		ReplicaSync:      250,
		MigrateCost:      3000,
		MigrateThreshold: 4,
	}
}

// Multi reports whether t describes more than one NUMA domain. Safe on
// nil: a nil Topology is the flat single-socket model.
func (t *Topology) Multi() bool {
	return t != nil && t.Sockets > 1
}

// SocketOf maps a core (including the scanner core, whose ID is one
// past the booked cores) to its NUMA domain. Cores are numbered
// contiguously across sockets: cores [0, CoresPerSocket) on socket 0,
// and so on. IDs past the last socket's range (the scanner core on a
// fully-populated topology) clamp to the last socket.
func (t *Topology) SocketOf(c CoreID) int {
	if !t.Multi() {
		return 0
	}
	s := int(c) / t.CoresPerSocket
	if s >= t.Sockets {
		s = t.Sockets - 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// Validate checks a topology against the run's core count.
func (t *Topology) Validate(cores int) error {
	if t == nil {
		return nil
	}
	if t.Sockets < 1 {
		return fmt.Errorf("sim: Topology.Sockets must be >= 1 (got %d)", t.Sockets)
	}
	if t.Sockets > 32 {
		return fmt.Errorf("sim: Topology.Sockets must be <= 32 (got %d)", t.Sockets)
	}
	if t.CoresPerSocket < 1 {
		return fmt.Errorf("sim: Topology.CoresPerSocket must be >= 1 (got %d)", t.CoresPerSocket)
	}
	if t.Sockets*t.CoresPerSocket < cores {
		return fmt.Errorf("sim: topology %dx%d holds %d cores, run needs %d",
			t.Sockets, t.CoresPerSocket, t.Sockets*t.CoresPerSocket, cores)
	}
	return nil
}

// String renders the topology as "SxC" for labels and journals.
func (t *Topology) String() string {
	if t == nil {
		return "flat"
	}
	return fmt.Sprintf("%dx%d", t.Sockets, t.CoresPerSocket)
}
