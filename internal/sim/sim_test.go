package sim

import (
	"testing"
	"testing/quick"
)

func TestPageSizeSpan(t *testing.T) {
	cases := []struct {
		size PageSize
		span PageID
		str  string
	}{
		{Size4k, 1, "4kB"},
		{Size64k, 16, "64kB"},
		{Size2M, 512, "2MB"},
	}
	for _, c := range cases {
		if got := c.size.Span(); got != c.span {
			t.Errorf("%v.Span() = %d, want %d", c.size, got, c.span)
		}
		if got := c.size.Bytes(); got != int64(c.span)*PageSize4k {
			t.Errorf("%v.Bytes() = %d, want %d", c.size, got, int64(c.span)*PageSize4k)
		}
		if got := c.size.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
	if s := PageSize(99).String(); s != "PageSize(99)" {
		t.Errorf("unknown size String() = %q", s)
	}
}

func TestPageSizeAlign(t *testing.T) {
	if got := Size64k.Align(17); got != 16 {
		t.Errorf("Align(17) = %d, want 16", got)
	}
	if got := Size64k.Align(16); got != 16 {
		t.Errorf("Align(16) = %d, want 16", got)
	}
	if !Size64k.Aligned(32) || Size64k.Aligned(33) {
		t.Error("Aligned boundary check failed")
	}
	if got := Size2M.Align(1000); got != 512 {
		t.Errorf("2M Align(1000) = %d, want 512", got)
	}
	if !Size4k.Aligned(12345) {
		t.Error("every page is 4k aligned")
	}
}

func TestPageSizeAlignProperty(t *testing.T) {
	f := func(v int64) bool {
		vpn := PageID(v & 0x7fffffff)
		for _, s := range []PageSize{Size4k, Size64k, Size2M} {
			a := s.Align(vpn)
			if a > vpn || !s.Aligned(a) || vpn-a >= s.Span() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScannerCore(t *testing.T) {
	if ScannerCore(56) != 56 {
		t.Errorf("ScannerCore(56) = %d", ScannerCore(56))
	}
}

func TestDMACost(t *testing.T) {
	c := DefaultCostModel()
	if got := c.DMACost(0); got != 0 {
		t.Errorf("DMACost(0) = %d, want 0", got)
	}
	small := c.DMACost(PageSize4k)
	big := c.DMACost(PageSize2M)
	if small <= c.DMALatency {
		t.Errorf("DMACost(4k) = %d, should exceed latency %d", small, c.DMALatency)
	}
	if big <= small {
		t.Error("2MB transfer must cost more than 4kB")
	}
	// 2 MB at 5.7 B/cycle dominates latency: roughly 512x the 4 kB payload.
	payloadSmall := small - c.DMALatency
	payloadBig := big - c.DMALatency
	ratio := float64(payloadBig) / float64(payloadSmall)
	if ratio < 500 || ratio > 524 {
		t.Errorf("payload ratio = %.1f, want ~512", ratio)
	}
}

func TestShootdownInitiatorCost(t *testing.T) {
	c := DefaultCostModel()
	if got := c.ShootdownInitiatorCost(0); got != 0 {
		t.Errorf("0 targets should be free, got %d", got)
	}
	one := c.ShootdownInitiatorCost(1)
	sixty := c.ShootdownInitiatorCost(60)
	if one != c.IPISend+c.IPIPerTarget {
		t.Errorf("1 target = %d, want %d", one, c.IPISend+c.IPIPerTarget)
	}
	if sixty-c.IPISend != 60*(one-c.IPISend) {
		t.Error("per-target cost must be linear in targets")
	}
}

func TestResourceUncontended(t *testing.T) {
	var r Resource
	done, waited := r.Acquire(100, 50)
	if done != 150 || waited != 0 {
		t.Errorf("Acquire = (%d, %d), want (150, 0)", done, waited)
	}
	if r.FreeAt() != 150 {
		t.Errorf("FreeAt = %d", r.FreeAt())
	}
}

func TestResourceContended(t *testing.T) {
	var r Resource
	r.Acquire(100, 50) // busy until 150
	done, waited := r.Acquire(120, 30)
	if done != 180 || waited != 30 {
		t.Errorf("contended Acquire = (%d, %d), want (180, 30)", done, waited)
	}
	if r.Waited() != 30 || r.Grants() != 2 {
		t.Errorf("Waited=%d Grants=%d", r.Waited(), r.Grants())
	}
	r.Reset()
	if r.FreeAt() != 0 || r.Waited() != 0 || r.Grants() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestResourceSerializesProperty(t *testing.T) {
	// Property: k back-to-back acquisitions at the same instant finish
	// exactly k*hold later — the queueing rule fully serializes.
	f := func(k8 uint8, hold16 uint16) bool {
		k := int(k8%20) + 1
		hold := Cycles(hold16%1000) + 1
		var r Resource
		var done Cycles
		for i := 0; i < k; i++ {
			done, _ = r.Acquire(0, hold)
		}
		return done == Cycles(k)*hold
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/64 identical draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must not yield a degenerate stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	out := make([]int, 100)
	r.Perm(out)
	seen := make([]bool, 100)
	for _, v := range out {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation at value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	// Child stream should not track the parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split stream matched parent %d/64 times", same)
	}
}

func TestRingHops(t *testing.T) {
	cases := []struct {
		a, b CoreID
		n    int
		want int
	}{
		{0, 0, 60, 0},
		{0, 1, 60, 1},
		{0, 59, 60, 1},  // wrap-around: neighbours on the ring
		{0, 30, 60, 30}, // antipode
		{10, 50, 60, 20},
		{5, 2, 60, 3},
	}
	for _, c := range cases {
		if got := RingHops(c.a, c.b, c.n); got != c.want {
			t.Errorf("RingHops(%d,%d,%d) = %d, want %d", c.a, c.b, c.n, got, c.want)
		}
	}
}

func TestRingHopsSymmetricProperty(t *testing.T) {
	f := func(a8, b8 uint8) bool {
		const n = 60
		a, b := CoreID(a8%n), CoreID(b8%n)
		h := RingHops(a, b, n)
		return h == RingHops(b, a, n) && h >= 0 && h <= n/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPIDeliveryCost(t *testing.T) {
	c := DefaultCostModel()
	near := c.IPIDeliveryCost(0, 1, 60)
	far := c.IPIDeliveryCost(0, 30, 60)
	if far <= near {
		t.Errorf("far target (%d) must cost more than neighbour (%d)", far, near)
	}
	if near != c.IPIPerTarget+c.IPIPerHop {
		t.Errorf("neighbour cost = %d", near)
	}
}

func TestKNLCostModel(t *testing.T) {
	knc := DefaultCostModel()
	knl := KNLCostModel()
	if knl.DMALatency >= knc.DMALatency {
		t.Error("KNL latency must be lower")
	}
	if knl.DMABytesPerCycle <= knc.DMABytesPerCycle {
		t.Error("KNL bandwidth must be higher")
	}
	if knl.IPIInterrupt != knc.IPIInterrupt || knl.TouchCompute != knc.TouchCompute {
		t.Error("CPU-side costs must be unchanged")
	}
}
