package sim

// CostModel holds every cycle cost the simulator charges. The defaults
// are calibrated to a Knights Corner Xeon Phi 5110P (60 in-order cores
// at 1.053 GHz, PCIe gen2 x16 giving ~6 GB/s measured by the paper) and
// are the single knob set used by all experiments; EXPERIMENTS.md
// records the calibration rationale.
//
// One simulated access is a page *touch*: it stands for the burst of
// loads/stores an HPC kernel issues inside one 4 kB page before moving
// on. TouchCompute amortizes that burst's compute+cache time, so the
// ratio of TouchCompute to fault/shootdown costs — not absolute wall
// time — decides the shapes of the figures, exactly as the relative
// PCIe/IPI/compute costs do on the real card.
type CostModel struct {
	// TouchCompute is the amortized compute + cache cost of one page
	// touch when the translation is already in the L1 TLB.
	TouchCompute Cycles

	// TLBL2Hit is charged when the L1 TLB misses but the unified L2 TLB
	// holds the translation.
	TLBL2Hit Cycles

	// PageWalk is the cost of a full hardware page-table walk after
	// missing both TLB levels (4 radix levels on cold caches).
	PageWalk Cycles

	// PSPTConsult is the extra software cost, on a minor fault, of
	// consulting sibling cores' partially separated page tables and
	// copying a valid PTE (paper §2.3).
	PSPTConsult Cycles

	// FaultEntry is the trap + kernel entry/exit overhead of any page
	// fault, before the VM subsystem does real work.
	FaultEntry Cycles

	// FaultService is the software cost of servicing a major fault:
	// allocator, queues, policy bookkeeping (excluding DMA and IPIs).
	FaultService Cycles

	// LockBase is the critical-section length charged while holding a
	// page-table lock for one PTE update. The regular shared table
	// holds its single address-space lock for this long per update,
	// which is what serializes concurrent faults.
	LockBase Cycles

	// AllocLock is the hold time of the (global but short) frame
	// allocator lock taken on the PSPT major-fault path. Unlike the
	// regular tables' address-space lock, it covers only the free-list
	// operation, so it contends mildly.
	AllocLock Cycles

	// IPISend is the fixed cost, at the initiating core, of assembling
	// a remote TLB invalidation request.
	IPISend Cycles

	// IPIPerTarget is the per-destination cost at the initiator of the
	// invalidation IPI loop (write the request structure, take its
	// lock, trigger the IPI). Acknowledgement is asynchronous; the
	// heavy price is paid at the targets (IPIInterrupt).
	IPIPerTarget Cycles

	// IPIInterrupt is the cost charged to each *target* core: pipeline
	// flush, interrupt entry, synchronization on the shared request
	// structures (the paper measures up to 8x more cycles spent on
	// these locks under LRU), INVLPG, acknowledgement, pipeline refill
	// on the in-order core.
	IPIInterrupt Cycles

	// IPIPerHop is the additional per-ring-hop delivery cost of an
	// eviction IPI. KNC cores sit on a bidirectional ring; an IPI (and
	// its acknowledgement) crosses min(|a-b|, N-|a-b|) stops, so
	// shooting down a distant core costs more than a neighbour. See
	// RingHops.
	IPIPerHop Cycles

	// ScanIPIPerTarget is the per-destination cost at the statistics
	// scanner for its invalidation IPIs. Unlike eviction shootdowns —
	// which must complete before the frame is reused — accessed-bit
	// invalidations need no completion wait, so the scanner fires them
	// asynchronously and pays only the enqueue cost. The damage lands
	// on the targets (IPIInterrupt), which is the paper's point.
	ScanIPIPerTarget Cycles

	// InvlpgLocal is the cost of invalidating one entry in the local
	// TLB without an IPI.
	InvlpgLocal Cycles

	// DMALatency is the fixed PCIe round-trip setup latency of one
	// host<->device page transfer.
	DMALatency Cycles

	// DMABytesPerCycle is the effective PCIe bandwidth for page-sized
	// transfers, in the simulator's compressed time base. The real link
	// streams ~6 GB/s (~5.7 B/cycle), but the simulator compresses the
	// compute between faults (one touch stands for a burst of real
	// accesses), so the bandwidth is scaled by the same factor to keep
	// the compute-to-transfer ratio — and thus the link utilization
	// regime the paper ran in (busy but not saturated) — unchanged.
	DMABytesPerCycle float64

	// ScanPTE is the scanner cost of checking and clearing the accessed
	// bit of one PTE (excluding the shootdown it triggers).
	ScanPTE Cycles

	// ScanPeriod is the simulated time between two runs of the LRU
	// statistics scanner (the paper uses a 10 ms timer).
	ScanPeriod Cycles

	// AgePeriod is the simulated time between two CMCP aging sweeps.
	AgePeriod Cycles

	// RetryBackoffBase is the delay charged before the first retry of a
	// failed page transfer (fault injection); each further retry doubles
	// it up to RetryBackoffCap. Deterministic, charged in virtual time.
	RetryBackoffBase Cycles

	// RetryBackoffCap bounds the exponential transfer-retry backoff.
	RetryBackoffCap Cycles

	// AckTimeout is how long a shootdown initiator waits for a remote
	// invalidation acknowledgement before re-sending the IPI (only
	// reachable under fault injection; real acks are modelled as
	// reliable).
	AckTimeout Cycles

	// LockStuckTimeout is the stall charged when an injected stuck-lock
	// fault delays a page-lock acquisition.
	LockStuckTimeout Cycles
}

// DefaultCostModel returns the calibrated Knights Corner model used by
// every experiment unless a test overrides individual fields.
func DefaultCostModel() CostModel {
	return CostModel{
		TouchCompute:     1200,
		TLBL2Hit:         8,
		PageWalk:         120,
		PSPTConsult:      400,
		FaultEntry:       2000,
		FaultService:     24000,
		LockBase:         600,
		AllocLock:        200,
		IPISend:          300,
		IPIPerTarget:     800,
		IPIPerHop:        20,
		IPIInterrupt:     8000,
		ScanIPIPerTarget: 150,
		InvlpgLocal:      40,
		DMALatency:       9000,
		DMABytesPerCycle: 10.0,
		ScanPTE:          20,
		ScanPeriod:       10_530_000, // 10 ms at 1.053 GHz
		AgePeriod:        21_060_000, // 20 ms
		RetryBackoffBase: 4000,
		RetryBackoffCap:  64000,
		AckTimeout:       12000,
		LockStuckTimeout: 30000,
	}
}

// RetryBackoff returns the deterministic capped-exponential delay
// charged before retry attempt n (1-based) of a failed page transfer.
func (c *CostModel) RetryBackoff(attempt int) Cycles {
	d := c.RetryBackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.RetryBackoffCap {
			return c.RetryBackoffCap
		}
	}
	if c.RetryBackoffCap > 0 && d > c.RetryBackoffCap {
		return c.RetryBackoffCap
	}
	return d
}

// KNLCostModel returns a cost model for a Knights Landing-like
// standalone many-core with on-package "near" memory and DDR "far"
// memory instead of a PCIe-attached host (the architecture the paper's
// conclusion anticipates: "Knights Landing ... will replace the PCI
// Express bus with printed circuit board connection between memory
// hierarchies (rendering the bandwidth significantly higher), we
// expect to see further performance benefits of our solution"). The
// transfer path is ~8x faster in latency and bandwidth; the CPU-side
// costs (faults, IPIs, scanning) are unchanged — which is exactly why
// the TLB-shootdown argument, and CMCP, still matter there.
func KNLCostModel() CostModel {
	c := DefaultCostModel()
	c.DMALatency /= 8
	c.DMABytesPerCycle *= 8
	return c
}

// DMACost returns the cost of moving n bytes across the PCIe link,
// including fixed latency.
func (c *CostModel) DMACost(n int64) Cycles {
	if n <= 0 {
		return 0
	}
	return c.DMALatency + Cycles(float64(n)/c.DMABytesPerCycle)
}

// ShootdownInitiatorCost returns the cost charged to the core that
// initiates a remote TLB invalidation to targets other cores, ignoring
// ring distance (used where the target set is only known by size).
func (c *CostModel) ShootdownInitiatorCost(targets int) Cycles {
	if targets <= 0 {
		return 0
	}
	return c.IPISend + Cycles(targets)*c.IPIPerTarget
}

// RingHops returns the number of stops between two cores on an n-core
// bidirectional ring.
func RingHops(a, b CoreID, n int) int {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	if n > 0 && n-d < d {
		d = n - d
	}
	return d
}

// IPIDeliveryCost returns the initiator-side cost of one eviction IPI
// from core a to core b on an n-core ring: the per-target base plus the
// per-hop wire time of the request/acknowledgement round trip.
func (c *CostModel) IPIDeliveryCost(a, b CoreID, n int) Cycles {
	return c.IPIPerTarget + Cycles(RingHops(a, b, n))*c.IPIPerHop
}

// IPIDeliveryCostOn is IPIDeliveryCost generalized to a multi-socket
// topology. With a nil or single-socket topology it returns exactly
// IPIDeliveryCost(a, b, n) — the flat-ring fallback that keeps
// default-config runs bit-identical. On a multi-socket topology, each
// socket is its own CoresPerSocket-stop ring; an intra-socket IPI pays
// ring hops over local IDs, and a cross-socket IPI pays the hops from
// the sender to its socket's interconnect stop (local ID 0), the
// CrossSocketIPI interconnect charge, and the hops from the receiving
// socket's interconnect stop to the target.
func (c *CostModel) IPIDeliveryCostOn(topo *Topology, a, b CoreID, n int) Cycles {
	if !topo.Multi() {
		return c.IPIDeliveryCost(a, b, n)
	}
	cps := topo.CoresPerSocket
	sa, sb := topo.SocketOf(a), topo.SocketOf(b)
	la, lb := CoreID(int(a)%cps), CoreID(int(b)%cps)
	if sa == sb {
		return c.IPIPerTarget + Cycles(RingHops(la, lb, cps))*c.IPIPerHop
	}
	hops := RingHops(la, 0, cps) + RingHops(lb, 0, cps)
	return c.IPIPerTarget + topo.CrossSocketIPI + Cycles(hops)*c.IPIPerHop
}
