package sim

import "testing"

// TestRingHopsProperties pins the ring-distance algebra the IPI cost
// model builds on: symmetry, the wrap-around shortcut, the triangle
// bound, and the degenerate n=0/n=1 rings.
func TestRingHopsProperties(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for a := 0; a < max(n, 4); a++ {
			for b := 0; b < max(n, 4); b++ {
				ab := RingHops(CoreID(a), CoreID(b), n)
				ba := RingHops(CoreID(b), CoreID(a), n)
				if ab != ba {
					t.Fatalf("RingHops not symmetric: n=%d a=%d b=%d: %d vs %d", n, a, b, ab, ba)
				}
				if valid := n == 0 || (a < n && b < n); valid && ab < 0 {
					t.Fatalf("RingHops negative: n=%d a=%d b=%d: %d", n, a, b, ab)
				}
				if n > 0 && a < n && b < n {
					if lim := n / 2; ab > lim {
						t.Fatalf("RingHops exceeds half ring: n=%d a=%d b=%d: %d > %d", n, a, b, ab, lim)
					}
					// Triangle bound through every intermediate stop.
					for c := 0; c < n; c++ {
						via := RingHops(CoreID(a), CoreID(c), n) + RingHops(CoreID(c), CoreID(b), n)
						if ab > via {
							t.Fatalf("RingHops violates triangle: n=%d a=%d b=%d via %d: %d > %d", n, a, b, c, ab, via)
						}
					}
				}
				if a == b && ab != 0 {
					t.Fatalf("RingHops(a,a) != 0: n=%d a=%d: %d", n, a, ab)
				}
			}
		}
	}
	// n=0 disables the wrap and degrades to |a-b| (legacy behavior some
	// callers rely on when the ring size is unknown).
	if got := RingHops(0, 5, 0); got != 5 {
		t.Fatalf("RingHops(0,5,0) = %d, want 5", got)
	}
	// n=1: a single-stop ring; the only valid pair is (0,0).
	if got := RingHops(0, 0, 1); got != 0 {
		t.Fatalf("RingHops(0,0,1) = %d, want 0", got)
	}
	// Wrap-around: neighbors across the seam are one hop apart.
	if got := RingHops(0, 7, 8); got != 1 {
		t.Fatalf("RingHops(0,7,8) = %d, want 1", got)
	}
}

func TestIPIDeliveryCostFormula(t *testing.T) {
	c := DefaultCostModel()
	for _, tc := range []struct {
		a, b CoreID
		n    int
	}{{0, 0, 8}, {0, 1, 8}, {0, 7, 8}, {2, 6, 8}, {0, 30, 60}} {
		want := c.IPIPerTarget + Cycles(RingHops(tc.a, tc.b, tc.n))*c.IPIPerHop
		if got := c.IPIDeliveryCost(tc.a, tc.b, tc.n); got != want {
			t.Fatalf("IPIDeliveryCost(%d,%d,%d) = %d, want %d", tc.a, tc.b, tc.n, got, want)
		}
	}
}

// TestIPIDeliveryCostOnFallback pins the bit-identity contract: a nil
// topology and a single-socket topology must both reproduce the flat
// formula exactly, for every pair.
func TestIPIDeliveryCostOnFallback(t *testing.T) {
	c := DefaultCostModel()
	single := DefaultTopology(1, 8)
	for a := CoreID(0); a < 8; a++ {
		for b := CoreID(0); b < 8; b++ {
			want := c.IPIDeliveryCost(a, b, 8)
			if got := c.IPIDeliveryCostOn(nil, a, b, 8); got != want {
				t.Fatalf("nil topo: (%d,%d) = %d, want %d", a, b, got, want)
			}
			if got := c.IPIDeliveryCostOn(single, a, b, 8); got != want {
				t.Fatalf("1-socket topo: (%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestIPIDeliveryCostOnMultiSocket(t *testing.T) {
	c := DefaultCostModel()
	topo := DefaultTopology(2, 4)
	// Intra-socket: local ring of 4, independent of the other socket.
	wantIntra := c.IPIPerTarget + Cycles(RingHops(1, 3, 4))*c.IPIPerHop
	if got := c.IPIDeliveryCostOn(topo, 5, 7, 8); got != wantIntra {
		t.Fatalf("intra-socket (5,7) = %d, want %d", got, wantIntra)
	}
	// Cross-socket: hops to each interconnect stop plus the fabric charge.
	hops := RingHops(1, 0, 4) + RingHops(3, 0, 4)
	wantCross := c.IPIPerTarget + topo.CrossSocketIPI + Cycles(hops)*c.IPIPerHop
	if got := c.IPIDeliveryCostOn(topo, 1, 7, 8); got != wantCross {
		t.Fatalf("cross-socket (1,7) = %d, want %d", got, wantCross)
	}
	// Cross-socket must cost strictly more than the same local distance.
	if wantCross <= wantIntra {
		t.Fatalf("cross-socket (%d) not more expensive than intra (%d)", wantCross, wantIntra)
	}
}

func TestTopologySocketOf(t *testing.T) {
	topo := DefaultTopology(2, 30)
	cases := []struct {
		c    CoreID
		want int
	}{{0, 0}, {29, 0}, {30, 1}, {59, 1}, {60, 1}} // 60 = scanner core, clamps
	for _, tc := range cases {
		if got := topo.SocketOf(tc.c); got != tc.want {
			t.Fatalf("SocketOf(%d) = %d, want %d", tc.c, got, tc.want)
		}
	}
	var nilTopo *Topology
	if got := nilTopo.SocketOf(42); got != 0 {
		t.Fatalf("nil.SocketOf = %d, want 0", got)
	}
	if nilTopo.Multi() {
		t.Fatal("nil topology reports Multi")
	}
	if DefaultTopology(1, 60).Multi() {
		t.Fatal("single-socket topology reports Multi")
	}
	if !topo.Multi() {
		t.Fatal("2-socket topology does not report Multi")
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (*Topology)(nil).Validate(60); err != nil {
		t.Fatalf("nil topology: %v", err)
	}
	if err := DefaultTopology(2, 30).Validate(60); err != nil {
		t.Fatalf("2x30 for 60 cores: %v", err)
	}
	if err := DefaultTopology(2, 4).Validate(60); err == nil {
		t.Fatal("2x4 for 60 cores: want error")
	}
	if err := DefaultTopology(0, 4).Validate(4); err == nil {
		t.Fatal("0 sockets: want error")
	}
	if err := DefaultTopology(2, 0).Validate(4); err == nil {
		t.Fatal("0 cores/socket: want error")
	}
	if err := DefaultTopology(64, 1).Validate(4); err == nil {
		t.Fatal("64 sockets: want error")
	}
}
