// Package sim provides the base vocabulary of the CMCP simulator: core,
// page and frame identifiers, virtual time in cycles, the calibrated
// cycle-cost model, virtual-time shared resources and a deterministic
// random number generator.
//
// Everything in the simulator is expressed in simulated CPU cycles of a
// 1.053 GHz Xeon Phi (Knights Corner) core. The discrete-event engine in
// internal/machine advances per-core virtual clocks; packages below it
// (tlb, vm, policy) only account costs through the CostModel and never
// read wall-clock time, which keeps every run bit-reproducible.
package sim

import "fmt"

// CoreID identifies a simulated CPU core. Cores are numbered 0..N-1.
// The LRU statistics scanner runs on a dedicated pseudo-core whose ID is
// returned by ScannerCore.
type CoreID int32

// PageID is a virtual page number (VPN) in the simulated application
// address space, in units of the base page size (4 kB). A 64 kB mapping
// covers 16 consecutive PageIDs; a 2 MB mapping covers 512.
type PageID int64

// FrameID is a physical frame number in the simulated device memory,
// in units of the base page size. NoFrame marks an unmapped PTE.
type FrameID int32

// NoFrame is the FrameID stored in non-present mappings.
const NoFrame FrameID = -1

// Cycles is a duration or point in simulated time, in CPU cycles.
type Cycles uint64

// Base page geometry. All sizes are in bytes; PageID arithmetic is in
// 4 kB units.
const (
	PageSize4k  = 4 << 10
	PageSize64k = 64 << 10
	PageSize2M  = 2 << 20

	// Pages per mapping for each size class, in base (4 kB) pages.
	Span4k  = 1
	Span64k = 16
	Span2M  = 512
)

// PageSize enumerates the mapping granularities supported by the Xeon
// Phi MMU: 4 kB, the experimental 64 kB extension, and 2 MB.
type PageSize uint8

const (
	Size4k PageSize = iota
	Size64k
	Size2M
)

// Span returns the number of base (4 kB) pages covered by one mapping
// of this size.
func (s PageSize) Span() PageID {
	switch s {
	case Size64k:
		return Span64k
	case Size2M:
		return Span2M
	default:
		return Span4k
	}
}

// Bytes returns the mapping size in bytes.
func (s PageSize) Bytes() int64 { return int64(s.Span()) * PageSize4k }

// Align returns vpn rounded down to the mapping boundary of this size.
func (s PageSize) Align(vpn PageID) PageID { return vpn &^ (s.Span() - 1) }

// Aligned reports whether vpn sits on a mapping boundary of this size.
func (s PageSize) Aligned(vpn PageID) bool { return vpn&(s.Span()-1) == 0 }

// String returns "4kB", "64kB" or "2MB".
func (s PageSize) String() string {
	switch s {
	case Size4k:
		return "4kB"
	case Size64k:
		return "64kB"
	case Size2M:
		return "2MB"
	default:
		return fmt.Sprintf("PageSize(%d)", uint8(s))
	}
}

// ScannerCore returns the pseudo-core ID used by the LRU statistics
// scanner when the machine has n application cores. The paper dedicates
// hyperthreads to the scanning timer so application cores do not take
// the timer interrupts; the pseudo-core models that arrangement.
func ScannerCore(n int) CoreID { return CoreID(n) }
