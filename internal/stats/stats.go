// Package stats collects and aggregates per-core event counters for the
// CMCP simulator and renders them as aligned text tables or CSV. The
// counter set mirrors the attributes the paper reports in Table 1 (page
// faults, remote TLB invalidations, dTLB misses) plus the internal
// quantities used to explain them (IPIs, lock wait, bytes moved).
package stats

import (
	"encoding/json"
	"fmt"
	"strings"

	"cmcp/internal/dense"
	"cmcp/internal/hist"
	"cmcp/internal/sim"
)

// Counter identifies one per-core event counter.
type Counter uint8

const (
	// PageFaults counts major faults (page not present on the device).
	PageFaults Counter = iota
	// MinorFaults counts faults resolved by copying a sibling core's
	// PTE under PSPT (page resident, mapping absent on this core).
	MinorFaults
	// RemoteTLBInvalidations counts invalidation requests *received*
	// from other cores (the paper's "remote TLB invalidations").
	RemoteTLBInvalidations
	// IPIsSent counts invalidation requests initiated by this core,
	// one per target core.
	IPIsSent
	// DTLBMisses counts data TLB misses (L1 miss; includes L2 hits).
	DTLBMisses
	// TLBL2Hits counts L1 misses that hit in the unified L2 TLB.
	TLBL2Hits
	// PageWalks counts full page-table walks.
	PageWalks
	// Evictions counts victim pages this core swapped out.
	Evictions
	// WriteBacks counts dirty evictions that required a device-to-host
	// copy before reuse of the frame.
	WriteBacks
	// BytesIn counts host-to-device bytes transferred on behalf of
	// this core's faults.
	BytesIn
	// BytesOut counts device-to-host write-back bytes.
	BytesOut
	// LockWaitCycles accumulates virtual time spent queueing on page
	// table locks.
	LockWaitCycles
	// ScanClears counts accessed bits cleared by the LRU scanner.
	ScanClears
	// Touches counts simulated page touches executed.
	Touches
	// FaultsInjected counts injector trips of any kind charged to this
	// core (zero unless a fault.Injector is attached to the run).
	FaultsInjected
	// RecoveryRetries counts recovered transient failures: page-in and
	// page-out re-transfers plus stuck-lock timeouts waited out.
	RecoveryRetries
	// TxRollbacks counts transactional page-in attempts that were rolled
	// back (frames released, state unchanged) before a retry.
	TxRollbacks
	// QuarantinedFrames counts device frames permanently retired after
	// corrupting content in flight.
	QuarantinedFrames
	// ResentShootdowns counts remote TLB invalidation IPIs re-sent after
	// an acknowledgement timeout.
	ResentShootdowns
	// DegradedPages counts pages demoted to regular-table semantics
	// after the auditor repaired injected PSPT core-set skew.
	DegradedPages
	// FilteredShootdowns counts cores skipped by PSPT's precise
	// shootdown target set relative to a full broadcast — the numaPTE
	// benefit PSPT's core map subsumes. Zero on flat (single-socket)
	// runs and under regular shared tables (which must broadcast).
	FilteredShootdowns
	// CrossSocketIPIs counts eviction shootdown IPIs that crossed the
	// NUMA interconnect. Zero on flat runs.
	CrossSocketIPIs
	// RemoteWalks counts page-table walks that had to read a table
	// homed on another socket (regular shared tables live on socket 0).
	RemoteWalks
	// RemotePTConsults counts PSPT sibling-table consults that crossed
	// the interconnect because no page-table replica existed on the
	// faulting core's socket yet.
	RemotePTConsults
	// ReplicaSyncs counts per-remote-socket page-table replica
	// synchronizations charged on PTE teardown (evictions under PSPT
	// with a multi-socket topology).
	ReplicaSyncs
	// PTMigrations counts hot page-table pages re-homed to the
	// accessing socket after a streak of remote consults.
	PTMigrations

	numCounters
)

var counterNames = [numCounters]string{
	"page_faults",
	"minor_faults",
	"remote_tlb_invalidations",
	"ipis_sent",
	"dtlb_misses",
	"tlb_l2_hits",
	"page_walks",
	"evictions",
	"write_backs",
	"bytes_in",
	"bytes_out",
	"lock_wait_cycles",
	"scan_clears",
	"touches",
	"faults_injected",
	"recovery_retries",
	"tx_rollbacks",
	"quarantined_frames",
	"resent_shootdowns",
	"degraded_pages",
	"filtered_shootdowns",
	"cross_socket_ipis",
	"remote_walks",
	"remote_pt_consults",
	"replica_syncs",
	"pt_migrations",
}

// NumCounters is the number of distinct counters.
const NumCounters = int(numCounters)

// CounterNames returns the snake_case names of all counters in index
// order. This is the single source of truth consumed by every other
// layer that renders counters (tables, CSV, the obs sampler), so a new
// counter automatically appears everywhere; a test cross-checks the
// table for gaps and duplicates.
func CounterNames() []string {
	out := make([]string, numCounters)
	copy(out, counterNames[:])
	return out
}

// Name returns the snake_case name of the counter.
func (c Counter) Name() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// HistID identifies one per-run latency/fan-out histogram. Histograms
// are whole-run (not per-core): their job is the distribution tail,
// and per-core splits would shrink every sample set by the core count
// for no analytical gain the counters don't already provide.
type HistID uint8

const (
	// FaultServiceHist is end-to-end page-fault service time in cycles,
	// fault entry to translation installed — minor and major faults,
	// including lock waits, DMA queueing and fault-injection
	// retries/backoff.
	FaultServiceHist HistID = iota
	// EvictionHist is the evictor-side latency of one eviction in
	// cycles: unmap, shootdown delivery (resends included), local
	// invalidations and write-back retry backoff.
	EvictionHist
	// ShootdownHist is the per-target shootdown round-trip in cycles:
	// IPI delivery to one remote core plus any ack-timeout re-sends.
	ShootdownHist
	// LockWaitHist is the duration of one non-zero wait on a
	// serialization point (allocator lock, DMA bus, page-table lock,
	// injected stuck locks) in cycles.
	LockWaitHist
	// FanoutHist is the number of target cores of one TLB-shootdown
	// broadcast (eviction, scanner clear, or PSPT rebuild).
	FanoutHist
	// CrossSocketFanoutHist is the number of distinct remote sockets
	// one eviction shootdown reached (recorded only on multi-socket
	// topologies; zero-target shootdowns do not record).
	CrossSocketFanoutHist

	numHists
)

// NumHists is the number of distinct histograms.
const NumHists = int(numHists)

// histNames is the single string table for histogram names, the same
// single-source-of-truth contract as counterNames: every renderer
// (JSON, Prometheus exposition, bench output) derives its labels from
// HistNames, and a test cross-checks the table for gaps/duplicates.
var histNames = [numHists]string{
	"fault_service_cycles",
	"eviction_latency_cycles",
	"shootdown_rtt_cycles",
	"lock_wait_latency_cycles",
	"shootdown_fanout_cores",
	"cross_socket_fanout_sockets",
}

// HistNames returns the snake_case names of all histograms in index
// order.
func HistNames() []string {
	out := make([]string, numHists)
	copy(out, histNames[:])
	return out
}

// Name returns the snake_case name of the histogram.
func (h HistID) Name() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return fmt.Sprintf("hist(%d)", uint8(h))
}

// HistSet is the fixed array of a run's histograms, indexed by HistID.
// One allocation covers all of them; recording is index + hist.Record.
type HistSet [numHists]hist.H

// Get returns the histogram for id.
func (s *HistSet) Get(id HistID) *hist.H { return &s[id] }

// Record adds one value to histogram id.
func (s *HistSet) Record(id HistID, v uint64) { s[id].Record(v) }

// Merge pools other into s, histogram by histogram (exact; see
// hist.Merge).
func (s *HistSet) Merge(other *HistSet) {
	for i := range s {
		s[i].Merge(&other[i])
	}
}

// Reset empties every histogram in place (the engine calls this at the
// warm-up barrier so the measured phase starts with clean
// distributions, mirroring the counter rebase).
func (s *HistSet) Reset() { *s = HistSet{} }

// Run holds the complete measurement record of one simulation run:
// per-core counters, per-core finishing times, and the run's metadata.
type Run struct {
	Cores    int
	counters []uint64 // flat [core*NumCounters+counter]; scanner is row Cores
	Finish   []sim.Cycles
	// Hists holds the run's latency/fan-out histograms; nil unless the
	// run was configured with histograms enabled (machine.Config.Hist).
	Hists *HistSet
	// Tenants holds the per-tenant counters and fault-service
	// histograms; nil unless the run was multi-tenant
	// (machine.Config.Tenants).
	Tenants *TenantSet
}

// NewRun allocates a record for n application cores plus the scanner
// pseudo-core (index n).
func NewRun(n int) *Run {
	return &Run{
		Cores:    n,
		counters: make([]uint64, (n+1)*NumCounters),
		Finish:   make([]sim.Cycles, n+1),
	}
}

// NewRunIn is NewRun with storage drawn from sc (nil falls back to
// make). Used for warm-up snapshots that die with the run.
func NewRunIn(n int, sc *dense.Scratch) *Run {
	return &Run{
		Cores:    n,
		counters: sc.U64((n + 1) * NumCounters),
		Finish:   sc.Cycles(n + 1),
	}
}

// EnableHists attaches an empty histogram set to the run (idempotent).
// One allocation; recording into it never allocates.
func (r *Run) EnableHists() *HistSet {
	if r.Hists == nil {
		r.Hists = &HistSet{}
	}
	return r.Hists
}

// EnableTenants attaches a zeroed per-tenant record for n tenants
// (idempotent when the tenant count matches).
func (r *Run) EnableTenants(n int) *TenantSet {
	if r.Tenants == nil || r.Tenants.n != n {
		r.Tenants = NewTenantSet(n)
	}
	return r.Tenants
}

// Add increments counter c for core by delta.
func (r *Run) Add(core sim.CoreID, c Counter, delta uint64) {
	r.counters[int(core)*NumCounters+int(c)] += delta
}

// Get returns the value of counter c for core.
func (r *Run) Get(core sim.CoreID, c Counter) uint64 {
	return r.counters[int(core)*NumCounters+int(c)]
}

// Total sums counter c over the application cores (excluding the
// scanner pseudo-core).
func (r *Run) Total(c Counter) uint64 {
	var t uint64
	for i := 0; i < r.Cores; i++ {
		t += r.counters[i*NumCounters+int(c)]
	}
	return t
}

// PerCoreAvg returns the application-core average of counter c, the
// quantity Table 1 of the paper reports.
func (r *Run) PerCoreAvg(c Counter) float64 {
	if r.Cores == 0 {
		return 0
	}
	return float64(r.Total(c)) / float64(r.Cores)
}

// Runtime returns the simulated makespan: the latest finishing time of
// any application core.
func (r *Run) Runtime() sim.Cycles {
	var m sim.Cycles
	for i := 0; i < r.Cores; i++ {
		if r.Finish[i] > m {
			m = r.Finish[i]
		}
	}
	return m
}

// Merge adds other's counters, takes the elementwise max of finish
// times, and pools histograms when present. Both runs must have the
// same core count and the same histogram presence — merging a
// histogram-bearing run into a bare one (or vice versa) would silently
// drop or dilute distributions, so it is an error instead.
func (r *Run) Merge(other *Run) error {
	if other.Cores != r.Cores {
		return fmt.Errorf("stats: merging runs with %d and %d cores", r.Cores, other.Cores)
	}
	if (r.Hists == nil) != (other.Hists == nil) {
		return fmt.Errorf("stats: merging runs with mismatched histogram presence")
	}
	if (r.Tenants == nil) != (other.Tenants == nil) {
		return fmt.Errorf("stats: merging runs with mismatched tenant-record presence")
	}
	for i := range r.counters {
		r.counters[i] += other.counters[i]
	}
	for i := range r.Finish {
		if other.Finish[i] > r.Finish[i] {
			r.Finish[i] = other.Finish[i]
		}
	}
	if r.Hists != nil {
		r.Hists.Merge(other.Hists)
	}
	if r.Tenants != nil {
		if err := r.Tenants.Merge(other.Tenants); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the run record (used to snapshot
// counters at the end of a warm-up phase).
func (r *Run) Clone() *Run { return r.CloneIn(nil) }

// CloneIn is Clone with the copy's storage drawn from sc; the copy is
// only valid until sc is recycled.
func (r *Run) CloneIn(sc *dense.Scratch) *Run {
	c := NewRunIn(r.Cores, sc)
	copy(c.counters, r.counters)
	copy(c.Finish, r.Finish)
	if r.Hists != nil {
		// Histograms are small and plain-heap (never scratch-backed):
		// the sweep's replicate merge keeps clones after sc recycles.
		h := *r.Hists
		c.Hists = &h
	}
	if r.Tenants != nil {
		c.Tenants = r.Tenants.CloneIn(sc)
	}
	return c
}

// Subtract removes a baseline snapshot from the counters (Finish times
// are left untouched; the engine rebases those itself, and histograms
// are reset at the warm-up barrier rather than subtracted — bucket
// counts of a prefix cannot be subtracted from a distribution). Used
// to report only the measured phase after a warm-up.
func (r *Run) Subtract(base *Run) error {
	if base.Cores != r.Cores {
		return fmt.Errorf("stats: subtracting run with %d cores from %d", base.Cores, r.Cores)
	}
	for i := range r.counters {
		r.counters[i] -= base.counters[i]
	}
	if r.Tenants != nil && base.Tenants != nil {
		if err := r.Tenants.Subtract(base.Tenants); err != nil {
			return err
		}
	}
	return nil
}

// DivideBy divides every counter and finish time by n (used to average
// replicated runs). Histograms are deliberately left pooled: bucket
// counts merge exactly, so the merged histogram IS the distribution of
// all n replicates — its quantiles are the replicate-pooled quantiles —
// whereas dividing integer bucket counts would discard the tail
// samples averaging exists to expose.
func (r *Run) DivideBy(n uint64) {
	if n <= 1 {
		return
	}
	for i := range r.counters {
		r.counters[i] /= n
	}
	for i := range r.Finish {
		r.Finish[i] /= sim.Cycles(n)
	}
	if r.Tenants != nil {
		r.Tenants.DivideBy(n)
	}
}

// runJSON is Run's serialized form: the flat per-core counter matrix
// (rows are cores 0..Cores with the scanner pseudo-core last) plus the
// finish times. Which counter each column is lives one level up — the
// sweep journal's header records the stats.CounterNames() in force when
// the file was written, so a journal from a different counter set is
// rejected instead of silently misattributed.
type runJSON struct {
	Cores    int          `json:"cores"`
	Counters []uint64     `json:"counters"`
	Finish   []sim.Cycles `json:"finish"`
	// Hists serializes the histogram set as a slice (absent when the
	// run recorded none). A slice rather than the fixed array so the
	// reader can length-check instead of letting encoding/json silently
	// truncate or zero-fill a mismatched record.
	Hists []hist.H `json:"hists,omitempty"`
	// Tenants serializes the per-tenant record (absent on single-tenant
	// runs, so pre-tenant journal readers and goldens are unaffected).
	Tenants *TenantSet `json:"tenants,omitempty"`
}

// MarshalJSON encodes the run losslessly: counters, finish times and
// histogram buckets are exact uint64s in Go's round trip, so a
// journaled run merges bit-identically to the in-memory one it
// snapshots.
func (r *Run) MarshalJSON() ([]byte, error) {
	j := runJSON{Cores: r.Cores, Counters: r.counters, Finish: r.Finish, Tenants: r.Tenants}
	if r.Hists != nil {
		j.Hists = r.Hists[:]
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a run written by MarshalJSON, rejecting records
// whose shape does not match the current counter and histogram sets.
func (r *Run) UnmarshalJSON(data []byte) error {
	var j runJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Cores < 0 || len(j.Counters) != (j.Cores+1)*NumCounters || len(j.Finish) != j.Cores+1 {
		return fmt.Errorf("stats: run record shape mismatch: %d cores, %d counters, %d finish times",
			j.Cores, len(j.Counters), len(j.Finish))
	}
	var hs *HistSet
	if len(j.Hists) > 0 {
		if len(j.Hists) != NumHists {
			return fmt.Errorf("stats: run record carries %d histograms, this build has %d", len(j.Hists), NumHists)
		}
		hs = &HistSet{}
		for i := range j.Hists {
			if !j.Hists[i].CheckInvariant() {
				return fmt.Errorf("stats: histogram %q count does not match its buckets (torn record?)", HistID(i).Name())
			}
			hs[i] = j.Hists[i]
		}
	}
	r.Cores, r.counters, r.Finish, r.Hists = j.Cores, j.Counters, j.Finish, hs
	r.Tenants = j.Tenants
	return nil
}

// Table is a simple rectangular result table with row labels, used by
// the experiment harness to render paper-style output.
type Table struct {
	Title   string
	Columns []string
	Rows    []TableRow
}

// TableRow is one labelled row of cells.
type TableRow struct {
	Label string
	Cells []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(label string, cells ...any) {
	row := TableRow{Label: label}
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row.Cells = append(row.Cells, FormatFloat(v))
		default:
			row.Cells = append(row.Cells, fmt.Sprintf("%v", c))
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals,
// otherwise two significant decimals.
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	widths := make([]int, len(t.Columns)+1)
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
		for i, c := range r.Cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	for i, c := range t.Columns {
		if len(c) > widths[i+1] {
			widths[i+1] = len(c)
		}
	}
	writeRow := func(label string, cells []string) {
		fmt.Fprintf(&b, "%-*s", widths[0], label)
		for i, c := range cells {
			w := 0
			if i+1 < len(widths) {
				w = widths[i+1]
			}
			fmt.Fprintf(&b, "  %*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow("", t.Columns)
	for _, r := range t.Rows {
		writeRow(r.Label, r.Cells)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("label")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Label))
		for _, c := range r.Cells {
			b.WriteByte(',')
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
