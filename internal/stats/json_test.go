package stats

import (
	"encoding/json"
	"testing"

	"cmcp/internal/sim"
)

// The sweep journal persists Runs as JSON; the resume guarantee (a
// restarted sweep is bit-identical to an uninterrupted one) requires
// this round trip to be exact, not approximately equal.

func TestRunJSONRoundTrip(t *testing.T) {
	r := NewRun(3)
	for core := sim.CoreID(0); core < 4; core++ {
		for c := Counter(0); c < Counter(NumCounters); c++ {
			r.Add(core, c, uint64(core)*1000+uint64(c)*7+1)
		}
		r.Finish[core] = sim.Cycles(1<<60) + sim.Cycles(core)
	}
	// Values beyond float64's 53-bit mantissa must survive untouched.
	r.Add(0, PageFaults, (1<<63)+3)

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cores != r.Cores {
		t.Fatalf("cores = %d, want %d", back.Cores, r.Cores)
	}
	for core := sim.CoreID(0); core < 4; core++ {
		for c := Counter(0); c < Counter(NumCounters); c++ {
			if got, want := back.Get(core, c), r.Get(core, c); got != want {
				t.Fatalf("core %d counter %s: %d != %d", core, c.Name(), got, want)
			}
		}
		if back.Finish[core] != r.Finish[core] {
			t.Fatalf("core %d finish: %d != %d", core, back.Finish[core], r.Finish[core])
		}
	}
}

func TestRunJSONShapeMismatch(t *testing.T) {
	r := NewRun(2)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, tamper := range []func(m map[string]any){
		func(m map[string]any) { m["cores"] = 7 },
		func(m map[string]any) { m["counters"] = []uint64{1, 2, 3} },
		func(m map[string]any) { m["finish"] = []uint64{} },
	} {
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		tamper(m)
		bad, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Run
		if err := json.Unmarshal(bad, &back); err == nil {
			t.Errorf("tampered shape %s accepted", bad)
		}
	}
}

func TestRunJSONRoundTripWithHists(t *testing.T) {
	r := NewRun(2)
	r.Add(0, PageFaults, 3)
	hs := r.EnableHists()
	for id := HistID(0); id < HistID(NumHists); id++ {
		hs.Record(id, uint64(id)*1000+1)
		hs.Record(id, (1<<62)+uint64(id)) // past float64's mantissa
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hists == nil {
		t.Fatal("histograms lost in round trip")
	}
	if *back.Hists != *r.Hists {
		t.Fatalf("histograms changed in round trip:\n got %+v\nwant %+v", *back.Hists, *r.Hists)
	}

	// A histogram-less run must come back with nil Hists, not an empty set.
	bare := NewRun(1)
	data, err = json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	var bareBack Run
	if err := json.Unmarshal(data, &bareBack); err != nil {
		t.Fatal(err)
	}
	if bareBack.Hists != nil {
		t.Fatal("bare run grew histograms in round trip")
	}
}

func TestRunJSONHistTamperRejected(t *testing.T) {
	r := NewRun(1)
	r.EnableHists().Record(FaultServiceHist, 5)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for name, tamper := range map[string]func(m map[string]any){
		"wrong hist count": func(m map[string]any) {
			m["hists"] = m["hists"].([]any)[:1]
		},
		"torn bucket counts": func(m map[string]any) {
			h := m["hists"].([]any)[0].(map[string]any)
			h["count"] = 99 // no bucket backs this
		},
	} {
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		tamper(m)
		bad, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Run
		if err := json.Unmarshal(bad, &back); err == nil {
			t.Errorf("%s: tampered record accepted", name)
		}
	}
}
