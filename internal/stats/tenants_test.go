package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTenantCounterNames(t *testing.T) {
	names := TenantCounterNames()
	if len(names) != NumTenantCounters {
		t.Fatalf("%d names for %d counters", len(names), NumTenantCounters)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Errorf("counter %d unnamed", i)
		}
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
		if TenantCounter(i).String() != n {
			t.Errorf("String(%d) = %q, want %q", i, TenantCounter(i).String(), n)
		}
	}
	// The slice must be a copy, not the table itself.
	names[0] = "clobbered"
	if TenantCounterNames()[0] == "clobbered" {
		t.Error("TenantCounterNames exposes the internal table")
	}
}

func TestTenantSetAddGetTotal(t *testing.T) {
	ts := NewTenantSet(3)
	if ts.Tenants() != 3 {
		t.Fatalf("Tenants() = %d", ts.Tenants())
	}
	ts.Add(0, TenantTouches, 5)
	ts.Add(2, TenantTouches, 7)
	ts.Add(1, TenantFaults, 2)
	if ts.Get(0, TenantTouches) != 5 || ts.Get(2, TenantTouches) != 7 {
		t.Error("Get mismatch")
	}
	if ts.Total(TenantTouches) != 12 || ts.Total(TenantFaults) != 2 {
		t.Error("Total mismatch")
	}
	if ts.Total(TenantEvictions) != 0 {
		t.Error("untouched counter nonzero")
	}
}

// TestTenantSetMergePools pins the Repeats-merge semantics: counters
// add (then DivideBy averages), fault histograms pool exactly.
func TestTenantSetMergePools(t *testing.T) {
	a, b := NewTenantSet(2), NewTenantSet(2)
	a.Add(0, TenantFaults, 4)
	b.Add(0, TenantFaults, 2)
	b.Add(1, TenantEvictions, 6)
	a.RecordFault(0, 100)
	a.RecordFault(1, 1000)
	b.RecordFault(0, 200)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Get(0, TenantFaults) != 6 || a.Get(1, TenantEvictions) != 6 {
		t.Error("counters did not add")
	}
	if a.FaultHist(0).Count != 2 || a.FaultHist(1).Count != 1 {
		t.Errorf("histograms did not pool: %d/%d samples",
			a.FaultHist(0).Count, a.FaultHist(1).Count)
	}
	a.DivideBy(2)
	if a.Get(0, TenantFaults) != 3 || a.Get(1, TenantEvictions) != 3 {
		t.Error("DivideBy did not average counters")
	}
	if a.FaultHist(0).Count != 2 {
		t.Error("DivideBy touched the pooled histograms")
	}
	if err := a.Merge(NewTenantSet(3)); err == nil {
		t.Error("merging mismatched tenant counts did not fail")
	}
}

func TestTenantSetSubtract(t *testing.T) {
	a, base := NewTenantSet(2), NewTenantSet(2)
	a.Add(0, TenantTouches, 10)
	base.Add(0, TenantTouches, 4)
	a.RecordFault(0, 50)
	if err := a.Subtract(base); err != nil {
		t.Fatal(err)
	}
	if a.Get(0, TenantTouches) != 6 {
		t.Error("Subtract did not rebase the counter")
	}
	if a.FaultHist(0).Count != 1 {
		t.Error("Subtract touched histograms (the barrier resets them instead)")
	}
	a.ResetHists()
	if a.FaultHist(0).Count != 0 {
		t.Error("ResetHists left samples behind")
	}
	if err := a.Subtract(NewTenantSet(5)); err == nil {
		t.Error("subtracting mismatched tenant counts did not fail")
	}
}

func TestTenantFairnessIndex(t *testing.T) {
	ts := NewTenantSet(4)
	if f := ts.FairnessIndex(); f != 1 {
		t.Errorf("no faults: fairness = %v, want 1", f)
	}
	// Two tenants with identical tails: perfectly fair.
	ts.RecordFault(0, 100)
	ts.RecordFault(1, 100)
	if f := ts.FairnessIndex(); f != 1 {
		t.Errorf("equal tails: fairness = %v, want 1", f)
	}
	// A third tenant absorbing a far worse tail drags the index down.
	ts.RecordFault(2, 1<<40)
	if f := ts.FairnessIndex(); f >= 1 || f <= 0 {
		t.Errorf("skewed tails: fairness = %v, want in (0, 1)", f)
	}
}

func TestTenantSetJSONRoundTrip(t *testing.T) {
	ts := NewTenantSet(2)
	ts.Add(0, TenantTouches, 9)
	ts.Add(1, TenantFaults, 3)
	ts.RecordFault(1, 500)
	data, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	var back TenantSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tenants() != 2 || back.Get(0, TenantTouches) != 9 || back.Get(1, TenantFaults) != 3 {
		t.Error("counters did not round-trip")
	}
	if back.FaultHist(1).Count != 1 {
		t.Error("histogram did not round-trip")
	}
}

func TestTenantSetJSONRejectsBadShape(t *testing.T) {
	for name, blob := range map[string]string{
		"zero-tenants":   `{"tenants":0,"counters":[],"fault_hists":[]}`,
		"short-counters": `{"tenants":2,"counters":[1,2,3],"fault_hists":[{},{}]}`,
		"short-hists":    `{"tenants":2,"counters":[0,0,0,0,0,0,0,0,0,0],"fault_hists":[{}]}`,
	} {
		var ts TenantSet
		if err := json.Unmarshal([]byte(blob), &ts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestRunTenantsMergeAndJSON covers the Run-level plumbing: EnableTenants
// is idempotent, tenant presence must agree across a merge, and the
// per-tenant record rides the Run's own JSON form (omitted when nil, so
// pre-tenant journal records are byte-identical).
func TestRunTenantsMergeAndJSON(t *testing.T) {
	r := NewRun(2)
	ts := r.EnableTenants(3)
	if r.EnableTenants(3) != ts {
		t.Error("EnableTenants is not idempotent")
	}
	ts.Add(1, TenantFaults, 7)

	plain := NewRun(2)
	if err := r.Merge(plain); err == nil {
		t.Error("merging tenant run into tenant-less run did not fail")
	}
	other := NewRun(2)
	other.EnableTenants(3).Add(1, TenantFaults, 5)
	if err := r.Merge(other); err != nil {
		t.Fatal(err)
	}
	if r.Tenants.Get(1, TenantFaults) != 12 {
		t.Error("tenant counters did not merge through Run.Merge")
	}

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tenants == nil || back.Tenants.Get(1, TenantFaults) != 12 {
		t.Error("tenant record did not ride Run JSON")
	}

	bare, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(bare), "tenants") {
		t.Error("tenant-less Run JSON mentions tenants (breaks pre-tenant journal identity)")
	}
}
