package stats

import (
	"encoding/json"
	"fmt"

	"cmcp/internal/dense"
	"cmcp/internal/hist"
)

// TenantCounter identifies one per-tenant event counter. Tenant
// counters are a projection of the machine-wide ones onto the tenant
// that owns the touched page, so multi-tenant fairness questions can be
// answered without re-running.
type TenantCounter uint8

const (
	// TenantTouches counts memory accesses to the tenant's pages.
	TenantTouches TenantCounter = iota
	// TenantFaults counts major page faults on the tenant's pages.
	TenantFaults
	// TenantMinorFaults counts minor (sibling-resolved) faults.
	TenantMinorFaults
	// TenantEvictions counts the tenant's pages evicted, by anyone.
	TenantEvictions
	// TenantEvictionsCaused counts evictions of OTHER tenants' pages
	// that this tenant's faults forced — its cross-tenant pressure.
	TenantEvictionsCaused

	numTenantCounters
)

// NumTenantCounters is the number of per-tenant counters.
const NumTenantCounters = int(numTenantCounters)

var tenantCounterNames = [NumTenantCounters]string{
	"touches",
	"page_faults",
	"minor_faults",
	"evictions",
	"evictions_caused",
}

// String returns the snake_case counter name used in journals.
func (c TenantCounter) String() string {
	if int(c) < len(tenantCounterNames) {
		return tenantCounterNames[c]
	}
	return fmt.Sprintf("tenant_counter_%d", uint8(c))
}

// TenantCounterNames returns the journal name table in counter order.
func TenantCounterNames() []string {
	out := make([]string, NumTenantCounters)
	copy(out, tenantCounterNames[:])
	return out
}

// TenantSet is the per-tenant measurement record of a multi-tenant run:
// a flat counter matrix plus one fault-service latency histogram per
// tenant. Like Run it is single-writer; the engine serializes updates.
type TenantSet struct {
	n        int
	counters []uint64 // [tenant*NumTenantCounters + counter]
	fault    []hist.H // per-tenant fault-service latency (minor + major)
}

// NewTenantSet returns a zeroed set for n tenants.
func NewTenantSet(n int) *TenantSet {
	return &TenantSet{
		n:        n,
		counters: make([]uint64, n*NumTenantCounters),
		fault:    make([]hist.H, n),
	}
}

// Tenants returns the tenant count.
func (t *TenantSet) Tenants() int { return t.n }

// Add increments tenant's counter c by d.
func (t *TenantSet) Add(tenant int, c TenantCounter, d uint64) {
	t.counters[tenant*NumTenantCounters+int(c)] += d
}

// Get returns tenant's counter c.
func (t *TenantSet) Get(tenant int, c TenantCounter) uint64 {
	return t.counters[tenant*NumTenantCounters+int(c)]
}

// Total sums counter c across all tenants.
func (t *TenantSet) Total(c TenantCounter) uint64 {
	var sum uint64
	for i := 0; i < t.n; i++ {
		sum += t.counters[i*NumTenantCounters+int(c)]
	}
	return sum
}

// RecordFault records one fault-service latency for tenant.
func (t *TenantSet) RecordFault(tenant int, cycles uint64) {
	t.fault[tenant].Record(cycles)
}

// FaultHist returns tenant's fault-service latency histogram.
func (t *TenantSet) FaultHist(tenant int) *hist.H { return &t.fault[tenant] }

// FairnessIndex returns Jain's fairness index over the per-tenant p99
// fault-service latencies, restricted to tenants that faulted at all:
// (Σx)²/(n·Σx²), 1.0 when every tenant sees the same tail and → 1/n as
// one tenant absorbs it. Returns 1 when no tenant faulted.
func (t *TenantSet) FairnessIndex() float64 {
	var sum, sumsq float64
	n := 0
	for i := range t.fault {
		if t.fault[i].Count == 0 {
			continue
		}
		x := float64(t.fault[i].P99())
		sum += x
		sumsq += x * x
		n++
	}
	if n == 0 || sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumsq)
}

// Merge adds o into t: counters add, histograms pool.
func (t *TenantSet) Merge(o *TenantSet) error {
	if t.n != o.n {
		return fmt.Errorf("stats: merging tenant sets of %d and %d tenants", t.n, o.n)
	}
	for i, v := range o.counters {
		t.counters[i] += v
	}
	for i := range o.fault {
		t.fault[i].Merge(&o.fault[i])
	}
	return nil
}

// Subtract removes o's counters from t (warm-up rebase). Histograms are
// untouched — the warm-up barrier resets them instead.
func (t *TenantSet) Subtract(o *TenantSet) error {
	if t.n != o.n {
		return fmt.Errorf("stats: subtracting tenant set of %d tenants from %d", o.n, t.n)
	}
	for i, v := range o.counters {
		t.counters[i] -= v
	}
	return nil
}

// DivideBy divides every counter by n, matching Run.DivideBy: the
// replicate-merge averages counters while histograms stay pooled.
func (t *TenantSet) DivideBy(n uint64) {
	if n == 0 {
		return
	}
	for i := range t.counters {
		t.counters[i] /= n
	}
}

// ResetHists zeroes every fault histogram (warm-up barrier).
func (t *TenantSet) ResetHists() {
	for i := range t.fault {
		t.fault[i].Reset()
	}
}

// CloneIn deep-copies the set, drawing the counter matrix from sc when
// non-nil. Histograms are plain-heap copies either way, for the same
// reason Run.CloneIn heap-copies HistSet.
func (t *TenantSet) CloneIn(sc *dense.Scratch) *TenantSet {
	c := &TenantSet{
		n:        t.n,
		counters: sc.U64(len(t.counters)),
		fault:    make([]hist.H, len(t.fault)),
	}
	copy(c.counters, t.counters)
	copy(c.fault, t.fault)
	return c
}

// tenantSetJSON is the journal form of TenantSet.
type tenantSetJSON struct {
	Tenants  int      `json:"tenants"`
	Counters []uint64 `json:"counters"`
	Fault    []hist.H `json:"fault_hists"`
}

// MarshalJSON implements json.Marshaler.
func (t *TenantSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(tenantSetJSON{Tenants: t.n, Counters: t.counters, Fault: t.fault})
}

// UnmarshalJSON implements json.Unmarshaler, validating shape so a
// corrupt journal line cannot produce a set that panics later.
func (t *TenantSet) UnmarshalJSON(b []byte) error {
	var j tenantSetJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if j.Tenants <= 0 {
		return fmt.Errorf("stats: tenant set with %d tenants", j.Tenants)
	}
	if len(j.Counters) != j.Tenants*NumTenantCounters {
		return fmt.Errorf("stats: tenant set has %d counters, want %d",
			len(j.Counters), j.Tenants*NumTenantCounters)
	}
	if len(j.Fault) != j.Tenants {
		return fmt.Errorf("stats: tenant set has %d fault histograms, want %d",
			len(j.Fault), j.Tenants)
	}
	for i := range j.Fault {
		if !j.Fault[i].CheckInvariant() {
			return fmt.Errorf("stats: tenant %d fault histogram count does not match its buckets (torn record?)", i)
		}
	}
	t.n = j.Tenants
	t.counters = j.Counters
	t.fault = j.Fault
	return nil
}
