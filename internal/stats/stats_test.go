package stats

import (
	"strings"
	"testing"

	"cmcp/internal/sim"
)

func TestCounterNames(t *testing.T) {
	for c := Counter(0); c < Counter(NumCounters); c++ {
		name := c.Name()
		if name == "" || strings.HasPrefix(name, "counter(") {
			t.Errorf("counter %d has no name", c)
		}
	}
	if Counter(200).Name() != "counter(200)" {
		t.Error("out-of-range counter name")
	}
}

func TestRunAddGetTotal(t *testing.T) {
	r := NewRun(4)
	r.Add(0, PageFaults, 10)
	r.Add(1, PageFaults, 20)
	r.Add(3, PageFaults, 30)
	// Scanner pseudo-core must not count toward totals.
	r.Add(sim.ScannerCore(4), PageFaults, 1000)
	if got := r.Get(1, PageFaults); got != 20 {
		t.Errorf("Get = %d", got)
	}
	if got := r.Total(PageFaults); got != 60 {
		t.Errorf("Total = %d, want 60 (scanner excluded)", got)
	}
	if got := r.PerCoreAvg(PageFaults); got != 15 {
		t.Errorf("PerCoreAvg = %v, want 15", got)
	}
}

func TestRunZeroCores(t *testing.T) {
	r := NewRun(0)
	if r.PerCoreAvg(PageFaults) != 0 {
		t.Error("avg over zero cores should be 0")
	}
	if r.Runtime() != 0 {
		t.Error("runtime of empty run should be 0")
	}
}

func TestRunRuntime(t *testing.T) {
	r := NewRun(3)
	r.Finish[0] = 100
	r.Finish[1] = 500
	r.Finish[2] = 300
	r.Finish[3] = 9999 // scanner core must not dominate the makespan
	if got := r.Runtime(); got != 500 {
		t.Errorf("Runtime = %d, want 500", got)
	}
}

func TestRunMerge(t *testing.T) {
	a, b := NewRun(2), NewRun(2)
	a.Add(0, Touches, 5)
	b.Add(0, Touches, 7)
	a.Finish[0], b.Finish[0] = 10, 30
	a.Finish[1], b.Finish[1] = 50, 20
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Get(0, Touches) != 12 {
		t.Errorf("merged counter = %d", a.Get(0, Touches))
	}
	if a.Finish[0] != 30 || a.Finish[1] != 50 {
		t.Errorf("merged finish = %v", a.Finish[:2])
	}
	c := NewRun(3)
	if err := a.Merge(c); err == nil {
		t.Error("merge with mismatched cores must fail")
	}
}

func TestTableString(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("row1", 1, 2.5)
	tab.AddRow("longer-row", 100, 3.0)
	s := tab.String()
	if !strings.Contains(s, "# demo") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "2.50") {
		t.Error("float cell not formatted: " + s)
	}
	if !strings.Contains(s, "3") || strings.Contains(s, "3.00") {
		t.Error("integral float should render without decimals: " + s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"x,y", "z"}}
	tab.AddRow(`quo"te`, "v1", "v2")
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Error("comma in header must be quoted: " + csv)
	}
	if !strings.Contains(csv, `"quo""te"`) {
		t.Error("quote must be doubled: " + csv)
	}
	if !strings.HasPrefix(csv, "label,") {
		t.Error("missing header")
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(42) != "42" {
		t.Error(FormatFloat(42))
	}
	if FormatFloat(0.135) != "0.14" {
		t.Error(FormatFloat(0.135))
	}
	if FormatFloat(1e20) == "" {
		t.Error("huge float must render")
	}
}

func TestRunDivideBy(t *testing.T) {
	r := NewRun(2)
	r.Add(0, PageFaults, 10)
	r.Finish[0] = 100
	r.DivideBy(2)
	if r.Get(0, PageFaults) != 5 || r.Finish[0] != 50 {
		t.Errorf("DivideBy: faults=%d finish=%d", r.Get(0, PageFaults), r.Finish[0])
	}
	r.DivideBy(1) // no-op
	if r.Get(0, PageFaults) != 5 {
		t.Error("DivideBy(1) must be a no-op")
	}
}

// TestCounterNamesComplete is the desync guard for the counter string
// table: every counter must have a distinct, non-empty snake_case name
// (internal/obs cross-checks its event names and CSV headers against
// this same table).
func TestCounterNamesComplete(t *testing.T) {
	names := CounterNames()
	if len(names) != NumCounters {
		t.Fatalf("CounterNames() has %d entries, want %d", len(names), NumCounters)
	}
	seen := map[string]bool{}
	for i, name := range names {
		if name == "" {
			t.Errorf("counter %d has no name", i)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
		if name != strings.ToLower(name) || strings.ContainsAny(name, " -") {
			t.Errorf("counter name %q is not snake_case", name)
		}
		if got := Counter(i).Name(); got != name {
			t.Errorf("Counter(%d).Name() = %q, want %q", i, got, name)
		}
	}
	// The returned slice is a copy: callers cannot corrupt the table.
	names[0] = "tampered"
	if Counter(0).Name() == "tampered" {
		t.Error("CounterNames must return a copy")
	}
}

// TestHistNamesComplete mirrors TestCounterNamesComplete for the
// histogram string table: distinct, non-empty snake_case names, and no
// collision with any counter name — the Prometheus exposition derives
// metric families from both tables, so a cross-table duplicate would
// emit one family twice.
func TestHistNamesComplete(t *testing.T) {
	names := HistNames()
	if len(names) != NumHists {
		t.Fatalf("HistNames() has %d entries, want %d", len(names), NumHists)
	}
	seen := map[string]bool{}
	for _, n := range CounterNames() {
		seen[n] = true
	}
	for i, name := range names {
		if name == "" {
			t.Errorf("histogram %d has no name", i)
		}
		if seen[name] {
			t.Errorf("histogram name %q duplicates a counter or histogram name", name)
		}
		seen[name] = true
		if name != strings.ToLower(name) || strings.ContainsAny(name, " -") {
			t.Errorf("histogram name %q is not snake_case", name)
		}
		if got := HistID(i).Name(); got != name {
			t.Errorf("HistID(%d).Name() = %q, want %q", i, got, name)
		}
	}
	names[0] = "tampered"
	if HistID(0).Name() == "tampered" {
		t.Error("HistNames must return a copy")
	}
}

func TestRunMergeHistPresence(t *testing.T) {
	a, b := NewRun(2), NewRun(2)
	a.EnableHists().Record(FaultServiceHist, 100)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging hist-bearing into bare run must fail")
	}
	if err := b.Merge(a); err == nil {
		t.Fatal("merging bare into hist-bearing run must fail")
	}
	b.EnableHists().Record(FaultServiceHist, 200)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	h := a.Hists.Get(FaultServiceHist)
	if h.Count != 2 || h.Sum != 300 || h.Max != 200 {
		t.Errorf("merged hist = %+v", *h)
	}
}

// TestRunDivideByPoolsHists pins the Repeats-averaging contract:
// counters divide, histograms stay pooled (exact merged distribution).
func TestRunDivideByPoolsHists(t *testing.T) {
	r := NewRun(1)
	r.Add(0, PageFaults, 10)
	hs := r.EnableHists()
	hs.Record(FaultServiceHist, 7)
	hs.Record(FaultServiceHist, 9)
	r.DivideBy(2)
	if r.Get(0, PageFaults) != 5 {
		t.Errorf("counter not divided: %d", r.Get(0, PageFaults))
	}
	h := r.Hists.Get(FaultServiceHist)
	if h.Count != 2 || h.Sum != 16 {
		t.Errorf("histogram must stay pooled after DivideBy: %+v", *h)
	}
}

func TestCloneInDeepCopiesHists(t *testing.T) {
	r := NewRun(1)
	r.EnableHists().Record(EvictionHist, 42)
	c := r.Clone()
	c.Hists.Record(EvictionHist, 43)
	if got := r.Hists.Get(EvictionHist).Count; got != 1 {
		t.Errorf("clone aliased the original's histograms (count %d)", got)
	}
}
