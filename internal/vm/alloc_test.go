package vm

import (
	"testing"

	"cmcp/internal/sim"
)

// These tests are the allocation-regression guard for the dense
// rewrite: the TLB-hit path must never touch the heap, and a
// steady-state fault+eviction cycle may only allocate a small bounded
// amount (amortized slab growth). A regression here silently costs
// more than most logic bugs, so it fails the build.

func TestAccessTLBHitPathZeroAllocs(t *testing.T) {
	for _, kind := range []TableKind{PSPTKind, RegularPT} {
		t.Run(kind.String(), func(t *testing.T) {
			m, err := NewManager(Config{
				Cores: 2, Frames: 64, PageSize: sim.Size4k, Tables: kind, Pages: 64,
			}, fifoFactory)
			if err != nil {
				t.Fatal(err)
			}
			now := mustAccess(t, m, 0, 3, true, 0) // fault the page in
			for _, write := range []bool{false, true} {
				avg := testing.AllocsPerRun(500, func() {
					now, _ = m.Access(0, 3, write, now)
				})
				if avg != 0 {
					t.Errorf("write=%v: TLB-hit access allocates %.1f objects, want 0", write, avg)
				}
			}
		})
	}
}

func TestSteadyStateFaultPathAllocsBounded(t *testing.T) {
	m, err := NewManager(Config{
		Cores: 1, Frames: 8, PageSize: sim.Size4k, Tables: PSPTKind, Pages: 64,
	}, fifoFactory)
	if err != nil {
		t.Fatal(err)
	}
	// 16 pages cycled through 8 frames under FIFO: every access is a
	// major fault with an eviction and a dirty write-back.
	var now sim.Cycles
	page := 0
	touch := func() {
		now, _ = m.Access(0, sim.PageID(page%16), true, now)
		page++
	}
	for i := 0; i < 64; i++ {
		touch() // prime: backing-store entries, slabs, mapping store
	}
	avg := testing.AllocsPerRun(200, touch)
	if avg > 1 {
		t.Errorf("steady-state fault allocates %.2f objects/op, want ≤ 1", avg)
	}
}
