package vm

import (
	"testing"
	"testing/quick"

	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

func fifoFactory(policy.Host) policy.Policy { return policy.NewFIFO() }

// mustAccess is Access for tests that do not exercise the error paths.
func mustAccess(t *testing.T, m *Manager, core sim.CoreID, vpn sim.PageID, write bool, now sim.Cycles) sim.Cycles {
	t.Helper()
	done, err := m.Access(core, vpn, write, now)
	if err != nil {
		t.Fatal(err)
	}
	return done
}

func newMgr(t *testing.T, cores, frames int, kind TableKind, size sim.PageSize) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Cores:    cores,
		Frames:   frames,
		PageSize: size,
		Tables:   kind,
		Verify:   true,
	}, fifoFactory)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{Cores: 0, Frames: 4}, fifoFactory); err == nil {
		t.Error("zero cores must fail")
	}
	if _, err := NewManager(Config{Cores: 1, Frames: 8, PageSize: sim.Size64k}, fifoFactory); err == nil {
		t.Error("frames < one mapping must fail")
	}
}

func TestFirstAccessFaultsSecondHits(t *testing.T) {
	m := newMgr(t, 2, 16, PSPTKind, sim.Size4k)
	t1 := mustAccess(t, m, 0, 5, false, 0)
	if t1 == 0 {
		t.Fatal("access must cost cycles")
	}
	r := m.Run()
	if r.Get(0, stats.PageFaults) != 1 {
		t.Errorf("faults = %d", r.Get(0, stats.PageFaults))
	}
	if r.Get(0, stats.DTLBMisses) != 1 {
		t.Errorf("dtlb misses = %d", r.Get(0, stats.DTLBMisses))
	}
	// Second access: TLB hit, only compute cost.
	t2 := mustAccess(t, m, 0, 5, false, t1)
	if t2-t1 != sim.DefaultCostModel().TouchCompute {
		t.Errorf("TLB hit cost = %d, want %d", t2-t1, sim.DefaultCostModel().TouchCompute)
	}
	if r.Get(0, stats.PageFaults) != 1 {
		t.Error("no second fault expected")
	}
	if m.Resident() != 1 || m.Policy().Resident() != 1 {
		t.Error("bookkeeping mismatch")
	}
}

func TestPSPTMinorFaultOnSecondCore(t *testing.T) {
	m := newMgr(t, 2, 16, PSPTKind, sim.Size4k)
	m.Access(0, 5, false, 0)
	m.Access(1, 5, false, 0)
	r := m.Run()
	if r.Get(1, stats.PageFaults) != 0 {
		t.Error("second core must not take a major fault")
	}
	if r.Get(1, stats.MinorFaults) != 1 {
		t.Errorf("minor faults = %d", r.Get(1, stats.MinorFaults))
	}
	if m.CoreMapCount(5) != 2 {
		t.Errorf("core-map count = %d", m.CoreMapCount(5))
	}
}

func TestRegularPTNoMinorFault(t *testing.T) {
	m := newMgr(t, 2, 16, RegularPT, sim.Size4k)
	m.Access(0, 5, false, 0)
	m.Access(1, 5, false, 0)
	r := m.Run()
	if r.Get(1, stats.PageFaults) != 0 || r.Get(1, stats.MinorFaults) != 0 {
		t.Error("shared PTE must be visible to core 1 without any fault")
	}
	if m.CoreMapCount(5) != -1 {
		t.Error("regular tables cannot know the core-map count")
	}
}

func TestEvictionPSPTPreciseShootdown(t *testing.T) {
	// 4 frames; cores 0 and 1 share page 0; pages 1..3 private to 0.
	m := newMgr(t, 3, 4, PSPTKind, sim.Size4k)
	m.Access(0, 0, false, 0)
	m.Access(1, 0, false, 0)
	for v := sim.PageID(1); v < 4; v++ {
		m.Access(0, v, false, 0)
	}
	// Next fault evicts FIFO head = page 0, mapped by cores 0 and 1.
	m.Access(2, 100, false, 0)
	r := m.Run()
	if r.Get(2, stats.Evictions) != 1 {
		t.Fatalf("evictions = %d", r.Get(2, stats.Evictions))
	}
	// Precise shootdown: exactly cores 0 and 1 get invalidations;
	// core 2 (the evictor) pays none.
	if r.Get(0, stats.RemoteTLBInvalidations) != 1 || r.Get(1, stats.RemoteTLBInvalidations) != 1 {
		t.Errorf("remote invals = %d,%d, want 1,1",
			r.Get(0, stats.RemoteTLBInvalidations), r.Get(1, stats.RemoteTLBInvalidations))
	}
	if r.Get(2, stats.RemoteTLBInvalidations) != 0 {
		t.Error("evictor must not count a remote invalidation")
	}
	if r.Get(2, stats.IPIsSent) != 2 {
		t.Errorf("IPIs sent = %d, want 2", r.Get(2, stats.IPIsSent))
	}
	// Targets must have pending interrupt debt.
	if m.TakeDebt(0) == 0 || m.TakeDebt(1) == 0 {
		t.Error("IPI targets must accrue debt")
	}
	if m.TakeDebt(2) != 0 {
		t.Error("evictor has no debt")
	}
	if m.TakeDebt(0) != 0 {
		t.Error("TakeDebt must drain")
	}
}

func TestEvictionRegularPTBroadcast(t *testing.T) {
	m := newMgr(t, 4, 2, RegularPT, sim.Size4k)
	m.Access(0, 0, false, 0)
	m.Access(0, 1, false, 0)
	m.Access(0, 2, false, 0) // evicts page 0: broadcast to all 4 cores
	r := m.Run()
	// All cores except the evictor receive an invalidation request.
	for c := sim.CoreID(1); c < 4; c++ {
		if r.Get(c, stats.RemoteTLBInvalidations) != 1 {
			t.Errorf("core %d remote invals = %d, want 1 (broadcast)",
				c, r.Get(c, stats.RemoteTLBInvalidations))
		}
	}
	if r.Get(0, stats.IPIsSent) != 3 {
		t.Errorf("IPIs sent = %d, want 3", r.Get(0, stats.IPIsSent))
	}
}

func TestEvictedPageRefaults(t *testing.T) {
	m := newMgr(t, 1, 2, PSPTKind, sim.Size4k)
	m.Access(0, 0, false, 0)
	m.Access(0, 1, false, 0)
	m.Access(0, 2, false, 0) // evicts 0
	r := m.Run()
	if r.Get(0, stats.Evictions) != 1 {
		t.Fatal("eviction expected")
	}
	m.Access(0, 0, false, 0) // refault
	if r.Get(0, stats.PageFaults) != 4 {
		t.Errorf("faults = %d, want 4", r.Get(0, stats.PageFaults))
	}
}

func TestDirtyWriteBackAndIntegrity(t *testing.T) {
	m := newMgr(t, 1, 2, PSPTKind, sim.Size4k)
	m.Access(0, 0, true, 0) // write: dirty
	m.Access(0, 1, false, 0)
	m.Access(0, 2, false, 0) // evicts page 0, dirty → write-back
	r := m.Run()
	if r.Get(0, stats.WriteBacks) != 1 {
		t.Fatalf("write-backs = %d", r.Get(0, stats.WriteBacks))
	}
	if r.Get(0, stats.BytesOut) != sim.PageSize4k {
		t.Errorf("bytes out = %d", r.Get(0, stats.BytesOut))
	}
	sig, ok := m.Host().Peek(0)
	if !ok || sig == 0 {
		t.Error("host must hold the written content")
	}
	// Refault page 0: Verify mode checks the content matches (panics
	// on corruption).
	m.Access(0, 0, false, 0)
	if m.Device().Signature(mustFrame(t, m, 0, 0)) != sig {
		t.Error("page-in restored wrong content")
	}
}

func mustFrame(t *testing.T, m *Manager, core sim.CoreID, vpn sim.PageID) sim.FrameID {
	t.Helper()
	f, ok := m.frameOf(core, vpn)
	if !ok {
		t.Fatalf("vpn %d not mapped", vpn)
	}
	return f
}

func TestCleanEvictionNoWriteBack(t *testing.T) {
	m := newMgr(t, 1, 2, PSPTKind, sim.Size4k)
	m.Access(0, 0, false, 0)
	m.Access(0, 1, false, 0)
	m.Access(0, 2, false, 0)
	if m.Run().Get(0, stats.WriteBacks) != 0 {
		t.Error("clean page must not write back")
	}
	if m.Host().Len() != 0 {
		t.Error("host must stay empty")
	}
}

func TestContentSurvivesManySwapCycles(t *testing.T) {
	// Thrash two pages through one spare frame with writes; Verify
	// mode panics on any corruption.
	m := newMgr(t, 1, 2, PSPTKind, sim.Size4k)
	var now sim.Cycles
	for i := 0; i < 50; i++ {
		now = mustAccess(t, m, 0, sim.PageID(i%3), true, now)
	}
	if m.Run().Get(0, stats.WriteBacks) == 0 {
		t.Error("thrashing writes must produce write-backs")
	}
}

func Test64kPageFaultMapsGroup(t *testing.T) {
	m := newMgr(t, 2, 64, PSPTKind, sim.Size64k)
	m.Access(0, 20, false, 0) // inside group [16,32)
	r := m.Run()
	if r.Get(0, stats.PageFaults) != 1 {
		t.Fatalf("faults = %d", r.Get(0, stats.PageFaults))
	}
	if r.Get(0, stats.BytesIn) != sim.PageSize64k {
		t.Errorf("bytes in = %d, want 64k", r.Get(0, stats.BytesIn))
	}
	// Whole group resident: any member access is a TLB hit (one entry).
	t0 := sim.Cycles(1_000_000)
	t1 := mustAccess(t, m, 0, 31, false, t0)
	if t1-t0 != sim.DefaultCostModel().TouchCompute {
		t.Errorf("member access cost = %d, want pure compute", t1-t0)
	}
	// Second core: minor fault for the whole group.
	m.Access(1, 16, false, 0)
	if r.Get(1, stats.MinorFaults) != 1 || r.Get(1, stats.PageFaults) != 0 {
		t.Error("group minor fault")
	}
	if m.CoreMapCount(20) != 2 {
		t.Error("group core-map count")
	}
}

func Test64kEvictionFreesWholeGroup(t *testing.T) {
	m := newMgr(t, 1, 32, PSPTKind, sim.Size64k) // 2 group slots
	m.Access(0, 0, true, 0)
	m.Access(0, 16, false, 0)
	m.Access(0, 32, false, 0) // evicts group [0,16)
	r := m.Run()
	if r.Get(0, stats.Evictions) != 1 {
		t.Fatalf("evictions = %d", r.Get(0, stats.Evictions))
	}
	if r.Get(0, stats.BytesOut) != sim.PageSize64k {
		t.Errorf("bytes out = %d, want full 64k write-back", r.Get(0, stats.BytesOut))
	}
	if m.Device().FreeFrames() != 0 {
		t.Errorf("free frames = %d, want 0 (two groups resident)", m.Device().FreeFrames())
	}
	if m.Resident() != 2 {
		t.Errorf("resident = %d", m.Resident())
	}
}

func Test2MPageFault(t *testing.T) {
	m, err := NewManager(Config{
		Cores: 1, Frames: 512, PageSize: sim.Size2M, Tables: PSPTKind, Verify: true,
	}, fifoFactory)
	if err != nil {
		t.Fatal(err)
	}
	m.Access(0, 700, true, 0) // inside region [512,1024)
	r := m.Run()
	if r.Get(0, stats.PageFaults) != 1 {
		t.Fatal("2M fault")
	}
	if r.Get(0, stats.BytesIn) != sim.PageSize2M {
		t.Errorf("bytes in = %d", r.Get(0, stats.BytesIn))
	}
	// Neighbouring member is a TLB hit.
	t0 := sim.Cycles(1 << 30)
	t1 := mustAccess(t, m, 0, 600, false, t0)
	if t1-t0 != sim.DefaultCostModel().TouchCompute {
		t.Error("2M member must hit TLB")
	}
	// Eviction by the second region.
	m.Access(0, 1100, false, 0)
	if r.Get(0, stats.Evictions) != 1 {
		t.Error("2M eviction")
	}
	if r.Get(0, stats.BytesOut) != sim.PageSize2M {
		t.Errorf("bytes out = %d", r.Get(0, stats.BytesOut))
	}
}

func TestRegularPTEvictionCostsBroadcast(t *testing.T) {
	// An eviction under regular tables must pay the IPI loop over all
	// cores even when only the evictor ever touched the victim; PSPT
	// pays only a local invalidation. Compare the fault completion
	// times of an identical eviction scenario.
	scenario := func(kind TableKind) sim.Cycles {
		m := newMgr(t, 4, 2, kind, sim.Size4k)
		m.Access(0, 0, false, 0)
		m.Access(0, 1, false, 0)
		return mustAccess(t, m, 0, 2, false, 1_000_000) // evicts page 0
	}
	reg := scenario(RegularPT)
	ps := scenario(PSPTKind)
	cost := sim.DefaultCostModel()
	minGap := cost.ShootdownInitiatorCost(3) / 2
	if reg < ps+minGap {
		t.Errorf("regular PT eviction finish %d must exceed PSPT %d by ≥%d (broadcast IPI loop)",
			reg, ps, minGap)
	}
}

func TestScanAccessedChargesScannerAndTargets(t *testing.T) {
	m := newMgr(t, 2, 16, PSPTKind, sim.Size4k)
	m.Access(0, 5, false, 0)
	if m.TakeScanCost() != 0 {
		t.Error("no scan cost yet")
	}
	// The page was just touched: accessed bit set.
	if !m.ScanAccessed(5) {
		t.Fatal("accessed must be reported")
	}
	if m.TakeScanCost() == 0 {
		t.Error("scan must cost scanner cycles")
	}
	r := m.Run()
	if r.Get(0, stats.RemoteTLBInvalidations) != 1 {
		t.Error("clearing the bit must invalidate the mapping core")
	}
	if m.TakeDebt(0) == 0 {
		t.Error("target core must take the interrupt")
	}
	// Second scan: bit clear, no shootdown.
	if m.ScanAccessed(5) {
		t.Error("bit was cleared")
	}
	if r.Get(0, stats.RemoteTLBInvalidations) != 1 {
		t.Error("idle scan must not invalidate")
	}
}

func TestSharingHistogramAvailability(t *testing.T) {
	ps := newMgr(t, 2, 16, PSPTKind, sim.Size4k)
	ps.Access(0, 1, false, 0)
	ps.Access(1, 1, false, 0)
	ps.Access(0, 2, false, 0)
	h, ok := ps.SharingHistogram()
	if !ok {
		t.Fatal("PSPT must expose the histogram")
	}
	if h[1] != 1 || h[2] != 1 {
		t.Errorf("histogram = %v", h)
	}
	reg := newMgr(t, 2, 16, RegularPT, sim.Size4k)
	if _, ok := reg.SharingHistogram(); ok {
		t.Error("regular tables have no histogram")
	}
}

func TestManagerInvariantsProperty(t *testing.T) {
	// Property: under random access streams, resident mappings * span
	// never exceed device frames, policy and address-space agree, and
	// Verify mode never trips (content integrity).
	f := func(ops []uint16, kindRaw, sizeRaw uint8) bool {
		kind := RegularPT
		if kindRaw%2 == 1 {
			kind = PSPTKind
		}
		size := sim.Size4k
		frames := 8
		pageSpace := sim.PageID(64)
		if sizeRaw%3 == 1 {
			size = sim.Size64k
			frames = 64
			pageSpace = 256
		}
		m, err := NewManager(Config{
			Cores: 3, Frames: frames, PageSize: size, Tables: kind, Verify: true,
		}, fifoFactory)
		if err != nil {
			return false
		}
		var now sim.Cycles
		for _, op := range ops {
			core := sim.CoreID(op % 3)
			vpn := sim.PageID(op>>2) % pageSpace
			write := op&0x8000 != 0
			var accErr error
			now, accErr = m.Access(core, vpn, write, now)
			if accErr != nil {
				return false
			}
			if m.Resident() != m.Policy().Resident() {
				return false
			}
			if m.Resident()*int(size.Span()) > frames {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
