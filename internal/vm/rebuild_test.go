package vm

import (
	"testing"

	"cmcp/internal/sim"
)

// Regression tests for the PSPT rebuild sweep: the per-rebuild tally
// must live in a reused dense per-core slice (no map allocated per
// rebuild) swept in core-ID order, so repeated rebuilds are
// allocation-free and two identical machines charge identical per-core
// interrupt debt.

func newRebuildMgr(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Cores: 8, Frames: 512, PageSize: sim.Size4k, Tables: PSPTKind,
		PSPTRebuildPeriod: 1000, Pages: 128,
	}, fifoFactory)
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Cycles
	for c := 0; c < 8; c++ {
		for p := 0; p < 12; p++ {
			now = mustAccess(t, m, sim.CoreID(c), sim.PageID((p*5+c)%64), false, now)
		}
	}
	return m
}

func TestPSPTRebuildDeterministicDebt(t *testing.T) {
	m1, m2 := newRebuildMgr(t), newRebuildMgr(t)
	m1.maybeRebuildPSPT(2000)
	m2.maybeRebuildPSPT(2000)
	for c := 0; c < 8; c++ {
		d1, d2 := m1.TakeDebt(sim.CoreID(c)), m2.TakeDebt(sim.CoreID(c))
		if d1 != d2 {
			t.Errorf("core %d: debt %d vs %d across identical machines", c, d1, d2)
		}
		if d1 == 0 {
			t.Errorf("core %d mapped pages but took no rebuild interrupt", c)
		}
	}
}

func TestPSPTRebuildSweepAllocFree(t *testing.T) {
	m := newRebuildMgr(t)
	tallyBefore := &m.rebuildCount[0]
	now := m.nextRebuild
	avg := testing.AllocsPerRun(100, func() {
		m.maybeRebuildPSPT(now)
		now += m.cfg.PSPTRebuildPeriod
	})
	if avg != 0 {
		t.Errorf("rebuild sweep allocates %.1f objects, want 0", avg)
	}
	if tallyBefore != &m.rebuildCount[0] {
		t.Error("per-core tally was reallocated across rebuilds")
	}
}
