package vm

import "errors"

// Sentinel errors for the internal-inconsistency and resource-exhaustion
// conditions the fault path can hit. They used to be panics; as errors
// they propagate out of Manager.Access so a driver (machine.Simulate,
// RunMany) can fail the run gracefully and report which run broke.
// Match with errors.Is.
var (
	// ErrNoVictim: a fault needs frames, the device is full, and the
	// replacement policy has nothing to offer. Reachable from
	// configurations whose policy under-reports residency; a correct
	// policy with Frames >= one mapping span never produces it.
	ErrNoVictim = errors.New("vm: out of frames with no victim")

	// ErrBadVictim: the policy named a victim the address space does not
	// hold — the policy's residency bookkeeping has diverged.
	ErrBadVictim = errors.New("vm: victim not resident")

	// ErrMapFailed: installing PTEs for a freshly allocated mapping
	// failed (double map or misaligned base) — fault-path bookkeeping
	// has diverged from the page tables.
	ErrMapFailed = errors.New("vm: map failed")

	// ErrCorruption: Verify mode found a page whose content signature
	// changed across a swap cycle — the paging machinery lost data.
	ErrCorruption = errors.New("vm: content corruption")

	// ErrIOFailure: injected transient transfer failures exhausted the
	// retry budget for one page-in or write-back (fault-injection runs
	// only). All state mutations are committed or rolled back before it
	// surfaces, so the simulated kernel is consistent when the run stops.
	ErrIOFailure = errors.New("vm: transfer retries exhausted")
)
