package vm

import (
	"fmt"

	"cmcp/internal/dense"
	"cmcp/internal/fault"
	"cmcp/internal/mem"
	"cmcp/internal/obs"
	"cmcp/internal/pagetable"
	"cmcp/internal/policy"
	"cmcp/internal/pspt"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/tlb"
)

// FaultObserver is an optional extension a policy may implement to
// receive major-fault notifications (CMCP's dynamic-p tuner uses it).
type FaultObserver interface {
	NoteFault()
}

// Config parameterizes a Manager.
type Config struct {
	// Cores is the number of application cores.
	Cores int
	// Frames is the device memory size in 4 kB frames. This is the
	// memory-constraint knob of the experiments.
	Frames int
	// PageSize is the mapping granularity of the computation area.
	PageSize sim.PageSize
	// Tables selects regular shared page tables or PSPT.
	Tables TableKind
	// TLB is the per-core TLB geometry; zero value means defaults.
	TLB tlb.Config
	// Cost is the cycle-cost model; zero value means defaults.
	Cost sim.CostModel
	// Verify enables page-content integrity checking across swap
	// cycles (tests; small overhead).
	Verify bool
	// Adaptive enables dynamic per-region page-size selection driven by
	// block fault frequency (the paper's §5.7 future work). PageSize is
	// ignored for the computation area; each fault picks 4 kB, 64 kB or
	// 2 MB per 2 MB block.
	Adaptive bool
	// PSPTRebuildPeriod, when non-zero, periodically drops all private
	// PTEs so the sharing picture (and CMCP's core-map counts) re-form
	// from the current access pattern — the paper's §5.6 answer to
	// workloads whose inter-core sharing drifts over time. PSPT only.
	PSPTRebuildPeriod sim.Cycles
	// Probe, when non-nil, receives flight-recorder events from the
	// fault, eviction and scan paths. Disabled tracing costs one
	// nil-check branch per instrumented site.
	Probe *obs.Recorder
	// Hist enables latency/fan-out histograms on the run (fault service
	// time, eviction latency, shootdown RTT, lock waits, shootdown
	// fan-out). Like Probe, the disabled path costs one nil-check branch
	// per site; unlike Probe, Hist is plain data, so histogram-bearing
	// configs remain sweepable and journalable.
	Hist bool
	// Faults, when non-nil, injects deterministic device faults into the
	// transfer, shootdown and locking paths; the manager's recovery
	// machinery (transactional page-in, frame quarantine, ack re-send,
	// degraded mode) then survives them. One Injector serves one run.
	Faults *fault.Injector
	// Pages is an optional hint: the number of distinct page IDs the
	// workload touches. The page-indexed tables (TLB sets, page-table
	// bookkeeping, policy indexes) pre-size to it and avoid growth on
	// the hot path. Zero means "unknown"; tables grow on demand.
	Pages int
	// Scratch, when non-nil, supplies recycled slab storage for the
	// page-indexed tables so repeated runs (RunMany) stop allocating.
	// Nil falls back to plain make.
	Scratch *dense.Scratch
	// Tenants, when non-nil, splits the page space into that many
	// address spaces contending for the one frame pool: per-tenant
	// policy instances, a frame-ownership table, weighted or
	// hard-partitioned eviction pressure, and per-tenant counters on
	// the run. Requires 4 kB pages without adaptive sizing.
	Tenants *TenantConfig
	// Topology, when non-nil and multi-socket, replaces the flat
	// single-ring IPI model with per-socket rings joined by an
	// interconnect, adds per-domain walk costs (the regular shared
	// table is homed on socket 0; PSPT gains numaPTE-style per-socket
	// replicas with consult-driven migration), and enables the
	// cross-socket shootdown accounting. Nil or single-socket keeps
	// every cost and counter bit-identical to the flat model.
	Topology *sim.Topology
}

// PolicyFactory builds the replacement policy against the kernel-side
// Host interface (the Manager itself).
type PolicyFactory func(policy.Host) policy.Policy

// Manager is the simulated kernel's VM subsystem for one address space:
// it executes page touches, handles faults, runs evictions with TLB
// shootdowns, moves pages over the PCIe model, and exposes the
// policy.Host interface to the replacement policy.
type Manager struct {
	cfg  Config
	cost sim.CostModel
	as   addressSpace
	tlbs []tlb.TLB
	dev  *mem.Device
	host *mem.Host
	pol  policy.Policy
	run  *stats.Run

	scanner      sim.CoreID
	debt         []sim.Cycles // pending IPI-interrupt cycles per app core
	scanCost     sim.Cycles   // accumulated scanner-side cost since TakeScanCost
	nextRebuild  sim.Cycles
	rebuildCount []uint64 // per-core invalidation tally, reused across rebuilds

	allocLock sim.Resource
	dmaBus    sim.Resource // serializes PCIe wire time (latency overlaps)

	writeSeq uint64
	verify   map[sim.PageID]mem.Signature
	faultObs FaultObserver
	invalObs func(core sim.CoreID, base sim.PageID) // fires before each TLB invalidation
	adapter  *sizeAdapter
	rec      *obs.Recorder   // nil = tracing disabled
	inj      *fault.Injector // nil = fault injection disabled
	hs       *stats.HistSet  // nil = histograms disabled

	degraded map[sim.PageID]struct{} // pages on regular-table semantics after skew repair
	allCores []sim.CoreID            // lazily built broadcast target list (degraded pages)

	topo *sim.Topology // nil = flat single-ring model

	mt *tenantState // nil = single-tenant machine
}

// NewManager builds the VM subsystem and its policy.
func NewManager(cfg Config, factory PolicyFactory) (*Manager, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("vm: %d cores", cfg.Cores)
	}
	if cfg.Frames < int(cfg.PageSize.Span()) {
		return nil, fmt.Errorf("vm: %d frames cannot hold one %v mapping", cfg.Frames, cfg.PageSize)
	}
	if cfg.Tables == PSPTKind && cfg.Cores > pspt.MaxCores {
		return nil, fmt.Errorf("vm: %d cores exceeds PSPT limit of %d", cfg.Cores, pspt.MaxCores)
	}
	if cfg.TLB == (tlb.Config{}) {
		cfg.TLB = tlb.DefaultConfig()
	}
	if cfg.Cost == (sim.CostModel{}) {
		cfg.Cost = sim.DefaultCostModel()
	}
	sc := cfg.Scratch
	m := &Manager{
		cfg:     cfg,
		cost:    cfg.Cost,
		dev:     mem.NewDevice(cfg.Frames),
		host:    mem.NewHost(),
		run:     stats.NewRun(cfg.Cores),
		scanner: sim.ScannerCore(cfg.Cores),
		debt:    sc.Cycles(cfg.Cores),
		rec:     cfg.Probe,
		inj:     cfg.Faults,
		topo:    cfg.Topology,
	}
	if err := cfg.Topology.Validate(cfg.Cores); err != nil {
		return nil, err
	}
	if cfg.Hist {
		m.hs = m.run.EnableHists()
	}
	if cfg.PSPTRebuildPeriod != 0 {
		m.rebuildCount = sc.U64(cfg.Cores)
	}
	if cfg.Tables == PSPTKind {
		a := newPSPTAS(cfg.Cores, cfg.Pages, sc)
		a.PSPT().SetTopology(cfg.Topology)
		m.as = a
	} else {
		m.as = newSharedAS(cfg.Cores, cfg.Pages, sc)
	}
	m.tlbs = make([]tlb.TLB, cfg.Cores)
	for i := range m.tlbs {
		m.tlbs[i] = tlb.NewSized(cfg.TLB, cfg.Pages, sc)
	}
	if cfg.Verify {
		m.verify = make(map[sim.PageID]mem.Signature)
	}
	if cfg.Adaptive {
		m.adapter = newSizeAdapter(cfg.Pages, sc)
	}
	if cfg.Tenants != nil {
		mt, err := newTenantState(m, *cfg.Tenants, factory)
		if err != nil {
			return nil, err
		}
		m.mt = mt
		// Representative instance for Name()/inspection; every
		// behavioral call site routes through mt instead.
		m.pol = mt.pols[0]
	} else {
		m.pol = factory(m)
		if obs, ok := m.pol.(FaultObserver); ok {
			m.faultObs = obs
		}
	}
	return m, nil
}

// Run returns the measurement record.
func (m *Manager) Run() *stats.Run { return m.run }

// Policy returns the replacement policy instance.
func (m *Manager) Policy() policy.Policy { return m.pol }

// Resident returns the number of resident mappings.
func (m *Manager) Resident() int { return m.as.Resident() }

// Host returns the backing store (tests inspect write-back contents).
func (m *Manager) Host() *mem.Host { return m.host }

// Device returns the device memory (tests inspect frames).
func (m *Manager) Device() *mem.Device { return m.dev }

// SharingHistogram returns PSPT's pages-per-core-map-count histogram
// (Figure 6). ok is false under regular page tables.
func (m *Manager) SharingHistogram() ([]int, bool) {
	if a, ok := m.as.(*psptAS); ok {
		return a.PSPT().SharingHistogram(), true
	}
	return nil, false
}

// Cores returns the number of application cores.
func (m *Manager) Cores() int { return m.cfg.Cores }

// Topology returns the machine topology (nil on flat runs).
func (m *Manager) Topology() *sim.Topology { return m.topo }

// walkExtra returns the per-domain surcharge of a page-table walk by
// core. Only the regular shared table pays it: that table is homed on
// socket 0, so walks from any other socket cross the interconnect.
// PSPT walks always hit the core's own (socket-local) private table —
// the structural advantage this PR quantifies against numaPTE.
func (m *Manager) walkExtra(core sim.CoreID) sim.Cycles {
	if !m.topo.Multi() || m.cfg.Tables == PSPTKind || m.topo.SocketOf(core) == 0 {
		return 0
	}
	return m.topo.RemoteWalkExtra
}

// TLBFor exposes core's TLB for read-only inspection (the invariant
// auditor cross-checks cached translations against the page tables).
func (m *Manager) TLBFor(core sim.CoreID) *tlb.TLB { return &m.tlbs[core] }

// Lookup resolves vpn through core's page-table view. Bookkeeping only:
// no cost is charged and no simulated state changes.
func (m *Manager) Lookup(core sim.CoreID, vpn sim.PageID) (pagetable.PTE, sim.PageSize, bool) {
	return m.as.Lookup(core, vpn)
}

// ForEachMapping visits every resident mapping in ascending base order.
func (m *Manager) ForEachMapping(fn func(base sim.PageID, size sim.PageSize, pfn int64)) {
	m.as.ForEachMapping(fn)
}

// PSPT returns the per-core table set, or ok=false under regular
// page tables.
func (m *Manager) PSPT() (*pspt.PSPT, bool) {
	if a, ok := m.as.(*psptAS); ok {
		return a.PSPT(), true
	}
	return nil, false
}

// AdaptiveResidency exposes the size adapter's per-block and per-group
// residency counters (ok=false when Config.Adaptive is off). The slices
// are live views; callers must not modify them.
func (m *Manager) AdaptiveResidency() (perBlock, perGroup []int32, ok bool) {
	if m.adapter == nil {
		return nil, nil, false
	}
	return m.adapter.resInBlock, m.adapter.resInGroup, true
}

// TakeDebt drains and returns the pending interrupt cycles of core —
// the time the core will spend servicing invalidation IPIs it received
// since it last ran. The event engine adds it to the core's clock.
func (m *Manager) TakeDebt(core sim.CoreID) sim.Cycles {
	d := m.debt[core]
	m.debt[core] = 0
	return d
}

// TakeScanCost drains the accumulated scanner-side cost (PTE scans and
// shootdown initiation performed inside policy.Tick via ScanAccessed).
func (m *Manager) TakeScanCost() sim.Cycles {
	c := m.scanCost
	m.scanCost = 0
	return c
}

// Tick runs the policy's periodic machinery at virtual time now and
// returns the scanner-side cost it incurred.
func (m *Manager) Tick(now sim.Cycles) sim.Cycles {
	if m.rec != nil {
		m.rec.Advance(now)
	}
	if m.mt != nil {
		for _, p := range m.mt.pols {
			p.Tick(now)
		}
	} else {
		m.pol.Tick(now)
	}
	if m.adapter != nil {
		m.adapter.tick(now)
	}
	m.maybeRebuildPSPT(now)
	cost := m.TakeScanCost()
	if m.rec != nil && cost > 0 {
		m.rec.Emit(now, m.scanner, obs.EvScanTick, 0, int64(cost))
	}
	return cost
}

// maybeRebuildPSPT periodically drops all private PTEs (PSPT only) so
// the sharing picture re-forms; see Config.PSPTRebuildPeriod. Dropping
// a PTE invalidates the owning core's cached translation, so each
// previously-mapping core takes an asynchronous invalidation IPI.
func (m *Manager) maybeRebuildPSPT(now sim.Cycles) {
	if m.cfg.PSPTRebuildPeriod == 0 || now < m.nextRebuild {
		return
	}
	m.nextRebuild = now + m.cfg.PSPTRebuildPeriod
	a, ok := m.as.(*psptAS)
	if !ok {
		return
	}
	// A rebuild is a planned, batched sweep: each core receives ONE
	// interrupt per rebuild carrying its whole invalidation list (one
	// INVLPG per dropped page), not one IPI per page — that is what
	// makes periodic rebuilding affordable at all.
	//
	// The tally lives in a dense per-core slice swept in core-ID order:
	// no allocation per rebuild, and anything ordered inside the sweep
	// (debt charging, future event emission) stays deterministic.
	perCore := m.rebuildCount
	clear(perCore)
	a.PSPT().Rebuild(func(base sim.PageID, targets []sim.CoreID) {
		m.scanCost += m.cost.ScanPTE
		for _, tc := range targets {
			if m.invalObs != nil {
				m.invalObs(tc, base)
			}
			m.tlbs[tc].Invalidate(base)
			perCore[tc]++
			m.run.Add(tc, stats.RemoteTLBInvalidations, 1)
		}
	})
	cores := 0
	for tc, pages := range perCore {
		if pages == 0 {
			continue
		}
		cores++
		m.debt[sim.CoreID(tc)] += m.cost.IPIInterrupt + sim.Cycles(pages)*m.cost.InvlpgLocal
		m.run.Add(m.scanner, stats.IPIsSent, 1)
		m.scanCost += m.cost.ScanIPIPerTarget
	}
	if m.rec != nil && cores > 0 {
		m.rec.Emit(now, m.scanner, obs.EvShootdown, 0, int64(cores))
	}
	if m.hs != nil && cores > 0 {
		m.hs.Record(stats.FanoutHist, uint64(cores))
	}
}

// CoreMapCount implements policy.Host. Degraded pages answer -1 — the
// regular-table "sharer count unknown" value — so a count-driven policy
// (CMCP) treats them exactly as it would under shared tables.
func (m *Manager) CoreMapCount(base sim.PageID) int {
	if m.degraded != nil {
		if _, deg := m.degraded[base]; deg {
			return -1
		}
	}
	return m.as.CoreMapCount(base)
}

// ScanAccessed implements policy.Host: the access-bit statistics pass.
// The scan itself runs on the dedicated scanner pseudo-core, but every
// cleared bit forces invalidation IPIs into the application cores —
// the cost that Table 1 exposes and that CMCP avoids entirely.
//
// Cost attribution: the (small) initiator-side scan cost accumulates on
// the scanner lane even when a policy scans from the eviction path
// (CLOCK's second-chance sweep). The dominant costs — the target-side
// interrupts — are charged to the right cores either way, matching the
// paper's setup of dedicating hyperthreads to statistics collection.
func (m *Manager) ScanAccessed(base sim.PageID) bool {
	// Scanning a 64 kB group iterates its 16 sub-entries (§4).
	ptes := sim.Cycles(1)
	if _, size, ok := m.lookupAny(base); ok && size == sim.Size64k {
		ptes = sim.Span64k
	}
	m.scanCost += ptes * m.cost.ScanPTE
	accessed, targets := m.as.ScanAccessed(base)
	if accessed && m.degraded != nil {
		if _, deg := m.degraded[base]; deg {
			// Degraded page: sharer set untrusted, broadcast like the
			// regular tables would.
			targets = m.allCoresList()
		}
	}
	if accessed {
		m.run.Add(m.scanner, stats.ScanClears, 1)
	}
	remote := 0
	for _, tc := range targets {
		if m.invalObs != nil {
			m.invalObs(tc, base)
		}
		m.tlbs[tc].Invalidate(base)
		m.debt[tc] += m.cost.IPIInterrupt
		m.run.Add(tc, stats.RemoteTLBInvalidations, 1)
		remote++
	}
	if remote > 0 {
		m.run.Add(m.scanner, stats.IPIsSent, uint64(remote))
		// Asynchronous fire-and-forget IPIs: enqueue cost only.
		m.scanCost += m.cost.IPISend + sim.Cycles(remote)*m.cost.ScanIPIPerTarget
		if m.rec != nil {
			m.rec.EmitNow(m.scanner, obs.EvShootdown, base, int64(remote))
		}
		if m.hs != nil {
			m.hs.Record(stats.FanoutHist, uint64(remote))
		}
	}
	return accessed
}

// lookupAny resolves vpn through any core's view (bookkeeping only).
func (m *Manager) lookupAny(vpn sim.PageID) (pagetable.PTE, sim.PageSize, bool) {
	if a, ok := m.as.(*psptAS); ok {
		mp := a.PSPT().Mapping(vpn)
		if mp == nil {
			return 0, 0, false
		}
		cores := mp.Cores.Cores(nil)
		if len(cores) == 0 {
			return 0, 0, false
		}
		return m.as.Lookup(cores[0], vpn)
	}
	return m.as.Lookup(0, vpn)
}

// Access executes one page touch by core at virtual time now and
// returns the core's finishing time. This is the hardware+kernel
// access path: TLB lookup, page walk on miss, fault handling when the
// translation is absent, then the touch's amortized compute.
//
// A non-nil error means the simulated kernel's bookkeeping diverged
// (ErrNoVictim, ErrBadVictim, ErrMapFailed, ErrCorruption); the run is
// unrecoverable and the returned time is meaningless.
func (m *Manager) Access(core sim.CoreID, vpn sim.PageID, write bool, now sim.Cycles) (sim.Cycles, error) {
	m.run.Add(core, stats.Touches, 1)
	if m.mt != nil {
		m.mt.ts.Add(m.mt.tenantOf(vpn), stats.TenantTouches, 1)
	}
	t := now
	switch m.tlbs[core].Lookup(vpn) {
	case tlb.HitL1:
		// Translation cached: no kernel involvement.
	case tlb.HitL2:
		m.run.Add(core, stats.DTLBMisses, 1)
		m.run.Add(core, stats.TLBL2Hits, 1)
		t += m.cost.TLBL2Hit
	case tlb.Miss:
		m.run.Add(core, stats.DTLBMisses, 1)
		m.run.Add(core, stats.PageWalks, 1)
		t += m.cost.PageWalk
		if we := m.walkExtra(core); we > 0 {
			t += we
			m.run.Add(core, stats.RemoteWalks, 1)
		}
		if _, size, ok := m.as.Lookup(core, vpn); ok {
			m.tlbs[core].Insert(vpn, size)
		} else {
			var err error
			t, err = m.fault(core, vpn, t)
			if err != nil {
				return t, err
			}
		}
	}
	m.touchBookkeeping(core, vpn, write)
	return t + m.cost.TouchCompute, nil
}

// touchBookkeeping simulates the MMU attribute updates and the data
// write for one touch (zero cost: included in TouchCompute).
func (m *Manager) touchBookkeeping(core sim.CoreID, vpn sim.PageID, write bool) {
	m.as.Touch(core, vpn, write)
	if !write {
		return
	}
	if f, ok := m.frameOf(core, vpn); ok {
		m.writeSeq++
		m.dev.Write(f, core, m.writeSeq)
	}
}

// frameOf resolves the device frame backing vpn in core's view.
func (m *Manager) frameOf(core sim.CoreID, vpn sim.PageID) (sim.FrameID, bool) {
	pte, size, ok := m.as.Lookup(core, vpn)
	if !ok {
		return 0, false
	}
	switch size {
	case sim.Size2M:
		return sim.FrameID(pte.PFN() + int64(vpn-sim.Size2M.Align(vpn))), true
	default: // 4k; 64k member PTEs carry the member frame directly
		return sim.FrameID(pte.PFN()), true
	}
}

// fault handles a translation fault by core for vpn starting at virtual
// time t and returns the completion time. When histograms are enabled it
// records the end-to-end service time — fault entry through the last
// lock release, including injected-fault retries and backoff — so the
// distribution captures exactly what the faulting core experienced.
func (m *Manager) fault(core sim.CoreID, vpn sim.PageID, t sim.Cycles) (sim.Cycles, error) {
	if m.hs == nil && m.mt == nil {
		return m.faultService(core, vpn, t)
	}
	end, err := m.faultService(core, vpn, t)
	if err == nil {
		if m.hs != nil {
			m.hs.Record(stats.FaultServiceHist, uint64(end-t))
		}
		if m.mt != nil {
			// Per-tenant fault-service latency is always on for tenant
			// runs: it feeds the p99/fairness metrics, not Config.Hist.
			m.mt.ts.RecordFault(m.mt.tenantOf(vpn), uint64(end-t))
		}
	}
	return end, err
}

// faultService is the fault path proper; see fault.
func (m *Manager) faultService(core sim.CoreID, vpn sim.PageID, t sim.Cycles) (sim.Cycles, error) {
	t += m.cost.FaultEntry
	if m.rec != nil {
		m.rec.Advance(t)
	}

	// PSPT minor fault: some sibling core already maps the page; copy
	// its PTE under the per-page lock. On a multi-socket topology the
	// consult first runs the numaPTE replica protocol: a consult from a
	// socket with no replica crosses the interconnect (RemoteWalkExtra),
	// materializes a local replica, and a streak of remote consults
	// re-homes the page-table page (MigrateCost). Recorded before
	// ResolveSibling copies the PTE, which would add this socket to the
	// replica set and hide the crossing.
	var remoteConsult, ptMigrated bool
	if m.topo.Multi() {
		if a, isPSPT := m.as.(*psptAS); isPSPT {
			remoteConsult, ptMigrated = a.PSPT().NoteConsult(vpn, m.topo.SocketOf(core), m.topo.MigrateThreshold)
		}
	}
	if base, ok := m.as.ResolveSibling(core, vpn, pagetable.Writable); ok {
		m.run.Add(core, stats.MinorFaults, 1)
		if m.mt != nil {
			m.mt.ts.Add(m.mt.tenantOf(vpn), stats.TenantMinorFaults, 1)
		}
		t += m.cost.PSPTConsult
		if remoteConsult {
			t += m.topo.RemoteWalkExtra
			m.run.Add(core, stats.RemotePTConsults, 1)
		}
		if ptMigrated {
			t += m.topo.MigrateCost
			m.run.Add(core, stats.PTMigrations, 1)
			if m.rec != nil {
				m.rec.Emit(t, core, obs.EvPTMigration, vpn, int64(m.topo.SocketOf(core)))
			}
		}
		t = m.acquirePageLock(core, base, t)
		if m.rec != nil {
			m.rec.Emit(t, core, obs.EvMinorFault, base, 0)
		}
		if m.inj.Trip(fault.MapSkew) {
			// Injected PSPT bookkeeping skew: a core bit appears in the
			// shared mapping descriptor with no PTE behind it. Harmless
			// (the phantom core just re-minor-faults and over-receives
			// shootdowns) until the invariant auditor notices, at which
			// point DegradePage repairs the set and drops the page to
			// regular-table semantics.
			m.run.Add(core, stats.FaultsInjected, 1)
			if a, isPSPT := m.as.(*psptAS); isPSPT {
				if pc, did := a.PSPT().InjectPhantomCoreBit(base); did && m.rec != nil {
					m.rec.Emit(t, core, obs.EvPSPTSkew, base, int64(pc))
				}
			}
		}
		if m.mt != nil {
			m.mt.pteSetup(base)
		} else {
			m.pol.PTESetup(base)
		}
		if _, size, ok := m.as.Lookup(core, vpn); ok {
			m.tlbs[core].Insert(vpn, size)
		}
		return t, nil
	}

	// Major fault: the page lives in host memory. The handling cost
	// has three serialization points: the short global allocator lock,
	// the PCIe wire time (transfers stream but share the link), and the
	// page-table lock for the PTE update — address-space wide under
	// regular tables, per-page under PSPT. What actually breaks regular
	// tables at scale is not lock hold time but the shootdown
	// broadcast inside service/evict: every eviction interrupts every
	// core, so the per-core interrupt load grows linearly with the core
	// count (and the initiator's IPI loop does too).
	m.run.Add(core, stats.PageFaults, 1)
	if m.rec != nil {
		m.rec.Emit(t, core, obs.EvFault, vpn, 0)
	}
	if m.mt != nil {
		vt := m.mt.tenantOf(vpn)
		m.mt.ts.Add(vt, stats.TenantFaults, 1)
		if o := m.mt.fobs[vt]; o != nil {
			o.NoteFault()
		}
	} else if m.faultObs != nil {
		m.faultObs.NoteFault()
	}
	size := m.cfg.PageSize
	if m.adapter != nil {
		size = m.adapter.choose(vpn)
		for size.Span() > sim.PageID(m.cfg.Frames) {
			size-- // device too small for this granularity
		}
		if size == sim.Size2M && m.dev.FreeFrames() < sim.Span2M {
			// Carving a 512-frame aligned hole out of live mappings is
			// a compaction storm; fall back to the middle size.
			size = sim.Size64k
		}
	}
	base := size.Align(vpn)
	span := int(size.Span())

	done, waited := m.allocLock.Acquire(t, m.cost.AllocLock)
	m.run.Add(core, stats.LockWaitCycles, uint64(waited))
	if m.rec != nil && waited > 0 {
		m.rec.Emit(done, core, obs.EvLockWait, base, int64(waited))
	}
	if m.hs != nil && waited > 0 {
		m.hs.Record(stats.LockWaitHist, uint64(waited))
	}
	t = done
	work, wire, err := m.service(core, vpn, base, size, span)
	if err != nil {
		return t, err
	}
	t += work
	if wire > 0 {
		busDone, busWaited := m.dmaBus.Acquire(t, wire)
		m.run.Add(core, stats.LockWaitCycles, uint64(busWaited))
		if m.rec != nil && busWaited > 0 {
			m.rec.Emit(busDone, core, obs.EvLockWait, base, int64(busWaited))
		}
		if m.hs != nil && busWaited > 0 {
			m.hs.Record(stats.LockWaitHist, uint64(busWaited))
		}
		t = busDone + m.dmaLatencyFor(wire)
	}
	return m.acquirePageLock(core, base, t), nil
}

// acquirePageLock serializes core on base's page-table lock starting at
// time t and returns the time the critical section completes. Under
// fault injection a stuck-lock trip first stalls the acquisition for
// LockStuckTimeout — a wedged holder that recovery times out and kicks
// loose — before the normal queued acquire.
func (m *Manager) acquirePageLock(core sim.CoreID, base sim.PageID, t sim.Cycles) sim.Cycles {
	if m.inj.Trip(fault.StuckLock) {
		stall := m.cost.LockStuckTimeout
		m.run.Add(core, stats.FaultsInjected, 1)
		m.run.Add(core, stats.RecoveryRetries, 1)
		m.run.Add(core, stats.LockWaitCycles, uint64(stall))
		if m.rec != nil {
			m.rec.Emit(t+stall, core, obs.EvLockStuck, base, int64(stall))
		}
		if m.hs != nil {
			m.hs.Record(stats.LockWaitHist, uint64(stall))
		}
		t += stall
	}
	done, waited := m.as.LockFor(base).Acquire(t, m.cost.LockBase)
	m.run.Add(core, stats.LockWaitCycles, uint64(waited))
	if m.rec != nil && waited > 0 {
		m.rec.Emit(done, core, obs.EvLockWait, base, int64(waited))
	}
	if m.hs != nil && waited > 0 {
		m.hs.Record(stats.LockWaitHist, uint64(waited))
	}
	return done
}

// dmaLatencyFor returns the fixed PCIe setup latency when any bytes
// moved (a combined write-back+page-in pays it once per direction; we
// approximate with a single latency per fault).
func (m *Manager) dmaLatencyFor(wire sim.Cycles) sim.Cycles {
	if wire == 0 {
		return 0
	}
	return m.cost.DMALatency
}

// service performs the state mutations of a major fault — allocate
// (evicting as needed), page-in, map, policy bookkeeping, TLB install —
// and returns the CPU work it cost plus the PCIe wire time consumed.
//
// The allocate+page-in pair runs as a transaction: under fault injection
// an attempt can roll back (frames released, backoff charged, nothing
// mapped) and retry, so a transient transfer failure or a corrupt frame
// never leaves a half-installed mapping behind.
func (m *Manager) service(core sim.CoreID, vpn, base sim.PageID, size sim.PageSize, span int) (work, wire sim.Cycles, err error) {
	work = m.cost.FaultService

	var frame sim.FrameID
	var bytes int64
	attempt := 0
	for {
		f, evWork, evBytes, allocErr := m.allocFrames(core, base, span)
		if allocErr != nil {
			return 0, 0, allocErr
		}
		work += evWork
		bytes += evBytes

		committed, txWork, txBytes, txErr := m.pageInTx(core, base, f, span, &attempt)
		work += txWork
		bytes += txBytes
		if txErr != nil {
			return 0, 0, txErr
		}
		if committed {
			frame = f
			break
		}
	}
	m.run.Add(core, stats.BytesIn, uint64(size.Bytes()))
	bytes += size.Bytes()

	if mapErr := m.as.Map(core, base, size, int64(frame), pagetable.Writable); mapErr != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrMapFailed, mapErr)
	}
	if m.adapter != nil {
		m.adapter.mapped(base, size)
	}
	if m.mt != nil {
		m.mt.pteSetup(base)
	} else {
		m.pol.PTESetup(base)
	}
	m.tlbs[core].Insert(vpn, size)

	wire = sim.Cycles(float64(bytes) / m.cost.DMABytesPerCycle)
	return work, wire, nil
}

// pageInTx attempts the host-to-device transfer of one mapping into the
// span frames starting at frame. Under fault injection an attempt can
// fail two ways: a transient transfer failure (the whole attempt rolls
// back and retries after a deterministic backoff, bounded by the
// injector's MaxRetries) or frame corruption (the bad frame is
// permanently quarantined and the attempt rolls back onto fresh frames —
// bounded naturally, because every corruption costs the device a frame,
// so sustained corruption ends in ErrNoVictim rather than a hang). A
// rolled-back attempt returns committed=false with every frame released
// or retired and bytes holding only the wasted wire traffic; simulated
// state is exactly as before the attempt.
func (m *Manager) pageInTx(core sim.CoreID, base sim.PageID, frame sim.FrameID, span int, attempt *int) (committed bool, work sim.Cycles, bytes int64, err error) {
	if m.inj.Trip(fault.PageIn) {
		// Transient link failure before the payload moved: roll the
		// allocation back and either back off and retry or, once the
		// retry budget is spent, fail the run with consistent state.
		*attempt++
		m.rollbackFrames(frame, span)
		m.run.Add(core, stats.FaultsInjected, 1)
		m.run.Add(core, stats.TxRollbacks, 1)
		if m.rec != nil {
			m.rec.EmitNow(core, obs.EvRollback, base, int64(*attempt))
		}
		if *attempt > m.inj.MaxRetries() {
			return false, 0, 0, fmt.Errorf("%w: page-in of %d failed %d times", ErrIOFailure, base, *attempt)
		}
		m.run.Add(core, stats.RecoveryRetries, 1)
		return false, m.cost.RetryBackoff(*attempt), 0, nil
	}
	var moved int64
	for i := 0; i < span; i++ {
		v := base + sim.PageID(i)
		f := frame + sim.FrameID(i)
		sig := m.host.PageIn(v)
		moved += sim.PageSize4k
		if m.inj.Trip(fault.Corrupt) {
			// The frame mangled the payload: retire it for good (the
			// device shrinks to a smaller healthy capacity) and roll the
			// attempt back onto fresh frames. Deliberately not counted
			// against the transient-retry budget — the finite frame pool
			// bounds it instead.
			m.run.Add(core, stats.FaultsInjected, 1)
			m.run.Add(core, stats.TxRollbacks, 1)
			m.run.Add(core, stats.QuarantinedFrames, 1)
			m.run.Add(core, stats.RecoveryRetries, 1)
			if m.rec != nil {
				m.rec.EmitNow(core, obs.EvQuarantine, base, int64(f))
				m.rec.EmitNow(core, obs.EvRollback, base, int64(*attempt))
			}
			m.quarantineFrame(frame, span, i)
			return false, m.cost.RetryBackoff(1), moved, nil
		}
		if m.verify != nil {
			if want, ok := m.verify[v]; ok && want != sig {
				return false, 0, 0, fmt.Errorf("%w on page %d: got %x want %x", ErrCorruption, v, sig, want)
			}
		}
		m.dev.SetSignature(f, sig)
	}
	return true, 0, 0, nil
}

// rollbackFrames releases a failed attempt's whole allocation.
func (m *Manager) rollbackFrames(frame sim.FrameID, span int) {
	if m.mt != nil {
		m.mt.release(frame, span)
	}
	for i := 0; i < span; i++ {
		m.dev.Free(frame + sim.FrameID(i))
	}
}

// quarantineFrame retires the bad frame of a failed attempt and releases
// the healthy rest.
func (m *Manager) quarantineFrame(frame sim.FrameID, span, bad int) {
	if m.mt != nil {
		m.mt.release(frame, span)
	}
	for i := 0; i < span; i++ {
		f := frame + sim.FrameID(i)
		if i == bad {
			m.dev.Quarantine(f)
		} else {
			m.dev.Free(f)
		}
	}
}

// allocFrames obtains span naturally aligned contiguous frames,
// evicting victims until the allocation succeeds.
func (m *Manager) allocFrames(core sim.CoreID, base sim.PageID, span int) (sim.FrameID, sim.Cycles, int64, error) {
	if m.mt != nil {
		return m.allocFramesTenant(core, base, span)
	}
	var work sim.Cycles
	var bytes int64
	for {
		f, err := m.dev.AllocRange(base, span)
		if err == nil {
			return f, work, bytes, nil
		}
		vbase, ok := m.pol.Victim()
		if !ok {
			if q := m.dev.Quarantined(); q > 0 {
				return 0, 0, 0, fmt.Errorf("%w (span %d, free %d; %d of %d frames quarantined)",
					ErrNoVictim, span, m.dev.FreeFrames(), q, m.dev.NumFrames())
			}
			return 0, 0, 0, fmt.Errorf("%w (span %d, free %d)", ErrNoVictim, span, m.dev.FreeFrames())
		}
		w, b, evErr := m.evict(core, vbase)
		if evErr != nil {
			return 0, 0, 0, evErr
		}
		work += w
		bytes += b
	}
}

// evict unmaps the victim mapping at vbase, shoots down the TLBs of the
// affected cores, writes dirty content back and frees the frames. It
// returns the evictor-side CPU work and the write-back byte count.
func (m *Manager) evict(core sim.CoreID, vbase sim.PageID) (sim.Cycles, int64, error) {
	base, size, pfn, targets, ok := m.as.Unmap(vbase)
	if !ok {
		return 0, 0, fmt.Errorf("%w: victim %d", ErrBadVictim, vbase)
	}
	if m.degraded != nil {
		if _, deg := m.degraded[base]; deg {
			// Degraded page: its precise sharer set is untrusted, so the
			// shootdown broadcasts to every core — regular-table
			// semantics. Eviction retires the degraded state.
			targets = m.allCoresList()
			delete(m.degraded, base)
		}
	}
	m.run.Add(core, stats.Evictions, 1)
	if m.adapter != nil {
		m.adapter.unmapped(base, size)
	}

	var work sim.Cycles
	remote := 0
	multi := m.topo.Multi()
	var remoteSockets pspt.SocketSet
	initSocket := 0
	if multi {
		initSocket = m.topo.SocketOf(core)
	}
	for _, tc := range targets {
		if m.invalObs != nil {
			m.invalObs(tc, base)
		}
		if tc == core {
			m.tlbs[core].Invalidate(base)
			work += m.cost.InvlpgLocal
			continue
		}
		m.tlbs[tc].Invalidate(base)
		m.debt[tc] += m.cost.IPIInterrupt
		m.run.Add(tc, stats.RemoteTLBInvalidations, 1)
		// Delivery rides the bidirectional ring: distant targets cost
		// the initiating core more. rtt accumulates this target's full
		// ack round trip — delivery plus any timeout+re-send cycles —
		// which is what the shootdown-RTT histogram records.
		//
		// Ring size: m.cfg.Cores counts the booked application cores
		// only. The statistics scanner is a hyperthread sharing a booked
		// core's ring stop (the paper dedicates hyperthreads, not
		// cores), so it adds no stop of its own and the active-core ring
		// size is the correct wrap modulus; see DESIGN.md §16.
		rtt := m.cost.IPIDeliveryCostOn(m.topo, core, tc, m.cfg.Cores)
		if multi {
			if s := m.topo.SocketOf(tc); s != initSocket {
				m.run.Add(core, stats.CrossSocketIPIs, 1)
				remoteSockets.Add(s)
			}
		}
		if m.inj != nil {
			// Dropped acknowledgement: the initiator waits out the ack
			// timeout and re-sends the IPI (the loss is modelled before
			// delivery, so the target is interrupted once, by whichever
			// send finally lands). Bounded by the retry budget; acks are
			// reliable past it.
			resent := 0
			for resent < m.inj.MaxRetries() && m.inj.Trip(fault.DropAck) {
				resent++
				rtt += m.cost.AckTimeout + m.cost.IPIDeliveryCostOn(m.topo, core, tc, m.cfg.Cores)
			}
			if resent > 0 {
				m.run.Add(core, stats.FaultsInjected, uint64(resent))
				m.run.Add(core, stats.ResentShootdowns, uint64(resent))
				m.run.Add(core, stats.RecoveryRetries, uint64(resent))
				if m.rec != nil {
					m.rec.EmitNow(core, obs.EvResend, base, int64(resent))
				}
			}
		}
		work += rtt
		if m.hs != nil {
			m.hs.Record(stats.ShootdownHist, uint64(rtt))
		}
		remote++
	}
	if multi {
		// Shootdown filtering: cores the precise PSPT target set let the
		// initiator skip, relative to the full broadcast regular tables
		// must issue (for which this is always zero — the comparison the
		// NUMA experiment journals).
		if filtered := m.cfg.Cores - len(targets); filtered > 0 {
			m.run.Add(core, stats.FilteredShootdowns, uint64(filtered))
		}
		if rs := remoteSockets.Count(); rs > 0 {
			if _, isPSPT := m.as.(*psptAS); isPSPT {
				// PTE teardown synchronizes every remote page-table
				// replica across the interconnect (numaPTE's update cost).
				work += sim.Cycles(rs) * m.topo.ReplicaSync
				m.run.Add(core, stats.ReplicaSyncs, uint64(rs))
				if m.rec != nil {
					m.rec.EmitNow(core, obs.EvReplicaSync, base, int64(rs))
				}
			}
			if m.hs != nil {
				m.hs.Record(stats.CrossSocketFanoutHist, uint64(rs))
			}
		}
	}
	if remote > 0 {
		m.run.Add(core, stats.IPIsSent, uint64(remote))
		work += m.cost.IPISend
		if m.hs != nil {
			m.hs.Record(stats.FanoutHist, uint64(remote))
		}
	}
	if m.rec != nil {
		m.rec.EmitNow(core, obs.EvEviction, base, int64(remote))
		if remote > 0 {
			m.rec.EmitNow(core, obs.EvShootdown, base, int64(remote))
		}
	}

	span := int(size.Span())
	if m.mt != nil {
		owner := m.mt.release(sim.FrameID(pfn), span)
		m.mt.ts.Add(owner, stats.TenantEvictions, 1)
	}
	dirty := false
	for i := 0; i < span; i++ {
		f := sim.FrameID(pfn + int64(i))
		v := base + sim.PageID(i)
		if m.dev.Dirty(f) {
			dirty = true
			m.host.PageOut(v, m.dev.Signature(f))
		}
		if m.verify != nil {
			// The frame signature is authoritative at eviction time:
			// page-in restored the host content into it and every
			// simulated store mixed into it since.
			m.verify[v] = m.dev.Signature(f)
		}
		m.dev.Free(f)
	}
	var bytes int64
	if dirty {
		m.run.Add(core, stats.WriteBacks, 1)
		m.run.Add(core, stats.BytesOut, uint64(size.Bytes()))
		bytes = size.Bytes()
		if m.rec != nil {
			m.rec.EmitNow(core, obs.EvWriteBack, base, bytes)
		}
		if m.inj != nil {
			// Transient write-back failure. Every state mutation above is
			// already committed (unmap, shootdown, host copy, free), so a
			// retry is a pure re-transfer: backoff plus another trip of
			// the payload over the wire. Exhausting the budget fails the
			// run with consistent state.
			attempt := 0
			for m.inj.Trip(fault.PageOut) {
				attempt++
				m.run.Add(core, stats.FaultsInjected, 1)
				if attempt > m.inj.MaxRetries() {
					return 0, 0, fmt.Errorf("%w: write-back of %d failed %d times", ErrIOFailure, base, attempt)
				}
				m.run.Add(core, stats.RecoveryRetries, 1)
				work += m.cost.RetryBackoff(attempt)
				bytes += size.Bytes()
			}
		}
	}
	// Eviction latency: the evictor-side CPU work for this victim —
	// unmap, shootdown round trips, write-back retries and backoff. The
	// wire time is excluded (it is serialized on the DMA bus by the
	// caller, shared with the page-in).
	if m.hs != nil {
		m.hs.Record(stats.EvictionHist, uint64(work))
	}
	return work, bytes, nil
}

// allCoresList returns the lazily built every-core shootdown target list
// used for degraded pages.
func (m *Manager) allCoresList() []sim.CoreID {
	if m.allCores == nil {
		m.allCores = make([]sim.CoreID, m.cfg.Cores)
		for i := range m.allCores {
			m.allCores[i] = sim.CoreID(i)
		}
	}
	return m.allCores
}

// DegradePage is the invariant auditor's recovery hook for PSPT
// bookkeeping skew: it rebuilds the page's sharer set from the actual
// per-core table population and drops the page to regular-table
// semantics — unknown core-map count, broadcast shootdowns — until the
// page is next evicted. It reports whether a repair happened; false
// (no fault injection active, regular tables, or nothing actually
// skewed) tells the auditor the violation is a genuine invariant breach
// that must be reported, not recovered.
func (m *Manager) DegradePage(base sim.PageID) bool {
	if m.inj == nil {
		return false
	}
	a, ok := m.as.(*psptAS)
	if !ok {
		return false
	}
	if !a.PSPT().ResyncCores(base) {
		return false
	}
	if m.degraded == nil {
		m.degraded = make(map[sim.PageID]struct{})
	}
	if _, dup := m.degraded[base]; !dup {
		m.degraded[base] = struct{}{}
		m.run.Add(0, stats.DegradedPages, 1)
		if m.rec != nil {
			m.rec.EmitNow(m.scanner, obs.EvDegraded, base, 0)
		}
	}
	return true
}
