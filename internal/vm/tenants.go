package vm

import (
	"fmt"
	"math"

	"cmcp/internal/mem"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

// TenantConfig turns the Manager into a multi-tenant machine: Count
// address spaces of PagesPerTenant pages each share the one device
// frame pool. Tenant t owns the global pages
// [t·PagesPerTenant, (t+1)·PagesPerTenant), so the page→tenant map is
// pure arithmetic and the engines need no notion of tenancy at all —
// which is also why multi-tenant runs are bit-identical across the
// serial and epoch-parallel engines by construction.
type TenantConfig struct {
	// Count is the number of tenants.
	Count int
	// PagesPerTenant is each tenant's footprint in 4 kB pages.
	PagesPerTenant int
	// Weights are the tenants' shares of the frame pool; nil means
	// uniform, otherwise length must equal Count.
	Weights []float64
	// HardPartition carves fixed per-tenant frame quotas from the
	// weights. Off, the weights steer proportional eviction pressure:
	// a fault evicts from whichever tenant holds the most frames per
	// unit of weight.
	HardPartition bool
}

// tenantState is the Manager's multi-tenant extension: one policy
// instance per tenant (operating on tenant-local page IDs so its
// tables size to the tenant footprint, not the machine), the
// frame-ownership table, per-tenant counters, and the eviction
// arbiter's score heap.
type tenantState struct {
	count int
	ppt   sim.PageID // pages per tenant
	pols  []policy.Policy
	fobs  []FaultObserver // per-tenant fault observers; nil entries allowed
	cmap  *mem.CoreMap
	ts    *stats.TenantSet
	quota []int     // hard-partition frame quotas; nil under weighted pressure
	invw  []float64 // 1/weight per tenant; nil under hard partition
	heap  tenantHeap
}

// newTenantState validates the tenant config and builds the per-tenant
// machinery. Multi-tenant runs are restricted to plain 4 kB mappings:
// span-1 frames keep the ownership table and the partition arithmetic
// exact (a 64 kB or 2 MB mapping could straddle a quota boundary).
func newTenantState(m *Manager, tc TenantConfig, factory PolicyFactory) (*tenantState, error) {
	if tc.Count <= 0 {
		return nil, fmt.Errorf("vm: %d tenants", tc.Count)
	}
	if tc.PagesPerTenant <= 0 {
		return nil, fmt.Errorf("vm: %d pages per tenant", tc.PagesPerTenant)
	}
	if m.cfg.PageSize != sim.Size4k || m.cfg.Adaptive {
		return nil, fmt.Errorf("vm: multi-tenant runs require 4 kB pages without adaptive sizing")
	}
	if len(tc.Weights) != 0 && len(tc.Weights) != tc.Count {
		return nil, fmt.Errorf("vm: %d tenant weights for %d tenants", len(tc.Weights), tc.Count)
	}
	for i, w := range tc.Weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("vm: tenant weight[%d] = %g must be positive and finite", i, w)
		}
	}
	s := &tenantState{
		count: tc.Count,
		ppt:   sim.PageID(tc.PagesPerTenant),
		pols:  make([]policy.Policy, tc.Count),
		fobs:  make([]FaultObserver, tc.Count),
		cmap:  mem.NewCoreMap(m.cfg.Frames, tc.Count),
		ts:    m.run.EnableTenants(tc.Count),
	}
	for t := range s.pols {
		s.pols[t] = factory(tenantHost{m: m, base: sim.PageID(t) * s.ppt})
		if o, ok := s.pols[t].(FaultObserver); ok {
			s.fobs[t] = o
		}
	}
	if tc.HardPartition {
		q, err := partitionQuotas(m.cfg.Frames, tc.Count, tc.Weights)
		if err != nil {
			return nil, err
		}
		s.quota = q
	} else {
		s.invw = make([]float64, tc.Count)
		for t := range s.invw {
			w := 1.0
			if len(tc.Weights) > 0 {
				w = tc.Weights[t]
			}
			s.invw[t] = 1 / w
		}
	}
	s.heap.init(tc.Count)
	for t := 0; t < tc.Count; t++ {
		s.refresh(t)
	}
	return s, nil
}

// partitionQuotas splits frames into per-tenant quotas proportional to
// the weights (uniform when nil), largest remainder first, every tenant
// at least one frame. Deterministic: ties go to the lowest tenant ID.
func partitionQuotas(frames, n int, weights []float64) ([]int, error) {
	if frames < n {
		return nil, fmt.Errorf("vm: hard partition needs one frame per tenant (%d frames, %d tenants)", frames, n)
	}
	w := func(t int) float64 {
		if len(weights) > 0 {
			return weights[t]
		}
		return 1
	}
	var total float64
	for t := 0; t < n; t++ {
		total += w(t)
	}
	q := make([]int, n)
	rem := make([]float64, n)
	assigned := 0
	for t := 0; t < n; t++ {
		exact := float64(frames) * w(t) / total
		q[t] = int(exact)
		if q[t] < 1 {
			q[t] = 1
		}
		rem[t] = exact - float64(q[t])
		assigned += q[t]
	}
	for assigned < frames {
		best := 0
		for t := 1; t < n; t++ {
			if rem[t] > rem[best] {
				best = t
			}
		}
		q[best]++
		rem[best]--
		assigned++
	}
	// The one-frame floor can overshoot when many tiny weights round up;
	// claw back from the largest quotas (never below the floor).
	for assigned > frames {
		best := -1
		for t := 0; t < n; t++ {
			if q[t] > 1 && (best < 0 || q[t] > q[best]) {
				best = t
			}
		}
		q[best]--
		assigned--
	}
	return q, nil
}

// tenantHost adapts the Manager's policy.Host to one tenant's local
// page IDs: the policy sees pages [0, PagesPerTenant), the machine
// sees them offset by the tenant's base.
type tenantHost struct {
	m    *Manager
	base sim.PageID
}

// CoreMapCount implements policy.Host.
func (h tenantHost) CoreMapCount(local sim.PageID) int {
	return h.m.CoreMapCount(h.base + local)
}

// ScanAccessed implements policy.Host.
func (h tenantHost) ScanAccessed(local sim.PageID) bool {
	return h.m.ScanAccessed(h.base + local)
}

// tenantOf returns the tenant owning global page vpn.
func (s *tenantState) tenantOf(vpn sim.PageID) int { return int(vpn / s.ppt) }

// local converts a global page ID to the owning tenant's local ID.
func (s *tenantState) local(base sim.PageID) sim.PageID { return base % s.ppt }

// global converts tenant t's local page ID back to the global ID.
func (s *tenantState) global(t int, local sim.PageID) sim.PageID {
	return sim.PageID(t)*s.ppt + local
}

// pteSetup routes the policy notification to the owning tenant's
// instance, in its local ID space.
func (s *tenantState) pteSetup(base sim.PageID) {
	s.pols[s.tenantOf(base)].PTESetup(s.local(base))
}

// claim records tenant t taking span frames at f and refreshes its
// arbitration score.
func (s *tenantState) claim(f sim.FrameID, span, t int) {
	s.cmap.Claim(f, span, t)
	s.refresh(t)
}

// release clears ownership of span frames at f, refreshes the previous
// owner's score and returns it.
func (s *tenantState) release(f sim.FrameID, span int) int {
	t := s.cmap.Release(f, span)
	s.refresh(t)
	return t
}

// refresh recomputes tenant t's eviction-pressure score. Weighted mode
// scores frames held per unit of weight; hard partition scores overage
// beyond the quota. Tenants holding nothing score -Inf so the arbiter
// never picks them.
func (s *tenantState) refresh(t int) {
	u := s.cmap.Used(t)
	score := math.Inf(-1)
	if u > 0 {
		if s.quota != nil {
			score = float64(u - s.quota[t])
		} else {
			score = float64(u) * s.invw[t]
		}
	}
	s.heap.update(t, score)
}

// victimTenant returns the tenant the arbiter charges the next eviction
// to, or -1 when no tenant holds any frame.
func (s *tenantState) victimTenant() int {
	t := s.heap.top()
	if s.cmap.Used(t) == 0 {
		return -1
	}
	return t
}

// tenantHeap is a positioned binary max-heap over tenant scores with a
// deterministic tie-break (lower tenant ID wins), so victim-tenant
// selection is O(log tenants) per eviction — the difference between a
// 10,000-tenant run finishing in seconds and in minutes — and identical
// across runs and engines.
type tenantHeap struct {
	score []float64
	order []int32 // heap array of tenant IDs
	pos   []int32 // tenant ID → index in order
}

func (h *tenantHeap) init(n int) {
	h.score = make([]float64, n)
	h.order = make([]int32, n)
	h.pos = make([]int32, n)
	for i := 0; i < n; i++ {
		h.score[i] = math.Inf(-1)
		h.order[i] = int32(i)
		h.pos[i] = int32(i)
	}
}

// top returns the highest-scoring tenant (lowest ID on ties).
func (h *tenantHeap) top() int { return int(h.order[0]) }

// update sets tenant t's score and restores the heap property.
func (h *tenantHeap) update(t int, score float64) {
	if h.score[t] == score {
		return
	}
	h.score[t] = score
	i := int(h.pos[t])
	if !h.up(i) {
		h.down(i)
	}
}

// better reports whether tenant a outranks tenant b.
func (h *tenantHeap) better(a, b int32) bool {
	sa, sb := h.score[a], h.score[b]
	if sa != sb {
		return sa > sb
	}
	return a < b
}

func (h *tenantHeap) swap(i, j int) {
	h.order[i], h.order[j] = h.order[j], h.order[i]
	h.pos[h.order[i]] = int32(i)
	h.pos[h.order[j]] = int32(j)
}

func (h *tenantHeap) up(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !h.better(h.order[i], h.order[p]) {
			break
		}
		h.swap(i, p)
		i = p
		moved = true
	}
	return moved
}

func (h *tenantHeap) down(i int) {
	n := len(h.order)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && h.better(h.order[r], h.order[l]) {
			best = r
		}
		if !h.better(h.order[best], h.order[i]) {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// allocFramesTenant is allocFrames under multi-tenancy: the faulting
// tenant first recycles its own frames when a hard partition caps it,
// then allocation failures evict from whichever tenant the arbiter
// scores highest — most frames per unit weight, or deepest over quota.
func (m *Manager) allocFramesTenant(core sim.CoreID, base sim.PageID, span int) (sim.FrameID, sim.Cycles, int64, error) {
	s := m.mt
	t := s.tenantOf(base)
	var work sim.Cycles
	var bytes int64
	for s.quota != nil && s.cmap.Used(t)+span > s.quota[t] {
		w, b, err := m.evictFromTenant(core, t, t)
		if err != nil {
			return 0, 0, 0, err
		}
		work += w
		bytes += b
	}
	for {
		f, err := m.dev.AllocRange(base, span)
		if err == nil {
			s.claim(f, span, t)
			return f, work, bytes, nil
		}
		vt := s.victimTenant()
		if vt < 0 {
			if q := m.dev.Quarantined(); q > 0 {
				return 0, 0, 0, fmt.Errorf("%w (span %d, free %d; %d of %d frames quarantined)",
					ErrNoVictim, span, m.dev.FreeFrames(), q, m.dev.NumFrames())
			}
			return 0, 0, 0, fmt.Errorf("%w (span %d, free %d)", ErrNoVictim, span, m.dev.FreeFrames())
		}
		w, b, evErr := m.evictFromTenant(core, vt, t)
		if evErr != nil {
			return 0, 0, 0, evErr
		}
		work += w
		bytes += b
	}
}

// evictFromTenant evicts tenant vt's policy-chosen victim on behalf of
// the faulting tenant, charging cross-tenant pressure when they differ.
func (m *Manager) evictFromTenant(core sim.CoreID, vt, faulting int) (sim.Cycles, int64, error) {
	local, ok := m.mt.pols[vt].Victim()
	if !ok {
		return 0, 0, fmt.Errorf("%w (tenant %d owns %d frames but its policy tracks no victim)",
			ErrNoVictim, vt, m.mt.cmap.Used(vt))
	}
	w, b, err := m.evict(core, m.mt.global(vt, local))
	if err != nil {
		return 0, 0, err
	}
	if vt != faulting {
		m.mt.ts.Add(faulting, stats.TenantEvictionsCaused, 1)
	}
	return w, b, nil
}

// TenantCount returns the number of tenants sharing the device, or 0 on
// single-tenant runs.
func (m *Manager) TenantCount() int {
	if m.mt == nil {
		return 0
	}
	return m.mt.count
}

// TenantOf returns the tenant owning global page vpn. Multi-tenant
// runs only.
func (m *Manager) TenantOf(vpn sim.PageID) int { return m.mt.tenantOf(vpn) }

// CoreMap returns the frame-ownership table, or nil on single-tenant
// runs. Read-only: the invariant auditor cross-checks it against the
// device's own owner records.
func (m *Manager) CoreMap() *mem.CoreMap {
	if m.mt == nil {
		return nil
	}
	return m.mt.cmap
}

// TenantPolicy returns tenant t's policy instance (multi-tenant runs
// only). Its page IDs are tenant-local.
func (m *Manager) TenantPolicy(t int) policy.Policy { return m.mt.pols[t] }

// PolicyResident returns the resident-mapping count the policy layer
// tracks, summed across tenants on multi-tenant runs.
func (m *Manager) PolicyResident() int {
	if m.mt == nil {
		return m.pol.Resident()
	}
	sum := 0
	for _, p := range m.mt.pols {
		sum += p.Resident()
	}
	return sum
}
