// Package vm implements the virtual-memory subsystem of the simulated
// lightweight kernel: the per-access path (TLB → page walk → fault),
// the page fault handler with eviction, TLB shootdowns, write-back and
// PCIe page-in, and the glue binding page tables, device memory and a
// replacement policy together.
package vm

import (
	"fmt"

	"cmcp/internal/dense"
	"cmcp/internal/pagetable"
	"cmcp/internal/pspt"
	"cmcp/internal/sim"
)

// TableKind selects the page-table organization.
type TableKind uint8

const (
	// RegularPT is the traditional organization: one set of page tables
	// shared by all cores, protected by an address-space-wide lock.
	// Which cores cache a translation is unknowable, so every TLB
	// shootdown must broadcast to all cores.
	RegularPT TableKind = iota
	// PSPTKind uses per-core partially separated page tables: precise
	// shootdown targets, per-page locking, and core-map counts.
	PSPTKind
)

// String returns "PSPT" or "regularPT".
func (k TableKind) String() string {
	if k == PSPTKind {
		return "PSPT"
	}
	return "regularPT"
}

// addressSpace abstracts the two page-table organizations for the
// fault handler. All methods are bookkeeping-only; costs are charged by
// the Manager from the sim.CostModel.
type addressSpace interface {
	// Lookup resolves vpn as seen by core.
	Lookup(core sim.CoreID, vpn sim.PageID) (pagetable.PTE, sim.PageSize, bool)

	// LookupRO is Lookup without any memo refresh: probe workers may
	// call it concurrently (at most one per core) while nothing mutates
	// the tables.
	LookupRO(core sim.CoreID, vpn sim.PageID) (pagetable.PTE, sim.PageSize, bool)

	// ResolveSibling implements the PSPT minor-fault path: if the page
	// is resident via another core, replicate its PTE into core's table
	// and return the mapping's base. Regular page tables have no such
	// path (the shared PTE is visible to everyone) and return ok=false.
	ResolveSibling(core sim.CoreID, vpn sim.PageID, flags pagetable.PTE) (base sim.PageID, ok bool)

	// Map establishes a new mapping for core at the size-aligned base.
	Map(core sim.CoreID, base sim.PageID, size sim.PageSize, pfn int64, flags pagetable.PTE) error

	// Unmap removes the mapping covering vpn from all tables. targets
	// is the set of cores whose TLBs must be invalidated: the precise
	// mapping set under PSPT, all cores under regular tables.
	Unmap(vpn sim.PageID) (base sim.PageID, size sim.PageSize, pfn int64, targets []sim.CoreID, ok bool)

	// Touch simulates the MMU setting accessed (and dirty, for writes)
	// bits for core's view of vpn.
	Touch(core sim.CoreID, vpn sim.PageID, write bool)

	// CoreMapCount returns the number of cores mapping base, or -1 when
	// the organization cannot know (regular tables).
	CoreMapCount(base sim.PageID) int

	// ScanAccessed tests and clears accessed bits for the mapping at
	// base, returning whether it was accessed and the cores whose TLBs
	// must be invalidated because a bit changed.
	ScanAccessed(base sim.PageID) (accessed bool, targets []sim.CoreID)

	// LockFor returns the virtual-time lock protecting updates to the
	// mapping at base: a single address-space lock for regular tables,
	// a per-page lock under PSPT.
	LockFor(base sim.PageID) *sim.Resource

	// Resident returns the number of live mappings.
	Resident() int

	// ForEachMapping visits every live mapping in ascending base order
	// (read-only; the invariant auditor and experiments iterate it).
	ForEachMapping(fn func(base sim.PageID, size sim.PageSize, pfn int64))
}

// mappingInfo is the kernel's record of one resident mapping under
// regular page tables (the OS knows what is mapped; it just cannot know
// which cores cached the translation). Records pack into one word of a
// page-indexed table: bit 0 present, bits 1-2 the size class, bits 8+
// the PFN. A zero word means "not mapped".
type mappingInfo struct {
	size sim.PageSize
	pfn  int64
}

func (mi mappingInfo) pack() uint64 {
	return 1 | uint64(mi.size)<<1 | uint64(mi.pfn)<<8
}

func unpackMappingInfo(w uint64) mappingInfo {
	return mappingInfo{size: sim.PageSize(w >> 1 & 3), pfn: int64(w >> 8)}
}

// sharedAS is the regular-page-table organization.
type sharedAS struct {
	cores    int
	table    *pagetable.Table
	maps     dense.Words // base -> packed mappingInfo
	resident int
	lock     sim.Resource
	targets  []sim.CoreID // reusable all-cores slice
}

func newSharedAS(cores, pages int, sc *dense.Scratch) *sharedAS {
	s := &sharedAS{
		cores: cores,
		table: pagetable.New(),
		maps:  dense.NewWords(sc, pages),
	}
	s.targets = make([]sim.CoreID, cores)
	for i := range s.targets {
		s.targets[i] = sim.CoreID(i)
	}
	return s
}

func (s *sharedAS) Lookup(_ sim.CoreID, vpn sim.PageID) (pagetable.PTE, sim.PageSize, bool) {
	return s.table.Lookup(vpn)
}

func (s *sharedAS) LookupRO(_ sim.CoreID, vpn sim.PageID) (pagetable.PTE, sim.PageSize, bool) {
	return s.table.LookupRO(vpn)
}

func (s *sharedAS) ResolveSibling(sim.CoreID, sim.PageID, pagetable.PTE) (sim.PageID, bool) {
	return 0, false // shared PTEs are visible to every core; no minor faults
}

func (s *sharedAS) Map(_ sim.CoreID, base sim.PageID, size sim.PageSize, pfn int64, flags pagetable.PTE) error {
	if s.maps.Get(base) != 0 {
		return fmt.Errorf("vm: double map of base %d", base)
	}
	switch size {
	case sim.Size4k:
		s.table.Set(base, pagetable.MakePTE(pfn, flags|pagetable.Present))
	case sim.Size64k:
		if err := s.table.Set64k(base, pfn, flags); err != nil {
			return err
		}
	case sim.Size2M:
		if err := s.table.Set2M(base, pagetable.MakePTE(pfn, flags)); err != nil {
			return err
		}
	}
	s.maps.Set(base, mappingInfo{size: size, pfn: pfn}.pack())
	s.resident++
	return nil
}

// find locates the mapping record covering vpn by probing each size
// class's alignment.
func (s *sharedAS) find(vpn sim.PageID) (sim.PageID, mappingInfo, bool) {
	for _, sz := range sizeClasses {
		base := sz.Align(vpn)
		if w := s.maps.Get(base); w != 0 {
			if mi := unpackMappingInfo(w); vpn < base+mi.size.Span() {
				return base, mi, true
			}
		}
	}
	return 0, mappingInfo{}, false
}

var sizeClasses = [3]sim.PageSize{sim.Size4k, sim.Size64k, sim.Size2M}

func (s *sharedAS) Unmap(vpn sim.PageID) (sim.PageID, sim.PageSize, int64, []sim.CoreID, bool) {
	base, mi, ok := s.find(vpn)
	if !ok {
		return 0, 0, 0, nil, false
	}
	switch mi.size {
	case sim.Size64k:
		s.table.Clear64k(base)
	case sim.Size2M:
		s.table.Clear2M(base)
	default:
		s.table.Clear(base)
	}
	s.maps.Set(base, 0)
	s.resident--
	// Centralized bookkeeping: the kernel cannot tell which cores have
	// the translation cached, so the shootdown must broadcast.
	return base, mi.size, mi.pfn, s.targets, true
}

func (s *sharedAS) Touch(_ sim.CoreID, vpn sim.PageID, write bool) {
	_, size, ok := s.table.Lookup(vpn)
	if !ok {
		return
	}
	if size == sim.Size2M {
		s.table.Update2M(vpn, func(e pagetable.PTE) pagetable.PTE {
			e = e.With(pagetable.Accessed)
			if write {
				e = e.With(pagetable.Dirty)
			}
			return e
		})
		return
	}
	s.table.Touch64k(vpn, write)
}

func (s *sharedAS) CoreMapCount(sim.PageID) int { return -1 }

func (s *sharedAS) ScanAccessed(base sim.PageID) (bool, []sim.CoreID) {
	b, mi, ok := s.find(base)
	if !ok {
		return false, nil
	}
	accessed := false
	switch mi.size {
	case sim.Size2M:
		s.table.Update2M(b, func(e pagetable.PTE) pagetable.PTE {
			if e.Has(pagetable.Accessed) {
				accessed = true
				return e.Without(pagetable.Accessed)
			}
			return e
		})
	case sim.Size64k:
		accessed, _ = s.table.Stat64k(b, true)
	default:
		s.table.Update(b, func(e pagetable.PTE) pagetable.PTE {
			if e.Has(pagetable.Accessed) {
				accessed = true
				return e.Without(pagetable.Accessed)
			}
			return e
		})
	}
	if !accessed {
		return false, nil
	}
	return true, s.targets // cleared a bit: broadcast invalidation
}

func (s *sharedAS) LockFor(sim.PageID) *sim.Resource { return &s.lock }

func (s *sharedAS) Resident() int { return s.resident }

func (s *sharedAS) ForEachMapping(fn func(base sim.PageID, size sim.PageSize, pfn int64)) {
	for p, w := range s.maps.Slice() {
		if w != 0 {
			mi := unpackMappingInfo(w)
			fn(sim.PageID(p), mi.size, mi.pfn)
		}
	}
}

// psptAS adapts pspt.PSPT to the addressSpace interface.
type psptAS struct {
	p       *pspt.PSPT
	sc      *dense.Scratch
	scratch []sim.CoreID
	locks   []sim.Resource // per-base fault locks, persistent across residency
}

func newPSPTAS(cores, pages int, sc *dense.Scratch) *psptAS {
	return &psptAS{p: pspt.NewSized(cores, pages, sc), sc: sc, locks: sc.Resources(pages)}
}

func (a *psptAS) Lookup(core sim.CoreID, vpn sim.PageID) (pagetable.PTE, sim.PageSize, bool) {
	return a.p.Lookup(core, vpn)
}

func (a *psptAS) LookupRO(core sim.CoreID, vpn sim.PageID) (pagetable.PTE, sim.PageSize, bool) {
	// Per-core tables: the (single) prober for core owns the table's
	// memo, so the plain lookup is already race-free.
	return a.p.Lookup(core, vpn)
}

func (a *psptAS) ResolveSibling(core sim.CoreID, vpn sim.PageID, flags pagetable.PTE) (sim.PageID, bool) {
	m, err := a.p.CopyFromSibling(core, vpn, flags)
	if err != nil || m == nil {
		return 0, false
	}
	return m.Base, true
}

func (a *psptAS) Map(core sim.CoreID, base sim.PageID, size sim.PageSize, pfn int64, flags pagetable.PTE) error {
	_, _, err := a.p.Map(core, base, size, pfn, flags)
	return err
}

func (a *psptAS) Unmap(vpn sim.PageID) (sim.PageID, sim.PageSize, int64, []sim.CoreID, bool) {
	m, _ := a.p.Unmap(vpn)
	if m == nil {
		return 0, 0, 0, nil, false
	}
	a.scratch = m.Cores.Cores(a.scratch[:0])
	return m.Base, m.Size, m.PFN, a.scratch, true
}

func (a *psptAS) Touch(core sim.CoreID, vpn sim.PageID, write bool) {
	a.p.Touch(core, vpn, write)
}

func (a *psptAS) CoreMapCount(base sim.PageID) int { return a.p.CoreMapCount(base) }

func (a *psptAS) ScanAccessed(base sim.PageID) (bool, []sim.CoreID) {
	accessed, targets := a.p.ScanAccessed(base, a.scratch[:0])
	a.scratch = targets
	return accessed, targets
}

func (a *psptAS) LockFor(base sim.PageID) *sim.Resource {
	m := a.p.Mapping(base)
	if m != nil {
		return &m.Lock
	}
	// Major fault on a not-yet-resident page: synchronize on the
	// allocator-side lock table (per-base, persistent across residency).
	return a.lockTable(base)
}

// lockTable keeps per-base locks alive across residency cycles so two
// cores faulting the same absent page serialize correctly. The table is
// page-indexed: a zero Resource is an idle lock, so no sentinel or
// insertion is needed.
func (a *psptAS) lockTable(base sim.PageID) *sim.Resource {
	if base >= sim.PageID(len(a.locks)) {
		c := 8
		for c < int(base)+1 {
			c <<= 1
		}
		nl := a.sc.Resources(c)
		copy(nl, a.locks)
		a.locks = nl
	}
	return &a.locks[base]
}

func (a *psptAS) Resident() int { return a.p.ResidentMappings() }

func (a *psptAS) ForEachMapping(fn func(base sim.PageID, size sim.PageSize, pfn int64)) {
	a.p.ForEachMapping(func(m *pspt.Mapping) { fn(m.Base, m.Size, m.PFN) })
}

// PSPT exposes the underlying PSPT for experiments (Figure 6 reads the
// sharing histogram directly from the per-core tables).
func (a *psptAS) PSPT() *pspt.PSPT { return a.p }
