package vm

import (
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/tlb"
)

// This file is the parallel engine's window into the Manager: the
// probe phase speculatively classifies touches without committing
// observable state, the commit phase retires whole runs of them in one
// call, and the invalidation observer lets the engine detect when a
// sweep-side TLB invalidation lands on a core with uncommitted
// speculative work (so that work can be rolled back and re-probed).
// See internal/machine/engine_parallel.go and DESIGN.md §13.

// SetInvalObserver registers fn to run immediately before each TLB
// invalidation is applied to a core (shootdowns from evictions, scan
// clears, and PSPT rebuilds all funnel through it). Passing nil
// detaches. The serial engine never sets one; the disabled path costs
// one nil check per invalidation.
func (m *Manager) SetInvalObserver(fn func(core sim.CoreID, base sim.PageID)) {
	m.invalObs = fn
}

// Cost returns the resolved cycle-cost model (after defaulting).
func (m *Manager) Cost() sim.CostModel { return m.cost }

// ProbeAccess speculatively classifies one touch by core: it performs
// the real TLB lookup — including the L2→L1 promotion and, on a
// successful walk, the real Insert — so the core's TLB evolves exactly
// as the serial access path would, but commits no counters and no
// accessed/dirty bits. Callers must have attached an enabled
// tlb.Journal to the core's TLB so the mutations can be rolled back.
//
// On ok=true, extra is the touch's cost beyond TouchCompute, level the
// counter class (Miss means a successful page walk), and entryBase/
// entrySize identify the TLB entry the touch now relies on. ok=false
// means the translation is absent — the serial path would fault — and
// nothing at all was mutated.
//
// Concurrency: at most one prober per core, and no Manager mutation
// (commit, fault, tick) may run concurrently with any prober. Under
// that discipline probers only write core-local state (the core's own
// TLB and, under PSPT, the core's own table memo) and read the frozen
// shared tables via LookupRO.
func (m *Manager) ProbeAccess(core sim.CoreID, vpn sim.PageID) (extra sim.Cycles, level tlb.HitLevel, entryBase sim.PageID, entrySize sim.PageSize, ok bool) {
	base, size, lv := m.tlbs[core].LookupInfo(vpn)
	switch lv {
	case tlb.HitL1:
		return 0, tlb.HitL1, base, size, true
	case tlb.HitL2:
		return m.cost.TLBL2Hit, tlb.HitL2, base, size, true
	}
	if _, sz, found := m.as.LookupRO(core, vpn); found {
		m.tlbs[core].Insert(vpn, sz)
		// walkExtra mirrors the serial path's per-domain walk surcharge;
		// the RemoteWalks counter lands in CommitTouches.
		return m.cost.PageWalk + m.walkExtra(core), tlb.Miss, sz.Align(vpn), sz, true
	}
	return 0, tlb.Miss, 0, 0, false
}

// CommitTouches retires count consecutive touches of vpn by core that
// a probe classified: the first at level (HitL2 pays the L2-hit
// counter pair, Miss means a successful page walk), the rest provably
// L1 hits. write reports whether any touch in the run wrote. The TLB
// mutations were already applied during the probe; this applies the
// counters and the MMU attribute/data-write bookkeeping.
//
// One touchBookkeeping call covers the whole run: accessed/dirty bits
// are idempotent ORs, so folding n touches into one is exact. The
// device write-order signature advances once per committed run instead
// of once per write; DESIGN.md §13 argues why that deviation cannot
// reach any Result field.
//
// book=false skips the bookkeeping walk entirely: the caller asserts an
// earlier commit of the same speculative run already applied bits at
// least as strong (engine bursts track this; the bits cannot have
// weakened in between, because clearing or unmapping them shoots down
// the core's TLB entry first, which rolls the run back).
func (m *Manager) CommitTouches(core sim.CoreID, vpn sim.PageID, level tlb.HitLevel, count uint64, write, book bool) {
	m.run.Add(core, stats.Touches, count)
	if m.mt != nil {
		m.mt.ts.Add(m.mt.tenantOf(vpn), stats.TenantTouches, count)
	}
	switch level {
	case tlb.HitL2:
		m.run.Add(core, stats.DTLBMisses, 1)
		m.run.Add(core, stats.TLBL2Hits, 1)
	case tlb.Miss:
		m.run.Add(core, stats.DTLBMisses, 1)
		m.run.Add(core, stats.PageWalks, 1)
		if m.walkExtra(core) > 0 {
			m.run.Add(core, stats.RemoteWalks, 1)
		}
	}
	if book {
		m.touchBookkeeping(core, vpn, write)
	}
}

// JournalTLB attaches j to core's TLB (see tlb.Journal) and returns
// the TLB for Maintain calls.
func (m *Manager) JournalTLB(core sim.CoreID, j *tlb.Journal) *tlb.TLB {
	m.tlbs[core].SetJournal(j)
	return &m.tlbs[core]
}
