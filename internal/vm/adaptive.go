package vm

import "cmcp/internal/sim"

// This file implements the paper's §5.7/§7 future work: "the operating
// system could monitor page fault frequency and adjust page sizes
// dynamically so that it always provides the highest performance. At
// the same time, different page sizes could be used for different
// parts of the address space."
//
// The sizeAdapter tracks fault frequency per 2 MB block of the
// computation area (with periodic decay) and picks each new mapping's
// granularity at fault time: rarely-faulting blocks get large mappings
// (fewer TLB misses), frequently-faulting blocks get small ones (less
// data movement and narrower shootdowns per eviction). Residency
// counters per 64 kB group and 2 MB block keep mixed sizes conflict
// free: a large mapping is only chosen when nothing smaller is live
// underneath it, exactly the constraint the Phi's page tables impose.

// Adaptive thresholds: with fewer than demote64k faults in the current
// window a block is considered quiet (2 MB), below demote4k it is warm
// (64 kB), above that it is hot-churning (4 kB).
const (
	adaptDemote64k = 8
	adaptDemote4k  = 48
)

// adaptDecayPeriod halves all block fault counters (in simulated
// cycles), forgetting old behaviour so blocks can be re-promoted.
const adaptDecayPeriod sim.Cycles = 1_000_000

// sizeAdapter holds the per-block statistics and residency counters.
type sizeAdapter struct {
	blockFaults map[sim.PageID]uint32 // 2MB-aligned base -> faults this window
	resInBlock  map[sim.PageID]int32  // live mappings per 2MB block
	resInGroup  map[sim.PageID]int32  // live mappings per 64kB group
	// recentEvictions gates 2 MB mappings: under eviction pressure a
	// huge mapping would have to carve a 512-frame aligned hole out of
	// small resident mappings — a compaction storm. Real kernels
	// disable transparent huge pages under pressure for the same
	// reason.
	recentEvictions uint32
	nextDecay       sim.Cycles
}

func newSizeAdapter() *sizeAdapter {
	return &sizeAdapter{
		blockFaults: make(map[sim.PageID]uint32),
		resInBlock:  make(map[sim.PageID]int32),
		resInGroup:  make(map[sim.PageID]int32),
	}
}

// choose picks the mapping size for a fault at vpn.
func (a *sizeAdapter) choose(vpn sim.PageID) sim.PageSize {
	block := sim.Size2M.Align(vpn)
	group := sim.Size64k.Align(vpn)
	a.blockFaults[block]++
	f := a.blockFaults[block]
	switch {
	case f > adaptDemote4k:
		return sim.Size4k
	case f > adaptDemote64k:
		if a.resInGroup[group] == 0 {
			return sim.Size64k
		}
		return sim.Size4k
	default:
		if a.resInBlock[block] == 0 && a.recentEvictions == 0 {
			return sim.Size2M
		}
		if a.resInGroup[group] == 0 {
			return sim.Size64k
		}
		return sim.Size4k
	}
}

// mapped records a new mapping's residency.
func (a *sizeAdapter) mapped(base sim.PageID, size sim.PageSize) {
	block := sim.Size2M.Align(base)
	a.resInBlock[block]++
	switch size {
	case sim.Size2M:
		// A 2MB mapping occupies all 32 groups of its block.
		for g := sim.PageID(0); g < sim.Span2M; g += sim.Span64k {
			a.resInGroup[base+g]++
		}
	default:
		a.resInGroup[sim.Size64k.Align(base)]++
	}
}

// unmapped reverses mapped.
func (a *sizeAdapter) unmapped(base sim.PageID, size sim.PageSize) {
	a.recentEvictions++
	block := sim.Size2M.Align(base)
	a.resInBlock[block]--
	switch size {
	case sim.Size2M:
		for g := sim.PageID(0); g < sim.Span2M; g += sim.Span64k {
			a.resInGroup[base+g]--
		}
	default:
		a.resInGroup[sim.Size64k.Align(base)]--
	}
}

// tick decays the fault counters so blocks can be re-promoted.
func (a *sizeAdapter) tick(now sim.Cycles) {
	if now < a.nextDecay {
		return
	}
	a.nextDecay = now + adaptDecayPeriod
	for b, f := range a.blockFaults {
		if f <= 1 {
			delete(a.blockFaults, b)
		} else {
			a.blockFaults[b] = f / 2
		}
	}
	a.recentEvictions /= 2
}
