package vm

import (
	"cmcp/internal/dense"
	"cmcp/internal/sim"
)

// This file implements the paper's §5.7/§7 future work: "the operating
// system could monitor page fault frequency and adjust page sizes
// dynamically so that it always provides the highest performance. At
// the same time, different page sizes could be used for different
// parts of the address space."
//
// The sizeAdapter tracks fault frequency per 2 MB block of the
// computation area (with periodic decay) and picks each new mapping's
// granularity at fault time: rarely-faulting blocks get large mappings
// (fewer TLB misses), frequently-faulting blocks get small ones (less
// data movement and narrower shootdowns per eviction). Residency
// counters per 64 kB group and 2 MB block keep mixed sizes conflict
// free: a large mapping is only chosen when nothing smaller is live
// underneath it, exactly the constraint the Phi's page tables impose.

// Adaptive thresholds: with fewer than demote64k faults in the current
// window a block is considered quiet (2 MB), below demote4k it is warm
// (64 kB), above that it is hot-churning (4 kB).
const (
	adaptDemote64k = 8
	adaptDemote4k  = 48
)

// adaptDecayPeriod halves all block fault counters (in simulated
// cycles), forgetting old behaviour so blocks can be re-promoted.
const adaptDecayPeriod sim.Cycles = 1_000_000

// blockShift/groupShift convert a PageID to its 2 MB block index and
// 64 kB group index (log2 of sim.Span2M and sim.Span64k).
const (
	blockShift = 9
	groupShift = 4
)

// sizeAdapter holds the per-block statistics and residency counters.
// All three tables are flat slices indexed by block or group number; an
// out-of-range or zero entry means "no faults seen" / "nothing
// resident", so absent and zero coincide and no map is needed.
type sizeAdapter struct {
	sc          *dense.Scratch
	blockFaults []int32 // per 2MB block: faults this window
	resInBlock  []int32 // live mappings per 2MB block
	resInGroup  []int32 // live mappings per 64kB group
	// recentEvictions gates 2 MB mappings: under eviction pressure a
	// huge mapping would have to carve a 512-frame aligned hole out of
	// small resident mappings — a compaction storm. Real kernels
	// disable transparent huge pages under pressure for the same
	// reason.
	recentEvictions uint32
	nextDecay       sim.Cycles
}

func newSizeAdapter(pages int, sc *dense.Scratch) *sizeAdapter {
	return &sizeAdapter{
		sc:          sc,
		blockFaults: sc.I32((pages + sim.Span2M - 1) >> blockShift),
		resInBlock:  sc.I32((pages + sim.Span2M - 1) >> blockShift),
		resInGroup:  sc.I32((pages + sim.Span64k - 1) >> groupShift),
	}
}

// growI32 returns a slice from sc with the first n slots valid and the
// old contents copied in.
func growI32(sc *dense.Scratch, s []int32, n int) []int32 {
	c := 8
	for c < n {
		c <<= 1
	}
	ns := sc.I32(c)
	copy(ns, s)
	return ns
}

func (a *sizeAdapter) blockAt(i int) *int32 {
	if i >= len(a.blockFaults) {
		a.blockFaults = growI32(a.sc, a.blockFaults, i+1)
	}
	return &a.blockFaults[i]
}

func (a *sizeAdapter) resBlockAt(i int) *int32 {
	if i >= len(a.resInBlock) {
		a.resInBlock = growI32(a.sc, a.resInBlock, i+1)
	}
	return &a.resInBlock[i]
}

func (a *sizeAdapter) resGroupAt(i int) *int32 {
	if i >= len(a.resInGroup) {
		a.resInGroup = growI32(a.sc, a.resInGroup, i+1)
	}
	return &a.resInGroup[i]
}

// choose picks the mapping size for a fault at vpn.
func (a *sizeAdapter) choose(vpn sim.PageID) sim.PageSize {
	block := int(vpn >> blockShift)
	group := int(vpn >> groupShift)
	bf := a.blockAt(block)
	*bf++
	f := *bf
	switch {
	case f > adaptDemote4k:
		return sim.Size4k
	case f > adaptDemote64k:
		if *a.resGroupAt(group) == 0 {
			return sim.Size64k
		}
		return sim.Size4k
	default:
		if *a.resBlockAt(block) == 0 && a.recentEvictions == 0 {
			return sim.Size2M
		}
		if *a.resGroupAt(group) == 0 {
			return sim.Size64k
		}
		return sim.Size4k
	}
}

// mapped records a new mapping's residency.
func (a *sizeAdapter) mapped(base sim.PageID, size sim.PageSize) {
	*a.resBlockAt(int(base >> blockShift))++
	switch size {
	case sim.Size2M:
		// A 2MB mapping occupies all 32 groups of its block.
		for g := sim.PageID(0); g < sim.Span2M; g += sim.Span64k {
			*a.resGroupAt(int((base + g) >> groupShift))++
		}
	default:
		*a.resGroupAt(int(base >> groupShift))++
	}
}

// unmapped reverses mapped.
func (a *sizeAdapter) unmapped(base sim.PageID, size sim.PageSize) {
	a.recentEvictions++
	*a.resBlockAt(int(base >> blockShift))--
	switch size {
	case sim.Size2M:
		for g := sim.PageID(0); g < sim.Span2M; g += sim.Span64k {
			*a.resGroupAt(int((base + g) >> groupShift))--
		}
	default:
		*a.resGroupAt(int(base >> groupShift))--
	}
}

// tick decays the fault counters so blocks can be re-promoted. Halving
// a zero entry keeps it zero, so the flat sweep is equivalent to the
// old map's delete-or-halve.
func (a *sizeAdapter) tick(now sim.Cycles) {
	if now < a.nextDecay {
		return
	}
	a.nextDecay = now + adaptDecayPeriod
	for i, f := range a.blockFaults {
		if f <= 1 {
			a.blockFaults[i] = 0
		} else {
			a.blockFaults[i] = f / 2
		}
	}
	a.recentEvictions /= 2
}
