package vm

import (
	"testing"

	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

func newAdaptiveMgr(t *testing.T, cores, frames int) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Cores:    cores,
		Frames:   frames,
		PageSize: sim.Size4k,
		Tables:   PSPTKind,
		Adaptive: true,
		Verify:   true,
	}, fifoFactory)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAdaptiveColdBlockGets2M(t *testing.T) {
	m := newAdaptiveMgr(t, 1, 2048)
	m.Access(0, 100, false, 0)
	// The first fault in a quiet block with free memory maps 2 MB.
	_, size, ok := m.as.Lookup(0, 100)
	if !ok || size != sim.Size2M {
		t.Fatalf("cold fault mapped %v, want 2MB", size)
	}
	// Everything else in the block is now a hit: no further faults.
	m.Access(0, 511, false, 0)
	if got := m.Run().Get(0, stats.PageFaults); got != 1 {
		t.Errorf("faults = %d, want 1", got)
	}
}

func TestAdaptiveLowFreeMemoryAvoids2M(t *testing.T) {
	// Device with 600 frames: the first 2 MB mapping eats 512, leaving
	// 88 — the next fault must not attempt another 2 MB carve.
	m := newAdaptiveMgr(t, 1, 600)
	m.Access(0, 0, false, 0)
	m.Access(0, 600, false, 0) // second block; free = 88 < 512
	_, size, ok := m.as.Lookup(0, 600)
	if !ok {
		t.Fatal("not mapped")
	}
	if size == sim.Size2M {
		t.Error("2MB chosen with insufficient free frames")
	}
	if got := m.Run().Get(0, stats.Evictions); got != 0 {
		t.Errorf("evictions = %d, want 0 (no compaction storm)", got)
	}
}

func TestAdaptiveHotBlockDemotesTo4k(t *testing.T) {
	m := newAdaptiveMgr(t, 1, 64)
	// Hammer faults into block 0 by cycling far more pages than fit,
	// all inside one 2 MB block (64 frames << 512 so 2 MB never fits;
	// the adapter must step down and, as faults accumulate past the
	// 4 kB threshold, map individual pages).
	var now sim.Cycles
	for i := 0; i < 200; i++ {
		now = mustAccess(t, m, 0, sim.PageID((i*17)%512), false, now)
	}
	_, size, ok := m.as.Lookup(0, sim.PageID((199*17)%512))
	if !ok {
		t.Fatal("last page not mapped")
	}
	if size != sim.Size4k {
		t.Errorf("hot churning block mapped %v, want 4kB", size)
	}
}

func TestAdaptiveMixedSizesCoexist(t *testing.T) {
	m := newAdaptiveMgr(t, 2, 2048)
	m.Access(0, 0, false, 0) // block 0: 2MB
	// Make block 1 look hot so it demotes.
	for i := 0; i < 60; i++ {
		*m.adapter.blockAt(512 >> blockShift)++
	}
	m.Access(1, 700, true, 0) // block 1: should be 4k now
	_, s0, _ := m.as.Lookup(0, 0)
	_, s1, ok := m.as.Lookup(1, 700)
	if !ok || s0 != sim.Size2M || s1 != sim.Size4k {
		t.Errorf("sizes = %v, %v; want 2MB and 4kB", s0, s1)
	}
	if m.Resident() != 2 {
		t.Errorf("resident = %d", m.Resident())
	}
}

func TestAdapterResidencyCountersBalance(t *testing.T) {
	a := newSizeAdapter(1024, nil)
	a.mapped(0, sim.Size2M)
	a.mapped(512, sim.Size64k)
	a.mapped(528, sim.Size4k)
	if a.resInBlock[0] != 1 || a.resInBlock[512>>blockShift] != 2 {
		t.Errorf("block counters: %v", a.resInBlock)
	}
	if a.resInGroup[0] != 1 || a.resInGroup[496>>groupShift] != 1 {
		t.Errorf("2M mapping must cover its groups: %v", a.resInGroup[496>>groupShift])
	}
	a.unmapped(0, sim.Size2M)
	a.unmapped(512, sim.Size64k)
	a.unmapped(528, sim.Size4k)
	for b, v := range a.resInBlock {
		if v != 0 {
			t.Errorf("block %d count %d after full unmap", b, v)
		}
	}
	for g, v := range a.resInGroup {
		if v != 0 {
			t.Errorf("group %d count %d after full unmap", g, v)
		}
	}
}

func TestAdapterDecay(t *testing.T) {
	a := newSizeAdapter(1024, nil)
	a.blockFaults[0] = 40
	a.blockFaults[512>>blockShift] = 1
	a.recentEvictions = 8
	a.tick(adaptDecayPeriod)
	if a.blockFaults[0] != 20 {
		t.Errorf("decay: %d", a.blockFaults[0])
	}
	if a.blockFaults[512>>blockShift] != 0 {
		t.Error("single-fault entry must be forgotten")
	}
	if a.recentEvictions != 4 {
		t.Errorf("eviction pressure decay: %d", a.recentEvictions)
	}
	// Before the period: no decay.
	a.tick(adaptDecayPeriod + 1)
	if a.blockFaults[0] != 20 {
		t.Error("premature decay")
	}
}

func TestAdaptiveContentIntegrity(t *testing.T) {
	// Verify mode panics on corruption; thrash mixed sizes with writes.
	m := newAdaptiveMgr(t, 2, 64)
	var now sim.Cycles
	for i := 0; i < 300; i++ {
		core := sim.CoreID(i % 2)
		now = mustAccess(t, m, core, sim.PageID((i*31)%200), i%3 == 0, now)
	}
	if m.Run().Total(stats.WriteBacks) == 0 {
		t.Error("expected write-backs under thrash")
	}
}

func TestPSPTRebuildThroughManager(t *testing.T) {
	m, err := NewManager(Config{
		Cores: 2, Frames: 32, PageSize: sim.Size4k, Tables: PSPTKind,
		PSPTRebuildPeriod: 1000, Verify: true,
	}, fifoFactory)
	if err != nil {
		t.Fatal(err)
	}
	m.Access(0, 5, false, 0)
	m.Access(1, 5, false, 0)
	if m.CoreMapCount(5) != 2 {
		t.Fatal("setup")
	}
	m.Tick(1000) // rebuild fires
	if m.CoreMapCount(5) != 0 {
		t.Errorf("count = %d after rebuild, want 0", m.CoreMapCount(5))
	}
	if m.Resident() != 1 {
		t.Error("page must stay resident across rebuild")
	}
	// Targets took invalidation IPIs.
	if m.TakeDebt(0) == 0 || m.TakeDebt(1) == 0 {
		t.Error("rebuild must interrupt previously-mapping cores")
	}
	// Next access re-resolves as a minor fault (no data movement).
	faults := m.Run().Get(1, stats.PageFaults)
	m.Access(1, 5, false, 2000)
	if m.Run().Get(1, stats.PageFaults) != faults {
		t.Error("post-rebuild access must not major-fault")
	}
	if m.CoreMapCount(5) != 1 {
		t.Errorf("sharing must re-form: count = %d", m.CoreMapCount(5))
	}
	// Rebuild under regular tables is a no-op (no panic).
	reg, err := NewManager(Config{
		Cores: 2, Frames: 32, PageSize: sim.Size4k, Tables: RegularPT,
		PSPTRebuildPeriod: 1000,
	}, fifoFactory)
	if err != nil {
		t.Fatal(err)
	}
	reg.Access(0, 1, false, 0)
	reg.Tick(5000)
}
