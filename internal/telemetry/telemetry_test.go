package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"cmcp/internal/obs"
	"cmcp/internal/stats"
)

// publishSample builds a server with two published runs, one carrying
// histograms.
func publishSample() *Server {
	s := New(nil)
	r1 := stats.NewRun(2)
	r1.Add(0, stats.PageFaults, 10)
	r1.Add(1, stats.PageFaults, 5)
	hs := r1.EnableHists()
	hs.Record(stats.FaultServiceHist, 100)
	hs.Record(stats.FaultServiceHist, 3000)
	hs.Record(stats.FanoutHist, 4)
	s.Publish(r1)

	r2 := stats.NewRun(2)
	r2.Add(0, stats.Touches, 7)
	s.Publish(r2)
	return s
}

func TestPublishAccumulates(t *testing.T) {
	s := publishSample()
	snap := s.Snapshot()
	if snap.Runs != 2 || snap.HistRuns != 1 {
		t.Fatalf("Runs=%d HistRuns=%d, want 2 and 1", snap.Runs, snap.HistRuns)
	}
	if got := snap.Counters[stats.PageFaults]; got != 15 {
		t.Errorf("page_faults = %d, want 15", got)
	}
	if got := snap.Counters[stats.Touches]; got != 7 {
		t.Errorf("touches = %d, want 7", got)
	}
	h := snap.Hists.Get(stats.FaultServiceHist)
	if h.Count != 2 || h.Sum != 3100 {
		t.Errorf("fault_service hist = %+v", *h)
	}
}

// TestPublishedSnapshotImmutable pins the no-perturbation design: a
// snapshot handed out before further publishes must not change under
// them, and Publish must not retain the caller's run.
func TestPublishedSnapshotImmutable(t *testing.T) {
	s := New(nil)
	r := stats.NewRun(1)
	r.Add(0, stats.Touches, 1)
	s.Publish(r)
	before := s.Snapshot()
	r.Add(0, stats.Touches, 100) // caller mutates after publish
	s.Publish(r)
	if got := before.Counters[stats.Touches]; got != 1 {
		t.Fatalf("earlier snapshot changed underneath the reader: touches=%d", got)
	}
	if got := s.Snapshot().Counters[stats.Touches]; got != 1+101 {
		t.Fatalf("accumulator wrong after second publish: touches=%d", got)
	}
}

func TestPublishConcurrent(t *testing.T) {
	s := New(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r := stats.NewRun(1)
				r.Add(0, stats.Touches, 1)
				r.EnableHists().Record(stats.LockWaitHist, uint64(i))
				s.Publish(r)
				_ = s.Snapshot().Runs // concurrent reader
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Runs != 800 || snap.Counters[stats.Touches] != 800 {
		t.Fatalf("lost publishes: %+v", snap.Runs)
	}
	if got := snap.Hists.Get(stats.LockWaitHist).Count; got != 800 {
		t.Fatalf("lost histogram records: %d", got)
	}
}

// TestMetricNamesDriftGuard is the satellite drift guard: the metric
// registry must be exactly the runs family plus one family per
// stats counter, per stats histogram, and per coordinator family, and
// the rendered exposition must contain every registered family and
// nothing else (ValidateExposition rejects unregistered families).
func TestMetricNamesDriftGuard(t *testing.T) {
	names := MetricNames()
	want := 1 + stats.NumCounters + stats.NumHists + len(coordFamilies)
	if len(names) != want {
		t.Fatalf("MetricNames has %d entries, want %d", len(names), want)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate metric family %q", n)
		}
		seen[n] = true
		if !strings.HasPrefix(n, "cmcp_") {
			t.Errorf("family %q missing cmcp_ namespace", n)
		}
	}
	for _, c := range stats.CounterNames() {
		if !seen["cmcp_"+c+"_total"] {
			t.Errorf("counter %q has no metric family", c)
		}
	}
	for _, h := range stats.HistNames() {
		if !seen["cmcp_"+h] {
			t.Errorf("histogram %q has no metric family", h)
		}
	}

	var b strings.Builder
	if err := WriteMetrics(&b, publishSample().Snapshot()); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, n := range names {
		if !strings.Contains(body, "# TYPE "+n+" ") {
			t.Errorf("exposition missing family %q", n)
		}
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("rendered exposition fails its own schema check: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	var b strings.Builder
	if err := WriteMetrics(&b, publishSample().Snapshot()); err != nil {
		t.Fatal(err)
	}
	good := b.String()
	// The sample server recorded fan-out 4, so that histogram's +Inf
	// bucket and count are both 1; forging the count breaks the
	// +Inf==count cross-check.
	forged := strings.Replace(good, "cmcp_shootdown_fanout_cores_count 1", "cmcp_shootdown_fanout_cores_count 2", 1)
	if forged == good {
		t.Fatal("test setup: count line to forge not found")
	}
	cases := map[string]string{
		"unregistered family": good + "cmcp_bogus_total 1\n",
		"rogue type":          good + "# TYPE cmcp_rogue_total counter\n",
		"garbage line":        good + "!!!\n",
		"missing family":      strings.Replace(good, "cmcp_page_faults_total", "cmcp_page_faultz_total", -1),
		"inf/count mismatch":  forged,
	}
	for name, body := range cases {
		if err := ValidateExposition(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Truncation (a partial scrape) must also fail: some family loses
	// its samples.
	if err := ValidateExposition(strings.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated exposition accepted")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	p := obs.NewProgress()
	p.AddTotal(10)
	p.NoteExecuted()
	s := New(p)
	r := stats.NewRun(1)
	r.Add(0, stats.PageFaults, 42)
	s.Publish(r)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("metrics content type %q", ctype)
	}
	if err := ValidateExposition(strings.NewReader(metrics)); err != nil {
		t.Errorf("served /metrics fails schema check: %v", err)
	}
	if !strings.Contains(metrics, "cmcp_page_faults_total 42") {
		t.Error("published counter missing from /metrics")
	}

	progressBody, ctype := get("/progress")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("progress content type %q", ctype)
	}
	var pj map[string]any
	if err := json.Unmarshal([]byte(progressBody), &pj); err != nil {
		t.Fatalf("progress not JSON: %v", err)
	}
	if pj["total"].(float64) != 10 || pj["published"].(float64) != 1 {
		t.Errorf("progress = %v", pj)
	}

	index, ctype := get("/")
	if !strings.Contains(ctype, "text/html") || !strings.Contains(index, "/metrics") {
		t.Errorf("index page wrong: content type %q", ctype)
	}

	pprofIdx, _ := get("/debug/pprof/")
	if !strings.Contains(pprofIdx, "profile") {
		t.Error("pprof index not served")
	}

	resp, err := http.Get(ts.URL + "/no-such-page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: %d", resp.StatusCode)
	}
}

// TestCoordMetricsFromSource pins the coordinator families: absent a
// source they expose as zeros (dashboards need no conditional scrape
// config), and an attached source is polled at scrape time, not
// snapshotted at Publish time.
func TestCoordMetricsFromSource(t *testing.T) {
	s := New(nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := get()
	if !strings.Contains(body, "cmcp_coord_keys_pending 0") {
		t.Error("coord gauges not exposed as zeros without a source")
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Errorf("sourceless exposition fails schema check: %v", err)
	}

	var cs CoordStats
	s.SetCoordSource(func() CoordStats { return cs })
	cs = CoordStats{KeysPending: 3, KeysLeased: 2, LeasesGranted: 7, Retries: 1}
	body = get()
	for _, want := range []string{
		"cmcp_coord_keys_pending 3",
		"cmcp_coord_keys_leased 2",
		"cmcp_coord_leases_granted_total 7",
		"cmcp_coord_retries_total 1",
		"# TYPE cmcp_coord_keys_pending gauge",
		"# TYPE cmcp_coord_leases_granted_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Mutate and re-scrape: the source is live, not cached.
	cs.KeysPending = 1
	if body = get(); !strings.Contains(body, "cmcp_coord_keys_pending 1") {
		t.Error("coord source not polled at scrape time")
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Errorf("coord exposition fails schema check: %v", err)
	}
}

func TestStartAddrClose(t *testing.T) {
	s := New(nil)
	if s.Addr() != "" {
		t.Error("Addr before Start must be empty")
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}

// TestValidateExpositionFile validates an externally scraped /metrics
// body (CI curls a live cmcpsim -serve and passes the capture via
// METRICS_FILE). Skipped when the variable is unset.
func TestValidateExpositionFile(t *testing.T) {
	path := os.Getenv("METRICS_FILE")
	if path == "" {
		t.Skip("METRICS_FILE not set (CI-only schema check)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ValidateExposition(f); err != nil {
		t.Fatalf("scraped exposition invalid: %v", err)
	}
}
