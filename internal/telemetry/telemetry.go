// Package telemetry is the live-observability layer of the simulator:
// an HTTP server that exposes a running sweep's cumulative counters and
// latency histograms in Prometheus text exposition format (/metrics),
// the sweep's progress meter as JSON (/progress), a minimal HTML status
// page (/), and net/http/pprof for profiling the simulator process
// itself.
//
// The server is provably incapable of perturbing simulation results:
// it never touches engine state. Completed runs are *pushed* into it
// (Publish, fed from sweep.Options.OnResult), where they accumulate
// into an immutable Snapshot stored behind an atomic pointer; HTTP
// handlers only Load() that pointer and read the sweep-owned
// obs.Progress meter, which is mutex-guarded and designed for
// concurrent readers. A run executed with the server attached is
// therefore bit-identical to one without — CI asserts exactly that by
// comparing journals.
//
// The exposition is hand-rolled (no client_golang dependency): the
// format is a stable, line-oriented text protocol, and the metric
// registry is derived entirely from stats.CounterNames() and
// stats.HistNames(), so a new counter or histogram appears in /metrics
// automatically and the drift-guard test keeps the three in lock-step.
package telemetry

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cmcp/internal/hist"
	"cmcp/internal/obs"
	"cmcp/internal/stats"
)

// namespace prefixes every exposed metric family.
const namespace = "cmcp"

// runsFamily counts runs published into the server — the one metric
// family not derived from a stats table.
const runsFamily = namespace + "_runs_published_total"

// Snapshot is one immutable, internally consistent reading of
// everything published so far. Handlers hand out fields of a Snapshot
// they atomically loaded; nothing in a Snapshot is ever mutated after
// Publish stores it.
type Snapshot struct {
	// Runs is the number of published (completed) runs.
	Runs int
	// Counters holds the cumulative application-core totals of every
	// stats counter across published runs, in stats.Counter index order.
	Counters [stats.NumCounters]uint64
	// Hists pools the histograms of every published histogram-bearing
	// run (exact bucket merge). Runs without histograms contribute
	// nothing here but still count toward Runs and Counters.
	Hists stats.HistSet
	// HistRuns is the number of published runs that carried histograms.
	HistRuns int
	// Coord is the coordinated-sweep lease-table reading taken when
	// this snapshot was rendered; all zeros when no coordinator is
	// attached (the families are still exposed, so dashboards need no
	// conditional scrape config).
	Coord CoordStats
}

// CoordStats mirrors the sweep coordinator's gauges and counters for
// the cmcp_coord_* metric families. It is a plain value type so the
// telemetry package needs no dependency on the coordinator; cmcpsim
// converts coord.Stats into it.
type CoordStats struct {
	// Gauges over the current batch.
	KeysPending, KeysLeased uint64
	// Cumulative counters.
	KeysDone, KeysPoisoned                     uint64
	LeasesGranted, LeasesExpired, LeasesStolen uint64
	Heartbeats, Retries, DuplicateResults      uint64
}

// coordFamily describes one cmcp_coord_* family: its name suffix,
// exposition TYPE, help text, and how to read its value from a
// CoordStats.
type coordFamily struct {
	suffix string
	typ    string
	help   string
	value  func(CoordStats) uint64
}

// coordFamilies is the cmcp_coord_* registry, in emission order.
var coordFamilies = []coordFamily{
	{"coord_keys_pending", "gauge", "Sweep keys waiting for a lease in the current batch.", func(c CoordStats) uint64 { return c.KeysPending }},
	{"coord_keys_leased", "gauge", "Sweep keys currently leased to workers.", func(c CoordStats) uint64 { return c.KeysLeased }},
	{"coord_keys_done_total", "counter", "Sweep keys completed by workers.", func(c CoordStats) uint64 { return c.KeysDone }},
	{"coord_keys_poisoned_total", "counter", "Sweep keys quarantined after exhausting their retry budget.", func(c CoordStats) uint64 { return c.KeysPoisoned }},
	{"coord_leases_granted_total", "counter", "Leases handed to workers (including stolen backups).", func(c CoordStats) uint64 { return c.LeasesGranted }},
	{"coord_leases_expired_total", "counter", "Leases reclaimed after their worker stopped heartbeating.", func(c CoordStats) uint64 { return c.LeasesExpired }},
	{"coord_leases_stolen_total", "counter", "Speculative backup leases granted on stragglers.", func(c CoordStats) uint64 { return c.LeasesStolen }},
	{"coord_heartbeats_total", "counter", "Heartbeats accepted from workers.", func(c CoordStats) uint64 { return c.Heartbeats }},
	{"coord_retries_total", "counter", "Failed attempts requeued with backoff.", func(c CoordStats) uint64 { return c.Retries }},
	{"coord_results_duplicate_total", "counter", "Duplicate results discarded idempotently (expired leases finishing, stolen-lease losers).", func(c CoordStats) uint64 { return c.DuplicateResults }},
}

// Server accumulates published runs and serves them over HTTP. The
// zero value is not usable; call New.
type Server struct {
	mu   sync.Mutex // serializes Publish (accumulate + swap)
	agg  Snapshot   // the accumulator Publish folds runs into
	snap atomic.Pointer[Snapshot]

	progress *obs.Progress // nil when no sweep progress is wired
	started  time.Time

	coordMu sync.Mutex
	coordFn func() CoordStats // nil when no coordinator is attached

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a server. progress may be nil; when set, /progress and
// the status page report the sweep meter's live snapshot.
func New(progress *obs.Progress) *Server {
	s := &Server{progress: progress, started: time.Now()}
	s.snap.Store(&Snapshot{})
	return s
}

// Publish folds one completed run into the served state. Safe for
// concurrent use (sweep workers call it as runs finish); the run is
// read, never retained, so the caller keeps ownership.
func (s *Server) Publish(run *stats.Run) {
	if run == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.agg.Runs++
	for c := 0; c < stats.NumCounters; c++ {
		s.agg.Counters[c] += run.Total(stats.Counter(c))
	}
	if run.Hists != nil {
		s.agg.Hists.Merge(run.Hists)
		s.agg.HistRuns++
	}
	snap := s.agg // copy: the stored Snapshot is immutable
	s.snap.Store(&snap)
}

// Snapshot returns the current immutable snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// SetCoordSource attaches a live reader for the cmcp_coord_* families
// — typically the coordinator's Stats method, adapted. The source is
// polled at scrape time, never stored into snapshots, so attaching a
// coordinator cannot perturb the published-run state.
func (s *Server) SetCoordSource(fn func() CoordStats) {
	s.coordMu.Lock()
	s.coordFn = fn
	s.coordMu.Unlock()
}

// coordStats reads the attached source (zeros when none).
func (s *Server) coordStats() CoordStats {
	s.coordMu.Lock()
	fn := s.coordFn
	s.coordMu.Unlock()
	if fn == nil {
		return CoordStats{}
	}
	return fn()
}

// Handler returns the server's HTTP mux: /, /metrics, /progress and
// /debug/pprof. Exposed for tests; Start wires it to a listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. ":9090" or "127.0.0.1:0") and serves in
// a background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

// MetricNames returns every metric family the exposition emits, in
// emission order: the runs counter, one counter family per stats
// counter, one histogram family per stats histogram. This is the
// registry the drift-guard test pins against stats.CounterNames() /
// stats.HistNames() and against the rendered /metrics output.
func MetricNames() []string {
	names := make([]string, 0, 1+stats.NumCounters+stats.NumHists+len(coordFamilies))
	names = append(names, runsFamily)
	for _, n := range stats.CounterNames() {
		names = append(names, namespace+"_"+n+"_total")
	}
	for _, n := range stats.HistNames() {
		names = append(names, namespace+"_"+n)
	}
	for _, f := range coordFamilies {
		names = append(names, namespace+"_"+f.suffix)
	}
	return names
}

// WriteMetrics renders snap in Prometheus text exposition format 0.0.4.
func WriteMetrics(w io.Writer, snap *Snapshot) error {
	bw := &errWriter{w: w}
	bw.printf("# HELP %s Completed simulation runs published to the telemetry server.\n", runsFamily)
	bw.printf("# TYPE %s counter\n", runsFamily)
	bw.printf("%s %d\n", runsFamily, snap.Runs)
	for c := 0; c < stats.NumCounters; c++ {
		fam := namespace + "_" + stats.Counter(c).Name() + "_total"
		bw.printf("# HELP %s Cumulative %s across published runs (application-core totals).\n", fam, stats.Counter(c).Name())
		bw.printf("# TYPE %s counter\n", fam)
		bw.printf("%s %d\n", fam, snap.Counters[c])
	}
	for h := 0; h < stats.NumHists; h++ {
		fam := namespace + "_" + stats.HistID(h).Name()
		hg := &snap.Hists[h]
		bw.printf("# HELP %s Pooled %s distribution across published runs (log2 buckets).\n", fam, stats.HistID(h).Name())
		bw.printf("# TYPE %s histogram\n", fam)
		var cum uint64
		for i := 0; i < hist.NumBuckets; i++ {
			cum += hg.Buckets[i]
			bw.printf("%s_bucket{le=\"%d\"} %d\n", fam, hist.UpperBound(i), cum)
		}
		bw.printf("%s_bucket{le=\"+Inf\"} %d\n", fam, hg.Count)
		bw.printf("%s_sum %d\n", fam, hg.Sum)
		bw.printf("%s_count %d\n", fam, hg.Count)
	}
	for _, f := range coordFamilies {
		fam := namespace + "_" + f.suffix
		bw.printf("# HELP %s %s\n", fam, f.help)
		bw.printf("# TYPE %s %s\n", fam, f.typ)
		bw.printf("%s %d\n", fam, f.value(snap.Coord))
	}
	return bw.err
}

// errWriter folds fmt errors so WriteMetrics needs one check.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// The coordinator source is polled at scrape time: gauge families
	// must read current, not as-of-last-Publish.
	snap := *s.snap.Load()
	snap.Coord = s.coordStats()
	WriteMetrics(w, &snap) //nolint:errcheck // client went away
}

// progressJSON is the /progress payload: the sweep meter plus the
// server's own published-run tally.
type progressJSON struct {
	Total      int     `json:"total"`
	Executed   int     `json:"executed"`
	Loaded     int     `json:"loaded"`
	Missing    int     `json:"missing"`
	Retried    int     `json:"retried"`
	Poisoned   int     `json:"poisoned"`
	Done       int     `json:"done"`
	RunsPerSec float64 `json:"runs_per_sec"`
	ETASeconds float64 `json:"eta_seconds"`
	ElapsedSec float64 `json:"elapsed_seconds"`
	Published  int     `json:"published"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	var p progressJSON
	if s.progress != nil {
		ps := s.progress.Snapshot()
		p = progressJSON{
			Total:      ps.Total,
			Executed:   ps.Executed,
			Loaded:     ps.Loaded,
			Missing:    ps.Missing,
			Retried:    ps.Retried,
			Poisoned:   ps.Poisoned,
			Done:       ps.Done(),
			RunsPerSec: ps.RunsPerSec,
			ETASeconds: ps.ETA.Seconds(),
			ElapsedSec: ps.Elapsed.Seconds(),
		}
	}
	p.Published = s.snap.Load().Runs
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p) //nolint:errcheck // client went away
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>cmcpsim telemetry</title></head>
<body>
<h1>cmcpsim telemetry</h1>
<p>up {{.Up}} · {{.Runs}} runs published{{if .Progress}} · {{.Progress}}{{end}}</p>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition (counters + latency histograms)</li>
<li><a href="/progress">/progress</a> — sweep progress JSON</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiling</li>
</ul>
<h2>Histogram summaries (pooled over {{.HistRuns}} runs)</h2>
<table border="1" cellpadding="4">
<tr><th>histogram</th><th>count</th><th>mean</th><th>max</th><th>p50</th><th>p90</th><th>p99</th><th>p999</th></tr>
{{range .Hists}}<tr><td>{{.Name}}</td><td>{{.S.Count}}</td><td>{{printf "%.1f" .S.Mean}}</td><td>{{.S.Max}}</td><td>{{.S.P50}}</td><td>{{.S.P90}}</td><td>{{.S.P99}}</td><td>{{.S.P999}}</td></tr>
{{end}}</table>
</body></html>
`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	snap := s.snap.Load()
	type row struct {
		Name string
		S    hist.Summary
	}
	data := struct {
		Up       time.Duration
		Runs     int
		HistRuns int
		Progress string
		Hists    []row
	}{
		Up:       time.Since(s.started).Round(time.Second),
		Runs:     snap.Runs,
		HistRuns: snap.HistRuns,
	}
	if s.progress != nil {
		data.Progress = s.progress.String()
	}
	for h := 0; h < stats.NumHists; h++ {
		data.Hists = append(data.Hists, row{Name: stats.HistID(h).Name(), S: snap.Hists[h].Summarize()})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	indexTmpl.Execute(w, data) //nolint:errcheck // client went away
}

// histFamilies returns the set of histogram family names.
func histFamilies() map[string]bool {
	m := make(map[string]bool, stats.NumHists)
	for _, n := range stats.HistNames() {
		m[namespace+"_"+n] = true
	}
	return m
}

// gaugeFamilies returns the set of gauge family names (the
// coordinator's current-batch gauges; everything else is a counter or
// histogram).
func gaugeFamilies() map[string]bool {
	m := map[string]bool{}
	for _, f := range coordFamilies {
		if f.typ == "gauge" {
			m[namespace+"_"+f.suffix] = true
		}
	}
	return m
}

// ValidateExposition is the schema check CI runs against a scraped
// /metrics body: every line must parse as a HELP/TYPE comment or a
// sample; every family in MetricNames() must appear with the right
// TYPE; histogram buckets must be cumulative and end in an +Inf bucket
// equal to _count; and no sample may belong to an unregistered family
// (that is the drift guard working in the other direction).
func ValidateExposition(r io.Reader) error {
	body, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	registry := make(map[string]bool, len(MetricNames()))
	for _, n := range MetricNames() {
		registry[n] = true
	}
	hists := histFamilies()
	gauges := gaugeFamilies()

	typed := map[string]string{}   // family -> declared TYPE
	sampled := map[string]bool{}   // family -> saw at least one sample
	lastCum := map[string]uint64{} // histogram family -> last cumulative bucket
	infSeen := map[string]uint64{} // histogram family -> +Inf bucket value
	counts := map[string]uint64{}  // histogram family -> _count value

	for ln, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			fam := fields[2]
			if !registry[fam] {
				return fmt.Errorf("line %d: %s for unregistered family %q", lineNo, fields[1], fam)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				typed[fam] = fields[3]
				want := "counter"
				switch {
				case hists[fam]:
					want = "histogram"
				case gauges[fam]:
					want = "gauge"
				}
				if fields[3] != want {
					return fmt.Errorf("line %d: family %q must be a %s, declared %q", lineNo, fam, want, fields[3])
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := name
		switch {
		case strings.HasSuffix(name, "_bucket"):
			fam = strings.TrimSuffix(name, "_bucket")
			if !hists[fam] {
				return fmt.Errorf("line %d: bucket sample for non-histogram %q", lineNo, fam)
			}
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: bucket without le label", lineNo)
			}
			if value < lastCum[fam] {
				return fmt.Errorf("line %d: %s buckets not cumulative (%d after %d)", lineNo, fam, value, lastCum[fam])
			}
			lastCum[fam] = value
			if le == "+Inf" {
				infSeen[fam] = value
			} else if _, err := parseUint(le); err != nil {
				return fmt.Errorf("line %d: non-integer le %q", lineNo, le)
			}
		case strings.HasSuffix(name, "_sum") && hists[strings.TrimSuffix(name, "_sum")]:
			fam = strings.TrimSuffix(name, "_sum")
		case strings.HasSuffix(name, "_count") && hists[strings.TrimSuffix(name, "_count")]:
			fam = strings.TrimSuffix(name, "_count")
			counts[fam] = value
		default:
			if !registry[fam] {
				return fmt.Errorf("line %d: sample for unregistered family %q (drift between stats tables and exposition?)", lineNo, fam)
			}
		}
		sampled[fam] = true
	}

	for _, fam := range MetricNames() {
		if typed[fam] == "" {
			return fmt.Errorf("family %q missing TYPE declaration", fam)
		}
		if !sampled[fam] {
			return fmt.Errorf("family %q has no samples", fam)
		}
	}
	for fam := range hists {
		inf, ok := infSeen[fam]
		if !ok {
			return fmt.Errorf("histogram %q has no +Inf bucket", fam)
		}
		if inf != counts[fam] {
			return fmt.Errorf("histogram %q: +Inf bucket %d != count %d", fam, inf, counts[fam])
		}
	}
	return nil
}

// parseSample splits one exposition sample line into name, labels and
// an unsigned integer value (all cmcp metrics are integral).
func parseSample(line string) (name string, labels map[string]string, value uint64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = map[string]string{}
		for _, pair := range strings.Split(rest[i+1:end], ",") {
			if pair == "" {
				continue
			}
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			labels[kv[0]] = strings.Trim(kv[1], `"`)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := parseUint(strings.TrimSpace(rest))
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, v, nil
}

func parseUint(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	var v uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-digit %q in %q", c, s)
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, fmt.Errorf("overflow in %q", s)
		}
		v = v*10 + d
	}
	return v, nil
}
