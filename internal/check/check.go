// Package check is the simulator's cross-module invariant auditor.
//
// The engine's central promise — same seed ⇒ bit-identical results —
// only holds while five independently maintained views of "what is
// resident" agree: the replacement policy's lists, the address-space
// page tables, the device frame array, the per-core TLBs, and (when
// enabled) the adaptive-size residency counters. Each module keeps its
// own bookkeeping for speed; nothing at runtime forces them to match.
// A single missed decrement produces plausible-looking but wrong
// results that the golden tests may or may not pin.
//
// An Auditor cross-checks all of these against each other. Attach one
// to a run via machine.Config.Audit: the engine calls Note once per
// scheduled event and the Auditor runs a full audit every Every events
// plus once at the end of the run; any violation fails the run. Audits
// are read-only and do not perturb simulated state, so an audited run
// produces bit-identical results to an unaudited one.
package check

import (
	"errors"
	"fmt"
	"strings"

	"cmcp/internal/mem"
	"cmcp/internal/pspt"
	"cmcp/internal/sim"
	"cmcp/internal/vm"
)

// DefaultEvery is the audit period in engine events when Config.Every
// is zero. A full audit is O(pages + frames + cores·TLB), so a few
// thousand events between audits keeps audited test runs fast while
// still catching drift long before a run completes.
const DefaultEvery = 4096

// Config parameterizes an Auditor.
type Config struct {
	// Every is the audit period in engine events (0 = DefaultEvery).
	Every int
	// Limit caps the violations kept verbatim; further ones are only
	// counted (0 = 16). One genuine bug typically violates several
	// invariants at every subsequent audit, so a cap keeps Err short.
	Limit int
}

// Violation is one detected invariant breach.
type Violation struct {
	// Module names the bookkeeping layer at fault: "residency", "tlb",
	// "pspt", "policy", "adaptive", "tenant" or "numa".
	Module string
	// Detail says what disagreed with what.
	Detail string
}

func (v Violation) String() string { return v.Module + ": " + v.Detail }

// selfChecker is implemented by structures that can verify their own
// internals (core.CMCP's heap, via type assertion on the policy).
type selfChecker interface {
	CheckInvariants() error
}

// Auditor runs periodic cross-module audits. Not safe for concurrent
// use; attach one Auditor to at most one run at a time.
type Auditor struct {
	every      int
	limit      int
	events     int
	audits     int
	violations []Violation
	dropped    int // violations beyond limit, counted only
}

// New creates an Auditor.
func New(cfg Config) *Auditor {
	if cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	if cfg.Limit <= 0 {
		cfg.Limit = 16
	}
	return &Auditor{every: cfg.Every, limit: cfg.Limit}
}

// Note counts one engine event and audits m when the period elapses.
func (a *Auditor) Note(m *vm.Manager) {
	a.events++
	if a.events >= a.every {
		a.events = 0
		a.Audit(m)
	}
}

// NoteN counts n engine events at once — the parallel engine retires
// provably independent touches in batches — and audits m when the
// period elapses. At most one audit runs per call: the batch commits
// atomically between operations, so no intermediate state exists for
// extra audit points to observe. Audits stay read-only here; the
// parallel engine falls back to serial for the one configuration where
// audit timing can alter simulated state (MapSkew injection under
// PSPT, whose repairs run from the audit itself).
func (a *Auditor) NoteN(m *vm.Manager, n int) {
	a.events += n
	if a.events >= a.every {
		a.events %= a.every
		a.Audit(m)
	}
}

// Audits returns the number of full audits performed.
func (a *Auditor) Audits() int { return a.audits }

// Violations returns the recorded violations (up to Config.Limit).
func (a *Auditor) Violations() []Violation { return a.violations }

// Err returns nil when every audit passed, otherwise an error
// summarizing the recorded violations.
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s) in %d audit(s)", len(a.violations)+a.dropped, a.audits)
	for _, v := range a.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if a.dropped > 0 {
		fmt.Fprintf(&b, "\n  ... and %d more", a.dropped)
	}
	return errors.New(b.String())
}

func (a *Auditor) report(module, format string, args ...any) {
	if len(a.violations) >= a.limit {
		a.dropped++
		return
	}
	a.violations = append(a.violations, Violation{Module: module, Detail: fmt.Sprintf(format, args...)})
}

// Audit cross-checks every bookkeeping layer of m once. The manager
// must be between operations (the engine calls it from the event loop,
// never mid-fault). Without fault injection it is read-only; under
// fault injection the PSPT pass additionally acts as the recovery
// trigger for injected bookkeeping skew (vm.Manager.DegradePage), so an
// audited faulty run repairs what it finds instead of reporting it.
func (a *Auditor) Audit(m *vm.Manager) {
	a.audits++
	a.auditResidency(m)
	a.auditTLBs(m)
	a.auditPSPT(m)
	a.auditPolicy(m)
	a.auditAdaptive(m)
	a.auditTenants(m)
	a.auditReplicas(m)
}

// auditResidency checks the first-order agreement: the mappings the
// address space reports, the frames the device has handed out, and the
// population the policy believes it manages must all describe the same
// resident set.
func (a *Auditor) auditResidency(m *vm.Manager) {
	dev := m.Device()
	mappings := 0
	var framesMapped int64
	m.ForEachMapping(func(base sim.PageID, size sim.PageSize, pfn int64) {
		mappings++
		span := int64(size.Span())
		framesMapped += span
		if !size.Aligned(base) {
			a.report("residency", "mapping base %d not %v-aligned", base, size)
			return
		}
		if pfn < 0 || pfn+span > int64(dev.NumFrames()) {
			a.report("residency", "mapping %d: pfn range [%d,%d) outside device of %d frames",
				base, pfn, pfn+span, dev.NumFrames())
			return
		}
		for i := int64(0); i < span; i++ {
			if owner := dev.Owner(sim.FrameID(pfn + i)); owner != base+sim.PageID(i) {
				a.report("residency", "frame %d owned by page %d, but mapping %d/%v expects page %d",
					pfn+i, owner, base, size, base+sim.PageID(i))
			}
		}
	})
	if inUse := int64(dev.NumFrames() - dev.FreeFrames() - dev.Quarantined()); inUse != framesMapped {
		a.report("residency", "device has %d frames in use, mappings cover %d", inUse, framesMapped)
	}
	if got := m.Resident(); got != mappings {
		a.report("residency", "address space reports %d resident, iteration found %d", got, mappings)
	}
	if got := m.PolicyResident(); got != mappings {
		a.report("residency", "policy %s tracks %d resident, address space holds %d",
			m.Policy().Name(), got, mappings)
	}
}

// auditTLBs checks that every cached translation still corresponds to a
// live translation of the same size in the owning core's table view —
// i.e. no shootdown was missed — and that each TLB's internal FIFO-set
// bookkeeping is consistent.
func (a *Auditor) auditTLBs(m *vm.Manager) {
	for c := 0; c < m.Cores(); c++ {
		core := sim.CoreID(c)
		t := m.TLBFor(core)
		if err := t.CheckInvariants(); err != nil {
			a.report("tlb", "core %d: %v", c, err)
		}
		t.ForEachEntry(func(base sim.PageID, size sim.PageSize, level int) {
			_, sz, ok := m.Lookup(core, base)
			if !ok {
				a.report("tlb", "core %d caches %v translation for page %d (L%d) with no live mapping",
					c, size, base, level)
				return
			}
			if sz != size {
				a.report("tlb", "core %d caches %v translation for page %d (L%d), table says %v",
					c, size, base, level, sz)
			}
		})
	}
}

// auditPSPT checks PSPT's derived metadata — the per-mapping core set
// and its count, which CMCP's priorities are computed from — against
// the actual per-core PTE population: CoreMapCount must equal the
// number of cores whose table actually resolves the base, and each
// per-core PTE must agree on size and frame.
func (a *Auditor) auditPSPT(m *vm.Manager) {
	p, ok := m.PSPT()
	if !ok {
		return
	}
	mappings := 0
	p.ForEachMapping(func(mp *pspt.Mapping) {
		mappings++
		populated := 0
		for c := 0; c < p.Cores(); c++ {
			core := sim.CoreID(c)
			pte, size, ok := p.Lookup(core, mp.Base)
			if ok {
				populated++
			}
			if ok != mp.Cores.Has(core) {
				// A phantom core bit (set without a PTE behind it) is the
				// signature of injected PSPT skew. Hand it to the manager
				// for recovery — resync the set, degrade the page to
				// regular-table semantics — and only report when the
				// manager declines (no fault injection: a genuine bug).
				if !ok && m.DegradePage(mp.Base) {
					continue
				}
				a.report("pspt", "page %d: core set says core %d mapped=%v, table lookup says %v",
					mp.Base, c, mp.Cores.Has(core), ok)
				continue
			}
			if !ok {
				continue
			}
			if size != mp.Size {
				a.report("pspt", "page %d: core %d PTE size %v, mapping size %v", mp.Base, c, size, mp.Size)
			}
			if got := pte.PFN(); got != mp.PFN {
				a.report("pspt", "page %d: core %d PTE pfn %d, mapping pfn %d", mp.Base, c, got, mp.PFN)
			}
		}
		if count := p.CoreMapCount(mp.Base); count != populated {
			a.report("pspt", "page %d: CoreMapCount=%d, %d per-core tables resolve it",
				mp.Base, count, populated)
		}
	})
	if got := p.ResidentMappings(); got != mappings {
		a.report("pspt", "ResidentMappings=%d, iteration found %d", got, mappings)
	}
}

// auditPolicy runs the policy's own structural self-check when it has
// one (CMCP verifies its heap and position index). Multi-tenant runs
// self-check every tenant's instance.
func (a *Auditor) auditPolicy(m *vm.Manager) {
	if n := m.TenantCount(); n > 0 {
		for t := 0; t < n; t++ {
			if sc, ok := m.TenantPolicy(t).(selfChecker); ok {
				if err := sc.CheckInvariants(); err != nil {
					a.report("policy", "tenant %d: %v", t, err)
				}
			}
		}
		return
	}
	if sc, ok := m.Policy().(selfChecker); ok {
		if err := sc.CheckInvariants(); err != nil {
			a.report("policy", "%v", err)
		}
	}
}

// auditAdaptive recomputes the size adapter's residency counters from
// the actual mappings and compares.
func (a *Auditor) auditAdaptive(m *vm.Manager) {
	blocks, groups, ok := m.AdaptiveResidency()
	if !ok {
		return
	}
	expB := make([]int32, len(blocks))
	expG := make([]int32, len(groups))
	bump := func(s []int32, i int64) []int32 {
		for int64(len(s)) <= i {
			s = append(s, 0)
		}
		s[i]++
		return s
	}
	m.ForEachMapping(func(base sim.PageID, size sim.PageSize, _ int64) {
		expB = bump(expB, int64(base)>>9)
		if size == sim.Size2M {
			for g := sim.PageID(0); g < sim.Size2M.Span(); g += sim.Size64k.Span() {
				expG = bump(expG, int64(base+g)>>4)
			}
		} else {
			expG = bump(expG, int64(base)>>4)
		}
	})
	compare := func(name string, got, want []int32) {
		n := len(got)
		if len(want) > n {
			n = len(want)
		}
		at := func(s []int32, i int) int32 {
			if i < len(s) {
				return s[i]
			}
			return 0
		}
		for i := 0; i < n; i++ {
			if at(got, i) != at(want, i) {
				a.report("adaptive", "%s[%d] = %d, recomputed %d", name, i, at(got, i), at(want, i))
			}
		}
	}
	compare("resInBlock", blocks, expB)
	compare("resInGroup", groups, expG)
}

// auditReplicas checks the NUMA page-table replica bookkeeping on
// multi-socket PSPT runs: a mapping's replica set must cover the
// socket of every core holding a PTE for it (a walk through a core's
// private table is by construction socket-local, so a missing replica
// bit would mean the model charged a crossing that cannot happen), its
// home socket must be a valid domain and hold the set non-empty when
// any core maps the region. The replica set may exceed the minimal
// cover — consults materialize replicas ahead of PTE copies — which
// only over-approximates locality, never understates a crossing.
func (a *Auditor) auditReplicas(m *vm.Manager) {
	topo := m.Topology()
	if !topo.Multi() {
		return
	}
	p, ok := m.PSPT()
	if !ok {
		return
	}
	p.ForEachMapping(func(mp *pspt.Mapping) {
		if h := int(mp.Home); h < 0 || h >= topo.Sockets {
			a.report("numa", "page %d: home socket %d outside topology %s", mp.Base, h, topo)
		}
		var cores []sim.CoreID
		cores = mp.Cores.Cores(cores)
		for _, c := range cores {
			if s := topo.SocketOf(c); !mp.Replicas.Has(s) {
				a.report("numa", "page %d: core %d (socket %d) holds a PTE but replica set %b misses its socket",
					mp.Base, c, s, mp.Replicas)
			}
		}
		if len(cores) > 0 && mp.Replicas.Count() == 0 {
			a.report("numa", "page %d: %d cores map it but the replica set is empty", mp.Base, len(cores))
		}
	})
}

// auditTenants cross-checks the multi-tenant frame-ownership table
// against the device and the per-tenant policies: every in-use frame
// must be owned by exactly the tenant whose page occupies it (no frame
// owned by two tenants — ownership is single-valued and must match the
// device), free and quarantined frames must be unowned, the per-tenant
// frame totals must sum to the device's frames in use, and each
// tenant's policy residency must equal its actual mapping count.
func (a *Auditor) auditTenants(m *vm.Manager) {
	n := m.TenantCount()
	if n == 0 {
		return
	}
	cm := m.CoreMap()
	dev := m.Device()
	used := make([]int, n)
	for f := 0; f < dev.NumFrames(); f++ {
		frame := sim.FrameID(f)
		owner := cm.Owner(frame)
		page := dev.Owner(frame)
		if page < 0 {
			if owner != mem.NoTenant {
				a.report("tenant", "frame %d is free or quarantined but the coremap says tenant %d owns it",
					f, owner)
			}
			continue
		}
		want := m.TenantOf(page)
		if owner == mem.NoTenant {
			a.report("tenant", "frame %d holds tenant %d's page %d but the coremap says it is unowned",
				f, want, page)
			continue
		}
		if owner != want {
			a.report("tenant", "frame %d holds tenant %d's page %d but the coremap says tenant %d owns it",
				f, want, page, owner)
		}
		if owner >= 0 && owner < n {
			used[owner]++
		}
	}
	sum := 0
	for t := 0; t < n; t++ {
		if got := cm.Used(t); got != used[t] {
			a.report("tenant", "tenant %d: coremap counts %d frames, device scan found %d", t, got, used[t])
		}
		sum += cm.Used(t)
	}
	if inUse := dev.NumFrames() - dev.FreeFrames() - dev.Quarantined(); sum != inUse {
		a.report("tenant", "per-tenant frame counts sum to %d, device has %d frames in use", sum, inUse)
	}
	perTenant := make([]int, n)
	m.ForEachMapping(func(base sim.PageID, size sim.PageSize, pfn int64) {
		if t := m.TenantOf(base); t >= 0 && t < n {
			perTenant[t]++
		}
	})
	for t := 0; t < n; t++ {
		if got := m.TenantPolicy(t).Resident(); got != perTenant[t] {
			a.report("tenant", "tenant %d: policy tracks %d resident, address space holds %d",
				t, got, perTenant[t])
		}
	}
}
