package check_test

import (
	"strings"
	"testing"

	"cmcp/internal/check"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/vm"
)

// These tests prove the auditor actually catches bookkeeping bugs by
// deliberately injecting them into an otherwise healthy VM subsystem:
// a shootdown that never reached a TLB, a policy that miscounts its
// population, and an adaptive residency counter that skipped a
// decrement. A clean manager must audit clean.

func fifoFactory(policy.Host) policy.Policy { return policy.NewFIFO() }

func newManager(t *testing.T, cfg vm.Config, factory vm.PolicyFactory) *vm.Manager {
	t.Helper()
	if factory == nil {
		factory = fifoFactory
	}
	m, err := vm.NewManager(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// touch faults a spread of pages in so every bookkeeping layer has
// non-trivial state to audit.
func touch(t *testing.T, m *vm.Manager, cores, pages int) {
	t.Helper()
	var now sim.Cycles
	for i := 0; i < pages; i++ {
		done, err := m.Access(sim.CoreID(i%cores), sim.PageID(i*3), i%2 == 0, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
}

func TestAuditorCleanManagerPasses(t *testing.T) {
	for _, kind := range []vm.TableKind{vm.PSPTKind, vm.RegularPT} {
		t.Run(kind.String(), func(t *testing.T) {
			m := newManager(t, vm.Config{
				Cores: 4, Frames: 64, PageSize: sim.Size4k, Tables: kind, Pages: 256,
			}, nil)
			touch(t, m, 4, 40)
			aud := check.New(check.Config{})
			aud.Audit(m)
			if err := aud.Err(); err != nil {
				t.Fatalf("clean manager failed audit: %v", err)
			}
			if aud.Audits() != 1 {
				t.Errorf("audits = %d, want 1", aud.Audits())
			}
		})
	}
}

func TestAuditorCatchesStaleTLBEntry(t *testing.T) {
	m := newManager(t, vm.Config{
		Cores: 2, Frames: 64, PageSize: sim.Size4k, Tables: vm.PSPTKind, Pages: 256,
	}, nil)
	touch(t, m, 2, 20)
	// Inject the classic missed-shootdown bug: a cached translation for
	// a page that has no live mapping in the core's table view.
	m.TLBFor(0).Insert(199, sim.Size4k)
	aud := check.New(check.Config{})
	aud.Audit(m)
	assertViolation(t, aud, "tlb")
}

// miscountingPolicy reports one more resident mapping than it tracks —
// the signature of a missed Remove or double PTESetup in a policy.
type miscountingPolicy struct{ policy.Policy }

func (p miscountingPolicy) Resident() int { return p.Policy.Resident() + 1 }

func TestAuditorCatchesMiscountingPolicy(t *testing.T) {
	m := newManager(t, vm.Config{
		Cores: 1, Frames: 64, PageSize: sim.Size4k, Tables: vm.PSPTKind, Pages: 256,
	}, func(policy.Host) policy.Policy {
		return miscountingPolicy{policy.NewFIFO()}
	})
	touch(t, m, 1, 10)
	aud := check.New(check.Config{})
	aud.Audit(m)
	assertViolation(t, aud, "residency")
}

func TestAuditorCatchesAdaptiveCounterDrift(t *testing.T) {
	m := newManager(t, vm.Config{
		Cores: 2, Frames: 1024, PageSize: sim.Size4k, Tables: vm.PSPTKind,
		Adaptive: true, Pages: 2048,
	}, nil)
	touch(t, m, 2, 30)
	_, groups, ok := m.AdaptiveResidency()
	if !ok || len(groups) == 0 {
		t.Fatal("adaptive counters absent")
	}
	// Inject a skipped resInGroup decrement: the counter now claims one
	// more resident mapping in group 0 than the page tables hold.
	groups[0]++
	aud := check.New(check.Config{})
	aud.Audit(m)
	assertViolation(t, aud, "adaptive")
}

func TestAuditorViolationLimitAndSummary(t *testing.T) {
	m := newManager(t, vm.Config{
		Cores: 1, Frames: 64, PageSize: sim.Size4k, Tables: vm.PSPTKind, Pages: 1024,
	}, nil)
	touch(t, m, 1, 10)
	for i := 0; i < 5; i++ {
		m.TLBFor(0).Insert(sim.PageID(500+i), sim.Size4k)
	}
	aud := check.New(check.Config{Limit: 2})
	aud.Audit(m)
	if got := len(aud.Violations()); got != 2 {
		t.Errorf("recorded %d violations, limit is 2", got)
	}
	err := aud.Err()
	if err == nil {
		t.Fatal("Err() = nil with violations recorded")
	}
	if !strings.Contains(err.Error(), "more") {
		t.Errorf("summary does not mention dropped violations: %v", err)
	}
}

func TestAuditorNotePeriod(t *testing.T) {
	m := newManager(t, vm.Config{
		Cores: 1, Frames: 64, PageSize: sim.Size4k, Tables: vm.PSPTKind, Pages: 64,
	}, nil)
	touch(t, m, 1, 5)
	aud := check.New(check.Config{Every: 4})
	for i := 0; i < 7; i++ {
		aud.Note(m)
	}
	if aud.Audits() != 1 {
		t.Errorf("audits = %d after 7 notes with period 4, want 1", aud.Audits())
	}
	aud.Note(m)
	if aud.Audits() != 2 {
		t.Errorf("audits = %d after 8 notes, want 2", aud.Audits())
	}
	if err := aud.Err(); err != nil {
		t.Errorf("clean periodic audits reported: %v", err)
	}
}

func assertViolation(t *testing.T, aud *check.Auditor, module string) {
	t.Helper()
	if aud.Err() == nil {
		t.Fatalf("auditor missed the injected %s bug", module)
	}
	for _, v := range aud.Violations() {
		if v.Module == module {
			return
		}
	}
	t.Fatalf("no %q violation among: %v", module, aud.Violations())
}
