package mem

import (
	"fmt"

	"cmcp/internal/sim"
)

// NoTenant marks a frame no tenant currently owns.
const NoTenant = -1

// CoreMap is the frame-ownership table of a multi-tenant machine: for
// every physical frame, which tenant's page occupies it, plus the
// per-tenant frame totals the eviction arbiter and the auditor consume.
// It mirrors the coremap of teaching kernels (one entry per frame,
// owner recorded at allocation, cleared at free) but tracks the owning
// *tenant* rather than the owning address space struct — the simulator
// keys address spaces by global page ID, so the page→tenant map is
// arithmetic and only the frame→tenant direction needs state.
//
// The table is deliberately redundant bookkeeping: internal/check
// cross-checks it against the Device's own owner-page records, so
// drift between the two layers is caught instead of compounding.
type CoreMap struct {
	owner []int32 // frame → owning tenant, NoTenant when free
	used  []int   // tenant → frames currently owned
}

// NewCoreMap returns an all-free table for frames frames and tenants
// tenants.
func NewCoreMap(frames, tenants int) *CoreMap {
	owner := make([]int32, frames)
	for i := range owner {
		owner[i] = NoTenant
	}
	return &CoreMap{owner: owner, used: make([]int, tenants)}
}

// Tenants returns the tenant count the table was sized for.
func (c *CoreMap) Tenants() int { return len(c.used) }

// Frames returns the frame count the table was sized for.
func (c *CoreMap) Frames() int { return len(c.owner) }

// Owner returns the tenant owning frame f, or NoTenant.
func (c *CoreMap) Owner(f sim.FrameID) int { return int(c.owner[f]) }

// Used returns the number of frames tenant t currently owns.
func (c *CoreMap) Used(t int) int { return c.used[t] }

// UsedTotal returns the number of owned frames across all tenants.
func (c *CoreMap) UsedTotal() int {
	var sum int
	for _, u := range c.used {
		sum += u
	}
	return sum
}

// Claim records tenant t taking ownership of the span frames starting
// at f. Claiming a frame that already has an owner is the "one frame,
// two tenants" invariant breach and panics like Device.Free does on a
// double free — by the time ownership is tracked wrongly, simulation
// results are already garbage.
func (c *CoreMap) Claim(f sim.FrameID, span, t int) {
	for i := 0; i < span; i++ {
		if cur := c.owner[f+sim.FrameID(i)]; cur != NoTenant {
			panic(fmt.Sprintf("mem: frame %d claimed by tenant %d while owned by tenant %d",
				f+sim.FrameID(i), t, cur))
		}
		c.owner[f+sim.FrameID(i)] = int32(t)
	}
	c.used[t] += span
}

// Release clears ownership of the span frames starting at f and
// returns the tenant that owned them. Releasing an unowned frame
// panics for the same reason Claim does.
func (c *CoreMap) Release(f sim.FrameID, span int) int {
	t := c.owner[f]
	if t == NoTenant {
		panic(fmt.Sprintf("mem: release of unowned frame %d", f))
	}
	for i := 0; i < span; i++ {
		if cur := c.owner[f+sim.FrameID(i)]; cur != t {
			panic(fmt.Sprintf("mem: releasing frames %d+%d spanning tenants %d and %d",
				f, span, t, cur))
		}
		c.owner[f+sim.FrameID(i)] = NoTenant
	}
	c.used[t] -= span
	return int(t)
}
