// Package mem models the physical memory hierarchy of the simulated
// co-processor: the small on-board device memory (a frame allocator),
// the large host backing store reached over PCIe, and page-content
// signatures that let tests prove data integrity across swap-out /
// swap-in cycles without storing 4 kB of payload per page.
package mem

import (
	"errors"
	"fmt"

	"cmcp/internal/sim"
)

// ErrOutOfFrames is returned by Alloc when device memory is exhausted
// and the caller must evict a victim first.
var ErrOutOfFrames = errors.New("mem: out of device frames")

// Signature is a compact stand-in for a page's 4 kB of content. The
// simulator updates it on every simulated write and checks it when a
// page returns from the host, which catches lost or misdirected
// transfers exactly like full content comparison would.
type Signature uint64

// Mix folds a write event into the signature.
func (s Signature) Mix(core sim.CoreID, seq uint64) Signature {
	x := uint64(s) ^ (uint64(core)+1)*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9
	x ^= x >> 29
	x *= 0x94d049bb133111eb
	x ^= x >> 32
	return Signature(x)
}

// frame is the per-frame record of device memory.
type frame struct {
	vpn         sim.PageID // owner page, or -1 when free
	sig         Signature
	dirty       bool
	quarantined bool // permanently retired; never free, never allocated
}

// Device models the co-processor's on-board RAM as an array of 4 kB
// frames with a free list. It is not safe for concurrent use; the
// discrete-event engine serializes access.
type Device struct {
	frames      []frame
	free        []sim.FrameID
	quarantined int
}

// NewDevice creates a device memory with n 4 kB frames.
func NewDevice(n int) *Device {
	d := &Device{frames: make([]frame, n), free: make([]sim.FrameID, 0, n)}
	for i := n - 1; i >= 0; i-- {
		d.frames[i].vpn = -1
		d.free = append(d.free, sim.FrameID(i))
	}
	return d
}

// NumFrames returns the device capacity in frames.
func (d *Device) NumFrames() int { return len(d.frames) }

// FreeFrames returns the number of currently unallocated frames.
func (d *Device) FreeFrames() int { return len(d.free) }

// Alloc takes a free frame and assigns it to vpn. It returns
// ErrOutOfFrames when the device is full.
func (d *Device) Alloc(vpn sim.PageID) (sim.FrameID, error) {
	if len(d.free) == 0 {
		return sim.NoFrame, ErrOutOfFrames
	}
	f := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	fr := &d.frames[f]
	if fr.vpn != -1 {
		return sim.NoFrame, fmt.Errorf("mem: free-list frame %d still owned by page %d", f, fr.vpn)
	}
	fr.vpn = vpn
	fr.dirty = false
	fr.sig = 0
	return f, nil
}

// AllocRange allocates span contiguous frames for a large mapping
// starting at vpn (64 kB and 2 MB mappings need physically contiguous,
// aligned frames on the Phi). It scans for a naturally aligned free run;
// if none exists it fails with ErrOutOfFrames even if enough scattered
// frames remain — the caller then evicts until a run opens up.
func (d *Device) AllocRange(vpn sim.PageID, span int) (sim.FrameID, error) {
	if span == 1 {
		return d.Alloc(vpn)
	}
	n := len(d.frames)
	for base := 0; base+span <= n; base += span {
		ok := true
		for i := 0; i < span; i++ {
			if d.frames[base+i].vpn != -1 || d.frames[base+i].quarantined {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < span; i++ {
			fr := &d.frames[base+i]
			fr.vpn = vpn + sim.PageID(i)
			fr.dirty = false
			fr.sig = 0
			d.removeFree(sim.FrameID(base + i))
		}
		return sim.FrameID(base), nil
	}
	return sim.NoFrame, ErrOutOfFrames
}

func (d *Device) removeFree(f sim.FrameID) {
	for i, v := range d.free {
		if v == f {
			d.free[i] = d.free[len(d.free)-1]
			d.free = d.free[:len(d.free)-1]
			return
		}
	}
}

// Free releases the frame back to the free list.
func (d *Device) Free(f sim.FrameID) {
	fr := &d.frames[f]
	if fr.vpn == -1 {
		panic(fmt.Sprintf("mem: double free of frame %d", f))
	}
	fr.vpn = -1
	fr.dirty = false
	d.free = append(d.free, f)
}

// Quarantine permanently retires frame f: it leaves its owner (the
// caller must have rolled the mapping back), never rejoins the free
// list, and is skipped by every future allocation — the device degrades
// to a smaller healthy capacity instead of serving a bad frame again.
// Quarantining an already-retired frame is a no-op reporting false:
// under high corruption rates a retried page-in can trip on a frame a
// previous attempt already condemned, and retiring it "again" must not
// double-count the capacity loss (this used to panic).
func (d *Device) Quarantine(f sim.FrameID) bool {
	fr := &d.frames[f]
	if fr.quarantined {
		return false
	}
	fr.vpn = -1
	fr.dirty = false
	fr.sig = 0
	fr.quarantined = true
	d.quarantined++
	return true
}

// Quarantined returns the number of permanently retired frames.
func (d *Device) Quarantined() int { return d.quarantined }

// HealthyFrames returns the device capacity excluding retired frames.
func (d *Device) HealthyFrames() int { return len(d.frames) - d.quarantined }

// IsQuarantined reports whether frame f has been retired.
func (d *Device) IsQuarantined(f sim.FrameID) bool { return d.frames[f].quarantined }

// Owner returns the page occupying frame f, or -1 if free.
func (d *Device) Owner(f sim.FrameID) sim.PageID { return d.frames[f].vpn }

// Write records a simulated store to frame f, updating its content
// signature and dirty bit.
func (d *Device) Write(f sim.FrameID, core sim.CoreID, seq uint64) {
	fr := &d.frames[f]
	fr.sig = fr.sig.Mix(core, seq)
	fr.dirty = true
}

// Dirty reports whether frame f has been written since it was loaded.
func (d *Device) Dirty(f sim.FrameID) bool { return d.frames[f].dirty }

// Signature returns the current content signature of frame f.
func (d *Device) Signature(f sim.FrameID) Signature { return d.frames[f].sig }

// SetSignature installs content into frame f (page-in from host) and
// clears the dirty bit.
func (d *Device) SetSignature(f sim.FrameID, s Signature) {
	d.frames[f].sig = s
	d.frames[f].dirty = false
}

// Host models the host machine's RAM acting as backing store for the
// computation area. Pages are identified by VPN; absent entries read as
// the zero signature (fresh anonymous memory).
type Host struct {
	pages map[sim.PageID]Signature
	// InBytes and OutBytes track total transfer volume for stats.
	InBytes, OutBytes int64
}

// NewHost returns an empty backing store.
func NewHost() *Host {
	return &Host{pages: make(map[sim.PageID]Signature)}
}

// PageOut stores sig as the content of vpn (device-to-host write-back).
func (h *Host) PageOut(vpn sim.PageID, sig Signature) {
	h.pages[vpn] = sig
	h.OutBytes += sim.PageSize4k
}

// PageIn fetches the content of vpn (host-to-device). A page never
// written before reads as zero-filled.
func (h *Host) PageIn(vpn sim.PageID) Signature {
	h.InBytes += sim.PageSize4k
	return h.pages[vpn]
}

// Peek returns the stored signature without accounting a transfer;
// tests use it to verify write-back contents.
func (h *Host) Peek(vpn sim.PageID) (Signature, bool) {
	s, ok := h.pages[vpn]
	return s, ok
}

// Len returns the number of pages ever written back.
func (h *Host) Len() int { return len(h.pages) }
