package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"cmcp/internal/sim"
)

func TestDeviceAllocFree(t *testing.T) {
	d := NewDevice(4)
	if d.NumFrames() != 4 || d.FreeFrames() != 4 {
		t.Fatalf("fresh device: %d/%d", d.FreeFrames(), d.NumFrames())
	}
	seen := make(map[sim.FrameID]bool)
	for i := 0; i < 4; i++ {
		f, err := d.Alloc(sim.PageID(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
		if d.Owner(f) != sim.PageID(100+i) {
			t.Errorf("owner mismatch")
		}
	}
	if _, err := d.Alloc(999); !errors.Is(err, ErrOutOfFrames) {
		t.Errorf("expected ErrOutOfFrames, got %v", err)
	}
	var f0 sim.FrameID
	for f := range seen {
		f0 = f
		break
	}
	d.Free(f0)
	if d.FreeFrames() != 1 || d.Owner(f0) != -1 {
		t.Error("free did not release frame")
	}
	f, err := d.Alloc(777)
	if err != nil || f != f0 {
		t.Errorf("realloc got %d, want %d", f, f0)
	}
}

func TestDeviceDoubleFreePanics(t *testing.T) {
	d := NewDevice(1)
	f, _ := d.Alloc(1)
	d.Free(f)
	defer func() {
		if recover() == nil {
			t.Error("double free must panic")
		}
	}()
	d.Free(f)
}

func TestDeviceDirtySignature(t *testing.T) {
	d := NewDevice(2)
	f, _ := d.Alloc(5)
	if d.Dirty(f) {
		t.Error("fresh frame must be clean")
	}
	s0 := d.Signature(f)
	d.Write(f, 3, 1)
	if !d.Dirty(f) {
		t.Error("write must set dirty")
	}
	if d.Signature(f) == s0 {
		t.Error("write must change signature")
	}
	d.SetSignature(f, 12345)
	if d.Dirty(f) || d.Signature(f) != 12345 {
		t.Error("SetSignature must install content and clear dirty")
	}
}

func TestSignatureMixOrderSensitive(t *testing.T) {
	var a, b Signature
	a = a.Mix(1, 1).Mix(2, 2)
	b = b.Mix(2, 2).Mix(1, 1)
	if a == b {
		t.Error("different write orders should (almost surely) differ")
	}
	if a == a.Mix(1, 3) {
		t.Error("mixing must change the signature")
	}
}

func TestAllocRangeAlignedRun(t *testing.T) {
	d := NewDevice(64)
	base, err := d.AllocRange(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if int(base)%16 != 0 {
		t.Errorf("base %d not 16-aligned", base)
	}
	for i := 0; i < 16; i++ {
		if d.Owner(base+sim.FrameID(i)) != sim.PageID(32+i) {
			t.Errorf("frame %d owner wrong", i)
		}
	}
	if d.FreeFrames() != 48 {
		t.Errorf("free = %d, want 48", d.FreeFrames())
	}
}

func TestAllocRangeFragmented(t *testing.T) {
	d := NewDevice(32)
	// Occupy one frame inside each aligned 16-run.
	fa, _ := d.AllocRange(0, 1)
	_ = fa
	// Frame 0 taken; second run: take frame 16 by allocating singles
	// until one lands there is fragile — instead fill frames 1..16.
	for i := 1; i <= 16; i++ {
		if _, err := d.Alloc(sim.PageID(1000 + i)); err != nil {
			t.Fatal(err)
		}
	}
	// Frames 0..16 busy; only 17..31 free: no aligned 16-run exists.
	if _, err := d.AllocRange(64, 16); !errors.Is(err, ErrOutOfFrames) {
		t.Errorf("expected ErrOutOfFrames on fragmented memory, got %v", err)
	}
}

func TestAllocRangeSpanOne(t *testing.T) {
	d := NewDevice(2)
	f, err := d.AllocRange(9, 1)
	if err != nil || d.Owner(f) != 9 {
		t.Errorf("span-1 range alloc failed: %v", err)
	}
}

func TestDeviceNeverDoubleAllocatesProperty(t *testing.T) {
	// Property: under a random alloc/free workload the allocator never
	// hands out an owned frame and conserves the frame count.
	f := func(ops []uint16) bool {
		d := NewDevice(16)
		owned := make(map[sim.FrameID]bool)
		for i, op := range ops {
			if op%3 != 0 && len(owned) > 0 && op%2 == 1 {
				for fr := range owned {
					d.Free(fr)
					delete(owned, fr)
					break
				}
				continue
			}
			fr, err := d.Alloc(sim.PageID(i))
			if err != nil {
				if len(owned) != 16 {
					return false // spurious exhaustion
				}
				continue
			}
			if owned[fr] {
				return false // double allocation
			}
			owned[fr] = true
		}
		return d.FreeFrames()+len(owned) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHostPageOutIn(t *testing.T) {
	h := NewHost()
	if got := h.PageIn(42); got != 0 {
		t.Errorf("unwritten page reads %d, want zero-fill", got)
	}
	h.PageOut(42, 999)
	if got := h.PageIn(42); got != 999 {
		t.Errorf("PageIn = %d, want 999", got)
	}
	if s, ok := h.Peek(42); !ok || s != 999 {
		t.Error("Peek mismatch")
	}
	if _, ok := h.Peek(43); ok {
		t.Error("Peek of absent page")
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
	if h.OutBytes != sim.PageSize4k || h.InBytes != 2*sim.PageSize4k {
		t.Errorf("byte accounting: in=%d out=%d", h.InBytes, h.OutBytes)
	}
}

// TestQuarantine pins the frame-retirement contract: a quarantined
// frame leaves its owner, never rejoins the free list, is skipped by
// both allocation paths, and shrinks the healthy capacity — allocation
// keeps working on the survivors until they run out.
func TestQuarantine(t *testing.T) {
	d := NewDevice(4)
	f, err := d.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	d.Quarantine(f)
	if !d.IsQuarantined(f) || d.Quarantined() != 1 || d.HealthyFrames() != 3 {
		t.Fatalf("after quarantine: q=%d healthy=%d", d.Quarantined(), d.HealthyFrames())
	}
	if d.Owner(f) != -1 {
		t.Fatalf("quarantined frame still owned by %d", d.Owner(f))
	}
	// The retired frame must never come back from Alloc.
	seen := map[sim.FrameID]bool{}
	for {
		g, err := d.Alloc(sim.PageID(20 + len(seen)))
		if err != nil {
			break
		}
		if g == f {
			t.Fatalf("Alloc handed out quarantined frame %d", f)
		}
		seen[g] = true
	}
	if len(seen) != 3 {
		t.Fatalf("allocated %d frames from a 4-frame device with 1 quarantined", len(seen))
	}

	// AllocRange must refuse runs that cross a quarantined frame.
	d2 := NewDevice(4)
	g, err := d2.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	d2.Quarantine(g)
	if _, err := d2.AllocRange(0, 4); err == nil {
		t.Fatal("AllocRange spanned a quarantined frame")
	}

	// Double quarantine is a guarded no-op: the retry path of a corrupt
	// page-in can legitimately revisit a condemned frame, and the
	// capacity loss must not be double-counted.
	if d.Quarantine(f) {
		t.Error("second Quarantine reported a fresh retirement")
	}
	if d.Quarantined() != 1 || d.HealthyFrames() != 3 {
		t.Errorf("after double quarantine: q=%d healthy=%d, want 1/3", d.Quarantined(), d.HealthyFrames())
	}
}
