package mem

import (
	"testing"

	"cmcp/internal/sim"
)

func TestCoreMapClaimReleaseUsed(t *testing.T) {
	cm := NewCoreMap(8, 3)
	if cm.Frames() != 8 || cm.Tenants() != 3 {
		t.Fatalf("geometry %d/%d", cm.Frames(), cm.Tenants())
	}
	for f := 0; f < 8; f++ {
		if cm.Owner(sim.FrameID(f)) != NoTenant {
			t.Fatalf("fresh frame %d owned by %d", f, cm.Owner(sim.FrameID(f)))
		}
	}
	cm.Claim(0, 2, 1) // frames 0,1 -> tenant 1
	cm.Claim(4, 1, 2)
	if cm.Owner(0) != 1 || cm.Owner(1) != 1 || cm.Owner(4) != 2 {
		t.Error("ownership not recorded")
	}
	if cm.Used(1) != 2 || cm.Used(2) != 1 || cm.Used(0) != 0 {
		t.Errorf("used = %d/%d/%d", cm.Used(0), cm.Used(1), cm.Used(2))
	}
	if cm.UsedTotal() != 3 {
		t.Errorf("UsedTotal = %d", cm.UsedTotal())
	}
	if prev := cm.Release(0, 2); prev != 1 {
		t.Errorf("Release returned owner %d, want 1", prev)
	}
	if cm.Owner(0) != NoTenant || cm.Used(1) != 0 || cm.UsedTotal() != 1 {
		t.Error("release did not clear ownership")
	}
	// The freed frames are claimable by another tenant.
	cm.Claim(0, 2, 0)
	if cm.Used(0) != 2 {
		t.Error("re-claim after release failed")
	}
}

func TestCoreMapDoubleClaimPanics(t *testing.T) {
	cm := NewCoreMap(4, 2)
	cm.Claim(1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("claiming an owned frame must panic")
		}
	}()
	cm.Claim(0, 2, 1) // span covers owned frame 1
}

func TestCoreMapUnownedReleasePanics(t *testing.T) {
	cm := NewCoreMap(4, 2)
	defer func() {
		if recover() == nil {
			t.Error("releasing an unowned frame must panic")
		}
	}()
	cm.Release(2, 1)
}

func TestCoreMapSpanningReleasePanics(t *testing.T) {
	cm := NewCoreMap(4, 2)
	cm.Claim(0, 1, 0)
	cm.Claim(1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("releasing a run spanning two tenants must panic")
		}
	}()
	cm.Release(0, 2)
}
