package machine

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"cmcp/internal/check"
	"cmcp/internal/fault"
	"cmcp/internal/obs"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineKind
		ok   bool
	}{
		{"", SerialEngine, true},
		{"serial", SerialEngine, true},
		{"parallel", ParallelEngine, true},
		{"turbo", 0, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SerialEngine.String() != "serial" || ParallelEngine.String() != "parallel" {
		t.Error("EngineKind.String mismatch")
	}
}

// compareResults requires the two results to be bit-identical in every
// observable: runtime, per-core counters (scanner row included), finish
// times, resident count, quarantined frames, sharing histogram and
// latency histograms.
func compareResults(t *testing.T, serial, parallel *Result) {
	t.Helper()
	if serial.Runtime != parallel.Runtime {
		t.Errorf("runtime: serial %d, parallel %d", serial.Runtime, parallel.Runtime)
	}
	if serial.Resident != parallel.Resident {
		t.Errorf("resident: serial %d, parallel %d", serial.Resident, parallel.Resident)
	}
	if serial.Quarantined != parallel.Quarantined {
		t.Errorf("quarantined: serial %d, parallel %d", serial.Quarantined, parallel.Quarantined)
	}
	for core := 0; core <= serial.Run.Cores; core++ {
		for c := 0; c < stats.NumCounters; c++ {
			s := serial.Run.Get(sim.CoreID(core), stats.Counter(c))
			p := parallel.Run.Get(sim.CoreID(core), stats.Counter(c))
			if s != p {
				t.Errorf("core %d %s: serial %d, parallel %d", core, stats.Counter(c).Name(), s, p)
			}
		}
		if s, p := serial.Run.Finish[core], parallel.Run.Finish[core]; s != p {
			t.Errorf("core %d finish: serial %d, parallel %d", core, s, p)
		}
	}
	if len(serial.Sharing) != len(parallel.Sharing) {
		t.Errorf("sharing: serial %v, parallel %v", serial.Sharing, parallel.Sharing)
	} else {
		for i := range serial.Sharing {
			if serial.Sharing[i] != parallel.Sharing[i] {
				t.Errorf("sharing[%d]: serial %d, parallel %d", i, serial.Sharing[i], parallel.Sharing[i])
			}
		}
	}
	switch {
	case (serial.Run.Hists == nil) != (parallel.Run.Hists == nil):
		t.Error("hists: attached on one engine only")
	case serial.Run.Hists != nil && *serial.Run.Hists != *parallel.Run.Hists:
		t.Error("hists differ between engines")
	}
}

// compareTraces requires identical flight-recorder event sequences.
func compareTraces(t *testing.T, serial, parallel *obs.Recorder) {
	t.Helper()
	se, pe := serial.Events(), parallel.Events()
	if serial.Dropped() != parallel.Dropped() {
		t.Errorf("trace dropped: serial %d, parallel %d", serial.Dropped(), parallel.Dropped())
	}
	if len(se) != len(pe) {
		t.Errorf("trace length: serial %d, parallel %d", len(se), len(pe))
		return
	}
	for i := range se {
		if se[i] != pe[i] {
			t.Errorf("trace[%d]: serial %+v, parallel %+v", i, se[i], pe[i])
			return
		}
	}
}

// runBoth simulates cfg on both engines with a fresh recorder and
// auditor each, compares everything, and returns the serial result.
func runBoth(t *testing.T, cfg Config) *Result {
	t.Helper()
	sCfg := cfg
	sCfg.Engine = SerialEngine
	sCfg.Probe = obs.NewRecorder(obs.Config{})
	sCfg.Audit = check.New(check.Config{})
	serial, err := Simulate(sCfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	pCfg := cfg
	pCfg.Engine = ParallelEngine
	pCfg.Probe = obs.NewRecorder(obs.Config{})
	pCfg.Audit = check.New(check.Config{})
	parallel, err := Simulate(pCfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	compareResults(t, serial, parallel)
	compareTraces(t, sCfg.Probe, pCfg.Probe)
	return serial
}

// TestParallelGoldenBitIdentical runs every golden variant on the
// parallel engine — histograms on, auditor attached, flight recorder
// attached — and requires the pinned serial table bit-for-bit.
func TestParallelGoldenBitIdentical(t *testing.T) {
	for name, cfg := range goldenVariants() {
		t.Run(name, func(t *testing.T) {
			want := goldenRuns[name]
			cfg.Engine = ParallelEngine
			cfg.Hist = true
			cfg.Probe = obs.NewRecorder(obs.Config{})
			cfg.Audit = check.New(check.Config{})
			res, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Runtime != want.Runtime {
				t.Errorf("runtime = %d, want %d", res.Runtime, want.Runtime)
			}
			if res.Resident != want.Resident {
				t.Errorf("resident = %d, want %d", res.Resident, want.Resident)
			}
			for c := 0; c < stats.NumCounters; c++ {
				if got := res.Run.Total(stats.Counter(c)); got != want.Counters[c] {
					t.Errorf("%s = %d, want %d", stats.Counter(c).Name(), got, want.Counters[c])
				}
			}
		})
	}
}

// TestParallelGoldenFaultInjection runs the golden variants under
// deterministic fault injection on both engines, auditor attached, and
// requires bit-identical outcomes (including quarantined frames and the
// recovery counters). Under PSPT the MapSkew rate makes the audit
// cadence Result-bearing, which the parallel engine handles by serial
// fallback — also covered here.
func TestParallelGoldenFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: differential matrix covers fault injection")
	}
	for _, name := range []string{"FIFO", "CMCP", "FIFO/regularPT"} {
		cfg := goldenVariants()[name]
		cfg.Faults = &fault.Config{Seed: 99, Rates: func() [fault.NumKinds]float64 {
			var r [fault.NumKinds]float64
			for i := range r {
				r[i] = 0.02
			}
			return r
		}()}
		t.Run(name, func(t *testing.T) { runBoth(t, cfg) })
	}
}

// TestParallelDifferential is the randomized property harness: a
// deterministic matrix over six policies × faults on/off × hist on/off
// (auditor and flight recorder always attached) plus randomized
// configurations varying cores, scale, memory ratio, page size, table
// kind, adaptive sizing, rebuild period and seeds. Every configuration
// must produce byte-identical Results and trace event sequences on both
// engines.
func TestParallelDifferential(t *testing.T) {
	type variant struct {
		name string
		cfg  Config
	}
	var variants []variant

	// Matrix: 6 policies × faults × hist = 24 configurations.
	kinds := []PolicyKind{FIFO, LRU, CMCP, CLOCK, LFU, Random}
	for _, k := range kinds {
		for _, withFaults := range []bool{false, true} {
			for _, withHist := range []bool{false, true} {
				cfg := Config{
					Cores:       6,
					Workload:    workload.SCALE().Scale(0.02),
					MemoryRatio: 0.5,
					PageSize:    sim.Size4k,
					Tables:      vm.PSPTKind,
					Policy:      PolicySpec{Kind: k, P: -1},
					Seed:        11,
					Hist:        withHist,
				}
				if withFaults {
					cfg.Faults = fault.Uniform(123, 0.01)
				}
				variants = append(variants, variant{
					fmt.Sprintf("%v/faults=%v/hist=%v", k, withFaults, withHist), cfg})
			}
		}
	}

	// Randomized: 36 more draws over the wider config space.
	rng := rand.New(rand.NewSource(20260807))
	tables := []vm.TableKind{vm.PSPTKind, vm.RegularPT}
	sizes := []sim.PageSize{sim.Size4k, sim.Size64k}
	for i := 0; i < 36; i++ {
		k := kinds[rng.Intn(len(kinds))]
		cfg := Config{
			Cores:       2 + rng.Intn(9),
			Workload:    workload.SCALE().Scale(0.01 + rng.Float64()*0.02),
			MemoryRatio: 0.3 + rng.Float64()*0.6,
			PageSize:    sizes[rng.Intn(len(sizes))],
			Tables:      tables[rng.Intn(len(tables))],
			Policy:      PolicySpec{Kind: k, P: -1},
			Seed:        rng.Uint64(),
			Hist:        rng.Intn(2) == 0,
			NoWarmup:    rng.Intn(4) == 0,
		}
		if k == CMCP && rng.Intn(2) == 0 {
			cfg.Policy.P = rng.Float64()
		}
		if cfg.Tables == vm.PSPTKind && rng.Intn(4) == 0 {
			cfg.PSPTRebuildPeriod = sim.Cycles(100_000 + rng.Intn(400_000))
		}
		if rng.Intn(5) == 0 {
			cfg.AdaptivePageSize = true
			cfg.PageSize = sim.Size4k
		}
		// Injected frame corruption permanently quarantines frames; under
		// multi-frame spans (64 kB pages, adaptive sizing) or high rates a
		// small device legitimately runs out of allocatable frames and the
		// run errors on either engine. Keep injection on the plain-4 kB
		// draws at rates the footprint survives.
		if cfg.PageSize == sim.Size4k && !cfg.AdaptivePageSize && rng.Intn(3) == 0 {
			cfg.Faults = fault.Uniform(rng.Uint64(), 0.002+rng.Float64()*0.008)
		}
		variants = append(variants, variant{fmt.Sprintf("rand%02d/%v", i, k), cfg})
	}

	if testing.Short() {
		// Every 5th configuration still crosses all six policies and both
		// fault/hist axes over the matrix part.
		var subset []variant
		for i := 0; i < len(variants); i += 5 {
			subset = append(subset, variants[i])
		}
		variants = subset
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) { runBoth(t, v.cfg) })
	}
}

// TestParallelRunManyGoroutineBound runs a parallel-engine sweep and
// checks the process's live goroutine count stays bounded by the sweep
// parallelism plus the global GOMAXPROCS probe-worker budget — inner
// engines must share one pool, not spawn workers·runs goroutines.
func TestParallelRunManyGoroutineBound(t *testing.T) {
	base := runtime.NumGoroutine()
	var cfgs []Config
	for seed := uint64(0); seed < 12; seed++ {
		cfg := goldenConfig()
		cfg.Workload = workload.SCALE().Scale(0.02)
		cfg.Policy = PolicySpec{Kind: FIFO, P: -1}
		cfg.Seed = seed
		cfg.Engine = ParallelEngine
		cfgs = append(cfgs, cfg)
	}
	parallelism := 4
	limit := base + parallelism + runtime.GOMAXPROCS(0) + 5 // slack: RunMany plumbing + this monitor
	quit := make(chan struct{})
	peakCh := make(chan int)
	go func() {
		peak := 0
		for {
			select {
			case <-quit:
				peakCh <- peak
				return
			default:
				if n := runtime.NumGoroutine(); n > peak {
					peak = n
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	if _, err := RunMany(cfgs, parallelism); err != nil {
		t.Fatal(err)
	}
	close(quit)
	peak := <-peakCh
	if peak > limit {
		t.Errorf("goroutine peak %d exceeds bound %d (base %d, parallelism %d, GOMAXPROCS %d)",
			peak, limit, base, parallelism, runtime.GOMAXPROCS(0))
	}
}
