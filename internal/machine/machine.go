// Package machine is the discrete-event engine of the CMCP simulator.
// It builds a many-core machine (cores with TLBs, device memory, host
// backing store, page tables, a replacement policy), feeds each core
// its workload access stream, and advances per-core virtual clocks in
// deterministic (clock, coreID) order until every stream is drained.
//
// One Simulate call is single-threaded and bit-reproducible; parameter
// sweeps parallelize across independent Simulate calls (RunMany).
package machine

import (
	"container/heap"
	"fmt"

	"cmcp/internal/core"
	"cmcp/internal/obs"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/tlb"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// PolicyKind names a replacement policy.
type PolicyKind uint8

const (
	// FIFO is the baseline first-in first-out policy.
	FIFO PolicyKind = iota
	// LRU is the Linux-style active/inactive approximation.
	LRU
	// CMCP is the paper's core-map count based priority policy.
	CMCP
	// CLOCK is the second-chance algorithm.
	CLOCK
	// LFU is the sampled least-frequently-used approximation.
	LFU
	// Random evicts uniformly at random.
	Random
)

// String returns the policy display name.
func (k PolicyKind) String() string {
	switch k {
	case FIFO:
		return "FIFO"
	case LRU:
		return "LRU"
	case CMCP:
		return "CMCP"
	case CLOCK:
		return "CLOCK"
	case LFU:
		return "LFU"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(k))
	}
}

// PolicySpec selects and parameterizes the replacement policy.
type PolicySpec struct {
	// Factory, when non-nil, overrides Kind entirely: the simulation
	// uses the returned policy. This is the extension point for
	// user-defined replacement policies.
	Factory vm.PolicyFactory
	Kind    PolicyKind
	// P is CMCP's prioritized-pages ratio; negative means DefaultP.
	P float64
	// DynamicP attaches CMCP's fault-feedback tuner (future work §5.6).
	DynamicP bool
	// ScanPeriod overrides the LRU/LFU statistics timer (0 = default).
	ScanPeriod sim.Cycles
	// ScanBatch overrides pages scanned per timer tick (0 = adaptive:
	// the whole resident set, the high-pressure Linux regime).
	ScanBatch int
}

// Config describes one simulation run.
type Config struct {
	// Cores is the number of application cores (1..60 on KNC).
	Cores int
	// Workload is the access-stream spec.
	Workload workload.Spec
	// MemoryRatio sets device memory as a fraction of the workload
	// footprint (1.0 = everything fits, no data movement). Values are
	// clamped to at least one mapping.
	MemoryRatio float64
	// PageSize is the computation-area mapping granularity (ignored
	// when AdaptivePageSize is set).
	PageSize sim.PageSize
	// AdaptivePageSize lets the kernel pick 4 kB/64 kB/2 MB per 2 MB
	// block from fault-frequency feedback (paper §5.7 future work).
	AdaptivePageSize bool
	// Tables picks regular shared page tables or PSPT.
	Tables vm.TableKind
	// Policy selects the replacement policy.
	Policy PolicySpec
	// Seed drives all randomness (workload streams, Random policy).
	Seed uint64
	// Cost overrides the cycle-cost model (zero value = defaults).
	Cost sim.CostModel
	// TLB overrides the TLB geometry (zero value = defaults).
	TLB tlb.Config
	// Verify enables page-content integrity checking.
	Verify bool
	// TickInterval is the granularity at which the scanner pseudo-core
	// runs policy periodic work (0 = 1 ms simulated).
	TickInterval sim.Cycles
	// NoWarmup skips the steady-state warm-up phase (each core touching
	// its population once before measurement begins). The default
	// warm-up mirrors the paper's steady-state measurements; disabling
	// it exposes cold-start demand paging to the measured counters.
	NoWarmup bool
	// PSPTRebuildPeriod periodically drops all private PTEs so the
	// sharing picture re-forms (paper §5.6; PSPT only; 0 = off).
	PSPTRebuildPeriod sim.Cycles
	// Probe attaches a flight recorder / sampler to the run (see
	// internal/obs). nil disables tracing; the hot paths then pay one
	// nil-check branch per instrumented site. A Recorder serves one
	// run at a time — never share one across concurrent RunMany calls.
	Probe *obs.Recorder
}

// Result is one run's outcome.
type Result struct {
	Config  Config
	Run     *stats.Run
	Runtime sim.Cycles
	// Frames is the device size the MemoryRatio resolved to.
	Frames int
	// TotalPages is the workload footprint actually laid out.
	TotalPages int
	// Sharing is the final PSPT pages-per-core-map-count histogram
	// (nil under regular page tables).
	Sharing []int
	// Resident is the number of resident mappings at the end of the run.
	Resident int
	// PolicyName is the resolved policy's display name.
	PolicyName string
}

// Frames computes the device size in 4 kB frames for a footprint of
// pages at the given ratio and page size: mappings are span-aligned, so
// the full footprint rounds up to whole mappings, and the constrained
// size rounds to whole mappings too.
func Frames(pages int, ratio float64, size sim.PageSize) int {
	span := int(size.Span())
	mappings := (pages + span - 1) / span
	full := mappings * span
	f := int(ratio*float64(full) + 0.5)
	f = (f + span - 1) / span * span
	if f < span {
		f = span
	}
	if f > full {
		f = full
	}
	return f
}

// buildPolicy resolves the policy factory for a run.
func buildPolicy(cfg Config, frames int) (vm.PolicyFactory, error) {
	if cfg.Policy.Factory != nil {
		return cfg.Policy.Factory, nil
	}
	span := int(cfg.PageSize.Span())
	capacity := frames / span
	switch cfg.Policy.Kind {
	case FIFO:
		return func(policy.Host) policy.Policy { return policy.NewFIFO() }, nil
	case LRU:
		return func(h policy.Host) policy.Policy {
			// The paper's kernel scans every 10 ms over runs of minutes.
			// The simulated runs compress time ~10^3x (footprints are
			// scaled down), so the default scan period compresses too,
			// preserving the scans-per-page-residency ratio that drives
			// Table 1's invalidation counts.
			period := cfg.Policy.ScanPeriod
			if period == 0 {
				period = 50_000
			}
			opts := []policy.LRUOption{policy.WithScanPeriod(period)}
			batch := cfg.Policy.ScanBatch
			if batch == 0 {
				batch = capacity // high-pressure regime: scan everything
			}
			opts = append(opts, policy.WithScanBatch(batch))
			return policy.NewLRU(h, opts...)
		}, nil
	case CMCP:
		return func(h policy.Host) policy.Policy {
			opts := []core.Option{}
			if cfg.Policy.P >= 0 {
				opts = append(opts, core.WithP(cfg.Policy.P))
			}
			if cfg.Policy.DynamicP {
				opts = append(opts, core.WithTuner(core.NewTuner(core.TunerConfig{})))
			}
			if cfg.Probe != nil {
				opts = append(opts, core.WithObserver(cfg.Probe))
			}
			return core.New(h, capacity, opts...)
		}, nil
	case CLOCK:
		return func(h policy.Host) policy.Policy { return policy.NewClock(h) }, nil
	case LFU:
		return func(h policy.Host) policy.Policy {
			period := cfg.Policy.ScanPeriod
			if period == 0 {
				period = 50_000 // compressed like LRU's; see above
			}
			opts := []policy.LFUOption{policy.WithLFUScanPeriod(period)}
			batch := cfg.Policy.ScanBatch
			if batch == 0 {
				batch = capacity
			}
			opts = append(opts, policy.WithLFUScanBatch(batch))
			return policy.NewLFU(h, opts...)
		}, nil
	case Random:
		return func(policy.Host) policy.Policy { return policy.NewRandom(cfg.Seed ^ 0xabcdef) }, nil
	default:
		return nil, fmt.Errorf("machine: unknown policy kind %v", cfg.Policy.Kind)
	}
}

// coreEvent is one schedulable entity: an application core or the
// scanner pseudo-core.
type coreEvent struct {
	id     sim.CoreID
	clock  sim.Cycles
	stream workload.Stream // nil for the scanner
}

// eventHeap orders by (clock, id) for deterministic tie-breaking.
type eventHeap []*coreEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(*coreEvent)) }
func (h *eventHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// Simulate executes one run to completion and returns its Result.
func Simulate(cfg Config) (*Result, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("machine: %d cores", cfg.Cores)
	}
	if cfg.MemoryRatio <= 0 {
		cfg.MemoryRatio = 1
	}
	if cfg.TickInterval == 0 {
		// Half the compressed default scan period, so timer-driven
		// policies never miss a deadline by more than half a period.
		cfg.TickInterval = 25_000
	}
	layout, err := cfg.Workload.Build(cfg.Cores)
	if err != nil {
		return nil, err
	}
	frames := Frames(layout.TotalPages, cfg.MemoryRatio, cfg.PageSize)
	factory, err := buildPolicy(cfg, frames)
	if err != nil {
		return nil, err
	}
	mgr, err := vm.NewManager(vm.Config{
		Cores:    cfg.Cores,
		Frames:   frames,
		PageSize: cfg.PageSize,
		Tables:   cfg.Tables,
		TLB:      cfg.TLB,
		Cost:     cfg.Cost,
		Verify:   cfg.Verify,
		Adaptive: cfg.AdaptivePageSize,

		PSPTRebuildPeriod: cfg.PSPTRebuildPeriod,
		Probe:             cfg.Probe,
	}, factory)
	if err != nil {
		return nil, err
	}

	run := mgr.Run()
	var t0 sim.Cycles
	if !cfg.NoWarmup {
		// Warm-up: every core touches its population once, bringing the
		// resident set and TLBs to steady state, then all cores
		// synchronize at a barrier and the counters are rebased.
		t0 = runPhase(mgr, cfg, layout.WarmupStreams(), 0)
		warm := run.Clone()
		for c := 0; c < cfg.Cores; c++ {
			mgr.TakeDebt(sim.CoreID(c)) // drop warm-up interrupt debt
		}
		end := runPhase(mgr, cfg, layout.Streams(cfg.Seed), t0)
		_ = end
		if err := run.Subtract(warm); err != nil {
			return nil, err
		}
		for i := range run.Finish {
			if run.Finish[i] > t0 {
				run.Finish[i] -= t0
			} else {
				run.Finish[i] = 0
			}
		}
	} else {
		runPhase(mgr, cfg, layout.Streams(cfg.Seed), 0)
	}

	res := &Result{
		Config:     cfg,
		Run:        run,
		Runtime:    run.Runtime(),
		Frames:     frames,
		TotalPages: layout.TotalPages,
		PolicyName: mgr.Policy().Name(),
		Resident:   mgr.Resident(),
	}
	if h, ok := mgr.SharingHistogram(); ok {
		res.Sharing = h
	}
	return res, nil
}

// runPhase drives the DES until every core drains its stream, starting
// all clocks at start. It records per-core finish times and returns the
// barrier time (the latest finishing clock, scanner included in its own
// lane but excluded from the barrier).
func runPhase(mgr *vm.Manager, cfg Config, streams []workload.Stream, start sim.Cycles) sim.Cycles {
	run := mgr.Run()
	var events eventHeap
	for c := 0; c < cfg.Cores; c++ {
		events = append(events, &coreEvent{id: sim.CoreID(c), clock: start, stream: streams[c]})
	}
	scanner := &coreEvent{id: sim.ScannerCore(cfg.Cores), clock: start}
	events = append(events, scanner)
	heap.Init(&events)

	remaining := cfg.Cores
	var barrier sim.Cycles
	for remaining > 0 {
		ev := heap.Pop(&events).(*coreEvent)
		if ev.stream == nil {
			// Scanner pseudo-core: run policy periodic work, then
			// schedule the next tick after the work completes.
			cost := mgr.Tick(ev.clock)
			if rec := cfg.Probe; rec != nil && rec.Sampling() {
				sample(rec, mgr, ev.clock, events)
			}
			next := ev.clock + cfg.TickInterval
			if done := ev.clock + cost; done > next {
				next = done
			}
			ev.clock = next
			heap.Push(&events, ev)
			continue
		}
		// Deliver pending invalidation IPIs before the next access.
		if debt := mgr.TakeDebt(ev.id); debt > 0 {
			ev.clock += debt
			heap.Push(&events, ev)
			continue
		}
		a, ok := ev.stream.Next()
		if !ok {
			run.Finish[ev.id] = ev.clock
			if ev.clock > barrier {
				barrier = ev.clock
			}
			remaining--
			continue // core retires; not re-pushed
		}
		ev.clock = mgr.Access(ev.id, a.VPN, a.Write, ev.clock)
		heap.Push(&events, ev)
	}
	run.Finish[scanner.id] = scanner.clock
	return barrier
}

// sample captures one time-series point on the sampler's schedule: the
// cumulative counter totals, the resident-set size, CMCP's group split
// (when the policy exposes one) and the virtual-clock skew across the
// still-running application cores. It runs on the scanner lane, so the
// sampling resolution is bounded below by Config.TickInterval.
func sample(rec *obs.Recorder, mgr *vm.Manager, now sim.Cycles, events eventHeap) {
	rec.MaybeSample(now, func(s *obs.Sample) {
		run := mgr.Run()
		for c := 0; c < stats.NumCounters; c++ {
			s.Counters[c] = run.Total(stats.Counter(c))
		}
		s.Resident = mgr.Resident()
		if g, ok := mgr.Policy().(interface{ Groups() (int, int) }); ok {
			s.FIFOLen, s.PrioLen = g.Groups()
		}
		var lo, hi sim.Cycles
		active := 0
		for _, ev := range events {
			if ev.stream == nil {
				continue
			}
			if active == 0 || ev.clock < lo {
				lo = ev.clock
			}
			if active == 0 || ev.clock > hi {
				hi = ev.clock
			}
			active++
		}
		if active >= 2 {
			s.ClockSkew = hi - lo
		}
	})
}
