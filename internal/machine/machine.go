// Package machine is the discrete-event engine of the CMCP simulator.
// It builds a many-core machine (cores with TLBs, device memory, host
// backing store, page tables, a replacement policy), feeds each core
// its workload access stream, and advances per-core virtual clocks in
// deterministic (clock, coreID) order until every stream is drained.
//
// One Simulate call is single-threaded and bit-reproducible; parameter
// sweeps parallelize across independent Simulate calls (RunMany).
package machine

import (
	"fmt"

	"cmcp/internal/check"
	"cmcp/internal/core"
	"cmcp/internal/dense"
	"cmcp/internal/fault"
	"cmcp/internal/obs"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/tlb"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// PolicyKind names a replacement policy.
type PolicyKind uint8

const (
	// FIFO is the baseline first-in first-out policy.
	FIFO PolicyKind = iota
	// LRU is the Linux-style active/inactive approximation.
	LRU
	// CMCP is the paper's core-map count based priority policy.
	CMCP
	// CLOCK is the second-chance algorithm.
	CLOCK
	// LFU is the sampled least-frequently-used approximation.
	LFU
	// Random evicts uniformly at random.
	Random
)

// String returns the policy display name.
func (k PolicyKind) String() string {
	switch k {
	case FIFO:
		return "FIFO"
	case LRU:
		return "LRU"
	case CMCP:
		return "CMCP"
	case CLOCK:
		return "CLOCK"
	case LFU:
		return "LFU"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(k))
	}
}

// PolicySpec selects and parameterizes the replacement policy.
type PolicySpec struct {
	// Factory, when non-nil, overrides Kind entirely: the simulation
	// uses the returned policy. This is the extension point for
	// user-defined replacement policies.
	Factory vm.PolicyFactory
	Kind    PolicyKind
	// P is CMCP's prioritized-pages ratio; negative means DefaultP.
	P float64
	// DynamicP attaches CMCP's fault-feedback tuner (future work §5.6).
	DynamicP bool
	// ScanPeriod overrides the LRU/LFU statistics timer (0 = default).
	ScanPeriod sim.Cycles
	// ScanBatch overrides pages scanned per timer tick (0 = adaptive:
	// the whole resident set, the high-pressure Linux regime).
	ScanBatch int
}

// Config describes one simulation run.
type Config struct {
	// Cores is the number of application cores (1..60 on KNC).
	Cores int
	// Workload is the access-stream spec. Mutually exclusive with
	// Tenants.
	Workload workload.Spec
	// Tenants, when non-nil, runs a multi-tenant machine instead of a
	// single workload: Tenants.Tenants address spaces driven by the
	// deterministic Zipfian serving workload, per-tenant policy
	// instances over the shared frame pool, weighted or hard-partition
	// eviction pressure, and per-tenant counters/fault-latency
	// histograms on the Run (stats.TenantSet). Requires 4 kB pages
	// without adaptive sizing. Plain data like Faults: safe to share
	// across concurrent runs and to journal in sweeps. Nil leaves
	// single-tenant behavior bit-identical to before the field existed.
	Tenants *workload.TenantSpec
	// MemoryRatio sets device memory as a fraction of the workload
	// footprint (1.0 = everything fits, no data movement). Values are
	// clamped to at least one mapping.
	MemoryRatio float64
	// PageSize is the computation-area mapping granularity (ignored
	// when AdaptivePageSize is set).
	PageSize sim.PageSize
	// AdaptivePageSize lets the kernel pick 4 kB/64 kB/2 MB per 2 MB
	// block from fault-frequency feedback (paper §5.7 future work).
	AdaptivePageSize bool
	// Tables picks regular shared page tables or PSPT.
	Tables vm.TableKind
	// Policy selects the replacement policy.
	Policy PolicySpec
	// Seed drives all randomness (workload streams, Random policy).
	Seed uint64
	// Cost overrides the cycle-cost model (zero value = defaults).
	Cost sim.CostModel
	// TLB overrides the TLB geometry (zero value = defaults).
	TLB tlb.Config
	// Verify enables page-content integrity checking.
	Verify bool
	// TickInterval is the granularity at which the scanner pseudo-core
	// runs policy periodic work. 0 selects the default of 25,000 cycles
	// — half the compressed default scan period (≈24 µs at KNC's
	// 1.053 GHz), so timer-driven policies never miss a deadline by
	// more than half a period.
	TickInterval sim.Cycles
	// NoWarmup skips the steady-state warm-up phase (each core touching
	// its population once before measurement begins). The default
	// warm-up mirrors the paper's steady-state measurements; disabling
	// it exposes cold-start demand paging to the measured counters.
	NoWarmup bool
	// PSPTRebuildPeriod periodically drops all private PTEs so the
	// sharing picture re-forms (paper §5.6; PSPT only; 0 = off).
	PSPTRebuildPeriod sim.Cycles
	// Hist attaches latency/fan-out histograms to the run (see
	// internal/hist and stats.HistID): fault service time, eviction
	// latency, shootdown ack RTT, lock waits and shootdown fan-out.
	// Disabled, the hot paths pay one nil-check branch per site.
	// Histograms never alter simulated state or costs, so a Hist run is
	// bit-identical to a non-Hist run in every counter and finish time.
	// Plain data (like Faults, unlike Probe/Audit): one Config is safe
	// to reuse across concurrent RunMany runs, and sweeps may journal it.
	// With warm-up enabled, histograms cover the measured phase only —
	// distributions are reset at the warm-up barrier, because unlike
	// counters a prefix distribution cannot be subtracted out.
	Hist bool
	// Probe attaches a flight recorder / sampler to the run (see
	// internal/obs). nil disables tracing; the hot paths then pay one
	// nil-check branch per instrumented site. A Recorder serves one
	// run at a time — never share one across concurrent RunMany calls.
	Probe *obs.Recorder
	// Audit attaches the cross-module invariant auditor (see
	// internal/check): every few thousand engine events it cross-checks
	// policy residency, device frames, page tables, TLBs and the
	// adaptive-size counters against each other, and any violation fails
	// the run. nil disables auditing. Like Probe, an Auditor serves one
	// run at a time — never share one across concurrent RunMany calls.
	Audit *check.Auditor
	// Faults attaches the deterministic fault injector (see
	// internal/fault): seeded per-event-kind rates for transient transfer
	// failures, frame corruption, dropped shootdown acks, stuck page
	// locks and PSPT bookkeeping skew, which the VM layer recovers from
	// instead of aborting. nil disables injection entirely; a non-nil
	// config with all-zero rates never draws from any RNG, so such a run
	// is bit-identical to a nil-Faults run. Unlike Probe/Audit this is
	// plain data — each run builds its own Injector — so one Config is
	// safe to reuse across concurrent RunMany runs.
	Faults *fault.Config
	// Engine selects the event-loop implementation: the serial reference
	// engine (zero value) or the epoch-parallel engine, which produces
	// bit-identical Results — counters, histograms, traces, audit state —
	// at a multiple of the serial throughput (see DESIGN.md §13). A few
	// configurations are inherently serial (time-series sampling, and
	// MapSkew injection with an auditor under PSPT); those fall back to
	// the serial engine silently, identity preserved by construction.
	Engine EngineKind
	// Topology, when non-nil and multi-socket, models the machine as
	// sockets × cores-per-socket NUMA domains: per-socket IPI rings
	// joined by a priced interconnect, per-domain page-walk costs,
	// numaPTE-style per-socket page-table replicas under PSPT, and
	// cross-socket shootdown accounting (see DESIGN.md §16). Plain data
	// like Faults: safe to share across concurrent runs and to journal
	// in sweeps. Nil (or a single socket) leaves every run bit-identical
	// to before the field existed — the flat single-ring KNC model.
	Topology *sim.Topology
}

// Result is one run's outcome.
type Result struct {
	Config  Config
	Run     *stats.Run
	Runtime sim.Cycles
	// Frames is the device size the MemoryRatio resolved to.
	Frames int
	// TotalPages is the workload footprint actually laid out.
	TotalPages int
	// Sharing is the final PSPT pages-per-core-map-count histogram
	// (nil under regular page tables).
	Sharing []int
	// Resident is the number of resident mappings at the end of the run.
	Resident int
	// PolicyName is the resolved policy's display name.
	PolicyName string
	// Quarantined is the number of device frames permanently retired by
	// injected corruption over the whole run, warm-up included (frame
	// retirement is device state and survives the counter rebase; the
	// QuarantinedFrames counter covers the measured phase only).
	Quarantined int
}

// Frames computes the device size in 4 kB frames for a footprint of
// pages at the given ratio and page size: mappings are span-aligned, so
// the full footprint rounds up to whole mappings, and the constrained
// size rounds to whole mappings too.
func Frames(pages int, ratio float64, size sim.PageSize) int {
	span := int(size.Span())
	mappings := (pages + span - 1) / span
	full := mappings * span
	f := int(ratio*float64(full) + 0.5)
	f = (f + span - 1) / span * span
	if f < span {
		f = span
	}
	if f > full {
		f = full
	}
	return f
}

// buildPolicy resolves the policy factory for a run. pages and sc size
// the policy's page-indexed bookkeeping (see vm.Config.Pages/Scratch).
func buildPolicy(cfg Config, frames, pages int, sc *dense.Scratch) (vm.PolicyFactory, error) {
	if cfg.Policy.Factory != nil {
		return cfg.Policy.Factory, nil
	}
	span := int(cfg.PageSize.Span())
	capacity := frames / span
	switch cfg.Policy.Kind {
	case FIFO:
		return func(policy.Host) policy.Policy { return policy.NewFIFOIn(sc, pages) }, nil
	case LRU:
		return func(h policy.Host) policy.Policy {
			// The paper's kernel scans every 10 ms over runs of minutes.
			// The simulated runs compress time ~10^3x (footprints are
			// scaled down), so the default scan period compresses too,
			// preserving the scans-per-page-residency ratio that drives
			// Table 1's invalidation counts.
			period := cfg.Policy.ScanPeriod
			if period == 0 {
				period = 50_000
			}
			opts := []policy.LRUOption{policy.WithScanPeriod(period), policy.WithLRUArena(sc, pages)}
			batch := cfg.Policy.ScanBatch
			if batch == 0 {
				batch = capacity // high-pressure regime: scan everything
			}
			opts = append(opts, policy.WithScanBatch(batch))
			return policy.NewLRU(h, opts...)
		}, nil
	case CMCP:
		if cfg.Policy.P > 1 {
			return nil, fmt.Errorf("machine: CMCP p=%v out of [0,1]", cfg.Policy.P)
		}
		return func(h policy.Host) policy.Policy {
			opts := []core.Option{core.WithArena(sc, pages)}
			if cfg.Policy.P >= 0 {
				opts = append(opts, core.WithP(cfg.Policy.P))
			}
			if cfg.Policy.DynamicP {
				opts = append(opts, core.WithTuner(core.NewTuner(core.TunerConfig{})))
			}
			if cfg.Probe != nil {
				opts = append(opts, core.WithObserver(cfg.Probe))
			}
			return core.New(h, capacity, opts...)
		}, nil
	case CLOCK:
		return func(h policy.Host) policy.Policy { return policy.NewClockIn(h, sc, pages) }, nil
	case LFU:
		return func(h policy.Host) policy.Policy {
			period := cfg.Policy.ScanPeriod
			if period == 0 {
				period = 50_000 // compressed like LRU's; see above
			}
			opts := []policy.LFUOption{policy.WithLFUScanPeriod(period), policy.WithLFUArena(sc, pages)}
			batch := cfg.Policy.ScanBatch
			if batch == 0 {
				batch = capacity
			}
			opts = append(opts, policy.WithLFUScanBatch(batch))
			return policy.NewLFU(h, opts...)
		}, nil
	case Random:
		return func(policy.Host) policy.Policy { return policy.NewRandomIn(cfg.Seed^0xabcdef, sc, pages) }, nil
	default:
		return nil, fmt.Errorf("machine: unknown policy kind %v", cfg.Policy.Kind)
	}
}

// eventKey packs one schedulable entity — an application core or the
// scanner pseudo-core — into a single uint64: the virtual clock in the
// high 48 bits, the core ID in the low 16. Unsigned comparison of keys
// IS the scheduler's deterministic (clock, id) order, so the heap works
// on plain integers: one-instruction compares, 8-byte moves, no GC
// write barriers. IDs are unique, making the order total with no equal
// elements; every correct heap pops the same sequence regardless of
// its internal layout, so bit-reproducibility does not depend on the
// heap's shape. The packing bounds one run at 2^48 cycles (~3 days of
// simulated 1 GHz time; real runs are under 2^27) and 2^16-1 schedulable
// entities; Simulate rejects configs beyond the latter.
type eventKey uint64

const eventIDBits = 16

// maxEngineCores is the schedulable-entity limit imposed by the packed
// event key: all application cores plus the scanner must fit in 16 bits.
const maxEngineCores = 1<<eventIDBits - 2

func makeEvent(clock sim.Cycles, id sim.CoreID) eventKey {
	return eventKey(clock)<<eventIDBits | eventKey(uint16(id))
}

func (e eventKey) clock() sim.Cycles { return sim.Cycles(e >> eventIDBits) }
func (e eventKey) id() sim.CoreID    { return sim.CoreID(e & (1<<eventIDBits - 1)) }

// eventQueue is a monomorphic 4-ary min-heap over packed event keys.
// Versus container/heap it removes all interface dispatch and per-push
// boxing, and the wider nodes halve the tree depth: sift-down does more
// comparisons per level but far fewer cache-missing loads (a 64-byte
// line holds a full 4-child group plus its neighbors). push and the
// sifts hold the moving element out and shift holes instead of
// swapping.
type eventQueue struct {
	ev []eventKey
}

func (q *eventQueue) reset() { q.ev = q.ev[:0] }

func (q *eventQueue) push(e eventKey) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if e >= q.ev[p] {
			break
		}
		q.ev[i] = q.ev[p]
		i = p
	}
	q.ev[i] = e
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() eventKey {
	top := q.ev[0]
	n := len(q.ev) - 1
	e := q.ev[n]
	q.ev = q.ev[:n]
	if n > 0 {
		q.ev[0] = e
		q.fixTop()
	}
	return top
}

// fixTop restores heap order after the root's clock advanced in place.
// The engine's dominant operation is "take the earliest core, advance
// its clock, reschedule it": doing that as an in-place root update plus
// one sift-down costs half of a pop+push round trip.
func (q *eventQueue) fixTop() {
	n := len(q.ev)
	e := q.ev[0]
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		least := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if q.ev[k] < q.ev[least] {
				least = k
			}
		}
		if q.ev[least] >= e {
			break
		}
		q.ev[i] = q.ev[least]
		i = least
	}
	q.ev[i] = e
}

// Simulate executes one run to completion and returns its Result.
func Simulate(cfg Config) (*Result, error) { return simulate(cfg, nil) }

// simulate is Simulate with an optional scratch arena supplying the
// run's page-indexed tables; RunMany passes a per-worker arena it
// recycles between runs. The Result references no scratch storage.
func simulate(cfg Config, sc *dense.Scratch) (*Result, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("machine: %d cores", cfg.Cores)
	}
	if cfg.Cores > maxEngineCores {
		return nil, fmt.Errorf("machine: %d cores exceeds the scheduler limit of %d", cfg.Cores, maxEngineCores)
	}
	if cfg.MemoryRatio <= 0 {
		cfg.MemoryRatio = 1
	}
	if cfg.TickInterval == 0 {
		// Half the compressed default scan period, so timer-driven
		// policies never miss a deadline by more than half a period.
		cfg.TickInterval = 25_000
	}
	if err := cfg.Topology.Validate(cfg.Cores); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	var (
		totalPages int
		warmupFn   func() []workload.Stream
		streamsFn  func(seed uint64) []workload.Stream
	)
	if cfg.Tenants != nil {
		if cfg.Workload.Pages != 0 || cfg.Workload.TotalTouches != 0 || cfg.Workload.Name != "" {
			return nil, fmt.Errorf("machine: Config.Tenants and Config.Workload are mutually exclusive")
		}
		if cfg.AdaptivePageSize || cfg.PageSize != sim.Size4k {
			return nil, fmt.Errorf("machine: multi-tenant runs require 4 kB pages without adaptive sizing")
		}
		tl, err := cfg.Tenants.Build(cfg.Cores)
		if err != nil {
			return nil, err
		}
		totalPages = tl.TotalPages
		warmupFn = tl.WarmupStreams
		streamsFn = tl.Streams
	} else {
		layout, err := cfg.Workload.Build(cfg.Cores)
		if err != nil {
			return nil, err
		}
		totalPages = layout.TotalPages
		warmupFn = layout.WarmupStreams
		streamsFn = layout.Streams
	}
	frames := Frames(totalPages, cfg.MemoryRatio, cfg.PageSize)
	// Per-tenant policy instances size to the tenant footprint and an
	// even frame share, not the whole machine — what keeps a
	// 10,000-tenant run's policy tables affordable.
	polFrames, polPages := frames, totalPages
	if cfg.Tenants != nil {
		polFrames = frames / cfg.Tenants.Tenants
		if polFrames < 1 {
			polFrames = 1
		}
		polPages = cfg.Tenants.PagesPerTenant
	}
	factory, err := buildPolicy(cfg, polFrames, polPages, sc)
	if err != nil {
		return nil, err
	}
	var vmTenants *vm.TenantConfig
	if cfg.Tenants != nil {
		vmTenants = &vm.TenantConfig{
			Count:          cfg.Tenants.Tenants,
			PagesPerTenant: cfg.Tenants.PagesPerTenant,
			Weights:        cfg.Tenants.Weights,
			HardPartition:  cfg.Tenants.HardPartition,
		}
	}
	var inj *fault.Injector
	if cfg.Faults != nil {
		// Built fresh per run so Configs stay shareable and reruns with
		// the same fault seed replay the same injection stream.
		inj = fault.NewInjector(*cfg.Faults)
	}
	mgr, err := vm.NewManager(vm.Config{
		Cores:    cfg.Cores,
		Frames:   frames,
		PageSize: cfg.PageSize,
		Tables:   cfg.Tables,
		TLB:      cfg.TLB,
		Cost:     cfg.Cost,
		Verify:   cfg.Verify,
		Adaptive: cfg.AdaptivePageSize,
		Pages:    totalPages,
		Scratch:  sc,
		Hist:     cfg.Hist,
		Tenants:  vmTenants,
		Topology: cfg.Topology,

		PSPTRebuildPeriod: cfg.PSPTRebuildPeriod,
		Probe:             cfg.Probe,
		Faults:            inj,
	}, factory)
	if err != nil {
		return nil, err
	}

	run := mgr.Run()
	engine := newPhaseRunner(mgr, cfg)
	defer engine.close()
	var t0 sim.Cycles
	if !cfg.NoWarmup {
		// Warm-up: every core touches its population once, bringing the
		// resident set and TLBs to steady state, then all cores
		// synchronize at a barrier and the counters are rebased.
		t0, err = engine.run(warmupFn(), 0)
		if err != nil {
			return nil, err
		}
		warm := run.CloneIn(sc)
		for c := 0; c < cfg.Cores; c++ {
			mgr.TakeDebt(sim.CoreID(c)) // drop warm-up interrupt debt
		}
		// Counters are rebased below by subtracting the warm-up snapshot;
		// distributions cannot be, so the histograms restart here and
		// cover exactly the measured phase.
		if run.Hists != nil {
			run.Hists.Reset()
		}
		if run.Tenants != nil {
			run.Tenants.ResetHists()
		}
		if _, err = engine.run(streamsFn(cfg.Seed), t0); err != nil {
			return nil, err
		}
		if err := run.Subtract(warm); err != nil {
			return nil, err
		}
		for i := range run.Finish {
			if run.Finish[i] > t0 {
				run.Finish[i] -= t0
			} else {
				run.Finish[i] = 0
			}
		}
	} else {
		if _, err = engine.run(streamsFn(cfg.Seed), 0); err != nil {
			return nil, err
		}
	}

	if cfg.Audit != nil {
		// One final full audit at quiescence, then surface anything the
		// periodic checks or this one found as a run failure.
		cfg.Audit.Audit(mgr)
		if err := cfg.Audit.Err(); err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
	}

	res := &Result{
		Config:      cfg,
		Run:         run,
		Runtime:     run.Runtime(),
		Frames:      frames,
		TotalPages:  totalPages,
		PolicyName:  mgr.Policy().Name(),
		Resident:    mgr.Resident(),
		Quarantined: mgr.Device().Quarantined(),
	}
	if h, ok := mgr.SharingHistogram(); ok {
		res.Sharing = h
	}
	return res, nil
}

// runPhase drives the DES until every core drains its stream, starting
// all clocks at start. It records per-core finish times and returns the
// barrier time (the latest finishing clock, scanner included in its own
// lane but excluded from the barrier). A non-nil error means the VM
// reported an internal inconsistency and the phase was abandoned.
func runPhase(mgr *vm.Manager, cfg Config, events *eventQueue, streams []workload.Stream, start sim.Cycles) (sim.Cycles, error) {
	run := mgr.Run()
	events.reset()
	for c := 0; c < cfg.Cores; c++ {
		events.push(makeEvent(start, sim.CoreID(c)))
	}
	scannerID := sim.ScannerCore(cfg.Cores)
	scannerClock := start
	events.push(makeEvent(start, scannerID))

	remaining := cfg.Cores
	var barrier sim.Cycles
	for remaining > 0 {
		// Peek the earliest event and reschedule it in place; only a
		// retiring core actually leaves the queue.
		id := events.ev[0].id()
		clock := events.ev[0].clock()
		if cfg.Audit != nil {
			cfg.Audit.Note(mgr)
		}
		if id == scannerID {
			// Scanner pseudo-core: run policy periodic work, then
			// schedule the next tick after the work completes.
			cost := mgr.Tick(clock)
			if rec := cfg.Probe; rec != nil && rec.Sampling() {
				sample(rec, mgr, clock, events.ev, scannerID)
			}
			next := clock + cfg.TickInterval
			if done := clock + cost; done > next {
				next = done
			}
			scannerClock = next
			events.ev[0] = makeEvent(next, id)
			events.fixTop()
			continue
		}
		// Deliver pending invalidation IPIs before the next access.
		if debt := mgr.TakeDebt(id); debt > 0 {
			events.ev[0] = makeEvent(clock+debt, id)
			events.fixTop()
			continue
		}
		a, ok := streams[id].Next()
		if !ok {
			run.Finish[id] = clock
			if clock > barrier {
				barrier = clock
			}
			remaining--
			events.pop() // core retires
			continue
		}
		done, err := mgr.Access(id, a.VPN, a.Write, clock)
		if err != nil {
			return 0, fmt.Errorf("machine: core %d at cycle %d: %w", id, clock, err)
		}
		events.ev[0] = makeEvent(done, id)
		events.fixTop()
	}
	run.Finish[scannerID] = scannerClock
	return barrier, nil
}

// sample captures one time-series point on the sampler's schedule: the
// cumulative counter totals, the resident-set size, CMCP's group split
// (when the policy exposes one) and the virtual-clock skew across the
// still-running application cores. It runs on the scanner lane, so the
// sampling resolution is bounded below by Config.TickInterval.
func sample(rec *obs.Recorder, mgr *vm.Manager, now sim.Cycles, events []eventKey, scannerID sim.CoreID) {
	rec.MaybeSample(now, func(s *obs.Sample) {
		run := mgr.Run()
		for c := 0; c < stats.NumCounters; c++ {
			s.Counters[c] = run.Total(stats.Counter(c))
		}
		s.Resident = mgr.Resident()
		if g, ok := mgr.Policy().(interface{ Groups() (int, int) }); ok {
			s.FIFOLen, s.PrioLen = g.Groups()
		}
		var lo, hi sim.Cycles
		active := 0
		for _, ev := range events {
			if ev.id() == scannerID {
				continue
			}
			if c := ev.clock(); active == 0 || c < lo {
				lo = c
			}
			if c := ev.clock(); active == 0 || c > hi {
				hi = c
			}
			active++
		}
		if active >= 2 {
			s.ClockSkew = hi - lo
		}
	})
}
