package machine

import (
	"errors"
	"testing"

	"cmcp/internal/mem"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// These tests pin the panic-free error contract: a policy or content
// failure inside the fault handler must surface as a structured error
// from Simulate (matchable with errors.Is), never as a panic, and
// RunMany must propagate the first failing run.

// stubbornPolicy refuses to ever offer a victim: with constrained
// memory the allocator eventually finds no free frames and no victim.
type stubbornPolicy struct{ policy.Policy }

func (stubbornPolicy) Victim() (sim.PageID, bool) { return 0, false }

// lyingPolicy offers victims that were never resident.
type lyingPolicy struct{ policy.Policy }

func (lyingPolicy) Victim() (sim.PageID, bool) { return 1 << 20, true }

// tamperingPolicy behaves like FIFO but rewrites the backing-store
// content of each evicted page before it can return, so the next
// page-in sees a signature that no longer matches what was swapped out.
type tamperingPolicy struct {
	policy.Policy
	host *mem.Host
	last sim.PageID
	have bool
}

func (p *tamperingPolicy) Victim() (sim.PageID, bool) {
	if p.have {
		p.host.PageOut(p.last, mem.Signature(0xdeadbeef))
		p.have = false
	}
	v, ok := p.Policy.Victim()
	if ok {
		p.last, p.have = v, true
	}
	return v, ok
}

// errConfig is a constrained single-core run that must evict steadily.
func errConfig(factory vm.PolicyFactory) Config {
	return Config{
		Cores:       1,
		Workload:    workload.Uniform(128, 4000),
		MemoryRatio: 0.25,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      PolicySpec{Factory: factory},
		Seed:        3,
		NoWarmup:    true,
	}
}

func TestSimulateNoVictimIsError(t *testing.T) {
	cfg := errConfig(func(policy.Host) policy.Policy {
		return stubbornPolicy{policy.NewFIFO()}
	})
	_, err := Simulate(cfg)
	if !errors.Is(err, vm.ErrNoVictim) {
		t.Fatalf("err = %v, want ErrNoVictim", err)
	}
}

func TestSimulateBadVictimIsError(t *testing.T) {
	cfg := errConfig(func(policy.Host) policy.Policy {
		return lyingPolicy{policy.NewFIFO()}
	})
	_, err := Simulate(cfg)
	if !errors.Is(err, vm.ErrBadVictim) {
		t.Fatalf("err = %v, want ErrBadVictim", err)
	}
}

func TestSimulateCorruptionIsError(t *testing.T) {
	cfg := errConfig(func(h policy.Host) policy.Policy {
		// The engine hands the policy factory the VM manager itself as
		// its Host; the test reaches through it to tamper with the
		// backing store, simulating a lost or misdirected transfer.
		return &tamperingPolicy{Policy: policy.NewFIFO(), host: h.(*vm.Manager).Host()}
	})
	cfg.Verify = true
	_, err := Simulate(cfg)
	if !errors.Is(err, vm.ErrCorruption) {
		t.Fatalf("err = %v, want ErrCorruption", err)
	}
}

func TestRunManyPropagatesFirstFailure(t *testing.T) {
	good := errConfig(nil)
	good.Policy = PolicySpec{Kind: FIFO, P: -1}
	bad := errConfig(func(policy.Host) policy.Policy {
		return stubbornPolicy{policy.NewFIFO()}
	})
	results, err := RunMany([]Config{good, bad, good}, 2)
	if !errors.Is(err, vm.ErrNoVictim) {
		t.Fatalf("err = %v, want ErrNoVictim", err)
	}
	if results != nil {
		t.Error("failed sweep must not return partial results")
	}
}
