package machine

import (
	"errors"
	"strings"
	"testing"

	"cmcp/internal/mem"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// These tests pin the panic-free error contract: a policy or content
// failure inside the fault handler must surface as a structured error
// from Simulate (matchable with errors.Is), never as a panic, and
// RunMany must aggregate every failing run while preserving the
// successful runs' results.

// stubbornPolicy refuses to ever offer a victim: with constrained
// memory the allocator eventually finds no free frames and no victim.
type stubbornPolicy struct{ policy.Policy }

func (stubbornPolicy) Victim() (sim.PageID, bool) { return 0, false }

// lyingPolicy offers victims that were never resident.
type lyingPolicy struct{ policy.Policy }

func (lyingPolicy) Victim() (sim.PageID, bool) { return 1 << 20, true }

// tamperingPolicy behaves like FIFO but rewrites the backing-store
// content of each evicted page before it can return, so the next
// page-in sees a signature that no longer matches what was swapped out.
type tamperingPolicy struct {
	policy.Policy
	host *mem.Host
	last sim.PageID
	have bool
}

func (p *tamperingPolicy) Victim() (sim.PageID, bool) {
	if p.have {
		p.host.PageOut(p.last, mem.Signature(0xdeadbeef))
		p.have = false
	}
	v, ok := p.Policy.Victim()
	if ok {
		p.last, p.have = v, true
	}
	return v, ok
}

// errConfig is a constrained single-core run that must evict steadily.
func errConfig(factory vm.PolicyFactory) Config {
	return Config{
		Cores:       1,
		Workload:    workload.Uniform(128, 4000),
		MemoryRatio: 0.25,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      PolicySpec{Factory: factory},
		Seed:        3,
		NoWarmup:    true,
	}
}

func TestSimulateNoVictimIsError(t *testing.T) {
	cfg := errConfig(func(policy.Host) policy.Policy {
		return stubbornPolicy{policy.NewFIFO()}
	})
	_, err := Simulate(cfg)
	if !errors.Is(err, vm.ErrNoVictim) {
		t.Fatalf("err = %v, want ErrNoVictim", err)
	}
}

func TestSimulateBadVictimIsError(t *testing.T) {
	cfg := errConfig(func(policy.Host) policy.Policy {
		return lyingPolicy{policy.NewFIFO()}
	})
	_, err := Simulate(cfg)
	if !errors.Is(err, vm.ErrBadVictim) {
		t.Fatalf("err = %v, want ErrBadVictim", err)
	}
}

func TestSimulateCorruptionIsError(t *testing.T) {
	cfg := errConfig(func(h policy.Host) policy.Policy {
		// The engine hands the policy factory the VM manager itself as
		// its Host; the test reaches through it to tamper with the
		// backing store, simulating a lost or misdirected transfer.
		return &tamperingPolicy{Policy: policy.NewFIFO(), host: h.(*vm.Manager).Host()}
	})
	cfg.Verify = true
	_, err := Simulate(cfg)
	if !errors.Is(err, vm.ErrCorruption) {
		t.Fatalf("err = %v, want ErrCorruption", err)
	}
}

func TestRunManyAggregatesFailures(t *testing.T) {
	good := errConfig(nil)
	good.Policy = PolicySpec{Kind: FIFO, P: -1}
	bad := errConfig(func(policy.Host) policy.Policy {
		return stubbornPolicy{policy.NewFIFO()}
	})
	worse := errConfig(func(policy.Host) policy.Policy {
		return lyingPolicy{policy.NewFIFO()}
	})
	results, err := RunMany([]Config{good, bad, good, worse}, 2)
	if !errors.Is(err, vm.ErrNoVictim) {
		t.Fatalf("err = %v, want ErrNoVictim in the join", err)
	}
	if !errors.Is(err, vm.ErrBadVictim) {
		t.Fatalf("err = %v, want ErrBadVictim in the join", err)
	}
	for _, frag := range []string{"run 1", "run 3", "custom"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
	if len(results) != 4 {
		t.Fatalf("got %d result slots, want 4 (one per config)", len(results))
	}
	if results[0] == nil || results[2] == nil {
		t.Error("successful runs must keep their results in a failed sweep")
	}
	if results[1] != nil || results[3] != nil {
		t.Error("failed runs must leave nil result slots")
	}
}
