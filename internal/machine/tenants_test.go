package machine

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"cmcp/internal/check"
	"cmcp/internal/fault"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// tenantConfig is the base multi-tenant machine the tests below vary:
// enough tenants to make victim arbitration interesting, churn and a
// diurnal phase so the hot set moves, and a frame pool covering half
// the aggregate footprint so every policy is forced to evict across
// tenant boundaries.
func tenantConfig(tenants int) Config {
	spec := workload.DefaultTenantSpec(tenants, 1.2, 200)
	spec.DiurnalEvery = 1500
	return Config{
		Cores:       8,
		Tenants:     &spec,
		MemoryRatio: 0.5,
		Tables:      vm.PSPTKind,
		Policy:      PolicySpec{Kind: CMCP, P: -1},
		Seed:        11,
	}
}

// runJSON renders a Run for whole-record comparison: counters, tenant
// counters and every histogram, through the same marshaller journals
// use, so any divergence anywhere in the record fails the comparison.
func runJSON(t *testing.T, r *stats.Run) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTenantEnginesBitIdentical is the tentpole's core promise: a
// multi-tenant run — weighted or hard-partitioned, with churn and a
// diurnal phase — produces bit-identical results on the serial and
// epoch-parallel engines, per-tenant record included.
func TestTenantEnginesBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"weighted", func(cfg *Config) {
			w := make([]float64, cfg.Tenants.Tenants)
			for i := range w {
				w[i] = 1 + float64(i%4) // uneven shares
			}
			cfg.Tenants.Weights = w
		}},
		{"hard-partition", func(cfg *Config) { cfg.Tenants.HardPartition = true }},
		{"lru", func(cfg *Config) { cfg.Policy = PolicySpec{Kind: LRU} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tenantConfig(24)
			tc.mod(&cfg)
			cfg.Engine = SerialEngine
			serial, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine = ParallelEngine
			parallel, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Runtime != parallel.Runtime {
				t.Errorf("runtime: serial %d, parallel %d", serial.Runtime, parallel.Runtime)
			}
			if serial.Run.Tenants == nil || parallel.Run.Tenants == nil {
				t.Fatal("tenant run produced no per-tenant record")
			}
			if a, b := runJSON(t, serial.Run), runJSON(t, parallel.Run); !bytes.Equal(a, b) {
				t.Error("per-tenant records differ between engines")
			}
		})
	}
}

// TestTenant10kZipfAcceptance is the scale acceptance run: 10,000
// tenant address spaces under Zipfian selection complete
// deterministically, report a per-tenant p99 fault-service latency and
// a fairness metric, and are bit-identical across engines and repeats.
func TestTenant10kZipfAcceptance(t *testing.T) {
	spec := workload.DefaultTenantSpec(10_000, 1.1, 0)
	spec.TotalTouches = 200_000
	cfg := Config{
		Cores:       8,
		Tenants:     &spec,
		MemoryRatio: 0.5,
		Tables:      vm.PSPTKind,
		Policy:      PolicySpec{Kind: FIFO, P: -1},
		Seed:        3,
		Engine:      SerialEngine,
	}
	serial, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := serial.Run.Tenants
	if ts == nil || ts.Tenants() != 10_000 {
		t.Fatalf("expected a 10,000-tenant record, got %v", ts)
	}
	if ts.Total(stats.TenantFaults) == 0 {
		t.Fatal("no tenant faulted; the run measured nothing")
	}
	// Every tenant that faulted must report a positive p99.
	checked := 0
	for i := 0; i < ts.Tenants(); i++ {
		h := ts.FaultHist(i)
		if h.Count == 0 {
			continue
		}
		if h.P99() == 0 {
			t.Fatalf("tenant %d faulted %d times but reports p99 = 0", i, h.Count)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no tenant recorded fault-service latency")
	}
	if f := ts.FairnessIndex(); f <= 0 || f > 1 {
		t.Errorf("fairness index %v outside (0, 1]", f)
	}
	// Deterministic: a repeat run is byte-identical.
	again, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(runJSON(t, serial.Run), runJSON(t, again.Run)) {
		t.Error("repeat run differs")
	}
	// And so is the parallel engine.
	cfg.Engine = ParallelEngine
	parallel, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Runtime != parallel.Runtime {
		t.Errorf("runtime: serial %d, parallel %d", serial.Runtime, parallel.Runtime)
	}
	if !bytes.Equal(runJSON(t, serial.Run), runJSON(t, parallel.Run)) {
		t.Error("10k-tenant records differ between engines")
	}
}

// TestZeroTenantGoldenIdentity pins the other half of the tentpole's
// promise: with Config.Tenants nil, both engines still reproduce the
// golden table bit-identically and attach no per-tenant record — the
// multi-tenant machinery is invisible to single-tenant runs.
func TestZeroTenantGoldenIdentity(t *testing.T) {
	vs := goldenVariants()
	for _, name := range []string{"FIFO", "CMCP"} {
		for _, eng := range []EngineKind{SerialEngine, ParallelEngine} {
			t.Run(name+"/"+eng.String(), func(t *testing.T) {
				cfg := vs[name]
				cfg.Engine = eng
				res, err := Simulate(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Run.Tenants != nil {
					t.Error("single-tenant run grew a per-tenant record")
				}
				want := goldenRuns[name]
				if res.Runtime != want.Runtime {
					t.Errorf("runtime = %d, want %d", res.Runtime, want.Runtime)
				}
				for c := 0; c < stats.NumCounters; c++ {
					if got := res.Run.Total(stats.Counter(c)); got != want.Counters[c] {
						t.Errorf("%s = %d, want %d", stats.Counter(c).Name(), got, want.Counters[c])
					}
				}
			})
		}
	}
}

// TestTenantAudited runs churning multi-tenant machines under the
// invariant auditor in both arbitration modes: Σ per-tenant residency
// must equal the device frames in use, no frame may be owned by two
// tenants, and the coremap's counts must match a full recount — every
// few thousand events, with zero violations tolerated.
func TestTenantAudited(t *testing.T) {
	for _, hard := range []bool{false, true} {
		name := "weighted"
		if hard {
			name = "hard-partition"
		}
		t.Run(name, func(t *testing.T) {
			cfg := tenantConfig(16)
			cfg.Tenants.HardPartition = hard
			aud := check.New(check.Config{Every: 1024})
			cfg.Audit = aud
			if _, err := Simulate(cfg); err != nil {
				t.Fatal(err)
			}
			if aud.Audits() == 0 {
				t.Fatal("auditor attached but never ran")
			}
			if vs := aud.Violations(); len(vs) != 0 {
				t.Fatalf("%d violations: %v", len(vs), vs)
			}
		})
	}
}

// TestTenantQuarantineHighCorruption is the satellite regression for
// the Quarantine double-retirement panic: at a corruption rate high
// enough that retries repeatedly revisit condemned frames, a
// multi-tenant run must either survive or fail with the usual wrapped
// errors — never panic and never wedge.
func TestTenantQuarantineHighCorruption(t *testing.T) {
	var rates [fault.NumKinds]float64
	rates[fault.Corrupt] = 0.5
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := tenantConfig(8)
		cfg.NoWarmup = true
		cfg.Faults = &fault.Config{Seed: seed, Rates: rates}
		res, err := Simulate(cfg)
		if err != nil {
			if !errors.Is(err, vm.ErrNoVictim) && !errors.Is(err, vm.ErrIOFailure) {
				t.Fatalf("seed %d: err = %v, want wrapped ErrNoVictim or ErrIOFailure", seed, err)
			}
			continue
		}
		if res.Run.Total(stats.QuarantinedFrames) == 0 {
			t.Errorf("seed %d: survived a 50%% corruption rate without quarantining anything", seed)
		}
	}
}
