package machine

import (
	"strings"
	"sync"
	"testing"

	"cmcp/internal/policy"
	"cmcp/internal/sim"
)

// These tests pin RunMany's batch contract: edge-case inputs (empty
// grids, more workers than runs) behave sensibly, a panicking custom
// policy fails only its own slot, and the RunManyNotify completion hook
// fires exactly once per run.

func TestRunManyZeroConfigs(t *testing.T) {
	results, err := RunMany(nil, 4)
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if results == nil || len(results) != 0 {
		t.Fatalf("results = %v, want empty non-nil slice", results)
	}
}

func TestRunManyClampsParallelism(t *testing.T) {
	// More workers than runs must not deadlock or drop runs; results
	// stay in input order and match a serial execution bit for bit.
	cfgs := []Config{quickCfg(), quickCfg()}
	cfgs[1].Seed = 2
	wide, err := RunMany(cfgs, 64)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if wide[i].Runtime != serial[i].Runtime {
			t.Errorf("run %d: runtime %d (parallel) != %d (serial)", i, wide[i].Runtime, serial[i].Runtime)
		}
	}
}

// panickyPolicy panics on its first victim request.
type panickyPolicy struct{ policy.Policy }

func (panickyPolicy) Victim() (sim.PageID, bool) { panic("policy exploded") }

func TestRunManyPanicRecovered(t *testing.T) {
	good := errConfig(nil)
	good.Policy = PolicySpec{Kind: FIFO, P: -1}
	bad := errConfig(func(policy.Host) policy.Policy {
		return panickyPolicy{policy.NewFIFO()}
	})
	results, err := RunMany([]Config{good, bad, good}, 1)
	if err == nil {
		t.Fatal("panicking policy produced no error")
	}
	for _, frag := range []string{"run 1", "custom", "panicked", "policy exploded"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error does not mention %q:\n%v", frag, err)
		}
	}
	if results[1] != nil {
		t.Error("panicked run returned a result")
	}
	// The panic must not take sibling runs down with it — including the
	// run sharing the panicked worker's scratch arena.
	for _, i := range []int{0, 2} {
		if results[i] == nil || results[i].Runtime == 0 {
			t.Errorf("sibling run %d did not survive the panic", i)
		}
	}
}

func TestRunManyNotifyFiresOncePerRun(t *testing.T) {
	good := errConfig(nil)
	good.Policy = PolicySpec{Kind: FIFO, P: -1}
	bad := errConfig(func(policy.Host) policy.Policy {
		return stubbornPolicy{policy.NewFIFO()}
	})
	cfgs := []Config{good, bad, good, good}

	var mu sync.Mutex
	calls := make(map[int]int)
	sawErr := make(map[int]bool)
	results, err := RunManyNotify(cfgs, 2, func(i int, res *Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		calls[i]++
		sawErr[i] = err != nil
		if (res == nil) == (err == nil) {
			t.Errorf("run %d: notify got res=%v err=%v, want exactly one", i, res, err)
		}
	})
	if err == nil {
		t.Fatal("want aggregated error from run 1")
	}
	if len(calls) != len(cfgs) {
		t.Fatalf("notify covered %d runs, want %d", len(calls), len(cfgs))
	}
	for i := range cfgs {
		if calls[i] != 1 {
			t.Errorf("run %d notified %d times", i, calls[i])
		}
	}
	if !sawErr[1] || sawErr[0] || sawErr[2] || sawErr[3] {
		t.Errorf("notify error flags = %v, want only run 1", sawErr)
	}
	for _, i := range []int{0, 2, 3} {
		if results[i] == nil {
			t.Errorf("run %d result missing", i)
		}
	}
	if results[1] != nil {
		t.Error("failed run has a result")
	}
}
