package machine

import (
	"strings"
	"testing"

	"cmcp/internal/sim"
	"cmcp/internal/workload"
)

func TestFramesClampsToOneMapping(t *testing.T) {
	// A vanishing ratio still yields one whole mapping's worth of frames.
	if got := Frames(100, 0.0001, sim.Size4k); got != 1 {
		t.Errorf("4k: got %d frames, want 1", got)
	}
	if got := Frames(100, 0.0001, sim.Size64k); got != int(sim.Span64k) {
		t.Errorf("64k: got %d frames, want %d", got, sim.Span64k)
	}
	if got := Frames(1000, 0.0001, sim.Size2M); got != int(sim.Span2M) {
		t.Errorf("2M: got %d frames, want %d", got, sim.Span2M)
	}
}

func TestFramesRoundsToWholeMappings(t *testing.T) {
	// 100 pages at 64 kB = 7 mappings = 112 frames full footprint.
	// Half of that is 56, which must round up to a whole mapping: 64.
	if got := Frames(100, 0.5, sim.Size64k); got != 64 {
		t.Errorf("64k rounding: got %d, want 64", got)
	}
	// 1000 pages at 2 MB = 2 mappings = 1024 frames; half is exactly one
	// mapping, no rounding needed.
	if got := Frames(1000, 0.5, sim.Size2M); got != 512 {
		t.Errorf("2M: got %d, want 512", got)
	}
}

func TestFramesCapsAtFullFootprint(t *testing.T) {
	// Ratios above 1 never allocate beyond the (mapping-rounded) footprint.
	if got := Frames(100, 2.0, sim.Size4k); got != 100 {
		t.Errorf("4k: got %d, want 100", got)
	}
	if got := Frames(100, 1.0, sim.Size64k); got != 112 {
		t.Errorf("64k: full footprint rounds to whole mappings: got %d, want 112", got)
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	good := Config{
		Cores:       1,
		Workload:    workload.SCALE().Scale(0.01),
		MemoryRatio: 1,
		PageSize:    sim.Size4k,
		Policy:      PolicySpec{Kind: FIFO, P: -1},
	}
	bad := good
	bad.Cores = 0
	_, err := RunMany([]Config{good, bad, good}, 2)
	if err == nil {
		t.Fatal("invalid config must fail the sweep")
	}
	if !strings.Contains(err.Error(), "run 1") {
		t.Errorf("error %q does not identify the failing run index", err)
	}
}
