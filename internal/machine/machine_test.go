package machine

import (
	"testing"

	"cmcp/internal/obs"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// quickCfg is a small, fast configuration for unit tests.
func quickCfg() Config {
	return Config{
		Cores:       4,
		Workload:    workload.SCALE().Scale(0.02),
		MemoryRatio: 0.5,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      PolicySpec{Kind: FIFO},
		Seed:        1,
		Verify:      true,
	}
}

func TestSimulateRunsToCompletion(t *testing.T) {
	res, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime == 0 {
		t.Error("zero runtime")
	}
	perCore := res.Config.Workload.Scale(1).TotalTouches // unchanged spec
	_ = perCore
	total := res.Run.Total(stats.Touches)
	want := uint64(res.Config.Workload.TotalTouches/res.Config.Cores) * uint64(res.Config.Cores)
	if total != want {
		t.Errorf("touches = %d, want %d", total, want)
	}
	if res.Run.Total(stats.PageFaults) == 0 {
		t.Error("constrained run must fault")
	}
	if res.Sharing == nil {
		t.Error("PSPT run must report sharing histogram")
	}
	if res.PolicyName != "FIFO" {
		t.Errorf("policy = %s", res.PolicyName)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Fatalf("runtimes differ: %d vs %d", a.Runtime, b.Runtime)
	}
	for c := stats.Counter(0); c < stats.Counter(stats.NumCounters); c++ {
		if a.Run.Total(c) != b.Run.Total(c) {
			t.Errorf("counter %s differs: %d vs %d", c.Name(), a.Run.Total(c), b.Run.Total(c))
		}
	}
}

func TestSimulateSeedMatters(t *testing.T) {
	cfg := quickCfg()
	a, _ := Simulate(cfg)
	cfg.Seed = 99
	b, _ := Simulate(cfg)
	if a.Runtime == b.Runtime && a.Run.Total(stats.PageFaults) == b.Run.Total(stats.PageFaults) {
		t.Error("different seeds should almost surely differ")
	}
}

func TestSimulateNoDataMovement(t *testing.T) {
	cfg := quickCfg()
	cfg.MemoryRatio = 1.0
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ev := res.Run.Total(stats.Evictions); ev != 0 {
		t.Errorf("evictions = %d with full memory", ev)
	}
	// With the default warm-up, demand paging happened before the
	// measured phase: the steady state takes no major faults at all.
	if res.Run.Total(stats.PageFaults) != 0 {
		t.Errorf("steady state with full memory must not fault, got %d",
			res.Run.Total(stats.PageFaults))
	}
	// Without warm-up the one-time demand paging is visible: exactly
	// one major fault per page.
	cfg.NoWarmup = true
	res, err = Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The random stream does not necessarily touch every page, but each
	// touched page faults exactly once (no evictions at full memory).
	got := res.Run.Total(stats.PageFaults)
	if got == 0 || got > uint64(res.TotalPages) {
		t.Errorf("cold faults = %d, want in (0, %d]", got, res.TotalPages)
	}
	if res.Run.Total(stats.Evictions) != 0 {
		t.Error("no evictions at full memory")
	}
}

func TestSimulateAllPolicies(t *testing.T) {
	for _, k := range []PolicyKind{FIFO, LRU, CMCP, CLOCK, LFU, Random} {
		cfg := quickCfg()
		cfg.Policy = PolicySpec{Kind: k, P: -1}
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Runtime == 0 {
			t.Errorf("%v: zero runtime", k)
		}
		if res.PolicyName != k.String() {
			t.Errorf("name %s != kind %s", res.PolicyName, k)
		}
	}
	cfg := quickCfg()
	cfg.Policy.Kind = PolicyKind(99)
	if _, err := Simulate(cfg); err == nil {
		t.Error("unknown policy must fail")
	}
	if PolicyKind(99).String() == "" {
		t.Error("unknown kind must still print")
	}
}

func TestSimulateRegularPTBroadcasts(t *testing.T) {
	cfg := quickCfg()
	cfg.Tables = vm.RegularPT
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sharing != nil {
		t.Error("regular PT has no sharing histogram")
	}
	// Broadcast shootdowns: remote invalidations per eviction ≈ cores-1.
	ev := res.Run.Total(stats.Evictions)
	inv := res.Run.Total(stats.RemoteTLBInvalidations)
	if ev == 0 {
		t.Fatal("expected evictions")
	}
	perEv := float64(inv) / float64(ev)
	if perEv < float64(cfg.Cores-1)-0.1 {
		t.Errorf("remote invals per eviction = %.2f, want ~%d (broadcast)", perEv, cfg.Cores-1)
	}
}

func TestSimulatePSPTFewerShootdowns(t *testing.T) {
	reg := quickCfg()
	reg.Tables = vm.RegularPT
	ps := quickCfg()
	a, err := Simulate(reg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(ps)
	if err != nil {
		t.Fatal(err)
	}
	if b.Run.Total(stats.RemoteTLBInvalidations) >= a.Run.Total(stats.RemoteTLBInvalidations) {
		t.Errorf("PSPT invals %d must be below regular PT invals %d",
			b.Run.Total(stats.RemoteTLBInvalidations), a.Run.Total(stats.RemoteTLBInvalidations))
	}
}

func TestSimulateCMCPDynamicP(t *testing.T) {
	cfg := quickCfg()
	cfg.Policy = PolicySpec{Kind: CMCP, P: 0.5, DynamicP: true}
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateLRUShootsDownMore(t *testing.T) {
	fifo := quickCfg()
	lru := quickCfg()
	lru.Policy = PolicySpec{Kind: LRU}
	a, err := Simulate(fifo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(lru)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's core observation: LRU's statistics scanning multiplies
	// remote TLB invalidations.
	if b.Run.Total(stats.RemoteTLBInvalidations) <= a.Run.Total(stats.RemoteTLBInvalidations) {
		t.Errorf("LRU invals %d must exceed FIFO invals %d",
			b.Run.Total(stats.RemoteTLBInvalidations), a.Run.Total(stats.RemoteTLBInvalidations))
	}
}

func TestSimulate64kPages(t *testing.T) {
	cfg := quickCfg()
	cfg.PageSize = sim.Size64k
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames%int(sim.Span64k) != 0 {
		t.Errorf("frames %d not a whole number of 64k mappings", res.Frames)
	}
	if res.Run.Total(stats.PageFaults) == 0 {
		t.Error("expected faults")
	}
	// Fewer mappings → fewer faults than 4k at the same ratio, but more
	// bytes per fault.
	bytesPerFault := float64(res.Run.Total(stats.BytesIn)) / float64(res.Run.Total(stats.PageFaults))
	if bytesPerFault != sim.PageSize64k {
		t.Errorf("bytes per fault = %v, want 64k", bytesPerFault)
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := quickCfg()
	cfg.Cores = 0
	if _, err := Simulate(cfg); err == nil {
		t.Error("zero cores must fail")
	}
	cfg = quickCfg()
	cfg.Workload.Pages = -1
	if _, err := Simulate(cfg); err == nil {
		t.Error("bad workload must fail")
	}
}

func TestFramesRounding(t *testing.T) {
	if f := Frames(1000, 1.0, sim.Size4k); f != 1000 {
		t.Errorf("full 4k frames = %d", f)
	}
	if f := Frames(1000, 0.5, sim.Size4k); f != 500 {
		t.Errorf("half 4k frames = %d", f)
	}
	f := Frames(1000, 1.0, sim.Size64k)
	if f != 1008 { // 63 mappings of 16 pages
		t.Errorf("full 64k frames = %d", f)
	}
	if f := Frames(1000, 0.001, sim.Size2M); f != int(sim.Span2M) {
		t.Errorf("minimum must be one mapping, got %d", f)
	}
	if f := Frames(100, 5.0, sim.Size4k); f != 100 {
		t.Errorf("ratio > 1 must clamp to footprint, got %d", f)
	}
}

func TestRunMany(t *testing.T) {
	cfgs := make([]Config, 6)
	for i := range cfgs {
		cfgs[i] = quickCfg()
		cfgs[i].Seed = uint64(i)
	}
	results, err := RunMany(cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	// Order preserved and deterministic versus serial execution.
	serial, err := Simulate(cfgs[2])
	if err != nil {
		t.Fatal(err)
	}
	if results[2].Runtime != serial.Runtime {
		t.Error("parallel sweep must match serial execution exactly")
	}
	// Errors propagate.
	cfgs[3].Cores = -1
	if _, err := RunMany(cfgs, 2); err == nil {
		t.Error("error must propagate")
	}
	// Degenerate parallelism values.
	if _, err := RunMany(cfgs[:2], 0); err != nil {
		t.Error(err)
	}
}

func TestScannerAdvancesWithLongPolicyWork(t *testing.T) {
	// With LRU scanning everything each tick the scanner cost can
	// exceed the tick interval; the engine must not livelock.
	cfg := quickCfg()
	cfg.Policy = PolicySpec{Kind: LRU, ScanPeriod: 100_000}
	cfg.TickInterval = 50_000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime == 0 {
		t.Error("run must finish")
	}
}

func TestSimulateAdaptivePageSize(t *testing.T) {
	cfg := quickCfg()
	cfg.AdaptivePageSize = true
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime == 0 || res.Run.Total(stats.PageFaults) == 0 {
		t.Error("adaptive run must execute")
	}
	// Deterministic like everything else.
	res2, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != res2.Runtime {
		t.Error("adaptive mode must stay deterministic")
	}
}

func TestSimulatePSPTRebuild(t *testing.T) {
	cfg := quickCfg()
	cfg.PSPTRebuildPeriod = 200_000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rebuilds force re-faulting: minor faults must increase.
	if res.Run.Total(stats.MinorFaults) <= base.Run.Total(stats.MinorFaults) {
		t.Errorf("rebuild minor faults %d must exceed baseline %d",
			res.Run.Total(stats.MinorFaults), base.Run.Total(stats.MinorFaults))
	}
}

func TestWarmupExcludedFromCounters(t *testing.T) {
	// With warm-up, measured touches equal exactly the stream volume;
	// warm-up's one-touch-per-page does not leak into the counters.
	cfg := quickCfg()
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perCore := uint64(cfg.Workload.TotalTouches / cfg.Cores)
	if got := res.Run.Total(stats.Touches); got != perCore*uint64(cfg.Cores) {
		t.Errorf("measured touches = %d, want %d", got, perCore*uint64(cfg.Cores))
	}
	// A NoWarmup run pays the cold demand paging inside the measured
	// window: it must take at least as many major faults. (Runtimes can
	// differ a little either way — the warmed FIFO queue composition is
	// different — so faults are the reliable signal.)
	cold := cfg
	cold.NoWarmup = true
	resCold, err := Simulate(cold)
	if err != nil {
		t.Fatal(err)
	}
	if resCold.Run.Total(stats.PageFaults) < res.Run.Total(stats.PageFaults) {
		t.Errorf("cold faults (%d) below steady-state faults (%d)",
			resCold.Run.Total(stats.PageFaults), res.Run.Total(stats.PageFaults))
	}
}

func TestSimulateCustomFactoryDeterministic(t *testing.T) {
	cfg := quickCfg()
	cfg.Policy = PolicySpec{Factory: func(policy.Host) policy.Policy { return policy.NewClock(nil) }}
	// NewClock(nil) would crash on ScanAccessed; use a FIFO instead to
	// keep the custom path safe.
	cfg.Policy = PolicySpec{Factory: func(policy.Host) policy.Policy { return policy.NewFIFO() }}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Error("custom factory must not break determinism")
	}
	if a.PolicyName != "FIFO" {
		t.Errorf("policy name = %s", a.PolicyName)
	}
}

func TestPSPTRebuildHelpsUnderPhaseShift(t *testing.T) {
	// The §5.6 scenario: when inter-core sharing drifts mid-run, CMCP's
	// core-map counts go stale. Periodic PSPT rebuilds refresh them.
	base := Config{
		Cores:       8,
		Workload:    workload.SCALE().Scale(0.05),
		MemoryRatio: 0.5,
		Tables:      vm.PSPTKind,
		Policy:      PolicySpec{Kind: CMCP, P: 0.875},
		Seed:        4,
	}
	base.Workload.PhaseShift = true
	rebuilt := base
	rebuilt.PSPTRebuildPeriod = 8_000_000
	results, err := RunMany([]Config{base, rebuilt}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild costs shootdowns and re-faults; the payoff is bounded
	// stale-count damage. Require the overhead to stay modest and the
	// stale sharing picture to be measurably refreshed (more minor
	// faults as PTEs re-form).
	if float64(results[1].Runtime) > 1.15*float64(results[0].Runtime) {
		t.Errorf("rebuild run %d far slower than baseline %d", results[1].Runtime, results[0].Runtime)
	}
	if results[1].Run.Total(stats.MinorFaults) <= results[0].Run.Total(stats.MinorFaults) {
		t.Error("rebuild must force sharing to re-form (more minor faults)")
	}
}

// TestProbeRecordsEvents attaches a flight recorder and checks the
// event trace agrees with the aggregate counters: one EvFault per
// counted page fault, one EvEviction per counted eviction, and samples
// on the configured schedule.
func TestProbeRecordsEvents(t *testing.T) {
	rec := obs.NewRecorder(obs.Config{Events: 1 << 20, SampleEvery: 50_000})
	cfg := quickCfg()
	cfg.Policy = PolicySpec{Kind: CMCP, P: 0.5}
	cfg.Probe = rec
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var faults, minors, evictions, promotions uint64
	for _, e := range rec.Events() {
		switch e.Type {
		case obs.EvFault:
			faults++
		case obs.EvMinorFault:
			minors++
		case obs.EvEviction:
			evictions++
		case obs.EvPromotion:
			promotions++
		}
	}
	// The recorder sees warm-up plus measured phase; the Run counters
	// are rebased to the measured phase only, so events >= counters.
	if rebased := res.Run.Total(stats.PageFaults); faults < rebased || faults == 0 {
		t.Errorf("trace has %d faults, counters (measured phase) %d", faults, rebased)
	}
	if rebased := res.Run.Total(stats.MinorFaults); minors < rebased {
		t.Errorf("trace has %d minor faults, counters %d", minors, rebased)
	}
	if rebased := res.Run.Total(stats.Evictions); evictions < rebased || evictions == 0 {
		t.Errorf("trace has %d evictions, counters %d", evictions, rebased)
	}
	if promotions == 0 {
		t.Error("CMCP run recorded no promotions")
	}
	if rec.Dropped() != 0 {
		t.Errorf("%d events dropped with an oversized ring", rec.Dropped())
	}

	samples := rec.Samples()
	if len(samples) < 2 {
		t.Fatalf("got %d samples", len(samples))
	}
	for i, s := range samples {
		if i > 0 && s.Time <= samples[i-1].Time {
			t.Fatalf("sample %d time %d not increasing", i, s.Time)
		}
		if s.Resident < 0 || s.FIFOLen < 0 || s.PrioLen < 0 {
			t.Fatalf("sample %d missing CMCP group split: %+v", i, s)
		}
	}
	last := samples[len(samples)-1]
	if last.Counters[stats.Touches] == 0 {
		t.Error("final sample has zero cumulative touches")
	}
}

// TestProbeDoesNotPerturbSimulation verifies observation is free in
// virtual time: identical Runtime and counters with and without a
// recorder attached.
func TestProbeDoesNotPerturbSimulation(t *testing.T) {
	plain, err := Simulate(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Probe = obs.NewRecorder(obs.Config{SampleEvery: 10_000})
	probed, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Runtime != probed.Runtime {
		t.Errorf("tracing changed runtime: %d vs %d", plain.Runtime, probed.Runtime)
	}
	for c := 0; c < stats.NumCounters; c++ {
		if a, b := plain.Run.Total(stats.Counter(c)), probed.Run.Total(stats.Counter(c)); a != b {
			t.Errorf("tracing changed counter %s: %d vs %d", stats.Counter(c).Name(), a, b)
		}
	}
}
