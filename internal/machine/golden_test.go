package machine

import (
	"testing"

	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// The golden table below pins every per-policy counter, runtime and
// resident count bit-identically. If an intentional behaviour change
// ever breaks this test, re-capture the table in the same commit and
// say why.
//
// Last re-capture: two deliberate fixes changed simulated behaviour.
// (1) CMCP's aging timer no longer fires on the very first scanner
// tick (it used to decay freshly promoted keys a full period early);
// this shifts the "CMCP" entry. (2) The TLB FIFO sets now compact
// away stale queue slots once the queue exceeds 4*capacity+64; under
// the old lazy cleanup a page reinserted after an invalidation could
// inherit an older slot and be evicted early, so variants whose
// queues cross the threshold ("FIFO", "CMCP", "CLOCK", "Random",
// "FIFO/regularPT") shifted slightly. "LRU", "LFU" and the adaptive /
// 64k / rebuild CMCP variants were bit-identical across both fixes.

type goldenRun struct {
	Runtime  sim.Cycles
	Resident int
	Counters [stats.NumCounters]uint64 // Total() per counter, index order
}

var goldenRuns = map[string]goldenRun{
	"FIFO":           {Runtime: 46770987, Resident: 461, Counters: [stats.NumCounters]uint64{2861, 1952, 4029, 4029, 9566, 4753, 4813, 2861, 2401, 11718656, 9834496, 1005760, 0, 180000}},
	"LRU":            {Runtime: 73258880, Resident: 461, Counters: [stats.NumCounters]uint64{1971, 820, 34377, 2252, 32133, 0, 32133, 1971, 1509, 8073216, 6180864, 277483, 0, 180000}},
	"CMCP":           {Runtime: 41150484, Resident: 461, Counters: [stats.NumCounters]uint64{1988, 746, 2318, 2318, 8817, 6081, 2736, 1988, 1757, 8142848, 7196672, 817493, 0, 180000}},
	"CLOCK":          {Runtime: 52852378, Resident: 461, Counters: [stats.NumCounters]uint64{2116, 983, 13854, 2528, 11797, 151, 11646, 2116, 1654, 8667136, 6774784, 202599, 0, 180000}},
	"LFU":            {Runtime: 79270182, Resident: 461, Counters: [stats.NumCounters]uint64{2834, 1926, 36687, 4008, 32712, 0, 32712, 2834, 2373, 11608064, 9719808, 660346, 0, 180000}},
	"Random":         {Runtime: 48710219, Resident: 461, Counters: [stats.NumCounters]uint64{3158, 1740, 4216, 4216, 9403, 4505, 4898, 3158, 2799, 12935168, 11464704, 1041643, 0, 180000}},
	"FIFO/regularPT": {Runtime: 63760892, Resident: 461, Counters: [stats.NumCounters]uint64{2905, 0, 20335, 20335, 9580, 4708, 4872, 2905, 2445, 11898880, 10014720, 0, 0, 180000}},
	"CMCP/adaptive":  {Runtime: 60531062, Resident: 100, Counters: [stats.NumCounters]uint64{3872, 210, 3547, 3547, 4082, 0, 4082, 3828, 3256, 56410112, 38465536, 7848036, 0, 180000}},
	"CMCP/64k":       {Runtime: 45522393, Resident: 29, Counters: [stats.NumCounters]uint64{1892, 574, 2146, 2146, 2466, 0, 2466, 1892, 1876, 123994112, 122945536, 13939812, 0, 180000}},
	"CMCP/rebuild":   {Runtime: 48536231, Resident: 461, Counters: [stats.NumCounters]uint64{2251, 19129, 21344, 140, 21380, 0, 21380, 2251, 2007, 9220096, 8220672, 462859, 0, 180000}},
}

// goldenConfig is the pinned run configuration the table was captured
// under. Do not change it without re-capturing every entry.
func goldenConfig() Config {
	return Config{
		Cores:       8,
		Workload:    workload.SCALE().Scale(0.05),
		MemoryRatio: 0.5,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Seed:        7,
	}
}

func goldenVariants() map[string]Config {
	vs := make(map[string]Config)
	for _, k := range []PolicyKind{FIFO, LRU, CMCP, CLOCK, LFU, Random} {
		cfg := goldenConfig()
		cfg.Policy = PolicySpec{Kind: k, P: -1}
		vs[k.String()] = cfg
	}
	cfg := goldenConfig()
	cfg.Policy = PolicySpec{Kind: FIFO, P: -1}
	cfg.Tables = vm.RegularPT
	vs["FIFO/regularPT"] = cfg

	cfg = goldenConfig()
	cfg.Policy = PolicySpec{Kind: CMCP, P: 0.875}
	cfg.AdaptivePageSize = true
	vs["CMCP/adaptive"] = cfg

	cfg = goldenConfig()
	cfg.Policy = PolicySpec{Kind: CMCP, P: 0.5}
	cfg.PageSize = sim.Size64k
	vs["CMCP/64k"] = cfg

	cfg = goldenConfig()
	cfg.Policy = PolicySpec{Kind: CMCP, P: 0.5}
	cfg.PSPTRebuildPeriod = 300_000
	vs["CMCP/rebuild"] = cfg
	return vs
}

func TestGoldenCountersBitIdentical(t *testing.T) {
	for name, cfg := range goldenVariants() {
		t.Run(name, func(t *testing.T) {
			want, ok := goldenRuns[name]
			if !ok {
				t.Fatalf("no golden entry for %q", name)
			}
			res, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Runtime != want.Runtime {
				t.Errorf("runtime = %d, want %d", res.Runtime, want.Runtime)
			}
			if res.Resident != want.Resident {
				t.Errorf("resident = %d, want %d", res.Resident, want.Resident)
			}
			for c := 0; c < stats.NumCounters; c++ {
				if got := res.Run.Total(stats.Counter(c)); got != want.Counters[c] {
					t.Errorf("%s = %d, want %d", stats.Counter(c).Name(), got, want.Counters[c])
				}
			}
		})
	}
}

// TestGoldenViaRunMany re-runs two golden variants through the
// parallel driver: the per-worker scratch arenas must not perturb
// results, and back-to-back runs on one recycled arena must match the
// fresh-arena outcome exactly.
func TestGoldenViaRunMany(t *testing.T) {
	vs := goldenVariants()
	cfgs := []Config{vs["FIFO"], vs["CMCP"], vs["FIFO"], vs["CMCP"]}
	results, err := RunMany(cfgs, 1) // one worker: all four share an arena
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		name := []string{"FIFO", "CMCP", "FIFO", "CMCP"}[i]
		want := goldenRuns[name]
		if res.Runtime != want.Runtime {
			t.Errorf("run %d (%s): runtime = %d, want %d", i, name, res.Runtime, want.Runtime)
		}
		for c := 0; c < stats.NumCounters; c++ {
			if got := res.Run.Total(stats.Counter(c)); got != want.Counters[c] {
				t.Errorf("run %d (%s): %s = %d, want %d", i, name, stats.Counter(c).Name(), got, want.Counters[c])
			}
		}
	}
}

// TestGoldenHistBitIdentical re-runs every golden variant with
// histograms attached: all counters, the runtime and the resident count
// must stay bit-identical (histograms are read-only instrumentation,
// like Probe/Audit), the histograms themselves must be populated and
// deterministic across runs, and the fault-service count must equal the
// measured phase's fault counters exactly.
func TestGoldenHistBitIdentical(t *testing.T) {
	for name, cfg := range goldenVariants() {
		t.Run(name, func(t *testing.T) {
			want := goldenRuns[name]
			cfg.Hist = true
			res, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Runtime != want.Runtime {
				t.Errorf("runtime = %d, want %d (histograms perturbed the run)", res.Runtime, want.Runtime)
			}
			if res.Resident != want.Resident {
				t.Errorf("resident = %d, want %d", res.Resident, want.Resident)
			}
			for c := 0; c < stats.NumCounters; c++ {
				if got := res.Run.Total(stats.Counter(c)); got != want.Counters[c] {
					t.Errorf("%s = %d, want %d", stats.Counter(c).Name(), got, want.Counters[c])
				}
			}
			hs := res.Run.Hists
			if hs == nil {
				t.Fatal("Hist: true produced no histograms")
			}
			// Fault-service samples = major + minor faults of the measured
			// phase (the warm-up reset must have dropped warm-up faults).
			faults := want.Counters[stats.PageFaults] + want.Counters[stats.MinorFaults]
			if got := hs.Get(stats.FaultServiceHist).Count; got != faults {
				t.Errorf("fault_service count = %d, want %d", got, faults)
			}
			if got := hs.Get(stats.EvictionHist).Count; got != want.Counters[stats.Evictions] {
				t.Errorf("eviction count = %d, want %d", got, want.Counters[stats.Evictions])
			}
			for id := stats.HistID(0); id < stats.HistID(stats.NumHists); id++ {
				if !hs.Get(id).CheckInvariant() {
					t.Errorf("%s: invariant broken", id.Name())
				}
			}
			// Determinism: a second run yields byte-identical histograms.
			res2, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if *res2.Run.Hists != *hs {
				t.Error("histograms differ between identical runs")
			}
		})
	}
}
