package machine

import (
	"bytes"
	"testing"

	"cmcp/internal/check"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
)

// TestSingleSocketGoldenIdentity pins the NUMA layer's bit-identity
// contract: a nil topology and an explicit single-socket topology both
// reproduce the golden table exactly, on both engines, with every NUMA
// counter zero — the multi-socket machinery is invisible to flat runs.
// (Mirrors TestZeroTenantGoldenIdentity for the tenant layer.)
func TestSingleSocketGoldenIdentity(t *testing.T) {
	vs := goldenVariants()
	for _, name := range []string{"FIFO", "CMCP"} {
		for _, topo := range []*sim.Topology{nil, sim.DefaultTopology(1, 8)} {
			label := name + "/nil"
			if topo != nil {
				label = name + "/1x8"
			}
			for _, eng := range []EngineKind{SerialEngine, ParallelEngine} {
				t.Run(label+"/"+eng.String(), func(t *testing.T) {
					cfg := vs[name]
					cfg.Topology = topo
					cfg.Engine = eng
					res, err := Simulate(cfg)
					if err != nil {
						t.Fatal(err)
					}
					want := goldenRuns[name]
					if res.Runtime != want.Runtime {
						t.Errorf("runtime = %d, want %d", res.Runtime, want.Runtime)
					}
					for c := 0; c < stats.NumCounters; c++ {
						if got := res.Run.Total(stats.Counter(c)); got != want.Counters[c] {
							t.Errorf("%s = %d, want %d", stats.Counter(c).Name(), got, want.Counters[c])
						}
					}
					for _, c := range []stats.Counter{
						stats.FilteredShootdowns, stats.CrossSocketIPIs, stats.RemoteWalks,
						stats.RemotePTConsults, stats.ReplicaSyncs, stats.PTMigrations,
					} {
						if got := res.Run.Total(c); got != 0 {
							t.Errorf("flat run counted %s = %d, want 0", c.Name(), got)
						}
					}
				})
			}
		}
	}
}

// TestTopologyEnginesBitIdentical extends the engine-equivalence
// promise to multi-socket machines: a 2-socket run — PSPT with
// replica migration and regular tables with remote walks — must be
// bit-identical between the serial and epoch-parallel engines, whole
// Run record included.
func TestTopologyEnginesBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		tables vm.TableKind
	}{{"pspt", vm.PSPTKind}, {"regular", vm.RegularPT}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goldenConfig()
			cfg.Policy = PolicySpec{Kind: CMCP, P: -1}
			cfg.Tables = tc.tables
			cfg.Topology = sim.DefaultTopology(2, 4)
			cfg.Engine = SerialEngine
			serial, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine = ParallelEngine
			parallel, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Runtime != parallel.Runtime {
				t.Errorf("runtime: serial %d, parallel %d", serial.Runtime, parallel.Runtime)
			}
			if a, b := runJSON(t, serial.Run), runJSON(t, parallel.Run); !bytes.Equal(a, b) {
				t.Error("2-socket records differ between engines")
			}
		})
	}
}

// TestShootdownFilteringReducesCrossSocketIPIs is the tentpole's
// measurable claim: on a 2-socket machine, PSPT's precise core maps
// filter shootdown targets down to actual mappers, so the cross-socket
// IPI count drops below the regular shared table's all-cores broadcast
// — and the filtered-target counter is live on PSPT, dead on regular
// tables (a broadcast filters nothing).
func TestShootdownFilteringReducesCrossSocketIPIs(t *testing.T) {
	run := func(tables vm.TableKind) *Result {
		cfg := goldenConfig()
		cfg.Policy = PolicySpec{Kind: FIFO, P: -1}
		cfg.Tables = tables
		cfg.Topology = sim.DefaultTopology(2, 4)
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pspt := run(vm.PSPTKind)
	regular := run(vm.RegularPT)
	pIPI := pspt.Run.Total(stats.CrossSocketIPIs)
	rIPI := regular.Run.Total(stats.CrossSocketIPIs)
	if rIPI == 0 {
		t.Fatal("regular-PT broadcast crossed no socket boundary; the workload exercised nothing")
	}
	if pIPI >= rIPI {
		t.Errorf("PSPT cross-socket IPIs = %d, want < regular-PT broadcast's %d", pIPI, rIPI)
	}
	if got := pspt.Run.Total(stats.FilteredShootdowns); got == 0 {
		t.Error("PSPT filtered no shootdown targets")
	}
	if got := regular.Run.Total(stats.FilteredShootdowns); got != 0 {
		t.Errorf("regular PT filtered %d shootdown targets; a broadcast filters nothing", got)
	}
	if got := regular.Run.Total(stats.RemoteWalks); got == 0 {
		t.Error("regular PT on socket 1 charged no remote walks")
	}
	if got := pspt.Run.Total(stats.RemoteWalks); got != 0 {
		t.Errorf("PSPT charged %d remote walks; its tables are socket-local", got)
	}
}

// TestTopologyAudited runs a 2-socket PSPT machine under the invariant
// auditor: the numa module's replica-coherence checks (Home validity,
// Replicas covering every mapping core's socket) must pass with zero
// violations while migrations actually occur.
func TestTopologyAudited(t *testing.T) {
	cfg := goldenConfig()
	cfg.Policy = PolicySpec{Kind: CMCP, P: -1}
	cfg.Topology = sim.DefaultTopology(2, 4)
	aud := check.New(check.Config{Every: 1024})
	cfg.Audit = aud
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	if aud.Audits() == 0 {
		t.Fatal("auditor attached but never ran")
	}
	if vs := aud.Violations(); len(vs) != 0 {
		t.Fatalf("%d violations: %v", len(vs), vs)
	}
}

// TestTopologyValidateRejected pins the loud-failure contract for
// malformed topologies: a socket grid too small for the core count
// fails Simulate up front, not mid-run.
func TestTopologyValidateRejected(t *testing.T) {
	cfg := goldenConfig()
	cfg.Policy = PolicySpec{Kind: FIFO, P: -1}
	cfg.Topology = sim.DefaultTopology(2, 2) // 4 seats for 8 cores
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("undersized topology accepted")
	}
}
