package machine

import (
	"math/rand"
	"testing"

	"cmcp/internal/check"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/trace"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// TestAuditGoldenVariants runs every golden configuration with the
// invariant auditor attached. The ten variants cover all six policies,
// both table kinds, adaptive sizing, 64 kB pages and periodic PSPT
// rebuild, so a zero-violation sweep here certifies that the five
// bookkeeping views stay synchronized across every engine feature the
// golden table pins.
func TestAuditGoldenVariants(t *testing.T) {
	for name, cfg := range goldenVariants() {
		t.Run(name, func(t *testing.T) {
			aud := check.New(check.Config{Every: 2048})
			cfg.Audit = aud
			if _, err := Simulate(cfg); err != nil {
				t.Fatal(err)
			}
			if aud.Audits() == 0 {
				t.Fatal("auditor attached but never ran")
			}
			if vs := aud.Violations(); len(vs) != 0 {
				t.Fatalf("%d violations: %v", len(vs), vs)
			}
		})
	}
}

// TestAuditDoesNotPerturbResults proves the auditor's read-only claim:
// an audited run must be bit-identical to an unaudited one.
func TestAuditDoesNotPerturbResults(t *testing.T) {
	cfg := goldenVariants()["CMCP"]
	plain, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Audit = check.New(check.Config{Every: 64})
	audited, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Runtime != audited.Runtime {
		t.Errorf("runtime %d with audit, %d without", audited.Runtime, plain.Runtime)
	}
	for c := 0; c < stats.NumCounters; c++ {
		if a, b := audited.Run.Total(stats.Counter(c)), plain.Run.Total(stats.Counter(c)); a != b {
			t.Errorf("%s = %d with audit, %d without", stats.Counter(c).Name(), a, b)
		}
	}
}

// TestAuditRandomConfigs is the randomized property harness: short
// audited simulations across random points of the configuration space
// (cores × page size × tables × policy × memory ratio × seed, with
// adaptive sizing and PSPT rebuild mixed in). Every run must complete
// without an error and without a single invariant violation.
func TestAuditRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	kinds := []PolicyKind{FIFO, LRU, CMCP, CLOCK, LFU, Random}
	sizes := []sim.PageSize{sim.Size4k, sim.Size64k, sim.Size2M}
	tables := []vm.TableKind{vm.PSPTKind, vm.RegularPT}
	const runs = 60
	for i := 0; i < runs; i++ {
		cores := 1 << rng.Intn(4) // 1, 2, 4 or 8
		pages := 256 + rng.Intn(512)
		var wl workload.Spec
		switch rng.Intn(3) {
		case 0:
			wl = workload.Private(pages, 4000)
		case 1:
			wl = workload.SharedAll(pages, 4000, cores)
		default:
			wl = workload.Uniform(pages, 4000)
		}
		cfg := Config{
			Cores:       cores,
			Workload:    wl,
			MemoryRatio: 0.3 + 0.7*rng.Float64(),
			PageSize:    sizes[rng.Intn(len(sizes))],
			Tables:      tables[rng.Intn(len(tables))],
			Policy:      PolicySpec{Kind: kinds[rng.Intn(len(kinds))], P: -1},
			Seed:        rng.Uint64(),
			Verify:      true,
			Audit:       check.New(check.Config{Every: 256}),
		}
		if cfg.Tables == vm.PSPTKind {
			if rng.Intn(4) == 0 {
				cfg.AdaptivePageSize = true
			}
			if rng.Intn(4) == 0 {
				cfg.PSPTRebuildPeriod = 200_000
			}
		}
		desc := func() string {
			return cfg.Policy.Kind.String() + "/" + cfg.Tables.String() + "/" + cfg.PageSize.String()
		}
		if _, err := Simulate(cfg); err != nil {
			t.Errorf("config %d (%s, %d cores, ratio %.2f, seed %d): %v",
				i, desc(), cfg.Cores, cfg.MemoryRatio, cfg.Seed, err)
			continue
		}
		if cfg.Audit.Audits() == 0 {
			t.Errorf("config %d (%s): auditor never ran", i, desc())
		}
	}
}

// TestAuditFIFODifferentialReplay cross-validates the live engine
// against the offline replayer: for a single-core FIFO run (no warm-up,
// so the measured phase is the whole access stream) the simulator's
// fault count must equal what internal/trace computes by replaying the
// captured access trace through the same policy at the same capacity.
// TLBs, costs and locks must not change *which* accesses fault.
func TestAuditFIFODifferentialReplay(t *testing.T) {
	wl := workload.Uniform(400, 6000)
	const seed = 9
	layout, err := wl.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Capture(layout, seed)

	cfg := Config{
		Cores:       1,
		Workload:    wl,
		MemoryRatio: 0.5,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      PolicySpec{Kind: FIFO, P: -1},
		Seed:        seed,
		NoWarmup:    true,
		Audit:       check.New(check.Config{Every: 512}),
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := trace.CountFaults(tr, res.Frames, sim.Size4k, policy.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Run.Total(stats.PageFaults); got != want {
		t.Errorf("live simulation faulted %d times, offline replay says %d", got, want)
	}
}
