package machine

import (
	"errors"
	"strings"
	"testing"

	"cmcp/internal/check"
	"cmcp/internal/fault"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// recoveryCounters are the counters the fault-injection machinery feeds;
// they must be exactly zero on any fault-free run (the golden table pins
// that) and deterministic on any faulty one.
var recoveryCounters = []stats.Counter{
	stats.FaultsInjected,
	stats.RecoveryRetries,
	stats.TxRollbacks,
	stats.QuarantinedFrames,
	stats.ResentShootdowns,
	stats.DegradedPages,
}

// faultConfig is the standing acceptance configuration: the paper's
// SCALE-like workload on a 56-core machine under CMCP, memory
// constrained enough to page steadily. NoWarmup keeps warm-up faults in
// the measured counters so the injection totals cover the whole run.
func faultConfig(seed uint64, rate float64) Config {
	return Config{
		Cores:       56,
		Workload:    workload.SCALE(),
		MemoryRatio: 0.3,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      PolicySpec{Kind: CMCP, P: -1},
		Seed:        11,
		NoWarmup:    true,
		Faults:      fault.Uniform(seed, rate),
	}
}

// TestZeroRateFaultsBitIdentical pins the determinism guarantee at its
// sharpest point: attaching an injector whose rates are all zero must
// leave every golden variant bit-identical to the nil-Faults capture,
// because zero-rate kinds never draw from their RNG streams.
func TestZeroRateFaultsBitIdentical(t *testing.T) {
	for _, name := range []string{"CMCP", "FIFO/regularPT", "CMCP/64k"} {
		cfg := goldenVariants()[name]
		cfg.Faults = &fault.Config{Seed: 12345}
		want := goldenRuns[name]
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Runtime != want.Runtime {
			t.Errorf("%s: runtime = %d, want golden %d", name, res.Runtime, want.Runtime)
		}
		for c := 0; c < stats.NumCounters; c++ {
			if got := res.Run.Total(stats.Counter(c)); got != want.Counters[c] {
				t.Errorf("%s: %s = %d, want golden %d", name, stats.Counter(c).Name(), got, want.Counters[c])
			}
		}
	}
}

// TestFaultInjectionDeterministic runs one faulty configuration twice —
// once directly and once through RunMany's recycled arenas — and
// requires bit-identical Results including every recovery counter.
func TestFaultInjectionDeterministic(t *testing.T) {
	cfg := faultConfig(99, 1e-4)
	cfg.Workload = cfg.Workload.Scale(0.25)
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunMany([]Config{cfg, cfg}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range results {
		if b.Runtime != a.Runtime {
			t.Errorf("run %d: runtime = %d, want %d", i, b.Runtime, a.Runtime)
		}
		if b.Quarantined != a.Quarantined {
			t.Errorf("run %d: quarantined = %d, want %d", i, b.Quarantined, a.Quarantined)
		}
		for c := 0; c < stats.NumCounters; c++ {
			if got, want := b.Run.Total(stats.Counter(c)), a.Run.Total(stats.Counter(c)); got != want {
				t.Errorf("run %d: %s = %d, want %d", i, stats.Counter(c).Name(), got, want)
			}
		}
	}
}

// TestFaultRecoverySCALE56 is the headline acceptance run: SCALE on 56
// cores under CMCP with every fault kind injected at 1e-4 must complete
// without error while actually exercising the recovery paths.
func TestFaultRecoverySCALE56(t *testing.T) {
	res, err := Simulate(faultConfig(99, 1e-4))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []stats.Counter{stats.RecoveryRetries, stats.TxRollbacks, stats.QuarantinedFrames} {
		if res.Run.Total(c) == 0 {
			t.Errorf("%s = 0, want nonzero at rate 1e-4", c.Name())
		}
	}
	if got, want := res.Quarantined, int(res.Run.Total(stats.QuarantinedFrames)); got != want {
		t.Errorf("Result.Quarantined = %d, counter says %d (no warm-up: they must agree)", got, want)
	}
	if res.Quarantined >= res.Frames {
		t.Errorf("quarantined %d of %d frames: device should survive this rate", res.Quarantined, res.Frames)
	}
}

// TestQuarantineToExhaustion injects corruption on every transfer: each
// page-in attempt retires one more frame, so the device must run out of
// healthy frames and the run must end in a wrapped ErrNoVictim carrying
// the quarantine context — never an ErrIOFailure and never a hang.
func TestQuarantineToExhaustion(t *testing.T) {
	var rates [fault.NumKinds]float64
	rates[fault.Corrupt] = 1
	cfg := Config{
		Cores:       2,
		Workload:    workload.Uniform(64, 500),
		MemoryRatio: 0.5,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      PolicySpec{Kind: FIFO, P: -1},
		Seed:        5,
		NoWarmup:    true,
		Faults:      &fault.Config{Seed: 1, Rates: rates},
	}
	_, err := Simulate(cfg)
	if !errors.Is(err, vm.ErrNoVictim) {
		t.Fatalf("err = %v, want wrapped ErrNoVictim", err)
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Errorf("err %q does not carry the quarantine context", err)
	}
}

// TestFaultMatrix sweeps seeds and policies at a survivable rate; every
// cell must complete. CI runs this under -race as the fault matrix job.
func TestFaultMatrix(t *testing.T) {
	var cfgs []Config
	for _, kind := range []PolicyKind{CMCP, FIFO} {
		for _, seed := range []uint64{1, 2, 3} {
			cfg := faultConfig(seed, 5e-5)
			cfg.Workload = cfg.Workload.Scale(0.25)
			cfg.Policy = PolicySpec{Kind: kind, P: -1}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := RunMany(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("run %d: nil result", i)
		}
		if res.Run.Total(stats.FaultsInjected) == 0 {
			t.Errorf("run %d (%s seed %d): no faults injected", i, res.PolicyName, res.Config.Faults.Seed)
		}
	}
}

// TestDegradedModeUnderAudit injects only PSPT bookkeeping skew with the
// invariant auditor attached: the auditor must recognize the phantom
// core bits as injected skew, repair them through DegradePage instead of
// failing the run, and account the affected pages as degraded.
func TestDegradedModeUnderAudit(t *testing.T) {
	var rates [fault.NumKinds]float64
	rates[fault.MapSkew] = 0.02
	cfg := goldenConfig()
	cfg.Policy = PolicySpec{Kind: CMCP, P: -1}
	cfg.NoWarmup = true
	cfg.Faults = &fault.Config{Seed: 4, Rates: rates}
	cfg.Audit = check.New(check.Config{Every: 512})
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("audited skew run must recover, got %v", err)
	}
	if res.Run.Total(stats.FaultsInjected) == 0 {
		t.Fatal("no skew injected; raise the rate")
	}
	if res.Run.Total(stats.DegradedPages) == 0 {
		t.Error("auditor never degraded a page despite injected skew")
	}
}
