package machine

import (
	"fmt"
	"runtime"
	"sync"

	"cmcp/internal/dense"
)

// RunMany executes independent simulations concurrently, preserving
// input order in the returned slice. Each Simulate call is
// single-threaded and deterministic, so the sweep is embarrassingly
// parallel: this is how the experiment harness exploits the host
// machine's cores without sacrificing reproducibility.
func RunMany(cfgs []Config, parallelism int) ([]*Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(cfgs) {
		parallelism = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a scratch arena: the page-indexed tables
			// of run i+1 reuse the slabs of run i instead of reallocating
			// them. Results never reference scratch storage, so recycling
			// between runs is safe.
			sc := &dense.Scratch{}
			for i := range work {
				results[i], errs[i] = simulate(cfgs[i], sc)
				sc.Recycle()
			}
		}()
	}
	for i := range cfgs {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("machine: run %d: %w", i, err)
		}
	}
	return results, nil
}
