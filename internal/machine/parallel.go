package machine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"cmcp/internal/dense"
)

// RunMany executes independent simulations concurrently, preserving
// input order in the returned slice. Each Simulate call is
// single-threaded and deterministic, so the sweep is embarrassingly
// parallel: this is how the experiment harness exploits the host
// machine's cores without sacrificing reproducibility.
//
// Failures aggregate rather than short-circuit: every run executes, the
// returned slice always has len(cfgs) entries (nil where a run failed),
// and the error joins one wrapped error per failed run — each carrying
// the run index, policy, workload kind and seed, so a sweep with three
// broken points names all three. errors.Is still matches the underlying
// sentinels (vm.ErrNoVictim etc.) through the join.
func RunMany(cfgs []Config, parallelism int) ([]*Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(cfgs) {
		parallelism = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a scratch arena: the page-indexed tables
			// of run i+1 reuse the slabs of run i instead of reallocating
			// them. Results never reference scratch storage, so recycling
			// between runs is safe.
			sc := &dense.Scratch{}
			for i := range work {
				results[i], errs[i] = simulate(cfgs[i], sc)
				sc.Recycle()
			}
		}()
	}
	for i := range cfgs {
		work <- i
	}
	close(work)
	wg.Wait()
	var joined []error
	for i, err := range errs {
		if err != nil {
			cfg := &cfgs[i]
			pol := cfg.Policy.Kind.String()
			if cfg.Policy.Factory != nil {
				pol = "custom"
			}
			joined = append(joined, fmt.Errorf("machine: run %d (policy %s, workload %q, seed %d): %w",
				i, pol, cfg.Workload.Name, cfg.Seed, err))
		}
	}
	return results, errors.Join(joined...)
}
