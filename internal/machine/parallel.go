package machine

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"cmcp/internal/dense"
)

// RunMany executes independent simulations concurrently, preserving
// input order in the returned slice. Each Simulate call is
// single-threaded and deterministic, so the sweep is embarrassingly
// parallel: this is how the experiment harness exploits the host
// machine's cores without sacrificing reproducibility.
//
// Failures aggregate rather than short-circuit: every run executes, the
// returned slice always has len(cfgs) entries (nil where a run failed),
// and the error joins one wrapped error per failed run — each carrying
// the run index, policy, workload kind and seed, so a sweep with three
// broken points names all three. errors.Is still matches the underlying
// sentinels (vm.ErrNoVictim etc.) through the join. A panic inside one
// run — a faulty custom Policy.Factory, say — is recovered and becomes
// that slot's error the same way; the sibling runs complete normally.
func RunMany(cfgs []Config, parallelism int) ([]*Result, error) {
	return RunManyNotify(cfgs, parallelism, nil)
}

// RunManyNotify is RunMany with a completion hook: when notify is
// non-nil it is invoked once per run, as soon as that run finishes,
// with the run's input index, its result and its error (exactly one of
// which is non-nil). This is how the sweep runner journals completed
// runs incrementally instead of waiting for the whole batch.
//
// notify is called from the worker goroutines, concurrently: it must
// be safe for concurrent use, and long hooks serialize the workers
// behind whatever lock they take.
func RunManyNotify(cfgs []Config, parallelism int, notify func(i int, res *Result, err error)) ([]*Result, error) {
	if len(cfgs) == 0 {
		// Nothing to sweep: no workers are spawned at all.
		return []*Result{}, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(cfgs) {
		parallelism = len(cfgs) // never more workers than runs
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a scratch arena: the page-indexed tables
			// of run i+1 reuse the slabs of run i instead of reallocating
			// them. Results never reference scratch storage, so recycling
			// between runs is safe.
			sc := &dense.Scratch{}
			for i := range work {
				results[i], errs[i] = runRecovered(cfgs[i], &sc)
				sc.Recycle()
				if notify != nil {
					notify(i, results[i], errs[i])
				}
			}
		}()
	}
	for i := range cfgs {
		work <- i
	}
	close(work)
	wg.Wait()
	var joined []error
	for i, err := range errs {
		if err != nil {
			cfg := &cfgs[i]
			pol := cfg.Policy.Kind.String()
			if cfg.Policy.Factory != nil {
				pol = "custom"
			}
			joined = append(joined, fmt.Errorf("machine: run %d (policy %s, workload %q, seed %d): %w",
				i, pol, cfg.Workload.Name, cfg.Seed, err))
		}
	}
	return results, errors.Join(joined...)
}

// runRecovered executes one simulation, converting a panic anywhere in
// the engine — most plausibly a faulty custom Policy.Factory or policy
// implementation — into that run's error, so one broken run cannot
// kill the whole sweep process and lose every sibling result.
func runRecovered(cfg Config, sc **dense.Scratch) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			// The abandoned run may still hold scratch slabs; hand the
			// worker a fresh arena rather than recycling torn state.
			*sc = &dense.Scratch{}
			res = nil
			err = fmt.Errorf("panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return simulate(cfg, *sc)
}
