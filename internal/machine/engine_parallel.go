// engine_parallel.go is the epoch-parallel simulation engine: a
// drop-in replacement for the serial event loop that produces
// bit-identical Results at a multiple of the throughput.
//
// The serial engine interleaves every touch of every core through one
// heap. Almost all of those touches are TLB hits that read and write
// nothing shared: their only effects are the core's own clock advance,
// its own TLB's FIFO evolution, per-core counters and idempotent
// accessed/dirty bits. The parallel engine exploits that by splitting
// the loop in two:
//
//   - Probe (parallel): each blocked core speculatively classifies a
//     window of upcoming touches against live state — the real TLB
//     lookups and walk-inserts run, journaled for undo — batching
//     consecutive same-page L1 hits into bursts. Probers touch only
//     core-local state (own TLB, own PSPT table memo) and read the
//     shared tables through read-only walks, so any number of cores
//     probe concurrently on worker goroutines.
//
//   - Sweep (serial): the engine repeatedly picks the earliest
//     serializing event E — a page fault, a stream retirement or a
//     scanner tick — in the same packed (clock, coreID) order the heap
//     would use, commits every speculative touch strictly before E in
//     one call per burst, and then runs the event against the real
//     manager exactly as the serial loop would.
//
// Speculation is only wrong when a serializing event invalidates a TLB
// entry that a pending window observed or produced (TLB.InvalDisturbs).
// The manager's invalidation observer fires before each shootdown is
// applied; the engine then rolls the victim core's window back via the
// TLB journal and re-probes it — rollback is bounded to that core's
// uncommitted window by construction, because everything serially
// before the event was already committed. Interrupt debt (shootdown
// IPIs) is drained after every serializing event into a per-core clock
// shift, which is exactly the serial deliver-at-next-pop semantics.
// DESIGN.md §13 develops the window invariant and the bit-identity
// argument in full.
package machine

import (
	"fmt"
	"runtime"
	"sync"

	"cmcp/internal/fault"
	"cmcp/internal/sim"
	"cmcp/internal/tlb"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// EngineKind selects a simulation engine implementation.
type EngineKind uint8

const (
	// SerialEngine is the reference event loop: one heap, one goroutine,
	// every touch scheduled individually.
	SerialEngine EngineKind = iota
	// ParallelEngine is the epoch-parallel engine in this file.
	ParallelEngine
)

// String returns the engine's command-line name.
func (k EngineKind) String() string {
	switch k {
	case SerialEngine:
		return "serial"
	case ParallelEngine:
		return "parallel"
	default:
		return fmt.Sprintf("EngineKind(%d)", uint8(k))
	}
}

// ParseEngine parses a command-line engine name ("" selects serial).
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "", "serial":
		return SerialEngine, nil
	case "parallel":
		return ParallelEngine, nil
	}
	return 0, fmt.Errorf("machine: unknown engine %q (want serial or parallel)", s)
}

// phaseRunner runs simulation phases on whichever engine the Config
// selected, owning the engine state that persists across the warm-up
// and measured phases.
type phaseRunner struct {
	mgr    *vm.Manager
	cfg    Config
	events eventQueue
	par    *parEngine // nil = serial
}

func newPhaseRunner(mgr *vm.Manager, cfg Config) *phaseRunner {
	pr := &phaseRunner{mgr: mgr, cfg: cfg,
		events: eventQueue{ev: make([]eventKey, 0, cfg.Cores+2)}}
	if cfg.Engine == ParallelEngine && !needsSerialEngine(cfg) {
		pr.par = newParEngine(mgr, cfg)
	}
	return pr
}

// needsSerialEngine reports configurations whose observable semantics
// depend on the serial pop sequence itself, not just on the event
// order. These run serially even when Config.Engine asks for parallel;
// bit-identity is then trivial.
func needsSerialEngine(cfg Config) bool {
	if cfg.Probe != nil && cfg.Probe.Sampling() {
		// Time-series samples read the per-pop heap picture (clock skew
		// across scheduled cores), which the parallel engine never forms.
		return true
	}
	if cfg.Audit != nil && cfg.Faults != nil &&
		cfg.Faults.Rates[fault.MapSkew] > 0 && cfg.Tables == vm.PSPTKind {
		// The auditor's PSPT pass doubles as the recovery trigger for
		// injected bookkeeping skew (DegradePage mutates state), so the
		// audit cadence — counted in serial pops — becomes Result-bearing.
		return true
	}
	return false
}

func (pr *phaseRunner) run(streams []workload.Stream, start sim.Cycles) (sim.Cycles, error) {
	if pr.par != nil {
		return pr.par.runPhase(streams, start)
	}
	return runPhase(pr.mgr, pr.cfg, &pr.events, streams, start)
}

func (pr *phaseRunner) close() {
	if pr.par != nil {
		pr.par.shutdown()
		pr.par = nil
	}
}

const (
	// probeBudget caps touches classified per probe dispatch, bounding
	// the work lost when an invalidation truncates a window.
	probeBudget = 512
	// burstCap caps touches per burst so one uint64 write mask describes
	// every touch exactly at any commit split point.
	burstCap = 64
)

// stopKind says why a probe stopped.
type stopKind uint8

const (
	// stopCap: probe budget exhausted; probing resumes from the cursor.
	stopCap stopKind = iota
	// stopFault: the next access misses the page tables. The access is
	// left unconsumed and re-executed for real when the sweep reaches it
	// (so any state change since the probe is honored automatically).
	stopFault
	// stopEnd: the stream drained; the core retires at the stop clock.
	stopEnd
)

// coreStatus is an engine core's scheduling state.
type coreStatus uint8

const (
	// stActive: the core has a speculative position (bursts and a stop).
	stActive coreStatus = iota
	// stProbe: the core needs (re-)probing from resume.
	stProbe
	// stDone: the stream retired this phase.
	stDone
)

// burst is a run of probed touches by one core on one page: the first
// touch classified at level, every later touch a provably private L1
// hit on the same entry, consecutive in time. It commits with one
// vm.CommitTouches call, splittable at any point because the write mask
// carries exact per-touch write bits.
type burst struct {
	vpn   sim.PageID
	start sim.Cycles // unshifted clock of the first uncommitted touch
	extra sim.Cycles // first touch's cost beyond TouchCompute
	first tlb.HitLevel
	count int32
	// booked records the bookkeeping already applied for this burst by
	// earlier partial commits: 0 none, 1 accessed bit, 2 accessed+dirty.
	// A later split may skip the page-walk bookkeeping it subsumes — the
	// bits cannot have weakened in between, because any event that
	// clears or unmaps them shoots down this core's TLB entry first,
	// which rolls the whole window (and this burst) back.
	booked uint8
	wmask  uint64 // bit k set = touch k writes
	jend   int    // journal mark after this burst's ops (-1 = still open)
}

// engCore is one application core's engine-side state.
type engCore struct {
	id sim.CoreID
	j  *tlb.Journal
	t  *tlb.TLB

	// stream is the core's live access stream, consumed directly on the
	// probe hot path — no per-access buffering. The stream is never
	// rewound: a rollback reconstructs the window's accesses from the
	// bursts themselves (each burst records every touch's page and write
	// bit verbatim) into the replay queue, which next() drains before
	// touching the stream again.
	stream workload.Stream
	replay []workload.Access
	rpos   int

	// pending holds the one access a fault probe read past the window
	// end: the sweep re-executes it for real, so the probe pushes it
	// back rather than burying it in a burst.
	pending    workload.Access
	hasPending bool

	status    coreStatus
	stop      stopKind
	stopClock sim.Cycles // unshifted clock of the stop
	resume    sim.Cycles // unshifted restart clock (status == stProbe)

	// shift is accumulated interrupt debt: every stored clock (burst
	// starts, stop, resume) is effectively stored+shift. Draining debt
	// into a uniform shift is exact because the serial engine delivers
	// debt at the debtor's next pop — before its next touch — which
	// delays that touch and, by induction, every later one by the same
	// amount.
	shift sim.Cycles

	bursts []burst
	bhead  int // bursts[:bhead] are committed
}

// next yields the core's next access: the pushed-back fault access
// first (it was read ahead of any replay remainder), then the rollback
// replay queue, then the live stream.
func (c *engCore) next() (workload.Access, bool) {
	if c.hasPending {
		c.hasPending = false
		return c.pending, true
	}
	if c.rpos < len(c.replay) {
		a := c.replay[c.rpos]
		c.rpos++
		return a, true
	}
	return c.stream.Next()
}

// parEngine is the epoch-parallel engine for one simulation run.
type parEngine struct {
	mgr   *vm.Manager
	cfg   Config
	cost  sim.CostModel
	cores []engCore

	// serialKeys/resumeKeys cache each core's effective serializing-stop
	// and probe-resume keys (noKey when absent), so the per-round minima
	// are flat uint64 scans instead of struct-field branch chains. A
	// core's slots are refreshed whenever its status, stop or shift
	// changes (refreshKeys); probers refresh only their own core's slots,
	// so concurrent probes stay race-free.
	serialKeys []eventKey
	resumeKeys []eventKey
	// pendKeys caches each core's first uncommitted touch as a packed
	// key (noKey when none): pendKeys[i] < E is exactly the condition
	// under which commitBefore(E) has work to do on core i.
	pendKeys []eventKey

	scannerID    sim.CoreID
	scannerClock sim.Cycles
	remaining    int
	barrier      sim.Cycles

	workers int
	taskCh  chan *engCore
	doneCh  chan struct{}
}

// noKey marks an absent per-core key; it compares greater than every
// real packed (clock, id) key.
const noKey = ^eventKey(0)

// refreshKeys recomputes c's cached key slots from its current state.
func (e *parEngine) refreshKeys(c *engCore) {
	sk, rk := noKey, noKey
	switch c.status {
	case stProbe:
		rk = makeEvent(c.resume+c.shift, c.id)
	case stActive:
		k := makeEvent(c.stopClock+c.shift, c.id)
		if c.stop == stopCap {
			rk = k
		} else {
			sk = k
		}
	}
	e.serialKeys[c.id] = sk
	e.resumeKeys[c.id] = rk
	e.refreshPend(c)
}

// refreshPend recomputes c's cached first-uncommitted-touch key.
func (e *parEngine) refreshPend(c *engCore) {
	if c.bhead < len(c.bursts) {
		e.pendKeys[c.id] = makeEvent(c.bursts[c.bhead].start+c.shift, c.id)
	} else {
		e.pendKeys[c.id] = noKey
	}
}

// workerBudget is the process-wide probe-worker token pool, sized to
// GOMAXPROCS once. Every parallel engine draws from the same pool, so
// RunMany sweeps with parallel inner engines stay bounded at
// sweep-parallelism + GOMAXPROCS live goroutines instead of
// multiplying; latecomers get fewer or zero workers and probe inline.
var (
	workerBudgetOnce sync.Once
	workerBudget     chan struct{}
)

func acquireWorkers(want int) int {
	workerBudgetOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		workerBudget = make(chan struct{}, n)
		for i := 0; i < n; i++ {
			workerBudget <- struct{}{}
		}
	})
	got := 0
	for got < want {
		select {
		case <-workerBudget:
			got++
		default:
			return got
		}
	}
	return got
}

func releaseWorkers(n int) {
	for i := 0; i < n; i++ {
		workerBudget <- struct{}{}
	}
}

func newParEngine(mgr *vm.Manager, cfg Config) *parEngine {
	e := &parEngine{
		mgr:        mgr,
		cfg:        cfg,
		cost:       mgr.Cost(),
		cores:      make([]engCore, cfg.Cores),
		serialKeys: make([]eventKey, cfg.Cores),
		resumeKeys: make([]eventKey, cfg.Cores),
		pendKeys:   make([]eventKey, cfg.Cores),
		scannerID:  sim.ScannerCore(cfg.Cores),
	}
	for i := range e.cores {
		c := &e.cores[i]
		c.id = sim.CoreID(i)
		c.j = &tlb.Journal{}
		c.t = mgr.JournalTLB(c.id, c.j)
	}
	mgr.SetInvalObserver(e.onInvalidate)

	want := cfg.Cores
	if m := runtime.GOMAXPROCS(0) - 1; want > m {
		want = m
	}
	if want < 0 {
		want = 0
	}
	e.workers = acquireWorkers(want)
	if e.workers > 0 {
		e.taskCh = make(chan *engCore)
		e.doneCh = make(chan struct{}, e.workers)
		for i := 0; i < e.workers; i++ {
			go e.worker()
		}
	}
	return e
}

func (e *parEngine) worker() {
	for c := range e.taskCh {
		e.probe(c)
		e.doneCh <- struct{}{}
	}
}

// shutdown detaches the engine from the manager and returns its worker
// tokens. Safe to call once, after the last phase.
func (e *parEngine) shutdown() {
	if e.taskCh != nil {
		close(e.taskCh)
		e.taskCh = nil
	}
	releaseWorkers(e.workers)
	e.workers = 0
	e.mgr.SetInvalObserver(nil)
	for i := range e.cores {
		e.cores[i].t.SetJournal(nil)
	}
}

// runPhase is the parallel counterpart of the serial runPhase: same
// contract, same Results.
func (e *parEngine) runPhase(streams []workload.Stream, start sim.Cycles) (sim.Cycles, error) {
	run := e.mgr.Run()
	for i := range e.cores {
		c := &e.cores[i]
		c.stream = streams[c.id]
		c.replay = nil
		c.rpos = 0
		c.hasPending = false
		c.status = stProbe
		c.resume = start
		c.shift = 0
		c.bursts = c.bursts[:0]
		c.bhead = 0
		e.refreshKeys(c)
	}
	e.scannerClock = start
	e.remaining = len(e.cores)
	e.barrier = 0

	for e.remaining > 0 {
		ev := e.minSerialKey()
		if r, ok := e.minResumeKey(); ok && r < ev {
			e.probeAll(ev)
			continue
		}
		e.commitBefore(ev)
		if err := e.processEvent(ev); err != nil {
			return 0, err
		}
	}
	run.Finish[e.scannerID] = e.scannerClock
	return e.barrier, nil
}

// minSerialKey returns the earliest serializing event: the scanner tick
// or an active core's fault/retirement stop, in packed (clock, id)
// order.
func (e *parEngine) minSerialKey() eventKey {
	k := makeEvent(e.scannerClock, e.scannerID)
	for _, ck := range e.serialKeys {
		if ck < k {
			k = ck
		}
	}
	return k
}

// minResumeKey returns the earliest point some core needs probing (a
// stProbe core's resume, or a budget-capped core's cursor).
func (e *parEngine) minResumeKey() (eventKey, bool) {
	k := noKey
	for _, ck := range e.resumeKeys {
		if ck < k {
			k = ck
		}
	}
	return k, k != noKey
}

// probeAll probes every core whose resume point precedes limit,
// fanning out across the worker pool; overflow (and the no-worker
// case) probes inline on the sweep goroutine.
func (e *parEngine) probeAll(limit eventKey) {
	inflight := 0
	for i := range e.cores {
		if e.resumeKeys[i] >= limit {
			continue
		}
		c := &e.cores[i]
		if e.workers > 0 {
			select {
			case e.taskCh <- c:
				inflight++
				continue
			default:
			}
		}
		e.probe(c)
	}
	for ; inflight > 0; inflight-- {
		<-e.doneCh
	}
}

// probe speculatively classifies up to probeBudget touches for c,
// journaling every TLB mutation. Runs on a worker goroutine: it may
// touch only c and core-local manager state (ProbeAccess contract).
//
// The window is fenced at the next scanner tick: a tick's accessed-bit
// scan is the one event class that invalidates en masse (every page it
// clears shoots down its mappers), so speculation past it is the work
// most likely to be thrown away. Touches at the tick clock itself still
// commit before the tick (the scanner sorts last at equal clocks), so
// the fence costs nothing when no scan lands. Touches past a pending
// page fault are fair speculation — a fault disturbs at most the one
// mapping it evicts.
func (e *parEngine) probe(c *engCore) {
	var clock sim.Cycles
	if c.status == stProbe {
		clock = c.resume + c.shift
		c.shift = 0
		c.status = stActive
	} else {
		clock = c.stopClock // cap continuation: shift stays factored out
	}
	c.j.Enable()
	tc := e.cost.TouchCompute
	fence := e.scannerClock - c.shift // stable during a probe round
	for budget := probeBudget; budget > 0; budget-- {
		if clock > fence {
			c.stop = stopCap
			c.stopClock = clock
			e.closeProbe(c)
			return
		}
		a, ok := c.next()
		if !ok {
			c.stop = stopEnd
			c.stopClock = clock
			e.closeProbe(c)
			return
		}
		if n := len(c.bursts); n > c.bhead && c.bursts[n-1].vpn == a.VPN {
			// Same page as the immediately preceding touch: its entry is
			// provably still in L1 — the previous touch left it there, L1
			// hits mutate nothing, nothing was inserted since, and had a
			// shootdown removed it this window would have been rolled
			// back — so skip the lookup entirely.
			last := &c.bursts[n-1]
			if last.count < burstCap {
				if a.Write {
					last.wmask |= 1 << uint(last.count)
				}
				last.count++
				clock += tc
				continue
			}
			if last.jend < 0 {
				last.jend = c.j.Mark()
			}
			b := burst{vpn: a.VPN, start: clock, first: tlb.HitL1, count: 1, jend: -1}
			if a.Write {
				b.wmask = 1
			}
			c.bursts = append(c.bursts, b)
			clock += tc
			continue
		}
		mark := c.j.Mark()
		extra, level, _, _, hit := e.mgr.ProbeAccess(c.id, a.VPN)
		if !hit {
			c.pending = a
			c.hasPending = true
			c.stop = stopFault
			c.stopClock = clock
			e.closeProbe(c)
			return
		}
		if n := len(c.bursts); n > c.bhead {
			if last := &c.bursts[n-1]; last.jend < 0 {
				last.jend = mark // ops past mark belong to the new burst
			}
		}
		b := burst{vpn: a.VPN, start: clock, extra: extra, first: level, count: 1, jend: -1}
		if a.Write {
			b.wmask = 1
		}
		c.bursts = append(c.bursts, b)
		clock += extra + tc
	}
	c.stop = stopCap
	c.stopClock = clock
	e.closeProbe(c)
}

// closeProbe seals the last open burst at the current journal position,
// stops logging, and refreshes the core's cached keys (safe from worker
// goroutines: each prober writes only its own core's slots).
func (e *parEngine) closeProbe(c *engCore) {
	if n := len(c.bursts); n > c.bhead {
		if last := &c.bursts[n-1]; last.jend < 0 {
			last.jend = c.j.Mark()
		}
	}
	c.j.Disable()
	e.refreshKeys(c)
}

// lowMask returns a mask of the low k bits (k ≤ 64).
func lowMask(k uint64) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<k - 1
}

// commitBefore retires every speculative touch strictly before event b
// in serial order, splitting bursts at the boundary. After it returns,
// the machine's observable state is exactly the serial engine's state
// at the moment b pops.
func (e *parEngine) commitBefore(b eventKey) {
	bc, bid := b.clock(), b.id()
	audited := 0
	for i, pk := range e.pendKeys {
		// pk is the packed key of core i's first uncommitted touch, so
		// pk < b is exactly "some touch commits before b".
		if pk >= b {
			continue
		}
		c := &e.cores[i]
		// Touches at clock t commit iff (t, c.id) < (bc, bid).
		lim := bc
		if c.id < bid {
			lim++
		}
		audited += e.commitCore(c, lim)
		e.refreshPend(c)
	}
	if audited > 0 && e.cfg.Audit != nil {
		e.cfg.Audit.NoteN(e.mgr, audited)
	}
}

// commitCore commits c's burst prefix with effective clock < lim and
// returns the number of touches retired.
func (e *parEngine) commitCore(c *engCore, lim sim.Cycles) int {
	tc := e.cost.TouchCompute
	total := 0
	for c.bhead < len(c.bursts) {
		b := &c.bursts[c.bhead]
		base := b.start + c.shift
		if base >= lim {
			break
		}
		// Touch 0 runs at base, touch k ≥ 1 at base + extra + k·tc.
		n := uint64(b.count)
		rem := lim - base // ≥ 1
		var k uint64
		switch {
		case b.extra >= rem:
			k = 1
		case tc == 0 || b.extra+sim.Cycles(n-1)*tc < rem:
			k = n // whole burst: the common case, no division
		default:
			k = uint64((rem-b.extra-1)/tc) + 1
			if k > n {
				k = n
			}
		}
		w := b.wmask&lowMask(k) != 0
		book := b.booked == 0 || (w && b.booked < 2)
		e.mgr.CommitTouches(c.id, b.vpn, b.first, k, w, book)
		total += int(k)
		c.j.Release(b.jend)
		if k == n {
			c.bhead++
			continue
		}
		// Partial commit: normalize the remainder so its first touch is a
		// plain L1 hit at its own clock. Its TLB ops (first touch only)
		// just committed with the prefix, so the released jend stays right.
		if w {
			b.booked = 2
		} else if b.booked == 0 {
			b.booked = 1
		}
		b.start += b.extra + sim.Cycles(k)*tc
		b.extra = 0
		b.first = tlb.HitL1
		b.wmask >>= k
		b.count = int32(n - k)
		break
	}
	if c.bhead == len(c.bursts) {
		c.bursts = c.bursts[:0]
		c.bhead = 0
	}
	return total
}

// processEvent runs one serializing event exactly as the serial loop
// would, then drains any interrupt debt it charged.
func (e *parEngine) processEvent(ev eventKey) error {
	if e.cfg.Audit != nil {
		e.cfg.Audit.Note(e.mgr)
	}
	clock := ev.clock()
	if ev.id() == e.scannerID {
		cost := e.mgr.Tick(clock)
		next := clock + e.cfg.TickInterval
		if done := clock + cost; done > next {
			next = done
		}
		e.scannerClock = next
		e.drainDebt()
		return nil
	}
	c := &e.cores[ev.id()]
	switch c.stop {
	case stopFault:
		a, ok := c.next()
		if !ok {
			return fmt.Errorf("machine: core %d at cycle %d: lost the faulting access", c.id, clock)
		}
		// Re-execute the faulting access for real at its serial clock; any
		// state change since the probe (a sibling's minor fault, an evicted
		// mapping) is honored automatically because this is the full path.
		done, err := e.mgr.Access(c.id, a.VPN, a.Write, clock)
		if err != nil {
			return fmt.Errorf("machine: core %d at cycle %d: %w", c.id, clock, err)
		}
		c.status = stProbe
		c.resume = done
		c.shift = 0
		e.refreshKeys(c)
		e.drainDebt()
	case stopEnd:
		run := e.mgr.Run()
		run.Finish[c.id] = clock
		if clock > e.barrier {
			e.barrier = clock
		}
		e.remaining--
		c.status = stDone
		e.refreshKeys(c)
	default:
		return fmt.Errorf("machine: core %d at cycle %d: cap stop reached the sweep", c.id, clock)
	}
	return nil
}

// drainDebt folds freshly charged interrupt debt into each core's clock
// shift (see engCore.shift for why this is exact).
func (e *parEngine) drainDebt() {
	for i := range e.cores {
		c := &e.cores[i]
		if c.status == stDone {
			continue
		}
		if d := e.mgr.TakeDebt(c.id); d > 0 {
			c.shift += d
			e.refreshKeys(c)
		}
	}
}

// onInvalidate runs immediately before a TLB shootdown is applied to
// core. If the invalidation disturbs state the core's speculative
// window depends on, the window is rolled back — journal undo restores
// the TLB, the window's accesses return to the replay queue — and the
// core re-probes from its first uncommitted touch. Everything serially
// before the invalidating event was committed already, so rollback is
// bounded to the window.
func (e *parEngine) onInvalidate(core sim.CoreID, base sim.PageID) {
	c := &e.cores[core]
	if c.status != stActive || c.bhead == len(c.bursts) {
		return // no speculation in flight (committed state is current)
	}
	if !c.t.InvalDisturbs(base) {
		return
	}
	c.j.Rollback()
	c.resume = c.bursts[c.bhead].start
	c.status = stProbe
	// Reconstruct the window's accesses for the re-probe: the bursts
	// record every uncommitted touch's page and write bit verbatim and
	// in order, so the replay queue is rebuilt from them — the live
	// stream is never rewound. A pushed-back fault access was read just
	// after the last burst, and any undrained remainder of a previous
	// replay queue after that.
	n := 0
	for i := c.bhead; i < len(c.bursts); i++ {
		n += int(c.bursts[i].count)
	}
	if c.hasPending {
		n++
	}
	nq := make([]workload.Access, 0, n+len(c.replay)-c.rpos)
	for i := c.bhead; i < len(c.bursts); i++ {
		b := &c.bursts[i]
		for k := int32(0); k < b.count; k++ {
			nq = append(nq, workload.Access{VPN: b.vpn, Write: b.wmask>>uint(k)&1 != 0})
		}
	}
	if c.hasPending {
		nq = append(nq, c.pending)
		c.hasPending = false
	}
	nq = append(nq, c.replay[c.rpos:]...)
	c.replay, c.rpos = nq, 0
	c.bursts = c.bursts[:0]
	c.bhead = 0
	e.refreshKeys(c)
}
