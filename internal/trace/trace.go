// Package trace records the page-access streams of a simulation into a
// compact binary format, replays them as a workload, and analyzes them
// offline — including computing Belady's optimal (MIN) fault count,
// the clairvoyant lower bound no online policy can beat. The paper
// compares CMCP against realizable policies only; the OPT analyzer
// quantifies how much headroom is left.
//
// Format (little-endian):
//
//	magic "CMCPTRC1" | uint32 cores | uint64 records
//	per record: uvarint(core<<1 | write) uvarint(zigzag(vpn delta))
//
// VPNs are delta-encoded per core, so sequential sweeps cost two bytes
// per access.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cmcp/internal/sim"
	"cmcp/internal/workload"
)

// magic identifies the trace file format, versioned.
const magic = "CMCPTRC1"

// Record is one page touch by one core, in global interleaved order.
type Record struct {
	Core  sim.CoreID
	VPN   sim.PageID
	Write bool
}

// Trace is an in-memory access trace.
type Trace struct {
	Cores   int
	Records []Record
}

// ErrBadFormat is returned when decoding fails structurally.
var ErrBadFormat = errors.New("trace: bad format")

// Write encodes the trace to w.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(t.Cores))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(t.Records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	last := make(map[sim.CoreID]sim.PageID)
	var buf [2 * binary.MaxVarintLen64]byte
	for _, r := range t.Records {
		head := uint64(r.Core) << 1
		if r.Write {
			head |= 1
		}
		n := binary.PutUvarint(buf[:], head)
		delta := int64(r.VPN - last[r.Core])
		last[r.Core] = r.VPN
		n += binary.PutUvarint(buf[n:], zigzag(delta))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+12)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	cores := int(binary.LittleEndian.Uint32(head[len(magic) : len(magic)+4]))
	count := binary.LittleEndian.Uint64(head[len(magic)+4:])
	if cores <= 0 || cores > 1<<16 {
		return nil, fmt.Errorf("%w: %d cores", ErrBadFormat, cores)
	}
	// Cap the preallocation: a corrupt header must not drive makeslice
	// out of range (each record is at least 2 bytes, so a count far
	// beyond any plausible stream just grows incrementally and fails at
	// the first truncated record).
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t := &Trace{Cores: cores, Records: make([]Record, 0, prealloc)}
	last := make(map[sim.CoreID]sim.PageID)
	for i := uint64(0); i < count; i++ {
		h, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d header: %v", ErrBadFormat, i, err)
		}
		core := sim.CoreID(h >> 1)
		if int(core) >= cores {
			return nil, fmt.Errorf("%w: record %d core %d out of range", ErrBadFormat, i, core)
		}
		zd, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d delta: %v", ErrBadFormat, i, err)
		}
		vpn := last[core] + sim.PageID(unzigzag(zd))
		if vpn < 0 {
			return nil, fmt.Errorf("%w: record %d negative vpn", ErrBadFormat, i)
		}
		last[core] = vpn
		t.Records = append(t.Records, Record{Core: core, VPN: vpn, Write: h&1 != 0})
	}
	return t, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Capture runs every stream of a workload layout round-robin and
// records the interleaved trace (the deterministic canonical order;
// the simulator's event order differs per configuration, but policies
// see the same per-core sequences).
func Capture(layout *workload.Layout, seed uint64) *Trace {
	streams := layout.Streams(seed)
	t := &Trace{Cores: layout.Cores}
	active := len(streams)
	for active > 0 {
		active = 0
		for c, s := range streams {
			a, ok := s.Next()
			if !ok {
				continue
			}
			active++
			t.Records = append(t.Records, Record{Core: sim.CoreID(c), VPN: a.VPN, Write: a.Write})
		}
	}
	return t
}

// Streams converts the trace back into per-core workload streams for
// replay through the simulator.
func (t *Trace) Streams() []workload.Stream {
	perCore := make([][]workload.Access, t.Cores)
	for _, r := range t.Records {
		perCore[r.Core] = append(perCore[r.Core], workload.Access{VPN: r.VPN, Write: r.Write})
	}
	out := make([]workload.Stream, t.Cores)
	for c := range out {
		out[c] = &replayStream{accesses: perCore[c]}
	}
	return out
}

// MaxVPN returns the largest page number referenced (plus one gives the
// footprint bound).
func (t *Trace) MaxVPN() sim.PageID {
	var m sim.PageID
	for _, r := range t.Records {
		if r.VPN > m {
			m = r.VPN
		}
	}
	return m
}

// replayStream replays a fixed access slice.
type replayStream struct {
	accesses []workload.Access
	pos      int
}

// Next implements workload.Stream.
func (r *replayStream) Next() (workload.Access, bool) {
	if r.pos >= len(r.accesses) {
		return workload.Access{}, false
	}
	a := r.accesses[r.pos]
	r.pos++
	return a, true
}

// Len implements workload.Stream.
func (r *replayStream) Len() int { return len(r.accesses) }
