package trace

import (
	"container/heap"
	"fmt"

	"cmcp/internal/policy"
	"cmcp/internal/sim"
)

// This file computes Belady's optimal (MIN/OPT) page fault count for a
// recorded trace: on a fault with full memory, evict the resident
// mapping whose next use lies farthest in the future. OPT needs the
// future, so it exists only offline — it is the clairvoyant lower
// bound that quantifies how close FIFO, LRU and CMCP get.

// OPTResult summarizes one OPT analysis.
type OPTResult struct {
	Capacity int    // mapping slots available
	Accesses int    // trace length (in mapping-granular references)
	Faults   uint64 // compulsory + capacity misses
	Distinct int    // distinct mappings referenced
}

// FaultRatio returns faults per access.
func (r OPTResult) FaultRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Faults) / float64(r.Accesses)
}

// String renders the analysis compactly.
func (r OPTResult) String() string {
	return fmt.Sprintf("OPT: %d faults / %d accesses (%.2f%%) at capacity %d, %d distinct mappings",
		r.Faults, r.Accesses, 100*r.FaultRatio(), r.Capacity, r.Distinct)
}

// optItem is a resident mapping in the max-heap ordered by next use
// (farthest first).
type optItem struct {
	base    sim.PageID
	nextUse int // index into the reference string; large = far
	pos     int
}

type optHeap []*optItem

func (h optHeap) Len() int           { return len(h) }
func (h optHeap) Less(i, j int) bool { return h[i].nextUse > h[j].nextUse }
func (h optHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].pos = i; h[j].pos = j }
func (h *optHeap) Push(x any)        { it := x.(*optItem); it.pos = len(*h); *h = append(*h, it) }
func (h *optHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// OPT computes Belady's optimal fault count for the trace at the given
// mapping capacity and page size (accesses collapse to size-aligned
// mapping bases, matching how the simulator manages residency).
// Consecutive references to the same resident mapping count once each
// but cannot fault, exactly as in the simulator.
func OPT(t *Trace, capacity int, size sim.PageSize) (OPTResult, error) {
	if capacity <= 0 {
		return OPTResult{}, fmt.Errorf("trace: OPT capacity %d", capacity)
	}
	// Build the mapping-granular reference string.
	refs := make([]sim.PageID, len(t.Records))
	for i, r := range t.Records {
		refs[i] = size.Align(r.VPN)
	}
	// next[i] = index of the next reference to refs[i] after i.
	next := make([]int, len(refs))
	lastSeen := make(map[sim.PageID]int)
	infinity := len(refs) + 1
	for i := len(refs) - 1; i >= 0; i-- {
		if j, ok := lastSeen[refs[i]]; ok {
			next[i] = j
		} else {
			next[i] = infinity
		}
		lastSeen[refs[i]] = i
	}

	resident := make(map[sim.PageID]*optItem, capacity)
	var h optHeap
	var faults uint64
	for i, base := range refs {
		if it, ok := resident[base]; ok {
			// Hit: refresh the next-use key.
			it.nextUse = next[i]
			heap.Fix(&h, it.pos)
			continue
		}
		faults++
		if len(resident) >= capacity {
			victim := heap.Pop(&h).(*optItem)
			delete(resident, victim.base)
		}
		it := &optItem{base: base, nextUse: next[i]}
		resident[base] = it
		heap.Push(&h, it)
	}
	return OPTResult{
		Capacity: capacity,
		Accesses: len(refs),
		Faults:   faults,
		Distinct: len(lastSeen),
	}, nil
}

// CountingPolicy is the slice of the policy.Policy contract that
// offline fault counting needs: reference notifications and victim
// selection. Every policy.Policy satisfies it.
type CountingPolicy interface {
	PTESetup(base sim.PageID)
	Victim() (sim.PageID, bool)
}

// TrueLRU is an exact least-recently-used policy for offline replay:
// every PTESetup counts as a reference (perfect information, which no
// real kernel has — the online approximation in internal/policy pays
// for its statistics with TLB shootdowns). Implements countingPolicy.
type TrueLRU struct {
	list *policy.List
}

// NewTrueLRU returns an exact-LRU counting policy.
func NewTrueLRU() *TrueLRU { return &TrueLRU{list: policy.NewList()} }

// PTESetup implements countingPolicy: record a reference.
func (l *TrueLRU) PTESetup(base sim.PageID) {
	if !l.list.MoveToTail(base) {
		l.list.PushTail(base)
	}
}

// Victim implements countingPolicy: the least recently referenced page.
func (l *TrueLRU) Victim() (sim.PageID, bool) { return l.list.PopHead() }

// CountFaults replays the trace through an online policy, returning its
// fault count at the given capacity and page size.
func CountFaults(t *Trace, capacity int, size sim.PageSize, pol CountingPolicy) (uint64, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("trace: capacity %d", capacity)
	}
	resident := make(map[sim.PageID]bool, capacity)
	var faults uint64
	for _, r := range t.Records {
		base := size.Align(r.VPN)
		if resident[base] {
			pol.PTESetup(base) // minor notification: another reference
			continue
		}
		faults++
		if len(resident) >= capacity {
			victim, ok := pol.Victim()
			if !ok {
				return 0, fmt.Errorf("trace: policy has no victim with %d resident", len(resident))
			}
			if !resident[victim] {
				return 0, fmt.Errorf("trace: policy evicted non-resident page %d", victim)
			}
			delete(resident, victim)
		}
		resident[base] = true
		pol.PTESetup(base)
	}
	return faults, nil
}
