package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/workload"
)

func captureSmall(t *testing.T) *Trace {
	t.Helper()
	layout, err := workload.SCALE().Scale(0.02).Build(4)
	if err != nil {
		t.Fatal(err)
	}
	return Capture(layout, 7)
}

func TestCaptureCoversStreams(t *testing.T) {
	tr := captureSmall(t)
	if tr.Cores != 4 {
		t.Errorf("cores = %d", tr.Cores)
	}
	if len(tr.Records) == 0 {
		t.Fatal("empty trace")
	}
	perCore := make(map[sim.CoreID]int)
	for _, r := range tr.Records {
		perCore[r.Core]++
	}
	if len(perCore) != 4 {
		t.Errorf("cores seen = %d", len(perCore))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := captureSmall(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cores != tr.Cores || len(got.Records) != len(tr.Records) {
		t.Fatalf("shape mismatch: %d/%d records", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, cores8 uint8) bool {
		cores := int(cores8%8) + 1
		tr := &Trace{Cores: cores}
		for i, v := range raw {
			tr.Records = append(tr.Records, Record{
				Core:  sim.CoreID(i % cores),
				VPN:   sim.PageID(v % (1 << 24)),
				Write: v&1 != 0,
			})
		}
		var buf bytes.Buffer
		if tr.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC" + strings.Repeat("\x00", 12)),
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated records.
	tr := captureSmall(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestCompression(t *testing.T) {
	// Delta encoding: sequential traces must cost only a few bytes per
	// record.
	tr := &Trace{Cores: 1}
	for i := 0; i < 10000; i++ {
		tr.Records = append(tr.Records, Record{VPN: sim.PageID(i)})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / 10000
	if perRecord > 3 {
		t.Errorf("sequential trace costs %.1f bytes/record, want <= 3", perRecord)
	}
}

func TestReplayStreams(t *testing.T) {
	tr := captureSmall(t)
	streams := tr.Streams()
	if len(streams) != tr.Cores {
		t.Fatal("stream count")
	}
	total := 0
	for _, s := range streams {
		total += s.Len()
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
		if _, ok := s.Next(); ok {
			t.Error("exhausted stream must stay exhausted")
		}
	}
	if total != len(tr.Records) {
		t.Errorf("replay total %d != %d", total, len(tr.Records))
	}
}

func TestMaxVPN(t *testing.T) {
	tr := &Trace{Cores: 1, Records: []Record{{VPN: 5}, {VPN: 99}, {VPN: 7}}}
	if tr.MaxVPN() != 99 {
		t.Errorf("MaxVPN = %d", tr.MaxVPN())
	}
}

// referenceOPT is a brute-force Belady implementation for validation.
func referenceOPT(refs []sim.PageID, capacity int) uint64 {
	resident := make(map[sim.PageID]bool)
	var faults uint64
	for i, p := range refs {
		if resident[p] {
			continue
		}
		faults++
		if len(resident) >= capacity {
			// Evict the resident page with the farthest next use.
			var victim sim.PageID
			best := -1
			for q := range resident {
				next := len(refs) + 1
				for j := i + 1; j < len(refs); j++ {
					if refs[j] == q {
						next = j
						break
					}
				}
				if next > best || (next == best && q < victim) {
					best = next
					victim = q
				}
			}
			delete(resident, victim)
		}
		resident[p] = true
	}
	return faults
}

func TestOPTMatchesBruteForce(t *testing.T) {
	f := func(raw []uint8, cap8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		capacity := int(cap8%6) + 1
		tr := &Trace{Cores: 1}
		refs := make([]sim.PageID, len(raw))
		for i, v := range raw {
			vpn := sim.PageID(v % 12)
			refs[i] = vpn
			tr.Records = append(tr.Records, Record{VPN: vpn})
		}
		res, err := OPT(tr, capacity, sim.Size4k)
		if err != nil {
			return false
		}
		return res.Faults == referenceOPT(refs, capacity)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestOPTClassicSequence(t *testing.T) {
	// The textbook Belady example: 1,2,3,4,1,2,5,1,2,3,4,5 at capacity
	// 3 gives 7 faults under OPT.
	seq := []sim.PageID{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	tr := &Trace{Cores: 1}
	for _, p := range seq {
		tr.Records = append(tr.Records, Record{VPN: p})
	}
	res, err := OPT(tr, 3, sim.Size4k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 7 {
		t.Errorf("OPT faults = %d, want 7", res.Faults)
	}
	if res.Distinct != 5 || res.Accesses != 12 {
		t.Errorf("distinct=%d accesses=%d", res.Distinct, res.Accesses)
	}
	if !strings.Contains(res.String(), "7 faults") {
		t.Error("String rendering")
	}
}

func TestOPTErrors(t *testing.T) {
	if _, err := OPT(&Trace{Cores: 1}, 0, sim.Size4k); err == nil {
		t.Error("zero capacity must fail")
	}
}

func TestOPTMappingGranularity(t *testing.T) {
	// At 64 kB granularity, pages 0..15 are one mapping: a sweep over
	// them is one fault.
	tr := &Trace{Cores: 1}
	for v := sim.PageID(0); v < 16; v++ {
		tr.Records = append(tr.Records, Record{VPN: v})
	}
	res, err := OPT(tr, 4, sim.Size64k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults != 1 || res.Distinct != 1 {
		t.Errorf("faults=%d distinct=%d, want 1/1", res.Faults, res.Distinct)
	}
}

func TestCountFaultsFIFOVsOPT(t *testing.T) {
	tr := captureSmall(t)
	capacity := 64
	opt, err := OPT(tr, capacity, sim.Size4k)
	if err != nil {
		t.Fatal(err)
	}
	fifoFaults, err := CountFaults(tr, capacity, sim.Size4k, policy.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	if fifoFaults < opt.Faults {
		t.Errorf("FIFO %d faults beats OPT %d — impossible", fifoFaults, opt.Faults)
	}
	if opt.Faults == 0 {
		t.Error("constrained replay must fault")
	}
}

func TestCountFaultsErrors(t *testing.T) {
	tr := captureSmall(t)
	if _, err := CountFaults(tr, 0, sim.Size4k, policy.NewFIFO()); err == nil {
		t.Error("zero capacity must fail")
	}
	if _, err := CountFaults(tr, 8, sim.Size4k, badPolicy{}); err == nil {
		t.Error("lying policy must be detected")
	}
}

// badPolicy claims victims that are not resident.
type badPolicy struct{}

func (badPolicy) PTESetup(sim.PageID) {}
func (badPolicy) Victim() (sim.PageID, bool) {
	return 1 << 40, true
}

func TestTrueLRUBeatsFIFOOnSkewedTrace(t *testing.T) {
	tr := captureSmall(t)
	capacity := 64
	lru, err := CountFaults(tr, capacity, sim.Size4k, NewTrueLRU())
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := CountFaults(tr, capacity, sim.Size4k, policy.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OPT(tr, capacity, sim.Size4k)
	if err != nil {
		t.Fatal(err)
	}
	if lru >= fifo {
		t.Errorf("true LRU (%d) should beat FIFO (%d) on the skewed trace", lru, fifo)
	}
	if lru < opt.Faults {
		t.Errorf("true LRU (%d) cannot beat OPT (%d)", lru, opt.Faults)
	}
}

func TestTrueLRUExactOrder(t *testing.T) {
	l := NewTrueLRU()
	for _, p := range []sim.PageID{1, 2, 3, 1} { // 1 refreshed
		l.PTESetup(p)
	}
	v, ok := l.Victim()
	if !ok || v != 2 {
		t.Errorf("Victim = %d, want 2 (LRU order 2,3,1)", v)
	}
}
