package trace

import (
	"bytes"
	"testing"

	"cmcp/internal/sim"
)

// FuzzRead hammers the binary decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode to an equivalent
// trace (decode/encode/decode fixed point).
func FuzzRead(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	tr := &Trace{Cores: 2, Records: []Record{
		{Core: 0, VPN: 5, Write: true},
		{Core: 1, VPN: 100},
		{Core: 0, VPN: 6},
	}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte("CMCPTRC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Records) != len(got.Records) || again.Cores != got.Cores {
			t.Fatal("decode/encode/decode not a fixed point")
		}
		for i := range got.Records {
			if again.Records[i] != got.Records[i] {
				t.Fatalf("record %d changed", i)
			}
		}
	})
}

// FuzzOPTAgainstBruteForce cross-checks the heap-based Belady
// implementation against the quadratic reference on arbitrary short
// reference strings.
func FuzzOPTAgainstBruteForce(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}, uint8(3))
	f.Add([]byte{0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, cap8 uint8) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		capacity := int(cap8%8) + 1
		tr := &Trace{Cores: 1}
		refs := make([]sim.PageID, len(raw))
		for i, v := range raw {
			vpn := sim.PageID(v % 16)
			refs[i] = vpn
			tr.Records = append(tr.Records, Record{VPN: vpn})
		}
		res, err := OPT(tr, capacity, sim.Size4k)
		if err != nil {
			t.Fatal(err)
		}
		if want := referenceOPT(refs, capacity); res.Faults != want {
			t.Fatalf("OPT = %d, brute force = %d (capacity %d, refs %v)",
				res.Faults, want, capacity, refs)
		}
	})
}
