package experiments

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

// Sensitivity is an extension beyond the paper: it stress-tests the
// headline result (CMCP > FIFO > LRU) against the calibration
// assumptions of the cost model. Each row scales one parameter across
// a 4-16x range and reports the CMCP and LRU margins over FIFO on the
// BT workload at max cores. If the ordering flips only at extreme
// values, the reproduction's conclusions do not hinge on the exact
// calibration — the paper's argument is structural, not numeric.
func Sensitivity(o Options) (*Report, error) {
	if err := o.rejectTenants("sense"); err != nil {
		return nil, err
	}
	cores := o.maxCores()
	rep := &Report{
		ID:    "sense",
		Title: fmt.Sprintf("Sensitivity of the CMCP/FIFO/LRU ordering to cost-model parameters (bt, %d cores)", cores),
	}
	spec := o.apps()[0] // bt
	multipliers := []float64{0.25, 0.5, 1.0, 2.0, 4.0}
	if o.Quick {
		multipliers = []float64{0.5, 1.0, 2.0}
	}
	params := []struct {
		name  string
		apply func(*sim.CostModel, float64)
	}{
		{"IPIInterrupt (target-side shootdown cost)", func(c *sim.CostModel, f float64) {
			c.IPIInterrupt = sim.Cycles(float64(c.IPIInterrupt) * f)
		}},
		{"FaultService (kernel fault-path cost)", func(c *sim.CostModel, f float64) {
			c.FaultService = sim.Cycles(float64(c.FaultService) * f)
		}},
		{"DMABytesPerCycle (PCIe bandwidth)", func(c *sim.CostModel, f float64) {
			c.DMABytesPerCycle *= f
		}},
		{"IPIPerTarget (initiator IPI-loop cost)", func(c *sim.CostModel, f float64) {
			c.IPIPerTarget = sim.Cycles(float64(c.IPIPerTarget) * f)
		}},
	}

	policies := []machine.PolicySpec{
		{Kind: machine.FIFO},
		{Kind: machine.CMCP, P: cmcpP(spec.Name)},
		{Kind: machine.LRU},
	}

	var cfgs []machine.Config
	for _, prm := range params {
		for _, mult := range multipliers {
			cost := sim.DefaultCostModel()
			prm.apply(&cost, mult)
			for _, pol := range policies {
				cfg := o.baseConfig(spec, cores)
				cfg.Cost = cost
				cfg.Policy = pol
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, err := o.run(cfgs)
	if err != nil {
		return nil, err
	}

	tab := &stats.Table{
		Title:   "Sensitivity: margin over FIFO (positive = faster than FIFO)",
		Columns: []string{"CMCP", "LRU"},
	}
	idx := 0
	for _, prm := range params {
		for _, mult := range multipliers {
			fifo := float64(results[idx].Runtime)
			cmcpRT := float64(results[idx+1].Runtime)
			lruRT := float64(results[idx+2].Runtime)
			idx += 3
			tab.AddRow(fmt.Sprintf("%s x%.2f", prm.name, mult),
				fmt.Sprintf("%+.1f%%", 100*(fifo-cmcpRT)/fifo),
				fmt.Sprintf("%+.1f%%", 100*(fifo-lruRT)/fifo))
		}
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}
