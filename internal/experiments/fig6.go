package experiments

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/stats"
)

// Fig6 reproduces Figure 6: the distribution of computation-area pages
// according to the number of CPU cores mapping them, per application,
// as the core count grows. The histogram is read from PSPT's per-core
// page tables after a run with unconstrained memory (every page stays
// resident, so the histogram covers the whole footprint).
//
// Expected shape: for every application the majority of pages is mapped
// by only a few cores; CG and SCALE have >50 % core-private pages with
// the remainder almost all mapped by two cores; LU and BT spread up to
// ~6-8 cores with over half mapped by at most three.
func Fig6(o Options) (*Report, error) {
	if err := o.rejectTenants("fig6"); err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig6",
		Title: "Distribution of pages by number of mapping CPU cores (PSPT, 4kB pages)",
	}
	for _, spec := range o.apps() {
		var cfgs []machine.Config
		for _, cores := range o.coreCounts() {
			cfg := o.baseConfig(spec, cores)
			cfg.MemoryRatio = 1.0 // unconstrained: histogram covers all pages
			cfgs = append(cfgs, cfg)
		}
		results, err := o.run(cfgs)
		if err != nil {
			return nil, err
		}
		const maxBin = 8 // the paper bins 1..7 cores and "8+"
		tab := &stats.Table{Title: fmt.Sprintf("Fig6 %s: %% of pages mapped by k cores", spec.Name)}
		for k := 1; k < maxBin; k++ {
			tab.Columns = append(tab.Columns, fmt.Sprintf("%d", k))
		}
		tab.Columns = append(tab.Columns, fmt.Sprintf("%d+", maxBin))
		for i, res := range results {
			hist := res.Sharing
			total := 0
			for k := 1; k < len(hist); k++ {
				total += hist[k]
			}
			cells := make([]any, maxBin)
			for k := 1; k <= maxBin && k < len(hist); k++ {
				count := hist[k]
				if k == maxBin {
					for j := maxBin + 1; j < len(hist); j++ {
						count += hist[j]
					}
				}
				cells[k-1] = fmt.Sprintf("%.1f%%", 100*float64(count)/float64(max(total, 1)))
			}
			for k := range cells {
				if cells[k] == nil {
					cells[k] = "0.0%"
				}
			}
			tab.AddRow(fmt.Sprintf("%d cores", cfgs[i].Cores), cells...)
		}
		rep.Tables = append(rep.Tables, tab)
	}
	return rep, nil
}
