// Package experiments regenerates every table and figure of the
// paper's evaluation (§5): the page-sharing distributions (Fig. 6),
// the policy/page-table scalability comparison (Fig. 7), the memory-
// constraint sensitivity (Fig. 8), the per-core event counts (Table 1),
// the CMCP ratio sweep (Fig. 9), and the page-size study (Fig. 10).
//
// Each runner assembles machine.Configs, executes them (concurrently
// when the host allows), and renders the same rows/series the paper
// reports. Absolute cycle counts differ from the Xeon Phi testbed; the
// reproduction targets are the shapes — who wins, by what factor, and
// where the crossovers fall. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"

	"cmcp/internal/fault"
	"cmcp/internal/machine"
	"cmcp/internal/obs"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/sweep"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// Options control an experiment run.
type Options struct {
	// Scale multiplies workload footprints and work (1.0 = the scaled
	// B-class defaults; use <1 for quicker runs). Zero means 1.0.
	Scale float64
	// Quick shrinks the sweep itself: fewer core counts and ratio
	// points. Used by tests and -quick CLI runs.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
	// Parallelism caps concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Repeats replicates every run with seeds Seed..Seed+Repeats-1 and
	// averages the results, tightening the scaled-down runs' noise
	// (0 or 1 = single run). The replication and averaging are the
	// sweep runner's deterministic merge step (internal/sweep).
	Repeats int
	// Faults, when non-nil, attaches the deterministic fault injector
	// to every generated run config, so whole experiment grids run
	// under injected device faults (cmcpsim -exp -fault-rate). Safe to
	// share across concurrent runs: each run builds its own injector.
	Faults *fault.Config
	// Journal checkpoints every completed run to a JSONL file and
	// resumes from it on restart; see sweep.Options.Journal.
	Journal string
	// Imports are read-only extra journals (other shards' output).
	Imports []string
	// Shard/Shards partition the run grid by content key across
	// independent processes; see sweep.Options. A sharded invocation
	// fills the grid points of other shards with inert placeholders,
	// so callers must treat its report as scaffolding and read only
	// the journal (cmcpsim suppresses the report and says so).
	Shard, Shards int
	// Progress, when non-nil, observes sweep planning and completion
	// (runs done/total, runs/s, ETA).
	Progress *obs.Progress
	// Engine selects the simulation engine for every generated run
	// (machine.Config.Engine). Results are bit-identical across
	// engines; parallel is faster on multi-core hosts.
	Engine machine.EngineKind
	// Hist attaches latency/fan-out histograms to every generated run
	// config (machine.Config.Hist). Read-only instrumentation: counters
	// and runtimes are bit-identical either way.
	Hist bool
	// OnResult, when non-nil, receives each executed completed run; see
	// sweep.Options.OnResult (called concurrently from workers).
	OnResult func(*machine.Result)
	// Runner, when non-nil, replaces local in-process execution for
	// every experiment sweep; see sweep.Options.Runner. The coordinator
	// (internal/coord) implements it, so setting Runner turns an
	// experiment into a coordinated sweep served to a worker fleet —
	// with identical journals and bit-identical results.
	Runner sweep.Runner
	// ScheduleFrom optionally names a journal from a previous sweep
	// whose recorded runtimes order pending runs longest-first; see
	// sweep.Options.ScheduleFrom.
	ScheduleFrom string
	// Tenants, when non-nil, selects the multi-tenant serving workload
	// for experiments that support it (TenantGrid). The paper-figure
	// experiments model one HPC application per machine and reject a
	// tenant spec loudly — cmcpsim used to silently drop -tenants under
	// -exp, the same bug class -fault-rate once had.
	Tenants *workload.TenantSpec
	// Topology, when non-nil, attaches a NUMA topology to every
	// generated run config (machine.Config.Topology), so whole grids
	// run multi-socket. Its Sockets and cost fields are taken as given;
	// CoresPerSocket is re-derived per grid point so every run's cores
	// spread evenly across the sockets (the grids sweep core counts).
	// The Numa experiment builds its own 2-socket topology and rejects
	// a caller-supplied one.
	Topology *sim.Topology
}

// topologyFor shapes Options.Topology to one grid point's core count:
// the socket count and costs are the caller's, the seats per socket
// follow the machine size. Nil stays nil (flat, bit-identical).
func (o Options) topologyFor(cores int) *sim.Topology {
	if o.Topology == nil {
		return nil
	}
	t := *o.Topology
	t.CoresPerSocket = (cores + t.Sockets - 1) / t.Sockets
	return &t
}

// rejectTenants errors when a tenant spec was supplied to an experiment
// that models a single HPC application — the loud-failure half of the
// "-tenants under -exp" contract (TenantGrid is the experiment that
// accepts the spec).
func (o Options) rejectTenants(id string) error {
	if o.Tenants != nil {
		return fmt.Errorf("experiments: %s models a single application and ignores tenant specs; use the \"tenants\" experiment for multi-tenant grids", id)
	}
	return nil
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// coreCounts returns the X axis of the scalability experiments: the
// paper sweeps 8..56 cores in steps of 8.
func (o Options) coreCounts() []int {
	if o.Quick {
		return []int{4, 8}
	}
	return []int{8, 16, 24, 32, 40, 48, 56}
}

// memoryRatios is the X axis of Fig. 8 and Fig. 10.
func (o Options) memoryRatios() []float64 {
	if o.Quick {
		return []float64{1.0, 0.5}
	}
	return []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.25}
}

// pageSizeRatios is the X axis of Fig. 10: denser near 100 % because
// the large-page crossovers live there.
func (o Options) pageSizeRatios() []float64 {
	if o.Quick {
		return []float64{1.0, 0.5}
	}
	return []float64{1.0, 0.98, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3}
}

// pRatios is the X axis of Fig. 9.
func (o Options) pRatios() []float64 {
	if o.Quick {
		return []float64{0, 0.5, 1}
	}
	return []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}
}

// maxCores returns the largest swept core count (the paper's 56).
func (o Options) maxCores() int {
	cc := o.coreCounts()
	return cc[len(cc)-1]
}

// Constraint returns the per-workload memory ratio used by Fig. 7 and
// Table 1. The paper's methodology (§5.3) sets the constraint so that
// PSPT+FIFO lands at 50-60 % relative performance; on the authors'
// testbed that needed 64 % (BT), 66 % (LU), 37 % (CG) and ~50 %
// (SCALE). Our substrate's Fig. 8 curves put the same 50-60 % band at
// slightly different ratios, so we follow the methodology rather than
// the testbed percentages (EXPERIMENTS.md records both).
func Constraint(name string) float64 {
	switch {
	case strings.HasPrefix(name, "bt"):
		return 0.62
	case strings.HasPrefix(name, "lu"):
		return 0.70
	case strings.HasPrefix(name, "cg"):
		return 0.38
	case strings.HasPrefix(name, "SCALE"):
		return 0.55
	default:
		return 0.5
	}
}

// apps returns the workloads at the option scale.
func (o Options) apps() []workload.Spec {
	specs := workload.Apps()
	out := make([]workload.Spec, len(specs))
	for i, s := range specs {
		out[i] = s.Scale(o.scale())
	}
	return out
}

// baseConfig is the common run shape: PSPT, 4 kB pages, FIFO.
func (o Options) baseConfig(spec workload.Spec, cores int) machine.Config {
	return machine.Config{
		Cores:       cores,
		Workload:    spec,
		MemoryRatio: Constraint(spec.Name),
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      machine.PolicySpec{Kind: machine.FIFO, P: -1},
		Seed:        o.Seed,
		Faults:      o.Faults,
		Topology:    o.topologyFor(cores),
	}
}

// Report is one experiment's rendered output.
type Report struct {
	ID     string // "fig6", "table1", ...
	Title  string
	Tables []*stats.Table
}

// String renders all tables as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders all tables as concatenated CSV sections.
func (r *Report) CSV() string {
	var b strings.Builder
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "# %s\n", t.Title)
		b.WriteString(t.CSV())
		b.WriteByte('\n')
	}
	return b.String()
}

// run executes one batch of configs through the sweep runner, which
// handles parallel execution (machine.RunMany), the journal checkpoint/
// resume cycle, shard partitioning, and Repeats seed-replication with
// deterministic averaging. Grid points belonging to other shards come
// back as inert placeholders so every renderer stays total; a sharded
// caller reads the journal, not the report.
func (o Options) run(cfgs []machine.Config) ([]*machine.Result, error) {
	if o.Hist || o.Engine != machine.SerialEngine {
		for i := range cfgs {
			cfgs[i].Hist = cfgs[i].Hist || o.Hist
			if o.Engine != machine.SerialEngine {
				// Only override when the option is actually set: o.Engine's
				// zero value is SerialEngine, and stamping it over every
				// config just because o.Hist was set used to silently reset
				// a caller-supplied per-config ParallelEngine.
				cfgs[i].Engine = o.Engine
			}
		}
	}
	out, err := sweep.Run(cfgs, sweep.Options{
		Journal:      o.Journal,
		Imports:      o.Imports,
		Shard:        o.Shard,
		Shards:       o.Shards,
		Parallelism:  o.Parallelism,
		Repeats:      o.Repeats,
		Progress:     o.Progress,
		OnResult:     o.OnResult,
		Runner:       o.Runner,
		ScheduleFrom: o.ScheduleFrom,
	})
	if err != nil {
		return nil, err
	}
	for i, r := range out.Results {
		if r == nil {
			out.Results[i] = sweep.Placeholder(cfgs[i])
		}
	}
	return out.Results, nil
}

// All runs every experiment in paper order (the paper figures; the
// extension experiments "numa" and "tenants" run only by ID).
func All(o Options) ([]*Report, error) {
	if err := o.rejectTenants("all"); err != nil {
		return nil, err
	}
	var reports []*Report
	for _, f := range []func(Options) (*Report, error){Fig6, Fig8, Fig7, Table1, Fig9, Fig10, Sensitivity} {
		r, err := f(o)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// ByID runs a single experiment by identifier.
func ByID(id string, o Options) (*Report, error) {
	switch strings.ToLower(id) {
	case "fig6":
		return Fig6(o)
	case "fig7":
		return Fig7(o)
	case "fig8":
		return Fig8(o)
	case "fig9":
		return Fig9(o)
	case "fig10":
		return Fig10(o)
	case "table1":
		return Table1(o)
	case "sense", "sensitivity":
		return Sensitivity(o)
	case "numa":
		return Numa(o)
	case "tenants":
		return TenantGrid(o)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (fig6..fig10, table1, sense, numa, tenants)", id)
	}
}
