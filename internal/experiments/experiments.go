// Package experiments regenerates every table and figure of the
// paper's evaluation (§5): the page-sharing distributions (Fig. 6),
// the policy/page-table scalability comparison (Fig. 7), the memory-
// constraint sensitivity (Fig. 8), the per-core event counts (Table 1),
// the CMCP ratio sweep (Fig. 9), and the page-size study (Fig. 10).
//
// Each runner assembles machine.Configs, executes them (concurrently
// when the host allows), and renders the same rows/series the paper
// reports. Absolute cycle counts differ from the Xeon Phi testbed; the
// reproduction targets are the shapes — who wins, by what factor, and
// where the crossovers fall. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// Options control an experiment run.
type Options struct {
	// Scale multiplies workload footprints and work (1.0 = the scaled
	// B-class defaults; use <1 for quicker runs). Zero means 1.0.
	Scale float64
	// Quick shrinks the sweep itself: fewer core counts and ratio
	// points. Used by tests and -quick CLI runs.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
	// Parallelism caps concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Repeats replicates every run with seeds Seed..Seed+Repeats-1 and
	// averages the results, tightening the scaled-down runs' noise
	// (0 or 1 = single run).
	Repeats int
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// coreCounts returns the X axis of the scalability experiments: the
// paper sweeps 8..56 cores in steps of 8.
func (o Options) coreCounts() []int {
	if o.Quick {
		return []int{4, 8}
	}
	return []int{8, 16, 24, 32, 40, 48, 56}
}

// memoryRatios is the X axis of Fig. 8 and Fig. 10.
func (o Options) memoryRatios() []float64 {
	if o.Quick {
		return []float64{1.0, 0.5}
	}
	return []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.25}
}

// pageSizeRatios is the X axis of Fig. 10: denser near 100 % because
// the large-page crossovers live there.
func (o Options) pageSizeRatios() []float64 {
	if o.Quick {
		return []float64{1.0, 0.5}
	}
	return []float64{1.0, 0.98, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3}
}

// pRatios is the X axis of Fig. 9.
func (o Options) pRatios() []float64 {
	if o.Quick {
		return []float64{0, 0.5, 1}
	}
	return []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}
}

// maxCores returns the largest swept core count (the paper's 56).
func (o Options) maxCores() int {
	cc := o.coreCounts()
	return cc[len(cc)-1]
}

// Constraint returns the per-workload memory ratio used by Fig. 7 and
// Table 1. The paper's methodology (§5.3) sets the constraint so that
// PSPT+FIFO lands at 50-60 % relative performance; on the authors'
// testbed that needed 64 % (BT), 66 % (LU), 37 % (CG) and ~50 %
// (SCALE). Our substrate's Fig. 8 curves put the same 50-60 % band at
// slightly different ratios, so we follow the methodology rather than
// the testbed percentages (EXPERIMENTS.md records both).
func Constraint(name string) float64 {
	switch {
	case strings.HasPrefix(name, "bt"):
		return 0.62
	case strings.HasPrefix(name, "lu"):
		return 0.70
	case strings.HasPrefix(name, "cg"):
		return 0.38
	case strings.HasPrefix(name, "SCALE"):
		return 0.55
	default:
		return 0.5
	}
}

// apps returns the workloads at the option scale.
func (o Options) apps() []workload.Spec {
	specs := workload.Apps()
	out := make([]workload.Spec, len(specs))
	for i, s := range specs {
		out[i] = s.Scale(o.scale())
	}
	return out
}

// baseConfig is the common run shape: PSPT, 4 kB pages, FIFO.
func (o Options) baseConfig(spec workload.Spec, cores int) machine.Config {
	return machine.Config{
		Cores:       cores,
		Workload:    spec,
		MemoryRatio: Constraint(spec.Name),
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      machine.PolicySpec{Kind: machine.FIFO, P: -1},
		Seed:        o.Seed,
	}
}

// Report is one experiment's rendered output.
type Report struct {
	ID     string // "fig6", "table1", ...
	Title  string
	Tables []*stats.Table
}

// String renders all tables as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders all tables as concatenated CSV sections.
func (r *Report) CSV() string {
	var b strings.Builder
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "# %s\n", t.Title)
		b.WriteString(t.CSV())
		b.WriteByte('\n')
	}
	return b.String()
}

// run executes configs with the options' parallelism. With Repeats > 1
// every config runs under Repeats seeds and the returned results are
// the per-config averages (runtime, counters and finish times).
func (o Options) run(cfgs []machine.Config) ([]*machine.Result, error) {
	reps := o.Repeats
	if reps <= 1 {
		return machine.RunMany(cfgs, o.Parallelism)
	}
	expanded := make([]machine.Config, 0, len(cfgs)*reps)
	for _, cfg := range cfgs {
		for r := 0; r < reps; r++ {
			c := cfg
			c.Seed = cfg.Seed + uint64(r)
			expanded = append(expanded, c)
		}
	}
	raw, err := machine.RunMany(expanded, o.Parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]*machine.Result, len(cfgs))
	for i := range cfgs {
		agg := raw[i*reps]
		var runtime sim.Cycles
		for r := 0; r < reps; r++ {
			res := raw[i*reps+r]
			runtime += res.Runtime
			if r > 0 {
				if err := agg.Run.Merge(res.Run); err != nil {
					return nil, err
				}
			}
		}
		agg.Run.DivideBy(uint64(reps))
		agg.Runtime = runtime / sim.Cycles(reps)
		out[i] = agg
	}
	return out, nil
}

// All runs every experiment in paper order.
func All(o Options) ([]*Report, error) {
	var reports []*Report
	for _, f := range []func(Options) (*Report, error){Fig6, Fig8, Fig7, Table1, Fig9, Fig10, Sensitivity} {
		r, err := f(o)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// ByID runs a single experiment by identifier.
func ByID(id string, o Options) (*Report, error) {
	switch strings.ToLower(id) {
	case "fig6":
		return Fig6(o)
	case "fig7":
		return Fig7(o)
	case "fig8":
		return Fig8(o)
	case "fig9":
		return Fig9(o)
	case "fig10":
		return Fig10(o)
	case "table1":
		return Table1(o)
	case "sense", "sensitivity":
		return Sensitivity(o)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (fig6..fig10, table1, sense)", id)
	}
}
