package experiments

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

// Fig10 reproduces Figure 10: the impact of the page size (4 kB, 64 kB,
// 2 MB) on relative performance as the memory constraint grows (PSPT +
// FIFO, max cores, C-class / big footprints).
//
// Expected shapes: with mild constraint large pages win (fewer TLB
// misses); as the constraint grows the cost of moving more data per
// fault and of broader sharing per page flips the order — first 64 kB
// and then 4 kB become best for BT and LU, while CG and SCALE keep
// 64 kB ahead of 4 kB deeper into the constraint range. All series are
// normalized to the 4 kB no-data-movement runtime, so the large pages'
// TLB advantage is visible above 1.0 at full memory. A fourth series
// reports the adaptive per-region size manager (§5.7 future work).
func Fig10(o Options) (*Report, error) {
	if err := o.rejectTenants("fig10"); err != nil {
		return nil, err
	}
	cores := o.maxCores()
	rep := &Report{
		ID:    "fig10",
		Title: fmt.Sprintf("Relative performance vs memory constraint by page size (PSPT+FIFO, %d cores, C class)", cores),
	}
	sizes := []sim.PageSize{sim.Size4k, sim.Size64k, sim.Size2M}
	ratios := o.pageSizeRatios()

	for _, spec := range o.apps() {
		// C class: ~2.5x the B footprint (the paper uses C class and a
		// 1.2 GB SCALE for this study).
		big := spec.Scale(2.5)
		big.Name = cClassName(spec.Name)
		var cfgs []machine.Config
		for _, size := range sizes {
			for _, r := range ratios {
				cfg := o.baseConfig(big, cores)
				cfg.PageSize = size
				cfg.MemoryRatio = r
				cfgs = append(cfgs, cfg)
			}
		}
		// Extension (paper §5.7 future work): the fault-frequency-driven
		// adaptive page-size manager as a fourth series.
		for _, r := range ratios {
			cfg := o.baseConfig(big, cores)
			cfg.AdaptivePageSize = true
			cfg.MemoryRatio = r
			cfgs = append(cfgs, cfg)
		}
		results, err := o.run(cfgs)
		if err != nil {
			return nil, err
		}
		tab := &stats.Table{Title: fmt.Sprintf("Fig10 %s: relative performance by page size", big.Name)}
		for _, size := range sizes {
			tab.Columns = append(tab.Columns, size.String())
		}
		tab.Columns = append(tab.Columns, "adaptive")
		base := results[0].Runtime // 4 kB at 100% memory
		for ri, r := range ratios {
			cells := make([]any, len(sizes)+1)
			for si := 0; si <= len(sizes); si++ {
				rt := results[si*len(ratios)+ri].Runtime
				cells[si] = fmt.Sprintf("%.2f", float64(base)/float64(rt))
			}
			tab.AddRow(fmt.Sprintf("%.0f%% memory", r*100), cells...)
		}
		rep.Tables = append(rep.Tables, tab)
	}
	return rep, nil
}

// cClassName maps the B-class label to the page-size study's label.
func cClassName(name string) string {
	switch name {
	case "bt.B":
		return "bt.C"
	case "lu.B":
		return "lu.C"
	case "cg.B":
		return "cg.C"
	case "SCALE":
		return "SCALE (big)"
	default:
		return name + " (big)"
	}
}
