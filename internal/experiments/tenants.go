package experiments

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// TenantGrid is the multi-tenant extension experiment (not a paper
// figure): one serving-shaped tenant workload run under each
// replacement policy, reporting runtime, aggregate fault counts, and
// Jain's fairness index over per-tenant p99 fault latencies. It is the
// one experiment that consumes Options.Tenants — cmcpsim threads
// -tenants/-zipf-s/-churn here, where the paper-figure experiments
// reject the spec loudly (they model a single HPC application).
func TenantGrid(o Options) (*Report, error) {
	spec := o.Tenants
	if spec == nil {
		def := workload.DefaultTenantSpec(16, 1.1, 0)
		spec = &def
	}
	cores := 16
	if o.Quick {
		cores = 4
	}
	policies := []machine.PolicySpec{
		{Kind: machine.FIFO},
		{Kind: machine.CLOCK},
		{Kind: machine.LRU},
		{Kind: machine.CMCP, P: 0.5},
	}
	var cfgs []machine.Config
	for _, pol := range policies {
		cfgs = append(cfgs, machine.Config{
			Cores:       cores,
			Tenants:     spec,
			MemoryRatio: 0.5,
			PageSize:    sim.Size4k,
			Tables:      vm.PSPTKind,
			Policy:      pol,
			Seed:        o.Seed,
			Faults:      o.Faults,
			Topology:    o.topologyFor(cores),
		})
	}
	results, err := o.run(cfgs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "tenants",
		Title: fmt.Sprintf("Multi-tenant extension: %d tenants, Zipf s=%.2f, churn %d (%d cores)", spec.Tenants, spec.ZipfS, spec.ChurnEvery, cores),
	}
	tab := &stats.Table{
		Title:   fmt.Sprintf("TenantGrid %s: policy comparison on one contended frame pool", spec.Name()),
		Columns: []string{"runtime (Mcyc)", "page faults", "minor faults", "evictions", "fairness (Jain p99)"},
	}
	for i, pol := range policies {
		r := results[i]
		fairness := "n/a"
		if ts := r.Run.Tenants; ts != nil {
			fairness = fmt.Sprintf("%.3f", ts.FairnessIndex())
		}
		tab.AddRow(pol.Kind.String(),
			fmt.Sprintf("%.1f", float64(r.Runtime)/1e6),
			r.Run.Total(stats.PageFaults),
			r.Run.Total(stats.MinorFaults),
			r.Run.Total(stats.Evictions),
			fairness)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}
