package experiments

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/stats"
)

// Table1 reproduces Table 1: per-CPU-core average page faults, remote
// TLB invalidations and dTLB misses for each workload under FIFO, LRU
// and CMCP (PSPT, 4 kB pages, the §5.4 memory constraints) as the core
// count grows.
//
// Expected relationships: LRU reduces page faults below FIFO for every
// workload but multiplies remote TLB invalidations (the cost of its
// access-bit scanning); CMCP also reduces faults below FIFO while
// issuing the fewest remote invalidations; dTLB misses are roughly
// policy-independent (they stem mostly from TLB capacity).
func Table1(o Options) (*Report, error) {
	if err := o.rejectTenants("table1"); err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "table1",
		Title: "Per-core average page faults, remote TLB invalidations, dTLB misses",
	}
	policies := []machine.PolicySpec{
		{Kind: machine.FIFO},
		{Kind: machine.LRU},
		{Kind: machine.CMCP, P: -1},
	}
	attrs := []struct {
		label   string
		counter stats.Counter
	}{
		{"page faults", stats.PageFaults},
		{"remote TLB invalidations", stats.RemoteTLBInvalidations},
		{"dTLB misses", stats.DTLBMisses},
	}
	coreCounts := o.coreCounts()
	for _, spec := range o.apps() {
		var cfgs []machine.Config
		for _, pol := range policies {
			for _, cores := range coreCounts {
				cfg := o.baseConfig(spec, cores)
				cfg.Policy = pol
				if pol.Kind == machine.CMCP {
					cfg.Policy.P = cmcpP(spec.Name)
				}
				cfgs = append(cfgs, cfg)
			}
		}
		results, err := o.run(cfgs)
		if err != nil {
			return nil, err
		}
		tab := &stats.Table{Title: fmt.Sprintf("Table1 %s", spec.Name)}
		for _, cores := range coreCounts {
			tab.Columns = append(tab.Columns, fmt.Sprintf("%d cores", cores))
		}
		for pi, pol := range policies {
			for _, at := range attrs {
				cells := make([]any, len(coreCounts))
				for ci := range coreCounts {
					res := results[pi*len(coreCounts)+ci]
					cells[ci] = fmt.Sprintf("%.0f", res.Run.PerCoreAvg(at.counter))
				}
				tab.AddRow(fmt.Sprintf("%s %s", pol.Kind, at.label), cells...)
			}
		}
		rep.Tables = append(rep.Tables, tab)
	}
	return rep, nil
}
