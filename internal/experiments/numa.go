package experiments

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
)

// numaConfig is one line of the NUMA comparison grid.
type numaConfig struct {
	label  string
	tables vm.TableKind
	policy machine.PolicySpec
}

// numaLines pairs each page-table kind with the policies the paper
// compares, so the grid isolates what PSPT's precise core maps buy on a
// multi-socket machine: regular shared tables must broadcast shootdowns
// to every core (crossing the socket boundary for each remote one),
// while PSPT's per-core tables filter the target set down to actual
// mappers.
func numaLines() []numaConfig {
	return []numaConfig{
		{label: "regular PT + LRU", tables: vm.RegularPT, policy: machine.PolicySpec{Kind: machine.LRU}},
		{label: "regular PT + CLOCK", tables: vm.RegularPT, policy: machine.PolicySpec{Kind: machine.CLOCK}},
		{label: "PSPT + CLOCK", tables: vm.PSPTKind, policy: machine.PolicySpec{Kind: machine.CLOCK}},
		{label: "PSPT + LRU", tables: vm.PSPTKind, policy: machine.PolicySpec{Kind: machine.LRU}},
		{label: "PSPT + CMCP", tables: vm.PSPTKind, policy: machine.PolicySpec{Kind: machine.CMCP, P: -1}},
	}
}

// Numa is the multi-socket extension experiment (not a paper figure):
// every workload runs on a two-socket topology under each line of
// numaLines, and the table reports runtime plus the cross-socket
// interconnect traffic — cross-socket IPIs, shootdowns filtered by the
// PSPT core map, and remote TLB invalidations received — with a final
// column giving the cross-socket IPI reduction of PSPT+CMCP relative to
// the regular-table baseline with the same policy (LRU). The expected
// shape: PSPT filters the broadcast down to the mapping cores, so its
// cross-socket IPI count drops by the fraction of cores that never
// mapped the evicted pages, while regular tables pay the full
// all-cores broadcast on every eviction.
func Numa(o Options) (*Report, error) {
	if err := o.rejectTenants("numa"); err != nil {
		return nil, err
	}
	if o.Topology != nil {
		return nil, fmt.Errorf("experiments: numa builds its own 2-socket topology; -sockets cannot override it")
	}
	cores := 60
	if o.Quick {
		cores = 8
	}
	topo := sim.DefaultTopology(2, cores/2)
	rep := &Report{
		ID:    "numa",
		Title: fmt.Sprintf("NUMA extension: cross-socket shootdown traffic on a %s topology (%d cores)", topo, cores),
	}
	lines := numaLines()
	for _, spec := range o.apps() {
		var cfgs []machine.Config
		for _, ln := range lines {
			cfg := o.baseConfig(spec, cores)
			cfg.Tables = ln.tables
			cfg.Policy = ln.policy
			if cfg.Policy.Kind == machine.CMCP {
				cfg.Policy.P = cmcpP(spec.Name)
			}
			cfg.Topology = topo
			cfgs = append(cfgs, cfg)
		}
		results, err := o.run(cfgs)
		if err != nil {
			return nil, err
		}
		tab := &stats.Table{
			Title:   fmt.Sprintf("Numa %s: runtime and cross-socket traffic (2 sockets)", spec.Name),
			Columns: []string{"runtime (Mcyc)", "cross-socket IPIs", "filtered shootdowns", "remote TLB inv", "x-socket IPI vs regular LRU"},
		}
		var regularLRU uint64
		for i, ln := range lines {
			if ln.label == "regular PT + LRU" {
				regularLRU = results[i].Run.Total(stats.CrossSocketIPIs)
			}
		}
		for i, ln := range lines {
			r := results[i]
			xIPI := r.Run.Total(stats.CrossSocketIPIs)
			redux := "n/a"
			if regularLRU > 0 {
				redux = fmt.Sprintf("%+.1f%%", 100*(float64(xIPI)-float64(regularLRU))/float64(regularLRU))
			}
			tab.AddRow(ln.label,
				fmt.Sprintf("%.1f", float64(r.Runtime)/1e6),
				xIPI,
				r.Run.Total(stats.FilteredShootdowns),
				r.Run.Total(stats.RemoteTLBInvalidations),
				redux)
		}
		rep.Tables = append(rep.Tables, tab)
	}
	return rep, nil
}
