package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cmcp/internal/sim"
	"cmcp/internal/sweep"
	"cmcp/internal/workload"
)

// TestRejectTenantsUnderFigures pins the CLI bugfix at the experiments
// layer: every paper-figure experiment (and All) must fail loudly when
// a tenant spec is supplied — cmcpsim used to silently drop -tenants
// under -exp, producing single-tenant results labelled as tenant runs.
func TestRejectTenantsUnderFigures(t *testing.T) {
	spec := workload.DefaultTenantSpec(4, 1.1, 0)
	o := quickOpts()
	o.Tenants = &spec
	for _, id := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "table1", "sense", "numa"} {
		if _, err := ByID(id, o); err == nil {
			t.Errorf("%s silently accepted a tenant spec", id)
		} else if !strings.Contains(err.Error(), "tenants") {
			t.Errorf("%s: error %v does not point at the tenants experiment", id, err)
		}
	}
	if _, err := All(o); err == nil {
		t.Error("All silently accepted a tenant spec")
	}
}

// TestTenantGridQuick runs the one experiment that DOES consume the
// tenant spec, with and without an explicit spec.
func TestTenantGridQuick(t *testing.T) {
	o := quickOpts()
	rep, err := TenantGrid(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "tenants" || len(rep.Tables) != 1 {
		t.Fatalf("report shape: %s, %d tables", rep.ID, len(rep.Tables))
	}
	tab := rep.Tables[0]
	if len(tab.Rows) != 4 { // FIFO, CLOCK, LRU, CMCP
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// fairness column must be a real Jain index in (0, 1].
		f, err := strconv.ParseFloat(row.Cells[len(row.Cells)-1], 64)
		if err != nil || f <= 0 || f > 1 {
			t.Errorf("%s: fairness cell %v", row.Label, row.Cells[len(row.Cells)-1])
		}
	}
	// An explicit spec must flow through (and via ByID).
	spec := workload.DefaultTenantSpec(8, 1.3, 100)
	o.Tenants = &spec
	rep2, err := ByID("tenants", o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep2.Title, "8 tenants") {
		t.Errorf("explicit spec ignored: %q", rep2.Title)
	}
}

// TestNumaQuick runs the 2-socket grid at quick scale and checks the
// tentpole's measurable claim end to end: PSPT's shootdown filtering
// must reduce cross-socket IPIs versus the regular-table broadcast,
// and the run must journal under the v4 schema.
func TestNumaQuick(t *testing.T) {
	o := quickOpts()
	o.Journal = filepath.Join(t.TempDir(), "numa.jsonl")
	rep, err := Numa(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "numa" || len(rep.Tables) != 4 {
		t.Fatalf("report shape: %s, %d tables", rep.ID, len(rep.Tables))
	}
	for _, tab := range rep.Tables {
		var regularIPI, psptIPI, psptFiltered uint64
		for _, row := range tab.Rows {
			ipi, err := strconv.ParseUint(row.Cells[1], 10, 64)
			if err != nil {
				t.Fatalf("%s: cross-socket IPI cell %q", row.Label, row.Cells[1])
			}
			switch row.Label {
			case "regular PT + LRU":
				regularIPI = ipi
			case "PSPT + CMCP":
				psptIPI = ipi
				if psptFiltered, err = strconv.ParseUint(row.Cells[2], 10, 64); err != nil {
					t.Fatalf("%s: filtered cell %q", row.Label, row.Cells[2])
				}
			}
		}
		if regularIPI == 0 {
			t.Errorf("%s: regular-PT broadcast crossed no socket", tab.Title)
		}
		if psptIPI >= regularIPI {
			t.Errorf("%s: PSPT+CMCP cross-socket IPIs %d, want < regular LRU's %d", tab.Title, psptIPI, regularIPI)
		}
		if psptFiltered == 0 {
			t.Errorf("%s: PSPT filtered no shootdown targets", tab.Title)
		}
	}
	// The journal must exist, parse under the current schema, and hold
	// every grid run exactly once.
	f, err := os.Open(o.Journal)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, skipped, err := sweep.ReadJournalLenient(f)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(entries) != 4*len(numaLines()) {
		t.Errorf("journal: %d entries (%d skipped), want %d", len(entries), skipped, 4*len(numaLines()))
	}
	// A caller-supplied topology must be rejected (numa owns its grid).
	o2 := quickOpts()
	o2.Topology = sim.DefaultTopology(2, 4)
	if _, err := Numa(o2); err == nil {
		t.Error("numa accepted a caller-supplied topology")
	}
}
