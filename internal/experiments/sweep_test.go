package experiments

import (
	"path/filepath"
	"reflect"
	"testing"

	"cmcp/internal/fault"
	"cmcp/internal/obs"
)

// These tests pin the experiment harness's sweep-runner integration:
// the CLI's fault flags actually reach the generated configs, and a
// journaled experiment resumes without re-executing anything.

func TestFaultsReachGeneratedConfigs(t *testing.T) {
	// The -fault-rate/-fault-seed regression: Options.Faults must land
	// in every config the harness generates, not be silently dropped.
	o := quickOpts()
	o.Faults = fault.Uniform(7, 1e-4)
	for _, spec := range o.apps() {
		cfg := o.baseConfig(spec, 4)
		if cfg.Faults != o.Faults {
			t.Fatalf("%s: baseConfig dropped Faults", spec.Name)
		}
	}

	// And a full quick experiment must survive the injected faults.
	o.Faults = fault.Uniform(7, 1e-5)
	if _, err := Fig8(o); err != nil {
		t.Fatalf("fig8 under fault injection: %v", err)
	}
}

func TestExperimentJournalResume(t *testing.T) {
	o := quickOpts()
	ref, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}

	jo := quickOpts()
	jo.Journal = filepath.Join(t.TempDir(), "fig8.jsonl")
	jo.Progress = obs.NewProgress()
	first, err := Fig8(jo)
	if err != nil {
		t.Fatal(err)
	}
	s := jo.Progress.Snapshot()
	if s.Executed == 0 || s.Loaded != 0 || s.Missing != 0 {
		t.Fatalf("first journaled run: %+v", s)
	}
	if !reflect.DeepEqual(first.Tables, ref.Tables) {
		t.Fatal("journaled run differs from plain run")
	}

	// Second run with the same journal: everything loads, nothing runs.
	jo.Progress = obs.NewProgress()
	second, err := Fig8(jo)
	if err != nil {
		t.Fatal(err)
	}
	s = jo.Progress.Snapshot()
	if s.Executed != 0 {
		t.Fatalf("resumed run re-executed %d runs", s.Executed)
	}
	if s.Loaded != s.Total {
		t.Fatalf("resumed run loaded %d of %d", s.Loaded, s.Total)
	}
	if !reflect.DeepEqual(second.Tables, ref.Tables) {
		t.Fatal("resumed run differs from plain run")
	}
}
