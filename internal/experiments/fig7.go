package experiments

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
)

// fig7Configs are the five lines of each Figure 7 plot.
type fig7Config struct {
	label  string
	tables vm.TableKind
	policy machine.PolicySpec
	ratio  float64 // 0 = the workload's §5.4 constraint; 1 = unconstrained
}

func fig7Lines() []fig7Config {
	return []fig7Config{
		{label: "no data movement", tables: vm.RegularPT, policy: machine.PolicySpec{Kind: machine.FIFO}, ratio: 1.0},
		{label: "regular PT + FIFO", tables: vm.RegularPT, policy: machine.PolicySpec{Kind: machine.FIFO}},
		{label: "PSPT + FIFO", tables: vm.PSPTKind, policy: machine.PolicySpec{Kind: machine.FIFO}},
		{label: "PSPT + LRU", tables: vm.PSPTKind, policy: machine.PolicySpec{Kind: machine.LRU}},
		{label: "PSPT + CMCP", tables: vm.PSPTKind, policy: machine.PolicySpec{Kind: machine.CMCP, P: -1}},
	}
}

// cmcpP returns the per-workload CMCP ratio used in Fig. 7 and Table 1
// (the paper tunes p manually per workload, §5.6: CG favours a low
// ratio; LU and SCALE high; BT in between).
func cmcpP(name string) float64 {
	switch {
	case name == "" || len(name) < 2:
		return 0.5
	case name[:2] == "cg":
		return 0.25
	case name[:2] == "lu":
		return 0.625
	case name[:2] == "bt":
		return 0.5
	default: // SCALE
		return 0.875
	}
}

// Fig7 reproduces Figure 7: runtime scalability over core counts for
// the five configurations. Expected shapes: regular PT stops scaling
// beyond ~24 cores (frequently slowing down outright); PSPT tracks the
// no-data-movement scaling; CMCP > FIFO > LRU everywhere, with CMCP
// beating FIFO at 56 cores by roughly 38 % (BT), 25 % (LU), 23 % (CG)
// and 13 % (SCALE).
func Fig7(o Options) (*Report, error) {
	if err := o.rejectTenants("fig7"); err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "fig7",
		Title: "Runtime vs CPU cores: page tables x replacement policies (4kB pages)",
	}
	lines := fig7Lines()
	for _, spec := range o.apps() {
		var cfgs []machine.Config
		for _, cores := range o.coreCounts() {
			for _, ln := range lines {
				cfg := o.baseConfig(spec, cores)
				cfg.Tables = ln.tables
				cfg.Policy = ln.policy
				if cfg.Policy.Kind == machine.CMCP {
					cfg.Policy.P = cmcpP(spec.Name)
				}
				if ln.ratio > 0 {
					cfg.MemoryRatio = ln.ratio
				}
				cfgs = append(cfgs, cfg)
			}
		}
		results, err := o.run(cfgs)
		if err != nil {
			return nil, err
		}
		tab := &stats.Table{Title: fmt.Sprintf("Fig7 %s: runtime (Mcycles; lower is better)", spec.Name)}
		for _, ln := range lines {
			tab.Columns = append(tab.Columns, ln.label)
		}
		tab.Columns = append(tab.Columns, "CMCP vs FIFO")
		idx := 0
		for _, cores := range o.coreCounts() {
			cells := make([]any, 0, len(lines)+1)
			var fifoRT, cmcpRT sim.Cycles
			for _, ln := range lines {
				rt := results[idx].Runtime
				idx++
				cells = append(cells, fmt.Sprintf("%.1f", float64(rt)/1e6))
				switch ln.label {
				case "PSPT + FIFO":
					fifoRT = rt
				case "PSPT + CMCP":
					cmcpRT = rt
				}
			}
			imp := 100 * (float64(fifoRT) - float64(cmcpRT)) / float64(fifoRT)
			cells = append(cells, fmt.Sprintf("%+.1f%%", imp))
			tab.AddRow(fmt.Sprintf("%d cores", cores), cells...)
		}
		rep.Tables = append(rep.Tables, tab)
	}
	return rep, nil
}
