package experiments

import (
	"testing"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// tinyCfg builds a fast grid point; distinct seeds keep the two
// configs distinct under the content key (Engine is key-excluded, so
// same-seed configs would dedup to one run and share a Result).
func tinyCfg(seed uint64, eng machine.EngineKind) machine.Config {
	return machine.Config{
		Cores:       2,
		Workload:    workload.Uniform(64, 1500),
		MemoryRatio: 0.5,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      machine.PolicySpec{Kind: machine.FIFO, P: -1},
		Seed:        seed,
		Engine:      eng,
	}
}

// TestRunPreservesPerConfigEngine pins the Options.run fix: setting
// o.Hist used to stamp o.Engine (zero value: serial) over every config,
// silently resetting a caller-supplied per-config ParallelEngine. The
// per-config choice must survive when o.Engine is unset, and o.Engine
// must still win when it IS set.
func TestRunPreservesPerConfigEngine(t *testing.T) {
	o := Options{Hist: true} // o.Engine unset (SerialEngine zero value)
	cfgs := []machine.Config{tinyCfg(3, machine.ParallelEngine), tinyCfg(4, machine.SerialEngine)}
	results, err := o.run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].Config.Engine; got != machine.ParallelEngine {
		t.Errorf("per-config ParallelEngine reset to %v by o.Hist", got)
	}
	if got := results[1].Config.Engine; got != machine.SerialEngine {
		t.Errorf("per-config SerialEngine became %v", got)
	}
	for i, r := range results {
		if r.Run.Hists == nil {
			t.Errorf("run %d: o.Hist did not attach histograms", i)
		}
	}

	// An explicitly set o.Engine still overrides every config.
	o = Options{Engine: machine.ParallelEngine}
	results, err = o.run([]machine.Config{tinyCfg(3, machine.SerialEngine)})
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].Config.Engine; got != machine.ParallelEngine {
		t.Errorf("o.Engine override lost: got %v", got)
	}
}
