package experiments

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/stats"
)

// Fig9 reproduces Figure 9: the impact of the prioritized-pages ratio p
// on CMCP's improvement over FIFO (PSPT, 4 kB pages, max cores, §5.4
// constraints).
//
// Expected shape: the best p is workload specific — CG benefits most
// from a low ratio, LU and SCALE from a high one — and a badly chosen p
// degrades the improvement substantially.
func Fig9(o Options) (*Report, error) {
	if err := o.rejectTenants("fig9"); err != nil {
		return nil, err
	}
	cores := o.maxCores()
	rep := &Report{
		ID:    "fig9",
		Title: fmt.Sprintf("CMCP improvement over FIFO vs ratio p (PSPT, 4kB, %d cores)", cores),
	}
	apps := o.apps()
	ps := o.pRatios()

	var cfgs []machine.Config
	for _, spec := range apps {
		// FIFO baseline first, then the p sweep.
		cfgs = append(cfgs, o.baseConfig(spec, cores))
		for _, p := range ps {
			cfg := o.baseConfig(spec, cores)
			cfg.Policy = machine.PolicySpec{Kind: machine.CMCP, P: p}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := o.run(cfgs)
	if err != nil {
		return nil, err
	}

	tab := &stats.Table{Title: "Fig9: improvement over FIFO (%) by prioritized-page ratio p"}
	for _, spec := range apps {
		tab.Columns = append(tab.Columns, spec.Name)
	}
	stride := 1 + len(ps)
	for pi, p := range ps {
		cells := make([]any, len(apps))
		for ai := range apps {
			fifo := float64(results[ai*stride].Runtime)
			cmcp := float64(results[ai*stride+1+pi].Runtime)
			cells[ai] = fmt.Sprintf("%+.1f%%", 100*(fifo-cmcp)/fifo)
		}
		tab.AddRow(fmt.Sprintf("p=%.3f", p), cells...)
	}
	rep.Tables = append(rep.Tables, tab)

	// Extension (paper §5.6 future work): the dynamic-p tuner's result
	// alongside the static sweep.
	var dynCfgs []machine.Config
	for _, spec := range apps {
		cfg := o.baseConfig(spec, cores)
		cfg.Policy = machine.PolicySpec{Kind: machine.CMCP, P: 0.5, DynamicP: true}
		dynCfgs = append(dynCfgs, cfg)
	}
	dynResults, err := o.run(dynCfgs)
	if err != nil {
		return nil, err
	}
	dynTab := &stats.Table{Title: "Fig9 extension: dynamic-p tuner vs FIFO"}
	dynTab.Columns = append(dynTab.Columns, tab.Columns...)
	cells := make([]any, len(apps))
	for ai := range apps {
		fifo := float64(results[ai*stride].Runtime)
		dyn := float64(dynResults[ai].Runtime)
		cells[ai] = fmt.Sprintf("%+.1f%%", 100*(fifo-dyn)/fifo)
	}
	dynTab.AddRow("dynamic p", cells...)
	rep.Tables = append(rep.Tables, dynTab)
	return rep, nil
}
