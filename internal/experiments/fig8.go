package experiments

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/stats"
)

// Fig8 reproduces Figure 8: relative performance (vs no data movement)
// as a function of the physical memory provided, for PSPT + FIFO with
// 4 kB pages on the maximum core count.
//
// Expected shapes: LU and BT degrade gradually as soon as memory drops
// below 100 % of the footprint; CG holds its performance down to ~35 %
// and SCALE to ~55 % (their sparse/hot data representations), after
// which performance falls steadily.
func Fig8(o Options) (*Report, error) {
	if err := o.rejectTenants("fig8"); err != nil {
		return nil, err
	}
	cores := o.maxCores()
	rep := &Report{
		ID:    "fig8",
		Title: fmt.Sprintf("Relative performance vs memory provided (PSPT+FIFO, 4kB, %d cores)", cores),
	}
	apps := o.apps()
	ratios := o.memoryRatios()

	var cfgs []machine.Config
	for _, spec := range apps {
		for _, r := range ratios {
			cfg := o.baseConfig(spec, cores)
			cfg.MemoryRatio = r
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := o.run(cfgs)
	if err != nil {
		return nil, err
	}

	tab := &stats.Table{Title: "Fig8: relative performance (1.0 = no data movement)"}
	for _, spec := range apps {
		tab.Columns = append(tab.Columns, spec.Name)
	}
	for ri, r := range ratios {
		cells := make([]any, len(apps))
		for ai := range apps {
			base := results[ai*len(ratios)].Runtime // ratio 1.0 is first
			rt := results[ai*len(ratios)+ri].Runtime
			cells[ai] = fmt.Sprintf("%.2f", float64(base)/float64(rt))
		}
		tab.AddRow(fmt.Sprintf("%.0f%% memory", r*100), cells...)
	}
	rep.Tables = append(rep.Tables, tab)
	return rep, nil
}
