package experiments

import (
	"strconv"
	"strings"
	"testing"

	"cmcp/internal/workload"
)

// quickOpts keeps test runs fast: tiny footprints, 4-8 cores.
func quickOpts() Options {
	return Options{Scale: 0.04, Quick: true, Seed: 3}
}

func TestConstraintKnown(t *testing.T) {
	for _, s := range workload.Apps() {
		c := Constraint(s.Name)
		if c <= 0 || c >= 1 {
			t.Errorf("%s: constraint %v", s.Name, c)
		}
	}
	if Constraint("unknown") != 0.5 {
		t.Error("default constraint")
	}
}

func TestCmcpPPerWorkload(t *testing.T) {
	// The paper's §5.6: CG favours a low ratio, LU and SCALE high.
	if cmcpP("cg.B") >= cmcpP("lu.B") {
		t.Error("cg must use a lower p than lu")
	}
	if cmcpP("SCALE") < 0.8 {
		t.Error("SCALE uses a high p")
	}
	if cmcpP("") != 0.5 || cmcpP("x") != 0.5 {
		t.Error("fallback p")
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99", quickOpts()); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestFig6QuickShapes(t *testing.T) {
	rep, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig6" || len(rep.Tables) != 4 {
		t.Fatalf("report shape: %s %d tables", rep.ID, len(rep.Tables))
	}
	// Key observation of the paper: the majority of pages is mapped by
	// only a few cores. Check the private bin dominates for cg/SCALE.
	for _, tab := range rep.Tables {
		if !strings.Contains(tab.Title, "cg") && !strings.Contains(tab.Title, "SCALE") {
			continue
		}
		for _, row := range tab.Rows {
			v := parsePercent(t, row.Cells[0])
			if v < 50 {
				t.Errorf("%s %s: private pages %.1f%%, want >50%%", tab.Title, row.Label, v)
			}
		}
	}
}

func parsePercent(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q", s)
	}
	return v
}

func TestFig7Quick(t *testing.T) {
	rep, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 4 {
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	for _, tab := range rep.Tables {
		if len(tab.Rows) != 2 { // quick: 2 core counts
			t.Errorf("%s rows = %d", tab.Title, len(tab.Rows))
		}
		if len(tab.Columns) != 6 { // 5 lines + improvement column
			t.Errorf("%s cols = %v", tab.Title, tab.Columns)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	rep, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0]
	// First row is 100% memory: all relative performances must be 1.0.
	for i, cell := range tab.Rows[0].Cells {
		if cell != "1.00" {
			t.Errorf("col %d at full memory = %s", i, cell)
		}
	}
	// Constrained rows must be <= 1.
	for _, row := range tab.Rows[1:] {
		for i, cell := range row.Cells {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v > 1.001 || v <= 0 {
				t.Errorf("%s col %d = %s", row.Label, i, cell)
			}
		}
	}
}

func TestFig9Quick(t *testing.T) {
	rep, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 { // sweep + dynamic-p extension
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	// p=0 must be within noise of FIFO (CMCP falls back to FIFO).
	row := rep.Tables[0].Rows[0]
	if row.Label != "p=0.000" {
		t.Fatalf("first row = %s", row.Label)
	}
	for i, cell := range row.Cells {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("cell %q", cell)
		}
		if v < -1 || v > 1 {
			t.Errorf("p=0 col %d improvement = %v%%, want ~0 (FIFO fallback)", i, v)
		}
	}
}

func TestFig10Quick(t *testing.T) {
	rep, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 4 {
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	for _, tab := range rep.Tables {
		if len(tab.Columns) != 4 { // 4k, 64k, 2M + adaptive extension
			t.Errorf("%s columns = %v", tab.Title, tab.Columns)
		}
	}
}

func TestTable1Quick(t *testing.T) {
	rep, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 4 {
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	tab := rep.Tables[0]
	if len(tab.Rows) != 9 { // 3 policies x 3 attributes
		t.Errorf("rows = %d", len(tab.Rows))
	}
	// Every cell must be a non-negative number.
	for _, row := range tab.Rows {
		for _, cell := range row.Cells {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < 0 {
				t.Errorf("%s: cell %q", row.Label, cell)
			}
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "== fig8:") {
		t.Error("String missing header")
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "label,") {
		t.Error("CSV missing header")
	}
}

func TestLRUShootdownExplosionQuick(t *testing.T) {
	// The paper's core claim at small scale: LRU's remote TLB
	// invalidations exceed FIFO's and CMCP has the fewest. Uses the
	// Table1 machinery at 8 cores.
	o := quickOpts()
	o.Quick = false // need full core axis? no — use custom tiny sweep
	rep, err := Table1(Options{Scale: 0.08, Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0] // bt
	get := func(label string) float64 {
		for _, row := range tab.Rows {
			if row.Label == label {
				v, _ := strconv.ParseFloat(row.Cells[len(row.Cells)-1], 64)
				return v
			}
		}
		t.Fatalf("row %q missing", label)
		return 0
	}
	fifoInv := get("FIFO remote TLB invalidations")
	lruInv := get("LRU remote TLB invalidations")
	cmcpInv := get("CMCP remote TLB invalidations")
	if lruInv <= fifoInv {
		t.Errorf("LRU invals %v must exceed FIFO %v", lruInv, fifoInv)
	}
	if cmcpInv >= fifoInv {
		t.Errorf("CMCP invals %v must be below FIFO %v", cmcpInv, fifoInv)
	}
}

func TestSensitivityQuick(t *testing.T) {
	rep, err := Sensitivity(Options{Scale: 0.04, Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "sense" || len(rep.Tables) != 1 {
		t.Fatalf("report shape")
	}
	// 4 parameters x 3 quick multipliers.
	if got := len(rep.Tables[0].Rows); got != 12 {
		t.Errorf("rows = %d, want 12", got)
	}
	if _, err := ByID("sensitivity", Options{Scale: 0.02, Quick: true}); err != nil {
		t.Error(err)
	}
}

func TestRepeatsAveraging(t *testing.T) {
	o := Options{Scale: 0.03, Quick: true, Seed: 1, Repeats: 3}
	rep, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	// Replicated full-memory row still normalizes to exactly 1.00.
	for _, cell := range rep.Tables[0].Rows[0].Cells {
		if cell != "1.00" {
			t.Errorf("full-memory cell = %s", cell)
		}
	}
}
