package workload

import (
	"testing"

	"cmcp/internal/sim"
)

func validTenantSpec() TenantSpec {
	return DefaultTenantSpec(32, 1.1, 0)
}

func TestTenantSpecValidate(t *testing.T) {
	base := validTenantSpec()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]func(*TenantSpec){
		"zero tenants":        func(s *TenantSpec) { s.Tenants = 0 },
		"zero pages":          func(s *TenantSpec) { s.PagesPerTenant = 0 },
		"page overflow":       func(s *TenantSpec) { s.Tenants = 1 << 30; s.PagesPerTenant = 4 },
		"zero touches":        func(s *TenantSpec) { s.TotalTouches = 0 },
		"write frac > 1":      func(s *TenantSpec) { s.WriteFrac = 1.5 },
		"negative zipf":       func(s *TenantSpec) { s.ZipfS = -1 },
		"negative skew":       func(s *TenantSpec) { s.PageSkew = -2 },
		"negative burst":      func(s *TenantSpec) { s.Burst = -1 },
		"negative churn":      func(s *TenantSpec) { s.ChurnEvery = -5 },
		"short weights":       func(s *TenantSpec) { s.Weights = []float64{1, 2} },
		"zero weight":         func(s *TenantSpec) { s.Weights = make([]float64, 32) },
		"negative core count": func(s *TenantSpec) {},
	}
	for name, mod := range cases {
		s := validTenantSpec()
		mod(&s)
		if name == "negative core count" {
			if _, err := s.Build(0); err == nil {
				t.Error("Build(0 cores) accepted")
			}
			continue
		}
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestTenantStreamsDeterministic pins the driver's reproducibility:
// same (spec, cores, seed) yields byte-identical access sequences,
// different seeds diverge.
func TestTenantStreamsDeterministic(t *testing.T) {
	spec := validTenantSpec()
	spec.ChurnEvery = 50
	spec.DiurnalEvery = 100
	l, err := spec.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(seed uint64) []Access {
		var out []Access
		for _, s := range l.Streams(seed) {
			for {
				a, ok := s.Next()
				if !ok {
					break
				}
				out = append(out, a)
			}
		}
		return out
	}
	a, b := collect(7), collect(7)
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("touch %d differs between identical seeds", i)
		}
	}
	c := collect(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical sequences")
	}
}

// TestTenantStreamVPNsInRangeAndZipfSkew checks every generated address
// belongs to some tenant and that the Zipf exponent actually
// concentrates traffic: the most popular tenant must see far more
// touches than a tail tenant.
func TestTenantStreamVPNsInRangeAndZipfSkew(t *testing.T) {
	spec := validTenantSpec()
	spec.ZipfS = 1.5
	spec.TotalTouches = 40_000
	l, err := spec.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	perTenant := make([]int, spec.Tenants)
	for _, s := range l.Streams(3) {
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if a.VPN < 0 || int(a.VPN) >= l.TotalPages {
				t.Fatalf("VPN %d outside [0, %d)", a.VPN, l.TotalPages)
			}
			perTenant[int(a.VPN)/spec.PagesPerTenant]++
		}
	}
	if perTenant[0] < 4*perTenant[spec.Tenants-1] {
		t.Errorf("Zipf s=1.5 barely skewed: rank-0 tenant got %d touches, last got %d",
			perTenant[0], perTenant[spec.Tenants-1])
	}
}

// TestTenantChurnRotatesHotSet verifies the popularity rotation: with
// churn enabled, the busiest tenant of an early epoch differs from the
// busiest tenant of a late epoch by exactly the stride schedule.
func TestTenantChurnRotatesHotSet(t *testing.T) {
	spec := validTenantSpec()
	spec.ZipfS = 2 // sharp: rank 0 dominates
	spec.ChurnEvery = 1000
	spec.ChurnStride = 5
	spec.TotalTouches = 2000 // one core: epoch 0 then epoch 1
	spec.Burst = 1
	l, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	s := l.Streams(1)[0]
	early := make([]int, spec.Tenants)
	late := make([]int, spec.Tenants)
	for i := 0; ; i++ {
		a, ok := s.Next()
		if !ok {
			break
		}
		tn := int(a.VPN) / spec.PagesPerTenant
		if i < 1000 {
			early[tn]++
		} else {
			late[tn]++
		}
	}
	argmax := func(v []int) int {
		best := 0
		for i := range v {
			if v[i] > v[best] {
				best = i
			}
		}
		return best
	}
	e, lt := argmax(early), argmax(late)
	if want := (e + 5) % spec.Tenants; lt != want {
		t.Errorf("epoch-1 hot tenant = %d, want %d (epoch-0 hot %d rotated by stride 5)", lt, want, e)
	}
}

// TestTenantWarmupCoversAllPagesOnce checks the warm-up walk touches
// every page of every tenant exactly once across the cores.
func TestTenantWarmupCoversAllPagesOnce(t *testing.T) {
	spec := validTenantSpec()
	for _, cores := range []int{1, 3, 8} {
		l, err := spec.Build(cores)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, l.TotalPages)
		total := 0
		for _, s := range l.WarmupStreams() {
			if s.Len() < 0 {
				t.Fatal("negative Len")
			}
			for {
				a, ok := s.Next()
				if !ok {
					break
				}
				counts[a.VPN]++
				total++
				if a.Write {
					t.Fatal("warm-up issued a write")
				}
			}
		}
		if total != l.TotalPages {
			t.Fatalf("%d cores: warm-up touched %d of %d pages", cores, total, l.TotalPages)
		}
		for p, c := range counts {
			if c != 1 {
				t.Fatalf("%d cores: page %d touched %d times", cores, p, c)
			}
		}
	}
}

// TestTenantDiurnalFlattens checks the trough phase spreads traffic:
// under a sharp peak exponent, the touch share of the rank-0 tenant
// during trough windows must be lower than during peak windows.
func TestTenantDiurnalFlattens(t *testing.T) {
	spec := validTenantSpec()
	spec.ZipfS = 2
	spec.DiurnalEvery = 2000
	spec.TotalTouches = 8000 // one core: peak, trough, peak, trough
	spec.Burst = 1
	l, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	s := l.Streams(9)[0]
	var peakHot, peakAll, troughHot, troughAll int
	for i := 0; ; i++ {
		a, ok := s.Next()
		if !ok {
			break
		}
		hot := int(a.VPN)/spec.PagesPerTenant == 0
		if (i/2000)%2 == 0 {
			peakAll++
			if hot {
				peakHot++
			}
		} else {
			troughAll++
			if hot {
				troughHot++
			}
		}
	}
	peakShare := float64(peakHot) / float64(peakAll)
	troughShare := float64(troughHot) / float64(troughAll)
	if troughShare >= peakShare {
		t.Errorf("trough hot-tenant share %.3f >= peak share %.3f; diurnal phase did nothing",
			troughShare, peakShare)
	}
}

// TestRangeStreamLenStable pins the warm-up stream's Len contract:
// Len reports the original size even after the walk consumed entries
// (machine warm-up reads Len once up front on some paths, later on
// others).
func TestRangeStreamLenStable(t *testing.T) {
	r := &rangeStream{next: sim.PageID(0), end: sim.PageID(5)}
	if r.Len() != 5 {
		t.Fatalf("fresh Len = %d", r.Len())
	}
	r.Next()
	r.Next()
	if r.Len() != 5 {
		t.Errorf("Len after consuming = %d, want 5", r.Len())
	}
}
