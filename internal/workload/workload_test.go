package workload

import (
	"testing"
	"testing/quick"

	"cmcp/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	good := CG()
	if err := good.Validate(); err != nil {
		t.Errorf("CG spec invalid: %v", err)
	}
	bad := good
	bad.Pages = 0
	if bad.Validate() == nil {
		t.Error("zero pages must fail")
	}
	bad = good
	bad.Sharing = []ShareBand{{Cores: 1, Frac: 0.5}}
	if bad.Validate() == nil {
		t.Error("fractions not summing to 1 must fail")
	}
	bad = good
	bad.Sharing = []ShareBand{{Cores: 0, Frac: 1}}
	if bad.Validate() == nil {
		t.Error("zero-core band must fail")
	}
	bad = good
	bad.HotQ = 1.5
	if bad.Validate() == nil {
		t.Error("probability out of range must fail")
	}
}

func TestAllAppsValid(t *testing.T) {
	for _, s := range Apps() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.HotFraction() <= 0 || s.HotFraction() > 1 {
			t.Errorf("%s: hot fraction %v", s.Name, s.HotFraction())
		}
	}
}

func TestHotFractionMatchesFigure8(t *testing.T) {
	// The hot-set fractions encode the turning points of Figure 8.
	checks := []struct {
		spec   Spec
		lo, hi float64
	}{
		{CG(), 0.28, 0.42},    // CG flat until ~35 %
		{SCALE(), 0.48, 0.62}, // SCALE flat until ~55 %
		{BT(), 0.85, 1.0},     // BT degrades immediately
		{LU(), 0.85, 1.0},     // LU degrades immediately
	}
	for _, c := range checks {
		h := c.spec.HotFraction()
		if h < c.lo || h > c.hi {
			t.Errorf("%s hot fraction = %.2f, want in [%.2f, %.2f]", c.spec.Name, h, c.lo, c.hi)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("cg.B"); !ok {
		t.Error("cg.B missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name found")
	}
}

func TestBuildPartitionsAllPages(t *testing.T) {
	l, err := CG().Build(8)
	if err != nil {
		t.Fatal(err)
	}
	// Every page must appear in at least one core's population, and the
	// page space must be dense 0..TotalPages-1.
	seen := make(map[sim.PageID]int)
	for c := 0; c < 8; c++ {
		for _, p := range l.HotPages(c) {
			seen[p]++
		}
		for _, p := range l.ColdPages(c) {
			seen[p]++
		}
	}
	if len(seen) != l.TotalPages {
		t.Errorf("pages covered = %d, want %d", len(seen), l.TotalPages)
	}
	for p := sim.PageID(0); p < sim.PageID(l.TotalPages); p++ {
		if seen[p] == 0 {
			t.Fatalf("page %d unassigned", p)
		}
	}
}

func TestBuildSharingProfile(t *testing.T) {
	// The realized owners-per-page histogram must match the bands.
	spec := BT()
	l, err := spec.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	owners := make(map[sim.PageID]int)
	for c := 0; c < 8; c++ {
		for _, p := range l.HotPages(c) {
			owners[p]++
		}
		for _, p := range l.ColdPages(c) {
			owners[p]++
		}
	}
	hist := make(map[int]int)
	for _, k := range owners {
		hist[k]++
	}
	for _, b := range spec.Sharing {
		want := float64(spec.Pages) * b.Frac
		got := float64(hist[b.Cores])
		if got < want*0.9-2 || got > want*1.1+2 {
			t.Errorf("band %d cores: %v pages, want ~%v", b.Cores, got, want)
		}
	}
}

func TestBuildPrivatePagesDisjoint(t *testing.T) {
	l, err := Private(1000, 1000).Build(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[sim.PageID]bool)
	for c := 0; c < 4; c++ {
		for _, p := range append(append([]sim.PageID{}, l.HotPages(c)...), l.ColdPages(c)...) {
			if seen[p] {
				t.Fatalf("private page %d owned by two cores", p)
			}
			seen[p] = true
		}
	}
}

func TestBuildMoreBandCoresThanCores(t *testing.T) {
	// A band wider than the machine clamps to all cores.
	l, err := SharedAll(100, 100, 8).Build(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.HotPages(0))+len(l.ColdPages(0)) != 100 {
		t.Error("core 0 must see every page")
	}
	if len(l.HotPages(1))+len(l.ColdPages(1)) != 100 {
		t.Error("core 1 must see every page")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := CG().Build(0); err == nil {
		t.Error("zero cores must fail")
	}
	bad := CG()
	bad.Pages = -1
	if _, err := bad.Build(4); err == nil {
		t.Error("invalid spec must fail Build")
	}
}

func TestStreamsDeterministic(t *testing.T) {
	spec := SCALE().Scale(0.05)
	l, _ := spec.Build(4)
	s1 := l.Streams(42)
	s2 := l.Streams(42)
	for c := range s1 {
		for {
			a1, ok1 := s1[c].Next()
			a2, ok2 := s2[c].Next()
			if ok1 != ok2 || a1 != a2 {
				t.Fatalf("core %d: streams diverge", c)
			}
			if !ok1 {
				break
			}
		}
	}
}

func TestStreamsSeedChangesSequence(t *testing.T) {
	l, _ := CG().Scale(0.05).Build(2)
	a := l.Streams(1)[0]
	b := l.Streams(2)[0]
	same := 0
	for i := 0; i < 100; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x == y {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different seeds matched %d/100 draws", same)
	}
}

func TestStreamLengthAndTermination(t *testing.T) {
	spec := Uniform(256, 1000)
	l, _ := spec.Build(4)
	streams := l.Streams(7)
	for c, s := range streams {
		if s.Len() != 250 {
			t.Errorf("core %d stream len = %d, want 250", c, s.Len())
		}
		n := 0
		for {
			_, ok := s.Next()
			if !ok {
				break
			}
			n++
		}
		if n != 250 {
			t.Errorf("core %d yielded %d", c, n)
		}
		if _, ok := s.Next(); ok {
			t.Error("stream must stay exhausted")
		}
	}
}

func TestStreamHotBias(t *testing.T) {
	spec := CG()
	l, _ := spec.Build(4)
	s := l.Streams(3)[0]
	hotSet := make(map[sim.PageID]bool)
	for _, p := range l.HotPages(0) {
		hotSet[p] = true
	}
	hot, total := 0, 0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		total++
		if hotSet[a.VPN] {
			hot++
		}
	}
	frac := float64(hot) / float64(total)
	if frac < spec.HotQ-0.05 || frac > spec.HotQ+0.05 {
		t.Errorf("hot access fraction = %.3f, want ~%.2f", frac, spec.HotQ)
	}
}

func TestStreamWriteFraction(t *testing.T) {
	spec := BT().Scale(0.2)
	l, _ := spec.Build(2)
	s := l.Streams(5)[0]
	writes, total := 0, 0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		total++
		if a.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(total)
	if frac < spec.WriteFrac-0.05 || frac > spec.WriteFrac+0.05 {
		t.Errorf("write fraction = %.3f, want ~%.2f", frac, spec.WriteFrac)
	}
}

func TestStreamVPNsInRange(t *testing.T) {
	f := func(seed uint16, coresRaw uint8) bool {
		cores := int(coresRaw%8) + 1
		spec := LU().Scale(0.03)
		l, err := spec.Build(cores)
		if err != nil {
			return false
		}
		for _, s := range l.Streams(uint64(seed)) {
			for i := 0; i < 200; i++ {
				a, ok := s.Next()
				if !ok {
					break
				}
				if a.VPN < 0 || a.VPN >= sim.PageID(l.TotalPages) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScaleClamps(t *testing.T) {
	s := CG().Scale(0.000001)
	if s.Pages < 64 || s.TotalTouches < 1024 {
		t.Error("Scale must clamp to minimums")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPhaseShiftChangesPools(t *testing.T) {
	spec := SCALE().Scale(0.02)
	spec.PhaseShift = true
	l, err := spec.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	s := l.Streams(9)[0]
	// Collect the pages touched in each half.
	firstHalf := make(map[sim.PageID]bool)
	secondHalf := make(map[sim.PageID]bool)
	n := s.Len()
	for i := 0; i < n; i++ {
		a, ok := s.Next()
		if !ok {
			t.Fatal("stream ended early")
		}
		if i < n/2 {
			firstHalf[a.VPN] = true
		} else {
			secondHalf[a.VPN] = true
		}
	}
	// The partner core's pools differ, so the second half must touch
	// many pages the first half never did.
	fresh := 0
	for p := range secondHalf {
		if !firstHalf[p] {
			fresh++
		}
	}
	if fresh < len(secondHalf)/2 {
		t.Errorf("phase shift: only %d/%d second-half pages are new", fresh, len(secondHalf))
	}
	// Without PhaseShift the halves overlap heavily.
	spec.PhaseShift = false
	l2, _ := spec.Build(4)
	s2 := l2.Streams(9)[0]
	h1 := make(map[sim.PageID]bool)
	h2 := make(map[sim.PageID]bool)
	for i := 0; i < n; i++ {
		a, _ := s2.Next()
		if i < n/2 {
			h1[a.VPN] = true
		} else {
			h2[a.VPN] = true
		}
	}
	overlap := 0
	for p := range h2 {
		if h1[p] {
			overlap++
		}
	}
	if overlap < len(h2)/2 {
		t.Errorf("baseline: halves overlap only %d/%d", overlap, len(h2))
	}
}
