// Package workload synthesizes the per-core memory access streams of
// the paper's applications: NPB CG, LU and BT (OpenMP, strong scaling)
// and RIKEN's SCALE climate stencil.
//
// A Go library cannot run the Fortran originals on a Xeon Phi, and the
// replacement policies never see source code anyway — they observe
// page-level access streams. Each workload is therefore specified by
// the observables the paper reports:
//
//   - the page-sharing profile: what fraction of computation-area pages
//     is mapped by how many cores (Figure 6);
//   - the hot-set fraction: how much memory captures most accesses,
//     which sets where performance starts dropping under memory
//     constraint (Figure 8: CG ~35 %, SCALE ~55 %, BT/LU immediate);
//   - the access skew that lets LRU reduce page faults below FIFO
//     (Table 1) and makes shared pages valuable to retain (CMCP's win).
//
// Streams are deterministic: the same (spec, cores, seed) triple yields
// bit-identical sequences, independent of scheduling.
package workload

import (
	"fmt"
	"math"

	"cmcp/internal/sim"
)

// Access is one simulated page touch.
type Access struct {
	VPN   sim.PageID
	Write bool
}

// Stream yields one core's access sequence.
type Stream interface {
	// Next returns the next access; ok is false when the stream ends.
	Next() (a Access, ok bool)
	// Len returns the total number of accesses the stream will yield.
	Len() int
}

// ShareBand declares that Frac of the computation-area pages are each
// mapped by exactly Cores (adjacent) cores. HotFrac, when positive,
// overrides the spec-level SharedHotFrac/PrivateHotFrac for this band —
// used when heat correlates with sharing degree (e.g. CG's all-core
// vector segments are far hotter than its two-core matrix overlaps).
type ShareBand struct {
	Cores   int
	Frac    float64
	HotFrac float64
}

// Spec is the parametric description of a workload.
type Spec struct {
	// Name labels experiment output (e.g. "cg.B").
	Name string
	// Pages is the computation-area size in 4 kB pages.
	Pages int
	// TotalTouches is the aggregate access count across all cores
	// (strong scaling: per-core work shrinks as cores grow).
	TotalTouches int
	// WriteFrac is the probability a touch is a store.
	WriteFrac float64
	// Sharing is the page-sharing profile; fractions must sum to ~1.
	// Band k=1 is per-core private data.
	Sharing []ShareBand
	// SharedHotFrac is the fraction of shared pages in the hot set.
	SharedHotFrac float64
	// PrivateHotFrac is the fraction of private pages in the hot set.
	PrivateHotFrac float64
	// HotQ is the probability a touch lands in the hot set.
	HotQ float64
	// Burst is the number of consecutive touches a core issues to a
	// selected page before picking the next one (intra-page reuse: a
	// 4 kB page holds 512 doubles, so a sweep touches it many times
	// while it is resident). Zero means DefaultBurst.
	Burst int
	// SeqP is the probability that the next page selection continues
	// sequentially (the next page of the core's own population)
	// instead of drawing randomly — the streaming component of HPC
	// sweeps. Sequential runs are what large mappings prefetch for:
	// one 64 kB fault brings the next 15 pages of a walk.
	SeqP float64
	// PhaseShift, when true, changes the inter-core sharing pattern
	// halfway through each core's stream: cores switch to the pools of
	// the core (id + Cores/2) mod Cores. The page-sharing profile stays
	// identical but WHICH cores map each page drifts — the scenario the
	// paper's §5.6 notes would need periodic PSPT rebuilding, since
	// stale core-map counts stop reflecting reality.
	PhaseShift bool
	// HotStripe is the spatial clustering granularity of the hot set,
	// in contiguous base pages: heat is decided per stripe rather than
	// per page, reflecting that HPC arrays have spatially clustered hot
	// regions. This is what gives large mappings (64 kB / 2 MB) regions
	// that are wholly hot or wholly cold; with per-page interleaving a
	// large page would always contain hot data and any memory
	// constraint would thrash. Zero means DefaultHotStripe.
	HotStripe int
	// HotSkew grades popularity inside the hot pool: a draw picks hot
	// index floor(n*u^HotSkew) for uniform u, so with skew > 1 the
	// front of the pool (the most-shared pages, since Build lays bands
	// out in spec order) is touched far more often than the back. This
	// is the within-working-set reuse gradient that lets LRU cut page
	// faults below FIFO (Table 1) and makes the most-shared pages the
	// most valuable to retain. Zero or one means uniform.
	HotSkew float64
}

// DefaultBurst is the intra-page reuse factor used when Spec.Burst is
// zero.
const DefaultBurst = 8

// DefaultHotStripe is the hot-set spatial clustering granularity used
// when Spec.HotStripe is zero: 128 pages = 512 kB.
const DefaultHotStripe = 128

// Validate reports structural problems in the spec.
func (s Spec) Validate() error {
	if s.Pages <= 0 || s.TotalTouches <= 0 {
		return fmt.Errorf("workload %s: pages/touches must be positive", s.Name)
	}
	var sum float64
	for _, b := range s.Sharing {
		if b.Cores < 1 {
			return fmt.Errorf("workload %s: band with %d cores", s.Name, b.Cores)
		}
		if b.Frac < 0 {
			return fmt.Errorf("workload %s: negative band fraction", s.Name)
		}
		if b.HotFrac < 0 || b.HotFrac > 1 {
			return fmt.Errorf("workload %s: band hot fraction %v out of range", s.Name, b.HotFrac)
		}
		sum += b.Frac
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload %s: band fractions sum to %v", s.Name, sum)
	}
	for _, f := range []float64{s.WriteFrac, s.SharedHotFrac, s.PrivateHotFrac, s.HotQ, s.SeqP} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workload %s: probability %v out of range", s.Name, f)
		}
	}
	if s.Burst < 0 {
		return fmt.Errorf("workload %s: negative burst %d", s.Name, s.Burst)
	}
	if s.HotSkew < 0 {
		return fmt.Errorf("workload %s: negative hot skew %v", s.Name, s.HotSkew)
	}
	if s.HotStripe < 0 {
		return fmt.Errorf("workload %s: negative hot stripe %d", s.Name, s.HotStripe)
	}
	return nil
}

// hotStripe returns the effective hot clustering granularity.
func (s Spec) hotStripe() int {
	if s.HotStripe <= 0 {
		return DefaultHotStripe
	}
	return s.HotStripe
}

// burst returns the effective intra-page reuse factor.
func (s Spec) burst() int {
	if s.Burst <= 0 {
		return DefaultBurst
	}
	return s.Burst
}

// HotFraction returns the expected fraction of pages in the hot set —
// the memory ratio below which performance should start dropping.
func (s Spec) HotFraction() float64 {
	var hot float64
	for _, b := range s.Sharing {
		f := s.SharedHotFrac
		if b.Cores == 1 {
			f = s.PrivateHotFrac
		}
		if b.HotFrac > 0 {
			f = b.HotFrac
		}
		hot += b.Frac * f
	}
	return hot
}

// Build lays out the computation area for the given core count and
// returns the per-core populations. Pages are dealt band by band:
// private pages are split evenly among cores; a band shared by k cores
// is divided into groups, each assigned to k adjacent cores (halo-style
// neighbour sharing, matching the stencil/NPB patterns in Fig. 6).
func (s Spec) Build(cores int) (*Layout, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("workload %s: %d cores", s.Name, cores)
	}
	l := &Layout{
		Spec:  s,
		Cores: cores,
		hot:   make([][]sim.PageID, cores),
		cold:  make([][]sim.PageID, cores),
	}
	next := sim.PageID(0)
	// Deterministic striping of hot/cold within each band: every
	// 1/hotFrac-th page is hot.
	for _, b := range s.Sharing {
		bandPages := int(float64(s.Pages)*b.Frac + 0.5)
		hotFrac := s.SharedHotFrac
		if b.Cores == 1 {
			hotFrac = s.PrivateHotFrac
		}
		if b.HotFrac > 0 {
			hotFrac = b.HotFrac
		}
		k := b.Cores
		if k > cores {
			k = cores // cannot share among more cores than exist
		}
		stripe := s.hotStripe()
		for i := 0; i < bandPages; i++ {
			page := next
			next++
			// Deterministic striping at HotStripe granularity: stripe b
			// is hot iff the running quota floor(hotFrac*(b+1)) advances
			// at b, which marks a hotFrac share of the band's stripes
			// (and hence pages) as hot while keeping heat spatially
			// clustered for the large-page experiments.
			b := float64(i / stripe)
			isHot := int(hotFrac*(b+1)) > int(hotFrac*b)
			// Owner group: k adjacent cores, rotating start so groups
			// spread evenly.
			start := (i * cores / max(bandPages, 1)) % cores
			for j := 0; j < k; j++ {
				c := (start + j) % cores
				if isHot {
					l.hot[c] = append(l.hot[c], page)
				} else {
					l.cold[c] = append(l.cold[c], page)
				}
			}
		}
	}
	l.TotalPages = int(next)
	return l, nil
}

// Layout is the materialized per-core page populations of a workload at
// a given core count.
type Layout struct {
	Spec       Spec
	Cores      int
	TotalPages int
	hot, cold  [][]sim.PageID
}

// HotPages returns core's hot population (shared halos + hot private).
func (l *Layout) HotPages(core int) []sim.PageID { return l.hot[core] }

// ColdPages returns core's cold population.
func (l *Layout) ColdPages(core int) []sim.PageID { return l.cold[core] }

// Streams creates the per-core access streams for this layout. Each
// core draws TotalTouches/Cores accesses: with probability HotQ a
// uniform hot page, otherwise a uniform cold page; each touch is a
// store with probability WriteFrac.
func (l *Layout) Streams(seed uint64) []Stream {
	streams := make([]Stream, l.Cores)
	perCore := l.Spec.TotalTouches / l.Cores
	if perCore < 1 {
		perCore = 1
	}
	root := sim.NewRNG(seed)
	for c := 0; c < l.Cores; c++ {
		hot2, cold2 := l.hot[c], l.cold[c]
		if l.Spec.PhaseShift {
			partner := (c + l.Cores/2) % l.Cores
			hot2, cold2 = l.hot[partner], l.cold[partner]
		}
		streams[c] = &randStream{
			rng:       root.Split(),
			hot:       l.hot[c],
			cold:      l.cold[c],
			hot2:      hot2,
			cold2:     cold2,
			hotQ:      l.Spec.HotQ,
			hotSkew:   l.Spec.HotSkew,
			seqP:      l.Spec.SeqP,
			writeFrac: l.Spec.WriteFrac,
			burst:     l.Spec.burst(),
			remaining: perCore,
			total:     perCore,
		}
	}
	return streams
}

// WarmupStreams returns streams that touch each page of every core's
// population exactly once, in page order. The engine uses them to bring
// the system to steady state (resident set populated, TLBs warm) before
// the measured phase, mirroring the paper's steady-state iteration
// measurements — otherwise scaled-down runs are dominated by one-time
// demand paging that real multi-minute runs amortize away.
func (l *Layout) WarmupStreams() []Stream {
	streams := make([]Stream, l.Cores)
	for c := 0; c < l.Cores; c++ {
		pages := make([]sim.PageID, 0, len(l.hot[c])+len(l.cold[c]))
		pages = append(pages, l.hot[c]...)
		pages = append(pages, l.cold[c]...)
		streams[c] = &sliceStream{pages: pages}
	}
	return streams
}

// sliceStream replays a fixed page list once, as reads.
type sliceStream struct {
	pages []sim.PageID
	pos   int
}

// Next implements Stream.
func (s *sliceStream) Next() (Access, bool) {
	if s.pos >= len(s.pages) {
		return Access{}, false
	}
	a := Access{VPN: s.pages[s.pos]}
	s.pos++
	return a, true
}

// Len implements Stream.
func (s *sliceStream) Len() int { return len(s.pages) }

// randStream draws pages from the two-tier population and touches each
// selected page `burst` consecutive times (intra-page reuse).
type randStream struct {
	rng         *sim.RNG
	hot, cold   []sim.PageID
	hot2, cold2 []sim.PageID // post-phase-shift pools (same as hot/cold without PhaseShift)
	hotQ        float64
	hotSkew     float64
	seqP        float64
	writeFrac   float64
	burst       int
	remaining   int
	total       int

	cur     sim.PageID
	curPool []sim.PageID // pool the current page came from
	curIdx  int          // index of cur within curPool
	curLeft int
}

// Next implements Stream.
func (r *randStream) Next() (Access, bool) {
	if r.remaining <= 0 {
		return Access{}, false
	}
	if r.remaining == r.total/2 && (len(r.hot2) > 0 || len(r.cold2) > 0) {
		// Phase shift: adopt the second-half pools.
		r.hot, r.cold = r.hot2, r.cold2
		r.curLeft = 0
	}
	r.remaining--
	if r.curLeft <= 0 {
		// Streaming component: continue the sequential walk through the
		// core's own population with probability seqP (runs have
		// geometric mean length 1/(1-seqP)). Walking the pool keeps the
		// stream inside the core's partition, so the sharing profile of
		// Fig. 6 is exactly the one Build laid out.
		if r.seqP > 0 && r.curPool != nil && r.curIdx+1 < len(r.curPool) && r.rng.Float64() < r.seqP {
			r.curIdx++
			r.cur = r.curPool[r.curIdx]
			r.curLeft = r.burst - 1
			return Access{VPN: r.cur, Write: r.rng.Float64() < r.writeFrac}, true
		}
		hot := len(r.cold) == 0 || (len(r.hot) > 0 && r.rng.Float64() < r.hotQ)
		pool := r.cold
		if hot {
			pool = r.hot
		}
		switch {
		case len(pool) == 0:
			// Degenerate spec (no pages for this core): touch page 0.
			r.cur = 0
			r.curPool = nil
		case hot && r.hotSkew > 1:
			// Graded popularity: skewed index into the hot pool.
			u := r.rng.Float64()
			u = math.Pow(u, r.hotSkew)
			r.curIdx = int(u * float64(len(pool)))
			r.cur = pool[r.curIdx]
			r.curPool = pool
		default:
			r.curIdx = r.rng.Intn(len(pool))
			r.cur = pool[r.curIdx]
			r.curPool = pool
		}
		r.curLeft = r.burst
	}
	r.curLeft--
	return Access{VPN: r.cur, Write: r.rng.Float64() < r.writeFrac}, true
}

// Len implements Stream.
func (r *randStream) Len() int { return r.total }
