package workload

// This file instantiates the paper's four applications as Specs. The
// sharing profiles follow Figure 6; hot-set fractions follow the
// turning points of Figure 8 (CG ~35 %, SCALE ~55 %, BT/LU immediate
// degradation ⇒ hot set ≈ the whole footprint); the access skew is set
// so the LRU/FIFO/CMCP fault-count ordering of Table 1 emerges.
//
// Class B footprints are scaled down ~16x from the real benchmarks
// (and class C ~2.5x over B) so a full experiment sweep runs in
// seconds; the *ratios* that drive every result — memory constraint,
// hot fraction, sharing profile, touches per page — are preserved.

// Scale multiplies a spec's footprint and work for quick test runs
// (scale < 1) or higher-fidelity runs (scale > 1).
func (s Spec) Scale(f float64) Spec {
	s.Pages = int(float64(s.Pages) * f)
	if s.Pages < 64 {
		s.Pages = 64
	}
	s.TotalTouches = int(float64(s.TotalTouches) * f)
	if s.TotalTouches < 1024 {
		s.TotalTouches = 1024
	}
	s.HotStripe = int(float64(s.hotStripe()) * f)
	if s.HotStripe < 1 {
		s.HotStripe = 1
	}
	return s
}

// CG models NAS Conjugate Gradient: the sparse matrix rows are
// partitioned per core (private, mostly cold — sparse data touched once
// per iteration), while the input/output vector segments are shared by
// adjacent partitions through the matrix band structure. Over half the
// pages are core-private and nearly all the rest are shared by two
// cores (Fig. 6a); the hot set — vectors plus the densest rows — is
// ~35 % of the footprint (Fig. 8).
func CG() Spec {
	return Spec{
		Name:         "cg.B",
		Pages:        16384, // 64 MB at 4 kB
		TotalTouches: 3_500_000,
		WriteFrac:    0.25,
		Sharing: []ShareBand{
			{Cores: 3, Frac: 0.08, HotFrac: 1.0},  // vector segments: small, all hot
			{Cores: 2, Frac: 0.37, HotFrac: 0.15}, // matrix band overlaps: mostly cold
			{Cores: 1, Frac: 0.55},                // private sparse rows
		},
		HotSkew:        2.5,
		SeqP:           0.65,
		PrivateHotFrac: 0.45,
		HotQ:           0.985,
	}
}

// LU models NAS Lower-Upper Gauss-Seidel: the wavefront sweep couples
// each core's block with several neighbours, so sharing extends to ~6
// cores with the majority of pages mapped by at most three (Fig. 6b).
// The whole footprint is swept every iteration, so performance degrades
// as soon as memory is constrained (Fig. 8), with enough skew toward
// the wavefront boundary data for LRU to cut faults (Table 1).
func LU() Spec {
	return Spec{
		Name:         "lu.B",
		Pages:        14336, // 56 MB
		TotalTouches: 3_200_000,
		WriteFrac:    0.35,
		Sharing: []ShareBand{
			{Cores: 7, Frac: 0.02},
			{Cores: 6, Frac: 0.04},
			{Cores: 5, Frac: 0.06},
			{Cores: 4, Frac: 0.10},
			{Cores: 3, Frac: 0.18},
			{Cores: 2, Frac: 0.28},
			{Cores: 1, Frac: 0.32},
		},
		HotSkew:        2.5,
		SeqP:           0.60,
		SharedHotFrac:  1.0,
		PrivateHotFrac: 0.75,
		HotQ:           0.80,
	}
}

// BT models NAS Block Tridiagonal: solves along three dimensions couple
// blocks with neighbours in each direction, giving the broadest sharing
// profile of the four (up to ~8 cores, majority under six — Fig. 6c)
// and immediate degradation under memory constraint (Fig. 8).
func BT() Spec {
	return Spec{
		Name:         "bt.B",
		Pages:        20480, // 80 MB
		TotalTouches: 3_800_000,
		WriteFrac:    0.40,
		Sharing: []ShareBand{
			{Cores: 8, Frac: 0.02},
			{Cores: 7, Frac: 0.03},
			{Cores: 6, Frac: 0.05},
			{Cores: 5, Frac: 0.08},
			{Cores: 4, Frac: 0.12},
			{Cores: 3, Frac: 0.16},
			{Cores: 2, Frac: 0.24},
			{Cores: 1, Frac: 0.30},
		},
		HotSkew:        3.5,
		SeqP:           0.60,
		SharedHotFrac:  1.0,
		PrivateHotFrac: 0.80,
		HotQ:           0.78,
	}
}

// SCALE models RIKEN's climate stencil: multiple 2-D grids partitioned
// in blocks per core; interiors are private, halo rows are shared by
// exactly two neighbours (Fig. 6d: >50 % private, remainder almost all
// 2-core). The hot set — the active grids of the current time step —
// is ~55 % of the footprint (Fig. 8).
func SCALE() Spec {
	return Spec{
		Name:         "SCALE",
		Pages:        18432, // 72 MB ~ the paper's 512 MB "sml" scaled
		TotalTouches: 3_600_000,
		WriteFrac:    0.45,
		Sharing: []ShareBand{
			{Cores: 3, Frac: 0.03},
			{Cores: 2, Frac: 0.45},
			{Cores: 1, Frac: 0.52},
		},
		HotSkew:        2.0,
		SeqP:           0.70,
		SharedHotFrac:  0.80,
		PrivateHotFrac: 0.38,
		HotQ:           0.99,
	}
}

// Apps returns the paper's four workloads in presentation order.
func Apps() []Spec { return []Spec{BT(), LU(), CG(), SCALE()} }

// ByName returns the spec with the given Name, matching the names used
// in experiment output (bt.B, lu.B, cg.B, SCALE).
func ByName(name string) (Spec, bool) {
	for _, s := range Apps() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Private is a test workload where every page is core-private.
func Private(pages, touches int) Spec {
	return Spec{
		Name: "private", Pages: pages, TotalTouches: touches,
		WriteFrac: 0.3,
		Sharing:   []ShareBand{{Cores: 1, Frac: 1}},
		HotQ:      0.5, PrivateHotFrac: 0.5,
	}
}

// SharedAll is a test workload where every page is shared by all cores
// (worst case for shootdowns even under PSPT).
func SharedAll(pages, touches, cores int) Spec {
	return Spec{
		Name: "sharedall", Pages: pages, TotalTouches: touches,
		WriteFrac: 0.3,
		Sharing:   []ShareBand{{Cores: cores, Frac: 1}},
		HotQ:      0.5, SharedHotFrac: 0.5,
	}
}

// Uniform is a test workload with a flat access distribution over
// private pages (no hot set: every policy behaves alike).
func Uniform(pages, touches int) Spec {
	return Spec{
		Name: "uniform", Pages: pages, TotalTouches: touches,
		WriteFrac: 0.3,
		Sharing:   []ShareBand{{Cores: 1, Frac: 1}},
		HotQ:      0, PrivateHotFrac: 0,
	}
}
