package workload

import (
	"fmt"
	"math"
	"sort"

	"cmcp/internal/sim"
)

// TenantSpec describes serving-shaped multi-tenant traffic: many small
// address spaces (key-value shards, model replicas) whose popularity
// follows a Zipf distribution, with optional popularity churn and a
// diurnal phase. It replaces Spec on multi-tenant runs — one machine,
// Tenants address spaces, one shared frame pool.
//
// Tenant t owns the global pages [t·PagesPerTenant, (t+1)·PagesPerTenant).
// Streams are deterministic: the same (spec, cores, seed) triple yields
// bit-identical sequences, independent of scheduling.
type TenantSpec struct {
	// Tenants is the number of address spaces.
	Tenants int
	// PagesPerTenant is each tenant's footprint in 4 kB pages.
	PagesPerTenant int
	// TotalTouches is the aggregate access count across all cores.
	TotalTouches int
	// WriteFrac is the probability a touch is a write.
	WriteFrac float64
	// ZipfS is the exponent of the tenant popularity distribution:
	// popularity(rank r) ∝ 1/(r+1)^s. Zero means uniform traffic.
	ZipfS float64
	// PageSkew grades popularity inside a tenant the way Spec.HotSkew
	// grades the hot pool: page index = ⌊pages·u^PageSkew⌋. Values ≤ 1
	// mean uniform.
	PageSkew float64
	// Burst is the intra-page reuse factor. Zero means DefaultBurst.
	Burst int
	// ChurnEvery rotates which tenants are popular after that many
	// touches on each core: popularity rank r maps to tenant
	// (r + epoch·ChurnStride) mod Tenants. Zero disables churn.
	ChurnEvery int
	// ChurnStride is the rotation distance per churn epoch. Zero means 1.
	ChurnStride int
	// DiurnalEvery alternates peak and trough traffic shape with that
	// half-period (in per-core touches): trough phases flatten the
	// tenant popularity exponent to ZipfS/2, spreading load across the
	// long tail the way off-peak serving traffic does. Zero disables it.
	DiurnalEvery int
	// Weights are the per-tenant eviction weights (shares of the frame
	// pool). Nil means uniform. Length must equal Tenants otherwise.
	Weights []float64
	// HardPartition carves the frame pool into fixed per-tenant quotas
	// proportional to Weights instead of applying proportional
	// eviction pressure.
	HardPartition bool
}

// DefaultTenantSpec returns a serving-shaped spec sized so every tenant
// sees traffic: ~400 touches per tenant over a 16-page footprint, with
// graded within-tenant popularity. Used by cmcpsim -tenants and the
// multitenant example.
func DefaultTenantSpec(tenants int, zipfS float64, churnEvery int) TenantSpec {
	return TenantSpec{
		Tenants:        tenants,
		PagesPerTenant: 16,
		TotalTouches:   tenants * 400,
		WriteFrac:      0.25,
		ZipfS:          zipfS,
		PageSkew:       2,
		ChurnEvery:     churnEvery,
	}
}

// Name labels experiment output, mirroring Spec.Name.
func (s *TenantSpec) Name() string {
	return fmt.Sprintf("tenants-%dx%d", s.Tenants, s.PagesPerTenant)
}

// Validate checks the spec for internal consistency.
func (s *TenantSpec) Validate() error {
	if s.Tenants <= 0 {
		return fmt.Errorf("tenants: non-positive tenant count %d", s.Tenants)
	}
	if s.PagesPerTenant <= 0 {
		return fmt.Errorf("tenants: non-positive pages per tenant %d", s.PagesPerTenant)
	}
	if s.Tenants > (1<<31)/s.PagesPerTenant {
		return fmt.Errorf("tenants: %d tenants x %d pages overflows the page space",
			s.Tenants, s.PagesPerTenant)
	}
	if s.TotalTouches <= 0 {
		return fmt.Errorf("tenants: non-positive touch count %d", s.TotalTouches)
	}
	if s.WriteFrac < 0 || s.WriteFrac > 1 {
		return fmt.Errorf("tenants: write fraction %g outside [0,1]", s.WriteFrac)
	}
	if s.ZipfS < 0 {
		return fmt.Errorf("tenants: negative Zipf exponent %g", s.ZipfS)
	}
	if s.PageSkew < 0 {
		return fmt.Errorf("tenants: negative page skew %g", s.PageSkew)
	}
	if s.Burst < 0 {
		return fmt.Errorf("tenants: negative burst %d", s.Burst)
	}
	if s.ChurnEvery < 0 || s.ChurnStride < 0 || s.DiurnalEvery < 0 {
		return fmt.Errorf("tenants: negative churn/diurnal schedule")
	}
	if len(s.Weights) != 0 && len(s.Weights) != s.Tenants {
		return fmt.Errorf("tenants: %d weights for %d tenants", len(s.Weights), s.Tenants)
	}
	for i, w := range s.Weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("tenants: weight[%d] = %g must be positive and finite", i, w)
		}
	}
	return nil
}

// Build validates the spec and precomputes the popularity tables shared
// by all per-core streams.
func (s *TenantSpec) Build(cores int) (*TenantLayout, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("tenants: non-positive core count %d", cores)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	l := &TenantLayout{
		Spec:       *s,
		Cores:      cores,
		TotalPages: s.Tenants * s.PagesPerTenant,
	}
	if s.ZipfS > 0 {
		l.peak = zipfCDF(s.Tenants, s.ZipfS)
		if s.DiurnalEvery > 0 {
			l.trough = zipfCDF(s.Tenants, s.ZipfS/2)
		}
	}
	return l, nil
}

// TenantLayout is a built TenantSpec: the popularity CDFs all per-core
// streams share, analogous to Layout for Spec.
type TenantLayout struct {
	Spec       TenantSpec
	Cores      int
	TotalPages int

	peak   []float64 // cumulative tenant popularity by rank; nil = uniform
	trough []float64 // flattened off-peak CDF; nil unless diurnal
}

// zipfCDF returns the cumulative distribution over n ranks with
// popularity(r) ∝ 1/(r+1)^s, normalized so the last entry is exactly 1.
func zipfCDF(n int, s float64) []float64 {
	cum := make([]float64, n)
	var total float64
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		cum[r] = total
	}
	for r := range cum {
		cum[r] /= total
	}
	cum[n-1] = 1
	return cum
}

// Streams returns one measured-phase stream per core. Touch counts and
// RNG splitting mirror Layout.Streams so engine behavior is identical.
func (l *TenantLayout) Streams(seed uint64) []Stream {
	streams := make([]Stream, l.Cores)
	perCore := l.Spec.TotalTouches / l.Cores
	if perCore < 1 {
		perCore = 1
	}
	root := sim.NewRNG(seed)
	for c := 0; c < l.Cores; c++ {
		burst := l.Spec.Burst
		if burst <= 0 {
			burst = DefaultBurst
		}
		stride := l.Spec.ChurnStride
		if stride <= 0 {
			stride = 1
		}
		streams[c] = &tenantStream{
			rng:       root.Split(),
			layout:    l,
			stride:    stride,
			burst:     burst,
			remaining: perCore,
			total:     perCore,
		}
	}
	return streams
}

// WarmupStreams partitions the whole page space contiguously across the
// cores and walks it once, faulting every tenant's pages in.
func (l *TenantLayout) WarmupStreams() []Stream {
	streams := make([]Stream, l.Cores)
	for c := 0; c < l.Cores; c++ {
		lo := l.TotalPages * c / l.Cores
		hi := l.TotalPages * (c + 1) / l.Cores
		streams[c] = &rangeStream{next: sim.PageID(lo), end: sim.PageID(hi)}
	}
	return streams
}

// rangeStream touches [next, end) once each, as reads.
type rangeStream struct {
	next, end sim.PageID
	total     int
	init      bool
}

// Next implements Stream.
func (r *rangeStream) Next() (Access, bool) {
	if !r.init {
		r.total = int(r.end - r.next)
		r.init = true
	}
	if r.next >= r.end {
		return Access{}, false
	}
	a := Access{VPN: r.next}
	r.next++
	return a, true
}

// Len implements Stream.
func (r *rangeStream) Len() int {
	if r.init {
		return r.total
	}
	return int(r.end - r.next)
}

// tenantStream draws (tenant, page) pairs from the layout's popularity
// tables: a Zipf draw picks the popularity rank, the churn epoch maps
// rank to tenant, and PageSkew grades the page inside the tenant. Each
// selected page is touched burst consecutive times.
type tenantStream struct {
	rng       *sim.RNG
	layout    *TenantLayout
	stride    int
	burst     int
	remaining int
	total     int

	cur     sim.PageID
	curLeft int
}

// Next implements Stream.
func (t *tenantStream) Next() (Access, bool) {
	if t.remaining <= 0 {
		return Access{}, false
	}
	idx := t.total - t.remaining // 0-based index of this touch on this core
	t.remaining--
	if t.curLeft <= 0 {
		spec := &t.layout.Spec
		cum := t.layout.peak
		if spec.DiurnalEvery > 0 && t.layout.trough != nil &&
			(idx/spec.DiurnalEvery)%2 == 1 {
			cum = t.layout.trough
		}
		var rank int
		if cum == nil {
			rank = t.rng.Intn(spec.Tenants)
		} else {
			u := t.rng.Float64()
			rank = sort.SearchFloat64s(cum, u)
			if rank >= spec.Tenants {
				rank = spec.Tenants - 1
			}
		}
		tenant := rank
		if spec.ChurnEvery > 0 {
			epoch := idx / spec.ChurnEvery
			tenant = (rank + epoch*t.stride) % spec.Tenants
		}
		var page int
		if spec.PageSkew > 1 {
			u := t.rng.Float64()
			page = int(math.Pow(u, spec.PageSkew) * float64(spec.PagesPerTenant))
			if page >= spec.PagesPerTenant {
				page = spec.PagesPerTenant - 1
			}
		} else {
			page = t.rng.Intn(spec.PagesPerTenant)
		}
		t.cur = sim.PageID(tenant*spec.PagesPerTenant + page)
		t.curLeft = t.burst
	}
	t.curLeft--
	return Access{VPN: t.cur, Write: t.rng.Float64() < t.layout.Spec.WriteFrac}, true
}

// Len implements Stream.
func (t *tenantStream) Len() int { return t.total }
