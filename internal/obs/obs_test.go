package obs

import (
	"strings"
	"testing"

	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

func TestRingOrderAndWraparound(t *testing.T) {
	r := NewRecorder(Config{Events: 4})
	for i := 0; i < 6; i++ {
		r.Emit(sim.Cycles(i), 0, EvFault, sim.PageID(i), 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want ring capacity 4", len(evs))
	}
	for i, e := range evs {
		if want := sim.PageID(i + 2); e.Page != want {
			t.Errorf("event %d: page %d, want %d (oldest-first after wrap)", i, e.Page, want)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", r.Dropped())
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRecorder(Config{Events: 8})
	r.Emit(10, 1, EvEviction, 42, 3)
	r.Emit(20, 2, EvWriteBack, 42, 4096)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Type != EvEviction || evs[1].Type != EvWriteBack {
		t.Fatalf("unexpected events %+v", evs)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", r.Dropped())
	}
}

func TestNegativeCapacityDisablesEvents(t *testing.T) {
	r := NewRecorder(Config{Events: -1, SampleEvery: 10})
	r.Emit(1, 0, EvFault, 1, 0)
	if len(r.Events()) != 0 {
		t.Fatal("events recorded despite Events: -1")
	}
	if !r.Sampling() {
		t.Fatal("sampler should stay enabled with events disabled")
	}
}

func TestMaybeSampleSchedule(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 100})
	fills := 0
	for now := sim.Cycles(0); now <= 1000; now += 25 {
		r.MaybeSample(now, func(s *Sample) {
			fills++
			s.Resident = fills
		})
	}
	// Deadlines at 0, 100, 200, ..., 1000 → 11 samples.
	if fills != 11 || len(r.Samples()) != 11 {
		t.Fatalf("fills=%d samples=%d, want 11", fills, len(r.Samples()))
	}
	if r.Samples()[0].FIFOLen != -1 || r.Samples()[0].PrioLen != -1 {
		t.Errorf("group lengths should default to -1, got %+v", r.Samples()[0])
	}
	r2 := NewRecorder(Config{})
	r2.MaybeSample(0, func(*Sample) { t.Fatal("sampler disabled, fill must not run") })
}

func TestAdvanceAndEmitNow(t *testing.T) {
	r := NewRecorder(Config{Events: 8})
	r.Advance(500)
	r.Advance(300) // time never goes backwards
	if r.Now() != 500 {
		t.Fatalf("Now() = %d, want 500", r.Now())
	}
	r.NotePromotion(7, 3)
	r.NoteDemotion(7)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Time != 500 || evs[0].Core != PolicyCore || evs[0].Type != EvPromotion || evs[0].Arg != 3 {
		t.Errorf("promotion event %+v", evs[0])
	}
	if evs[1].Type != EvDemotion || evs[1].Page != 7 {
		t.Errorf("demotion event %+v", evs[1])
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(Config{Events: 2, SampleEvery: 10})
	r.Emit(1, 0, EvFault, 1, 0)
	r.Emit(2, 0, EvFault, 2, 0)
	r.Emit(3, 0, EvFault, 3, 0)
	r.MaybeSample(0, func(*Sample) {})
	r.Reset()
	if len(r.Events()) != 0 || len(r.Samples()) != 0 || r.Dropped() != 0 || r.Now() != 0 {
		t.Fatalf("Reset left state behind: %d events, %d samples, %d dropped, now %d",
			len(r.Events()), len(r.Samples()), r.Dropped(), r.Now())
	}
	r.Emit(5, 1, EvEviction, 9, 0)
	if got := r.Events(); len(got) != 1 || got[0].Page != 9 {
		t.Fatalf("recorder unusable after Reset: %+v", got)
	}
}

// TestEventNamesComplete cross-checks the event-type string table: one
// distinct, non-empty, resolvable snake_case name per type. Together
// with stats' counter-name test this is the desync guard the tables
// rely on — adding an EventType without a name fails here.
func TestEventNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for typ := EventType(0); typ < numEventTypes; typ++ {
		name := typ.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Errorf("EventType %d has no name", typ)
		}
		if seen[name] {
			t.Errorf("duplicate event name %q", name)
		}
		seen[name] = true
		back, ok := EventTypeByName(name)
		if !ok || back != typ {
			t.Errorf("EventTypeByName(%q) = %v, %v; want %v, true", name, back, ok, typ)
		}
		if name != strings.ToLower(name) || strings.Contains(name, " ") {
			t.Errorf("event name %q is not snake_case", name)
		}
	}
	if _, ok := EventTypeByName("no_such_event"); ok {
		t.Error("EventTypeByName accepted an unknown name")
	}
}

// TestSampleCSVHeaderTracksStatsCounters verifies the sampler CSV
// header carries every stats counter by its canonical name, so adding
// a counter cannot silently desync table, CSV and trace output.
func TestSampleCSVHeaderTracksStatsCounters(t *testing.T) {
	var b strings.Builder
	if err := WriteSamplesCSV(&b, []Sample{{Time: 1}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header+1", len(lines))
	}
	header := strings.Split(lines[0], ",")
	for _, name := range stats.CounterNames() {
		found := false
		for _, col := range header {
			if col == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("counter %q missing from sample CSV header", name)
		}
	}
	if want := 5 + stats.NumCounters; len(header) != want {
		t.Errorf("header has %d columns, want %d", len(header), want)
	}
	if got := strings.Count(lines[1], ","); got != len(header)-1 {
		t.Errorf("data row has %d commas, want %d", got, len(header)-1)
	}
}
