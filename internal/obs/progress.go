package obs

import (
	"fmt"
	"sync"
	"time"
)

// Progress is a thread-safe progress meter for long parameter sweeps.
// The per-run Recorder answers "what happened inside one simulation";
// Progress answers "how far along is the sweep": runs done out of
// total, the execution rate, and the projected time to completion.
//
// The sweep runner advances it from RunMany's worker goroutines as runs
// complete (executed, or reused from a journal); any other goroutine —
// cmcpsim's -progress ticker, a test — may Snapshot concurrently.
type Progress struct {
	mu       sync.Mutex
	start    time.Time
	total    int
	executed int
	loaded   int
	missing  int
	retried  int
	poisoned int
}

// NewProgress returns a meter whose clock starts at the first AddTotal.
func NewProgress() *Progress { return &Progress{} }

// AddTotal grows the expected run count by n (each sweep batch of a
// multi-batch experiment announces its grid as it is built) and starts
// the rate clock on first use.
func (p *Progress) AddTotal(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.total += n
}

// NoteExecuted records one run simulated by this process.
func (p *Progress) NoteExecuted() {
	p.mu.Lock()
	p.executed++
	p.mu.Unlock()
}

// NoteLoaded records n runs satisfied from a journal instead of
// executed.
func (p *Progress) NoteLoaded(n int) {
	p.mu.Lock()
	p.loaded += n
	p.mu.Unlock()
}

// NoteMissing records n runs that belong to other shards and were not
// found in any journal — work this process deliberately left undone.
func (p *Progress) NoteMissing(n int) {
	p.mu.Lock()
	p.missing += n
	p.mu.Unlock()
}

// NoteRetried records one run requeued after a failed attempt (a lease
// that expired or a worker-reported failure, in a coordinated sweep).
// Retries do not advance Done — the same run will be counted when it
// finally completes — but surfacing them separates "slow" from
// "thrashing" on the status line.
func (p *Progress) NoteRetried() {
	p.mu.Lock()
	p.retried++
	p.mu.Unlock()
}

// NotePoisoned records n runs quarantined after exhausting their
// retry budget. A poisoned run will never complete; it is abandoned,
// not pending — the meter surfaces it so a sweep stuck at 99% says
// why.
func (p *Progress) NotePoisoned(n int) {
	p.mu.Lock()
	p.poisoned += n
	p.mu.Unlock()
}

// ProgressSnapshot is one consistent reading of a Progress meter.
type ProgressSnapshot struct {
	// Total is the number of runs the sweep wants overall.
	Total int
	// Executed is how many this process simulated itself.
	Executed int
	// Loaded is how many were reused from journals.
	Loaded int
	// Missing is how many belong to other shards (absent from every
	// journal seen so far).
	Missing int
	// Retried counts failed attempts that were requeued (coordinated
	// sweeps: lease expiries and worker-reported failures).
	Retried int
	// Poisoned counts runs quarantined after exhausting their retries.
	Poisoned int
	// Elapsed is the wall time since the meter started.
	Elapsed time.Duration
	// RunsPerSec is the execution rate (journal loads excluded: they
	// are effectively free and would corrupt the ETA). Pinned to zero
	// until this process has executed at least one run — a rate
	// extrapolated from zero completions is undefined, not infinite.
	RunsPerSec float64
	// ETA projects the remaining wall time for the runs this process
	// still owns, at the current execution rate; zero when unknowable
	// (in particular, always zero before the first executed run).
	ETA time.Duration
}

// Done is Executed+Loaded: runs accounted for in the merged output.
func (s ProgressSnapshot) Done() int { return s.Executed + s.Loaded }

// Snapshot returns a consistent reading.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Total:    p.total,
		Executed: p.executed,
		Loaded:   p.loaded,
		Missing:  p.missing,
		Retried:  p.retried,
		Poisoned: p.poisoned,
	}
	if !p.start.IsZero() {
		s.Elapsed = time.Since(p.start)
	}
	if s.Elapsed > 0 && p.executed > 0 {
		s.RunsPerSec = float64(p.executed) / s.Elapsed.Seconds()
		remaining := p.total - p.executed - p.loaded - p.missing
		if remaining > 0 {
			s.ETA = time.Duration(float64(remaining) / s.RunsPerSec * float64(time.Second)).Round(time.Second)
		}
	}
	return s
}

// String renders the snapshot as a one-line status, e.g.
// "34/120 runs (28.3%), 12.4 runs/s, ETA 7s (10 journaled)".
func (s ProgressSnapshot) String() string {
	pct := 0.0
	if s.Total > 0 {
		pct = 100 * float64(s.Done()) / float64(s.Total)
	}
	out := fmt.Sprintf("%d/%d runs (%.1f%%)", s.Done(), s.Total, pct)
	if s.RunsPerSec > 0 {
		out += fmt.Sprintf(", %.1f runs/s", s.RunsPerSec)
	}
	if s.ETA > 0 {
		out += fmt.Sprintf(", ETA %s", s.ETA)
	}
	if s.Loaded > 0 {
		out += fmt.Sprintf(" (%d journaled)", s.Loaded)
	}
	if s.Missing > 0 {
		out += fmt.Sprintf(" (%d in other shards)", s.Missing)
	}
	if s.Retried > 0 {
		out += fmt.Sprintf(" (%d retried)", s.Retried)
	}
	if s.Poisoned > 0 {
		out += fmt.Sprintf(" (%d poisoned)", s.Poisoned)
	}
	return out
}

// String renders the current snapshot (see ProgressSnapshot.String).
func (p *Progress) String() string { return p.Snapshot().String() }
