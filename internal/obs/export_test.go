package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureEvents is a small deterministic event set covering every
// event type and all three track kinds (app core, scanner, policy).
func fixtureEvents() []Event {
	return []Event{
		{Time: 1000, Core: 0, Type: EvFault, Page: 17, Arg: 0},
		{Time: 1500, Core: PolicyCore, Type: EvPromotion, Page: 17, Arg: 2},
		{Time: 2100, Core: 1, Type: EvMinorFault, Page: 17, Arg: 0},
		{Time: 2600, Core: 1, Type: EvLockWait, Page: 17, Arg: 420},
		{Time: 5000, Core: 0, Type: EvEviction, Page: 3, Arg: 2},
		{Time: 5000, Core: 0, Type: EvShootdown, Page: 3, Arg: 2},
		{Time: 5200, Core: 0, Type: EvWriteBack, Page: 3, Arg: 4096},
		{Time: 25000, Core: 4, Type: EvScanTick, Page: 0, Arg: 777},
		{Time: 26000, Core: 4, Type: EvShootdown, Page: 9, Arg: 3},
		{Time: 30000, Core: PolicyCore, Type: EvDemotion, Page: 17, Arg: 0},
	}
}

func fixtureSamples() []Sample {
	s1 := Sample{Time: 10000, Resident: 12, FIFOLen: 8, PrioLen: 4, ClockSkew: 230}
	s1.Counters[0] = 5 // page_faults
	s2 := Sample{Time: 20000, Resident: 20, FIFOLen: 11, PrioLen: 9, ClockSkew: 118}
	s2.Counters[0] = 11
	return []Sample{s1, s2}
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestJSONLGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSONL(&b, fixtureEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "events.jsonl.golden", b.Bytes())
}

func TestJSONLRoundTrip(t *testing.T) {
	events := fixtureEvents()
	var b bytes.Buffer
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, events)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"t\":1,\"ev\":\"no_such_event\"}\n")); err == nil {
		t.Error("unknown event type accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Errorf("blank lines should be skipped: %v %v", evs, err)
	}
}

func TestReadJSONLLenient(t *testing.T) {
	events := fixtureEvents()
	var b bytes.Buffer
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stream the ways real trace files break: a stray log
	// line in the middle, an unknown event type, and a truncated tail.
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	mixed := lines[0] + "\nGC pause 12ms\n" +
		strings.Join(lines[1:], "\n") +
		"\n{\"t\":1,\"ev\":\"no_such_event\"}\n" +
		lines[0][:len(lines[0])/2]
	back, skipped, err := ReadJSONLLenient(strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3", skipped)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatalf("valid events lost:\n got %+v\nwant %+v", back, events)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, fixtureEvents(), fixtureSamples(), 4); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome.json.golden", b.Bytes())
}

// TestChromeTraceSchema validates the trace_event JSON against the
// format's structural requirements: parseable, a traceEvents array,
// and every entry carrying the mandatory ph/pid fields with the phase
// values this exporter uses (M metadata, i instant, C counter).
func TestChromeTraceSchema(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, fixtureEvents(), fixtureSamples(), 4); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   *float64        `json:"ts"`
			Pid  *int            `json:"pid"`
			Tid  *int            `json:"tid"`
			S    string          `json:"s"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	instants, counters, metas := 0, 0, 0
	var lastTS float64
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Pid == nil {
			t.Fatalf("entry %d missing name/pid: %+v", i, e)
		}
		switch e.Ph {
		case "M":
			metas++
		case "i":
			instants++
			if e.Ts == nil || e.Tid == nil || e.S != "t" {
				t.Fatalf("instant %d missing ts/tid/scope: %+v", i, e)
			}
			if *e.Ts < lastTS {
				t.Fatalf("instant %d out of order: ts %v < %v", i, *e.Ts, lastTS)
			}
			lastTS = *e.Ts
			if *e.Tid < 0 {
				t.Fatalf("instant %d has negative tid %d (Perfetto rejects)", i, *e.Tid)
			}
		case "C":
			counters++
			if e.Ts == nil {
				t.Fatalf("counter %d missing ts: %+v", i, e)
			}
		default:
			t.Fatalf("entry %d has unexpected phase %q", i, e.Ph)
		}
	}
	if instants != len(fixtureEvents()) {
		t.Errorf("%d instant events, want %d", instants, len(fixtureEvents()))
	}
	if counters == 0 || metas == 0 {
		t.Errorf("missing counter (%d) or metadata (%d) entries", counters, metas)
	}
}

func TestSamplesCSV(t *testing.T) {
	var b bytes.Buffer
	if err := WriteSamplesCSV(&b, fixtureSamples()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header+2", len(lines))
	}
	if !strings.HasPrefix(lines[1], "10000,12,8,4,230,5,") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "20000,20,11,9,118,11,") {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestTimeline(t *testing.T) {
	out := Timeline(fixtureEvents(), 4)
	for _, want := range []string{"10 events", "fault", "tlb_shootdown", "cmcp_promotion", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if got := Timeline(nil, 4); !strings.Contains(got, "no events") {
		t.Errorf("empty timeline = %q", got)
	}
	// Single-instant trace must not divide by a zero bucket width.
	one := []Event{{Time: 5, Type: EvFault}}
	if got := Timeline(one, 8); !strings.Contains(got, "1 events") {
		t.Errorf("single-event timeline = %q", got)
	}
}

func TestJSONLMetaRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONLWithMeta(&buf, fixtureEvents(), 7); err != nil {
		t.Fatal(err)
	}

	events, meta, skipped, err := ReadJSONLMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("meta header counted as skipped: %d", skipped)
	}
	if meta == nil {
		t.Fatal("meta header not returned")
	}
	if meta.Schema != TraceSchema || meta.Events != len(fixtureEvents()) || meta.Dropped != 7 {
		t.Errorf("meta = %+v", *meta)
	}
	if !reflect.DeepEqual(events, fixtureEvents()) {
		t.Error("events did not round-trip past the header")
	}

	// The strict reader and the plain lenient reader must both accept a
	// headered trace transparently.
	strictEvents, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict reader rejects headered trace: %v", err)
	}
	if !reflect.DeepEqual(strictEvents, fixtureEvents()) {
		t.Error("strict reader mangled headered trace")
	}
	lenEvents, skipped, err := ReadJSONLLenient(bytes.NewReader(buf.Bytes()))
	if err != nil || skipped != 0 || !reflect.DeepEqual(lenEvents, fixtureEvents()) {
		t.Errorf("lenient reader on headered trace: skipped=%d err=%v", skipped, err)
	}
}

func TestJSONLMetaAbsent(t *testing.T) {
	// Pre-header traces (WriteJSONL) must read back with nil meta.
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fixtureEvents()); err != nil {
		t.Fatal(err)
	}
	events, meta, skipped, err := ReadJSONLMeta(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("skipped=%d err=%v", skipped, err)
	}
	if meta != nil {
		t.Errorf("phantom meta %+v from header-less trace", *meta)
	}
	if !reflect.DeepEqual(events, fixtureEvents()) {
		t.Error("events did not round-trip")
	}
}

func TestJSONLMetaSecondHeaderSkipped(t *testing.T) {
	// Concatenated logs carry a header per fragment; only the first is
	// meta, the rest count as skipped lines like any unknown object.
	var a, b bytes.Buffer
	if err := WriteJSONLWithMeta(&a, fixtureEvents()[:2], 1); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONLWithMeta(&b, fixtureEvents()[2:4], 0); err != nil {
		t.Fatal(err)
	}
	a.Write(b.Bytes())
	events, meta, skipped, err := ReadJSONLMeta(&a)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.Dropped != 1 {
		t.Errorf("first header not kept: %+v", meta)
	}
	if skipped != 1 {
		t.Errorf("second header: skipped = %d, want 1", skipped)
	}
	if len(events) != 4 {
		t.Errorf("got %d events, want 4", len(events))
	}
}
