// Package obs is the observability layer of the CMCP simulator: a
// low-overhead flight recorder of typed kernel events and a periodic
// time-series sampler, with exporters to JSONL, Chrome trace_event
// JSON (Perfetto / chrome://tracing) and CSV.
//
// The end-of-run aggregates in internal/stats answer *how many* events
// a run generated; this package answers *when*. The paper explains
// CMCP's win through event counts (Table 1: page faults, remote TLB
// invalidations, dTLB misses), but diagnosing a placement decision —
// which evictions trigger shootdown storms, when the priority group
// fills, how per-core clocks skew — needs the event timeline.
//
// A Recorder is attached to a run through machine.Config.Probe. The
// hot paths in internal/vm and internal/machine guard every emission
// with a single nil-pointer check, so a run without a recorder pays
// one predictable branch per instrumented site and nothing else.
//
// Recorders are single-run, single-goroutine objects, matching the
// engine's one-Simulate-is-single-threaded contract: never share one
// Recorder between concurrent Simulate calls (RunMany).
package obs

import (
	"fmt"

	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

// EventType identifies one kind of flight-recorder event.
type EventType uint8

const (
	// EvFault is a major page fault (page-in from the host).
	EvFault EventType = iota
	// EvMinorFault is a PSPT sibling-PTE copy fault.
	EvMinorFault
	// EvEviction is a victim mapping being unmapped; Arg is the number
	// of remote cores whose TLBs had to be shot down.
	EvEviction
	// EvWriteBack is a dirty eviction's device-to-host copy; Arg is the
	// byte count written back.
	EvWriteBack
	// EvShootdown is a remote TLB invalidation broadcast; Arg is the
	// number of target cores interrupted.
	EvShootdown
	// EvScanTick is one run of the policy's periodic machinery on the
	// scanner pseudo-core; Arg is the scanner-side cost in cycles.
	EvScanTick
	// EvPromotion is CMCP admitting a page into the priority group;
	// Arg is the page's core-map-count key at admission.
	EvPromotion
	// EvDemotion is CMCP draining a page from the priority group back
	// to the FIFO list (displacement or aging).
	EvDemotion
	// EvLockWait is a non-zero wait on a serialization point (allocator
	// lock, page-table lock, DMA bus); Arg is the cycles waited.
	EvLockWait
	// EvRollback is a transactional page-in attempt rolled back after an
	// injected transfer failure; Arg is the retry attempt number.
	EvRollback
	// EvQuarantine is a frame retired after corrupting content; Arg is
	// the frame ID.
	EvQuarantine
	// EvResend is a remote-TLB-shootdown IPI re-sent after an
	// acknowledgement timeout; Arg is the re-send count for the target.
	EvResend
	// EvLockStuck is a stuck page lock waited out; Arg is the timeout
	// cycles charged.
	EvLockStuck
	// EvPSPTSkew is injected PSPT core-set skew (a phantom core bit with
	// no backing PTE); Arg is the phantom core ID.
	EvPSPTSkew
	// EvDegraded is a page demoted to regular-table semantics after the
	// auditor repaired its core set.
	EvDegraded
	// EvPTMigration is a hot page-table page re-homed to the accessing
	// socket after a streak of remote consults; Arg is the new home
	// socket.
	EvPTMigration
	// EvReplicaSync is a page-table replica synchronization on PTE
	// teardown; Arg is the number of remote sockets synchronized.
	EvReplicaSync

	numEventTypes
)

// NumEventTypes is the number of distinct event types.
const NumEventTypes = int(numEventTypes)

// eventNames is the single string table for event types; kept
// snake_case to match stats counter naming. A test cross-checks it
// against NumEventTypes and stats.CounterNames so the tables cannot
// silently desync.
var eventNames = [numEventTypes]string{
	"fault",
	"minor_fault",
	"eviction",
	"write_back",
	"tlb_shootdown",
	"scan_tick",
	"cmcp_promotion",
	"cmcp_demotion",
	"lock_wait",
	"tx_rollback",
	"frame_quarantine",
	"shootdown_resend",
	"lock_stuck",
	"pspt_skew",
	"page_degraded",
	"pt_migration",
	"replica_sync",
}

// String returns the snake_case event name.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// EventTypeByName resolves a snake_case event name; ok is false for
// unknown names.
func EventTypeByName(name string) (EventType, bool) {
	for i, n := range eventNames {
		if n == name {
			return EventType(i), true
		}
	}
	return 0, false
}

// PolicyCore is the pseudo-core ID used for events emitted by the
// replacement policy itself (CMCP promotions/demotions), which run on
// behalf of whichever core faulted but belong to the policy's own
// track in trace output.
const PolicyCore sim.CoreID = -1

// Event is one flight-recorder entry. Arg is type-specific (see the
// EventType constants); Page is 0 for events without a page.
type Event struct {
	Time sim.Cycles
	Core sim.CoreID
	Type EventType
	Page sim.PageID
	Arg  int64
}

// Sample is one periodic time-series point: cumulative counter totals
// over the application cores plus instantaneous structural state.
type Sample struct {
	Time sim.Cycles
	// Resident is the number of resident mappings.
	Resident int
	// FIFOLen and PrioLen are CMCP's regular/priority group sizes;
	// both are -1 when the policy does not expose groups.
	FIFOLen, PrioLen int
	// ClockSkew is max-min virtual clock over the still-running
	// application cores (0 with fewer than two active cores).
	ClockSkew sim.Cycles
	// Counters holds the cumulative per-run totals of every stats
	// counter at sample time, indexed by stats.Counter.
	Counters [stats.NumCounters]uint64
}

// Config parameterizes a Recorder.
type Config struct {
	// Events is the flight-recorder ring capacity. When the run emits
	// more events, the oldest are overwritten (Dropped counts them).
	// 0 means DefaultEventCapacity; negative disables event recording.
	Events int
	// SampleEvery is the virtual-cycle sampling interval; 0 disables
	// the sampler. The effective resolution is bounded below by the
	// engine's TickInterval, which drives sampling.
	SampleEvery sim.Cycles
}

// DefaultEventCapacity is the ring size used when Config.Events is 0.
const DefaultEventCapacity = 1 << 16

// Recorder is a flight recorder plus sampler for one simulation run.
// It is not safe for concurrent use; attach a fresh Recorder per run.
type Recorder struct {
	ring    []Event
	head    int // next write position
	count   int // valid entries (<= len(ring))
	dropped uint64

	sampleEvery sim.Cycles
	nextSample  sim.Cycles
	samples     []Sample

	now sim.Cycles // last time advanced by the engine
}

// NewRecorder builds a recorder; see Config.
func NewRecorder(cfg Config) *Recorder {
	capacity := cfg.Events
	if capacity == 0 {
		capacity = DefaultEventCapacity
	}
	r := &Recorder{sampleEvery: cfg.SampleEvery}
	if capacity > 0 {
		r.ring = make([]Event, capacity)
	}
	return r
}

// Reset clears all recorded state so the recorder can serve another
// run (benchmarks reuse one allocation across iterations).
func (r *Recorder) Reset() {
	r.head, r.count, r.dropped = 0, 0, 0
	r.nextSample, r.now = 0, 0
	r.samples = r.samples[:0]
}

// Advance moves the recorder's notion of current virtual time forward.
// The engine calls it at fault entry and scanner ticks; events emitted
// without an explicit time (policy callbacks) stamp with this clock.
func (r *Recorder) Advance(t sim.Cycles) {
	if t > r.now {
		r.now = t
	}
}

// Now returns the recorder's current virtual time.
func (r *Recorder) Now() sim.Cycles { return r.now }

// Emit appends one event at virtual time t, overwriting the oldest
// entry when the ring is full.
func (r *Recorder) Emit(t sim.Cycles, core sim.CoreID, typ EventType, page sim.PageID, arg int64) {
	r.Advance(t)
	if len(r.ring) == 0 {
		return
	}
	r.ring[r.head] = Event{Time: t, Core: core, Type: typ, Page: page, Arg: arg}
	r.head++
	if r.head == len(r.ring) {
		r.head = 0
	}
	if r.count < len(r.ring) {
		r.count++
	} else {
		r.dropped++
	}
}

// EmitNow appends one event stamped with the recorder's current time
// (used by policy callbacks that have no clock of their own).
func (r *Recorder) EmitNow(core sim.CoreID, typ EventType, page sim.PageID, arg int64) {
	r.Emit(r.now, core, typ, page, arg)
}

// Events returns the recorded events oldest-first. The slice is a
// fresh copy; mutating it does not affect the recorder.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.count)
	if r.count == len(r.ring) {
		out = append(out, r.ring[r.head:]...)
		out = append(out, r.ring[:r.head]...)
		return out
	}
	return append(out, r.ring[:r.count]...)
}

// Dropped returns how many events were overwritten after the ring
// filled — the price of the flight-recorder's bounded memory.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Sampling reports whether the periodic sampler is enabled.
func (r *Recorder) Sampling() bool { return r.sampleEvery > 0 }

// MaybeSample invokes fill exactly once per elapsed sampling interval:
// when now has reached the next deadline, it appends a Sample stamped
// now and lets the caller populate it. The engine drives this from the
// scanner lane, so resolution is bounded by the tick interval.
func (r *Recorder) MaybeSample(now sim.Cycles, fill func(*Sample)) {
	if r.sampleEvery == 0 || now < r.nextSample {
		return
	}
	r.Advance(now)
	r.nextSample = now + r.sampleEvery
	r.samples = append(r.samples, Sample{Time: now, FIFOLen: -1, PrioLen: -1})
	fill(&r.samples[len(r.samples)-1])
}

// Samples returns the recorded time series oldest-first.
func (r *Recorder) Samples() []Sample { return r.samples }

// NotePromotion implements the core package's structural Observer
// interface: CMCP admitted base into its priority group with the
// given core-map-count key.
func (r *Recorder) NotePromotion(base sim.PageID, key float64) {
	r.EmitNow(PolicyCore, EvPromotion, base, int64(key))
}

// NoteDemotion implements the core package's structural Observer
// interface: CMCP drained base from the priority group back to FIFO.
func (r *Recorder) NoteDemotion(base sim.PageID) {
	r.EmitNow(PolicyCore, EvDemotion, base, 0)
}
