// Exporters for the flight recorder and sampler: JSONL events (one
// object per line, trivially greppable and re-loadable), Chrome
// trace_event JSON (open in Perfetto or chrome://tracing; one track
// per core), and CSV time series. All output is deterministic for a
// deterministic run, so exporter results are golden-testable.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

// CyclesPerMicrosecond converts simulated 1.053 GHz cycles to the
// microsecond timestamps the Chrome trace_event format expects.
const CyclesPerMicrosecond = 1053.0

// jsonlEvent is the JSONL wire form of an Event.
type jsonlEvent struct {
	Time uint64 `json:"t"`
	Core int32  `json:"core"`
	Type string `json:"ev"`
	Page int64  `json:"page"`
	Arg  int64  `json:"arg"`
}

// TraceSchema versions the JSONL trace metadata header.
const TraceSchema = "cmcp-trace/v1"

// TraceMeta is the optional metadata header line of a JSONL event
// trace. Its load-bearing field is Dropped: the flight recorder's ring
// is bounded, and a trace that silently lost events reads as a complete
// record of a quieter run. Writers put the drop count in the file so
// replay tools can warn; Events lets readers notice truncation of the
// file itself. Pre-header traces remain readable (nil meta), and
// pre-header readers skip the line: it parses as no known event type,
// which the lenient reader drops by design.
type TraceMeta struct {
	Schema  string `json:"schema"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
}

// WriteJSONL encodes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	return writeJSONL(w, events, nil)
}

// WriteJSONLWithMeta encodes events like WriteJSONL, preceded by a
// TraceMeta header line carrying the recorder's drop count.
func WriteJSONLWithMeta(w io.Writer, events []Event, dropped uint64) error {
	return writeJSONL(w, events, &TraceMeta{Schema: TraceSchema, Events: len(events), Dropped: dropped})
}

func writeJSONL(w io.Writer, events []Event, meta *TraceMeta) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if meta != nil {
		if err := enc.Encode(meta); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := enc.Encode(jsonlEvent{
			Time: uint64(e.Time),
			Core: int32(e.Core),
			Type: e.Type.String(),
			Page: int64(e.Page),
			Arg:  e.Arg,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL event stream written by WriteJSONL. It is
// strict: the first malformed or unrecognized line fails the read. Use
// ReadJSONLLenient for traces of dubious provenance (truncated files,
// concatenated logs).
func ReadJSONL(r io.Reader) ([]Event, error) {
	events, _, _, err := readJSONL(r, true)
	return events, err
}

// ReadJSONLLenient decodes a JSONL event stream, skipping malformed,
// truncated or unknown-type lines instead of failing on them; skipped
// reports how many lines were dropped. Only an I/O error (or a single
// line exceeding the scanner limit) still fails the read.
func ReadJSONLLenient(r io.Reader) (events []Event, skipped int, err error) {
	events, _, skipped, err = readJSONL(r, false)
	return events, skipped, err
}

// ReadJSONLMeta decodes a JSONL event stream leniently and also returns
// the trace's metadata header when present (nil for pre-header traces).
// Replay tools use it to warn when the recorder dropped events.
func ReadJSONLMeta(r io.Reader) (events []Event, meta *TraceMeta, skipped int, err error) {
	return readJSONL(r, false)
}

func readJSONL(r io.Reader, strict bool) ([]Event, *TraceMeta, int, error) {
	var out []Event
	var meta *TraceMeta
	skipped := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(text), &je); err != nil {
			if strict {
				return nil, nil, 0, fmt.Errorf("obs: line %d: %w", line, err)
			}
			skipped++
			continue
		}
		typ, ok := EventTypeByName(je.Type)
		if !ok {
			// Not an event line: the trace metadata header lands here
			// (its object has no "ev" field), in both modes — a strict
			// reader must still accept headered traces.
			var m TraceMeta
			if meta == nil && json.Unmarshal([]byte(text), &m) == nil && strings.HasPrefix(m.Schema, "cmcp-trace/") {
				meta = &m
				continue
			}
			if strict {
				return nil, nil, 0, fmt.Errorf("obs: line %d: unknown event type %q", line, je.Type)
			}
			skipped++
			continue
		}
		out = append(out, Event{
			Time: sim.Cycles(je.Time),
			Core: sim.CoreID(je.Core),
			Type: typ,
			Page: sim.PageID(je.Page),
			Arg:  je.Arg,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, 0, err
	}
	return out, meta, skipped, nil
}

// chromeTS formats a cycle timestamp as trace_event microseconds with
// fixed precision, keeping output byte-deterministic.
func chromeTS(t sim.Cycles) string {
	return fmt.Sprintf("%.3f", float64(t)/CyclesPerMicrosecond)
}

// chromeTrackName labels one track (thread) of the Chrome trace. cores
// is the application core count; the scanner pseudo-core and the
// policy track get their own names.
func chromeTrackName(core sim.CoreID, cores int) string {
	switch {
	case core == PolicyCore:
		return "policy"
	case int(core) == cores:
		return "scanner"
	default:
		return fmt.Sprintf("core %d", core)
	}
}

// chromeTID maps a core to a stable non-negative thread ID: the policy
// track is tid 0 and every real core shifts up by one.
func chromeTID(core sim.CoreID) int { return int(core) + 1 }

// WriteChromeTrace encodes events (as instant events, one track per
// core) and samples (as counter tracks) in the Chrome trace_event JSON
// object format. Load the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing. cores is the application core count, used only to
// label the scanner pseudo-core's track.
func WriteChromeTrace(w io.Writer, events []Event, samples []Sample, cores int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}

	emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"cmcpsim"}}`)
	tracks := map[sim.CoreID]bool{}
	for _, e := range events {
		tracks[e.Core] = true
	}
	ids := make([]int, 0, len(tracks))
	byID := map[int]sim.CoreID{}
	for c := range tracks {
		ids = append(ids, chromeTID(c))
		byID[chromeTID(c)] = c
	}
	sort.Ints(ids)
	for _, id := range ids {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%q}}`,
			id, chromeTrackName(byID[id], cores)))
	}

	for _, e := range events {
		emit(fmt.Sprintf(`{"name":%q,"ph":"i","s":"t","ts":%s,"pid":0,"tid":%d,"args":{"page":%d,"arg":%d}}`,
			e.Type.String(), chromeTS(e.Time), chromeTID(e.Core), e.Page, e.Arg))
	}
	for _, s := range samples {
		emit(fmt.Sprintf(`{"name":"resident","ph":"C","ts":%s,"pid":0,"args":{"resident":%d}}`,
			chromeTS(s.Time), s.Resident))
		if s.FIFOLen >= 0 {
			emit(fmt.Sprintf(`{"name":"cmcp_groups","ph":"C","ts":%s,"pid":0,"args":{"fifo":%d,"prio":%d}}`,
				chromeTS(s.Time), s.FIFOLen, s.PrioLen))
		}
		emit(fmt.Sprintf(`{"name":"page_faults","ph":"C","ts":%s,"pid":0,"args":{"page_faults":%d}}`,
			chromeTS(s.Time), s.Counters[stats.PageFaults]))
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSamplesCSV encodes the sampler time series as CSV. The counter
// columns come straight from stats.CounterNames, so the header can
// never drift from the counter set.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	cols := append([]string{"time_cycles", "resident", "cmcp_fifo", "cmcp_prio", "clock_skew_cycles"},
		stats.CounterNames()...)
	if _, err := bw.WriteString(strings.Join(cols, ",") + "\n"); err != nil {
		return err
	}
	for _, s := range samples {
		fmt.Fprintf(bw, "%d,%d,%d,%d,%d", uint64(s.Time), s.Resident, s.FIFOLen, s.PrioLen, uint64(s.ClockSkew))
		for _, v := range s.Counters {
			fmt.Fprintf(bw, ",%d", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Timeline renders events as a bucketed text table — one row per time
// bucket, one column per event type that occurs — followed by totals.
// It is the cmcptrace -replay output and a quick way to see *when* a
// run's eviction or shootdown activity clusters without leaving the
// terminal.
func Timeline(events []Event, buckets int) string {
	var b strings.Builder
	if len(events) == 0 {
		return "timeline: no events\n"
	}
	if buckets < 1 {
		buckets = 1
	}
	t0, t1 := events[0].Time, events[0].Time
	for _, e := range events {
		if e.Time < t0 {
			t0 = e.Time
		}
		if e.Time > t1 {
			t1 = e.Time
		}
	}
	width := (t1 - t0 + sim.Cycles(buckets)) / sim.Cycles(buckets)
	if width == 0 {
		width = 1
	}

	var present [numEventTypes]bool
	counts := make([][numEventTypes]uint64, buckets)
	var totals [numEventTypes]uint64
	for _, e := range events {
		i := int((e.Time - t0) / width)
		if i >= buckets {
			i = buckets - 1
		}
		counts[i][e.Type]++
		totals[e.Type]++
		present[e.Type] = true
	}

	fmt.Fprintf(&b, "timeline: %d events over %.2f Mcycles (%d buckets of %.2f Mcycles)\n\n",
		len(events), float64(t1-t0)/1e6, buckets, float64(width)/1e6)
	tab := &stats.Table{Columns: []string{"t(Mcyc)"}}
	var cols []EventType
	for t := EventType(0); t < numEventTypes; t++ {
		if present[t] {
			tab.Columns = append(tab.Columns, t.String())
			cols = append(cols, t)
		}
	}
	for i := 0; i < buckets; i++ {
		cells := []any{fmt.Sprintf("%.2f", float64(t0+sim.Cycles(i)*width)/1e6)}
		for _, t := range cols {
			cells = append(cells, counts[i][t])
		}
		tab.AddRow(fmt.Sprintf("[%3d]", i), cells...)
	}
	cells := []any{""}
	for _, t := range cols {
		cells = append(cells, totals[t])
	}
	tab.AddRow("total", cells...)
	b.WriteString(tab.String())
	return b.String()
}
