package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestProgressCounts(t *testing.T) {
	p := NewProgress()
	if s := p.Snapshot(); s.Total != 0 || s.Done() != 0 {
		t.Fatalf("fresh meter not zero: %+v", s)
	}
	p.AddTotal(10)
	p.AddTotal(10) // multi-batch experiments announce grids incrementally
	p.NoteLoaded(3)
	p.NoteMissing(2)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.NoteExecuted()
		}()
	}
	wg.Wait()

	s := p.Snapshot()
	if s.Total != 20 || s.Executed != 4 || s.Loaded != 3 || s.Missing != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Done() != 7 {
		t.Fatalf("Done() = %d, want 7", s.Done())
	}
	if s.Elapsed <= 0 {
		t.Error("clock did not start at AddTotal")
	}

	str := s.String()
	for _, frag := range []string{"7/20 runs", "(3 journaled)", "(2 in other shards)"} {
		if !strings.Contains(str, frag) {
			t.Errorf("String() = %q, missing %q", str, frag)
		}
	}
}

func TestProgressStringEmpty(t *testing.T) {
	// A meter nobody advanced must render without dividing by zero.
	if got := NewProgress().String(); !strings.Contains(got, "0/0 runs (0.0%)") {
		t.Errorf("String() = %q", got)
	}
}

// TestProgressZeroCompletions pins the rate/ETA contract before the
// first executed run: a sweep that has only planned work (or only
// loaded journal entries) has no execution rate to extrapolate, so
// both stay zero and the status line omits them.
func TestProgressZeroCompletions(t *testing.T) {
	p := NewProgress()
	p.AddTotal(50)
	p.NoteLoaded(10) // journal loads are free: they must not start the rate
	s := p.Snapshot()
	if s.RunsPerSec != 0 {
		t.Errorf("RunsPerSec = %v before any executed run, want 0", s.RunsPerSec)
	}
	if s.ETA != 0 {
		t.Errorf("ETA = %v before any executed run, want 0", s.ETA)
	}
	str := s.String()
	if strings.Contains(str, "runs/s") || strings.Contains(str, "ETA") {
		t.Errorf("String() = %q renders a rate/ETA from zero completions", str)
	}
}

// TestProgressHammer drives every mutator and both readers from many
// goroutines at once; under -race (CI runs the whole suite with it)
// this is the meter's data-race proof, and the final snapshot proves
// no update was lost.
func TestProgressHammer(t *testing.T) {
	const workers, iters = 16, 250
	p := NewProgress()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p.AddTotal(3)
				p.NoteExecuted()
				p.NoteLoaded(1)
				p.NoteMissing(1)
				snap := p.Snapshot()
				if snap.Done() > snap.Total {
					t.Errorf("torn snapshot: done %d > total %d", snap.Done(), snap.Total)
					return
				}
				_ = snap.String()
				_ = p.String()
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	n := workers * iters
	if s.Total != 3*n || s.Executed != n || s.Loaded != n || s.Missing != n {
		t.Fatalf("lost updates: %+v (want total=%d executed=loaded=missing=%d)", s, 3*n, n)
	}
	if s.RunsPerSec <= 0 {
		t.Errorf("RunsPerSec = %v after %d executed runs", s.RunsPerSec, n)
	}
}
