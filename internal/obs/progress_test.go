package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestProgressCounts(t *testing.T) {
	p := NewProgress()
	if s := p.Snapshot(); s.Total != 0 || s.Done() != 0 {
		t.Fatalf("fresh meter not zero: %+v", s)
	}
	p.AddTotal(10)
	p.AddTotal(10) // multi-batch experiments announce grids incrementally
	p.NoteLoaded(3)
	p.NoteMissing(2)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.NoteExecuted()
		}()
	}
	wg.Wait()

	s := p.Snapshot()
	if s.Total != 20 || s.Executed != 4 || s.Loaded != 3 || s.Missing != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Done() != 7 {
		t.Fatalf("Done() = %d, want 7", s.Done())
	}
	if s.Elapsed <= 0 {
		t.Error("clock did not start at AddTotal")
	}

	str := s.String()
	for _, frag := range []string{"7/20 runs", "(3 journaled)", "(2 in other shards)"} {
		if !strings.Contains(str, frag) {
			t.Errorf("String() = %q, missing %q", str, frag)
		}
	}
}

func TestProgressStringEmpty(t *testing.T) {
	// A meter nobody advanced must render without dividing by zero.
	if got := NewProgress().String(); !strings.Contains(got, "0/0 runs (0.0%)") {
		t.Errorf("String() = %q", got)
	}
}
