package coord

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// httpState is the Coordinator's server plumbing.
type httpState struct {
	srv      *http.Server
	ln       net.Listener
	stopReap chan struct{}
}

// Start serves the coordinator protocol on addr (":0" picks a free
// port; see Addr) and starts the background lease reaper. The reaper
// matters when no workers are talking: expiry is otherwise only
// evaluated on request arrival, and a fleet that died entirely would
// never advance the retry clock.
func (c *Coordinator) Start(addr string) error {
	if c.ln != nil {
		return fmt.Errorf("coord: already started on %s", c.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("coord: listen %s: %w", addr, err)
	}
	c.ln = ln
	c.srv = &http.Server{Handler: c.Handler()}
	go c.srv.Serve(ln)
	c.stopReap = make(chan struct{})
	go c.reapLoop(c.stopReap)
	return nil
}

// Addr returns the listening address (host:port), useful with ":0".
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Close stops the server and the reaper and aborts any in-flight
// batch. The lease table is soft state and the journal holds every
// completed run, so Close loses nothing a restart cannot rebuild.
func (c *Coordinator) Close() error {
	if c.stopReap != nil {
		close(c.stopReap)
		c.stopReap = nil
	}
	var err error
	if c.srv != nil {
		err = c.srv.Close()
		c.srv, c.ln = nil, nil
	}
	c.Abort(fmt.Errorf("coordinator shutting down"))
	return err
}

func (c *Coordinator) reapLoop(stop chan struct{}) {
	t := time.NewTicker(c.opt.LeaseTTL / 2)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.mu.Lock()
			c.reapLocked(c.opt.Now())
			c.mu.Unlock()
		}
	}
}

// Handler returns the coordinator's HTTP handler: POST /lease,
// /heartbeat, /result, /fail and GET /state. Exposed for tests that
// want an httptest.Server instead of Start.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if !decodeBody(w, r, &req) {
			return
		}
		grant, wait, done := c.Lease(req.Worker)
		switch {
		case done:
			writeJSON(w, leaseResponse{Done: true})
		case grant == nil:
			writeJSON(w, leaseResponse{RetryMS: wait.Milliseconds()})
		default:
			cw, err := toWire(grant.Config)
			if err != nil {
				// Undispatchable config: the worker cannot run it, no
				// worker ever will. Quarantine through the normal path.
				c.Fail(grant.LeaseID, grant.Key, err.Error())
				writeJSON(w, leaseResponse{RetryMS: 50})
				return
			}
			writeJSON(w, leaseResponse{
				LeaseID: grant.LeaseID,
				Key:     grant.Key,
				Config:  &cw,
				TTLMS:   grant.TTL.Milliseconds(),
				Stolen:  grant.Stolen,
			})
		}
	})
	mux.HandleFunc("POST /heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if !c.Heartbeat(req.LeaseID) {
			// 410: the lease is gone. The worker stops renewing but may
			// still post its result — results are keyed, not leased.
			http.Error(w, "lease gone", http.StatusGone)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("POST /result", func(w http.ResponseWriter, r *http.Request) {
		var req resultRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := c.Result(req.LeaseID, req.Entry); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// This 200 is a durability receipt: Result ran the journal
		// append synchronously.
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("POST /fail", func(w http.ResponseWriter, r *http.Request) {
		var req failRequest
		if !decodeBody(w, r, &req) {
			return
		}
		c.Fail(req.LeaseID, req.Key, req.Error)
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("GET /state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, stateResponse{Stats: c.Stats(), Poisoned: c.PoisonedReport()})
	})
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
