// Package coord is the crash-tolerant distribution layer of the sweep
// harness: an HTTP coordinator that owns a sweep grid and hands out
// content-key leases to worker processes, plus the worker client that
// runs them (see Worker).
//
// The design splits state by durability. Everything that matters —
// which runs are complete, and their full results — lives in the sweep
// journal, written durably before any result is acknowledged; the
// coordinator's own lease table is pure soft state. A worker that
// dies mid-lease simply stops heartbeating: its lease expires, the key
// returns to the queue with capped exponential backoff, and another
// worker picks it up. A coordinator that dies loses only leases; on
// restart the sweep layer reloads the journal and re-dispatches only
// the runs still missing. Because every run is deterministic, the
// duplicate executions those recoveries allow are harmless: duplicate
// results agree bit for bit, and journal compaction (sweep.Compact)
// erases the evidence. The invariant the chaos tests pin is exactly
// that: a sweep surviving any mix of worker kills, coordinator
// restarts, and lease expirations merges bit-identically to an
// uninterrupted local sweep.
//
// A key whose config crashes the worker every time is not allowed to
// wedge the sweep: after MaxAttempts failed leases (a lease expiry
// counts as an attempt) the key is quarantined as poisoned — its slot
// reports an error, every other key completes normally, and the
// poisoned-key report names the survivors' graveyard.
package coord

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cmcp/internal/machine"
	"cmcp/internal/obs"
	"cmcp/internal/sweep"
)

// Options parameterize a Coordinator.
type Options struct {
	// LeaseTTL is how long a lease survives without a heartbeat before
	// the coordinator presumes its worker dead (default 15s).
	LeaseTTL time.Duration
	// MaxAttempts is how many failed leases (expiry or reported
	// failure) a key gets before it is quarantined as poisoned
	// (default 3).
	MaxAttempts int
	// BackoffBase is the requeue delay after a key's first failed
	// attempt; each further attempt doubles it (default 1s).
	BackoffBase time.Duration
	// BackoffCap bounds the exponential backoff (default 30s).
	BackoffCap time.Duration
	// MaxLeasesPerKey caps concurrent leases on one key — the
	// work-stealing bound. 2 means one speculative backup lease may
	// shadow a straggler (default 2).
	MaxLeasesPerKey int
	// StealAfter is how long a key's oldest lease must have been
	// running before an idle worker may steal a backup lease on it
	// (default LeaseTTL/2). Zero means the default; negative disables
	// stealing.
	StealAfter time.Duration
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
	// Progress, when non-nil, is advanced as keys retry and poison
	// (completions flow through the sweep runner's own notify path).
	Progress *obs.Progress
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = time.Second
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 30 * time.Second
	}
	if o.MaxLeasesPerKey <= 0 {
		o.MaxLeasesPerKey = 2
	}
	if o.StealAfter == 0 {
		o.StealAfter = o.LeaseTTL / 2
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Stats is a point-in-time snapshot of the coordinator's state: the
// gauges describe the current batch, the counters accumulate across
// the coordinator's whole life. The telemetry server exports these as
// the cmcp_coord_* metric families.
type Stats struct {
	// Gauges over the current batch.
	KeysPending, KeysLeased int
	// Cumulative across batches.
	KeysDone, KeysPoisoned                     uint64
	LeasesGranted, LeasesExpired, LeasesStolen uint64
	Heartbeats, Retries, DuplicateResults      uint64
}

// PoisonedKey records one quarantined config for the report.
type PoisonedKey struct {
	Key      string `json:"key"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Attempts int    `json:"attempts"`
	LastErr  string `json:"last_err"`
}

type unitState int

const (
	unitPending unitState = iota
	unitLeased
	unitDone
	unitPoisoned
	unitAborted
)

// unit is one content key's scheduling state within the current batch.
type unit struct {
	key       string
	cfg       machine.Config
	idx       int // slot in the batch's results
	state     unitState
	attempts  int       // lease grants that ended badly
	notBefore time.Time // backoff gate while pending
	leases    map[string]*lease
	lastErr   string
}

// lease is one worker's claim on one unit — pure soft state.
type lease struct {
	id      string
	unit    *unit
	worker  string
	granted time.Time
	beat    time.Time
}

// batch is one Dispatch call in flight: a slice of units whose
// completions flow back through the sweep runner's notify callback.
type batch struct {
	notify    func(int, *machine.Result, error)
	results   []*machine.Result
	errs      []error
	remaining int
	done      chan struct{}
}

// Coordinator owns the sweep grid and the lease table. It implements
// sweep.Runner, so a coordinated sweep is an ordinary sweep.Run with
// Options.Runner set — planning, journaling, resume, and the
// deterministic merge are untouched.
type Coordinator struct {
	opt Options

	mu      sync.Mutex
	units   map[string]*unit
	queue   []string // pending dispatch order (longest-first upstream)
	leases  map[string]*lease
	batch   *batch
	orphans map[string]sweep.Entry // results for keys not (yet) enqueued
	// poisoned accumulates the quarantine report across batches.
	poisoned []PoisonedKey
	stats    Stats
	leaseSeq uint64
	finished bool

	httpState // server plumbing, in http.go
}

// New returns an idle coordinator. Call Start to serve workers,
// then use it as sweep.Options.Runner (directly or via
// experiments.Options.Runner).
func New(opt Options) *Coordinator {
	return &Coordinator{
		opt:     opt.withDefaults(),
		units:   map[string]*unit{},
		leases:  map[string]*lease{},
		orphans: map[string]sweep.Entry{},
	}
}

// Run implements sweep.Runner: it enqueues the batch, serves leases to
// workers until every key is done or poisoned, and returns results
// aligned with cfgs — nil plus a joined error for poisoned keys, the
// machine.RunManyNotify contract. parallelism is ignored; the worker
// fleet decides its own.
func (c *Coordinator) Run(cfgs []machine.Config, keys []string, parallelism int, notify func(i int, res *machine.Result, err error)) ([]*machine.Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	b := &batch{
		notify:    notify,
		results:   make([]*machine.Result, len(cfgs)),
		remaining: len(cfgs),
		done:      make(chan struct{}),
	}

	c.mu.Lock()
	if c.batch != nil {
		c.mu.Unlock()
		return nil, errors.New("coord: a batch is already in flight (one Dispatch at a time)")
	}
	// A new batch owns the unit table outright. Leases from a previous
	// batch are dead on arrival — their heartbeats get 410, and any
	// late result lands in the orphan stash below.
	c.units = make(map[string]*unit, len(keys))
	c.leases = map[string]*lease{}
	c.queue = c.queue[:0]
	c.batch = b
	for i, key := range keys {
		u := &unit{key: key, cfg: cfgs[i], idx: i, leases: map[string]*lease{}}
		c.units[key] = u
		// Adopt orphans: a result that arrived before its key was
		// enqueued (worker finishing across a coordinator restart, or
		// ahead of a later batch) completes the unit instantly.
		if e, ok := c.orphans[key]; ok {
			delete(c.orphans, key)
			c.completeLocked(u, e)
			continue
		}
		c.queue = append(c.queue, key)
	}
	done := b.remaining == 0
	if done {
		c.batch = nil
	}
	c.mu.Unlock()
	if !done {
		<-b.done
	}

	c.mu.Lock()
	errs := b.errs
	c.mu.Unlock()
	return b.results, errors.Join(errs...)
}

// Finish tells the coordinator no more batches are coming: workers
// asking for leases are told to exit.
func (c *Coordinator) Finish() {
	c.mu.Lock()
	c.finished = true
	c.mu.Unlock()
}

// Abort fails every unresolved unit of the in-flight batch with err —
// the deliberate-shutdown path (Close calls it). The journal keeps
// every run completed so far, so a re-run of the same sweep against
// the same journal resumes exactly where the abort cut it off; that
// re-run IS the coordinator-restart recovery story. Results that
// arrive after an abort are stashed as orphans for the restarted
// batch to adopt.
func (c *Coordinator) Abort(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, u := range c.units {
		switch u.state {
		case unitDone, unitPoisoned, unitAborted:
			continue
		}
		u.state = unitAborted
		c.finishUnitLocked(u, nil, fmt.Errorf("aborted: %w", err))
	}
}

// Stats returns a snapshot of the lease-table gauges and lifetime
// counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	for _, u := range c.units {
		switch u.state {
		case unitPending:
			s.KeysPending++
		case unitLeased:
			s.KeysLeased++
		}
	}
	return s
}

// PoisonedReport returns every key quarantined so far, sorted by key.
func (c *Coordinator) PoisonedReport() []PoisonedKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]PoisonedKey(nil), c.poisoned...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// LeaseGrant is a successful lease: the worker owns key until it
// stops heartbeating for TTL.
type LeaseGrant struct {
	LeaseID string
	Key     string
	Config  machine.Config
	TTL     time.Duration
	Stolen  bool // a speculative backup lease on a straggler
}

// Lease hands out the next unit of work. Exactly one of the three
// outcomes holds: a grant; wait>0 (come back after that long); or
// done=true (the sweep is over, exit).
func (c *Coordinator) Lease(worker string) (grant *LeaseGrant, wait time.Duration, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	c.reapLocked(now)

	if c.batch == nil {
		if c.finished {
			return nil, 0, true
		}
		// Between batches: the next Dispatch may arrive any moment.
		return nil, c.opt.LeaseTTL / 4, false
	}

	// Pending queue, skipping stale entries and backoff-gated keys.
	// earliest tracks when the nearest gated key unlocks, for the wait
	// hint.
	var earliest time.Time
	kept := c.queue[:0]
	var pick *unit
	for _, key := range c.queue {
		u := c.units[key]
		if u == nil || u.state != unitPending {
			continue // stale: completed or leased out of band
		}
		if pick == nil && !u.notBefore.After(now) && len(u.leases) < c.opt.MaxLeasesPerKey {
			pick = u
			continue // granted: drop from queue
		}
		if u.notBefore.After(now) && (earliest.IsZero() || u.notBefore.Before(earliest)) {
			earliest = u.notBefore
		}
		kept = append(kept, key)
	}
	c.queue = kept
	if pick != nil {
		return c.grantLocked(pick, worker, now, false), 0, false
	}

	// Work stealing: nothing pending, so shadow the longest-running
	// straggler with a speculative backup lease — the run is
	// deterministic, so whichever copy finishes first wins and the
	// other's result is an idempotent duplicate.
	if c.opt.StealAfter >= 0 {
		var victim *unit
		var oldest time.Time
		for _, u := range c.units {
			if u.state != unitLeased || len(u.leases) >= c.opt.MaxLeasesPerKey {
				continue
			}
			first := time.Time{}
			for _, l := range u.leases {
				if first.IsZero() || l.granted.Before(first) {
					first = l.granted
				}
			}
			if now.Sub(first) < c.opt.StealAfter {
				continue
			}
			if victim == nil || first.Before(oldest) || (first.Equal(oldest) && u.key < victim.key) {
				victim, oldest = u, first
			}
		}
		if victim != nil {
			c.stats.LeasesStolen++
			return c.grantLocked(victim, worker, now, true), 0, false
		}
	}

	wait = c.opt.LeaseTTL / 4
	if !earliest.IsZero() {
		if d := earliest.Sub(now); d < wait {
			wait = d
		}
	}
	if wait < 10*time.Millisecond {
		wait = 10 * time.Millisecond
	}
	return nil, wait, false
}

// Heartbeat extends a lease; ok=false means the lease is gone (expired
// or its unit already completed) and the worker should stop renewing —
// though a finished run is still worth posting: results are accepted
// by key, not by lease.
func (c *Coordinator) Heartbeat(leaseID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opt.Now()
	c.reapLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return false
	}
	l.beat = now
	c.stats.Heartbeats++
	return true
}

// Result delivers one completed run. It is idempotent by content key:
// duplicates (a worker finishing after its lease expired, a stolen
// lease's loser, a retry landing twice) are counted and discarded —
// deterministic runs make every copy interchangeable. A result for a
// key not currently enqueued is stashed and adopted when the key
// appears. The batch's notify callback runs synchronously here, so
// when Result returns, the entry is journaled — the ack the worker
// gets is a durability receipt.
func (c *Coordinator) Result(leaseID string, e sweep.Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.opt.Now())
	if l, ok := c.leases[leaseID]; ok {
		delete(c.leases, leaseID)
		delete(l.unit.leases, leaseID)
	}
	if e.Key == "" || e.Run == nil || e.Run.Cores != e.Cores {
		return fmt.Errorf("coord: malformed result entry for key %q", e.Key)
	}
	u, ok := c.units[e.Key]
	if !ok || u.state == unitAborted {
		// Unknown (or aborted-batch) key: stash for adoption by the
		// batch that will want it — typically the restarted sweep.
		c.orphans[e.Key] = e
		return nil
	}
	switch u.state {
	case unitDone, unitPoisoned:
		c.stats.DuplicateResults++
		return nil
	}
	c.completeLocked(u, e)
	return nil
}

// Fail reports a run error from a worker. The key's attempt count
// grows; under MaxAttempts it requeues behind exponential backoff,
// at MaxAttempts it is quarantined as poisoned.
func (c *Coordinator) Fail(leaseID, key, errMsg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.opt.Now())
	if l, ok := c.leases[leaseID]; ok {
		delete(c.leases, leaseID)
		delete(l.unit.leases, leaseID)
	}
	u, ok := c.units[key]
	if !ok || u.state == unitDone || u.state == unitPoisoned {
		return
	}
	c.failUnitLocked(u, errMsg)
}

// grantLocked creates a lease on u for worker.
func (c *Coordinator) grantLocked(u *unit, worker string, now time.Time, stolen bool) *LeaseGrant {
	c.leaseSeq++
	l := &lease{
		id:      fmt.Sprintf("lease-%d", c.leaseSeq),
		unit:    u,
		worker:  worker,
		granted: now,
		beat:    now,
	}
	u.leases[l.id] = l
	u.state = unitLeased
	c.leases[l.id] = l
	c.stats.LeasesGranted++
	return &LeaseGrant{LeaseID: l.id, Key: u.key, Config: u.cfg, TTL: c.opt.LeaseTTL, Stolen: stolen}
}

// reapLocked expires every lease whose worker has gone silent. Losing
// a backup lease is free; losing a unit's LAST lease is a failed
// attempt and routes through the retry/poison machinery.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Sub(l.beat) <= c.opt.LeaseTTL {
			continue
		}
		delete(c.leases, id)
		delete(l.unit.leases, id)
		c.stats.LeasesExpired++
		u := l.unit
		if u.state == unitLeased && len(u.leases) == 0 {
			c.failUnitLocked(u, fmt.Sprintf("lease expired (worker %s presumed dead)", l.worker))
		}
	}
}

// failUnitLocked records a failed attempt on u: requeue with backoff,
// or poison at the attempt cap.
func (c *Coordinator) failUnitLocked(u *unit, errMsg string) {
	u.attempts++
	u.lastErr = errMsg
	if u.attempts >= c.opt.MaxAttempts {
		u.state = unitPoisoned
		c.stats.KeysPoisoned++
		if c.opt.Progress != nil {
			c.opt.Progress.NotePoisoned(1)
		}
		c.poisoned = append(c.poisoned, PoisonedKey{
			Key:      u.key,
			Workload: u.cfg.Workload.Name,
			Seed:     u.cfg.Seed,
			Attempts: u.attempts,
			LastErr:  errMsg,
		})
		err := fmt.Errorf("coord: key %s (workload %q, seed %d) poisoned after %d attempts: %s",
			u.key, u.cfg.Workload.Name, u.cfg.Seed, u.attempts, errMsg)
		c.finishUnitLocked(u, nil, err)
		return
	}
	u.state = unitPending
	backoff := c.opt.BackoffBase << (u.attempts - 1)
	if backoff > c.opt.BackoffCap || backoff <= 0 {
		backoff = c.opt.BackoffCap
	}
	u.notBefore = c.opt.Now().Add(backoff)
	c.stats.Retries++
	if c.opt.Progress != nil {
		c.opt.Progress.NoteRetried()
	}
	c.queue = append(c.queue, u.key)
}

// completeLocked marks u done with a successful result.
func (c *Coordinator) completeLocked(u *unit, e sweep.Entry) {
	u.state = unitDone
	c.stats.KeysDone++
	c.finishUnitLocked(u, e.Result(u.cfg), nil)
}

// finishUnitLocked retires u's slot in the batch: drops leases, fires
// notify (under the lock — for results, that is the journal append the
// worker's ack waits on), and closes the batch when it was the last.
func (c *Coordinator) finishUnitLocked(u *unit, res *machine.Result, err error) {
	for id := range u.leases {
		delete(c.leases, id)
		delete(u.leases, id)
	}
	b := c.batch
	if b == nil {
		return
	}
	b.results[u.idx] = res
	if err != nil {
		b.errs = append(b.errs, fmt.Errorf("coord: run %d: %w", u.idx, err))
	}
	if b.notify != nil {
		b.notify(u.idx, res, err)
	}
	b.remaining--
	if b.remaining == 0 {
		c.batch = nil
		close(b.done)
	}
}
