package coord

import (
	"bytes"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"cmcp/internal/machine"
	"cmcp/internal/sweep"
)

// The chaos tests pin the package invariant end to end: a sweep that
// survives worker kill -9 and a coordinator restart merges and
// journals bit-identically to an uninterrupted serial sweep.

// slowGrid returns configs big enough (~hundreds of ms each) that a
// SIGKILL reliably lands mid-run.
func slowGrid(n int) []machine.Config {
	cfgs := make([]machine.Config, n)
	for i := range cfgs {
		c := testCfg(uint64(i + 1))
		c.Workload.TotalTouches = 4_000_000
		cfgs[i] = c
	}
	return cfgs
}

func assertFilesEqual(t *testing.T, a, b string) {
	t.Helper()
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Errorf("journals differ after compaction: %s (%d bytes) vs %s (%d bytes)",
			a, len(ab), b, len(bb))
	}
}

const helperBaseEnv = "CMCP_COORD_HELPER_BASE"

// TestHelperWorkerProcess is not a test: it is the victim subprocess
// for TestWorkerKill9MidLease, re-executing this test binary as a real
// OS process so SIGKILL is a genuine kill -9 (no deferred cleanup, no
// goodbye to the coordinator).
func TestHelperWorkerProcess(t *testing.T) {
	base := os.Getenv(helperBaseEnv)
	if base == "" {
		t.Skip("helper process for TestWorkerKill9MidLease; skipped in normal runs")
	}
	w := &Worker{
		Base:       base,
		Name:       "victim",
		RetryPause: 20 * time.Millisecond,
		Patience:   500,
	}
	w.Run()
}

// TestWorkerKill9MidLease: a worker process holding a lease is killed
// with SIGKILL mid-simulation. Its lease expires, the key requeues, a
// rescuer worker finishes the sweep, and the merged journal compacts
// to the same bytes as an uninterrupted serial sweep.
func TestWorkerKill9MidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test: spawns a subprocess and runs ~1s of simulation")
	}
	cfgs := slowGrid(3)
	dir := t.TempDir()
	refJ := dir + "/ref.jsonl"
	chaosJ := dir + "/chaos.jsonl"

	ref, err := sweep.Run(cfgs, sweep.Options{Parallelism: 1, Journal: refJ})
	if err != nil {
		t.Fatal(err)
	}

	c := New(Options{
		LeaseTTL:    300 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		MaxAttempts: 10,
	})
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The victim: this test binary re-executed as a worker.
	victim := exec.Command(os.Args[0], "-test.run=^TestHelperWorkerProcess$")
	victim.Env = append(os.Environ(), helperBaseEnv+"=http://"+c.Addr())
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}

	outCh := make(chan batchOut, 1)
	go func() {
		out, err := sweep.Run(cfgs, sweep.Options{Journal: chaosJ, Runner: c})
		if out == nil {
			outCh <- batchOut{nil, err}
			return
		}
		outCh <- batchOut{out.Results, err}
	}()

	// Wait until the victim holds a lease, then kill -9.
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().LeasesGranted == 0 {
		if time.Now().After(deadline) {
			victim.Process.Kill()
			victim.Wait()
			t.Fatal("victim never leased anything")
		}
		time.Sleep(time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	// The rescuer finishes what the victim abandoned.
	rescuer := &Worker{
		Base:       "http://" + c.Addr(),
		Name:       "rescuer",
		RetryPause: 10 * time.Millisecond,
		Patience:   500,
	}
	rescuerDone := make(chan error, 1)
	go func() { rescuerDone <- rescuer.Run() }()

	var out batchOut
	select {
	case out = <-outCh:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep did not recover from the kill within 60s")
	}
	if out.err != nil {
		t.Fatalf("recovered sweep errored: %v", out.err)
	}
	c.Finish()
	if err := <-rescuerDone; err != nil {
		t.Fatalf("rescuer: %v", err)
	}

	s := c.Stats()
	if s.LeasesExpired == 0 && s.LeasesStolen == 0 {
		t.Errorf("kill -9 left no trace (no lease expired or stolen): %+v", s)
	}
	if s.KeysDone != uint64(len(cfgs)) {
		t.Errorf("KeysDone = %d, want %d", s.KeysDone, len(cfgs))
	}
	if !reflect.DeepEqual(out.res, ref.Results) {
		t.Error("recovered results differ from serial reference")
	}

	// The invariant: both journals compact to identical bytes.
	if _, err := sweep.CompactJournal(refJ, refJ+".c"); err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.CompactJournal(chaosJ, chaosJ+".c"); err != nil {
		t.Fatal(err)
	}
	assertFilesEqual(t, refJ+".c", chaosJ+".c")
}

// TestCoordinatorRestartMidSweep: the coordinator is torn down with a
// batch in flight and a worker mid-run, then a new coordinator on the
// same address resumes the sweep from the journal. The surviving
// worker rides out the outage, its in-flight result is adopted, and
// the merged journal matches the serial reference bit for bit.
func TestCoordinatorRestartMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test: runs ~1s of simulation through a restart")
	}
	cfgs := slowGrid(4)
	dir := t.TempDir()
	refJ := dir + "/ref.jsonl"
	chaosJ := dir + "/chaos.jsonl"

	ref, err := sweep.Run(cfgs, sweep.Options{Parallelism: 1, Journal: refJ})
	if err != nil {
		t.Fatal(err)
	}

	opt := Options{
		LeaseTTL:    time.Second,
		BackoffBase: 10 * time.Millisecond,
		MaxAttempts: 10,
	}
	c1 := New(opt)
	if err := c1.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := c1.Addr()

	// One worker that outlives both coordinators.
	worker := &Worker{
		Base:       "http://" + addr,
		Name:       "survivor",
		RetryPause: 10 * time.Millisecond,
		Patience:   1000,
	}
	workerDone := make(chan error, 1)
	go func() { workerDone <- worker.Run() }()

	out1Ch := make(chan error, 1)
	go func() {
		_, err := sweep.Run(cfgs, sweep.Options{Journal: chaosJ, Runner: c1})
		out1Ch <- err
	}()

	// Let at least one run complete and journal, then pull the plug
	// while the worker is mid-run on the next one.
	deadline := time.Now().Add(30 * time.Second)
	for c1.Stats().KeysDone == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no key completed before the restart")
		}
		time.Sleep(time.Millisecond)
	}
	c1.Close()
	err1 := <-out1Ch
	if err1 == nil || !strings.Contains(err1.Error(), "aborted") {
		t.Fatalf("interrupted sweep error = %v", err1)
	}

	// Restart on the same address; the worker's retry loop finds it.
	c2 := New(opt)
	for i := 0; ; i++ {
		if err = c2.Start(addr); err == nil {
			break
		}
		if i >= 100 {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer c2.Close()

	out2, err := sweep.Run(cfgs, sweep.Options{Journal: chaosJ, Runner: c2})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	c2.Finish()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker did not survive the restart: %v", err)
	}

	if out2.Loaded == 0 {
		t.Error("restarted sweep re-executed everything (journal resume broken)")
	}
	if !reflect.DeepEqual(out2.Results, ref.Results) {
		t.Error("post-restart results differ from serial reference")
	}

	if _, err := sweep.CompactJournal(refJ, refJ+".c"); err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.CompactJournal(chaosJ, chaosJ+".c"); err != nil {
		t.Fatal(err)
	}
	assertFilesEqual(t, refJ+".c", chaosJ+".c")
}
