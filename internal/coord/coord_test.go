package coord

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cmcp/internal/machine"
	"cmcp/internal/obs"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/sweep"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// testCfg mirrors the sweep package's test grid: small, fast PSPT runs.
func testCfg(seed uint64) machine.Config {
	return machine.Config{
		Cores:       2,
		Workload:    workload.Uniform(128, 3000),
		MemoryRatio: 0.5,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      machine.PolicySpec{Kind: machine.FIFO, P: -1},
		Seed:        seed,
	}
}

func grid() []machine.Config {
	var cfgs []machine.Config
	for _, kind := range []machine.PolicyKind{machine.FIFO, machine.CMCP} {
		for seed := uint64(1); seed <= 2; seed++ {
			c := testCfg(seed)
			c.Policy = machine.PolicySpec{Kind: kind, P: 0.5}
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

// Top-level factories for registry-dependent tests: closures defined at
// one source location share a code pointer, so these must be distinct
// named functions. coordTestCrash panics on construction — the
// poisoned-key scenario.
func coordTestFIFO(policy.Host) policy.Policy { return policy.NewFIFO() }
func coordTestCrash(policy.Host) policy.Policy {
	panic("injected crash: policy refuses to construct")
}

var registerOnce sync.Once

func registerTestPolicies() {
	registerOnce.Do(func() {
		sweep.RegisterPolicy("coord-test-fifo", coordTestFIFO)
		sweep.RegisterPolicy("coord-test-crash", coordTestCrash)
	})
}

func keysOf(t *testing.T, cfgs []machine.Config) []string {
	t.Helper()
	keys := make([]string, len(cfgs))
	for i, c := range cfgs {
		k, err := sweep.Key(c)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	return keys
}

// entryFor simulates cfg locally and wraps the result as the journal
// entry a worker would post.
func entryFor(t *testing.T, cfg machine.Config) (string, sweep.Entry) {
	t.Helper()
	key, err := sweep.Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return key, sweep.EntryOf(key, cfg, res)
}

// fakeClock drives the lease machinery deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

type batchOut struct {
	res []*machine.Result
	err error
}

// startBatch launches c.Run in the background and returns the channel
// its outcome lands on.
func startBatch(t *testing.T, c *Coordinator, cfgs []machine.Config, notify func(int, *machine.Result, error)) <-chan batchOut {
	t.Helper()
	keys := keysOf(t, cfgs)
	ch := make(chan batchOut, 1)
	go func() {
		res, err := c.Run(cfgs, keys, 0, notify)
		ch <- batchOut{res, err}
	}()
	return ch
}

// pollGrant retries Lease until a grant appears (the batch enqueue runs
// in a background goroutine, so the first call may race it).
func pollGrant(t *testing.T, c *Coordinator, worker string) *LeaseGrant {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g, _, done := c.Lease(worker)
		if done {
			t.Fatal("Lease said done while a grant was expected")
		}
		if g != nil {
			return g
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no lease granted within 5s")
	return nil
}

func waitBatch(t *testing.T, ch <-chan batchOut) batchOut {
	t.Helper()
	select {
	case out := <-ch:
		return out
	case <-time.After(10 * time.Second):
		t.Fatal("batch did not complete within 10s")
		return batchOut{}
	}
}

func TestWireRoundTrip(t *testing.T) {
	registerTestPolicies()

	// Built-in policy: round-trips through JSON with the key intact.
	builtin := testCfg(3)
	builtin.Policy = machine.PolicySpec{Kind: machine.CMCP, P: 0.5, DynamicP: true}
	// Factory policy: transported by registered name.
	custom := testCfg(4)
	custom.Policy = machine.PolicySpec{Factory: coordTestFIFO}

	for name, cfg := range map[string]machine.Config{"builtin": builtin, "factory": custom} {
		wantKey, err := sweep.Key(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := toWire(cfg)
		if err != nil {
			t.Fatalf("%s: toWire: %v", name, err)
		}
		blob, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back configWire
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		got, err := back.config()
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		gotKey, err := sweep.Key(got)
		if err != nil {
			t.Fatalf("%s: key of decoded config: %v", name, err)
		}
		if gotKey != wantKey {
			t.Errorf("%s: config changed key over the wire: %s -> %s", name, wantKey, gotKey)
		}
	}

	// Unregistered factory: refused at encode time.
	rogue := testCfg(5)
	rogue.Policy = machine.PolicySpec{Factory: func(policy.Host) policy.Policy { return policy.NewFIFO() }}
	if _, err := toWire(rogue); err == nil || !strings.Contains(err.Error(), "RegisterPolicy") {
		t.Errorf("unregistered factory encoded without error (err=%v)", err)
	}

	// Unknown name: refused at decode time with a registration hint.
	var w configWire
	w.Config = testCfg(6)
	w.Policy = policyWire{Factory: "no-such-policy"}
	if _, err := w.config(); err == nil || !strings.Contains(err.Error(), "no-such-policy") {
		t.Errorf("unknown factory name decoded without error (err=%v)", err)
	}
}

// TestLeaseExpiryBackoffAndPoison walks one key through the whole
// failure ladder with a fake clock: expiry -> retry with exponential
// backoff -> capped backoff -> poisoned at MaxAttempts.
func TestLeaseExpiryBackoffAndPoison(t *testing.T) {
	clk := newClock()
	prog := obs.NewProgress()
	c := New(Options{
		LeaseTTL:    time.Second,
		MaxAttempts: 3,
		BackoffBase: 10 * time.Second,
		BackoffCap:  15 * time.Second,
		StealAfter:  -1, // isolate expiry from stealing
		Now:         clk.now,
		Progress:    prog,
	})
	cfgs := []machine.Config{testCfg(1)}
	ch := startBatch(t, c, cfgs, nil)

	g1 := pollGrant(t, c, "w1")
	if g1.TTL != time.Second || g1.Stolen {
		t.Fatalf("grant = %+v", g1)
	}

	// Attempt 1 dies: TTL passes without a heartbeat.
	clk.advance(1500 * time.Millisecond)
	if g, wait, _ := c.Lease("w1"); g != nil || wait <= 0 {
		t.Fatalf("expired key leased again inside backoff (grant=%v wait=%v)", g, wait)
	}
	s := c.Stats()
	if s.LeasesExpired != 1 || s.Retries != 1 || s.KeysPending != 1 {
		t.Fatalf("after first expiry: %+v", s)
	}

	// Backoff is 10s from the failure; 9s in, still gated.
	clk.advance(9 * time.Second)
	if g, _, _ := c.Lease("w1"); g != nil {
		t.Fatal("backoff gate ignored")
	}
	clk.advance(1500 * time.Millisecond)
	g2 := pollGrant(t, c, "w1")
	if g2.Key != g1.Key || g2.LeaseID == g1.LeaseID {
		t.Fatalf("regrant wrong: %+v", g2)
	}

	// Attempt 2 dies: backoff doubles to 20s but caps at 15s.
	clk.advance(1500 * time.Millisecond)
	if g, _, _ := c.Lease("w1"); g != nil {
		t.Fatal("leased during second backoff")
	}
	clk.advance(14 * time.Second) // 14s < 15s cap: still gated
	if g, _, _ := c.Lease("w1"); g != nil {
		t.Fatal("backoff cap not applied (leased before 15s)")
	}
	clk.advance(1500 * time.Millisecond)
	g3 := pollGrant(t, c, "w1")

	// Attempt 3 dies: MaxAttempts reached, key poisoned, batch ends.
	clk.advance(1500 * time.Millisecond)
	c.Lease("w1") // trigger the reap
	out := waitBatch(t, ch)
	if out.err == nil || !strings.Contains(out.err.Error(), "poisoned") {
		t.Fatalf("poisoned batch error = %v", out.err)
	}
	if out.res[0] != nil {
		t.Error("poisoned key produced a result")
	}
	s = c.Stats()
	if s.KeysPoisoned != 1 || s.LeasesExpired != 3 || s.Retries != 2 || s.LeasesGranted != 3 {
		t.Errorf("final stats: %+v", s)
	}
	report := c.PoisonedReport()
	if len(report) != 1 || report[0].Key != g3.Key || report[0].Attempts != 3 ||
		!strings.Contains(report[0].LastErr, "expired") {
		t.Errorf("poisoned report: %+v", report)
	}
	if ps := prog.Snapshot(); ps.Retried != 2 || ps.Poisoned != 1 {
		t.Errorf("progress retried=%d poisoned=%d, want 2 and 1", ps.Retried, ps.Poisoned)
	}
}

// TestFailRetriesThenSucceeds: a worker-reported failure requeues the
// key, and a later clean run completes the batch with no error.
func TestFailRetriesThenSucceeds(t *testing.T) {
	clk := newClock()
	c := New(Options{
		LeaseTTL:    time.Minute,
		MaxAttempts: 3,
		BackoffBase: time.Second,
		StealAfter:  -1,
		Now:         clk.now,
	})
	cfg := testCfg(1)
	_, entry := entryFor(t, cfg)
	ch := startBatch(t, c, []machine.Config{cfg}, nil)

	g1 := pollGrant(t, c, "w1")
	c.Fail(g1.LeaseID, g1.Key, "transient scratch-disk hiccup")
	clk.advance(1100 * time.Millisecond)
	g2 := pollGrant(t, c, "w1")
	if err := c.Result(g2.LeaseID, entry); err != nil {
		t.Fatal(err)
	}
	out := waitBatch(t, ch)
	if out.err != nil {
		t.Fatalf("batch with one retried key errored: %v", out.err)
	}
	if out.res[0] == nil || out.res[0].Runtime == 0 {
		t.Fatal("retried key has no result")
	}
	if s := c.Stats(); s.Retries != 1 || s.KeysDone != 1 || s.KeysPoisoned != 0 {
		t.Errorf("stats: %+v", s)
	}
}

// TestDuplicateResultAfterExpiry pins the idempotence half of crash
// tolerance: a worker whose lease expired posts anyway and wins;
// the replacement's copy is counted as a duplicate and discarded.
func TestDuplicateResultAfterExpiry(t *testing.T) {
	clk := newClock()
	c := New(Options{
		LeaseTTL:    time.Second,
		MaxAttempts: 5,
		BackoffBase: time.Millisecond,
		StealAfter:  -1,
		Now:         clk.now,
	})
	cfg := testCfg(2)
	_, entry := entryFor(t, cfg)
	ch := startBatch(t, c, []machine.Config{cfg}, nil)

	gA := pollGrant(t, c, "slow-worker")
	clk.advance(1500 * time.Millisecond) // A's lease dies...
	c.Lease("replacement")               // ...on this reap, which also starts the backoff
	clk.advance(5 * time.Millisecond)    // backoff passes
	gB := pollGrant(t, c, "replacement")
	if gB.Key != gA.Key {
		t.Fatalf("replacement leased %s, want %s", gB.Key, gA.Key)
	}

	// The presumed-dead worker finishes first and posts on its stale
	// lease. Results are keyed, not leased: accepted.
	if err := c.Result(gA.LeaseID, entry); err != nil {
		t.Fatal(err)
	}
	out := waitBatch(t, ch)
	if out.err != nil || out.res[0] == nil {
		t.Fatalf("batch outcome: res=%v err=%v", out.res[0], out.err)
	}

	// The replacement finishes the same deterministic run: duplicate.
	if err := c.Result(gB.LeaseID, entry); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.DuplicateResults != 1 || s.KeysDone != 1 || s.LeasesExpired != 1 {
		t.Errorf("stats: %+v", s)
	}
}

// TestWorkStealing: with nothing pending, an idle worker shadows the
// longest-running straggler; the bound is MaxLeasesPerKey.
func TestWorkStealing(t *testing.T) {
	clk := newClock()
	c := New(Options{
		LeaseTTL:    10 * time.Second,
		StealAfter:  50 * time.Millisecond,
		MaxAttempts: 3,
		Now:         clk.now,
	})
	cfg := testCfg(3)
	_, entry := entryFor(t, cfg)
	ch := startBatch(t, c, []machine.Config{cfg}, nil)

	g1 := pollGrant(t, c, "straggler")
	// Too fresh to steal.
	if g, _, _ := c.Lease("thief"); g != nil {
		t.Fatal("stole a lease younger than StealAfter")
	}
	clk.advance(100 * time.Millisecond)
	g2, _, _ := c.Lease("thief")
	if g2 == nil || !g2.Stolen || g2.Key != g1.Key {
		t.Fatalf("steal grant = %+v", g2)
	}
	// MaxLeasesPerKey (2) exhausted: a third worker waits.
	if g, wait, _ := c.Lease("third"); g != nil || wait <= 0 {
		t.Fatalf("third lease on one key (grant=%v wait=%v)", g, wait)
	}

	// The thief wins; the straggler's later copy is a duplicate.
	if err := c.Result(g2.LeaseID, entry); err != nil {
		t.Fatal(err)
	}
	out := waitBatch(t, ch)
	if out.err != nil || out.res[0] == nil {
		t.Fatalf("batch outcome: res=%v err=%v", out.res[0], out.err)
	}
	if err := c.Result(g1.LeaseID, entry); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.LeasesStolen != 1 || s.DuplicateResults != 1 || s.KeysDone != 1 {
		t.Errorf("stats: %+v", s)
	}
}

// TestOrphanAdoption: a result that arrives before its key is enqueued
// (worker finishing across a coordinator restart) is stashed and
// completes the unit the moment the batch appears.
func TestOrphanAdoption(t *testing.T) {
	c := New(Options{})
	cfg := testCfg(4)
	key, entry := entryFor(t, cfg)

	// No batch in flight, the lease ID is from a previous life.
	if err := c.Result("lease-from-before-the-crash", entry); err != nil {
		t.Fatal(err)
	}

	var notified int
	res, err := c.Run([]machine.Config{cfg}, []string{key}, 0,
		func(i int, r *machine.Result, e error) {
			if i == 0 && r != nil && e == nil {
				notified++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] == nil || notified != 1 {
		t.Fatalf("orphan not adopted: res=%v notified=%d", res[0], notified)
	}
	if s := c.Stats(); s.KeysDone != 1 || s.LeasesGranted != 0 {
		t.Errorf("adoption should not consume a lease: %+v", s)
	}
}

// TestAbortStashesLateResults covers the coordinator-shutdown path: the
// in-flight batch fails fast, a surviving worker's late result becomes
// an orphan, and the restarted batch adopts it without re-running.
func TestAbortStashesLateResults(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute})
	cfg := testCfg(5)
	_, entry := entryFor(t, cfg)
	ch := startBatch(t, c, []machine.Config{cfg}, nil)

	g := pollGrant(t, c, "survivor")

	// Second batch while one is in flight: refused.
	if _, err := c.Run([]machine.Config{cfg}, keysOf(t, []machine.Config{cfg}), 0, nil); err == nil {
		t.Error("concurrent batch accepted")
	}

	c.Abort(errTest)
	out := waitBatch(t, ch)
	if out.err == nil || !strings.Contains(out.err.Error(), "aborted") {
		t.Fatalf("aborted batch error = %v", out.err)
	}

	// The worker survived the coordinator and posts its result late.
	if err := c.Result(g.LeaseID, entry); err != nil {
		t.Fatal(err)
	}

	// The restarted batch adopts it instantly.
	res, err := c.Run([]machine.Config{cfg}, keysOf(t, []machine.Config{cfg}), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] == nil {
		t.Fatal("late result not adopted after restart")
	}
}

var errTest = errors.New("test-induced shutdown")

// TestMalformedResultRejected: a torn or inconsistent entry must not
// complete a unit.
func TestMalformedResultRejected(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute})
	cfg := testCfg(6)
	_, entry := entryFor(t, cfg)
	ch := startBatch(t, c, []machine.Config{cfg}, nil)
	g := pollGrant(t, c, "w1")

	bad := entry
	bad.Key = ""
	if err := c.Result(g.LeaseID, bad); err == nil {
		t.Error("keyless entry accepted")
	}
	bad = entry
	bad.Run = nil
	if err := c.Result(g.LeaseID, bad); err == nil {
		t.Error("runless entry accepted")
	}
	bad = entry
	bad.Cores = entry.Cores + 1
	if err := c.Result(g.LeaseID, bad); err == nil {
		t.Error("core-mismatched entry accepted")
	}

	// The unit is still completable: post the good entry. Its lease was
	// consumed by the first malformed post, but results are keyed.
	if err := c.Result(g.LeaseID, entry); err != nil {
		t.Fatal(err)
	}
	out := waitBatch(t, ch)
	if out.err != nil || out.res[0] == nil {
		t.Fatalf("batch outcome: res=%v err=%v", out.res[0], out.err)
	}
}

// TestCoordinatedSweepBitIdentical is the tentpole invariant in its
// happy path: a sweep run through the HTTP coordinator and a fleet of
// workers journals and merges bit-identically to a plain local sweep.
func TestCoordinatedSweepBitIdentical(t *testing.T) {
	cfgs := grid()
	dir := t.TempDir()
	refJ := dir + "/ref.jsonl"
	coordJ := dir + "/coord.jsonl"

	ref, err := sweep.Run(cfgs, sweep.Options{Parallelism: 2, Journal: refJ})
	if err != nil {
		t.Fatal(err)
	}

	c := New(Options{LeaseTTL: 2 * time.Second})
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const fleet = 3
	var wg sync.WaitGroup
	workerErrs := make([]error, fleet)
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Base:       "http://" + c.Addr(),
				Name:       "w" + string(rune('0'+i)),
				RetryPause: 10 * time.Millisecond,
				Patience:   500,
			}
			workerErrs[i] = w.Run()
		}(i)
	}

	out, err := sweep.Run(cfgs, sweep.Options{Journal: coordJ, Runner: c})
	if err != nil {
		t.Fatalf("coordinated sweep: %v", err)
	}
	c.Finish()
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}

	if out.Executed != len(cfgs) {
		t.Errorf("Executed = %d, want %d", out.Executed, len(cfgs))
	}
	if !reflect.DeepEqual(out.Results, ref.Results) {
		t.Error("coordinated results differ from local results")
	}

	// Journals compact to identical bytes: the bit-identity invariant.
	if _, err := sweep.CompactJournal(refJ, refJ+".c"); err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.CompactJournal(coordJ, coordJ+".c"); err != nil {
		t.Fatal(err)
	}
	assertFilesEqual(t, refJ+".c", coordJ+".c")

	// The coordinated journal resumes a local sweep with zero work.
	resumed, err := sweep.Run(cfgs, sweep.Options{Journal: coordJ})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 0 || resumed.Loaded != len(cfgs) {
		t.Errorf("resume from coordinated journal: executed=%d loaded=%d", resumed.Executed, resumed.Loaded)
	}

	if s := c.Stats(); s.KeysDone != uint64(len(cfgs)) || s.LeasesGranted < uint64(len(cfgs)) {
		t.Errorf("stats: %+v", s)
	}
}

// TestPoisonedKeyQuarantine: a config that crashes every worker that
// touches it is quarantined after MaxAttempts without wedging the rest
// of the sweep — every good key completes and journals normally.
func TestPoisonedKeyQuarantine(t *testing.T) {
	registerTestPolicies()
	good := grid()
	bad := testCfg(9)
	bad.Policy = machine.PolicySpec{Factory: coordTestCrash}
	badKey, err := sweep.Key(bad)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := append(append([]machine.Config{}, good...), bad)

	j := t.TempDir() + "/poison.jsonl"
	c := New(Options{
		LeaseTTL:    2 * time.Second,
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
	})
	if err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Base:       "http://" + c.Addr(),
				Name:       "pw" + string(rune('0'+i)),
				RetryPause: 10 * time.Millisecond,
				Patience:   500,
			}
			workerErrs[i] = w.Run()
		}(i)
	}

	out, err := sweep.Run(cfgs, sweep.Options{Journal: j, Runner: c})
	c.Finish()
	wg.Wait()
	if err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("sweep with a crashing config: err = %v", err)
	}
	_ = out
	for i, werr := range workerErrs {
		if werr != nil {
			t.Errorf("worker %d did not survive the crashing config: %v", i, werr)
		}
	}

	report := c.PoisonedReport()
	if len(report) != 1 || report[0].Key != badKey || report[0].Attempts != 2 ||
		!strings.Contains(report[0].LastErr, "injected crash") {
		t.Fatalf("poisoned report: %+v", report)
	}

	// Every good key journaled: a local re-run of the good grid loads
	// everything and executes nothing.
	resumed, err := sweep.Run(good, sweep.Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 0 || resumed.Loaded != len(good) {
		t.Errorf("good keys after quarantine: executed=%d loaded=%d, want 0 and %d",
			resumed.Executed, resumed.Loaded, len(good))
	}
}
