package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"cmcp/internal/machine"
	"cmcp/internal/sweep"
)

// Worker is the coordinator's client: it leases one config at a time,
// heartbeats while simulating, and posts the result (or the failure).
// It is deliberately stateless — a worker owns no journal and no grid,
// so kill -9 at any instant costs at most one lease TTL of progress.
//
// Liveness through coordinator outages is the worker's half of the
// crash-tolerance story: connection failures are tolerated up to
// Patience consecutive contacts (with backoff between), which rides
// out a coordinator restart; a heartbeat answered with 410 (lease
// expired under a slow run) does NOT abort the run — the result is
// still posted, and the coordinator accepts it idempotently by key.
type Worker struct {
	// Base is the coordinator's URL, e.g. "http://127.0.0.1:7070".
	Base string
	// Name identifies this worker in leases and logs (default pid).
	Name string
	// Patience is how many consecutive failed coordinator contacts to
	// tolerate before giving up (default 30). With the default retry
	// pacing that is roughly a minute of coordinator downtime.
	Patience int
	// RetryPause is the base pause between failed contacts (default
	// 2s).
	RetryPause time.Duration
	// Client is the HTTP client (default: http.Client with a 30s
	// timeout).
	Client *http.Client
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

func (w *Worker) defaults() {
	if w.Name == "" {
		w.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if w.Patience <= 0 {
		w.Patience = 30
	}
	if w.RetryPause <= 0 {
		w.RetryPause = 2 * time.Second
	}
	if w.Client == nil {
		w.Client = &http.Client{Timeout: 30 * time.Second}
	}
}

// Run leases and executes configs until the coordinator says the sweep
// is done (nil) or stays unreachable past Patience (error).
func (w *Worker) Run() error {
	w.defaults()
	failures := 0
	for {
		var lr leaseResponse
		if err := w.post("/lease", leaseRequest{Worker: w.Name}, &lr); err != nil {
			failures++
			if failures >= w.Patience {
				return fmt.Errorf("coord: worker %s: coordinator unreachable after %d attempts: %w", w.Name, failures, err)
			}
			time.Sleep(w.RetryPause)
			continue
		}
		failures = 0
		switch {
		case lr.Done:
			w.logf("worker %s: sweep done, exiting", w.Name)
			return nil
		case lr.LeaseID == "":
			pause := time.Duration(lr.RetryMS) * time.Millisecond
			if pause <= 0 {
				pause = w.RetryPause
			}
			time.Sleep(pause)
		default:
			w.execute(lr)
		}
	}
}

// execute runs one leased config end to end.
func (w *Worker) execute(lr leaseResponse) {
	fail := func(msg string) {
		w.logf("worker %s: key %s failed: %s", w.Name, lr.Key, msg)
		w.postRetry("/fail", failRequest{LeaseID: lr.LeaseID, Key: lr.Key, Error: msg}, nil)
	}
	if lr.Config == nil {
		fail("lease carried no config")
		return
	}
	cfg, err := lr.Config.config()
	if err != nil {
		fail(err.Error())
		return
	}
	// Drift guard: the key must hash identically here. A mismatch means
	// coordinator/worker skew (binary versions, registry bindings) and
	// running anyway would journal a wrong result under a valid key —
	// the one corruption determinism cannot absorb.
	key, err := sweep.Key(cfg)
	if err != nil {
		fail("config cannot be keyed: " + err.Error())
		return
	}
	if key != lr.Key {
		fail(fmt.Sprintf("content-key drift: leased %s, worker hashes %s (coordinator/worker version or registry skew)", lr.Key, key))
		return
	}

	// Heartbeat at TTL/3 until the run finishes. A 410 means the lease
	// expired — keep simulating anyway; the coordinator takes results
	// by key, and abandoning a nearly-done run would waste it.
	stop := make(chan struct{})
	heartbeatDone := make(chan struct{})
	interval := time.Duration(lr.TTLMS) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(heartbeatDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var gone *statusError
				if err := w.post("/heartbeat", heartbeatRequest{LeaseID: lr.LeaseID}, &struct{}{}); err == nil {
					continue
				} else if asStatus(err, &gone) && gone.code == http.StatusGone {
					w.logf("worker %s: lease %s expired mid-run; finishing anyway", w.Name, lr.LeaseID)
					return // stop renewing, keep running
				}
				// Transient coordinator outage: just keep trying.
			}
		}
	}()

	w.logf("worker %s: running key %s (workload %q, seed %d)", w.Name, lr.Key, cfg.Workload.Name, cfg.Seed)
	// RunManyNotify converts panics inside the simulator into errors,
	// so a crashing config reports /fail instead of killing the worker.
	results, runErr := machine.RunManyNotify([]machine.Config{cfg}, 1, func(int, *machine.Result, error) {})
	close(stop)
	<-heartbeatDone

	if runErr != nil || results[0] == nil {
		msg := "run produced no result"
		if runErr != nil {
			msg = runErr.Error()
		}
		fail(msg)
		return
	}
	entry := sweep.EntryOf(lr.Key, cfg, results[0])
	if err := w.postRetry("/result", resultRequest{LeaseID: lr.LeaseID, Entry: entry}, nil); err != nil {
		w.logf("worker %s: could not deliver result for %s: %v", w.Name, lr.Key, err)
		return
	}
	w.logf("worker %s: key %s done", w.Name, lr.Key)
}

// statusError is a non-2xx HTTP reply.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return fmt.Sprintf("http %d: %s", e.code, e.body) }

func asStatus(err error, out **statusError) bool {
	se, ok := err.(*statusError)
	if ok {
		*out = se
	}
	return ok
}

// post sends one JSON request and decodes the JSON reply.
func (w *Worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := w.Client.Post(w.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return &statusError{code: r.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// postRetry retries post through transient failures (connection
// refused during a coordinator restart) up to Patience attempts.
// Non-2xx replies are NOT retried — the coordinator answered; it just
// said no.
func (w *Worker) postRetry(path string, req, resp any) error {
	var err error
	for i := 0; i < w.Patience; i++ {
		if err = w.post(path, req, resp); err == nil {
			return nil
		}
		var se *statusError
		if asStatus(err, &se) {
			return err
		}
		time.Sleep(w.RetryPause)
	}
	return err
}
