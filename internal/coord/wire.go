package coord

import (
	"fmt"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
	"cmcp/internal/sweep"
)

// machine.Config is almost JSON: the one exception is
// Policy.Factory, a function value with no serializable identity.
// ConfigWire shadows the Policy field with a mirror whose Factory is
// the sweep registry name (see sweep.RegisterPolicy) — the embedded
// Config's own Policy (and its func) is never encoded, Go's JSON
// depth rule sees to that. Probe and Audit are single-run observers
// the sweep layer already rejects, so they are always nil here.
//
// The wire format carries the content key alongside the config, and
// the worker recomputes sweep.Key over the decoded config and refuses
// a mismatch. That drift guard turns every silent skew — version skew
// between coordinator and worker binaries, a registry name bound to a
// different factory, a field lost in transit — into a loud failure
// before any wrong result can be journaled under the right key.

// policyWire mirrors machine.PolicySpec with the factory as its
// registered name.
type policyWire struct {
	Factory    string             `json:"factory,omitempty"`
	Kind       machine.PolicyKind `json:"kind"`
	P          float64            `json:"p"`
	DynamicP   bool               `json:"dynamic_p,omitempty"`
	ScanPeriod sim.Cycles         `json:"scan_period,omitempty"`
	ScanBatch  int                `json:"scan_batch,omitempty"`
}

// configWire is machine.Config with the Policy field made
// serializable. The mirror's JSON name must be exactly "Policy":
// Go's shadowing rule hides the embedded func-carrying field only
// when the two fields' JSON names collide — with a different name
// both would encode, and encoding/json rejects func-typed fields
// even when nil.
type configWire struct {
	machine.Config
	Policy policyWire `json:"Policy"`
}

// toWire encodes cfg for transport. It fails on an unregistered
// factory — such configs cannot be content-keyed either, so the sweep
// layer rejects them long before dispatch.
func toWire(cfg machine.Config) (configWire, error) {
	pw := policyWire{
		Kind:       cfg.Policy.Kind,
		P:          cfg.Policy.P,
		DynamicP:   cfg.Policy.DynamicP,
		ScanPeriod: cfg.Policy.ScanPeriod,
		ScanBatch:  cfg.Policy.ScanBatch,
	}
	if cfg.Policy.Factory != nil {
		name, ok := sweep.RegisteredPolicyName(cfg.Policy.Factory)
		if !ok {
			return configWire{}, fmt.Errorf("coord: config's Policy.Factory is not registered (sweep.RegisterPolicy)")
		}
		pw.Factory = name
	}
	c := cfg
	c.Policy = machine.PolicySpec{} // shadowed; zeroed for hygiene
	c.Probe, c.Audit = nil, nil
	return configWire{Config: c, Policy: pw}, nil
}

// config decodes the wire form back into a runnable machine.Config,
// resolving the factory name through this process's registry.
func (w configWire) config() (machine.Config, error) {
	cfg := w.Config
	cfg.Policy = machine.PolicySpec{
		Kind:       w.Policy.Kind,
		P:          w.Policy.P,
		DynamicP:   w.Policy.DynamicP,
		ScanPeriod: w.Policy.ScanPeriod,
		ScanBatch:  w.Policy.ScanBatch,
	}
	if w.Policy.Factory != "" {
		f, ok := sweep.RegisteredPolicy(w.Policy.Factory)
		if !ok {
			return machine.Config{}, fmt.Errorf("coord: no policy registered as %q in this worker (register it via sweep.RegisterPolicy before starting the worker)", w.Policy.Factory)
		}
		cfg.Policy.Factory = f
	}
	return cfg, nil
}

// HTTP request/response bodies. Every endpoint is POST with a JSON
// body and a JSON reply.

type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseResponse struct {
	// Done: the sweep is over; the worker should exit.
	Done bool `json:"done,omitempty"`
	// RetryMS: nothing leasable right now; ask again after this long.
	RetryMS int64 `json:"retry_ms,omitempty"`
	// A grant. TTLMS tells the worker how often to heartbeat.
	LeaseID string      `json:"lease_id,omitempty"`
	Key     string      `json:"key,omitempty"`
	Config  *configWire `json:"config,omitempty"`
	TTLMS   int64       `json:"ttl_ms,omitempty"`
	Stolen  bool        `json:"stolen,omitempty"`
}

type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

type resultRequest struct {
	LeaseID string      `json:"lease_id"`
	Entry   sweep.Entry `json:"entry"`
}

type failRequest struct {
	LeaseID string `json:"lease_id"`
	Key     string `json:"key"`
	Error   string `json:"error"`
}

// stateResponse is the GET /state debugging snapshot.
type stateResponse struct {
	Stats    Stats         `json:"stats"`
	Poisoned []PoisonedKey `json:"poisoned,omitempty"`
}
