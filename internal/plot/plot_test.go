package plot

import (
	"math"
	"strings"
	"testing"

	"cmcp/internal/stats"
)

func TestLinesBasic(t *testing.T) {
	out := Lines("demo", []string{"a", "b", "c"}, []Series{
		{Name: "up", Y: []float64{1, 2, 3}},
		{Name: "down", Y: []float64{3, 2, 1}},
	}, 30, 8)
	for _, want := range []string{"demo", "* up", "o down", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The rising series' first marker must be lower (later row) than its
	// last marker.
	lines := strings.Split(out, "\n")
	firstStar, lastStar := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "*") {
			if firstStar == -1 {
				firstStar = i
			}
			lastStar = i
		}
	}
	if firstStar == lastStar {
		t.Errorf("rising series must span rows:\n%s", out)
	}
}

func TestLinesEmptyAndFlat(t *testing.T) {
	out := Lines("none", []string{"x"}, []Series{{Name: "nan", Y: []float64{math.NaN()}}}, 10, 5)
	if !strings.Contains(out, "no data") {
		t.Error("all-NaN must render gracefully")
	}
	flat := Lines("flat", []string{"a", "b"}, []Series{{Name: "c", Y: []float64{5, 5}}}, 10, 5)
	if !strings.Contains(flat, "*") {
		t.Error("flat series must still draw")
	}
}

func TestLinesClampsTinySizes(t *testing.T) {
	out := Lines("t", []string{"a", "b"}, []Series{{Name: "s", Y: []float64{0, 1}}}, 1, 1)
	if out == "" {
		t.Error("tiny sizes must clamp, not crash")
	}
}

func TestFromTable(t *testing.T) {
	tab := &stats.Table{Title: "relperf", Columns: []string{"4kB", "64kB"}}
	tab.AddRow("100%", "1.00", "1.00")
	tab.AddRow("80%", "0.70", "0.50")
	tab.AddRow("60%", "0.50", "0.20")
	out := FromTable(tab, 24, 6)
	if out == "" {
		t.Fatal("numeric table must plot")
	}
	if !strings.Contains(out, "relperf") || !strings.Contains(out, "64kB") {
		t.Errorf("plot missing metadata:\n%s", out)
	}
}

func TestFromTablePercentCells(t *testing.T) {
	tab := &stats.Table{Columns: []string{"CMCP"}}
	tab.AddRow("p=0", "+0.0%")
	tab.AddRow("p=1", "+15.3%")
	if FromTable(tab, 20, 5) == "" {
		t.Error("percent cells must parse")
	}
}

func TestFromTableNonNumeric(t *testing.T) {
	tab := &stats.Table{Columns: []string{"a"}}
	tab.AddRow("r1", "hello")
	tab.AddRow("r2", "world")
	if FromTable(tab, 20, 5) != "" {
		t.Error("non-numeric table must be skipped")
	}
	one := &stats.Table{Columns: []string{"a"}}
	one.AddRow("r1", "1")
	if FromTable(one, 20, 5) != "" {
		t.Error("single-row table must be skipped")
	}
}
