// Package plot renders small ASCII line charts in the terminal, so the
// experiment harness can show the *shapes* of the paper's figures —
// crossovers, knees, scaling collapses — not just number grids.
package plot

import (
	"fmt"
	"math"
	"strings"

	"cmcp/internal/stats"
)

// Series is one line of a chart.
type Series struct {
	Name string
	Y    []float64
}

// markers are assigned to series in order.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Lines renders the series over a shared X axis as an ASCII chart of
// the given plot-area size (axes and legend add a few rows/columns).
// All series must have len(Y) == len(xlabels); missing points may be
// NaN and are skipped.
func Lines(title string, xlabels []string, series []Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Sprintf("%s\n(no data)\n", title)
	}
	if hi == lo {
		hi = lo + 1
	}
	// A little headroom so extremes do not sit on the frame.
	span := hi - lo
	lo -= span * 0.05
	hi += span * 0.05

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	n := len(xlabels)
	colOf := func(i int) int {
		if n <= 1 {
			return 0
		}
		return i * (width - 1) / (n - 1)
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		prevC, prevR := -1, -1
		for i, v := range s.Y {
			if i >= n || math.IsNaN(v) {
				prevC = -1
				continue
			}
			c, r := colOf(i), rowOf(v)
			if prevC >= 0 {
				drawSegment(grid, prevC, prevR, c, r, '.')
			}
			grid[r][c] = m
			prevC, prevR = c, r
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yLabelW := 8
	for r, row := range grid {
		label := ""
		switch r {
		case 0:
			label = trimNum(hi)
		case height - 1:
			label = trimNum(lo)
		case (height - 1) / 2:
			label = trimNum((hi + lo) / 2)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yLabelW, label, string(row))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelW, "", strings.Repeat("-", width))
	// X labels: first and last (middle if it fits).
	first, last := "", ""
	if n > 0 {
		first, last = xlabels[0], xlabels[n-1]
	}
	gap := width - len(first) - len(last)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%*s  %s%s%s\n", yLabelW, "", first, strings.Repeat(" ", gap), last)
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "%*s  %c %s\n", yLabelW, "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// drawSegment draws a sparse connector between two points.
func drawSegment(grid [][]rune, c0, r0, c1, r1 int, ch rune) {
	steps := max(absInt(c1-c0), absInt(r1-r0))
	for s := 1; s < steps; s++ {
		c := c0 + (c1-c0)*s/steps
		r := r0 + (r1-r0)*s/steps
		if grid[r][c] == ' ' {
			grid[r][c] = ch
		}
	}
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	if len(s) > 8 {
		s = fmt.Sprintf("%.3g", v)
	}
	return s
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// FromTable converts a stats.Table whose cells are numeric (possibly
// with "%" or other suffixes) into a chart: one series per column, row
// labels as the X axis. Returns "" when fewer than two rows parse.
func FromTable(t *stats.Table, width, height int) string {
	if len(t.Rows) < 2 {
		return ""
	}
	xlabels := make([]string, len(t.Rows))
	series := make([]Series, len(t.Columns))
	for i := range series {
		series[i] = Series{Name: t.Columns[i], Y: make([]float64, len(t.Rows))}
	}
	parsed := 0
	for ri, row := range t.Rows {
		xlabels[ri] = row.Label
		ok := false
		for ci := range series {
			v := math.NaN()
			if ci < len(row.Cells) {
				if f, err := parseNumeric(row.Cells[ci]); err == nil {
					v = f
					ok = true
				}
			}
			series[ci].Y[ri] = v
		}
		if ok {
			parsed++
		}
	}
	if parsed < 2 {
		return ""
	}
	return Lines(t.Title, xlabels, series, width, height)
}

// parseNumeric parses a float out of a cell, tolerating %, +, and
// surrounding space.
func parseNumeric(s string) (float64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "+")
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}
