package sweep

import (
	"path/filepath"
	"reflect"
	"testing"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
)

// TestOrderLongestFirst pins the LPT reorder: known runtimes first,
// descending; unknown keys after, in original order; cfgs stay aligned
// with keys.
func TestOrderLongestFirst(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	cfgs := make([]machine.Config, len(keys))
	for i := range cfgs {
		cfgs[i].Seed = uint64(i)
	}
	runtimes := map[string]sim.Cycles{"b": 10, "d": 30, "e": 20}

	OrderLongestFirst(keys, cfgs, runtimes)

	want := []string{"d", "e", "b", "a", "c"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	wantSeeds := []uint64{3, 4, 1, 0, 2}
	for i, c := range cfgs {
		if c.Seed != wantSeeds[i] {
			t.Fatalf("cfgs misaligned after reorder: seeds %v", cfgs)
		}
	}

	// No runtimes: order untouched.
	keys2 := []string{"x", "y"}
	cfgs2 := make([]machine.Config, 2)
	OrderLongestFirst(keys2, cfgs2, nil)
	if keys2[0] != "x" || keys2[1] != "y" {
		t.Fatal("empty runtime map must not reorder")
	}
}

// TestScheduleFromJournal pins the end-to-end satellite: a prior
// journal's simulated runtimes feed RuntimesByKey, Options.ScheduleFrom
// reorders execution, and — because the merge is grid-ordered — the
// scheduled sweep's results are bit-identical to the unscheduled one.
func TestScheduleFromJournal(t *testing.T) {
	cfgs := grid()
	j := filepath.Join(t.TempDir(), "prior.jsonl")
	ref, err := Run(cfgs, Options{Journal: j, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	runtimes, err := RuntimesByKey(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(runtimes) != len(cfgs) {
		t.Fatalf("RuntimesByKey found %d keys, want %d", len(runtimes), len(cfgs))
	}
	for k, c := range runtimes {
		if c == 0 {
			t.Errorf("key %s has zero recorded runtime", k)
		}
	}

	// A fresh sweep scheduled from the prior journal must match the
	// reference exactly (ordering is wall-clock-only).
	out, err := Run(cfgs, Options{ScheduleFrom: j, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Results, ref.Results) {
		t.Fatal("scheduled sweep differs from reference")
	}

	// A missing schedule journal is a best-effort no-op, not an error.
	if _, err := Run(cfgs, Options{ScheduleFrom: filepath.Join(t.TempDir(), "absent.jsonl"), Parallelism: 2}); err != nil {
		t.Fatalf("missing ScheduleFrom journal errored: %v", err)
	}
}
