package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cmcp/internal/fault"
	"cmcp/internal/machine"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// testCfg is a small, fast PSPT run; seeds differentiate grid points.
func testCfg(seed uint64) machine.Config {
	return machine.Config{
		Cores:       2,
		Workload:    workload.Uniform(128, 3000),
		MemoryRatio: 0.5,
		PageSize:    sim.Size4k,
		Tables:      vm.PSPTKind,
		Policy:      machine.PolicySpec{Kind: machine.FIFO, P: -1},
		Seed:        seed,
	}
}

// grid is a small mixed sweep: two policies at two seeds.
func grid() []machine.Config {
	var cfgs []machine.Config
	for _, kind := range []machine.PolicyKind{machine.FIFO, machine.CMCP} {
		for seed := uint64(1); seed <= 2; seed++ {
			c := testCfg(seed)
			c.Policy = machine.PolicySpec{Kind: kind, P: 0.5}
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	base := testCfg(1)
	k1, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same config, different keys: %s vs %s", k1, k2)
	}
	if len(k1) != 16 {
		t.Fatalf("key %q is not a 16-hex-digit hash", k1)
	}

	// Every result-influencing field must perturb the key.
	mutations := map[string]func(*machine.Config){
		"cores":     func(c *machine.Config) { c.Cores++ },
		"seed":      func(c *machine.Config) { c.Seed++ },
		"ratio":     func(c *machine.Config) { c.MemoryRatio = 0.6 },
		"pagesize":  func(c *machine.Config) { c.PageSize = sim.Size64k },
		"adaptive":  func(c *machine.Config) { c.AdaptivePageSize = true },
		"tables":    func(c *machine.Config) { c.Tables = vm.RegularPT },
		"policy":    func(c *machine.Config) { c.Policy.Kind = machine.LRU },
		"policy-p":  func(c *machine.Config) { c.Policy.P = 0.875 },
		"workload":  func(c *machine.Config) { c.Workload.TotalTouches += 5 },
		"wl-name":   func(c *machine.Config) { c.Workload.Name = "other" },
		"cost":      func(c *machine.Config) { c.Cost.FaultEntry += 10 },
		"verify":    func(c *machine.Config) { c.Verify = true },
		"nowarmup":  func(c *machine.Config) { c.NoWarmup = true },
		"hist":      func(c *machine.Config) { c.Hist = true },
		"tick":      func(c *machine.Config) { c.TickInterval = 12345 },
		"faults":    func(c *machine.Config) { c.Faults = &fault9 },
		"faultseed": func(c *machine.Config) { f := fault9; f.Seed++; c.Faults = &f },
	}
	seen := map[string]string{k1: "base"}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		k, err := Key(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

var fault9 = func() (f fault.Config) {
	f.Seed = 9
	f.Rates[0] = 1e-4
	return
}()

func TestKeyRejectsCustomFactory(t *testing.T) {
	c := testCfg(1)
	c.Policy = machine.PolicySpec{Factory: func(policy.Host) policy.Policy { return policy.NewFIFO() }}
	if _, err := Key(c); err == nil || !strings.Contains(err.Error(), "Factory") {
		t.Fatalf("err = %v, want custom-factory rejection", err)
	}
}

func TestShardOfPartitions(t *testing.T) {
	var keys []string
	for seed := uint64(0); seed < 64; seed++ {
		k, err := Key(testCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	for _, n := range []int{1, 2, 3, 5} {
		counts := make([]int, n)
		for _, k := range keys {
			s := ShardOf(k, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%q, %d) = %d, out of range", k, n, s)
			}
			if s != ShardOf(k, n) {
				t.Fatalf("ShardOf(%q, %d) not deterministic", k, n)
			}
			counts[s]++ // disjoint and covering: each key lands exactly once
		}
		if n > 1 {
			empty := 0
			for _, c := range counts {
				if c == 0 {
					empty++
				}
			}
			if empty == n-1 {
				t.Errorf("n=%d: all 64 keys on one shard: %v", n, counts)
			}
		}
	}
	if ShardOf("abc", 0) != 0 || ShardOf("abc", 1) != 0 {
		t.Error("n<=1 must map everything to shard 0")
	}
}

func TestResumeBitIdentical(t *testing.T) {
	cfgs := grid()
	opts := func() Options { return Options{Parallelism: 2, Repeats: 2} }

	ref, err := Run(cfgs, opts())
	if err != nil {
		t.Fatal(err)
	}

	// "Crash" after the first grid point: journal only cfgs[0], then
	// tear the journal the way a kill mid-write would.
	j := filepath.Join(t.TempDir(), "sweep.jsonl")
	o := opts()
	o.Journal = j
	if _, err := Run(cfgs[:1], o); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(j, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"dead`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume over the full grid: the journaled replicates load, the torn
	// line costs one skip, and the merged output matches the
	// uninterrupted reference bit for bit. The counts reflect replicate
	// dedup: Repeats=2 expands seed-1 and seed-2 grid points to seed
	// sets {1,2} and {2,3}, so the seed-2 run is shared — per policy
	// there are 3 unique runs covering 4 slots. cfgs[0]'s journal holds
	// FIFO seeds {1,2}, which satisfies 3 of the FIFO slots; the other
	// 4 unique runs (FIFO@3, CMCP@{1,2,3}) execute.
	out, err := Run(cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if out.SkippedLines != 1 {
		t.Errorf("SkippedLines = %d, want 1", out.SkippedLines)
	}
	if out.Loaded != 3 {
		t.Errorf("Loaded = %d, want 3 (cfgs[0]'s replicates, one shared)", out.Loaded)
	}
	if out.Executed != 4 {
		t.Errorf("Executed = %d, want 4", out.Executed)
	}
	if out.Missing != 0 {
		t.Errorf("Missing = %d, want 0", out.Missing)
	}
	if !reflect.DeepEqual(out.Results, ref.Results) {
		t.Fatal("resumed sweep differs from uninterrupted sweep")
	}

	// A third run satisfies every slot from the journal.
	again, err := Run(cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.Loaded != len(cfgs)*2 {
		t.Errorf("full resume executed %d, loaded %d, want 0 and %d",
			again.Executed, again.Loaded, len(cfgs)*2)
	}
	if !reflect.DeepEqual(again.Results, ref.Results) {
		t.Fatal("journal-only sweep differs from uninterrupted sweep")
	}
}

func TestShardsSplitAndMerge(t *testing.T) {
	cfgs := grid()
	ref, err := Run(cfgs, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	j0 := filepath.Join(dir, "shard0.jsonl")
	j1 := filepath.Join(dir, "shard1.jsonl")
	out0, err := Run(cfgs, Options{Journal: j0, Shard: 0, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	out1, err := Run(cfgs, Options{Journal: j1, Shard: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := out0.Executed + out1.Executed; got != len(cfgs) {
		t.Fatalf("shards executed %d+%d runs, want %d total", out0.Executed, out1.Executed, len(cfgs))
	}
	// Each shard leaves the other's grid points nil and counts them.
	if out0.Missing != out1.Executed || out1.Missing != out0.Executed {
		t.Errorf("missing counts %d/%d do not mirror executed %d/%d",
			out0.Missing, out1.Missing, out0.Executed, out1.Executed)
	}

	// The merge invocation imports both journals and executes nothing.
	merged, err := Run(cfgs, Options{Imports: []string{j0, j1}})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Executed != 0 {
		t.Errorf("merge executed %d runs, want 0", merged.Executed)
	}
	if merged.Loaded != len(cfgs) {
		t.Errorf("merge loaded %d runs, want %d", merged.Loaded, len(cfgs))
	}
	if !reflect.DeepEqual(merged.Results, ref.Results) {
		t.Fatal("sharded merge differs from unsharded sweep")
	}
}

func TestRunShardOutOfRange(t *testing.T) {
	if _, err := Run(grid(), Options{Shard: 3, Shards: 2}); err == nil {
		t.Fatal("shard 3/2 accepted")
	}
}

func TestDuplicateGridPointsRunOnce(t *testing.T) {
	c := testCfg(1)
	out, err := Run([]machine.Config{c, c, c}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != 1 {
		t.Errorf("Executed = %d, want 1 (duplicates share one run)", out.Executed)
	}
	if !reflect.DeepEqual(out.Results[0], out.Results[1]) || !reflect.DeepEqual(out.Results[0], out.Results[2]) {
		t.Error("duplicate grid points got different results")
	}
}

func TestJournalRejectsForeignHeader(t *testing.T) {
	dir := t.TempDir()
	for name, contents := range map[string]string{
		"noheader.jsonl":    `{"key":"abc","cores":1}` + "\n",
		"badschema.jsonl":   `{"schema":"cmcp-sweep/v0","counters":[]}` + "\n",
		"oldschema.jsonl":   `{"schema":"cmcp-sweep/v1","counters":[]}` + "\n",
		"pretenant.jsonl":   `{"schema":"cmcp-sweep/v2","counters":[]}` + "\n",
		"badcounters.jsonl": `{"schema":"cmcp-sweep/v3","counters":["bogus"]}` + "\n",
		"badhists.jsonl":    validCountersBadHistsHeader() + "\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
		o := Options{Journal: path}
		if _, err := Run([]machine.Config{testCfg(1)}, o); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// validCountersBadHistsHeader builds a current-schema header whose
// counter table is current but whose histogram table is foreign.
func validCountersBadHistsHeader() string {
	h := map[string]any{
		"schema":   Schema,
		"counters": stats.CounterNames(),
		"hists":    []string{"bogus_hist"},
	}
	data, err := json.Marshal(h)
	if err != nil {
		panic(err)
	}
	return string(data)
}

// TestHistResumeBitIdentical is the histogram variant of the resume
// guarantee: a histogram-bearing sweep interrupted and resumed from its
// journal must reproduce the uninterrupted sweep's results — histogram
// buckets included — bit for bit, and the Repeats merge must pool the
// replicates' distributions exactly.
func TestHistResumeBitIdentical(t *testing.T) {
	cfgs := grid()
	for i := range cfgs {
		cfgs[i].Hist = true
	}
	opts := func() Options { return Options{Parallelism: 2, Repeats: 2} }

	ref, err := Run(cfgs, opts())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ref.Results {
		if r.Run.Hists == nil {
			t.Fatalf("result %d has no histograms", i)
		}
		for id := stats.HistID(0); id < stats.HistID(stats.NumHists); id++ {
			if !r.Run.Hists.Get(id).CheckInvariant() {
				t.Fatalf("result %d: %s invariant broken after merge", i, id.Name())
			}
		}
	}

	// Interrupt after one grid point, then resume over the full grid.
	j := filepath.Join(t.TempDir(), "hist.jsonl")
	o := opts()
	o.Journal = j
	if _, err := Run(cfgs[:1], o); err != nil {
		t.Fatal(err)
	}
	out, err := Run(cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Results, ref.Results) {
		t.Fatal("resumed hist sweep differs from uninterrupted sweep")
	}

	// Journal-only pass: everything loads, nothing executes, still equal.
	again, err := Run(cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 {
		t.Errorf("full resume executed %d runs, want 0", again.Executed)
	}
	if !reflect.DeepEqual(again.Results, ref.Results) {
		t.Fatal("journal-only hist sweep differs from uninterrupted sweep")
	}

	// Repeats pooling: the merged distribution is the exact sum of the
	// replicates' — replicate runs under seeds 1 and 2 for cfgs[0].
	var want stats.HistSet
	for r := 0; r < 2; r++ {
		c := cfgs[0]
		c.Seed = cfgs[0].Seed + uint64(r)
		res, err := Run([]machine.Config{c}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want.Merge(res.Results[0].Run.Hists)
	}
	if *ref.Results[0].Run.Hists != want {
		t.Fatal("Repeats merge did not pool histograms exactly")
	}
}

// TestHistKeysDisjointFromBare pins that a histogram-less journal can
// never satisfy a Hist sweep (and vice versa): the same grid with and
// without Hist shares no content keys.
func TestHistKeysDisjointFromBare(t *testing.T) {
	c := testCfg(1)
	bare, err := Key(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Hist = true
	hist, err := Key(c)
	if err != nil {
		t.Fatal(err)
	}
	if bare == hist {
		t.Fatal("Hist flag does not perturb the content key")
	}
}

// TestOnResultHook pins the live-result hook's contract: every executed
// run is delivered exactly once, and journal-loaded runs are not
// replayed through it.
func TestOnResultHook(t *testing.T) {
	cfgs := grid()
	j := filepath.Join(t.TempDir(), "hook.jsonl")
	var mu sync.Mutex
	var got int
	o := Options{
		Journal: j,
		OnResult: func(res *machine.Result) {
			mu.Lock()
			defer mu.Unlock()
			if res == nil || res.Run == nil {
				t.Error("OnResult delivered a nil result")
			}
			got++
		},
	}
	out, err := Run(cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if got != out.Executed {
		t.Errorf("OnResult fired %d times, want %d", got, out.Executed)
	}
	// Resume from the journal: nothing executes, the hook stays silent.
	got = 0
	again, err := Run(cfgs, o)
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || got != 0 {
		t.Errorf("journal-only sweep fired OnResult %d times (executed %d)", got, again.Executed)
	}
}
