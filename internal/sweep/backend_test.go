package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cmcp/internal/machine"
)

// runBackend sweeps the standard grid against a Backend and returns
// the outcome.
func runBackend(t *testing.T, b Backend) *Outcome {
	t.Helper()
	out, err := Run(grid(), Options{Backend: b, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBackendResume pins the Backend contract every implementation
// must honor: a sweep journaled through the backend resumes from it —
// second pass loads everything, executes nothing, and merges
// bit-identically to an uninterrupted local sweep.
func TestBackendResume(t *testing.T) {
	ref, err := Run(grid(), Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	backends := map[string]Backend{
		"file": NewFileBackend(filepath.Join(dir, "file.jsonl")),
		"mem":  NewMemBackend(),
		"dir":  NewDirBackend(filepath.Join(dir, "tree")),
	}
	for name, b := range backends {
		t.Run(name, func(t *testing.T) {
			first := runBackend(t, b)
			if first.Executed != len(grid()) {
				t.Fatalf("first pass executed %d, want %d", first.Executed, len(grid()))
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			// Close must not retire the backend: Load and Append still work.
			again := runBackend(t, b)
			if again.Executed != 0 || again.Loaded != len(grid()) {
				t.Fatalf("resume executed %d, loaded %d, want 0 and %d", again.Executed, again.Loaded, len(grid()))
			}
			if !reflect.DeepEqual(again.Results, ref.Results) {
				t.Fatal("backend resume differs from uninterrupted sweep")
			}
		})
	}
}

// TestFileBackendMatchesJournalOption pins that Options.Backend with a
// FileBackend writes the same journal Options.Journal would — the two
// spellings are one substrate.
func TestFileBackendMatchesJournalOption(t *testing.T) {
	dir := t.TempDir()
	viaOpt := filepath.Join(dir, "opt.jsonl")
	viaBk := filepath.Join(dir, "bk.jsonl")
	if _, err := Run(grid(), Options{Journal: viaOpt, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	b := NewFileBackend(viaBk)
	if _, err := Run(grid(), Options{Backend: b, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	// Completion order can differ run to run, so compare the canonical
	// compacted forms, not the raw files.
	for _, p := range []string{viaOpt, viaBk} {
		if _, err := CompactJournal(p, ""); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(viaOpt)
	if err != nil {
		t.Fatal(err)
	}
	bdata, err := os.ReadFile(viaBk)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(bdata) {
		t.Fatal("FileBackend journal differs from Options.Journal journal after compaction")
	}
}

// TestDirBackendCrashArtifacts pins DirBackend's torn-write story:
// stray temp files from a kill mid-write are invisible to Load, and a
// tree holding entries without provenance is rejected outright.
func TestDirBackendCrashArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tree")
	b := NewDirBackend(dir)
	ref := runBackend(t, b)

	// A kill mid-Append leaves a temp file; Load must not count or
	// decode it.
	sub := filepath.Join(dir, "ab")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, dirTmpPrefix+"abcd.json"), []byte(`{"key":"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, skipped, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(entries) != ref.Executed {
		t.Fatalf("Load = %d entries, %d skipped; want %d and 0 (temp file must be invisible)", len(entries), skipped, ref.Executed)
	}

	// An installed-but-corrupt entry file is skipped and counted, like a
	// torn JSONL line.
	if err := os.WriteFile(filepath.Join(sub, "abcdef.json"), []byte(`{"key":"half`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, skipped, err = b.Load(); err != nil || skipped != 1 {
		t.Fatalf("corrupt entry: skipped = %d, err = %v; want 1 and nil", skipped, err)
	}

	// Entries with no header.json mean unattributable provenance: reject.
	if err := os.Remove(filepath.Join(dir, dirHeaderFile)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewDirBackend(dir).Load(); err == nil || !strings.Contains(err.Error(), dirHeaderFile) {
		t.Fatalf("headerless tree: err = %v, want provenance rejection", err)
	}
}

// TestDirBackendRejectsForeignHeader mirrors the JSONL header checks.
func TestDirBackendRejectsForeignHeader(t *testing.T) {
	for name, hdr := range map[string]string{
		"badschema":   `{"schema":"cmcp-sweep/v0","counters":[]}`,
		"stale":       `{"schema":"cmcp-sweep/v2","counters":[]}`,
		"badcounters": `{"schema":"cmcp-sweep/v3","counters":["bogus"]}`,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, dirHeaderFile), []byte(hdr), 0o644); err != nil {
				t.Fatal(err)
			}
			b := NewDirBackend(dir)
			if _, _, err := b.Load(); err == nil {
				t.Error("Load accepted a foreign header")
			}
			if err := b.Append(EntryOf("0123456789abcdef", testCfg(1), Placeholder(testCfg(1)))); err == nil {
				t.Error("Append accepted a foreign header")
			}
		})
	}
}

// TestMemBackendLenientLoad pins that the in-memory backend applies
// the same per-entry validation the file readers do.
func TestMemBackendLenientLoad(t *testing.T) {
	b := NewMemBackend()
	cfg := testCfg(1)
	key, err := Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(EntryOf(key, cfg, res)); err != nil {
		t.Fatal(err)
	}
	b.lines = append(b.lines, []byte(`{"key":"torn`)) // simulated corruption
	entries, skipped, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || skipped != 1 {
		t.Fatalf("Load = %d entries, %d skipped; want 1 and 1", len(entries), skipped)
	}
	if entries[0].Key != key {
		t.Fatalf("loaded key %q, want %q", entries[0].Key, key)
	}
}
