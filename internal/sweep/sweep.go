// Package sweep is the scale-out layer of the experiment harness: a
// checkpointed, resumable, shardable parameter-sweep runner layered on
// machine.RunMany.
//
// The paper's evaluation — and every CI matrix grown from it — is a
// large grid of (policy × cores × memory-ratio × page-size × seed)
// simulations. Production tiered-memory studies (TPP, Nomad) lean on
// exactly this kind of long-sweep infrastructure, and a sweep that
// loses all progress on a crash does not scale past toy grids. Here
// every run gets a deterministic content key (a hash of its
// machine.Config; see Key), completed runs append to a JSONL journal as
// they finish, and a restarted sweep loads the journal and re-executes
// only the runs it is missing — the merged output is bit-identical to
// an uninterrupted sweep, because each journaled Result round-trips
// losslessly and the merge order is fixed by the grid, not by
// completion order.
//
// Sharding partitions the same grid by key (ShardOf): n processes — CI
// jobs, machines — each run `Shard: i, Shards: n` against their own
// journal, with no coordination, and a final un-sharded invocation
// that imports every journal merges the grid without executing
// anything. Seed replication (Options.Repeats) expands each grid point
// into runs under seeds Seed..Seed+Repeats-1, journals the replicates
// individually, and averages them in the deterministic merge step —
// the same math the experiment harness used to do inline.
package sweep

import (
	"fmt"
	"sync"

	"cmcp/internal/machine"
	"cmcp/internal/obs"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

// Options parameterize one sweep.
type Options struct {
	// Journal is the path of this process's append-mode JSONL journal:
	// completed runs are appended (and flushed) as they finish, and
	// journaled runs found at startup are reused instead of executed.
	// Empty disables checkpointing. One journal belongs to one process
	// at a time; shards each write their own.
	Journal string
	// Imports are additional journals to read for completed runs —
	// typically the other shards' output during the final merge. They
	// are never written.
	Imports []string
	// Shard/Shards partition the expanded run grid by content key:
	// this process executes only runs with ShardOf(key, Shards) ==
	// Shard. Shards <= 1 disables partitioning. Runs outside the shard
	// are still satisfied from journals when present; otherwise they
	// are counted in Outcome.Missing and their merged slots stay nil.
	Shard, Shards int
	// Parallelism caps concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Repeats replicates every config under seeds Seed..Seed+Repeats-1
	// and averages the replicates in the merge step (0 or 1 = single
	// run per grid point).
	Repeats int
	// Progress, when non-nil, is advanced as the sweep plans and
	// completes runs; see obs.Progress.
	Progress *obs.Progress
	// OnResult, when non-nil, receives every successfully executed run
	// the moment it completes (journal-loaded runs are not replayed
	// through it). It is called from RunMany worker goroutines,
	// concurrently — the callback must be safe for concurrent use and
	// must not retain or mutate the Result. The telemetry server's
	// live-snapshot feed hangs off this hook.
	OnResult func(*machine.Result)
	// Backend, when non-nil, replaces Journal as this sweep's journal
	// store: completed runs Append to it and resumable runs Load from
	// it. Journal (if also set) then contributes read-only, like an
	// import. The caller owns the Backend's lifecycle; Run never closes
	// a Backend it did not open itself.
	Backend Backend
	// Runner, when non-nil, replaces the local in-process executor: the
	// planned runs are handed to it instead of machine.RunManyNotify.
	// The coordinator implements Runner to dispatch runs to leased
	// workers; everything around execution — planning, journaling,
	// resume, sharding, the deterministic merge — is identical either
	// way, which is what makes coordinated and local sweeps
	// bit-comparable.
	Runner Runner
	// ScheduleFrom is an optional journal path whose recorded simulated
	// runtimes order the pending runs longest-first (LPT) before
	// execution. Runs absent from that journal keep their grid order
	// after the known ones. Ordering never changes any result — the
	// merge is grid-ordered — only the wall-clock shape of the sweep.
	ScheduleFrom string
}

// Runner executes a planned batch of runs. keys[i] is cfgs[i]'s
// content key; notify fires once per run as it completes (with either
// a result or an error), from arbitrary goroutines. The returned slice
// aligns with cfgs, nil for failed runs, and the returned error joins
// per-run failures — the machine.RunManyNotify contract.
type Runner interface {
	Run(cfgs []machine.Config, keys []string, parallelism int, notify func(i int, res *machine.Result, err error)) ([]*machine.Result, error)
}

// localRunner is the default in-process Runner.
type localRunner struct{}

func (localRunner) Run(cfgs []machine.Config, keys []string, parallelism int, notify func(int, *machine.Result, error)) ([]*machine.Result, error) {
	return machine.RunManyNotify(cfgs, parallelism, notify)
}

// Outcome is one sweep's merged result set plus its provenance.
type Outcome struct {
	// Results align with the input configs: Results[i] is config i's
	// merged (Repeats-averaged) result, or nil when sharding left some
	// of its replicates unexecuted (see Missing).
	Results []*machine.Result
	// Executed counts runs this process simulated.
	Executed int
	// Loaded counts runs satisfied from journals.
	Loaded int
	// Missing counts runs that belong to other shards and appeared in
	// no journal. Always zero on an unsharded sweep.
	Missing int
	// SkippedLines counts malformed journal lines dropped by the
	// lenient reader (e.g. the torn last line of a killed sweep).
	SkippedLines int
}

// Run executes the grid. Runs already present in the journal (or any
// import) are loaded, runs assigned to other shards are left to them,
// and everything else executes through machine.RunMany, journaling
// each completion immediately. The returned error aggregates per-run
// failures exactly like RunMany; journaled sibling results survive a
// failed or killed sweep either way.
func Run(cfgs []machine.Config, opt Options) (*Outcome, error) {
	if opt.Shards < 0 || (opt.Shards > 1 && (opt.Shard < 0 || opt.Shard >= opt.Shards)) {
		return nil, fmt.Errorf("sweep: shard %d/%d out of range", opt.Shard, opt.Shards)
	}
	reps := opt.Repeats
	if reps <= 1 {
		reps = 1
	}

	// Expand the grid: one run per (config, replicate seed), each with
	// its deterministic content key.
	type slot struct {
		cfg machine.Config
		key string
	}
	expanded := make([]slot, 0, len(cfgs)*reps)
	for i := range cfgs {
		if cfgs[i].Probe != nil || cfgs[i].Audit != nil {
			return nil, fmt.Errorf("sweep: config %d carries a Probe/Audit observer; those are single-run objects and cannot be swept", i)
		}
		for r := 0; r < reps; r++ {
			c := cfgs[i]
			c.Seed = cfgs[i].Seed + uint64(r)
			key, err := Key(c)
			if err != nil {
				return nil, fmt.Errorf("sweep: config %d: %w", i, err)
			}
			expanded = append(expanded, slot{cfg: c, key: key})
		}
	}
	out := &Outcome{Results: make([]*machine.Result, len(cfgs))}
	if opt.Progress != nil {
		opt.Progress.AddTotal(len(expanded))
	}

	// Load every journal: this process's own (resume) plus imports
	// (other shards). Later entries win within a file; across files the
	// first hit wins — runs are deterministic, so duplicates agree.
	// Options.Backend, when set, is the primary store; Options.Journal
	// then demotes to a read-only import.
	journaled := make(map[string]Entry)
	if opt.Backend != nil {
		entries, skipped, err := opt.Backend.Load()
		if err != nil {
			return nil, err
		}
		out.SkippedLines += skipped
		for _, e := range entries {
			journaled[e.Key] = e
		}
	}
	for _, path := range append([]string{opt.Journal}, opt.Imports...) {
		if path == "" {
			continue
		}
		entries, skipped, err := readJournalFile(path)
		if err != nil {
			return nil, err
		}
		out.SkippedLines += skipped
		for _, e := range entries {
			journaled[e.Key] = e
		}
	}

	// Plan: fill journaled slots, then collect the unique keys this
	// shard still has to execute (duplicate grid points run once).
	raw := make([]*machine.Result, len(expanded))
	seen := make(map[string]struct{}, len(expanded))
	var runCfgs []machine.Config
	var runKeys []string
	for j, sl := range expanded {
		if e, ok := journaled[sl.key]; ok && e.Cores == sl.cfg.Cores {
			raw[j] = e.Result(sl.cfg)
			out.Loaded++
			continue
		}
		if _, ok := seen[sl.key]; ok {
			continue // duplicate grid point: filled from `executed` below
		}
		seen[sl.key] = struct{}{}
		if opt.Shards > 1 && ShardOf(sl.key, opt.Shards) != opt.Shard {
			continue // another shard's work
		}
		runCfgs = append(runCfgs, sl.cfg)
		runKeys = append(runKeys, sl.key)
	}
	if opt.Progress != nil {
		opt.Progress.NoteLoaded(out.Loaded)
	}

	// Longest-first (LPT) scheduling: when a prior journal records how
	// long each run simulates, front-load the long ones so no straggler
	// serializes the sweep's tail. Purely a wall-clock optimization —
	// the merge below is grid-ordered, so results are unchanged.
	if opt.ScheduleFrom != "" && len(runCfgs) > 1 {
		runtimes, err := RuntimesByKey(opt.ScheduleFrom)
		if err != nil {
			return nil, err
		}
		OrderLongestFirst(runKeys, runCfgs, runtimes)
	}

	// Execute, journaling each run the moment it completes: that
	// durable Append is the checkpoint a killed sweep resumes from.
	// An explicit Backend is caller-owned; a Backend opened here for
	// Options.Journal is closed here.
	backend := opt.Backend
	ownedBackend := false
	if backend == nil && opt.Journal != "" && len(runCfgs) > 0 {
		backend = NewFileBackend(opt.Journal)
		ownedBackend = true
	}
	var (
		jwMu  sync.Mutex
		jwErr error
	)
	runner := opt.Runner
	if runner == nil {
		runner = localRunner{}
	}
	results, runErr := runner.Run(runCfgs, runKeys, opt.Parallelism, func(i int, res *machine.Result, err error) {
		if opt.Progress != nil {
			opt.Progress.NoteExecuted()
		}
		if err != nil {
			return
		}
		if opt.OnResult != nil {
			opt.OnResult(res)
		}
		if backend == nil {
			return
		}
		if aerr := backend.Append(EntryOf(runKeys[i], runCfgs[i], res)); aerr != nil {
			jwMu.Lock()
			if jwErr == nil {
				jwErr = aerr
			}
			jwMu.Unlock()
		}
	})
	if ownedBackend {
		if cerr := backend.Close(); cerr != nil && jwErr == nil {
			jwErr = cerr
		}
	}
	if jwErr != nil {
		return nil, fmt.Errorf("sweep: journaling: %w", jwErr)
	}
	out.Executed = len(runCfgs)

	// Distribute executed results to their slots (including duplicate
	// grid points sharing a key), normalizing Config to the submitted
	// one so journaled and live results are indistinguishable.
	executed := make(map[string]*machine.Result, len(runKeys))
	for i, key := range runKeys {
		if results[i] != nil {
			results[i].Config = runCfgs[i]
			executed[key] = results[i]
		}
	}
	for j, sl := range expanded {
		if raw[j] == nil {
			if res, ok := executed[sl.key]; ok {
				raw[j] = res
			}
		}
	}
	for _, r := range raw {
		if r == nil {
			out.Missing++
		}
	}
	if opt.Progress != nil && out.Missing > 0 {
		opt.Progress.NoteMissing(out.Missing)
	}
	if runErr != nil {
		return out, runErr
	}

	// Deterministic merge: replicates average in seed order, regardless
	// of the order anything executed or journaled in.
	for i := range cfgs {
		group := raw[i*reps : (i+1)*reps]
		complete := true
		for _, r := range group {
			if r == nil {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		if reps == 1 {
			out.Results[i] = group[0]
			continue
		}
		agg := *group[0] // replicate 0 supplies Frames/Sharing/etc.
		agg.Run = group[0].Run.Clone()
		var runtime sim.Cycles
		for r := 0; r < reps; r++ {
			runtime += group[r].Runtime
			if r > 0 {
				if err := agg.Run.Merge(group[r].Run); err != nil {
					return nil, err
				}
			}
		}
		agg.Run.DivideBy(uint64(reps))
		agg.Runtime = runtime / sim.Cycles(reps)
		agg.Config = cfgs[i]
		out.Results[i] = &agg
	}
	return out, nil
}

// Placeholder returns an inert stand-in Result for a grid point whose
// runs live in another shard: zero counters, zero runtime, a marker
// policy name. Renderers stay total — a sharded invocation produces a
// complete (if meaningless) report that the caller suppresses — and
// nothing downstream dereferences nil.
func Placeholder(cfg machine.Config) *machine.Result {
	return &machine.Result{
		Config:     cfg,
		Run:        stats.NewRun(cfg.Cores),
		PolicyName: "(other shard)",
	}
}
