package sweep

import (
	"testing"

	"cmcp/internal/sim"
)

// TestKeyTopologySensitive extends the key-sensitivity property to the
// NUMA topology: presence and every field must perturb the content key
// — and, dually, a nil topology must NOT (flat configs keep the keys
// their pre-topology journals were written under, modulo the v4 schema
// gate).
func TestKeyTopologySensitive(t *testing.T) {
	flat := testCfg(1)
	flatKey, err := Key(flat)
	if err != nil {
		t.Fatal(err)
	}
	base := testCfg(1)
	base.Topology = sim.DefaultTopology(2, 4)
	baseKey, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	if baseKey == flatKey {
		t.Fatal("2-socket config keys like a flat one")
	}
	mutations := map[string]func(*sim.Topology){
		"sockets":   func(tp *sim.Topology) { tp.Sockets = 4; tp.CoresPerSocket = 2 },
		"cps":       func(tp *sim.Topology) { tp.CoresPerSocket++ },
		"xipi":      func(tp *sim.Topology) { tp.CrossSocketIPI += 50 },
		"walk":      func(tp *sim.Topology) { tp.RemoteWalkExtra += 10 },
		"sync":      func(tp *sim.Topology) { tp.ReplicaSync += 10 },
		"migrate":   func(tp *sim.Topology) { tp.MigrateCost += 100 },
		"threshold": func(tp *sim.Topology) { tp.MigrateThreshold++ },
	}
	seen := map[string]string{baseKey: "base", flatKey: "flat"}
	for name, mutate := range mutations {
		c := base
		topo := *base.Topology
		mutate(&topo)
		c.Topology = &topo
		k, err := Key(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}
