package sweep

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"

	"cmcp/internal/fault"
	"cmcp/internal/machine"
)

// keyVersion is folded into every content key. Bump it whenever the
// meaning of a hashed field changes (not merely when fields are added —
// added fields change keys by themselves), so journals written under
// older semantics can never satisfy a new sweep.
//
// v2: multi-tenant machines. Config.Tenants is hashed (presence plus
// every field) and the journaled Run payload grew a per-tenant record,
// so pre-tenant journal entries can never satisfy a tenant sweep.
const keyVersion = 2

// Key returns the deterministic content key of one run configuration:
// a 64-bit FNV-1a hash, rendered as 16 hex digits, over every field
// that can influence the simulation's result — policy, workload spec,
// cores, memory ratio, page size and table kind, seeds, cost model, TLB
// geometry, and the fault-injection config. Two Configs share a key iff
// they describe the same deterministic run, which is what lets a
// journal replace re-execution and lets shards partition a grid with no
// coordination.
//
// Probe and Audit are deliberately excluded: both are read-only
// observers that never change a run's Result. Custom policy factories
// cannot be content-hashed directly (a function value has no stable
// identity across processes); a factory registered via RegisterPolicy
// hashes its registered name instead — appended to the stream only in
// the factory case, so every built-in config's key is unchanged —
// while unregistered factories are still rejected.
func Key(cfg machine.Config) (string, error) {
	factoryName := ""
	if cfg.Policy.Factory != nil {
		name, ok := RegisteredPolicyName(cfg.Policy.Factory)
		if !ok {
			return "", fmt.Errorf("sweep: custom Policy.Factory configs cannot be content-keyed (no stable cross-process identity); use a built-in PolicyKind or register the factory via sweep.RegisterPolicy")
		}
		factoryName = name
	}
	w := hasher{h: fnv.New64a()}
	w.u64(keyVersion)

	w.i(cfg.Cores)

	// Workload spec, field by field in declaration order.
	s := cfg.Workload
	w.str(s.Name)
	w.i(s.Pages)
	w.i(s.TotalTouches)
	w.f64(s.WriteFrac)
	w.i(len(s.Sharing))
	for _, b := range s.Sharing {
		w.i(b.Cores)
		w.f64(b.Frac)
		w.f64(b.HotFrac)
	}
	w.f64(s.SharedHotFrac)
	w.f64(s.PrivateHotFrac)
	w.f64(s.HotQ)
	w.i(s.Burst)
	w.f64(s.SeqP)
	w.b(s.PhaseShift)
	w.i(s.HotStripe)
	w.f64(s.HotSkew)

	// Tenant spec, field by field in declaration order.
	if ten := cfg.Tenants; ten != nil {
		w.b(true)
		w.i(ten.Tenants)
		w.i(ten.PagesPerTenant)
		w.i(ten.TotalTouches)
		w.f64(ten.WriteFrac)
		w.f64(ten.ZipfS)
		w.f64(ten.PageSkew)
		w.i(ten.Burst)
		w.i(ten.ChurnEvery)
		w.i(ten.ChurnStride)
		w.i(ten.DiurnalEvery)
		w.i(len(ten.Weights))
		for _, wt := range ten.Weights {
			w.f64(wt)
		}
		w.b(ten.HardPartition)
	} else {
		w.b(false)
	}

	w.f64(cfg.MemoryRatio)
	w.u64(uint64(cfg.PageSize))
	w.b(cfg.AdaptivePageSize)
	w.u64(uint64(cfg.Tables))

	w.u64(uint64(cfg.Policy.Kind))
	w.f64(cfg.Policy.P)
	w.b(cfg.Policy.DynamicP)
	w.u64(uint64(cfg.Policy.ScanPeriod))
	w.i(cfg.Policy.ScanBatch)
	if factoryName != "" {
		// Registered custom policy: the name is its identity. Hashed
		// only in the factory case so built-in configs keep the keys
		// their journals were written under.
		w.str(factoryName)
	}

	w.u64(cfg.Seed)

	// CostModel is all fixed-size fields (Cycles, float64), so the
	// binary encoding covers future fields automatically.
	if err := binary.Write(w.h, binary.LittleEndian, cfg.Cost); err != nil {
		return "", fmt.Errorf("sweep: hashing cost model: %w", err)
	}

	w.i(cfg.TLB.L1Entries4k)
	w.i(cfg.TLB.L1Entries64k)
	w.i(cfg.TLB.L1Entries2M)
	w.i(cfg.TLB.L2Entries)

	w.b(cfg.Verify)
	w.u64(uint64(cfg.TickInterval))
	w.b(cfg.NoWarmup)
	w.u64(uint64(cfg.PSPTRebuildPeriod))
	// Hist never changes counters or finish times, but it does change
	// the journaled Run payload (histograms present or absent), so a
	// Hist sweep must not be satisfied by a histogram-less journal entry
	// — it keys separately.
	w.b(cfg.Hist)

	if cfg.Faults != nil {
		w.b(true)
		w.u64(cfg.Faults.Seed)
		for k := 0; k < fault.NumKinds; k++ {
			w.f64(cfg.Faults.Rates[k])
		}
		w.i(cfg.Faults.MaxRetries)
	} else {
		w.b(false)
	}

	// Topology changes costs and counters, so it must key separately —
	// but it is hashed only when present (the registered-factory-name
	// pattern above), so every flat config's key is unchanged and
	// pre-topology journals keep satisfying flat sweeps.
	if topo := cfg.Topology; topo != nil {
		w.str("topology")
		w.i(topo.Sockets)
		w.i(topo.CoresPerSocket)
		w.u64(uint64(topo.CrossSocketIPI))
		w.u64(uint64(topo.RemoteWalkExtra))
		w.u64(uint64(topo.ReplicaSync))
		w.u64(uint64(topo.MigrateCost))
		w.i(topo.MigrateThreshold)
	}

	return fmt.Sprintf("%016x", w.h.Sum64()), nil
}

// ShardOf assigns a key to one of n shards: an independent hash of the
// key string, modulo n. The grid's keys spread uniformly, so n CI jobs
// each running ShardOf(key)==i split one sweep evenly with no
// coordination — the assignment is a pure function of (key, n).
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	io.WriteString(h, key)
	return int(h.Sum32() % uint32(n))
}

// hasher accumulates fixed-width field encodings into a 64-bit FNV.
type hasher struct{ h hash.Hash64 }

func (w hasher) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.h.Write(b[:])
}

func (w hasher) i(v int)       { w.u64(uint64(int64(v))) }
func (w hasher) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w hasher) b(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w hasher) str(s string) {
	w.u64(uint64(len(s)))
	io.WriteString(w.h, s)
}
