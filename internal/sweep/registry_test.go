package sweep

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cmcp/internal/machine"
	"cmcp/internal/policy"
)

// Top-level factory functions: closures defined at one source location
// share a code pointer, so registry tests need genuinely distinct
// functions.
func regTestFIFO(policy.Host) policy.Policy  { return policy.NewFIFO() }
func regTestFIFO2(policy.Host) policy.Policy { return policy.NewFIFO() }
func regTestFIFO3(policy.Host) policy.Policy { return policy.NewFIFO() }

// TestRegisteredFactoryGetsStableKey pins the registry satellite: a
// registered custom factory keys deterministically, keys differently
// from the built-in config it otherwise matches, and an unregistered
// factory is still rejected with the original error.
func TestRegisteredFactoryGetsStableKey(t *testing.T) {
	RegisterPolicy("reg-test-fifo", regTestFIFO)

	c := testCfg(1)
	c.Policy = machine.PolicySpec{Factory: regTestFIFO}
	k1, err := Key(c)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(c)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("registered factory keys nondeterministically: %s vs %s", k1, k2)
	}

	// The registered name is part of the identity: the same config with
	// no factory (built-in kind) must key differently, or a custom-policy
	// journal entry could satisfy a built-in sweep.
	builtin, err := Key(testCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if k1 == builtin {
		t.Fatal("registered-factory key collides with the built-in config's key")
	}

	// Unregistered factories still cannot be content-addressed.
	c.Policy = machine.PolicySpec{Factory: func(policy.Host) policy.Policy { return policy.NewFIFO() }}
	if _, err := Key(c); err == nil || !strings.Contains(err.Error(), "RegisterPolicy") {
		t.Fatalf("err = %v, want unregistered-factory rejection", err)
	}
}

// TestRegisteredFactorySweepResumes runs a registered-factory config
// through the full journal cycle: execute once, resume from journal.
func TestRegisteredFactorySweepResumes(t *testing.T) {
	RegisterPolicy("reg-test-fifo-sweep", regTestFIFO2)
	c := testCfg(3)
	c.Policy = machine.PolicySpec{Factory: regTestFIFO2}

	j := filepath.Join(t.TempDir(), "factory.jsonl")
	first, err := Run([]machine.Config{c}, Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != 1 {
		t.Fatalf("Executed = %d, want 1", first.Executed)
	}
	again, err := Run([]machine.Config{c}, Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if again.Executed != 0 || again.Loaded != 1 {
		t.Fatalf("resume executed %d, loaded %d, want 0 and 1", again.Executed, again.Loaded)
	}
	// DeepEqual treats non-nil func values as never equal, so compare
	// with the Config (which carries the factory) zeroed; both sides
	// hold the same submitted Config by construction anyway.
	a, b := *first.Results[0], *again.Results[0]
	a.Config, b.Config = machine.Config{}, machine.Config{}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("journal-resumed factory run differs")
	}
}

// TestRegisterPolicyRefusesDuplicates pins the registration guards.
func TestRegisterPolicyRefusesDuplicates(t *testing.T) {
	RegisterPolicy("reg-test-dup", regTestFIFO3)

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("dup name", func() { RegisterPolicy("reg-test-dup", func(policy.Host) policy.Policy { return policy.NewFIFO() }) })
	expectPanic("dup factory", func() { RegisterPolicy("reg-test-dup-2", regTestFIFO3) })
	expectPanic("empty name", func() { RegisterPolicy("", func(policy.Host) policy.Policy { return policy.NewFIFO() }) })
	expectPanic("nil factory", func() { RegisterPolicy("reg-test-nil", nil) })

	// Round trips.
	if f, ok := RegisteredPolicy("reg-test-dup"); !ok || f == nil {
		t.Error("RegisteredPolicy lost the registration")
	}
	if name, ok := RegisteredPolicyName(regTestFIFO3); !ok || name != "reg-test-dup" {
		t.Errorf("RegisteredPolicyName = %q, %v; want reg-test-dup, true", name, ok)
	}
	if _, ok := RegisteredPolicy("reg-test-unknown"); ok {
		t.Error("unknown name resolved")
	}
}
