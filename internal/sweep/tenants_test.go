package sweep

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"cmcp/internal/machine"
	"cmcp/internal/stats"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// tenantCfg is a small multi-tenant grid point.
func tenantCfg(seed uint64) machine.Config {
	spec := workload.DefaultTenantSpec(8, 1.2, 100)
	return machine.Config{
		Cores:       2,
		Tenants:     &spec,
		MemoryRatio: 0.5,
		Tables:      vm.PSPTKind,
		Policy:      machine.PolicySpec{Kind: machine.FIFO, P: -1},
		Seed:        seed,
	}
}

// TestKeyTenantSensitive extends the key-sensitivity property to the
// tenant spec: presence and every field must perturb the content key,
// so pre-tenant journal entries can never satisfy a tenant sweep.
func TestKeyTenantSensitive(t *testing.T) {
	bare := testCfg(1)
	bareKey, err := Key(bare)
	if err != nil {
		t.Fatal(err)
	}
	base := tenantCfg(1)
	base.Workload = workload.Spec{} // Tenants and Workload are exclusive
	baseKey, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	if baseKey == bareKey {
		t.Fatal("tenant config keys like a single-tenant one")
	}
	mutations := map[string]func(*workload.TenantSpec){
		"tenants":   func(s *workload.TenantSpec) { s.Tenants++ },
		"pages":     func(s *workload.TenantSpec) { s.PagesPerTenant++ },
		"touches":   func(s *workload.TenantSpec) { s.TotalTouches += 7 },
		"writefrac": func(s *workload.TenantSpec) { s.WriteFrac = 0.5 },
		"zipf":      func(s *workload.TenantSpec) { s.ZipfS = 0.9 },
		"pageskew":  func(s *workload.TenantSpec) { s.PageSkew = 3 },
		"burst":     func(s *workload.TenantSpec) { s.Burst = 4 },
		"churn":     func(s *workload.TenantSpec) { s.ChurnEvery = 500 },
		"stride":    func(s *workload.TenantSpec) { s.ChurnStride = 3 },
		"diurnal":   func(s *workload.TenantSpec) { s.DiurnalEvery = 900 },
		"weights":   func(s *workload.TenantSpec) { s.Weights = []float64{1, 1, 1, 1, 2, 2, 2, 2} },
		"hard":      func(s *workload.TenantSpec) { s.HardPartition = true },
	}
	seen := map[string]string{baseKey: "base", bareKey: "bare"}
	for name, mutate := range mutations {
		c := base
		spec := *base.Tenants
		mutate(&spec)
		c.Tenants = &spec
		k, err := Key(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestTenantRepeatsPoolAndResume runs a multi-tenant grid point under
// Repeats=2 with a journal: tenant counters must average while the
// per-tenant fault histograms pool, and a resumed sweep (all replicates
// loaded from the journal) must reproduce the merged record
// bit-identically without executing anything.
func TestTenantRepeatsPoolAndResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "tenants.jsonl")
	cfgs := []machine.Config{tenantCfg(1)}
	opts := Options{Parallelism: 2, Repeats: 2, Journal: journal}

	out, err := Run(cfgs, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := out.Results[0]
	ts := res.Run.Tenants
	if ts == nil {
		t.Fatal("merged result lost its tenant record")
	}

	// Reproduce the expected merge by hand from the two replicates.
	var reps []*machine.Result
	for s := uint64(1); s <= 2; s++ {
		c := tenantCfg(s)
		r, err := machine.Simulate(c)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r)
	}
	for tn := 0; tn < ts.Tenants(); tn++ {
		for c := 0; c < stats.NumTenantCounters; c++ {
			tc := stats.TenantCounter(c)
			want := (reps[0].Run.Tenants.Get(tn, tc) + reps[1].Run.Tenants.Get(tn, tc)) / 2
			if got := ts.Get(tn, tc); got != want {
				t.Errorf("tenant %d %s = %d, want averaged %d", tn, tc, got, want)
			}
		}
		wantSamples := reps[0].Run.Tenants.FaultHist(tn).Count + reps[1].Run.Tenants.FaultHist(tn).Count
		if got := ts.FaultHist(tn).Count; got != wantSamples {
			t.Errorf("tenant %d fault hist has %d samples, want pooled %d", tn, got, wantSamples)
		}
	}

	// Resume: every replicate is journaled, so the re-run executes zero
	// simulations and must merge to the identical record.
	resumed, err := Run(cfgs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 0 {
		t.Errorf("resume executed %d runs, want 0", resumed.Executed)
	}
	a, err := json.Marshal(res.Run)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(resumed.Results[0].Run)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("resumed tenant record differs from the executed one")
	}
}
