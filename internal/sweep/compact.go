package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"cmcp/internal/stats"
)

// Compact deduplicates a journal's entries — keeping the LAST entry
// recorded for each content key, the same precedence the lenient
// loader applies — and returns them sorted by key. Runs are
// deterministic, so duplicates (retries, duplicate-result races,
// merged shards, coordinator restarts) agree in content; sorting makes
// the compacted form canonical: two journals that witnessed the same
// set of completed runs compact to byte-identical output no matter
// what order, or how many times, each run was recorded. That canonical
// form is what the chaos CI job cmp's against a serial reference.
func Compact(entries []Entry) []Entry {
	last := make(map[string]Entry, len(entries))
	for _, e := range entries {
		last[e.Key] = e
	}
	keys := make([]string, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		out = append(out, last[k])
	}
	return out
}

// CompactStats reports what a journal compaction did.
type CompactStats struct {
	// Kept is the number of unique content keys written out.
	Kept int
	// Dropped is the number of duplicate entries removed.
	Dropped int
	// Skipped is the number of malformed lines the lenient reader
	// discarded (e.g. the torn tail of a crashed sweep).
	Skipped int
}

// CompactJournal rewrites the JSONL journal at path keeping only the
// last entry per content key, sorted by key (see Compact). The rewrite
// is atomic — written to a temp file, fsynced, renamed over the
// destination — so a crash mid-compaction leaves the original journal
// intact. out selects a different destination ("" compacts in place);
// the source is never modified when out is set. A compacted journal
// replays bit-identically: the loader keys entries by content key, so
// dropping shadowed duplicates cannot change any merge.
func CompactJournal(path, out string) (CompactStats, error) {
	entries, skipped, err := readJournalFile(path)
	if err != nil {
		return CompactStats{}, err
	}
	if _, err := os.Stat(path); err != nil {
		// readJournalFile treats a missing file as empty; compacting
		// nothing into existence would be surprising, so say so.
		return CompactStats{}, fmt.Errorf("sweep: compact %s: %w", path, err)
	}
	compacted := Compact(entries)
	st := CompactStats{Kept: len(compacted), Dropped: len(entries) - len(compacted), Skipped: skipped}
	if out == "" {
		out = path
	}
	data, err := encodeJournal(compacted)
	if err != nil {
		return CompactStats{}, err
	}
	if err := writeFileAtomic(out, data); err != nil {
		return CompactStats{}, fmt.Errorf("sweep: compact %s: %w", path, err)
	}
	return st, nil
}

// encodeJournal renders a complete JSONL journal (header + entries).
func encodeJournal(entries []Entry) ([]byte, error) {
	var buf []byte
	hdr, err := json.Marshal(header{Schema: Schema, Counters: stats.CounterNames(), Hists: stats.HistNames()})
	if err != nil {
		return nil, err
	}
	buf = append(buf, hdr...)
	buf = append(buf, '\n')
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return buf, nil
}
