package sweep

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCompactJournalReplaysBitIdentical pins the compaction satellite:
// a journal bloated with duplicate entries and a torn tail compacts to
// last-entry-per-key, and a sweep resumed from the compacted journal
// merges bit-identically while executing nothing.
func TestCompactJournalReplaysBitIdentical(t *testing.T) {
	cfgs := grid()
	ref, err := Run(cfgs, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	j := filepath.Join(t.TempDir(), "fat.jsonl")
	if _, err := Run(cfgs, Options{Journal: j, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}

	// Bloat the journal: duplicate every entry line (a retried shard or
	// duplicate-result race does exactly this) and tear the tail.
	data, err := os.ReadFile(j)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(data)
	f, err := os.OpenFile(j, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range lines[1:] { // skip header
		f.WriteString(line + "\n")
	}
	f.WriteString(`{"key":"dead`)
	f.Close()

	st, err := CompactJournal(j, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != len(cfgs) || st.Dropped != len(cfgs) || st.Skipped != 1 {
		t.Fatalf("CompactStats = %+v, want Kept=%d Dropped=%d Skipped=1", st, len(cfgs), len(cfgs))
	}

	out, err := Run(cfgs, Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if out.Executed != 0 || out.Loaded != len(cfgs) {
		t.Fatalf("compacted resume executed %d, loaded %d, want 0 and %d", out.Executed, out.Loaded, len(cfgs))
	}
	if !reflect.DeepEqual(out.Results, ref.Results) {
		t.Fatal("compacted journal replay differs from uninterrupted sweep")
	}
}

// TestCompactCanonical pins the property the chaos CI job relies on:
// two journals that witnessed the same completed runs — in different
// orders, with different duplication — compact to byte-identical
// files. Compaction is the canonicalizer that makes `cmp` meaningful.
func TestCompactCanonical(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	if _, err := Run(grid(), Options{Journal: a, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}

	// Journal B: same entries, reversed, with one duplicated.
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(data)
	b := filepath.Join(dir, "b.jsonl")
	bf, err := os.Create(b)
	if err != nil {
		t.Fatal(err)
	}
	bf.WriteString(lines[0] + "\n") // header
	for i := len(lines) - 1; i >= 1; i-- {
		bf.WriteString(lines[i] + "\n")
	}
	bf.WriteString(lines[1] + "\n")
	bf.Close()

	ca := filepath.Join(dir, "a.compact")
	cb := filepath.Join(dir, "b.compact")
	if _, err := CompactJournal(a, ca); err != nil {
		t.Fatal(err)
	}
	if _, err := CompactJournal(b, cb); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(ca)
	db, _ := os.ReadFile(cb)
	if string(da) != string(db) {
		t.Fatal("same run set, different compacted bytes")
	}

	// The source of an out-of-place compaction must be untouched.
	after, _ := os.ReadFile(a)
	if string(after) != string(data) {
		t.Fatal("CompactJournal with out set modified its source")
	}
}

// TestCompactJournalMissingSource: compacting nothing must not conjure
// an empty journal into existence.
func TestCompactJournalMissingSource(t *testing.T) {
	if _, err := CompactJournal(filepath.Join(t.TempDir(), "absent.jsonl"), ""); err == nil {
		t.Fatal("compacting a missing journal succeeded")
	}
}

func splitLines(data []byte) []string {
	var lines []string
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	return lines
}
