package sweep

import (
	"fmt"
	"reflect"
	"sync"

	"cmcp/internal/vm"
)

// The policy registry gives custom replacement policies a stable
// cross-process identity. A bare Policy.Factory is a function value:
// it has no name that survives serialization, so the content key —
// and with it journaling, sharding and coordinator leasing — used to
// reject custom-policy configs outright. Registering the factory under
// a name fixes that: the key hashes the registered name (plus the rest
// of the config as usual), and the coordinator wire format ships the
// name so a worker process resolves the same factory from its own
// registry. Unregistered factories still error, exactly as before —
// an unnameable function cannot be content-addressed.
//
// Names are part of the experiment's identity: re-registering a
// DIFFERENT factory under an old name would silently let stale journal
// entries satisfy a new sweep. Registration therefore refuses name
// reuse (and refuses registering one factory function under two names,
// which would make the reverse lookup ambiguous).
var (
	regMu     sync.RWMutex
	regByName = map[string]vm.PolicyFactory{}
	regByPtr  = map[uintptr]string{}
)

// RegisterPolicy registers a custom policy factory under a stable
// name, giving configs that carry it a deterministic content key. Call
// it once per factory, typically from an init function or test setup;
// worker processes must register the same name before decoding leased
// configs that use it.
//
// RegisterPolicy panics on a duplicate name, on a factory already
// registered under another name, and on two distinct closures sharing
// one code pointer (Go closures from the same source location are
// indistinguishable at runtime, so only one may be registered —
// wrap variants in distinct top-level functions instead).
func RegisterPolicy(name string, factory vm.PolicyFactory) {
	if name == "" || factory == nil {
		panic("sweep: RegisterPolicy needs a non-empty name and a non-nil factory")
	}
	ptr := reflect.ValueOf(factory).Pointer()
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[name]; dup {
		panic(fmt.Sprintf("sweep: policy name %q already registered", name))
	}
	if prev, dup := regByPtr[ptr]; dup {
		panic(fmt.Sprintf("sweep: policy factory already registered as %q (distinct closures from one source location share a code pointer; use distinct top-level functions)", prev))
	}
	regByName[name] = factory
	regByPtr[ptr] = name
}

// RegisteredPolicy resolves a registered name back to its factory —
// how a worker process rebuilds a leased custom-policy config.
func RegisteredPolicy(name string) (vm.PolicyFactory, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := regByName[name]
	return f, ok
}

// RegisteredPolicyName reverse-resolves a factory to its registered
// name; ok is false for unregistered factories.
func RegisteredPolicyName(factory vm.PolicyFactory) (string, bool) {
	if factory == nil {
		return "", false
	}
	regMu.RLock()
	defer regMu.RUnlock()
	name, ok := regByPtr[reflect.ValueOf(factory).Pointer()]
	return name, ok
}
