package sweep

import (
	"sort"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
)

// RuntimesByKey reads the journal at path and returns each content
// key's recorded simulated runtime — the longest-first scheduler's
// input. Simulated cycles are used (not wall time, which a journal
// deliberately never records: wall clocks are nondeterministic and
// would break byte-identity) because on one engine simulated runtime
// is a faithful, deterministic proxy for execution cost. A missing
// file is an empty map: scheduling hints are best-effort.
func RuntimesByKey(path string) (map[string]sim.Cycles, error) {
	entries, _, err := readJournalFile(path)
	if err != nil {
		return nil, err
	}
	m := make(map[string]sim.Cycles, len(entries))
	for _, e := range entries {
		m[e.Key] = e.Runtime
	}
	return m, nil
}

// OrderLongestFirst reorders keys and cfgs (kept aligned) so that runs
// with known runtimes come first, longest first — the classic LPT
// heuristic that stops one straggler from serializing the tail of a
// parallel sweep. Runs with no recorded runtime keep their original
// relative order after the known ones; ties keep original order too
// (the sort is stable), so the ordering is fully deterministic.
func OrderLongestFirst(keys []string, cfgs []machine.Config, runtimes map[string]sim.Cycles) {
	if len(runtimes) == 0 || len(keys) < 2 {
		return
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	known := func(i int) (sim.Cycles, bool) { c, ok := runtimes[keys[i]]; return c, ok }
	sort.SliceStable(idx, func(a, b int) bool {
		ca, oka := known(idx[a])
		cb, okb := known(idx[b])
		if oka != okb {
			return oka // known runtimes first
		}
		if !oka {
			return false // both unknown: keep original order
		}
		return ca > cb // longest first
	})
	outK := make([]string, len(keys))
	outC := make([]machine.Config, len(cfgs))
	for to, from := range idx {
		outK[to] = keys[from]
		outC[to] = cfgs[from]
	}
	copy(keys, outK)
	copy(cfgs, outC)
}
