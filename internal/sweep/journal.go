package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"cmcp/internal/machine"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
)

// Schema identifies the journal file format. A journal opens with one
// header line carrying the schema and the counter- and histogram-name
// tables in force when it was written; every later line is one
// completed run. v2 added the histogram table (and histogram payloads
// inside Run records); v3 added multi-tenant machines (per-tenant
// records inside Run, tenant fields in the content key); v4 added the
// NUMA topology (new counters and a histogram in Run, topology fields
// in the content key). Stale schemas are rejected: their runs predate
// fields the keys now select.
const Schema = "cmcp-sweep/v4"

// staleSchemas are schemas this build once wrote and now refuses, so
// the rejection can say "outdated" rather than "not a journal".
var staleSchemas = map[string]bool{
	"cmcp-sweep/v1": true,
	"cmcp-sweep/v2": true,
	"cmcp-sweep/v3": true,
}

// header is the journal's first line.
type header struct {
	Schema   string   `json:"schema"`
	Counters []string `json:"counters"`
	Hists    []string `json:"hists"`
}

// Entry is one journaled completed run: the run's content key, enough
// human-readable identity to grep a journal by hand, and the full
// Result payload needed to merge bit-identically with live runs.
type Entry struct {
	Key         string     `json:"key"`
	Policy      string     `json:"policy"`
	Workload    string     `json:"workload"`
	Cores       int        `json:"cores"`
	Seed        uint64     `json:"seed"`
	Runtime     sim.Cycles `json:"runtime"`
	Frames      int        `json:"frames"`
	TotalPages  int        `json:"total_pages"`
	Resident    int        `json:"resident"`
	Quarantined int        `json:"quarantined"`
	Sharing     []int      `json:"sharing,omitempty"`
	Run         *stats.Run `json:"run"`
}

// EntryOf snapshots a completed run for the journal. Exported so the
// coordinator (and any other Backend client) journals results through
// the exact encoding the sweep runner uses — the precondition for
// merged journals being byte-comparable after compaction.
func EntryOf(key string, cfg machine.Config, res *machine.Result) Entry {
	return Entry{
		Key:         key,
		Policy:      res.PolicyName,
		Workload:    cfg.Workload.Name,
		Cores:       cfg.Cores,
		Seed:        cfg.Seed,
		Runtime:     res.Runtime,
		Frames:      res.Frames,
		TotalPages:  res.TotalPages,
		Resident:    res.Resident,
		Quarantined: res.Quarantined,
		Sharing:     res.Sharing,
		Run:         res.Run,
	}
}

// Result rebuilds the machine.Result a journaled entry stands for. The
// Config is supplied by the caller (the sweep regenerates its grid, so
// the entry need not serialize it); everything else round-trips from
// the entry losslessly.
func (e Entry) Result(cfg machine.Config) *machine.Result {
	return &machine.Result{
		Config:      cfg,
		Run:         e.Run,
		Runtime:     e.Runtime,
		Frames:      e.Frames,
		TotalPages:  e.TotalPages,
		Sharing:     e.Sharing,
		Resident:    e.Resident,
		PolicyName:  e.Policy,
		Quarantined: e.Quarantined,
	}
}

// ReadJournalLenient reads a sweep journal, skipping malformed lines
// and reporting how many were dropped — the same contract as the trace
// layer's ReadTraceJSONLLenient, and for the same reason: the journal
// of a crashed sweep legitimately ends in a torn, half-written line,
// and that line must cost one re-run, not the whole file.
//
// The header is NOT lenient: an empty reader yields no entries, but a
// journal whose first line is missing, malformed, or was written under
// a different schema or counter set is rejected outright. Silently
// merging counters recorded under a different table would misattribute
// every column.
func ReadJournalLenient(r io.Reader) (entries []Entry, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, 0, err
		}
		return nil, 0, nil // empty journal: fresh sweep
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Schema != Schema {
		if err == nil && staleSchemas[h.Schema] {
			return nil, 0, fmt.Errorf("sweep: journal schema %q is outdated; this build writes %q (the content key and Run payload have since grown fields — tenants in v3, NUMA topology in v4 — so older entries can never satisfy current sweeps) — start a fresh journal", h.Schema, Schema)
		}
		return nil, 0, fmt.Errorf("sweep: journal header missing or not %q (corrupt first line, or not a sweep journal)", Schema)
	}
	if want := stats.CounterNames(); !equalStrings(h.Counters, want) {
		return nil, 0, fmt.Errorf("sweep: journal counter set %v does not match this build's %v; re-run the sweep with a fresh journal", h.Counters, want)
	}
	if want := stats.HistNames(); !equalStrings(h.Hists, want) {
		return nil, 0, fmt.Errorf("sweep: journal histogram set %v does not match this build's %v; re-run the sweep with a fresh journal", h.Hists, want)
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" || e.Run == nil || e.Run.Cores != e.Cores {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, err
	}
	return entries, skipped, nil
}

// readJournalFile loads one journal from disk; a missing file is an
// empty journal.
func readJournalFile(path string) ([]Entry, int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	entries, skipped, err := ReadJournalLenient(f)
	if err != nil {
		return nil, skipped, fmt.Errorf("sweep: reading journal %s: %w", path, err)
	}
	return entries, skipped, nil
}

// journalWriter appends entries to a journal file, one flushed line per
// completed run, so a kill at any instant loses at most the line being
// written (which the lenient reader then skips). Safe for concurrent
// use: RunMany workers journal from their own goroutines.
type journalWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openJournal opens path for appending, writing the header line first
// if the file is new or empty. The caller has already validated an
// existing file's header via readJournalFile.
func openJournal(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	jw := &journalWriter{f: f, w: bufio.NewWriter(f)}
	if st.Size() == 0 {
		data, err := json.Marshal(header{Schema: Schema, Counters: stats.CounterNames(), Hists: stats.HistNames()})
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := jw.writeLine(data); err != nil {
			f.Close()
			return nil, err
		}
		return jw, nil
	}
	// A journal killed mid-write ends in a torn, unterminated line. New
	// entries must start on a fresh line, or the first append glues
	// itself onto the torn tail and both are lost to the lenient reader.
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil {
		f.Close()
		return nil, err
	}
	if last[0] != '\n' {
		if err := jw.writeLine(nil); err != nil {
			f.Close()
			return nil, err
		}
	}
	return jw, nil
}

// append journals one completed run.
func (jw *journalWriter) append(e Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return jw.writeLine(data)
}

func (jw *journalWriter) writeLine(data []byte) error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if _, err := jw.w.Write(data); err != nil {
		return err
	}
	if err := jw.w.WriteByte('\n'); err != nil {
		return err
	}
	return jw.w.Flush() // durable per line: that is the checkpoint
}

func (jw *journalWriter) close() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if err := jw.w.Flush(); err != nil {
		jw.f.Close()
		return err
	}
	return jw.f.Close()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
