package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cmcp/internal/stats"
)

// Backend is the journal persistence interface: where a sweep's
// completed runs durably live. The sweep runner (and the coordinator
// built on it) speaks only this interface, so the storage substrate —
// a single JSONL file, an in-memory store for tests, a directory tree
// of per-key files — is swappable without touching recovery logic.
//
// The contract every implementation honors:
//
//   - Append is durable on return: a process killed the instant after
//     Append returns finds the entry on the next Load. That per-entry
//     durability is the checkpoint crash recovery rebuilds from.
//   - Append is safe for concurrent use (RunMany workers and the
//     coordinator's HTTP handlers journal from their own goroutines).
//   - Load tolerates a torn final write (a kill mid-Append): the torn
//     entry is skipped and counted, never fatal, and never corrupts
//     its neighbors.
//   - Load validates provenance: entries recorded under a different
//     schema or counter table are rejected outright, exactly like the
//     JSONL header check.
//   - A Backend survives Load/Append/Close cycles: Close flushes and
//     releases resources, after which Append may transparently reopen.
type Backend interface {
	// Load returns every readable journaled entry plus the count of
	// malformed (torn, truncated) entries it skipped.
	Load() ([]Entry, int, error)
	// Append durably records one completed run.
	Append(Entry) error
	// Close flushes and releases resources. The Backend remains usable;
	// a later Append reopens as needed.
	Close() error
}

// FileBackend journals to a single append-mode JSONL file — the
// default substrate (sweep.Options.Journal), durable per line.
type FileBackend struct {
	path string
	mu   sync.Mutex
	jw   *journalWriter
}

// NewFileBackend returns a backend journaling to the JSONL file at
// path. The file is created on first Append; a missing file loads as
// an empty journal.
func NewFileBackend(path string) *FileBackend { return &FileBackend{path: path} }

// Load reads the journal file leniently (see ReadJournalLenient).
func (b *FileBackend) Load() ([]Entry, int, error) { return readJournalFile(b.path) }

// Append writes one entry as a flushed JSONL line.
func (b *FileBackend) Append(e Entry) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.jw == nil {
		jw, err := openJournal(b.path)
		if err != nil {
			return fmt.Errorf("sweep: journal %s: %w", b.path, err)
		}
		b.jw = jw
	}
	if err := b.jw.append(e); err != nil {
		return fmt.Errorf("sweep: journal %s: %w", b.path, err)
	}
	return nil
}

// Close flushes and closes the underlying file (reopened on the next
// Append).
func (b *FileBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.jw == nil {
		return nil
	}
	err := b.jw.close()
	b.jw = nil
	return err
}

// MemBackend journals to process memory — the test and library-embed
// substrate. Entries round-trip through the same JSON encoding as the
// file backends, so a MemBackend-run sweep exercises the identical
// serialization path (and the identical lenient-read semantics) as a
// crash-recovered file journal, just without the disk.
type MemBackend struct {
	mu    sync.Mutex
	lines [][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// Load decodes every stored entry, skipping (and counting) any line
// that does not decode — mirroring the lenient file reader.
func (b *MemBackend) Load() ([]Entry, int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var entries []Entry
	skipped := 0
	for _, line := range b.lines {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" || e.Run == nil || e.Run.Cores != e.Cores {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped, nil
}

// Append stores one entry (as its JSON encoding).
func (b *MemBackend) Append(e Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.lines = append(b.lines, data)
	b.mu.Unlock()
	return nil
}

// Close is a no-op; memory needs no flushing.
func (b *MemBackend) Close() error { return nil }

// dirHeaderFile is the provenance record of a DirBackend tree.
const dirHeaderFile = "header.json"

// dirTmpPrefix marks in-flight entry writes; Load ignores them, so a
// kill mid-write leaves a stray temp file, never a torn entry.
const dirTmpPrefix = ".tmp-"

// DirBackend journals to a directory tree: one JSON file per content
// key at <dir>/<key[:2]>/<key>.json plus a header.json provenance
// record, each entry written to a temp file, fsynced, atomically
// renamed into place, and the containing directory fsynced. A kill at
// any instant therefore leaves either the complete previous state or
// the complete new state — there is no torn-line case at all, only
// ignorable temp files. Because rename is atomic and entries are
// deterministic, multiple processes may even share one tree: duplicate
// writers race to install byte-identical files.
//
// The two-character fan-out keeps any one directory small on large
// grids (the keys are uniform hex, so ≤256 subdirectories share the
// load evenly).
type DirBackend struct {
	dir string
	mu  sync.Mutex
	// headerOK memoizes header validation so Append pays the check once
	// per process, not once per entry.
	headerOK bool
}

// NewDirBackend returns a backend journaling into the directory tree
// rooted at dir (created on first Append).
func NewDirBackend(dir string) *DirBackend { return &DirBackend{dir: dir} }

// ensureHeader creates dir and installs or validates header.json.
func (b *DirBackend) ensureHeader() error {
	if b.headerOK {
		return nil
	}
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(b.dir, dirHeaderFile)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := validateHeader(data); err != nil {
			return fmt.Errorf("sweep: journal dir %s: %w", b.dir, err)
		}
	case os.IsNotExist(err):
		hdr, err := json.Marshal(header{Schema: Schema, Counters: stats.CounterNames(), Hists: stats.HistNames()})
		if err != nil {
			return err
		}
		if err := writeFileAtomic(path, hdr); err != nil {
			return err
		}
	default:
		return err
	}
	b.headerOK = true
	return nil
}

// Append durably installs one entry file.
func (b *DirBackend) Append(e Entry) error {
	b.mu.Lock()
	err := b.ensureHeader()
	b.mu.Unlock()
	if err != nil {
		return err
	}
	if len(e.Key) < 2 {
		return fmt.Errorf("sweep: journal dir %s: entry key %q too short", b.dir, e.Key)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	sub := filepath.Join(b.dir, e.Key[:2])
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(sub, e.Key+".json"), data)
}

// Load reads every entry file under the tree, skipping (and counting)
// any that fails to decode. Temp files from interrupted writes are
// ignored entirely. A tree with entries but no readable header is
// rejected — provenance is not optional.
func (b *DirBackend) Load() ([]Entry, int, error) {
	hdrData, err := os.ReadFile(filepath.Join(b.dir, dirHeaderFile))
	if err != nil {
		if os.IsNotExist(err) {
			// Fresh (or absent) tree: an empty journal — unless entry
			// files exist headerless, which means foreign or mutilated
			// provenance and must not be silently merged.
			if n, _ := b.countEntryFiles(); n > 0 {
				return nil, 0, fmt.Errorf("sweep: journal dir %s has entries but no %s; refusing to merge unattributed results", b.dir, dirHeaderFile)
			}
			return nil, 0, nil
		}
		return nil, 0, err
	}
	if err := validateHeader(hdrData); err != nil {
		return nil, 0, fmt.Errorf("sweep: journal dir %s: %w", b.dir, err)
	}
	var entries []Entry
	skipped := 0
	for _, path := range b.entryFiles() {
		data, err := os.ReadFile(path)
		if err != nil {
			skipped++
			continue
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil || e.Key == "" || e.Run == nil || e.Run.Cores != e.Cores {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped, nil
}

// Close is a no-op: every Append already fsynced its way to disk.
func (b *DirBackend) Close() error { return nil }

// entryFiles returns every installed entry file in deterministic
// (sorted) order, temp files excluded.
func (b *DirBackend) entryFiles() []string {
	subs, err := os.ReadDir(b.dir)
	if err != nil {
		return nil
	}
	var files []string
	for _, sub := range subs {
		if !sub.IsDir() {
			continue
		}
		ents, err := os.ReadDir(filepath.Join(b.dir, sub.Name()))
		if err != nil {
			continue
		}
		for _, ent := range ents {
			name := ent.Name()
			if ent.IsDir() || strings.HasPrefix(name, dirTmpPrefix) || !strings.HasSuffix(name, ".json") {
				continue
			}
			files = append(files, filepath.Join(b.dir, sub.Name(), name))
		}
	}
	sort.Strings(files)
	return files
}

// countEntryFiles counts installed entry files (for the headerless
// check).
func (b *DirBackend) countEntryFiles() (int, error) {
	return len(b.entryFiles()), nil
}

// validateHeader applies the JSONL header checks to a standalone
// header document.
func validateHeader(data []byte) error {
	var h header
	if err := json.Unmarshal(bytes.TrimSpace(data), &h); err != nil || h.Schema != Schema {
		if err == nil && staleSchemas[h.Schema] {
			return fmt.Errorf("journal schema %q is outdated; this build writes %q — start a fresh journal", h.Schema, Schema)
		}
		return fmt.Errorf("journal header missing or not %q (corrupt, or not a sweep journal)", Schema)
	}
	if want := stats.CounterNames(); !equalStrings(h.Counters, want) {
		return fmt.Errorf("journal counter set %v does not match this build's %v; re-run the sweep with a fresh journal", h.Counters, want)
	}
	if want := stats.HistNames(); !equalStrings(h.Hists, want) {
		return fmt.Errorf("journal histogram set %v does not match this build's %v; re-run the sweep with a fresh journal", h.Hists, want)
	}
	return nil
}

// writeFileAtomic installs data at path via temp file + fsync + rename
// + directory fsync: after it returns, the file is durable; if the
// process dies first, the old state (or absence) survives untouched.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, dirTmpPrefix+filepath.Base(path))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// fsync the directory so the rename itself survives a crash.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
