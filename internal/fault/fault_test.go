package fault

import "testing"

// TestDeterminism pins the injector's core guarantee: the same Config
// yields the same trip sequence, draw for draw.
func TestDeterminism(t *testing.T) {
	cfg := *Uniform(99, 0.3)
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 10_000; i++ {
		k := Kind(i % NumKinds)
		if a.Trip(k) != b.Trip(k) {
			t.Fatalf("draw %d (%v): injectors diverged", i, k)
		}
	}
	if a.TotalInjected() != b.TotalInjected() {
		t.Fatalf("injected totals diverged: %d vs %d", a.TotalInjected(), b.TotalInjected())
	}
	if a.TotalInjected() == 0 {
		t.Fatal("rate 0.3 over 10k draws tripped nothing")
	}
}

// TestZeroRateDrawsNothing: a zero-rate kind must not consume
// randomness, so enabling one kind cannot perturb another's sequence —
// and an all-zero injector behaves exactly like no injector.
func TestZeroRateDrawsNothing(t *testing.T) {
	var cfg Config
	cfg.Seed = 7
	in := NewInjector(cfg)
	for i := 0; i < 1000; i++ {
		for k := Kind(0); k < Kind(NumKinds); k++ {
			if in.Trip(k) {
				t.Fatalf("zero-rate kind %v tripped", k)
			}
		}
	}
	if in.TotalInjected() != 0 {
		t.Fatalf("injected %d with all rates zero", in.TotalInjected())
	}

	// One kind's sequence must not depend on the other kinds' rates.
	only := Config{Seed: 7}
	only.Rates[Corrupt] = 0.5
	all := *Uniform(7, 0.5)
	a, b := NewInjector(only), NewInjector(all)
	for i := 0; i < 5000; i++ {
		if a.Trip(Corrupt) != b.Trip(Corrupt) {
			t.Fatalf("draw %d: Corrupt stream perturbed by other kinds' rates", i)
		}
	}
}

// TestNilInjectorNeverTrips: the VM guards every site with a nil check,
// but Trip itself must also be nil-safe for helper paths.
func TestNilInjectorNeverTrips(t *testing.T) {
	var in *Injector
	if in.Trip(PageIn) {
		t.Fatal("nil injector tripped")
	}
}

// TestRateOneAlwaysTrips and the rate statistics sanity check.
func TestRates(t *testing.T) {
	in := NewInjector(*Uniform(3, 1))
	for i := 0; i < 100; i++ {
		if !in.Trip(DropAck) {
			t.Fatal("rate-1 kind failed to trip")
		}
	}
	if in.Injected(DropAck) != 100 {
		t.Fatalf("Injected(DropAck) = %d, want 100", in.Injected(DropAck))
	}

	in = NewInjector(Config{Seed: 11, Rates: [NumKinds]float64{PageIn: 0.01}})
	trips := 0
	const n = 200_000
	for i := 0; i < n; i++ {
		if in.Trip(PageIn) {
			trips++
		}
	}
	if trips < n/200 || trips > n/50 {
		t.Fatalf("rate 0.01 tripped %d of %d draws", trips, n)
	}
}

func TestConfigDefaults(t *testing.T) {
	if got := NewInjector(Config{}).MaxRetries(); got != DefaultMaxRetries {
		t.Fatalf("MaxRetries = %d, want default %d", got, DefaultMaxRetries)
	}
	if got := NewInjector(Config{MaxRetries: 3}).MaxRetries(); got != 3 {
		t.Fatalf("MaxRetries = %d, want 3", got)
	}
	u := Uniform(1, 0.25)
	for k, r := range u.Rates {
		if r != 0.25 {
			t.Fatalf("Uniform rate for %v = %v", Kind(k), r)
		}
	}
	for k := Kind(0); k < Kind(NumKinds); k++ {
		if k.String() == "" || k.String()[0] == 'k' {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
