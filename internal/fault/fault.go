// Package fault is the simulator's deterministic fault injector. It
// models the failure modes a real PCIe-attached hierarchical memory
// manager sees in production — transient transfer failures, frames
// that corrupt content in flight, lost TLB-shootdown acknowledgements,
// stuck page locks, and lost page-table bookkeeping — as seeded random
// trips the VM layer consults at each susceptible operation.
//
// An Injector is attached to one run via machine.Config.Faults (the
// same optional-pointer pattern as Config.Probe and Config.Audit).
// Every fault kind draws from its own RNG stream derived from the
// injector seed, so enabling or re-rating one kind never perturbs the
// trip sequence of another: the same seed and rates always produce the
// same faults at the same operations, which is what makes recovery
// behaviour golden-testable. A kind with rate zero never draws at all,
// so an attached injector with all rates zero leaves a run bit-identical
// to an uninjected one.
//
// Injectors are single-run, single-goroutine objects, matching the
// engine's one-Simulate-is-single-threaded contract: never share one
// Injector between concurrent Simulate calls (RunMany constructs one
// per run from the shared Config).
package fault

import (
	"fmt"

	"cmcp/internal/sim"
)

// Kind identifies one injectable fault class.
type Kind uint8

const (
	// PageIn is a transient host-to-device transfer failure: the whole
	// page-in attempt is lost and the fault handler rolls back and
	// retries with backoff. Drawn once per page-in attempt.
	PageIn Kind = iota
	// PageOut is a transient device-to-host write-back failure; the
	// evictor retries the transfer with backoff. Drawn per dirty
	// eviction.
	PageOut
	// Corrupt is a frame going bad during a transfer: the frame is
	// quarantined (permanently retired, shrinking device capacity) and
	// the page-in rolls back onto a fresh frame. Drawn per frame moved.
	Corrupt
	// DropAck is a lost remote-TLB-shootdown acknowledgement: the
	// initiator times out and re-sends the IPI. Drawn per remote target.
	DropAck
	// StuckLock is a page lock whose holder stalls (interrupt storm,
	// priority inversion): the acquirer waits out a timeout before the
	// lock resolves. Drawn per fault-path lock acquisition.
	StuckLock
	// MapSkew is lost PSPT bookkeeping: a mapping's core set gains a
	// phantom member with no backing PTE, the inconsistency the
	// invariant auditor repairs by degrading the page to regular-table
	// semantics. Drawn per PSPT minor fault.
	MapSkew

	numKinds
)

// NumKinds is the number of distinct fault kinds.
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	"page_in",
	"page_out",
	"corrupt",
	"drop_ack",
	"stuck_lock",
	"map_skew",
}

// String returns the snake_case kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// DefaultMaxRetries bounds transient-failure retries when
// Config.MaxRetries is zero. Exhausting it surfaces vm.ErrIOFailure.
const DefaultMaxRetries = 6

// Config parameterizes an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives every trip decision. Same seed + same rates on the
	// same Config ⇒ same faults at the same operations ⇒ identical
	// Results including recovery counters.
	Seed uint64
	// Rates holds the per-operation trip probability of each Kind in
	// [0, 1]. A kind with rate zero never draws from its RNG stream.
	Rates [NumKinds]float64
	// MaxRetries caps transient retries (page-in, page-out, shootdown
	// re-sends) before the operation fails the run; 0 = DefaultMaxRetries.
	MaxRetries int
}

// Uniform returns a Config tripping every fault kind at the same rate —
// the single-knob form the cmcpsim -fault-rate flag exposes.
func Uniform(seed uint64, rate float64) *Config {
	c := &Config{Seed: seed}
	for k := range c.Rates {
		c.Rates[k] = rate
	}
	return c
}

// Injector draws deterministic fault trips for one simulation run.
// Construct a fresh one per run with NewInjector.
type Injector struct {
	rates      [numKinds]float64
	rngs       [numKinds]*sim.RNG
	injected   [numKinds]uint64
	maxRetries int
}

// NewInjector builds a run-private injector from cfg. Each kind's RNG
// is derived independently from the seed, so rating one kind up or down
// leaves every other kind's trip sequence untouched.
func NewInjector(cfg Config) *Injector {
	in := &Injector{rates: cfg.Rates, maxRetries: cfg.MaxRetries}
	if in.maxRetries <= 0 {
		in.maxRetries = DefaultMaxRetries
	}
	for k := range in.rngs {
		// SplitMix64 seeding decorrelates the per-kind streams even for
		// adjacent derived seeds.
		in.rngs[k] = sim.NewRNG(cfg.Seed ^ (uint64(k)+1)*0x9e3779b97f4a7c15)
	}
	return in
}

// Trip reports whether fault kind k strikes the current operation. A
// zero-rate kind returns false without consuming randomness, keeping
// zero-rate runs bit-identical to uninjected ones.
func (in *Injector) Trip(k Kind) bool {
	if in == nil || in.rates[k] <= 0 {
		return false
	}
	if in.rngs[k].Float64() >= in.rates[k] {
		return false
	}
	in.injected[k]++
	return true
}

// MaxRetries returns the transient-retry cap.
func (in *Injector) MaxRetries() int { return in.maxRetries }

// Injected returns how many times kind k has tripped so far.
func (in *Injector) Injected(k Kind) uint64 { return in.injected[k] }

// TotalInjected returns the trip count summed over all kinds.
func (in *Injector) TotalInjected() uint64 {
	var t uint64
	for _, n := range in.injected {
		t += n
	}
	return t
}
