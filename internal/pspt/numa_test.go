package pspt

import (
	"testing"

	"cmcp/internal/pagetable"
	"cmcp/internal/sim"
)

func TestSocketSet(t *testing.T) {
	var s SocketSet
	if s.Count() != 0 || s.Has(0) {
		t.Fatal("zero set not empty")
	}
	s.Add(0)
	s.Add(3)
	s.Add(3)
	if s.Count() != 2 || !s.Has(0) || !s.Has(3) || s.Has(1) {
		t.Fatalf("set after adds: %b", s)
	}
}

// TestReplicasTrackSockets pins the replica bookkeeping: the first
// mapper homes the page-table page on its socket, later mappers from
// other sockets add replicas, and a rebuild drops replicas but keeps
// the home.
func TestReplicasTrackSockets(t *testing.T) {
	p := New(8)
	topo := sim.DefaultTopology(2, 4) // cores 0-3 socket 0, 4-7 socket 1
	p.SetTopology(topo)

	m, first, err := p.Map(5, 0, sim.Size4k, 7, pagetable.Writable)
	if err != nil || !first {
		t.Fatalf("Map: %v first=%v", err, first)
	}
	if m.Home != 1 || !m.Replicas.Has(1) || m.Replicas.Has(0) {
		t.Fatalf("first mapper on socket 1: home=%d replicas=%b", m.Home, m.Replicas)
	}
	if _, _, err := p.Map(2, 0, sim.Size4k, 7, pagetable.Writable); err != nil {
		t.Fatalf("second Map: %v", err)
	}
	if !m.Replicas.Has(0) || !m.Replicas.Has(1) || m.Home != 1 {
		t.Fatalf("after socket-0 mapper: home=%d replicas=%b", m.Home, m.Replicas)
	}

	cm, err := p.CopyFromSibling(3, 0, pagetable.Writable)
	if err != nil || cm != m {
		t.Fatalf("CopyFromSibling: %v", err)
	}
	if m.Replicas.Count() != 2 {
		t.Fatalf("replicas after sibling copy: %b", m.Replicas)
	}

	p.Rebuild(nil)
	if m.Replicas != 0 || m.RemoteStreak != 0 {
		t.Fatalf("rebuild did not clear replicas: %b streak=%d", m.Replicas, m.RemoteStreak)
	}
	if m.Home != 1 {
		t.Fatalf("rebuild moved home: %d", m.Home)
	}
}

// TestNoteConsultMigration pins the numaPTE migration protocol: a
// remote consult is reported only while the consulting socket lacks a
// replica, and a streak of consults from one remote socket past the
// threshold re-homes the page-table page there.
func TestNoteConsultMigration(t *testing.T) {
	p := New(8)
	topo := sim.DefaultTopology(2, 4)
	p.SetTopology(topo)
	if _, _, err := p.Map(0, 0, sim.Size4k, 7, pagetable.Writable); err != nil {
		t.Fatal(err)
	}
	m := p.Mapping(0)

	// Not resident: no-op.
	if r, mig := p.NoteConsult(999, 1, 3); r || mig {
		t.Fatal("consult on missing page reported work")
	}
	// First consult from socket 1: remote (no replica yet), streak 1.
	if r, mig := p.NoteConsult(0, 1, 3); !r || mig {
		t.Fatalf("first remote consult: remote=%v migrated=%v", r, mig)
	}
	if !m.Replicas.Has(1) {
		t.Fatal("consult did not materialize a replica")
	}
	// Second consult: replica exists, not remote; streak 2.
	if r, mig := p.NoteConsult(0, 1, 3); r || mig {
		t.Fatalf("second consult: remote=%v migrated=%v", r, mig)
	}
	// Third consult trips the threshold: migrate, re-home to socket 1.
	if r, mig := p.NoteConsult(0, 1, 3); r || !mig {
		t.Fatalf("third consult: remote=%v migrated=%v", r, mig)
	}
	if m.Home != 1 || m.RemoteStreak != 0 {
		t.Fatalf("after migration: home=%d streak=%d", m.Home, m.RemoteStreak)
	}
	// Consult from the new home resets nothing further; no migration.
	if r, mig := p.NoteConsult(0, 1, 3); r || mig {
		t.Fatal("home-socket consult reported work")
	}
	// A home-socket consult resets a foreign streak.
	p.NoteConsult(0, 0, 3)
	p.NoteConsult(0, 0, 3)
	if m.RemoteStreak != 2 {
		t.Fatalf("streak from socket 0: %d", m.RemoteStreak)
	}
	p.NoteConsult(0, 1, 3)
	if m.RemoteStreak != 0 {
		t.Fatalf("home consult did not reset streak: %d", m.RemoteStreak)
	}
	// Threshold <= 0 disables migration entirely.
	for i := 0; i < 10; i++ {
		if _, mig := p.NoteConsult(0, 0, 0); mig {
			t.Fatal("migration fired with threshold 0")
		}
	}
	if m.Home != 1 {
		t.Fatalf("home moved with threshold 0: %d", m.Home)
	}
}

// TestFlatRunsWriteNoReplicaState pins bit-identity on flat runs: with
// no topology (or a single socket) the replica fields never change.
func TestFlatRunsWriteNoReplicaState(t *testing.T) {
	for _, topo := range []*sim.Topology{nil, sim.DefaultTopology(1, 8)} {
		p := New(8)
		p.SetTopology(topo)
		if _, _, err := p.Map(3, 0, sim.Size4k, 7, pagetable.Writable); err != nil {
			t.Fatal(err)
		}
		if _, err := p.CopyFromSibling(5, 0, pagetable.Writable); err != nil {
			t.Fatal(err)
		}
		m := p.Mapping(0)
		if m.Replicas != 0 || m.Home != 0 || m.RemoteStreak != 0 {
			t.Fatalf("topo=%v wrote replica state: %+v", topo, m)
		}
	}
}

// TestResyncCoresRecomputesReplicas: the skew-recovery path must leave
// Replicas a superset of the mapping cores' sockets.
func TestResyncCoresRecomputesReplicas(t *testing.T) {
	p := New(8)
	p.SetTopology(sim.DefaultTopology(2, 4))
	if _, _, err := p.Map(1, 0, sim.Size4k, 7, pagetable.Writable); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Map(6, 0, sim.Size4k, 7, pagetable.Writable); err != nil {
		t.Fatal(err)
	}
	m := p.Mapping(0)
	if _, ok := p.InjectPhantomCoreBit(0); !ok {
		t.Fatal("inject failed")
	}
	if !p.ResyncCores(0) {
		t.Fatal("resync found nothing to fix")
	}
	if !m.Replicas.Has(0) || !m.Replicas.Has(1) || m.Replicas.Count() != 2 {
		t.Fatalf("replicas after resync: %b", m.Replicas)
	}
}
