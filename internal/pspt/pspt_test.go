package pspt

import (
	"testing"
	"testing/quick"

	"cmcp/internal/pagetable"
	"cmcp/internal/sim"
)

func TestCoreSet(t *testing.T) {
	var s CoreSet
	if s.Count() != 0 {
		t.Error("empty set")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(127)
	if s.Count() != 4 {
		t.Errorf("Count = %d", s.Count())
	}
	if !s.Has(63) || !s.Has(64) || s.Has(1) {
		t.Error("Has wrong")
	}
	got := s.Cores(nil)
	want := []sim.CoreID{0, 63, 64, 127}
	if len(got) != 4 {
		t.Fatalf("Cores = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Cores = %v, want %v", got, want)
		}
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 3 {
		t.Error("Remove failed")
	}
}

func TestCoreSetAddRemoveProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		var s CoreSet
		ref := make(map[sim.CoreID]bool)
		for _, id := range ids {
			c := sim.CoreID(id % MaxCores)
			if ref[c] {
				s.Remove(c)
				delete(ref, c)
			} else {
				s.Add(c)
				ref[c] = true
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for c := range ref {
			if !s.Has(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxCores + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) must panic", n)
				}
			}()
			New(n)
		}()
	}
	if New(60).Cores() != 60 {
		t.Error("Cores()")
	}
}

func TestMapAndCoreMapCount(t *testing.T) {
	p := New(4)
	m, first, err := p.Map(0, 100, sim.Size4k, 7, pagetable.Writable)
	if err != nil || !first {
		t.Fatalf("first Map: %v first=%v", err, first)
	}
	if p.CoreMapCount(100) != 1 {
		t.Errorf("count = %d", p.CoreMapCount(100))
	}
	// Second core maps the same page.
	m2, first2, err := p.Map(2, 100, sim.Size4k, 7, pagetable.Writable)
	if err != nil || first2 || m2 != m {
		t.Fatalf("second Map: %v first=%v same=%v", err, first2, m2 == m)
	}
	if p.CoreMapCount(100) != 2 {
		t.Errorf("count = %d", p.CoreMapCount(100))
	}
	// Idempotent remap by the same core.
	_, f3, err := p.Map(2, 100, sim.Size4k, 7, 0)
	if err != nil || f3 {
		t.Error("re-map by same core must be a no-op")
	}
	if p.CoreMapCount(100) != 2 {
		t.Error("count changed on idempotent map")
	}
	// The PTE is visible only in mapping cores' tables.
	if _, _, ok := p.Lookup(0, 100); !ok {
		t.Error("core 0 must resolve")
	}
	if _, _, ok := p.Lookup(1, 100); ok {
		t.Error("core 1 must NOT resolve — that is the point of PSPT")
	}
	cores := p.MappingCores(100, nil)
	if len(cores) != 2 || cores[0] != 0 || cores[1] != 2 {
		t.Errorf("MappingCores = %v", cores)
	}
}

func TestMapInconsistent(t *testing.T) {
	p := New(2)
	if _, _, err := p.Map(0, 100, sim.Size4k, 7, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Map(1, 100, sim.Size4k, 8, 0); err == nil {
		t.Error("different frame must be rejected")
	}
	if _, _, err := p.Map(1, 96, sim.Size64k, 96, 0); err == nil {
		// base 96 is 64k-aligned but overlaps the live 4k mapping at
		// 100 only logically; the record conflict is keyed by base, so
		// this particular call succeeds — the kernel (vm) prevents
		// overlapping maps. Just ensure unaligned bases are rejected:
		_ = err
	}
	if _, _, err := p.Map(1, 101, sim.Size64k, 0, 0); err == nil {
		t.Error("unaligned 64k base must be rejected")
	}
}

func TestCopyFromSibling(t *testing.T) {
	p := New(3)
	if m, err := p.CopyFromSibling(1, 50, 0); m != nil || err != nil {
		t.Error("copy with no sibling mapping must return nil")
	}
	if _, _, err := p.Map(0, 50, sim.Size4k, 3, pagetable.Writable); err != nil {
		t.Fatal(err)
	}
	m, err := p.CopyFromSibling(1, 50, pagetable.Writable)
	if err != nil || m == nil {
		t.Fatalf("copy failed: %v", err)
	}
	if p.CoreMapCount(50) != 2 {
		t.Errorf("count = %d", p.CoreMapCount(50))
	}
	e, _, ok := p.Lookup(1, 50)
	if !ok || e.PFN() != 3 {
		t.Error("copied PTE wrong")
	}
	// Copy by a core that already maps it: no change.
	if _, err := p.CopyFromSibling(1, 50, 0); err != nil || p.CoreMapCount(50) != 2 {
		t.Error("redundant copy must be a no-op")
	}
}

func TestUnmapReturnsTargets(t *testing.T) {
	p := New(4)
	p.Map(0, 10, sim.Size4k, 1, pagetable.Writable)
	p.CopyFromSibling(2, 10, pagetable.Writable)
	p.CopyFromSibling(3, 10, pagetable.Writable)
	p.Touch(2, 10, true) // dirty on core 2's private PTE
	m, dirty := p.Unmap(10)
	if m == nil {
		t.Fatal("Unmap found nothing")
	}
	if got := m.Cores.Count(); got != 3 {
		t.Errorf("target count = %d", got)
	}
	if !dirty {
		t.Error("dirty bit on any core must propagate")
	}
	for c := sim.CoreID(0); c < 4; c++ {
		if _, _, ok := p.Lookup(c, 10); ok {
			t.Errorf("core %d still maps after Unmap", c)
		}
	}
	if p.ResidentMappings() != 0 {
		t.Error("record leak")
	}
	if m2, _ := p.Unmap(10); m2 != nil {
		t.Error("second Unmap must find nothing")
	}
}

func TestTouchSetsBits(t *testing.T) {
	p := New(2)
	p.Map(0, 5, sim.Size4k, 1, pagetable.Writable)
	p.Touch(0, 5, false)
	e, _, _ := p.Lookup(0, 5)
	if !e.Has(pagetable.Accessed) || e.Has(pagetable.Dirty) {
		t.Error("read touch must set only accessed")
	}
	p.Touch(0, 5, true)
	e, _, _ = p.Lookup(0, 5)
	if !e.Has(pagetable.Dirty) {
		t.Error("write touch must set dirty")
	}
	p.Touch(1, 5, true) // core 1 has no mapping; must not panic
}

func TestScanAccessed(t *testing.T) {
	p := New(3)
	p.Map(0, 5, sim.Size4k, 1, 0)
	p.CopyFromSibling(1, 5, 0)
	p.Touch(0, 5, false)
	// Only core 0 touched; scan must clear its bit and target core 0.
	acc, targets := p.ScanAccessed(5, nil)
	if !acc {
		t.Error("accessed must be reported")
	}
	if len(targets) != 1 || targets[0] != 0 {
		t.Errorf("targets = %v, want [0]", targets)
	}
	// Second scan: nothing set, no shootdowns needed.
	acc, targets = p.ScanAccessed(5, nil)
	if acc || len(targets) != 0 {
		t.Errorf("idle scan: acc=%v targets=%v", acc, targets)
	}
	// Scan of absent page.
	acc, targets = p.ScanAccessed(999, nil)
	if acc || len(targets) != 0 {
		t.Error("absent page scan")
	}
}

func TestPSPT64kMapping(t *testing.T) {
	p := New(2)
	m, first, err := p.Map(0, 32, sim.Size64k, 64, pagetable.Writable)
	if err != nil || !first {
		t.Fatal(err)
	}
	if err := p.Table(0).Validate64k(32); err != nil {
		t.Errorf("group invalid: %v", err)
	}
	// A fault anywhere in the group resolves via the same record.
	if got := p.Mapping(40); got != m {
		t.Error("member vpn must find the group record")
	}
	if p.CoreMapCount(47) != 1 {
		t.Error("count via member vpn")
	}
	p.CopyFromSibling(1, 40, pagetable.Writable)
	if err := p.Table(1).Validate64k(32); err != nil {
		t.Errorf("copied group invalid: %v", err)
	}
	p.Touch(1, 44, true)
	mm, _ := p.Unmap(33)
	if mm == nil || mm.Size != sim.Size64k {
		t.Fatal("group unmap failed")
	}
	for c := sim.CoreID(0); c < 2; c++ {
		for v := sim.PageID(32); v < 48; v++ {
			if _, _, ok := p.Lookup(c, v); ok {
				t.Fatalf("core %d vpn %d survived group unmap", c, v)
			}
		}
	}
}

func TestPSPT2MMapping(t *testing.T) {
	p := New(2)
	if _, _, err := p.Map(0, 512, sim.Size2M, 0, pagetable.Writable); err != nil {
		t.Fatal(err)
	}
	if p.CoreMapCount(512+300) != 1 {
		t.Error("2M member count")
	}
	p.Touch(0, 900, true)
	e, size, ok := p.Lookup(0, 700)
	if !ok || size != sim.Size2M || !e.Has(pagetable.Dirty) {
		t.Errorf("2M lookup: %v %v %v", e, size, ok)
	}
	acc, targets := p.ScanAccessed(600, nil)
	if !acc || len(targets) != 1 {
		t.Errorf("2M scan: %v %v", acc, targets)
	}
	m, dirty := p.Unmap(1000)
	if m == nil || !dirty {
		t.Error("2M unmap must see dirty PTE")
	}
}

func TestSharingHistogram(t *testing.T) {
	p := New(4)
	p.Map(0, 1, sim.Size4k, 1, 0) // 1 core
	p.Map(0, 2, sim.Size4k, 2, 0) // will get 2 cores
	p.CopyFromSibling(1, 2, 0)
	p.Map(0, 3, sim.Size4k, 3, 0) // will get 4 cores
	for c := sim.CoreID(1); c < 4; c++ {
		p.CopyFromSibling(c, 3, 0)
	}
	h := p.SharingHistogram()
	if h[1] != 1 || h[2] != 1 || h[4] != 1 || h[3] != 0 {
		t.Errorf("histogram = %v", h)
	}
}

func TestMappingInvariantProperty(t *testing.T) {
	// Property: after any sequence of map/copy/unmap, every resident
	// record's core set matches exactly the cores whose private tables
	// resolve the base VPN.
	f := func(ops []uint16) bool {
		p := New(8)
		for _, op := range ops {
			core := sim.CoreID(op % 8)
			vpn := sim.PageID((op >> 3) % 32)
			switch (op >> 8) % 3 {
			case 0:
				p.Map(core, vpn, sim.Size4k, int64(vpn), 0)
			case 1:
				p.CopyFromSibling(core, vpn, 0)
			case 2:
				p.Unmap(vpn)
			}
		}
		okAll := true
		p.ForEachMapping(func(m *Mapping) {
			for c := sim.CoreID(0); c < 8; c++ {
				_, _, resolves := p.Lookup(c, m.Base)
				if resolves != m.Cores.Has(c) {
					okAll = false
				}
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRebuildDropsPTEsKeepsResidency(t *testing.T) {
	p := New(3)
	p.Map(0, 10, sim.Size4k, 1, pagetable.Writable)
	p.CopyFromSibling(1, 10, pagetable.Writable)
	p.Map(0, 20, sim.Size4k, 2, pagetable.Writable)
	dropped := make(map[sim.PageID][]sim.CoreID)
	p.Rebuild(func(base sim.PageID, targets []sim.CoreID) {
		dropped[base] = append([]sim.CoreID{}, targets...)
	})
	if len(dropped) != 2 {
		t.Fatalf("dropped %d mappings, want 2", len(dropped))
	}
	if len(dropped[10]) != 2 || len(dropped[20]) != 1 {
		t.Errorf("targets: %v", dropped)
	}
	// PTEs gone from every table, but the records (and frames) remain.
	for c := sim.CoreID(0); c < 3; c++ {
		if _, _, ok := p.Lookup(c, 10); ok {
			t.Errorf("core %d still maps after rebuild", c)
		}
	}
	if p.ResidentMappings() != 2 {
		t.Error("records must survive rebuild")
	}
	if p.CoreMapCount(10) != 0 {
		t.Error("count must reset")
	}
	// Re-faulting resolves from the record, not the host: the sharing
	// picture re-forms with the new access pattern.
	m, err := p.CopyFromSibling(2, 10, pagetable.Writable)
	if err != nil || m == nil {
		t.Fatalf("post-rebuild resolve failed: %v", err)
	}
	if p.CoreMapCount(10) != 1 {
		t.Errorf("count = %d after re-fault", p.CoreMapCount(10))
	}
	// A second rebuild with nil fn must not panic and skips empty sets.
	p.Rebuild(nil)
}
