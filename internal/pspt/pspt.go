// Package pspt implements per-core Partially Separated Page Tables,
// the substrate from the authors' earlier CCGrid'13 paper that CMCP
// builds on. Each core owns a private page table for the computation
// area; kernel and regular user mappings live in a shared table (not
// modelled here — only the computation area pages fault). Because every
// core sets up PTEs only for addresses it actually touches:
//
//   - the set of cores mapping a page is known exactly, so a TLB
//     shootdown on unmap goes only to those cores;
//   - the number of mapping cores (the core-map count) is available as
//     a free by-product, which is the auxiliary knowledge CMCP uses;
//   - page-table synchronization is per-page, not address-space wide.
package pspt

import (
	"fmt"
	"math/bits"

	"cmcp/internal/dense"
	"cmcp/internal/pagetable"
	"cmcp/internal/sim"
)

// MaxCores is the largest number of cores a PSPT instance supports
// (the core set is a fixed 128-bit bitmap; KNC has 60 cores + scanner).
const MaxCores = 128

// CoreSet is a bitmap of core IDs.
type CoreSet [2]uint64

// Add sets core's bit.
func (s *CoreSet) Add(c sim.CoreID) { s[c>>6] |= 1 << (uint(c) & 63) }

// Remove clears core's bit.
func (s *CoreSet) Remove(c sim.CoreID) { s[c>>6] &^= 1 << (uint(c) & 63) }

// Has reports whether core's bit is set.
func (s CoreSet) Has(c sim.CoreID) bool { return s[c>>6]&(1<<(uint(c)&63)) != 0 }

// Count returns the number of cores in the set — the core-map count.
func (s CoreSet) Count() int { return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) }

// Cores returns the member core IDs in ascending order, appended to dst.
func (s CoreSet) Cores(dst []sim.CoreID) []sim.CoreID {
	for w := 0; w < 2; w++ {
		v := s[w]
		for v != 0 {
			b := bits.TrailingZeros64(v)
			dst = append(dst, sim.CoreID(w*64+b))
			v &^= 1 << uint(b)
		}
	}
	return dst
}

// SocketSet is a bitmap of NUMA socket IDs (Topology caps Sockets at
// 32, so one word suffices).
type SocketSet uint32

// Add sets socket s's bit.
func (ss *SocketSet) Add(s int) { *ss |= 1 << uint(s) }

// Has reports whether socket s's bit is set.
func (ss SocketSet) Has(s int) bool { return ss&(1<<uint(s)) != 0 }

// Count returns the number of sockets in the set.
func (ss SocketSet) Count() int { return bits.OnesCount32(uint32(ss)) }

// Mapping is the bookkeeping record for one mapped region of the
// computation area: its size class, base physical frame, the set of
// cores holding a private PTE for it, and the per-page lock used to
// model fine-grained synchronization in virtual time.
//
// Under a multi-socket topology the record also carries the numaPTE
// state for the page-table page backing this region: which sockets
// hold a replica (Replicas), which socket the authoritative copy is
// homed on (Home), and how many consecutive consults arrived from a
// non-home socket (RemoteStreak — the migration trigger). All three
// stay zero on flat runs.
type Mapping struct {
	Base  sim.PageID // size-aligned virtual base page
	Size  sim.PageSize
	PFN   int64
	Cores CoreSet
	Lock  sim.Resource

	Replicas     SocketSet // sockets holding a page-table replica
	Home         int8      // socket owning the authoritative copy
	RemoteStreak uint8     // consecutive consults from one remote socket
}

// PSPT is the per-core partially separated page table set for one
// address space on n cores. Mapping records live in a chunked store
// with stable pointers; a page-indexed table maps each size-aligned
// base VPN to its record handle, replacing the old map lookup on the
// fault path with an array read.
type PSPT struct {
	n      int
	tables []*pagetable.Table
	store  dense.Store[Mapping]
	idx    dense.Index // base VPN -> store handle
	count  int         // live mapping records

	topo *sim.Topology // nil on flat runs: no replica bookkeeping

	unmapOut   Mapping      // reusable Unmap return record
	rebuildOut []sim.CoreID // reusable Rebuild target buffer
}

// New creates a PSPT for n application cores.
func New(n int) *PSPT { return NewSized(n, 0, nil) }

// NewSized is New with the base-VPN index pre-sized for page IDs in
// [0, pages) and drawn from sc (both optional).
func NewSized(n, pages int, sc *dense.Scratch) *PSPT {
	if n <= 0 || n > MaxCores {
		panic(fmt.Sprintf("pspt: %d cores out of range 1..%d", n, MaxCores))
	}
	p := &PSPT{n: n, tables: make([]*pagetable.Table, n), idx: dense.NewIndex(sc, pages)}
	for i := range p.tables {
		p.tables[i] = pagetable.New()
	}
	return p
}

// Cores returns the number of application cores.
func (p *PSPT) Cores() int { return p.n }

// SetTopology attaches the machine topology, enabling per-socket
// page-table replica bookkeeping on every subsequent Map/CopyFromSibling.
// A nil or single-socket topology keeps the flat behavior (no replica
// state is ever written), preserving bit-identity.
func (p *PSPT) SetTopology(t *sim.Topology) { p.topo = t }

// Topology returns the attached topology (nil on flat runs).
func (p *PSPT) Topology() *sim.Topology { return p.topo }

// Table exposes core's private table (tests and the scanner use it).
func (p *PSPT) Table(core sim.CoreID) *pagetable.Table { return p.tables[core] }

// Lookup resolves vpn through core's private table.
func (p *PSPT) Lookup(core sim.CoreID, vpn sim.PageID) (pagetable.PTE, sim.PageSize, bool) {
	return p.tables[core].Lookup(vpn)
}

// Mapping returns the bookkeeping record covering vpn, trying each size
// class's alignment, or nil if the page is not resident.
func (p *PSPT) Mapping(vpn sim.PageID) *Mapping {
	for _, s := range sizeClasses {
		if h := p.idx.Get(s.Align(vpn)); h >= 0 {
			m := p.store.At(h)
			if vpn < m.Base+m.Size.Span() {
				return m
			}
		}
	}
	return nil
}

var sizeClasses = [3]sim.PageSize{sim.Size4k, sim.Size64k, sim.Size2M}

// CoreMapCount returns the number of cores mapping vpn — the quantity
// CMCP prioritizes by. Zero means not resident.
func (p *PSPT) CoreMapCount(vpn sim.PageID) int {
	if m := p.Mapping(vpn); m != nil {
		return m.Cores.Count()
	}
	return 0
}

// MappingCores appends the IDs of cores mapping vpn to dst. This is the
// precise shootdown target set PSPT makes available.
func (p *PSPT) MappingCores(vpn sim.PageID, dst []sim.CoreID) []sim.CoreID {
	if m := p.Mapping(vpn); m != nil {
		return m.Cores.Cores(dst)
	}
	return dst
}

// setInTable installs the PTEs for one mapping into a single core's
// private table.
func (p *PSPT) setInTable(core sim.CoreID, base sim.PageID, size sim.PageSize, pfn int64, flags pagetable.PTE) error {
	t := p.tables[core]
	switch size {
	case sim.Size4k:
		t.Set(base, pagetable.MakePTE(pfn, flags|pagetable.Present))
		return nil
	case sim.Size64k:
		return t.Set64k(base, pfn, flags)
	case sim.Size2M:
		return t.Set2M(base, pagetable.MakePTE(pfn, flags))
	default:
		return fmt.Errorf("pspt: unknown page size %v", size)
	}
}

func (p *PSPT) clearInTable(core sim.CoreID, base sim.PageID, size sim.PageSize) pagetable.PTE {
	t := p.tables[core]
	switch size {
	case sim.Size64k:
		return t.Clear64k(base)
	case sim.Size2M:
		return t.Clear2M(base)
	default:
		return t.Clear(base)
	}
}

// Map establishes (or extends to another core) the mapping of the
// region with the given size-aligned base. The first call creates the
// bookkeeping record; later calls from other cores must agree on size
// and frame. It returns the record and whether this was the first core.
func (p *PSPT) Map(core sim.CoreID, base sim.PageID, size sim.PageSize, pfn int64, flags pagetable.PTE) (*Mapping, bool, error) {
	if !size.Aligned(base) {
		return nil, false, fmt.Errorf("pspt: Map base %d not %v aligned", base, size)
	}
	var m *Mapping
	fresh := false
	if h := p.idx.Get(base); h >= 0 {
		m = p.store.At(h)
		if m.Size != size || m.PFN != pfn {
			return nil, false, fmt.Errorf("pspt: inconsistent remap of base %d: %v/%d vs %v/%d",
				base, m.Size, m.PFN, size, pfn)
		}
		if m.Cores.Has(core) {
			return m, false, nil // already mapped by this core
		}
	} else {
		var h int32
		h, m = p.store.Alloc()
		m.Base, m.Size, m.PFN = base, size, pfn
		p.idx.Set(base, h)
		p.count++
		fresh = true
	}
	if err := p.setInTable(core, base, size, pfn, flags); err != nil {
		if m.Cores.Count() == 0 {
			p.deleteMapping(base)
		}
		return nil, false, err
	}
	first := m.Cores.Count() == 0
	m.Cores.Add(core)
	if p.topo.Multi() {
		s := p.topo.SocketOf(core)
		if fresh {
			// Brand-new mapping: the page-table page is created on the
			// first mapper's socket. A record that survived a Rebuild
			// keeps its Home — only the replicas were dropped.
			m.Home, m.Replicas, m.RemoteStreak = int8(s), 0, 0
		}
		m.Replicas.Add(s)
	}
	return m, first, nil
}

// CopyFromSibling implements the PSPT minor-fault path: when core
// faults on vpn but some sibling core already maps the region, the
// faulting core copies the sibling's PTE into its own table. It returns
// the mapping record, or nil when no sibling maps the page (major
// fault).
func (p *PSPT) CopyFromSibling(core sim.CoreID, vpn sim.PageID, flags pagetable.PTE) (*Mapping, error) {
	m := p.Mapping(vpn)
	if m == nil {
		return nil, nil
	}
	// A mapping record with zero cores occurs after a PSPT rebuild
	// (all private PTEs dropped): the page is still resident, the
	// kernel's frame bookkeeping resolves it without data movement.
	if m.Cores.Has(core) {
		return m, nil // racing fault; mapping already present
	}
	if err := p.setInTable(core, m.Base, m.Size, m.PFN, flags); err != nil {
		return nil, err
	}
	m.Cores.Add(core)
	if p.topo.Multi() {
		m.Replicas.Add(p.topo.SocketOf(core))
	}
	return m, nil
}

// NoteConsult records one sibling-table consult from the given socket
// against the mapping covering vpn, implementing the numaPTE placement
// protocol: remote reports whether the consult had to cross the
// interconnect (no replica on the consulting socket yet — the caller
// charges RemoteWalkExtra), and migrated reports whether this consult
// tripped the migration threshold and re-homed the page-table page to
// the consulting socket (the caller charges MigrateCost). The replica
// set then includes the consulting socket either way: a consult
// materializes a local replica, which is exactly the behavior whose
// cost numaPTE amortizes.
func (p *PSPT) NoteConsult(vpn sim.PageID, socket, threshold int) (remote, migrated bool) {
	m := p.Mapping(vpn)
	if m == nil {
		return false, false
	}
	remote = !m.Replicas.Has(socket)
	if int(m.Home) == socket {
		m.RemoteStreak = 0
	} else {
		if m.RemoteStreak < 255 {
			m.RemoteStreak++
		}
		if threshold > 0 && int(m.RemoteStreak) >= threshold {
			m.Home, m.RemoteStreak = int8(socket), 0
			migrated = true
		}
	}
	m.Replicas.Add(socket)
	return remote, migrated
}

// Unmap removes the mapping covering vpn from every core's table and
// deletes the bookkeeping record. It returns the record (whose Cores
// field is the precise shootdown target set) and whether any core's PTE
// carried the dirty bit. Returns nil if vpn is not resident.
func (p *PSPT) Unmap(vpn sim.PageID) (*Mapping, bool) {
	m := p.Mapping(vpn)
	if m == nil {
		return nil, false
	}
	dirty := false
	var cores []sim.CoreID
	cores = m.Cores.Cores(cores)
	for _, c := range cores {
		old := p.clearInTable(c, m.Base, m.Size)
		if old.Has(pagetable.Dirty) {
			dirty = true
		}
		// For 64 kB groups the dirty bit may sit on any sub-entry;
		// clearInTable returned only the first. Checked via Stat64k
		// before clearing would be cleaner but costs a second walk;
		// instead the caller tracks frame dirtiness in mem.Device.
	}
	// The record is returned to the caller (shootdown targets), so copy
	// it out before its store slot is zeroed and recycled. The copy
	// lives in a reusable field: valid until the next Unmap.
	p.unmapOut = *m
	p.deleteMapping(m.Base)
	return &p.unmapOut, dirty
}

// deleteMapping frees base's record and index slot.
func (p *PSPT) deleteMapping(base sim.PageID) {
	if h := p.idx.Get(base); h >= 0 {
		p.store.Free(h)
		p.idx.Delete(base)
		p.count--
	}
}

// Touch simulates the MMU setting accessed/dirty bits on core's private
// PTE for vpn. For 64 kB groups the bits land on the touched sub-entry.
func (p *PSPT) Touch(core sim.CoreID, vpn sim.PageID, write bool) {
	t := p.tables[core]
	_, size, ok := t.Lookup(vpn)
	if !ok {
		return
	}
	switch size {
	case sim.Size2M:
		t.Update2M(vpn, func(e pagetable.PTE) pagetable.PTE {
			e = e.With(pagetable.Accessed)
			if write {
				e = e.With(pagetable.Dirty)
			}
			return e
		})
	default: // 4k and 64k members both carry bits on the individual PTE
		t.Touch64k(vpn, write)
	}
}

// ScanAccessed implements the statistics pass the LRU scanner performs
// on one region: it tests and clears the accessed bit in every mapping
// core's private table. It returns whether any core had accessed the
// region since the last scan and the set of cores whose TLBs must be
// invalidated (every core whose PTE was modified — on x86, clearing an
// accessed bit requires invalidating the cached translation).
func (p *PSPT) ScanAccessed(vpn sim.PageID, dst []sim.CoreID) (accessed bool, targets []sim.CoreID) {
	m := p.Mapping(vpn)
	if m == nil {
		return false, dst
	}
	targets = dst
	var cores []sim.CoreID
	cores = m.Cores.Cores(cores)
	for _, c := range cores {
		t := p.tables[c]
		hit := false
		switch m.Size {
		case sim.Size2M:
			t.Update2M(m.Base, func(e pagetable.PTE) pagetable.PTE {
				if e.Has(pagetable.Accessed) {
					hit = true
					return e.Without(pagetable.Accessed)
				}
				return e
			})
		case sim.Size64k:
			a, _ := t.Stat64k(m.Base, true)
			hit = a
		default:
			t.Update(m.Base, func(e pagetable.PTE) pagetable.PTE {
				if e.Has(pagetable.Accessed) {
					hit = true
					return e.Without(pagetable.Accessed)
				}
				return e
			})
		}
		if hit {
			accessed = true
		}
		// Clearing (or even scanning-with-clear finding nothing set)
		// only requires invalidation when a bit actually changed.
		if hit {
			targets = append(targets, c)
		}
	}
	return accessed, targets
}

// InjectPhantomCoreBit simulates lost teardown bookkeeping on the
// mapping covering vpn: the lowest core NOT currently in the core set
// gains a set bit with no backing PTE, so the derived metadata (core-map
// count, shootdown targets) overcounts until repaired. This is the
// fault-injection entry point for the inconsistency the invariant
// auditor detects and ResyncCores repairs; ok is false when the page is
// not resident or every core already maps it.
func (p *PSPT) InjectPhantomCoreBit(vpn sim.PageID) (sim.CoreID, bool) {
	m := p.Mapping(vpn)
	if m == nil {
		return 0, false
	}
	for c := 0; c < p.n; c++ {
		core := sim.CoreID(c)
		if !m.Cores.Has(core) {
			m.Cores.Add(core)
			return core, true
		}
	}
	return 0, false
}

// ResyncCores rebuilds the core set of the mapping covering vpn from
// the actual per-core table population — the recovery action for
// injected core-set skew. It reports whether the set changed; false
// also covers a non-resident vpn.
func (p *PSPT) ResyncCores(vpn sim.PageID) bool {
	m := p.Mapping(vpn)
	if m == nil {
		return false
	}
	var rebuilt CoreSet
	for c := 0; c < p.n; c++ {
		core := sim.CoreID(c)
		if _, _, ok := p.tables[c].Lookup(m.Base); ok {
			rebuilt.Add(core)
		}
	}
	changed := rebuilt != m.Cores
	m.Cores = rebuilt
	if p.topo.Multi() {
		// Replicas must stay a superset of the mapping cores' sockets;
		// recompute the minimal set from the rebuilt population.
		var rs SocketSet
		var cores []sim.CoreID
		for _, c := range rebuilt.Cores(cores) {
			rs.Add(p.topo.SocketOf(c))
		}
		m.Replicas = rs
	}
	return changed
}

// ResidentMappings returns the number of live mapping records.
func (p *PSPT) ResidentMappings() int { return p.count }

// ForEachMapping calls fn for every live mapping record, in ascending
// base order (the page-indexed table makes that order free).
func (p *PSPT) ForEachMapping(fn func(*Mapping)) {
	p.idx.Range(func(_ sim.PageID, h int32) bool {
		fn(p.store.At(h))
		return true
	})
}

// Rebuild drops every core's private PTEs while keeping the mapping
// records (frames stay owned): the sharing picture then re-forms from
// scratch as cores re-fault, which is the paper's §5.6 answer to
// workloads whose inter-core access pattern drifts over time ("a more
// dynamic solution with periodically rebuilding PSPT could address
// this issue as well"). It calls fn for every dropped (base, cores)
// pair so the caller can invalidate the affected TLBs.
func (p *PSPT) Rebuild(fn func(base sim.PageID, targets []sim.CoreID)) {
	scratch := p.rebuildOut
	p.ForEachMapping(func(m *Mapping) {
		if m.Cores.Count() == 0 {
			return
		}
		scratch = m.Cores.Cores(scratch[:0])
		for _, c := range scratch {
			p.clearInTable(c, m.Base, m.Size)
		}
		m.Cores = CoreSet{}
		// Dropping every private PTE drops the replicas too; Home stays
		// (the authoritative copy survives a rebuild).
		m.Replicas, m.RemoteStreak = 0, 0
		if fn != nil {
			fn(m.Base, scratch)
		}
	})
	p.rebuildOut = scratch[:0]
}

// SharingHistogram returns hist where hist[k] is the number of resident
// mappings whose core-map count is exactly k (k from 0 to Cores()).
// This is the quantity Figure 6 of the paper plots.
func (p *PSPT) SharingHistogram() []int {
	hist := make([]int, p.n+1)
	p.ForEachMapping(func(m *Mapping) {
		hist[m.Cores.Count()]++
	})
	return hist
}
