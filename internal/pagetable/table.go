package pagetable

import (
	"fmt"

	"cmcp/internal/sim"
)

// Radix geometry: four levels of 9 bits index a 36-bit VPN space
// (256 TB of virtual address space at 4 kB granularity), mirroring
// x86-64 long mode.
const (
	radixBits   = 9
	radixFanout = 1 << radixBits
	radixMask   = radixFanout - 1
	numLevels   = 4
)

// node is one radix-tree node. Leaf nodes (level 0) use ptes; interior
// nodes use children, except that a level-1 (PMD) slot holding a 2 MB
// mapping stores the large PTE in ptes and leaves children nil.
type node struct {
	children [radixFanout]*node
	ptes     []PTE // lazily allocated; used at level 0 and for 2M entries at level 1
}

func (n *node) pteSlot(idx int) *PTE {
	if n.ptes == nil {
		n.ptes = make([]PTE, radixFanout)
	}
	return &n.ptes[idx]
}

// Table is one four-level radix page table. It is not safe for
// concurrent use; the simulation engine serializes mutations and models
// locking costs separately (sim.Resource).
type Table struct {
	root     node
	present  int // number of present 4 kB-equivalent leaf PTEs (2M counts as 512)
	mappings int // number of present mappings of any size

	// One-entry PMD memo for walk. Interior nodes are created lazily
	// but never removed or replaced, so a cached pointer cannot go
	// stale. pmdKey is vpn>>(2*radixBits) + 1; zero means empty.
	pmdKey sim.PageID
	pmd    *node
}

// New returns an empty table.
func New() *Table { return &Table{} }

// PresentPages returns the number of present base pages (a 2 MB mapping
// counts as 512, a 64 kB group as its 16 member PTEs).
func (t *Table) PresentPages() int { return t.present }

// Mappings returns the number of distinct present mappings.
func (t *Table) Mappings() int { return t.mappings }

func levelIndex(vpn sim.PageID, level int) int {
	return int(vpn>>(uint(level)*radixBits)) & radixMask
}

// walk descends to the level-1 (PMD) node for vpn, allocating interior
// nodes when create is true. It returns nil when the path is absent.
// Consecutive touches overwhelmingly land in the same 1 GB-ish region,
// so the PMD memo turns the two-level descent into one compare.
func (t *Table) walk(vpn sim.PageID, create bool) *node {
	key := vpn>>(2*radixBits) + 1
	if t.pmdKey == key {
		return t.pmd
	}
	n := &t.root
	for level := numLevels - 1; level > 1; level-- {
		idx := levelIndex(vpn, level)
		next := n.children[idx]
		if next == nil {
			if !create {
				return nil
			}
			next = &node{}
			n.children[idx] = next
		}
		n = next
	}
	t.pmdKey, t.pmd = key, n
	return n
}

// leaf returns the level-0 node for vpn.
func (t *Table) leaf(vpn sim.PageID, create bool) *node {
	pmd := t.walk(vpn, create)
	if pmd == nil {
		return nil
	}
	idx := levelIndex(vpn, 1)
	n := pmd.children[idx]
	if n == nil {
		if !create {
			return nil
		}
		n = &node{}
		pmd.children[idx] = n
	}
	return n
}

// Lookup resolves vpn. It follows 2 MB PMD entries and returns the
// governing PTE, the mapping size, and whether a translation exists.
// For a 64 kB group it returns the individual 4 kB member entry (which
// carries the Hint64k bit); callers decide group behaviour.
func (t *Table) Lookup(vpn sim.PageID) (PTE, sim.PageSize, bool) {
	return lookupIn(t.walk(vpn, false), vpn)
}

// LookupRO resolves vpn exactly like Lookup but never writes the PMD
// memo (walk refreshes it even on read-only descents, which is a data
// race under concurrency). Any number of goroutines may call LookupRO
// on a table nothing is mutating.
func (t *Table) LookupRO(vpn sim.PageID) (PTE, sim.PageSize, bool) {
	return lookupIn(t.walkRO(vpn), vpn)
}

// walkRO is walk(vpn, false) without the memo refresh: it may read the
// memo but never writes it.
func (t *Table) walkRO(vpn sim.PageID) *node {
	if key := vpn>>(2*radixBits) + 1; t.pmdKey == key {
		return t.pmd
	}
	n := &t.root
	for level := numLevels - 1; level > 1; level-- {
		next := n.children[levelIndex(vpn, level)]
		if next == nil {
			return nil
		}
		n = next
	}
	return n
}

func lookupIn(pmd *node, vpn sim.PageID) (PTE, sim.PageSize, bool) {
	if pmd == nil {
		return 0, sim.Size4k, false
	}
	if pmd.ptes != nil {
		if e := pmd.ptes[levelIndex(vpn, 1)]; e.Has(Present | Large) {
			return e, sim.Size2M, true
		}
	}
	leafNode := pmd.children[levelIndex(vpn, 1)]
	if leafNode == nil || leafNode.ptes == nil {
		return 0, sim.Size4k, false
	}
	e := leafNode.ptes[levelIndex(vpn, 0)]
	if !e.Has(Present) {
		return 0, sim.Size4k, false
	}
	if e.Has(Hint64k) {
		return e, sim.Size64k, true
	}
	return e, sim.Size4k, true
}

// Set installs a 4 kB entry for vpn, replacing any previous 4 kB entry.
// Installing over a 2 MB mapping is a kernel bug and panics.
func (t *Table) Set(vpn sim.PageID, e PTE) {
	if e.Has(Large) {
		panic("pagetable: Set with Large bit; use Set2M")
	}
	pmd := t.walk(vpn, true)
	if pmd.ptes != nil && pmd.ptes[levelIndex(vpn, 1)].Has(Present|Large) {
		panic(fmt.Sprintf("pagetable: 4k Set inside live 2M mapping at vpn %d", vpn))
	}
	leafNode := t.leaf(vpn, true)
	slot := leafNode.pteSlot(levelIndex(vpn, 0))
	was := slot.Has(Present)
	*slot = e
	if e.Has(Present) && !was {
		t.present++
		t.mappings++
	} else if !e.Has(Present) && was {
		t.present--
		t.mappings--
	}
}

// Clear removes the 4 kB entry for vpn, returning the previous entry.
func (t *Table) Clear(vpn sim.PageID) PTE {
	leafNode := t.leaf(vpn, false)
	if leafNode == nil || leafNode.ptes == nil {
		return 0
	}
	slot := &leafNode.ptes[levelIndex(vpn, 0)]
	old := *slot
	if old.Has(Present) {
		t.present--
		t.mappings--
	}
	*slot = 0
	return old
}

// Update applies fn to the present 4 kB entry for vpn and stores the
// result. It reports whether an entry was present. fn must not change
// the Present or Large bits.
func (t *Table) Update(vpn sim.PageID, fn func(PTE) PTE) bool {
	leafNode := t.leaf(vpn, false)
	if leafNode == nil || leafNode.ptes == nil {
		return false
	}
	slot := &leafNode.ptes[levelIndex(vpn, 0)]
	if !slot.Has(Present) {
		return false
	}
	*slot = fn(*slot)
	return true
}

// Set2M installs a 2 MB mapping at the PMD level. vpn must be 2 MB
// aligned and no 4 kB mappings may exist underneath.
func (t *Table) Set2M(vpn sim.PageID, e PTE) error {
	if !sim.Size2M.Aligned(vpn) {
		return fmt.Errorf("pagetable: Set2M at unaligned vpn %d", vpn)
	}
	pmd := t.walk(vpn, true)
	idx := levelIndex(vpn, 1)
	if under := pmd.children[idx]; under != nil {
		for _, p := range under.ptes {
			if p.Has(Present) {
				return fmt.Errorf("pagetable: Set2M over live 4k mappings at vpn %d", vpn)
			}
		}
	}
	slot := pmd.pteSlot(idx)
	was := slot.Has(Present)
	*slot = e | Large | Present
	if !was {
		t.present += sim.Span2M
		t.mappings++
	}
	return nil
}

// Clear2M removes the 2 MB mapping covering vpn, returning the previous
// entry.
func (t *Table) Clear2M(vpn sim.PageID) PTE {
	vpn = sim.Size2M.Align(vpn)
	pmd := t.walk(vpn, false)
	if pmd == nil || pmd.ptes == nil {
		return 0
	}
	slot := &pmd.ptes[levelIndex(vpn, 1)]
	old := *slot
	if old.Has(Present | Large) {
		t.present -= sim.Span2M
		t.mappings--
		*slot = 0
	}
	return old
}

// Update2M applies fn to the present 2 MB entry covering vpn.
func (t *Table) Update2M(vpn sim.PageID, fn func(PTE) PTE) bool {
	vpn = sim.Size2M.Align(vpn)
	pmd := t.walk(vpn, false)
	if pmd == nil || pmd.ptes == nil {
		return false
	}
	slot := &pmd.ptes[levelIndex(vpn, 1)]
	if !slot.Has(Present | Large) {
		return false
	}
	*slot = fn(*slot)
	return true
}

// ForEachPresent calls fn for every present mapping: once per 4 kB
// entry (including 64 kB group members) and once per 2 MB entry with
// its aligned VPN. Iteration order is ascending VPN.
func (t *Table) ForEachPresent(fn func(vpn sim.PageID, e PTE, size sim.PageSize)) {
	t.forEach(&t.root, 0, numLevels-1, fn)
}

func (t *Table) forEach(n *node, base sim.PageID, level int, fn func(sim.PageID, PTE, sim.PageSize)) {
	if level == 0 {
		if n.ptes == nil {
			return
		}
		for i, e := range n.ptes {
			if e.Has(Present) {
				size := sim.Size4k
				if e.Has(Hint64k) {
					size = sim.Size64k
				}
				fn(base+sim.PageID(i), e, size)
			}
		}
		return
	}
	span := sim.PageID(1) << (uint(level) * radixBits)
	for i := 0; i < radixFanout; i++ {
		if level == 1 && n.ptes != nil {
			if e := n.ptes[i]; e.Has(Present | Large) {
				fn(base+sim.PageID(i)*span, e, sim.Size2M)
				continue
			}
		}
		if c := n.children[i]; c != nil {
			t.forEach(c, base+sim.PageID(i)*span, level-1, fn)
		}
	}
}
