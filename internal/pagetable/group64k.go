package pagetable

import (
	"fmt"

	"cmcp/internal/sim"
)

// This file implements the Xeon Phi's experimental 64 kB page support
// exactly as the paper describes it (§4):
//
//   - a 64 kB mapping is 16 regular 4 kB PTEs for 16 subsequent pages of
//     a contiguous, 64 kB-aligned region, each mapping a frame of a
//     contiguous, 64 kB-aligned physical run;
//   - a special PTE bit (Hint64k) tells cores to cache the translation
//     as one 64 kB TLB entry instead of 16 separate 4 kB entries;
//   - hardware-set attributes behave unusually: a store sets the dirty
//     bit on the 4 kB sub-entry that was actually written — NOT on the
//     first entry of the group — and the accessed bit works the same
//     way, so the OS must iterate all 16 entries to collect statistics;
//   - page sizes may be mixed freely within a 2 MB block.

// Set64k installs a 64 kB mapping: 16 PTEs with the hint bit, mapping
// vpn..vpn+15 to pfn..pfn+15. Both vpn and pfn must be 64 kB aligned.
func (t *Table) Set64k(vpn sim.PageID, pfn int64, flags PTE) error {
	if !sim.Size64k.Aligned(vpn) {
		return fmt.Errorf("pagetable: Set64k at unaligned vpn %d", vpn)
	}
	if pfn%sim.Span64k != 0 {
		return fmt.Errorf("pagetable: Set64k with unaligned pfn %d", pfn)
	}
	if flags.Has(Large) {
		return fmt.Errorf("pagetable: Set64k with 2M flag")
	}
	for i := sim.PageID(0); i < sim.Span64k; i++ {
		t.Set(vpn+i, MakePTE(pfn+int64(i), flags|Present|Hint64k))
	}
	return nil
}

// Clear64k removes the 64 kB group covering vpn and returns the first
// member's previous entry (whose PFN identifies the physical run).
func (t *Table) Clear64k(vpn sim.PageID) PTE {
	vpn = sim.Size64k.Align(vpn)
	first := t.Clear(vpn)
	for i := sim.PageID(1); i < sim.Span64k; i++ {
		t.Clear(vpn + i)
	}
	return first
}

// Touch64k simulates the hardware behaviour on an access to offset
// page `member` of the group covering vpn: the accessed (and, for
// writes, dirty) bit is set on that individual sub-entry only.
func (t *Table) Touch64k(vpn sim.PageID, write bool) {
	t.Update(vpn, func(e PTE) PTE {
		e = e.With(Accessed)
		if write {
			e = e.With(Dirty)
		}
		return e
	})
}

// Stat64k gathers accessed/dirty statistics for the 64 kB group
// covering vpn by iterating all 16 sub-entries, as the OS must on real
// hardware. When clear is true the accessed bits are cleared while
// scanning (the LRU scanner's operation); the caller is responsible for
// the TLB invalidation that clearing requires.
func (t *Table) Stat64k(vpn sim.PageID, clear bool) (accessed, dirty bool) {
	base := sim.Size64k.Align(vpn)
	for i := sim.PageID(0); i < sim.Span64k; i++ {
		t.Update(base+i, func(e PTE) PTE {
			if e.Has(Accessed) {
				accessed = true
				if clear {
					e = e.Without(Accessed)
				}
			}
			if e.Has(Dirty) {
				dirty = true
			}
			return e
		})
	}
	return accessed, dirty
}

// Is64k reports whether vpn is covered by a live 64 kB group.
func (t *Table) Is64k(vpn sim.PageID) bool {
	e, size, ok := t.Lookup(vpn)
	return ok && size == sim.Size64k && e.Has(Hint64k)
}

// Validate64k checks the structural invariants of the group covering
// vpn: 16 present members, hint bits set, physically contiguous and
// 64 kB-aligned frames. It returns nil for a well-formed group; the
// test suite uses it as the group invariant.
func (t *Table) Validate64k(vpn sim.PageID) error {
	base := sim.Size64k.Align(vpn)
	first, size, ok := t.Lookup(base)
	if !ok || size != sim.Size64k {
		return fmt.Errorf("pagetable: no 64k group at vpn %d", base)
	}
	if first.PFN()%sim.Span64k != 0 {
		return fmt.Errorf("pagetable: group at vpn %d has unaligned base pfn %d", base, first.PFN())
	}
	for i := sim.PageID(0); i < sim.Span64k; i++ {
		e, sz, ok := t.Lookup(base + i)
		if !ok || sz != sim.Size64k || !e.Has(Hint64k) {
			return fmt.Errorf("pagetable: member %d of group at vpn %d missing or not hinted", i, base)
		}
		if e.PFN() != first.PFN()+int64(i) {
			return fmt.Errorf("pagetable: member %d of group at vpn %d not contiguous (pfn %d, want %d)",
				i, base, e.PFN(), first.PFN()+int64(i))
		}
	}
	return nil
}
