package pagetable

import (
	"testing"
	"testing/quick"

	"cmcp/internal/sim"
)

func TestTableSetLookupClear(t *testing.T) {
	tab := New()
	if _, _, ok := tab.Lookup(42); ok {
		t.Error("empty table must not resolve")
	}
	tab.Set(42, MakePTE(7, Present|Writable))
	e, size, ok := tab.Lookup(42)
	if !ok || size != sim.Size4k || e.PFN() != 7 {
		t.Fatalf("Lookup = %v %v %v", e, size, ok)
	}
	if tab.PresentPages() != 1 || tab.Mappings() != 1 {
		t.Errorf("present=%d mappings=%d", tab.PresentPages(), tab.Mappings())
	}
	old := tab.Clear(42)
	if old.PFN() != 7 {
		t.Errorf("Clear returned %v", old)
	}
	if _, _, ok := tab.Lookup(42); ok {
		t.Error("cleared entry still resolves")
	}
	if tab.PresentPages() != 0 {
		t.Error("present count not decremented")
	}
}

func TestTableSparseAddresses(t *testing.T) {
	tab := New()
	// Entries far apart exercise all radix levels.
	vpns := []sim.PageID{0, 1, 511, 512, 1 << 18, 1<<27 + 5, 1<<35 - 1}
	for i, v := range vpns {
		tab.Set(v, MakePTE(int64(i+1), Present))
	}
	for i, v := range vpns {
		e, _, ok := tab.Lookup(v)
		if !ok || e.PFN() != int64(i+1) {
			t.Errorf("vpn %d: got %v %v", v, e, ok)
		}
	}
	if tab.Mappings() != len(vpns) {
		t.Errorf("mappings = %d", tab.Mappings())
	}
}

func TestTableReplaceDoesNotLeakCount(t *testing.T) {
	tab := New()
	tab.Set(5, MakePTE(1, Present))
	tab.Set(5, MakePTE(2, Present))
	if tab.PresentPages() != 1 {
		t.Errorf("present = %d after replace", tab.PresentPages())
	}
	tab.Set(5, 0) // set non-present
	if tab.PresentPages() != 0 {
		t.Errorf("present = %d after unset", tab.PresentPages())
	}
}

func TestTableUpdate(t *testing.T) {
	tab := New()
	if tab.Update(9, func(e PTE) PTE { return e }) {
		t.Error("Update on absent entry must report false")
	}
	tab.Set(9, MakePTE(3, Present))
	ok := tab.Update(9, func(e PTE) PTE { return e.With(Accessed) })
	if !ok {
		t.Fatal("Update reported absent")
	}
	e, _, _ := tab.Lookup(9)
	if !e.Has(Accessed) {
		t.Error("Update not applied")
	}
}

func TestTableSetLargePanics(t *testing.T) {
	tab := New()
	defer func() {
		if recover() == nil {
			t.Error("Set with Large must panic")
		}
	}()
	tab.Set(0, MakePTE(0, Present|Large))
}

func TestTable2M(t *testing.T) {
	tab := New()
	if err := tab.Set2M(5, MakePTE(0, Writable)); err == nil {
		t.Error("unaligned Set2M must fail")
	}
	if err := tab.Set2M(1024, MakePTE(512, Writable)); err != nil {
		t.Fatal(err)
	}
	// Any vpn inside the 2M region resolves to the large entry.
	e, size, ok := tab.Lookup(1024 + 100)
	if !ok || size != sim.Size2M || e.PFN() != 512 {
		t.Fatalf("Lookup in 2M = %v %v %v", e, size, ok)
	}
	if tab.PresentPages() != sim.Span2M || tab.Mappings() != 1 {
		t.Errorf("present=%d mappings=%d", tab.PresentPages(), tab.Mappings())
	}
	if !tab.Update2M(1024+7, func(e PTE) PTE { return e.With(Dirty) }) {
		t.Error("Update2M failed")
	}
	e, _, _ = tab.Lookup(1024)
	if !e.Has(Dirty) {
		t.Error("Update2M not applied")
	}
	old := tab.Clear2M(1024 + 300)
	if old.PFN() != 512 {
		t.Errorf("Clear2M returned %v", old)
	}
	if _, _, ok := tab.Lookup(1024); ok || tab.PresentPages() != 0 {
		t.Error("2M mapping not removed")
	}
}

func TestTableMixedSizesInSame2MBlock(t *testing.T) {
	// The paper: "there are no restrictions for mixing the page sizes
	// (4kB, 64kB, 2MB) within a single address block (2MB)" — for 4k
	// and 64k. A 2M mapping, of course, occupies its whole block.
	tab := New()
	tab.Set(0, MakePTE(1, Present))
	if err := tab.Set64k(16, 32, Writable); err != nil {
		t.Fatal(err)
	}
	e, size, ok := tab.Lookup(0)
	if !ok || size != sim.Size4k || e.PFN() != 1 {
		t.Error("4k entry disturbed by 64k group in same block")
	}
	e, size, ok = tab.Lookup(20)
	if !ok || size != sim.Size64k || e.PFN() != 36 {
		t.Errorf("64k member = %v %v %v", e, size, ok)
	}
}

func TestTable2MConflicts(t *testing.T) {
	tab := New()
	tab.Set(1024, MakePTE(1, Present))
	if err := tab.Set2M(1024, MakePTE(0, 0)); err == nil {
		t.Error("Set2M over live 4k mapping must fail")
	}
	tab.Clear(1024)
	if err := tab.Set2M(1024, MakePTE(0, 0)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("4k Set inside live 2M mapping must panic")
		}
	}()
	tab.Set(1030, MakePTE(9, Present))
}

func TestForEachPresent(t *testing.T) {
	tab := New()
	tab.Set(3, MakePTE(1, Present))
	tab.Set(700, MakePTE(2, Present))
	if err := tab.Set2M(2048, MakePTE(100, 0)); err != nil {
		t.Fatal(err)
	}
	var got []sim.PageID
	var sizes []sim.PageSize
	tab.ForEachPresent(func(vpn sim.PageID, e PTE, size sim.PageSize) {
		got = append(got, vpn)
		sizes = append(sizes, size)
	})
	want := []sim.PageID{3, 700, 2048}
	if len(got) != len(want) {
		t.Fatalf("visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order: got %v want %v", got, want)
		}
	}
	if sizes[2] != sim.Size2M {
		t.Error("2M entry size wrong")
	}
}

func TestTableCountInvariantProperty(t *testing.T) {
	// Property: after arbitrary set/clear sequences, PresentPages equals
	// the count observed by ForEachPresent.
	f := func(ops []uint16) bool {
		tab := New()
		for _, op := range ops {
			vpn := sim.PageID(op % 2048)
			if op&0x8000 != 0 {
				tab.Clear(vpn)
			} else {
				tab.Set(vpn, MakePTE(int64(op), Present))
			}
		}
		n := 0
		tab.ForEachPresent(func(sim.PageID, PTE, sim.PageSize) { n++ })
		return n == tab.PresentPages() && n == tab.Mappings()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
