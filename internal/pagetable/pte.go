// Package pagetable implements the software page tables of the
// simulated kernel: x86-style 64-bit PTEs in a four-level radix tree,
// plus the Xeon Phi's experimental 64 kB page-group format (16
// consecutive, aligned 4 kB PTEs carrying a hint bit, with accessed and
// dirty bits landing on individual sub-entries so statistics collection
// must iterate the group — exactly as described in §4 of the paper).
//
// The package provides the Table used both by the regular shared page
// table (one tree per address space, one lock) and by PSPT (one tree
// per core for the computation area).
package pagetable

import "fmt"

// PTE is a simulated x86 page table entry. The bit layout follows the
// hardware: present, writable, accessed, dirty, page-size, plus the
// Phi-specific 64 kB hint bit (a software-available bit repurposed by
// the hardware extension).
type PTE uint64

// PTE flag bits.
const (
	// Present marks a valid translation.
	Present PTE = 1 << 0
	// Writable allows stores through this mapping.
	Writable PTE = 1 << 1
	// Accessed is set by "hardware" on the first touch after clear.
	Accessed PTE = 1 << 5
	// Dirty is set by "hardware" on the first store after load.
	Dirty PTE = 1 << 6
	// Large marks a 2 MB mapping (set on a PMD-level entry).
	Large PTE = 1 << 7
	// Hint64k is the Xeon Phi's experimental bit telling cores to cache
	// this entry (and its 15 aligned successors) as one 64 kB TLB entry.
	Hint64k PTE = 1 << 11

	flagMask PTE = (1 << 12) - 1
	pfnShift     = 12
)

// MakePTE assembles an entry from a physical frame number and flags.
func MakePTE(pfn int64, flags PTE) PTE {
	return PTE(pfn)<<pfnShift | (flags & flagMask)
}

// PFN extracts the physical frame number.
func (p PTE) PFN() int64 { return int64(p >> pfnShift) }

// Has reports whether all the given flag bits are set.
func (p PTE) Has(f PTE) bool { return p&f == f }

// With returns the entry with the given flags set.
func (p PTE) With(f PTE) PTE { return p | (f & flagMask) }

// Without returns the entry with the given flags cleared.
func (p PTE) Without(f PTE) PTE { return p &^ (f & flagMask) }

// String renders the entry with its flag letters.
func (p PTE) String() string {
	if !p.Has(Present) {
		return "PTE{not-present}"
	}
	s := fmt.Sprintf("PTE{pfn=%d", p.PFN())
	for _, f := range []struct {
		bit  PTE
		name string
	}{{Writable, "W"}, {Accessed, "A"}, {Dirty, "D"}, {Large, "2M"}, {Hint64k, "64k"}} {
		if p.Has(f.bit) {
			s += " " + f.name
		}
	}
	return s + "}"
}
