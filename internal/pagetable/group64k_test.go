package pagetable

import (
	"testing"
	"testing/quick"

	"cmcp/internal/sim"
)

func TestSet64kValidation(t *testing.T) {
	tab := New()
	if err := tab.Set64k(5, 0, 0); err == nil {
		t.Error("unaligned vpn must fail")
	}
	if err := tab.Set64k(16, 5, 0); err == nil {
		t.Error("unaligned pfn must fail")
	}
	if err := tab.Set64k(16, 16, Large); err == nil {
		t.Error("Large flag must fail")
	}
	if err := tab.Set64k(16, 32, Writable); err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate64k(16); err != nil {
		t.Errorf("well-formed group invalid: %v", err)
	}
	if err := tab.Validate64k(25); err != nil {
		t.Errorf("validation via member vpn: %v", err)
	}
	if tab.PresentPages() != 16 || tab.Mappings() != 16 {
		t.Errorf("present=%d mappings=%d", tab.PresentPages(), tab.Mappings())
	}
}

func TestIs64k(t *testing.T) {
	tab := New()
	tab.Set(0, MakePTE(1, Present))
	if tab.Is64k(0) {
		t.Error("plain 4k entry reported as 64k")
	}
	if err := tab.Set64k(16, 16, 0); err != nil {
		t.Fatal(err)
	}
	if !tab.Is64k(16) || !tab.Is64k(31) {
		t.Error("group members must report 64k")
	}
	if tab.Is64k(32) {
		t.Error("page outside group reported as 64k")
	}
}

func TestTouch64kSetsIndividualSubEntry(t *testing.T) {
	// The paper's key oddity: the dirty bit lands on the 4 kB sub-entry
	// actually written, not on the group's first entry.
	tab := New()
	if err := tab.Set64k(0, 0, Writable); err != nil {
		t.Fatal(err)
	}
	tab.Touch64k(9, true)
	first, _, _ := tab.Lookup(0)
	ninth, _, _ := tab.Lookup(9)
	if first.Has(Dirty) || first.Has(Accessed) {
		t.Error("first entry must not carry the attribute bits")
	}
	if !ninth.Has(Dirty) || !ninth.Has(Accessed) {
		t.Error("touched sub-entry must carry accessed+dirty")
	}
}

func TestStat64kIteratesGroup(t *testing.T) {
	tab := New()
	if err := tab.Set64k(32, 32, Writable); err != nil {
		t.Fatal(err)
	}
	a, d := tab.Stat64k(32, false)
	if a || d {
		t.Error("untouched group must be clean")
	}
	tab.Touch64k(40, false) // read on member 8
	a, d = tab.Stat64k(35, false)
	if !a || d {
		t.Errorf("accessed=%v dirty=%v, want true,false", a, d)
	}
	tab.Touch64k(47, true) // write on member 15
	a, d = tab.Stat64k(32, true)
	if !a || !d {
		t.Error("accessed+dirty must be visible via group stat")
	}
	// clear=true must have cleared accessed but preserved dirty.
	a, d = tab.Stat64k(32, false)
	if a {
		t.Error("accessed bit must have been cleared by scanning")
	}
	if !d {
		t.Error("dirty must survive the accessed-bit scan")
	}
}

func TestClear64k(t *testing.T) {
	tab := New()
	if err := tab.Set64k(64, 128, 0); err != nil {
		t.Fatal(err)
	}
	first := tab.Clear64k(70) // clearing via a member vpn
	if first.PFN() != 128 {
		t.Errorf("Clear64k returned pfn %d, want 128", first.PFN())
	}
	for i := sim.PageID(64); i < 80; i++ {
		if _, _, ok := tab.Lookup(i); ok {
			t.Fatalf("member %d survived Clear64k", i)
		}
	}
	if tab.PresentPages() != 0 {
		t.Error("count leak after Clear64k")
	}
}

func TestGroup64kInvariantProperty(t *testing.T) {
	// Property: any aligned Set64k yields a group that passes
	// Validate64k from every member VPN.
	f := func(g uint8, pf uint8) bool {
		tab := New()
		vpn := sim.PageID(g%64) * sim.Span64k
		pfn := int64(pf%64) * sim.Span64k
		if err := tab.Set64k(vpn, pfn, Writable); err != nil {
			return false
		}
		for i := sim.PageID(0); i < sim.Span64k; i++ {
			if tab.Validate64k(vpn+i) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate64kDetectsCorruption(t *testing.T) {
	tab := New()
	if err := tab.Set64k(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt one member: break contiguity.
	tab.Set(5, MakePTE(999, Present|Hint64k))
	if err := tab.Validate64k(0); err == nil {
		t.Error("validation must detect non-contiguous member")
	}
	// Missing member.
	tab2 := New()
	if err := tab2.Set64k(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	tab2.Clear(7)
	if err := tab2.Validate64k(0); err == nil {
		t.Error("validation must detect missing member")
	}
	// No group at all.
	if err := New().Validate64k(0); err == nil {
		t.Error("validation of absent group must fail")
	}
}
