package pagetable

import (
	"testing"

	"cmcp/internal/sim"
)

// FuzzTableOps drives the radix table with an arbitrary operation
// stream and checks the structural invariants after every step:
// PresentPages/Mappings match a full walk, lookups after Set resolve,
// and 64 kB groups stay well formed.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{9, 9, 9, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		tab := New()
		groups := make(map[sim.PageID]bool) // live 64k groups we created
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			vpn := sim.PageID(arg) * 3 % 4096
			switch op % 5 {
			case 0: // 4k set, avoiding live 64k groups and 2M blocks
				if tab.Is64k(vpn) {
					continue
				}
				if _, size, ok := tab.Lookup(vpn); ok && size == sim.Size2M {
					continue
				}
				tab.Set(vpn, MakePTE(int64(arg), Present))
				if e, _, ok := tab.Lookup(vpn); !ok || e.PFN() != int64(arg) {
					t.Fatal("Set not visible")
				}
			case 1: // clear 4k (harmless on group members? Clear only non-group)
				if tab.Is64k(vpn) {
					continue
				}
				tab.Clear(vpn)
			case 2: // 64k group set on a free aligned slot
				base := sim.Size64k.Align(vpn)
				free := true
				for j := sim.PageID(0); j < sim.Span64k; j++ {
					if _, _, ok := tab.Lookup(base + j); ok {
						free = false
						break
					}
				}
				if !free {
					continue
				}
				if err := tab.Set64k(base, int64(base), Writable); err != nil {
					t.Fatalf("Set64k: %v", err)
				}
				groups[base] = true
			case 3: // clear a group we own
				base := sim.Size64k.Align(vpn)
				if groups[base] {
					tab.Clear64k(base)
					delete(groups, base)
				}
			case 4: // touch
				tab.Touch64k(vpn, arg%2 == 0)
			}
		}
		// Invariants: counters match a full walk; groups validate.
		n := 0
		tab.ForEachPresent(func(sim.PageID, PTE, sim.PageSize) { n++ })
		if n != tab.PresentPages() {
			t.Fatalf("walk found %d pages, counter says %d", n, tab.PresentPages())
		}
		for base := range groups {
			if err := tab.Validate64k(base); err != nil {
				t.Fatalf("group %d invalid: %v", base, err)
			}
		}
	})
}
