package pagetable

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPTEBits(t *testing.T) {
	e := MakePTE(1234, Present|Writable)
	if e.PFN() != 1234 {
		t.Errorf("PFN = %d", e.PFN())
	}
	if !e.Has(Present) || !e.Has(Writable) || e.Has(Dirty) {
		t.Error("flag bits wrong")
	}
	e = e.With(Dirty | Accessed)
	if !e.Has(Dirty | Accessed) {
		t.Error("With failed")
	}
	if e.PFN() != 1234 {
		t.Error("flags clobbered PFN")
	}
	e = e.Without(Accessed)
	if e.Has(Accessed) || !e.Has(Dirty) {
		t.Error("Without failed")
	}
}

func TestPTEFlagsNeverTouchPFN(t *testing.T) {
	f := func(pfn uint32, flags uint16) bool {
		e := MakePTE(int64(pfn), PTE(flags))
		if e.PFN() != int64(pfn) {
			return false
		}
		e2 := e.With(Accessed | Dirty | Hint64k).Without(Writable)
		return e2.PFN() == int64(pfn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPTEString(t *testing.T) {
	if s := PTE(0).String(); !strings.Contains(s, "not-present") {
		t.Error(s)
	}
	e := MakePTE(7, Present|Writable|Hint64k)
	s := e.String()
	for _, want := range []string{"pfn=7", "W", "64k"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
