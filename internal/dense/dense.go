// Package dense provides the flat, page-indexed data structures the
// simulator's hot path runs on. Workload layouts assign page IDs
// densely from 0..TotalPages (see workload.Build), so every map keyed
// by sim.PageID in the per-touch path — TLB sets, PSPT mapping records,
// per-page locks, policy indexes — can be a slice indexed by page
// instead. That removes hashing, bucket chasing and per-entry
// allocation from the inner simulation loop.
//
// The package also provides Scratch, a per-worker slab recycler that
// lets RunMany sweeps reuse the big per-run slices (TLB state, policy
// lists, stats buffers) across consecutive Simulate calls instead of
// reallocating them for every config.
//
// All structures here are bookkeeping-identical to the maps they
// replace: presence is encoded explicitly (a zero sentinel), so the
// swap sites preserve bit-identical simulation results.
package dense

import "cmcp/internal/sim"

// Scratch is a per-worker slab recycler. Get methods hand out zeroed
// slices drawn from free lists; Recycle zeroes every slice handed out
// since the last Recycle (over its full capacity) and returns it to the
// free lists. A nil *Scratch is valid and degrades to plain make, so
// single-run callers need no special casing.
//
// Scratch is not safe for concurrent use: each RunMany worker owns one.
type Scratch struct {
	u8  slabs[uint8]
	i32 slabs[int32]
	u64 slabs[uint64]
	cyc slabs[sim.Cycles]
	res slabs[sim.Resource]
}

// U8 returns a zeroed []uint8 of length n.
func (s *Scratch) U8(n int) []uint8 {
	if s == nil {
		return make([]uint8, n)
	}
	return s.u8.get(n)
}

// I32 returns a zeroed []int32 of length n.
func (s *Scratch) I32(n int) []int32 {
	if s == nil {
		return make([]int32, n)
	}
	return s.i32.get(n)
}

// U64 returns a zeroed []uint64 of length n.
func (s *Scratch) U64(n int) []uint64 {
	if s == nil {
		return make([]uint64, n)
	}
	return s.u64.get(n)
}

// Cycles returns a zeroed []sim.Cycles of length n.
func (s *Scratch) Cycles(n int) []sim.Cycles {
	if s == nil {
		return make([]sim.Cycles, n)
	}
	return s.cyc.get(n)
}

// Resources returns a zeroed []sim.Resource of length n.
func (s *Scratch) Resources(n int) []sim.Resource {
	if s == nil {
		return make([]sim.Resource, n)
	}
	return s.res.get(n)
}

// Recycle reclaims every slice handed out since the last Recycle. The
// caller promises that no such slice is referenced anymore (in RunMany,
// the previous run's Result holds only independently allocated data).
// Slices that outgrew their capacity via append migrate to fresh
// backing arrays automatically; the originals are still reclaimed here.
func (s *Scratch) Recycle() {
	if s == nil {
		return
	}
	s.u8.recycle()
	s.i32.recycle()
	s.u64.recycle()
	s.cyc.recycle()
	s.res.recycle()
}

// slabs is one element type's free list plus the outstanding slices.
type slabs[T any] struct {
	free [][]T
	used [][]T
}

// get returns a zeroed slice of length n, reusing a free slab whose
// capacity fits when one exists. Free slabs were zeroed over their full
// capacity at recycle time, and fresh allocations are zeroed by make,
// so the result is always all-zero.
func (p *slabs[T]) get(n int) []T {
	for i, sl := range p.free {
		if cap(sl) >= n {
			last := len(p.free) - 1
			p.free[i] = p.free[last]
			p.free[last] = nil
			p.free = p.free[:last]
			sl = sl[:n]
			p.used = append(p.used, sl)
			return sl
		}
	}
	// Round capacity up so runs with slightly different footprints can
	// still share slabs.
	sl := make([]T, n, ceilPow2(n))
	p.used = append(p.used, sl)
	return sl
}

// recycle zeroes every outstanding slab over its full capacity and
// moves it to the free list.
func (p *slabs[T]) recycle() {
	for i, sl := range p.used {
		full := sl[:cap(sl)]
		clear(full)
		p.free = append(p.free, full[:0])
		p.used[i] = nil
	}
	p.used = p.used[:0]
}

// ceilPow2 rounds n up to the next power of two (minimum 8).
func ceilPow2(n int) int {
	c := 8
	for c < n {
		c <<= 1
	}
	return c
}
