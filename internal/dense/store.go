package dense

// Store is a chunked object pool with stable pointers and int32
// handles. Records live in fixed-size chunks that are never moved, so
// a *T obtained from At stays valid for the record's lifetime even as
// the store grows — the property pspt relies on for *Mapping. Freed
// slots are zeroed and recycled through a free list, so a re-allocated
// handle behaves exactly like a freshly allocated record.
type Store[T any] struct {
	chunks [][]T
	free   []int32
	next   int32 // lowest never-allocated handle
}

const (
	storeChunkBits = 8
	storeChunkSize = 1 << storeChunkBits
	storeChunkMask = storeChunkSize - 1
)

// Alloc returns a handle and pointer to a zeroed record.
func (s *Store[T]) Alloc() (int32, *T) {
	if n := len(s.free); n > 0 {
		h := s.free[n-1]
		s.free = s.free[:n-1]
		return h, s.At(h)
	}
	h := s.next
	s.next++
	if int(h)>>storeChunkBits == len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, storeChunkSize))
	}
	return h, s.At(h)
}

// At returns the record for handle h.
func (s *Store[T]) At(h int32) *T {
	return &s.chunks[h>>storeChunkBits][h&storeChunkMask]
}

// Free zeroes h's record and recycles the handle. The caller must not
// use the handle or previously obtained pointers afterwards.
func (s *Store[T]) Free(h int32) {
	var zero T
	*s.At(h) = zero
	s.free = append(s.free, h)
}
