package dense

import "cmcp/internal/sim"

// List is an intrusive doubly-linked list over page-indexed link
// slices: O(1) membership, push, remove and pop with zero per-node
// allocation. Links store page+1 so zeroed slabs mean "not linked";
// a page is on the list iff it has a neighbour or is the head.
type List struct {
	sc         *Scratch
	prev, next []int32 // page -> neighbour page + 1; 0 = none
	head, tail int32   // page + 1; 0 = empty
	n          int
}

// NewList returns an empty list pre-sized for pages in [0, hint).
func NewList(sc *Scratch, hint int) List {
	return List{sc: sc, prev: sc.I32(hint), next: sc.I32(hint)}
}

// Len returns the number of elements.
func (l *List) Len() int { return l.n }

// Has reports whether page is on the list.
func (l *List) Has(page sim.PageID) bool {
	if page < 0 || page >= sim.PageID(len(l.prev)) {
		return false
	}
	return l.prev[page] != 0 || l.next[page] != 0 || l.head == int32(page)+1
}

// PushTail appends page as the newest element. The page must not be on
// the list already (callers check Has, as the map version did).
func (l *List) PushTail(page sim.PageID) {
	if page >= sim.PageID(len(l.prev)) {
		l.grow(int(page) + 1)
	}
	p := int32(page) + 1
	l.prev[page] = l.tail
	l.next[page] = 0
	if l.tail != 0 {
		l.next[l.tail-1] = p
	} else {
		l.head = p
	}
	l.tail = p
	l.n++
}

// PopHead removes and returns the oldest element.
func (l *List) PopHead() (sim.PageID, bool) {
	if l.head == 0 {
		return 0, false
	}
	page := sim.PageID(l.head - 1)
	l.Remove(page)
	return page, true
}

// Remove deletes page if present, reporting whether it was.
func (l *List) Remove(page sim.PageID) bool {
	if !l.Has(page) {
		return false
	}
	prev, next := l.prev[page], l.next[page]
	if prev != 0 {
		l.next[prev-1] = next
	} else {
		l.head = next
	}
	if next != 0 {
		l.prev[next-1] = prev
	} else {
		l.tail = prev
	}
	l.prev[page], l.next[page] = 0, 0
	l.n--
	return true
}

// MoveToTail refreshes page as the newest element.
func (l *List) MoveToTail(page sim.PageID) bool {
	if !l.Remove(page) {
		return false
	}
	l.PushTail(page)
	return true
}

// ForEachFromHead iterates oldest-to-newest until fn returns false.
// fn must not mutate the list.
func (l *List) ForEachFromHead(fn func(page sim.PageID) bool) {
	for p := l.head; p != 0; p = l.next[p-1] {
		if !fn(sim.PageID(p - 1)) {
			return
		}
	}
}

func (l *List) grow(n int) {
	c := ceilPow2(n)
	np := l.sc.I32(c)
	nn := l.sc.I32(c)
	copy(np, l.prev)
	copy(nn, l.next)
	l.prev, l.next = np, nn
}
