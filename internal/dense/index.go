package dense

import "cmcp/internal/sim"

// Index is a page-indexed replacement for map[sim.PageID]int32-shaped
// indexes (heap positions, slice offsets, store handles). Values are
// stored as v+1 so the zero slice element means "absent"; slabs from a
// Scratch therefore start out empty without an O(n) sentinel fill.
type Index struct {
	sc *Scratch
	v  []int32
}

// NewIndex returns an index pre-sized for pages in [0, hint).
func NewIndex(sc *Scratch, hint int) Index {
	return Index{sc: sc, v: sc.I32(hint)}
}

// Get returns the value stored for page, or -1 when absent.
func (x *Index) Get(page sim.PageID) int32 {
	if page < 0 || page >= sim.PageID(len(x.v)) {
		return -1
	}
	return x.v[page] - 1
}

// Has reports whether page has a stored value.
func (x *Index) Has(page sim.PageID) bool {
	return page >= 0 && page < sim.PageID(len(x.v)) && x.v[page] != 0
}

// Set stores v (which must be >= 0) for page, growing as needed.
func (x *Index) Set(page sim.PageID, v int32) {
	if page >= sim.PageID(len(x.v)) {
		x.grow(int(page) + 1)
	}
	x.v[page] = v + 1
}

// Delete removes page's value, reporting whether one was present.
func (x *Index) Delete(page sim.PageID) bool {
	if page < 0 || page >= sim.PageID(len(x.v)) || x.v[page] == 0 {
		return false
	}
	x.v[page] = 0
	return true
}

// Cap returns the exclusive upper bound of pages currently indexable
// without growth (Range iterates [0, Cap)).
func (x *Index) Cap() int { return len(x.v) }

// Range calls fn for every present page in ascending page order until
// fn returns false. fn must not mutate the index.
func (x *Index) Range(fn func(page sim.PageID, v int32) bool) {
	for p, raw := range x.v {
		if raw != 0 && !fn(sim.PageID(p), raw-1) {
			return
		}
	}
}

func (x *Index) grow(n int) {
	nv := x.sc.I32(ceilPow2(n))
	copy(nv, x.v)
	x.v = nv
}

// Words is a page-indexed replacement for map[sim.PageID]uint64-shaped
// tables (packed mapping records, counters). The zero value of an
// element means "absent"; callers encode presence into their packing.
type Words struct {
	sc *Scratch
	v  []uint64
}

// NewWords returns a table pre-sized for pages in [0, hint).
func NewWords(sc *Scratch, hint int) Words {
	return Words{sc: sc, v: sc.U64(hint)}
}

// Get returns the word stored for page (zero when never set).
func (w *Words) Get(page sim.PageID) uint64 {
	if page < 0 || page >= sim.PageID(len(w.v)) {
		return 0
	}
	return w.v[page]
}

// Set stores word for page, growing as needed.
func (w *Words) Set(page sim.PageID, word uint64) {
	if page >= sim.PageID(len(w.v)) {
		if word == 0 {
			return // zero is "absent"; nothing to record
		}
		nv := w.sc.U64(ceilPow2(int(page) + 1))
		copy(nv, w.v)
		w.v = nv
	}
	w.v[page] = word
}

// Len returns the exclusive upper bound of pages currently stored.
func (w *Words) Len() int { return len(w.v) }

// Slice exposes the backing slice for tight loops (decay sweeps). The
// caller may mutate elements but not the length.
func (w *Words) Slice() []uint64 { return w.v }
