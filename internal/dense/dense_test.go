package dense

import (
	"testing"

	"cmcp/internal/sim"
)

func TestScratchRecycleZeroesAndReuses(t *testing.T) {
	sc := &Scratch{}
	a := sc.I32(100)
	for i := range a {
		a[i] = int32(i) + 1
	}
	base := &a[0]
	sc.Recycle()
	b := sc.I32(50)
	if &b[0] != base {
		t.Fatalf("recycled slab not reused")
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("recycled slab not zeroed at %d: %d", i, v)
		}
	}
	// The tail beyond the requested length must be zero too, so a later
	// larger request sees clean memory.
	full := b[:cap(b)]
	for i, v := range full {
		if v != 0 {
			t.Fatalf("slab capacity tail dirty at %d: %d", i, v)
		}
	}
}

func TestScratchNilFallsBackToMake(t *testing.T) {
	var sc *Scratch
	if got := len(sc.U8(7)); got != 7 {
		t.Fatalf("nil scratch U8 len = %d", got)
	}
	if got := len(sc.Resources(3)); got != 3 {
		t.Fatalf("nil scratch Resources len = %d", got)
	}
	sc.Recycle() // must not panic
}

func TestIndexBasics(t *testing.T) {
	x := NewIndex(nil, 4)
	if x.Get(0) != -1 || x.Has(2) {
		t.Fatal("empty index not empty")
	}
	x.Set(0, 0) // value 0 must be distinguishable from absent
	x.Set(2, 7)
	x.Set(100, 3) // beyond hint: grows
	if x.Get(0) != 0 || x.Get(2) != 7 || x.Get(100) != 3 {
		t.Fatalf("got %d %d %d", x.Get(0), x.Get(2), x.Get(100))
	}
	if x.Get(-1) != -1 || x.Get(1000) != -1 {
		t.Fatal("out-of-range reads must be absent")
	}
	if !x.Delete(2) || x.Delete(2) || x.Has(2) {
		t.Fatal("delete misbehaved")
	}
	var pages []sim.PageID
	var vals []int32
	x.Range(func(p sim.PageID, v int32) bool {
		pages = append(pages, p)
		vals = append(vals, v)
		return true
	})
	if len(pages) != 2 || pages[0] != 0 || pages[1] != 100 || vals[0] != 0 || vals[1] != 3 {
		t.Fatalf("range got %v %v", pages, vals)
	}
}

func TestWords(t *testing.T) {
	w := NewWords(nil, 2)
	w.Set(1, 42)
	w.Set(50, 99)
	if w.Get(1) != 42 || w.Get(50) != 99 || w.Get(0) != 0 || w.Get(999) != 0 {
		t.Fatal("words reads wrong")
	}
	w.Set(1, 0)
	if w.Get(1) != 0 {
		t.Fatal("clearing failed")
	}
	w.Set(10_000, 0) // zero beyond bounds must not force growth
	if w.Len() >= 10_000 {
		t.Fatal("zero set grew the table")
	}
}

// TestListMatchesReference drives List and a simple slice model through
// an interleaved op sequence and checks order and membership agree.
func TestListMatchesReference(t *testing.T) {
	l := NewList(nil, 4)
	var ref []sim.PageID
	refHas := func(p sim.PageID) bool {
		for _, q := range ref {
			if q == p {
				return true
			}
		}
		return false
	}
	refRemove := func(p sim.PageID) {
		for i, q := range ref {
			if q == p {
				ref = append(ref[:i], ref[i+1:]...)
				return
			}
		}
	}
	rng := sim.NewRNG(7)
	for step := 0; step < 5000; step++ {
		p := sim.PageID(rng.Intn(64))
		switch rng.Intn(4) {
		case 0:
			if !l.Has(p) {
				l.PushTail(p)
				ref = append(ref, p)
			}
		case 1:
			got := l.Remove(p)
			want := refHas(p)
			if got != want {
				t.Fatalf("step %d: Remove(%d) = %v want %v", step, p, got, want)
			}
			refRemove(p)
		case 2:
			got := l.MoveToTail(p)
			if got != refHas(p) {
				t.Fatalf("step %d: MoveToTail(%d) = %v", step, p, got)
			}
			if got {
				refRemove(p)
				ref = append(ref, p)
			}
		case 3:
			got, ok := l.PopHead()
			if ok != (len(ref) > 0) {
				t.Fatalf("step %d: PopHead ok = %v", step, ok)
			}
			if ok {
				if got != ref[0] {
					t.Fatalf("step %d: PopHead = %d want %d", step, got, ref[0])
				}
				ref = ref[1:]
			}
		}
		if l.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d want %d", step, l.Len(), len(ref))
		}
	}
	var order []sim.PageID
	l.ForEachFromHead(func(p sim.PageID) bool {
		order = append(order, p)
		return true
	})
	if len(order) != len(ref) {
		t.Fatalf("final order len %d want %d", len(order), len(ref))
	}
	for i := range order {
		if order[i] != ref[i] {
			t.Fatalf("final order[%d] = %d want %d", i, order[i], ref[i])
		}
	}
}

func TestStoreStablePointersAndRecycling(t *testing.T) {
	var st Store[[4]uint64]
	h0, p0 := st.Alloc()
	// Force several chunks so chunk-slice growth happens.
	for i := 0; i < 3*storeChunkSize; i++ {
		_, p := st.Alloc()
		p[0] = uint64(i)
	}
	if st.At(h0) != p0 {
		t.Fatal("pointer moved across growth")
	}
	p0[1] = 77
	st.Free(h0)
	h1, p1 := st.Alloc() // free list: same slot back, zeroed
	if h1 != h0 {
		t.Fatalf("handle %d want recycled %d", h1, h0)
	}
	if *p1 != ([4]uint64{}) {
		t.Fatalf("recycled record not zeroed: %v", *p1)
	}
}
