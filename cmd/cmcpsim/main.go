// Command cmcpsim drives the CMCP many-core paging simulator.
//
// Reproduce the paper's evaluation (figures and table):
//
//	cmcpsim -exp all                 # everything, full scale
//	cmcpsim -exp fig7 -scale 0.25    # one experiment, smaller/faster
//	cmcpsim -exp table1 -csv         # machine-readable output
//
// Extension experiments (beyond the paper) run by ID:
//
//	cmcpsim -exp numa                      # 2-socket shootdown-filtering grid
//	cmcpsim -exp tenants -tenants 64 -zipf-s 1.2 -churn 500
//
// Multi-socket single runs:
//
//	cmcpsim -run -cores 60 -sockets 2 -policy CMCP
//
// Long sweeps checkpoint to a journal (resume after a crash picks up
// where it left off) and can be split across processes by shard:
//
//	cmcpsim -exp all -journal sweep.jsonl -progress
//	cmcpsim -exp all -journal s0.jsonl -shard 0/2   # CI job A
//	cmcpsim -exp all -journal s1.jsonl -shard 1/2   # CI job B
//	cmcpsim -exp all -journal s0.jsonl -journal-import s1.jsonl  # merge
//
// Or run the sweep as a crash-tolerant coordinator with a worker
// fleet: workers lease runs over HTTP, heartbeat while simulating, and
// any kill -9 or coordinator restart is recovered from the journal —
// the merged result is bit-identical to a local sweep:
//
//	cmcpsim -exp fig7 -journal sweep.jsonl -coordinate 127.0.0.1:9152
//	cmcpsim -worker http://127.0.0.1:9152     # as many as you like
//	cmcpsim -compact-journal sweep.jsonl      # dedup after retries
//
// Run a single simulation:
//
//	cmcpsim -run -workload cg.B -cores 56 -ratio 0.4 -policy CMCP -p 0.25
//
// Record an event trace and time series of a run (open the .json in
// Perfetto / chrome://tracing; replay the .jsonl with cmcptrace):
//
//	cmcpsim -run -policy CMCP -trace -trace-out run.json -sample-every 100000
//
// Emit machine-readable benchmark results:
//
//	cmcpsim -bench -json -bench-out BENCH_cmcp.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"cmcp"
	"cmcp/internal/plot"
	"cmcp/internal/stats"
)

// traceOptions bundles the observability flags of -run mode.
type traceOptions struct {
	enabled     bool
	out         string
	sampleEvery uint64
}

// serveOptions bundles the live-telemetry flags.
type serveOptions struct {
	addr  string
	grace time.Duration
}

// startTelemetry starts the live telemetry server when -serve is set.
// It returns the server (nil when disabled) and a stop function that
// holds the server open for the grace period — so a scraper arriving
// just as a fast sweep finishes still sees the final state — and then
// shuts it down.
func startTelemetry(sopt serveOptions, progress *cmcp.SweepProgress) (*cmcp.TelemetryServer, func(), error) {
	if sopt.addr == "" {
		return nil, func() {}, nil
	}
	srv := cmcp.NewTelemetryServer(progress)
	if err := srv.Start(sopt.addr); err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "[telemetry] serving http://%s/ (/metrics, /progress, /debug/pprof)\n", srv.Addr())
	stop := func() {
		if sopt.grace > 0 {
			fmt.Fprintf(os.Stderr, "[telemetry] holding server open for %s\n", sopt.grace)
			time.Sleep(sopt.grace)
		}
		srv.Close()
	}
	return srv, stop, nil
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment to regenerate: fig6|fig7|fig8|fig9|fig10|table1|sense|all, or an extension: numa|tenants")
		engine   = flag.String("engine", "serial", "simulation engine: serial|parallel (bit-identical results; parallel is faster)")
		quick    = flag.Bool("quick", false, "shrink sweeps (fewer core counts and ratio points)")
		scale    = flag.Float64("scale", 1.0, "workload footprint/work multiplier")
		seed     = flag.Uint64("seed", 42, "random seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		plotFlag = flag.Bool("plot", false, "render numeric tables as ASCII charts too")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		repeats  = flag.Int("repeats", 1, "replicate each run under N seeds and average")

		journal       = flag.String("journal", "", "with -exp: checkpoint completed runs to this JSONL journal and resume from it")
		journalImport = flag.String("journal-import", "", "with -exp: comma-separated read-only journals to merge (other shards' output)")
		shard         = flag.String("shard", "", "with -exp: run only shard i of n, as \"i/n\"; partitions the grid by content key")
		progress      = flag.Bool("progress", false, "with -exp: report sweep progress (runs done/total, runs/s, ETA) on stderr")
		scheduleFrom  = flag.String("schedule-from", "", "with -exp: order pending runs longest-first using runtimes recorded in this journal (a previous run's -journal)")

		coordinate  = flag.String("coordinate", "", "with -exp: serve the sweep as a coordinator on this address (e.g. 127.0.0.1:9152) and dispatch runs to -worker processes instead of executing locally; requires -journal")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "with -coordinate: lease expiry without a heartbeat")
		maxAttempts = flag.Int("max-attempts", 3, "with -coordinate: failed leases per key before it is quarantined as poisoned")
		linger      = flag.Duration("linger", 3*time.Second, "with -coordinate: keep serving this long after the sweep finishes so workers hear 'done' and exit cleanly")

		workerBase = flag.String("worker", "", "run as a sweep worker against this coordinator URL (e.g. http://host:9152) until the sweep is done")
		workerName = flag.String("worker-name", "", "with -worker: name reported in leases and logs (default worker-<pid>)")

		compactJournal = flag.String("compact-journal", "", "compact this sweep journal (keep the last entry per key, drop torn lines, sort) and exit")
		compactOut     = flag.String("compact-out", "", "with -compact-journal: output path (default: compact in place)")

		run      = flag.Bool("run", false, "run a single simulation instead of an experiment")
		wlName   = flag.String("workload", "SCALE", "workload: bt.B|lu.B|cg.B|SCALE")
		cores    = flag.Int("cores", 56, "application cores")
		ratio    = flag.Float64("ratio", 0.5, "device memory as a fraction of the footprint")
		polName  = flag.String("policy", "CMCP", "policy: FIFO|LRU|CMCP|CLOCK|LFU|Random")
		p        = flag.Float64("p", -1, "CMCP prioritized-pages ratio (-1 = default)")
		dynamicP = flag.Bool("dynamic-p", false, "enable CMCP's fault-feedback p tuner")
		tables   = flag.String("tables", "pspt", "page tables: pspt|regular")
		pageSize = flag.String("pagesize", "4k", "page size: 4k|64k|2m|adaptive")

		tenants = flag.Int("tenants", 0, "with -run or -exp tenants: simulate N tenant address spaces contending for the frame pool (0 = single-tenant -workload run)")
		zipfS   = flag.Float64("zipf-s", 1.1, "with -tenants: Zipfian tenant-popularity exponent (higher = more skew)")
		churn   = flag.Int("churn", 0, "with -tenants: rotate the hot tenant set every N touches per core (0 = no churn)")

		sockets = flag.Int("sockets", 1, "with -run or -exp: NUMA sockets; cores spread evenly across per-socket IPI rings (1 = flat ring, bit-identical to pre-NUMA builds)")

		faultRate = flag.Float64("fault-rate", 0, "with -run or -exp: per-event device fault injection rate for every fault kind (0 = off)")
		faultSeed = flag.Uint64("fault-seed", 1, "with -run or -exp: fault injector seed (independent of -seed)")

		histFlag   = flag.Bool("hist", false, "with -run or -exp: record latency/fan-out histograms (read-only; counters stay bit-identical)")
		serve      = flag.String("serve", "", "with -run or -exp: serve live telemetry (/metrics, /progress, /debug/pprof) on this address, e.g. 127.0.0.1:9151")
		serveGrace = flag.Duration("serve-grace", 0, "with -serve: keep the telemetry server up this long after the work finishes, so a scraper cannot race a fast run")

		traceFlag   = flag.Bool("trace", false, "record a flight-recorder event trace of the -run simulation")
		traceOut    = flag.String("trace-out", "trace.json", "trace output path: .json = Chrome trace_event (Perfetto), .jsonl = JSON Lines")
		sampleEvery = flag.Uint64("sample-every", 0, "time-series sampling interval in cycles (0 = off); CSV lands next to -trace-out")

		bench     = flag.Bool("bench", false, "run the policy throughput benchmark suite")
		benchJSON = flag.Bool("json", true, "with -bench: write machine-readable results")
		benchOut  = flag.String("bench-out", "BENCH_cmcp.json", "with -bench -json: results file")
		benchN    = flag.Int("bench-n", 3, "with -bench: iterations per configuration")
	)
	flag.Parse()

	eng, err := cmcp.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	var faults *cmcp.FaultConfig
	if *faultRate > 0 {
		faults = cmcp.UniformFaults(*faultSeed, *faultRate)
	}
	sopt := serveOptions{addr: *serve, grace: *serveGrace}
	switch {
	case *compactJournal != "":
		out := *compactOut
		if out == "" {
			out = *compactJournal
		}
		st, err := cmcp.CompactSweepJournal(*compactJournal, out)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("compacted %s -> %s: %d entries kept, %d duplicates dropped, %d torn lines skipped\n",
			*compactJournal, out, st.Kept, st.Dropped, st.Skipped)
	case *workerBase != "":
		w := &cmcp.SweepWorker{
			Base: strings.TrimRight(*workerBase, "/"),
			Name: *workerName,
			Log: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "[worker] "+format+"\n", args...)
			},
		}
		if err := w.Run(); err != nil {
			fatal(err)
		}
	case *bench:
		if faults != nil {
			// Benchmarks measure the fault-free hot path; injecting
			// would silently skew every number.
			fatal(fmt.Errorf("-fault-rate is not supported with -bench (benchmarks measure the fault-free hot path)"))
		}
		if sopt.addr != "" {
			fatal(fmt.Errorf("-serve is not supported with -bench (serve a -run or -exp instead)"))
		}
		if err := runBench(*benchN, *benchJSON, *benchOut, *seed); err != nil {
			fatal(err)
		}
	case *run:
		topt := traceOptions{enabled: *traceFlag, out: *traceOut, sampleEvery: *sampleEvery}
		if err := runOne(*wlName, *cores, *ratio, *polName, *p, *dynamicP, *tables, *pageSize, *scale, *seed, eng, faults, topt, *histFlag, sopt, *tenants, *zipfS, *churn, *sockets); err != nil {
			fatal(err)
		}
	case *exp != "":
		shardIdx, shardCount, err := parseShard(*shard)
		if err != nil {
			fatal(err)
		}
		o := cmcp.ExperimentOptions{
			Scale:        *scale,
			Quick:        *quick,
			Seed:         *seed,
			Parallelism:  *parallel,
			Repeats:      *repeats,
			Faults:       faults,
			Journal:      *journal,
			Imports:      splitList(*journalImport),
			Shard:        shardIdx,
			Shards:       shardCount,
			Engine:       eng,
			Hist:         *histFlag,
			ScheduleFrom: *scheduleFrom,
		}
		// -tenants used to be silently ignored under -exp (the same bug
		// class -fault-rate once had): the spec is threaded through the
		// options, and experiments that cannot honor it fail loudly.
		if *tenants > 0 {
			spec := cmcp.DefaultTenantSpec(*tenants, *zipfS, *churn)
			if *scale != 1.0 {
				spec.TotalTouches = int(float64(spec.TotalTouches) * *scale)
			}
			o.Tenants = &spec
		}
		if *sockets > 1 {
			// Seats per socket are re-derived per grid point (the grids
			// sweep core counts); only the socket count and costs matter.
			o.Topology = cmcp.DefaultTopology(*sockets, 1)
		}
		if shardCount > 1 && *journal == "" {
			fatal(fmt.Errorf("-shard requires -journal: a shard's only output is its journal"))
		}
		var coordinator *cmcp.Coordinator
		if *coordinate != "" {
			if *journal == "" {
				// The journal is the coordinator's only durable state; a
				// coordinated sweep without one could not survive a restart.
				fatal(fmt.Errorf("-coordinate requires -journal: the journal is the sweep's durable state"))
			}
			if shardCount > 1 {
				fatal(fmt.Errorf("-coordinate replaces -shard: the coordinator partitions work by lease, not by shard"))
			}
			// The meter is shared: the sweep layer advances done counts,
			// the coordinator adds retried/poisoned.
			o.Progress = cmcp.NewSweepProgress()
			coordinator = cmcp.NewCoordinator(cmcp.CoordinatorOptions{
				LeaseTTL:    *leaseTTL,
				MaxAttempts: *maxAttempts,
				Progress:    o.Progress,
			})
			if err := coordinator.Start(*coordinate); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "[coord] serving sweep on http://%s/ — start workers with: cmcpsim -worker http://%s\n",
				coordinator.Addr(), coordinator.Addr())
			o.Runner = coordinator
		}
		err = runExperiments(*exp, o, *csv, *plotFlag, *progress, sopt, coordinator)
		if coordinator != nil {
			// Let the fleet hear "done" (or grab the poisoned report)
			// before the listener disappears.
			coordinator.Finish()
			if *linger > 0 {
				time.Sleep(*linger)
			}
			coordinator.Close()
			if report := coordinator.PoisonedReport(); len(report) > 0 {
				fmt.Fprintf(os.Stderr, "[coord] %d poisoned key(s):\n", len(report))
				for _, p := range report {
					fmt.Fprintf(os.Stderr, "[coord]   %s (workload %q, seed %d): %d attempts, last error: %s\n",
						p.Key, p.Workload, p.Seed, p.Attempts, p.LastErr)
				}
			}
		}
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// coordTelemetry maps a coordinator snapshot onto the telemetry
// server's cmcp_coord_* families (the facade keeps the two packages
// decoupled, so the field copy lives here).
func coordTelemetry(s cmcp.CoordinatorStats) cmcp.TelemetryCoordStats {
	return cmcp.TelemetryCoordStats{
		KeysPending:      uint64(s.KeysPending),
		KeysLeased:       uint64(s.KeysLeased),
		KeysDone:         s.KeysDone,
		KeysPoisoned:     s.KeysPoisoned,
		LeasesGranted:    s.LeasesGranted,
		LeasesExpired:    s.LeasesExpired,
		LeasesStolen:     s.LeasesStolen,
		Heartbeats:       s.Heartbeats,
		Retries:          s.Retries,
		DuplicateResults: s.DuplicateResults,
	}
}

// parseShard parses "i/n" (e.g. "0/4"); "" means unsharded.
func parseShard(s string) (int, int, error) {
	if s == "" {
		return 0, 0, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil || n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard %q: want \"i/n\" with 0 <= i < n", s)
	}
	return i, n, nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmcpsim:", err)
	os.Exit(1)
}

func runExperiments(id string, o cmcp.ExperimentOptions, csv, plotCharts, progress bool, sopt serveOptions, coordinator *cmcp.Coordinator) error {
	ids := []string{id}
	if id == "all" {
		ids = []string{"fig6", "fig8", "fig7", "table1", "fig9", "fig10", "sense"}
	}
	sharded := o.Shards > 1
	if o.Progress == nil && (progress || sharded || sopt.addr != "") {
		o.Progress = cmcp.NewSweepProgress()
	}
	srv, stopSrv, err := startTelemetry(sopt, o.Progress)
	if err != nil {
		return err
	}
	defer stopSrv()
	if srv != nil {
		// Executed runs stream into the server's atomic snapshot as
		// they complete; scrapers read the snapshot, never live state.
		o.OnResult = func(r *cmcp.Result) { srv.Publish(r.Run) }
		if coordinator != nil {
			// /metrics polls the lease table live at scrape time.
			srv.SetCoordSource(func() cmcp.TelemetryCoordStats {
				return coordTelemetry(coordinator.Stats())
			})
		}
	}
	if progress {
		// Periodic one-line status on stderr while the sweep grinds.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(5 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "[sweep] %s\n", o.Progress)
				}
			}
		}()
	}
	for _, one := range ids {
		start := time.Now()
		rep, err := cmcp.RunExperiment(one, o)
		if err != nil {
			return err
		}
		switch {
		case sharded:
			// A shard's report is scaffolding full of placeholder rows;
			// its real output is the journal. Say so instead of printing.
		case csv:
			fmt.Print(rep.CSV())
		default:
			fmt.Print(rep.String())
			if plotCharts {
				for _, tab := range rep.Tables {
					if chart := plot.FromTable(tab, 56, 14); chart != "" {
						fmt.Println(chart)
					}
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", one, time.Since(start).Round(time.Millisecond))
	}
	if s := o.Progress; s != nil {
		snap := s.Snapshot()
		fmt.Fprintf(os.Stderr, "[sweep] %s\n", snap)
		if sharded {
			fmt.Fprintf(os.Stderr,
				"[sweep] shard %d/%d complete: %d runs journaled to %s (%d reused, %d left to other shards)\n"+
					"[sweep] run the remaining shards, then merge with: -exp %s -journal %s -journal-import <other journals>\n",
				o.Shard, o.Shards, snap.Executed, o.Journal, snap.Loaded, snap.Missing, id, o.Journal)
		}
	}
	return nil
}

func runOne(wlName string, cores int, ratio float64, polName string, p float64, dynamicP bool, tables, pageSize string, scale float64, seed uint64, eng cmcp.EngineKind, faults *cmcp.FaultConfig, topt traceOptions, hist bool, sopt serveOptions, tenants int, zipfS float64, churn int, sockets int) error {
	srv, stopSrv, err := startTelemetry(sopt, nil)
	if err != nil {
		return err
	}
	defer stopSrv()
	var wl cmcp.Workload
	var tenantSpec *cmcp.TenantSpec
	if tenants > 0 {
		spec := cmcp.DefaultTenantSpec(tenants, zipfS, churn)
		if scale != 1.0 {
			spec.TotalTouches = int(float64(spec.TotalTouches) * scale)
		}
		tenantSpec = &spec
	} else {
		var ok bool
		wl, ok = cmcp.WorkloadByName(wlName)
		if !ok {
			return fmt.Errorf("unknown workload %q", wlName)
		}
		if scale != 1.0 {
			wl = wl.Scale(scale)
		}
	}
	kind, err := parsePolicy(polName)
	if err != nil {
		return err
	}
	tk := cmcp.PSPT
	if strings.EqualFold(tables, "regular") {
		tk = cmcp.RegularPT
	} else if !strings.EqualFold(tables, "pspt") {
		return fmt.Errorf("unknown tables %q", tables)
	}
	adaptive := strings.EqualFold(pageSize, "adaptive")
	var size cmcp.PageSize
	if !adaptive {
		size, err = parsePageSize(pageSize)
		if err != nil {
			return err
		}
	}
	var rec *cmcp.Recorder
	if topt.enabled || topt.sampleEvery > 0 {
		rec = cmcp.NewRecorder(cmcp.RecorderConfig{SampleEvery: cmcp.Cycles(topt.sampleEvery)})
	}
	var topo *cmcp.Topology
	if sockets > 1 {
		topo = cmcp.DefaultTopology(sockets, (cores+sockets-1)/sockets)
	}
	res, err := cmcp.Simulate(cmcp.Config{
		Cores:            cores,
		Workload:         wl,
		Tenants:          tenantSpec,
		MemoryRatio:      ratio,
		PageSize:         size,
		AdaptivePageSize: adaptive,
		Tables:           tk,
		Policy:           cmcp.PolicySpec{Kind: kind, P: p, DynamicP: dynamicP},
		Seed:             seed,
		Engine:           eng,
		Probe:            rec,
		Faults:           faults,
		Hist:             hist,
		Topology:         topo,
	})
	if err != nil {
		return err
	}
	if srv != nil {
		srv.Publish(res.Run)
	}
	r := res.Run
	sizeLabel := size.String()
	if adaptive {
		sizeLabel = "adaptive"
	}
	name := wl.Name
	if tenantSpec != nil {
		name = tenantSpec.Name()
	}
	fmt.Printf("workload      %s (%d pages, %d frames, %s, %v)\n",
		name, res.TotalPages, res.Frames, sizeLabel, tk)
	fmt.Printf("policy        %s\n", res.PolicyName)
	fmt.Printf("runtime       %.2f Mcycles (%.2f ms at 1.053 GHz)\n",
		float64(res.Runtime)/1e6, float64(res.Runtime)/1.053e6)
	fmt.Printf("page faults   %.0f per core\n", r.PerCoreAvg(cmcp.PageFaults))
	fmt.Printf("minor faults  %.0f per core\n", r.PerCoreAvg(cmcp.MinorFaults))
	fmt.Printf("remote invals %.0f per core\n", r.PerCoreAvg(cmcp.RemoteTLBInvalidations))
	fmt.Printf("dTLB misses   %.0f per core\n", r.PerCoreAvg(cmcp.DTLBMisses))
	fmt.Printf("evictions     %.0f per core\n", r.PerCoreAvg(cmcp.Evictions))
	fmt.Printf("data moved    %.1f MB in, %.1f MB out\n",
		float64(r.Total(cmcp.BytesIn))/1e6, float64(r.Total(cmcp.BytesOut))/1e6)
	if res.Sharing != nil {
		fmt.Printf("sharing       %v (pages by core-map count 0..n)\n", res.Sharing[:min(9, len(res.Sharing))])
	}
	if topo != nil {
		fmt.Printf("numa          %s topology; %d cross-socket IPIs, %d shootdown targets filtered, %d remote walks, %d remote PT consults, %d replica syncs, %d PT migrations\n",
			topo, r.Total(cmcp.CrossSocketIPIs), r.Total(cmcp.FilteredShootdowns),
			r.Total(cmcp.RemoteWalks), r.Total(cmcp.RemotePTConsults),
			r.Total(cmcp.ReplicaSyncs), r.Total(cmcp.PTMigrations))
	}
	if faults != nil {
		fmt.Printf("faults        %d injected; recovered via %d retries, %d rollbacks, %d resent IPIs; %d frames quarantined, %d pages degraded\n",
			r.Total(cmcp.FaultsInjected), r.Total(cmcp.RecoveryRetries), r.Total(cmcp.TxRollbacks),
			r.Total(cmcp.ResentShootdowns), res.Quarantined, r.Total(cmcp.DegradedPages))
	}
	if hs := r.Hists; hs != nil {
		fmt.Printf("latency histograms (cycles unless noted):\n")
		fmt.Printf("  %-26s %10s %12s %8s %8s %8s %8s %10s\n",
			"", "count", "mean", "p50", "p90", "p99", "p999", "max")
		for i, name := range cmcp.HistNames() {
			s := hs.Get(cmcp.HistID(i)).Summarize()
			if s.Count == 0 {
				continue
			}
			fmt.Printf("  %-26s %10d %12.1f %8d %8d %8d %8d %10d\n",
				name, s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
		}
	}
	if ts := r.Tenants; ts != nil {
		fmt.Printf("tenants       %d address spaces; fairness (Jain, over p99 fault service) %.3f\n",
			ts.Tenants(), ts.FairnessIndex())
		show := min(8, ts.Tenants())
		fmt.Printf("  %-8s %12s %12s %10s %10s %10s %10s\n",
			"tenant", "touches", "page_faults", "evictions", "caused", "p99(cyc)", "max(cyc)")
		for t := 0; t < show; t++ {
			s := ts.FaultHist(t).Summarize()
			fmt.Printf("  %-8d %12d %12d %10d %10d %10d %10d\n", t,
				ts.Get(t, cmcp.TenantTouches), ts.Get(t, cmcp.TenantFaults),
				ts.Get(t, cmcp.TenantEvictions), ts.Get(t, cmcp.TenantEvictionsCaused),
				s.P99, s.Max)
		}
		if ts.Tenants() > show {
			fmt.Printf("  ... %d more tenants (full record lands in Run.Tenants and journals)\n",
				ts.Tenants()-show)
		}
	}
	if rec != nil {
		if err := writeTrace(rec, topt, cores); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace exports the recorder's contents according to the flags:
// events to -trace-out (format by extension), samples to a sibling
// .samples.csv when -sample-every is set.
func writeTrace(rec *cmcp.Recorder, topt traceOptions, cores int) error {
	if topt.enabled {
		f, err := os.Create(topt.out)
		if err != nil {
			return err
		}
		events := rec.Events()
		switch {
		case strings.HasSuffix(topt.out, ".jsonl"):
			// The meta header carries the drop count into the file, so
			// cmcptrace -replay can warn that the ring overflowed
			// instead of presenting a truncated trace as complete.
			err = cmcp.WriteTraceJSONLWithMeta(f, events, rec.Dropped())
		default:
			err = cmcp.WriteChromeTrace(f, events, rec.Samples(), cores)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace         %d events (%d dropped) -> %s\n", len(events), rec.Dropped(), topt.out)
	}
	if topt.sampleEvery > 0 {
		ext := filepath.Ext(topt.out)
		csvOut := strings.TrimSuffix(topt.out, ext) + ".samples.csv"
		f, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		err = cmcp.WriteSamplesCSV(f, rec.Samples())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("samples       %d points -> %s\n", len(rec.Samples()), csvOut)
	}
	return nil
}

// benchResult is one configuration's measurement in the -bench output.
type benchResult struct {
	Name        string  `json:"name"`
	Engine      string  `json:"engine"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	TouchesPerS float64 `json:"touches_per_sec"`
	// SpeedupVsSerial is parallel-row throughput relative to the same
	// policy's serial row from this same process (0 on serial rows).
	SpeedupVsSerial float64           `json:"speedup_vs_serial,omitempty"`
	RuntimeCyc      uint64            `json:"simulated_runtime_cycles"`
	Counters        map[string]uint64 `json:"counters"`
	// Hists carries per-histogram latency summaries (cmcp-bench/v2),
	// keyed by cmcp.HistNames. They come from a separate hist-enabled
	// run of the same config — counters are bit-identical either way —
	// so the timed iterations above keep measuring the bare hot path.
	Hists map[string]cmcp.HistogramSummary `json:"hists"`
}

// benchFile is the schema of BENCH_cmcp.json.
type benchFile struct {
	Schema    string `json:"schema"`
	UnixTime  int64  `json:"unix_time"`
	GoVersion string `json:"go_version,omitempty"`
	// GoMaxProcs records the measuring host's parallelism: the parallel
	// engine's speedup is worker-bound, so rows from a 1-P host (where
	// all probing is inline) are not comparable to multi-core rows.
	GoMaxProcs int           `json:"gomaxprocs"`
	Runs       []benchResult `json:"runs"`
}

// runBench measures raw Simulate throughput for each built-in policy
// on the SCALE workload (the mirror of bench_test.go's benchSimulate)
// and optionally writes BENCH_cmcp.json, seeding the perf trajectory
// with ns/op plus the counter totals that explain them. Every policy is
// measured on both engines back to back — serial then parallel — so
// each parallel row carries a speedup against a serial row from the
// same process on the same host.
func runBench(iters int, emitJSON bool, out string, seed uint64) error {
	if iters < 1 {
		iters = 1
	}
	kinds := []cmcp.PolicyKind{cmcp.FIFO, cmcp.LRU, cmcp.CMCP, cmcp.CLOCK, cmcp.LFU, cmcp.Random}
	engines := []cmcp.EngineKind{cmcp.SerialEngine, cmcp.ParallelEngine}
	file := benchFile{Schema: "cmcp-bench/v2", UnixTime: time.Now().Unix(),
		GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, kind := range kinds {
		cfg := cmcp.Config{
			Cores:       56,
			Workload:    cmcp.SCALE().Scale(0.1),
			MemoryRatio: 0.5,
			Tables:      cmcp.PSPT,
			Policy:      cmcp.PolicySpec{Kind: kind, P: -1},
			Seed:        seed,
		}
		// One hist-enabled reference run per policy: counters and hists
		// are bit-identical across engines, so both rows share it and the
		// timed iterations keep measuring the bare hot path.
		histCfg := cfg
		histCfg.Hist = true
		hres, err := cmcp.Simulate(histCfg)
		if err != nil {
			return err
		}
		hists := make(map[string]cmcp.HistogramSummary, len(cmcp.HistNames()))
		for i, name := range cmcp.HistNames() {
			hists[name] = hres.Run.Hists.Get(cmcp.HistID(i)).Summarize()
		}
		// Interleave the engines' timed iterations so transient host load
		// hits both sides alike — the speedup field compares engines, not
		// the machine's mood across two measurement blocks.
		elapsed := make(map[cmcp.EngineKind]time.Duration, len(engines))
		touches := make(map[cmcp.EngineKind]uint64, len(engines))
		var last *cmcp.Result
		for i := 0; i < iters; i++ {
			for _, eng := range engines {
				ecfg := cfg
				ecfg.Engine = eng
				start := time.Now()
				res, err := cmcp.Simulate(ecfg)
				if err != nil {
					return err
				}
				elapsed[eng] += time.Since(start)
				touches[eng] += res.Run.Total(cmcp.Touches)
				last = res
			}
		}
		counters := make(map[string]uint64, stats.NumCounters)
		for c, name := range stats.CounterNames() {
			counters[name] = last.Run.Total(stats.Counter(c))
		}
		var serialNs int64
		for _, eng := range engines {
			r := benchResult{
				Name:        "Simulate/" + kind.String() + "/" + eng.String(),
				Engine:      eng.String(),
				Iterations:  iters,
				NsPerOp:     elapsed[eng].Nanoseconds() / int64(iters),
				TouchesPerS: float64(touches[eng]) / elapsed[eng].Seconds(),
				RuntimeCyc:  uint64(last.Runtime),
				Counters:    counters,
				Hists:       hists,
			}
			if eng == cmcp.SerialEngine {
				serialNs = r.NsPerOp
			} else if r.NsPerOp > 0 {
				r.SpeedupVsSerial = float64(serialNs) / float64(r.NsPerOp)
			}
			file.Runs = append(file.Runs, r)
			fmt.Printf("%-26s %12d ns/op %14.0f touches/s\n", r.Name, r.NsPerOp, r.TouchesPerS)
		}
	}
	if !emitJSON {
		return nil
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func parsePolicy(name string) (cmcp.PolicyKind, error) {
	for _, k := range []cmcp.PolicyKind{cmcp.FIFO, cmcp.LRU, cmcp.CMCP, cmcp.CLOCK, cmcp.LFU, cmcp.Random} {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", name)
}

func parsePageSize(s string) (cmcp.PageSize, error) {
	switch strings.ToLower(s) {
	case "4k", "4kb":
		return cmcp.Size4k, nil
	case "64k", "64kb":
		return cmcp.Size64k, nil
	case "2m", "2mb":
		return cmcp.Size2M, nil
	default:
		return 0, fmt.Errorf("unknown page size %q", s)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
