package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmcp"
	"cmcp/internal/obs"
)

// TestReplayRoundTrip exercises the full observability pipeline:
// simulate with a flight recorder, export JSONL, replay through the
// -replay timeline renderer, and check the timeline totals match the
// recorded events.
func TestReplayRoundTrip(t *testing.T) {
	rec := cmcp.NewRecorder(cmcp.RecorderConfig{Events: 1 << 20})
	_, err := cmcp.Simulate(cmcp.Config{
		Cores:       4,
		Workload:    cmcp.SCALE().Scale(0.02),
		MemoryRatio: 0.5,
		Tables:      cmcp.PSPT,
		Policy:      cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.5},
		Seed:        7,
		Probe:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("recorder captured nothing")
	}

	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmcp.WriteTraceJSONL(f, events); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := doReplay(&out, path, 8); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, fmt.Sprintf("timeline: %d events", len(events))) {
		t.Errorf("timeline header missing event count %d:\n%s", len(events), text)
	}
	var faults uint64
	for _, e := range events {
		if e.Type == obs.EvFault {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("constrained run recorded no faults")
	}
	if !strings.Contains(text, "fault") || !strings.Contains(text, "per-core activity") {
		t.Errorf("replay output missing sections:\n%s", text)
	}
	// Every application core appears in the per-core summary.
	for c := 0; c < 4; c++ {
		if !strings.Contains(text, fmt.Sprintf("\n%8d ", c)) {
			t.Errorf("core %d missing from per-core summary:\n%s", c, text)
		}
	}
}

func TestReplayErrors(t *testing.T) {
	var out bytes.Buffer
	if err := doReplay(&out, filepath.Join(t.TempDir(), "missing.jsonl"), 8); err == nil {
		t.Error("missing file accepted")
	}
}

// TestReplaySkipsMalformedLines pins the lenient-replay contract: a
// trace with garbage interleaved (truncated tail, stray log lines)
// still renders, reporting how much was dropped instead of dying on the
// first bad record.
func TestReplaySkipsMalformedLines(t *testing.T) {
	content := `{"t":100,"core":0,"ev":"fault","page":7,"arg":0}
not json at all
{"t":200,"core":1,"ev":"eviction","page":9,"arg":1}
{"t":300,"core":0,"ev":"no_such_event","page":1,"arg":0}
{"t":400,"core":1,"ev":"writeback","pa`
	path := filepath.Join(t.TempDir(), "mixed.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := doReplay(&out, path, 4); err != nil {
		t.Fatalf("lenient replay failed: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "skipped 3 malformed line(s)") {
		t.Errorf("missing skip summary:\n%s", text)
	}
	if !strings.Contains(text, "timeline: 2 events") {
		t.Errorf("valid events not replayed:\n%s", text)
	}
}

func TestCoreSummaryAggregation(t *testing.T) {
	events := []obs.Event{
		{Time: 1, Core: 0, Type: obs.EvFault, Page: 1},
		{Time: 2, Core: 0, Type: obs.EvMinorFault, Page: 1},
		{Time: 3, Core: 0, Type: obs.EvShootdown, Page: 1, Arg: 3},
		{Time: 4, Core: 1, Type: obs.EvEviction, Page: 2, Arg: 1},
		{Time: 5, Core: 1, Type: obs.EvLockWait, Page: 2, Arg: 250},
		{Time: 6, Core: obs.PolicyCore, Type: obs.EvPromotion, Page: 2, Arg: 2},
	}
	s := coreSummary(events)
	if strings.Contains(s, "policy\n") {
		t.Error("policy pseudo-core must not appear in the per-core table")
	}
	want0 := fmt.Sprintf("%8d %10d %10d %12d %16d", 0, 2, 0, 3, 0)
	want1 := fmt.Sprintf("%8d %10d %10d %12d %16d", 1, 0, 1, 0, 250)
	if !strings.Contains(s, want0) || !strings.Contains(s, want1) {
		t.Errorf("summary rows wrong:\n%s", s)
	}
}
