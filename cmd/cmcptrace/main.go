// Command cmcptrace records page-access traces of the simulator's
// workloads and analyzes them offline, including Belady's optimal
// (MIN) fault count — the clairvoyant lower bound that shows how much
// headroom the online policies (FIFO, LRU, CMCP) leave.
//
//	cmcptrace -record -workload cg.B -cores 16 -o cg.trace
//	cmcptrace -analyze cg.trace -ratio 0.4
//
// It also replays flight-recorder event traces (the JSONL files that
// `cmcpsim -run -trace -trace-out x.jsonl` records) into a bucketed
// text timeline:
//
//	cmcptrace -replay run.jsonl -buckets 24
//
// And it summarizes sweep journals (the JSONL files that
// `cmcpsim -exp -journal x.jsonl` checkpoints, locally or through a
// coordinator), showing per-policy/workload totals, the longest runs
// (what -schedule-from will front-load) and duplicate keys (what
// -compact-journal will drop):
//
//	cmcptrace -journal sweep.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"cmcp/internal/core"
	"cmcp/internal/obs"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/sweep"
	"cmcp/internal/trace"
	"cmcp/internal/workload"
)

func main() {
	var (
		record  = flag.Bool("record", false, "record a workload trace")
		analyze = flag.String("analyze", "", "trace file to analyze")
		replay  = flag.String("replay", "", "flight-recorder JSONL event trace to render as a timeline")
		buckets = flag.Int("buckets", 20, "time buckets for -replay")
		journal = flag.String("journal", "", "sweep journal (JSONL) to summarize: per-workload/policy run counts, runtimes, duplicate keys")
		wlName  = flag.String("workload", "cg.B", "workload: bt.B|lu.B|cg.B|SCALE")
		cores   = flag.Int("cores", 16, "cores")
		scale   = flag.Float64("scale", 0.1, "workload scale")
		seed    = flag.Uint64("seed", 42, "seed")
		out     = flag.String("o", "workload.trace", "output file for -record")
		ratio   = flag.Float64("ratio", 0.5, "memory capacity as a fraction of the footprint")
	)
	flag.Parse()

	switch {
	case *record:
		if err := doRecord(*wlName, *cores, *scale, *seed, *out); err != nil {
			fatal(err)
		}
	case *analyze != "":
		if err := doAnalyze(*analyze, *ratio); err != nil {
			fatal(err)
		}
	case *replay != "":
		if err := doReplay(os.Stdout, *replay, *buckets); err != nil {
			fatal(err)
		}
	case *journal != "":
		if err := doJournal(os.Stdout, *journal); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// doReplay loads a flight-recorder JSONL event trace and writes the
// bucketed text timeline plus a per-core activity summary to w. Traces
// come from interrupted or concatenated runs often enough that the read
// is lenient: malformed or truncated lines are skipped and counted, not
// fatal.
func doReplay(w io.Writer, path string, buckets int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, meta, skipped, err := obs.ReadJSONLMeta(f)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(w, "warning: skipped %d malformed line(s) in %s\n\n", skipped, path)
	}
	if meta != nil {
		// The recorder's ring is bounded: a trace that overflowed it is
		// a sample, not a record, and the timeline below under-counts.
		if meta.Dropped > 0 {
			fmt.Fprintf(w, "warning: recorder dropped %d event(s) (ring full); timeline is incomplete\n\n", meta.Dropped)
		}
		if got := len(events); meta.Events != got {
			fmt.Fprintf(w, "warning: header promises %d events but %d were read; trace is truncated\n\n", meta.Events, got)
		}
	}
	fmt.Fprint(w, obs.Timeline(events, buckets))
	fmt.Fprint(w, coreSummary(events))
	return nil
}

// coreSummary renders per-core event totals: which cores faulted,
// evicted and were interrupted — the skew picture the aggregate
// tables hide.
func coreSummary(events []obs.Event) string {
	type agg struct {
		faults, evictions, shootdowns, lockWait uint64
	}
	perCore := map[sim.CoreID]*agg{}
	for _, e := range events {
		if e.Core == obs.PolicyCore {
			continue // promotions/demotions already shown in the timeline
		}
		a := perCore[e.Core]
		if a == nil {
			a = &agg{}
			perCore[e.Core] = a
		}
		switch e.Type {
		case obs.EvFault, obs.EvMinorFault:
			a.faults++
		case obs.EvEviction:
			a.evictions++
		case obs.EvShootdown:
			a.shootdowns += uint64(e.Arg)
		case obs.EvLockWait:
			a.lockWait += uint64(e.Arg)
		}
	}
	var ids []sim.CoreID
	for c := range perCore {
		ids = append(ids, c)
	}
	sortCoreIDs(ids)
	s := "\nper-core activity (faults include minor; shootdowns count target cores):\n"
	s += fmt.Sprintf("%8s %10s %10s %12s %16s\n", "core", "faults", "evictions", "shootdowns", "lock_wait_cyc")
	for _, c := range ids {
		a := perCore[c]
		s += fmt.Sprintf("%8d %10d %10d %12d %16d\n", c, a.faults, a.evictions, a.shootdowns, a.lockWait)
	}
	return s
}

// doJournal summarizes a sweep journal: how many runs it holds, which
// keys appear more than once (retries, duplicate deliveries, repeats —
// the lines `cmcpsim -compact-journal` drops), per policy/workload
// totals, and the longest runs by recorded runtime — the ones a
// `-schedule-from` resume will hand out first. The read is lenient for
// the same reason -replay's is: the journal of a crashed sweep
// legitimately ends in a torn line.
func doJournal(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, skipped, err := sweep.ReadJournalLenient(f)
	if err != nil {
		return err
	}
	if skipped > 0 {
		fmt.Fprintf(w, "warning: skipped %d malformed line(s) in %s\n\n", skipped, path)
	}
	if len(entries) == 0 {
		fmt.Fprintf(w, "journal %s: empty (header only, or fresh sweep)\n", path)
		return nil
	}

	perKey := map[string]int{}
	type agg struct {
		runs    int
		runtime sim.Cycles
	}
	perGroup := map[string]*agg{}
	// Last entry per key wins, matching the sweep's resume and the
	// compactor's keep rule.
	last := map[string]sweep.Entry{}
	for _, e := range entries {
		perKey[e.Key]++
		last[e.Key] = e
	}
	dups := 0
	for _, n := range perKey {
		if n > 1 {
			dups += n - 1
		}
	}
	var keys []string
	for k := range last {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return last[keys[i]].Runtime > last[keys[j]].Runtime
	})
	for _, k := range keys {
		e := last[k]
		g := fmt.Sprintf("%-10s %s", e.Policy, e.Workload)
		a := perGroup[g]
		if a == nil {
			a = &agg{}
			perGroup[g] = a
		}
		a.runs++
		a.runtime += e.Runtime
	}

	fmt.Fprintf(w, "journal %s: %d line(s), %d distinct key(s), %d duplicate line(s) (compaction would drop these)\n\n",
		path, len(entries), len(last), dups)

	var groups []string
	for g := range perGroup {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	fmt.Fprintf(w, "per policy/workload (last entry per key):\n")
	fmt.Fprintf(w, "  %-24s %6s %16s\n", "policy workload", "runs", "total_cycles")
	for _, g := range groups {
		a := perGroup[g]
		fmt.Fprintf(w, "  %-24s %6d %16d\n", g, a.runs, a.runtime)
	}

	n := len(keys)
	if n > 10 {
		n = 10
	}
	fmt.Fprintf(w, "\nlongest runs (a -schedule-from resume hands these out first):\n")
	fmt.Fprintf(w, "  %14s %-10s %-10s %6s %8s\n", "runtime_cycles", "policy", "workload", "cores", "seed")
	for _, k := range keys[:n] {
		e := last[k]
		fmt.Fprintf(w, "  %14d %-10s %-10s %6d %8d\n", e.Runtime, e.Policy, e.Workload, e.Cores, e.Seed)
	}
	return nil
}

func sortCoreIDs(ids []sim.CoreID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmcptrace:", err)
	os.Exit(1)
}

func doRecord(wlName string, cores int, scale float64, seed uint64, out string) error {
	spec, ok := workload.ByName(wlName)
	if !ok {
		return fmt.Errorf("unknown workload %q", wlName)
	}
	layout, err := spec.Scale(scale).Build(cores)
	if err != nil {
		return err
	}
	tr := trace.Capture(layout, seed)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses on %d cores (%d distinct pages) to %s (%.1f KB, %.2f B/access)\n",
		len(tr.Records), tr.Cores, tr.MaxVPN()+1, out,
		float64(fi.Size())/1024, float64(fi.Size())/float64(len(tr.Records)))
	return f.Close()
}

func doAnalyze(path string, ratio float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	footprint := int(tr.MaxVPN()) + 1
	capacity := int(ratio * float64(footprint))
	if capacity < 1 {
		capacity = 1
	}
	fmt.Printf("trace: %d accesses, %d cores, %d pages; capacity %d pages (%.0f%%)\n\n",
		len(tr.Records), tr.Cores, footprint, capacity, ratio*100)

	opt, err := trace.OPT(tr, capacity, sim.Size4k)
	if err != nil {
		return err
	}
	fmt.Printf("  %-22s %9d faults (%.2f%% of accesses)  [lower bound]\n",
		"OPT (Belady/MIN)", opt.Faults, 100*opt.FaultRatio())

	// Online policies replayed with perfect reference information.
	host := traceHost{}
	for _, pc := range []struct {
		name string
		pol  trace.CountingPolicy
	}{
		{"FIFO", policy.NewFIFO()},
		{"true LRU (oracle refs)", trace.NewTrueLRU()},
		{"CMCP (p=0.5)", core.New(host, capacity, core.WithP(0.5))},
		{"Random", policy.NewRandom(1)},
	} {
		faults, err := trace.CountFaults(tr, capacity, sim.Size4k, pc.pol)
		if err != nil {
			return err
		}
		fmt.Printf("  %-22s %9d faults (%.2f%% of accesses, %.2fx OPT)\n",
			pc.name, faults, 100*float64(faults)/float64(opt.Accesses),
			float64(faults)/float64(opt.Faults))
	}
	fmt.Println("\nNote: fault counts ignore TLB shootdown costs — the very costs")
	fmt.Println("that make LRU lose at runtime despite its low fault count.")
	return nil
}

// traceHost serves the offline replay: no real PSPT exists, so the
// core-map count is unknown (CMCP falls back to count 1) and access
// bits always read as recently-used for LRU's scanner.
type traceHost struct{}

func (traceHost) CoreMapCount(sim.PageID) int  { return -1 }
func (traceHost) ScanAccessed(sim.PageID) bool { return true }
