// Benchmarks regenerating each of the paper's evaluation artifacts
// (Figures 6-10 and Table 1) plus simulator micro-benchmarks. The
// experiment benches run at a reduced scale so `go test -bench=.`
// completes in minutes; cmd/cmcpsim -exp all reproduces the full-scale
// numbers recorded in EXPERIMENTS.md.
package cmcp_test

import (
	"testing"

	"cmcp"
)

// benchOpts is the reduced-scale configuration used by the experiment
// benchmarks.
func benchOpts() cmcp.ExperimentOptions {
	return cmcp.ExperimentOptions{Scale: 0.1, Quick: true, Seed: 42}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := cmcp.RunExperiment(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkFig6 regenerates the page-sharing distributions (Figure 6).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates the policy/page-table scalability
// comparison (Figure 7).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates the memory-constraint sensitivity curves
// (Figure 8).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates the CMCP ratio sweep (Figure 9).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates the page-size study (Figure 10).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable1 regenerates the per-core event counts (Table 1).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// benchSimulate measures raw simulation throughput for one policy:
// simulated page touches per second of wall time.
func benchSimulate(b *testing.B, pol cmcp.PolicySpec, tables cmcp.TableKind) {
	benchSimulateEngine(b, pol, tables, cmcp.SerialEngine)
}

// benchSimulateEngine is benchSimulate with an explicit engine, the
// shared body of the serial/parallel benchmark pairs below.
func benchSimulateEngine(b *testing.B, pol cmcp.PolicySpec, tables cmcp.TableKind, eng cmcp.EngineKind) {
	b.Helper()
	cfg := cmcp.Config{
		Cores:       56,
		Workload:    cmcp.SCALE().Scale(0.1),
		MemoryRatio: 0.5,
		Tables:      tables,
		Policy:      pol,
		Seed:        1,
		Engine:      eng,
	}
	b.ResetTimer()
	var touches uint64
	for i := 0; i < b.N; i++ {
		res, err := cmcp.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		touches += res.Run.Total(cmcp.Touches)
	}
	b.ReportMetric(float64(touches)/b.Elapsed().Seconds(), "touches/s")
}

// BenchmarkSimulateFIFO measures engine throughput under FIFO + PSPT.
func BenchmarkSimulateFIFO(b *testing.B) {
	benchSimulate(b, cmcp.PolicySpec{Kind: cmcp.FIFO}, cmcp.PSPT)
}

// BenchmarkSimulateLRU measures engine throughput with the scanner
// running (the heaviest configuration).
func BenchmarkSimulateLRU(b *testing.B) {
	benchSimulate(b, cmcp.PolicySpec{Kind: cmcp.LRU}, cmcp.PSPT)
}

// BenchmarkSimulateCMCP measures engine throughput under the paper's
// policy.
func BenchmarkSimulateCMCP(b *testing.B) {
	benchSimulate(b, cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.875}, cmcp.PSPT)
}

// BenchmarkSimulateRegularPT measures engine throughput with broadcast
// shootdowns (regular shared page tables).
func BenchmarkSimulateRegularPT(b *testing.B) {
	benchSimulate(b, cmcp.PolicySpec{Kind: cmcp.FIFO}, cmcp.RegularPT)
}

// BenchmarkSimulateFIFOParallel is BenchmarkSimulateFIFO on the
// epoch-parallel engine: compare the pair to read the speedup (the
// Results are bit-identical; only wall time may differ).
func BenchmarkSimulateFIFOParallel(b *testing.B) {
	benchSimulateEngine(b, cmcp.PolicySpec{Kind: cmcp.FIFO}, cmcp.PSPT, cmcp.ParallelEngine)
}

// BenchmarkSimulateCMCPParallel is BenchmarkSimulateCMCP on the
// epoch-parallel engine.
func BenchmarkSimulateCMCPParallel(b *testing.B) {
	benchSimulateEngine(b, cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.875}, cmcp.PSPT, cmcp.ParallelEngine)
}

// benchTraceCfg is the shared configuration of the tracing-overhead
// benchmark pair below.
func benchTraceCfg() cmcp.Config {
	return cmcp.Config{
		Cores:       56,
		Workload:    cmcp.SCALE().Scale(0.1),
		MemoryRatio: 0.5,
		Tables:      cmcp.PSPT,
		Policy:      cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.875},
		Seed:        1,
	}
}

// BenchmarkSimulateTraceDisabled is the flight-recorder overhead
// guard's baseline: the identical run with Probe nil, where every
// instrumented site costs exactly one nil-check branch. Compare
// against BenchmarkSimulateTraceEnabled (and against the pre-probe
// BenchmarkSimulateCMCP history): the disabled path must stay within
// noise (≤2%) of the seed baseline.
func BenchmarkSimulateTraceDisabled(b *testing.B) {
	cfg := benchTraceCfg()
	b.ResetTimer()
	var touches uint64
	for i := 0; i < b.N; i++ {
		res, err := cmcp.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		touches += res.Run.Total(cmcp.Touches)
	}
	b.ReportMetric(float64(touches)/b.Elapsed().Seconds(), "touches/s")
}

// BenchmarkSimulateTraceEnabled measures the same run with the flight
// recorder and sampler live — the price of full observability.
func BenchmarkSimulateTraceEnabled(b *testing.B) {
	cfg := benchTraceCfg()
	rec := cmcp.NewRecorder(cmcp.RecorderConfig{SampleEvery: 100_000})
	cfg.Probe = rec
	b.ResetTimer()
	var touches, events uint64
	for i := 0; i < b.N; i++ {
		rec.Reset()
		res, err := cmcp.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		touches += res.Run.Total(cmcp.Touches)
		events += uint64(len(rec.Events())) + rec.Dropped()
	}
	b.ReportMetric(float64(touches)/b.Elapsed().Seconds(), "touches/s")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkSimulateHistDisabled is the histogram overhead guard's
// baseline: the identical run with Config.Hist false, where every
// instrumented site costs exactly one nil-check branch. The perf-smoke
// CI job runs this next to BenchmarkSimulateHistEnabled; the disabled
// path must stay within noise (<3%) of the pre-histogram baseline.
func BenchmarkSimulateHistDisabled(b *testing.B) {
	benchHist(b, false)
}

// BenchmarkSimulateHistEnabled measures the same run with the latency
// histograms recording — the price of distribution telemetry.
func BenchmarkSimulateHistEnabled(b *testing.B) {
	benchHist(b, true)
}

func benchHist(b *testing.B, enabled bool) {
	b.Helper()
	cfg := benchTraceCfg()
	cfg.Hist = enabled
	b.ResetTimer()
	var touches uint64
	for i := 0; i < b.N; i++ {
		res, err := cmcp.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		touches += res.Run.Total(cmcp.Touches)
	}
	b.ReportMetric(float64(touches)/b.Elapsed().Seconds(), "touches/s")
}

// BenchmarkAblationNoPSPT quantifies the PSPT design choice from
// DESIGN.md: identical workload and policy, regular tables vs PSPT.
// The reported metric is the simulated runtime ratio (regular/PSPT) —
// the factor the per-core tables buy at 56 cores.
func BenchmarkAblationNoPSPT(b *testing.B) {
	mk := func(tables cmcp.TableKind) cmcp.Config {
		return cmcp.Config{
			Cores:       56,
			Workload:    cmcp.BT().Scale(0.1),
			MemoryRatio: cmcp.Constraint("bt.B"),
			Tables:      tables,
			Policy:      cmcp.PolicySpec{Kind: cmcp.FIFO},
			Seed:        1,
		}
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		results, err := cmcp.RunMany([]cmcp.Config{mk(cmcp.RegularPT), mk(cmcp.PSPT)}, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(results[0].Runtime) / float64(results[1].Runtime)
	}
	b.ReportMetric(ratio, "regular/PSPT-runtime")
}

// BenchmarkAblationNoAging quantifies CMCP's aging mechanism: the same
// run with aging effectively disabled (one sweep far beyond the run).
func BenchmarkAblationNoAging(b *testing.B) {
	base := cmcp.Config{
		Cores:       56,
		Workload:    cmcp.SCALE().Scale(0.1),
		MemoryRatio: cmcp.Constraint("SCALE"),
		Tables:      cmcp.PSPT,
		Policy:      cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.875},
		Seed:        1,
	}
	noAging := base
	cost := cmcp.DefaultCostModel()
	cost.AgePeriod = 1 << 60 // never fires
	noAging.Cost = cost
	var ratio float64
	for i := 0; i < b.N; i++ {
		results, err := cmcp.RunMany([]cmcp.Config{noAging, base}, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(results[0].Runtime) / float64(results[1].Runtime)
	}
	b.ReportMetric(ratio, "noaging/aging-runtime")
}

// BenchmarkDynamicP quantifies the dynamic-p tuner (the paper's future
// work) against the hand-tuned static p.
func BenchmarkDynamicP(b *testing.B) {
	static := cmcp.Config{
		Cores:       56,
		Workload:    cmcp.LU().Scale(0.1),
		MemoryRatio: cmcp.Constraint("lu.B"),
		Tables:      cmcp.PSPT,
		Policy:      cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.625},
		Seed:        1,
	}
	dynamic := static
	dynamic.Policy = cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.5, DynamicP: true}
	var ratio float64
	for i := 0; i < b.N; i++ {
		results, err := cmcp.RunMany([]cmcp.Config{dynamic, static}, 0)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(results[0].Runtime) / float64(results[1].Runtime)
	}
	b.ReportMetric(ratio, "dynamic/static-runtime")
}

// BenchmarkKNLInterconnect compares the KNC (PCIe) and KNL (on-package
// near/far memory) transfer models under the same constraint — the
// paper's conclusion expects, and this confirms, that faster links
// raise absolute performance while CMCP's shootdown-avoidance
// advantage persists.
func BenchmarkKNLInterconnect(b *testing.B) {
	mk := func(cost cmcp.CostModel, kind cmcp.PolicyKind) cmcp.Config {
		return cmcp.Config{
			Cores:       56,
			Workload:    cmcp.BT().Scale(0.1),
			MemoryRatio: cmcp.Constraint("bt.B"),
			Tables:      cmcp.PSPT,
			Policy:      cmcp.PolicySpec{Kind: kind, P: 0.5},
			Cost:        cost,
			Seed:        1,
		}
	}
	var speedup, margin float64
	for i := 0; i < b.N; i++ {
		results, err := cmcp.RunMany([]cmcp.Config{
			mk(cmcp.DefaultCostModel(), cmcp.FIFO),
			mk(cmcp.KNLCostModel(), cmcp.FIFO),
			mk(cmcp.KNLCostModel(), cmcp.CMCP),
		}, 0)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(results[0].Runtime) / float64(results[1].Runtime)
		margin = float64(results[1].Runtime)/float64(results[2].Runtime) - 1
	}
	b.ReportMetric(speedup, "knc/knl-runtime")
	b.ReportMetric(100*margin, "knl-cmcp-gain-%")
}
