package cmcp_test

import (
	"fmt"
	"log"

	"cmcp"
)

// ExampleSimulate runs the paper's headline comparison on a small
// configuration: CMCP versus FIFO on the SCALE stencil with half the
// footprint resident.
func ExampleSimulate() {
	base := cmcp.Config{
		Cores:       8,
		Workload:    cmcp.SCALE().Scale(0.05),
		MemoryRatio: 0.5,
		Tables:      cmcp.PSPT,
		Seed:        1,
	}
	fifo := base
	fifo.Policy = cmcp.PolicySpec{Kind: cmcp.FIFO}
	cm := base
	cm.Policy = cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.875}

	rf, err := cmcp.Simulate(fifo)
	if err != nil {
		log.Fatal(err)
	}
	rc, err := cmcp.Simulate(cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CMCP faster than FIFO:", rc.Runtime < rf.Runtime)
	fmt.Println("CMCP fewer remote TLB invalidations:",
		rc.Run.Total(cmcp.RemoteTLBInvalidations) < rf.Run.Total(cmcp.RemoteTLBInvalidations))
	// Output:
	// CMCP faster than FIFO: true
	// CMCP fewer remote TLB invalidations: true
}

// ExampleSimulate_regularPT shows the page-table comparison: regular
// shared tables broadcast every shootdown, PSPT hits only the mapping
// cores.
func ExampleSimulate_regularPT() {
	base := cmcp.Config{
		Cores:       8,
		Workload:    cmcp.CG().Scale(0.05),
		MemoryRatio: 0.4,
		Policy:      cmcp.PolicySpec{Kind: cmcp.FIFO},
		Seed:        2,
	}
	regular := base
	regular.Tables = cmcp.RegularPT
	pspt := base
	pspt.Tables = cmcp.PSPT

	rr, err := cmcp.Simulate(regular)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := cmcp.Simulate(pspt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PSPT fewer invalidations:",
		rp.Run.Total(cmcp.RemoteTLBInvalidations) < rr.Run.Total(cmcp.RemoteTLBInvalidations))
	fmt.Println("regular tables expose a sharing histogram:", rr.Sharing != nil)
	fmt.Println("PSPT exposes a sharing histogram:", rp.Sharing != nil)
	// Output:
	// PSPT fewer invalidations: true
	// regular tables expose a sharing histogram: false
	// PSPT exposes a sharing histogram: true
}

// ExampleOPTFaults records a trace and bounds every online policy with
// Belady's optimum.
func ExampleOPTFaults() {
	tr, err := cmcp.CaptureTrace(cmcp.CG().Scale(0.03), 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	capacity := (int(tr.MaxVPN()) + 1) / 2
	opt, err := cmcp.OPTFaults(tr, capacity, cmcp.Size4k)
	if err != nil {
		log.Fatal(err)
	}
	fifo, err := cmcp.CountPolicyFaults(tr, capacity, cmcp.Size4k, cmcp.NewFIFOPolicy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("OPT is a lower bound:", opt.Faults <= fifo)
	// Output:
	// OPT is a lower bound: true
}

// ExampleWorkload_Scale shrinks a paper workload for quick runs.
func ExampleWorkload_Scale() {
	wl := cmcp.BT()
	small := wl.Scale(0.25)
	fmt.Println(small.Pages < wl.Pages, small.TotalTouches < wl.TotalTouches)
	// Output:
	// true true
}
