module cmcp

go 1.22
