package cmcp_test

import (
	"strings"
	"testing"

	"cmcp"
)

func TestPublicAPISimulate(t *testing.T) {
	res, err := cmcp.Simulate(cmcp.Config{
		Cores:       8,
		Workload:    cmcp.CG().Scale(0.05),
		MemoryRatio: 0.4,
		Tables:      cmcp.PSPT,
		Policy:      cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.25},
		Seed:        1,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime == 0 || res.PolicyName != "CMCP" {
		t.Errorf("runtime=%d policy=%s", res.Runtime, res.PolicyName)
	}
	if res.Run.Total(cmcp.PageFaults) == 0 {
		t.Error("constrained run must fault")
	}
	if res.Run.Total(cmcp.BytesIn) == 0 {
		t.Error("faults move data")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if len(cmcp.Workloads()) != 4 {
		t.Error("four paper workloads expected")
	}
	for _, name := range []string{"bt.B", "lu.B", "cg.B", "SCALE"} {
		wl, ok := cmcp.WorkloadByName(name)
		if !ok {
			t.Errorf("%s missing", name)
		}
		if err := wl.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		c := cmcp.Constraint(name)
		if c <= 0 || c >= 1 {
			t.Errorf("%s constraint %v", name, c)
		}
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	cost := cmcp.DefaultCostModel()
	if cost.TouchCompute == 0 || cost.DMABytesPerCycle == 0 {
		t.Error("cost model defaults empty")
	}
	tlbCfg := cmcp.DefaultTLBConfig()
	if tlbCfg.L1Entries4k == 0 {
		t.Error("TLB defaults empty")
	}
	if cmcp.Size64k.Span() != 16 || cmcp.Size2M.Span() != 512 {
		t.Error("page size spans")
	}
}

func TestPublicAPIStandalonePolicies(t *testing.T) {
	fifo := cmcp.NewFIFOPolicy()
	fifo.PTESetup(1)
	fifo.PTESetup(2)
	if v, ok := fifo.Victim(); !ok || v != 1 {
		t.Error("standalone FIFO")
	}

	host := constHost{}
	pol := cmcp.NewCMCPPolicy(host, 10, 0.5)
	if pol.Name() != "CMCP" {
		t.Error("standalone CMCP name")
	}
	pol.PTESetup(1)
	if pol.Resident() != 1 {
		t.Error("standalone CMCP bookkeeping")
	}

	lru := cmcp.NewLRUPolicy(host)
	lru.PTESetup(1)
	if lru.Resident() != 1 {
		t.Error("standalone LRU")
	}
}

// constHost is a trivial PolicyHost for standalone policy use.
type constHost struct{}

func (constHost) CoreMapCount(cmcp.PageID) int  { return 2 }
func (constHost) ScanAccessed(cmcp.PageID) bool { return false }

func TestPublicAPICustomPolicyFactory(t *testing.T) {
	var built bool
	cfg := cmcp.Config{
		Cores:       2,
		Workload:    cmcp.Workload{Name: "t", Pages: 128, TotalTouches: 4096, Sharing: []cmcp.ShareBand{{Cores: 1, Frac: 1}}},
		MemoryRatio: 0.5,
		Policy: cmcp.PolicySpec{
			Factory: func(h cmcp.PolicyHost) cmcp.Policy {
				built = true
				return cmcp.NewFIFOPolicy()
			},
		},
		Seed: 1,
	}
	res, err := cmcp.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !built {
		t.Error("custom factory not used")
	}
	if res.PolicyName != "FIFO" {
		t.Errorf("policy = %s", res.PolicyName)
	}
}

func TestPublicAPIExperiment(t *testing.T) {
	rep, err := cmcp.RunExperiment("fig8", cmcp.ExperimentOptions{Scale: 0.03, Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "fig8") {
		t.Error("report rendering")
	}
	if _, err := cmcp.RunExperiment("nope", cmcp.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestPublicAPIAuditedRun(t *testing.T) {
	aud := cmcp.NewAuditor(cmcp.AuditorConfig{Every: 512})
	_, err := cmcp.Simulate(cmcp.Config{
		Cores:       4,
		Workload:    cmcp.LU().Scale(0.03),
		MemoryRatio: 0.5,
		Tables:      cmcp.PSPT,
		Policy:      cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.5},
		Seed:        4,
		Verify:      true,
		Audit:       aud,
	})
	if err != nil {
		t.Fatal(err)
	}
	if aud.Audits() == 0 {
		t.Error("auditor never ran")
	}
	if len(aud.Violations()) != 0 {
		t.Errorf("violations: %v", aud.Violations())
	}
}

func TestPublicAPIErrorClasses(t *testing.T) {
	for _, e := range []error{cmcp.ErrNoVictim, cmcp.ErrBadVictim, cmcp.ErrMapFailed, cmcp.ErrCorruption} {
		if e == nil {
			t.Fatal("nil error class")
		}
	}
}

func TestPublicAPIRunManyDeterminism(t *testing.T) {
	cfg := cmcp.Config{
		Cores:       4,
		Workload:    cmcp.SCALE().Scale(0.03),
		MemoryRatio: 0.5,
		Tables:      cmcp.PSPT,
		Policy:      cmcp.PolicySpec{Kind: cmcp.LRU},
		Seed:        9,
	}
	results, err := cmcp.RunMany([]cmcp.Config{cfg, cfg}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Runtime != results[1].Runtime {
		t.Error("identical configs must produce identical results")
	}
}
