package cmcp_test

import (
	"testing"

	"cmcp"
)

// TestPaperHeadlineOrdering verifies the paper's central result
// end-to-end at a moderate scale: for every workload under its Fig. 7
// memory constraint, CMCP (at the per-workload p) outperforms FIFO, and
// FIFO outperforms the scanning LRU approximation.
func TestPaperHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const cores = 24
	ps := map[string]float64{"bt.B": 0.5, "lu.B": 0.625, "cg.B": 0.25, "SCALE": 0.875}
	for _, wl := range cmcp.Workloads() {
		spec := wl.Scale(0.08)
		mk := func(pol cmcp.PolicySpec) cmcp.Config {
			return cmcp.Config{
				Cores:       cores,
				Workload:    spec,
				MemoryRatio: cmcp.Constraint(spec.Name),
				Tables:      cmcp.PSPT,
				Policy:      pol,
				Seed:        11,
				Verify:      true,
			}
		}
		results, err := cmcp.RunMany([]cmcp.Config{
			mk(cmcp.PolicySpec{Kind: cmcp.CMCP, P: ps[spec.Name]}),
			mk(cmcp.PolicySpec{Kind: cmcp.FIFO}),
			mk(cmcp.PolicySpec{Kind: cmcp.LRU}),
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		cm, fifo, lru := results[0], results[1], results[2]
		if cm.Runtime >= fifo.Runtime {
			t.Errorf("%s: CMCP (%d) must beat FIFO (%d)", spec.Name, cm.Runtime, fifo.Runtime)
		}
		if lru.Runtime <= fifo.Runtime {
			t.Errorf("%s: LRU (%d) must lose to FIFO (%d)", spec.Name, lru.Runtime, fifo.Runtime)
		}
		// Table 1 relationships.
		if lru.Run.Total(cmcp.PageFaults) >= fifo.Run.Total(cmcp.PageFaults) {
			t.Errorf("%s: LRU faults must be below FIFO's", spec.Name)
		}
		if lru.Run.Total(cmcp.RemoteTLBInvalidations) <= fifo.Run.Total(cmcp.RemoteTLBInvalidations) {
			t.Errorf("%s: LRU remote invalidations must exceed FIFO's", spec.Name)
		}
		if cm.Run.Total(cmcp.RemoteTLBInvalidations) >= fifo.Run.Total(cmcp.RemoteTLBInvalidations) {
			t.Errorf("%s: CMCP remote invalidations must be the lowest", spec.Name)
		}
	}
}

// TestRegularPTScalingCollapse verifies the PSPT substrate claim:
// adding cores helps PSPT but stops helping regular page tables.
func TestRegularPTScalingCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	spec := cmcp.BT().Scale(0.08)
	mk := func(cores int, tables cmcp.TableKind) cmcp.Config {
		return cmcp.Config{
			Cores:       cores,
			Workload:    spec,
			MemoryRatio: cmcp.Constraint(spec.Name),
			Tables:      tables,
			Policy:      cmcp.PolicySpec{Kind: cmcp.FIFO},
			Seed:        5,
		}
	}
	results, err := cmcp.RunMany([]cmcp.Config{
		mk(8, cmcp.PSPT), mk(56, cmcp.PSPT),
		mk(8, cmcp.RegularPT), mk(56, cmcp.RegularPT),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	psptSpeedup := float64(results[0].Runtime) / float64(results[1].Runtime)
	regSpeedup := float64(results[2].Runtime) / float64(results[3].Runtime)
	if psptSpeedup < 3 {
		t.Errorf("PSPT 8->56 core speedup = %.2fx, want >3x", psptSpeedup)
	}
	if regSpeedup > psptSpeedup/1.5 {
		t.Errorf("regular PT speedup %.2fx too close to PSPT %.2fx — the collapse is the point",
			regSpeedup, psptSpeedup)
	}
}

// TestAdaptivePageSizeTracksEnvelope verifies the §5.7 extension: the
// adaptive manager lands within a reasonable factor of the best fixed
// page size at both a mild and a harsh memory constraint, and crucially
// avoids the 2 MB deep-constraint catastrophe.
func TestAdaptivePageSizeTracksEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	spec := cmcp.BT().Scale(0.1)
	for _, ratio := range []float64{0.95, 0.5} {
		mk := func(size cmcp.PageSize, adaptive bool) cmcp.Config {
			return cmcp.Config{
				Cores:            16,
				Workload:         spec,
				MemoryRatio:      ratio,
				PageSize:         size,
				AdaptivePageSize: adaptive,
				Tables:           cmcp.PSPT,
				Policy:           cmcp.PolicySpec{Kind: cmcp.FIFO},
				Seed:             3,
			}
		}
		results, err := cmcp.RunMany([]cmcp.Config{
			mk(cmcp.Size4k, false), mk(cmcp.Size64k, false),
			mk(cmcp.Size2M, false), mk(0, true),
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		best := results[0].Runtime
		for _, r := range results[:3] {
			if r.Runtime < best {
				best = r.Runtime
			}
		}
		adaptive := results[3].Runtime
		// The adapter is a heuristic: require it within 1.5x of the best
		// fixed size (it is usually much closer at realistic scales).
		if float64(adaptive) > 1.5*float64(best) {
			t.Errorf("ratio %.2f: adaptive %d vs best fixed %d (>50%% off the envelope)",
				ratio, adaptive, best)
		}
		// At the harsh constraint 2 MB thrashes; adaptive must not.
		if ratio == 0.5 {
			if twoMB := results[2].Runtime; float64(adaptive) > 0.5*float64(twoMB) {
				t.Errorf("adaptive %d did not avoid the 2MB catastrophe %d", adaptive, twoMB)
			}
		}
	}
}
