// Package cmcp is a deterministic many-core virtual-memory simulator
// reproducing "CMCP: A Novel Page Replacement Policy for System Level
// Hierarchical Memory Management on Many-cores" (Gerofi et al.,
// HPDC 2014).
//
// The simulated machine is a Knights Corner-like co-processor: up to 60
// cores with per-core multi-size-class TLBs, a small on-board device
// memory backed by host RAM over a PCIe-like link, and an OS-level
// paging subsystem that moves 4 kB / 64 kB / 2 MB pages between the two
// transparently. Two page-table organizations are available — regular
// shared tables and per-core Partially Separated Page Tables (PSPT) —
// and six replacement policies: FIFO, a Linux-style LRU approximation,
// the paper's CMCP, CLOCK, LFU and Random.
//
// # Quick start
//
//	res, err := cmcp.Simulate(cmcp.Config{
//	    Cores:       56,
//	    Workload:    cmcp.SCALE(),
//	    MemoryRatio: 0.5,                       // device holds half the footprint
//	    Tables:      cmcp.PSPT,
//	    Policy:      cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.875},
//	})
//
// Results carry the paper's Table 1 counters (page faults, remote TLB
// invalidations, dTLB misses, and more) per core plus the simulated
// runtime in cycles. The experiments subcommands of cmd/cmcpsim
// regenerate every figure and table of the paper's evaluation.
//
// Everything is deterministic: the same Config yields bit-identical
// results on any platform.
package cmcp

import (
	"io"

	"cmcp/internal/check"
	"cmcp/internal/coord"
	"cmcp/internal/core"
	"cmcp/internal/experiments"
	"cmcp/internal/fault"
	"cmcp/internal/hist"
	"cmcp/internal/machine"
	"cmcp/internal/obs"
	"cmcp/internal/policy"
	"cmcp/internal/sim"
	"cmcp/internal/stats"
	"cmcp/internal/sweep"
	"cmcp/internal/telemetry"
	"cmcp/internal/tlb"
	"cmcp/internal/trace"
	"cmcp/internal/vm"
	"cmcp/internal/workload"
)

// Core simulation types.
type (
	// Config describes one simulation run; see Simulate.
	Config = machine.Config
	// Result is a completed run's measurements.
	Result = machine.Result
	// PolicySpec selects and parameterizes the replacement policy.
	PolicySpec = machine.PolicySpec
	// PolicyKind names a built-in replacement policy.
	PolicyKind = machine.PolicyKind
	// TableKind selects the page-table organization.
	TableKind = vm.TableKind
	// EngineKind selects the simulation engine (Config.Engine).
	EngineKind = machine.EngineKind
	// PageSize is a mapping granularity (4 kB, 64 kB or 2 MB).
	PageSize = sim.PageSize
	// Cycles is simulated time in 1.053 GHz CPU cycles.
	Cycles = sim.Cycles
	// CoreID identifies a simulated CPU core.
	CoreID = sim.CoreID
	// PageID is a virtual page number in 4 kB units.
	PageID = sim.PageID
	// CostModel is the cycle-cost calibration; see DefaultCostModel.
	CostModel = sim.CostModel
	// TLBConfig is the per-core TLB geometry.
	TLBConfig = tlb.Config
	// Run is the per-core counter record of a simulation.
	Run = stats.Run
	// Counter identifies one per-core event counter in a Run.
	Counter = stats.Counter
	// Workload is the parametric description of an application.
	Workload = workload.Spec
	// ShareBand declares a page-sharing band of a Workload.
	ShareBand = workload.ShareBand
	// Policy is the replacement policy interface for custom policies
	// (install one via PolicySpec.Factory).
	Policy = policy.Policy
	// PolicyHost is the kernel-side interface handed to policies.
	PolicyHost = policy.Host
	// PolicyFactory builds a policy against the kernel's PolicyHost.
	PolicyFactory = vm.PolicyFactory
)

// Replacement policies.
const (
	// FIFO is the first-in first-out baseline.
	FIFO = machine.FIFO
	// LRU is the Linux-style active/inactive approximation whose
	// access-bit scanning generates the remote TLB invalidations the
	// paper measures.
	LRU = machine.LRU
	// CMCP is the paper's Core-Map Count based Priority policy.
	CMCP = machine.CMCP
	// CLOCK is the second-chance algorithm.
	CLOCK = machine.CLOCK
	// LFU is a sampled least-frequently-used approximation.
	LFU = machine.LFU
	// Random evicts uniformly at random (sanity baseline).
	Random = machine.Random
)

// Simulation engines. Both produce bit-identical Results for every
// Config; the parallel engine trades single-thread simplicity for
// speculative multi-core execution (see DESIGN.md §13).
const (
	// SerialEngine is the reference event loop (the default).
	SerialEngine = machine.SerialEngine
	// ParallelEngine is the epoch-parallel engine: speculative per-core
	// probe phases with journaled rollback, committed by a serial sweep.
	ParallelEngine = machine.ParallelEngine
)

// ParseEngine parses an engine name ("serial", "parallel"; "" means
// serial) as accepted by cmcpsim -engine.
func ParseEngine(s string) (EngineKind, error) { return machine.ParseEngine(s) }

// Page-table organizations.
const (
	// RegularPT shares one set of page tables among all cores; TLB
	// shootdowns must broadcast and faults serialize on one lock.
	RegularPT = vm.RegularPT
	// PSPT gives each core a private table for the computation area:
	// precise shootdowns, per-page locks, free core-map counts.
	PSPT = vm.PSPTKind
)

// Mapping granularities of the simulated Xeon Phi MMU.
const (
	// Size4k is the base 4 kB page.
	Size4k = sim.Size4k
	// Size64k is the Phi's experimental 64 kB PTE-group page.
	Size64k = sim.Size64k
	// Size2M is the 2 MB large page.
	Size2M = sim.Size2M
)

// Per-core counters most users read from a Run (the full set lives in
// internal/stats; these are the ones Table 1 of the paper reports).
const (
	// PageFaults counts major faults (page-ins from the host).
	PageFaults = stats.PageFaults
	// MinorFaults counts PSPT sibling-PTE copies.
	MinorFaults = stats.MinorFaults
	// RemoteTLBInvalidations counts invalidation requests received.
	RemoteTLBInvalidations = stats.RemoteTLBInvalidations
	// DTLBMisses counts first-level data TLB misses.
	DTLBMisses = stats.DTLBMisses
	// Evictions counts victim pages swapped out.
	Evictions = stats.Evictions
	// BytesIn counts host-to-device transfer volume.
	BytesIn = stats.BytesIn
	// BytesOut counts device-to-host write-back volume.
	BytesOut = stats.BytesOut
	// Touches counts simulated page touches executed.
	Touches = stats.Touches
)

// Recovery counters fed by fault injection (zero on fault-free runs).
const (
	// FaultsInjected counts injector trips that took effect.
	FaultsInjected = stats.FaultsInjected
	// RecoveryRetries counts recovery retry decisions of every kind.
	RecoveryRetries = stats.RecoveryRetries
	// TxRollbacks counts page-in transactions rolled back.
	TxRollbacks = stats.TxRollbacks
	// QuarantinedFrames counts device frames permanently retired.
	QuarantinedFrames = stats.QuarantinedFrames
	// ResentShootdowns counts invalidation IPIs re-sent after ack loss.
	ResentShootdowns = stats.ResentShootdowns
	// DegradedPages counts pages dropped to regular-table semantics.
	DegradedPages = stats.DegradedPages
)

// NUMA-aware machines: set Config.Topology and the flat core ring
// becomes a multi-socket machine — per-socket IPI rings joined by a
// costed interconnect, remote-socket page-walk penalties for shared
// tables, and numaPTE-style per-socket replicas of PSPT entries with
// consult-driven migration (DESIGN.md §16). A nil (or single-socket)
// Topology is bit-identical to a pre-NUMA build.
type Topology = sim.Topology

// DefaultTopology returns a sockets × coresPerSocket topology with
// calibrated cross-socket costs. Tune the returned fields before
// Simulate; Sockets <= 1 behaves exactly like a nil Topology.
func DefaultTopology(sockets, coresPerSocket int) *Topology {
	return sim.DefaultTopology(sockets, coresPerSocket)
}

// NUMA counters fed by multi-socket runs (zero on flat runs).
const (
	// FilteredShootdowns counts shootdown targets PSPT's core map
	// filtered out of the broadcast (cores that never mapped the page).
	FilteredShootdowns = stats.FilteredShootdowns
	// CrossSocketIPIs counts shootdown IPIs that crossed a socket
	// boundary and paid the interconnect charge.
	CrossSocketIPIs = stats.CrossSocketIPIs
	// RemoteWalks counts page walks into a table homed on another
	// socket (regular shared tables only; PSPT tables are socket-local).
	RemoteWalks = stats.RemoteWalks
	// RemotePTConsults counts PSPT consults that missed every local
	// replica and crossed the interconnect.
	RemotePTConsults = stats.RemotePTConsults
	// ReplicaSyncs counts per-socket replica synchronizations charged
	// by PTE updates during eviction.
	ReplicaSyncs = stats.ReplicaSyncs
	// PTMigrations counts page-table pages migrated toward the socket
	// that keeps consulting them.
	PTMigrations = stats.PTMigrations
)

// Simulate executes one deterministic run to completion.
func Simulate(cfg Config) (*Result, error) { return machine.Simulate(cfg) }

// RunMany executes independent runs concurrently (parallelism <= 0
// means GOMAXPROCS), preserving input order.
func RunMany(cfgs []Config, parallelism int) ([]*Result, error) {
	return machine.RunMany(cfgs, parallelism)
}

// DefaultCostModel returns the calibrated Knights Corner cycle costs.
func DefaultCostModel() CostModel { return sim.DefaultCostModel() }

// KNLCostModel returns a Knights Landing-like model: on-package near
// memory instead of PCIe (the paper's §7 outlook). CPU-side costs are
// unchanged, so the shootdown economics — and CMCP's advantage —
// carry over.
func KNLCostModel() CostModel { return sim.KNLCostModel() }

// DefaultTLBConfig returns the KNC-like TLB geometry.
func DefaultTLBConfig() TLBConfig { return tlb.DefaultConfig() }

// BT returns the NAS Block Tridiagonal workload model (B-class
// footprint; use Workload.Scale to shrink or grow it).
func BT() Workload { return workload.BT() }

// LU returns the NAS Lower-Upper Gauss-Seidel workload model.
func LU() Workload { return workload.LU() }

// CG returns the NAS Conjugate Gradient workload model.
func CG() Workload { return workload.CG() }

// SCALE returns the RIKEN climate-stencil workload model.
func SCALE() Workload { return workload.SCALE() }

// Workloads returns the paper's four applications in evaluation order.
func Workloads() []Workload { return workload.Apps() }

// WorkloadByName resolves "bt.B", "lu.B", "cg.B" or "SCALE".
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// Multi-tenant machines: set Config.Tenants (instead of Config.Workload)
// and the run becomes many address spaces — one per tenant, each with
// its own replacement-policy instance — contending for the shared
// device frame pool under a deterministic Zipfian request driver.
// Frame ownership is tracked in a coremap-style table; cross-tenant
// eviction pressure follows proportional weights or hard partitions.
// Per-tenant counters and fault-service histograms land in
// Result.Run.Tenants; a nil Config.Tenants run is bit-identical to a
// pre-tenant build.
type (
	// TenantSpec describes a multi-tenant machine (Config.Tenants).
	TenantSpec = workload.TenantSpec
	// TenantSet is the per-tenant counter and fault-latency record of a
	// multi-tenant run (Run.Tenants; nil on single-tenant runs).
	TenantSet = stats.TenantSet
	// TenantCounter identifies one per-tenant event counter.
	TenantCounter = stats.TenantCounter
)

// Per-tenant counters (indexes into a TenantSet).
const (
	// TenantTouches counts page touches issued by the tenant.
	TenantTouches = stats.TenantTouches
	// TenantFaults counts the tenant's major page faults.
	TenantFaults = stats.TenantFaults
	// TenantMinorFaults counts the tenant's PSPT sibling-PTE copies.
	TenantMinorFaults = stats.TenantMinorFaults
	// TenantEvictions counts frames evicted FROM the tenant.
	TenantEvictions = stats.TenantEvictions
	// TenantEvictionsCaused counts evictions the tenant's faults forced
	// onto OTHER tenants (the cross-tenant pressure metric).
	TenantEvictionsCaused = stats.TenantEvictionsCaused
)

// DefaultTenantSpec returns a ready-to-run tenant spec: `tenants`
// address spaces of 16 pages each under Zipfian tenant selection with
// exponent zipfS, rotating the hot set every churnEvery touches per
// core (0 = no churn). Tune the returned fields before Simulate.
func DefaultTenantSpec(tenants int, zipfS float64, churnEvery int) TenantSpec {
	return workload.DefaultTenantSpec(tenants, zipfS, churnEvery)
}

// TenantCounterNames returns the per-tenant counter names in
// TenantCounter order (the same table the JSON forms use).
func TenantCounterNames() []string { return stats.TenantCounterNames() }

// NewCMCPPolicy builds a standalone CMCP policy instance for library
// embedding (outside the simulator): host supplies core-map counts,
// capacity is the resident-mapping capacity, p the prioritized ratio.
func NewCMCPPolicy(host PolicyHost, capacity int, p float64) Policy {
	return core.New(host, capacity, core.WithP(p))
}

// NewFIFOPolicy builds a standalone FIFO policy instance.
func NewFIFOPolicy() Policy { return policy.NewFIFO() }

// NewLRUPolicy builds a standalone Linux-style LRU instance.
func NewLRUPolicy(host PolicyHost) Policy { return policy.NewLRU(host) }

// Offline trace analysis (record a workload's access stream, replay it,
// and compare online policies against Belady's clairvoyant optimum).
type (
	// Trace is a recorded page-access stream.
	Trace = trace.Trace
	// TraceRecord is one access of a Trace.
	TraceRecord = trace.Record
	// OPTResult summarizes a Belady/MIN analysis.
	OPTResult = trace.OPTResult
	// CountingPolicy is the policy slice offline fault counting needs;
	// every Policy satisfies it.
	CountingPolicy = trace.CountingPolicy
)

// CaptureTrace records the deterministic access trace of a workload at
// the given core count and seed.
func CaptureTrace(wl Workload, cores int, seed uint64) (*Trace, error) {
	layout, err := wl.Build(cores)
	if err != nil {
		return nil, err
	}
	return trace.Capture(layout, seed), nil
}

// OPTFaults computes Belady's optimal fault count for a trace at the
// given mapping capacity and page size — the lower bound no online
// policy can beat.
func OPTFaults(t *Trace, capacity int, size PageSize) (OPTResult, error) {
	return trace.OPT(t, capacity, size)
}

// CountPolicyFaults replays a trace through an online policy and
// returns its fault count (costs and TLBs ignored; comparable with
// OPTFaults).
func CountPolicyFaults(t *Trace, capacity int, size PageSize, pol CountingPolicy) (uint64, error) {
	return trace.CountFaults(t, capacity, size, pol)
}

// NewTrueLRUPolicy returns an exact-LRU counting policy for offline
// replay (perfect reference information — unattainable online).
func NewTrueLRUPolicy() CountingPolicy { return trace.NewTrueLRU() }

// ExperimentOptions control the paper-reproduction harness.
type ExperimentOptions = experiments.Options

// ExperimentReport is one regenerated table/figure.
type ExperimentReport = experiments.Report

// RunExperiment regenerates one of the paper's results — "fig6",
// "fig7", "fig8", "fig9", "fig10", "table1", "sense" — or runs an
// extension experiment: "numa" (2-socket shootdown-filtering grid) or
// "tenants" (multi-tenant policy grid; the one consumer of
// ExperimentOptions.Tenants).
func RunExperiment(id string, o ExperimentOptions) (*ExperimentReport, error) {
	return experiments.ByID(id, o)
}

// RunAllExperiments regenerates every table and figure in paper order.
func RunAllExperiments(o ExperimentOptions) ([]*ExperimentReport, error) {
	return experiments.All(o)
}

// Constraint returns the per-workload memory ratio used by the Fig. 7 /
// Table 1 experiments (the paper's 50-60 %-of-native methodology).
func Constraint(workloadName string) float64 { return experiments.Constraint(workloadName) }

// Sweep infrastructure: experiment grids run through a checkpointed,
// resumable, shardable runner (internal/sweep). ExperimentOptions
// exposes its knobs (Journal, Imports, Shard/Shards, Progress); the
// types below let callers observe a sweep and inspect its journals.
type (
	// SweepProgress is a thread-safe sweep progress meter; attach one
	// via ExperimentOptions.Progress and poll Snapshot or String from
	// any goroutine.
	SweepProgress = obs.Progress
	// SweepProgressSnapshot is one consistent progress reading.
	SweepProgressSnapshot = obs.ProgressSnapshot
	// SweepEntry is one completed run recorded in a sweep journal.
	SweepEntry = sweep.Entry
)

// NewSweepProgress returns an empty progress meter.
func NewSweepProgress() *SweepProgress { return obs.NewProgress() }

// SweepKey returns the deterministic content key identifying cfg's run
// in sweep journals. A custom Policy.Factory must be registered first
// (RegisterSweepPolicy) so its name gives the config a stable
// cross-process identity; unregistered factories are rejected.
func SweepKey(cfg Config) (string, error) { return sweep.Key(cfg) }

// RegisterSweepPolicy gives a custom Policy.Factory a stable name for
// sweep content keys and coordinator dispatch. Register the same name
// to the same (top-level) factory function in every process of a
// distributed sweep — the worker resolves the name through its own
// registry, and a drift guard rejects any skew. Panics on a duplicate
// name or an already-registered factory.
func RegisterSweepPolicy(name string, factory PolicyFactory) { sweep.RegisterPolicy(name, factory) }

// ReadSweepJournal reads a sweep journal, skipping malformed entry
// lines (e.g. the torn last line of a killed sweep) and reporting how
// many were dropped. A missing or mismatched header fails the read.
func ReadSweepJournal(r io.Reader) ([]SweepEntry, int, error) {
	return sweep.ReadJournalLenient(r)
}

// CompactSweepJournal rewrites the journal at path to out, keeping only
// the last entry per content key, dropping torn lines, and emitting
// entries in sorted key order — the canonical form: any two journals
// holding the same runs compact to byte-identical files (what the
// chaos CI job cmps). path == out compacts in place via atomic rename.
func CompactSweepJournal(path, out string) (SweepCompactStats, error) {
	return sweep.CompactJournal(path, out)
}

// SweepRuntimesByKey reads the simulated runtime of every run recorded
// in the journal at path, keyed by content key — the input to
// longest-first scheduling. A missing journal yields an empty map.
func SweepRuntimesByKey(path string) (map[string]Cycles, error) {
	return sweep.RuntimesByKey(path)
}

// Distributed sweeps: a Coordinator owns a sweep grid and leases runs
// over HTTP to SweepWorker processes, with heartbeats, capped-backoff
// retries, work stealing, and poisoned-key quarantine (internal/coord).
// Durable state lives only in the sweep journal, so any mix of worker
// kill -9s and coordinator restarts still merges bit-identically to a
// local sweep. Wire one in as ExperimentOptions.Runner, or use
// cmcpsim -coordinate / -worker.
type (
	// SweepBackend is the pluggable journal store (JSONL file,
	// in-memory, or fsynced directory tree); see SweepOptions-style
	// use via sweep.Options.Backend in internal docs.
	SweepBackend = sweep.Backend
	// SweepCompactStats reports what CompactSweepJournal kept/dropped.
	SweepCompactStats = sweep.CompactStats
	// SweepRunner executes a planned batch of sweep runs; the
	// Coordinator implements it.
	SweepRunner = sweep.Runner
	// Coordinator is the crash-tolerant sweep coordinator.
	Coordinator = coord.Coordinator
	// CoordinatorOptions tune lease TTL, retry budget and backoff.
	CoordinatorOptions = coord.Options
	// CoordinatorStats snapshots the lease table and lifetime counters.
	CoordinatorStats = coord.Stats
	// PoisonedKey is one quarantined config in the coordinator report.
	PoisonedKey = coord.PoisonedKey
	// SweepWorker is the coordinator's client: lease, heartbeat, run,
	// post result, repeat.
	SweepWorker = coord.Worker
)

// NewCoordinator builds an idle coordinator; Start(addr) serves the
// lease protocol, and passing it as ExperimentOptions.Runner (it
// implements SweepRunner) dispatches experiment grids to workers.
func NewCoordinator(opt CoordinatorOptions) *Coordinator { return coord.New(opt) }

// NewFileSweepBackend opens an append-mode JSONL journal backend (the
// same format Journal paths use).
func NewFileSweepBackend(path string) SweepBackend { return sweep.NewFileBackend(path) }

// NewMemSweepBackend returns an in-memory journal backend for tests
// and ephemeral sweeps.
func NewMemSweepBackend() SweepBackend { return sweep.NewMemBackend() }

// NewDirSweepBackend returns a directory-tree journal backend: one
// file per content key, written atomically (temp + fsync + rename), so
// a torn write can never corrupt a previously durable entry.
func NewDirSweepBackend(dir string) SweepBackend { return sweep.NewDirBackend(dir) }

// Latency histograms: set Config.Hist and the run records log₂
// distributions of page-fault service time, eviction+write-back
// latency, shootdown ack round-trip, lock-wait duration and shootdown
// fan-out into Run.Hists. Like Probe/Audit, the instrumentation is
// read-only — counters and runtimes stay bit-identical — but unlike
// them Hist is plain data: it sweeps, journals and Repeats-merges
// (replicate histograms pool rather than average, keeping the merge
// exact).
type (
	// Histogram is one fixed-bucket log₂ histogram (exact integer
	// bucket bounds, mergeable, deterministic).
	Histogram = hist.H
	// HistogramSummary is a histogram's compact rendering:
	// count/mean/max and the p50/p90/p99/p999 quantile upper bounds.
	HistogramSummary = hist.Summary
	// HistID identifies one per-run histogram in a HistSet.
	HistID = stats.HistID
	// HistSet is the fixed array of a run's histograms; Run.Hists is
	// nil unless Config.Hist was set.
	HistSet = stats.HistSet
)

// Per-run histograms (indexes into a HistSet).
const (
	// FaultServiceHist is end-to-end page-fault service time in cycles,
	// including lock waits, eviction work and fault-injection retries.
	FaultServiceHist = stats.FaultServiceHist
	// EvictionHist is victim eviction + write-back latency in cycles.
	EvictionHist = stats.EvictionHist
	// ShootdownHist is the per-target shootdown ack round-trip in
	// cycles, re-sends included.
	ShootdownHist = stats.ShootdownHist
	// LockWaitHist is non-zero lock/DMA-bus wait duration in cycles.
	LockWaitHist = stats.LockWaitHist
	// FanoutHist is the remote-core fan-out of shootdown broadcasts.
	FanoutHist = stats.FanoutHist
	// CrossSocketFanoutHist is the remote-socket fan-out of shootdown
	// broadcasts on multi-socket runs (empty on flat runs).
	CrossSocketFanoutHist = stats.CrossSocketFanoutHist
)

// HistNames returns the histogram names in HistID order (the same
// string table the JSON forms, sweep journals and /metrics use).
func HistNames() []string { return stats.HistNames() }

// Live telemetry: a TelemetryServer exposes Prometheus text-format
// /metrics (counters + histograms), /progress JSON and net/http/pprof
// while runs execute. It is push-only — completed runs are published
// into an atomically swapped immutable snapshot, so HTTP readers never
// touch (or perturb) live simulation state. cmcpsim wires one behind
// -serve; library users feed it from ExperimentOptions.OnResult.
type (
	// TelemetryServer is the live /metrics, /progress and pprof server.
	TelemetryServer = telemetry.Server
	// TelemetrySnapshot is one immutable published aggregate.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryCoordStats mirrors CoordinatorStats for the telemetry
	// server's cmcp_coord_* metric families; attach a live source via
	// TelemetryServer.SetCoordSource (cmcpsim does this under
	// -coordinate -serve).
	TelemetryCoordStats = telemetry.CoordStats
)

// NewTelemetryServer builds a telemetry server; progress (may be nil)
// backs /progress. Call Start(addr) to listen and Publish per run.
func NewTelemetryServer(progress *SweepProgress) *TelemetryServer {
	return telemetry.New(progress)
}

// ValidateMetricsExposition schema-checks a Prometheus text-format
// /metrics body served by a TelemetryServer: every registered family
// present with correct TYPE and cumulative histogram buckets, and no
// unregistered families (the drift guard CI scrapes against).
func ValidateMetricsExposition(r io.Reader) error { return telemetry.ValidateExposition(r) }

// Observability: attach a Recorder through Config.Probe to capture a
// flight-recorder event trace and periodic time-series samples, then
// export them for offline analysis (JSONL, Perfetto, CSV).
type (
	// Recorder is the per-run flight recorder and sampler. One
	// Recorder serves one run at a time; do not share across RunMany.
	Recorder = obs.Recorder
	// RecorderConfig sizes the event ring and the sampling interval.
	RecorderConfig = obs.Config
	// TraceEvent is one flight-recorder entry.
	TraceEvent = obs.Event
	// TraceEventType identifies a kind of TraceEvent.
	TraceEventType = obs.EventType
	// TraceSample is one periodic time-series point.
	TraceSample = obs.Sample
)

// Flight-recorder event types (see the obs package for semantics).
const (
	// EvFault is a major page fault (page-in from the host).
	EvFault = obs.EvFault
	// EvMinorFault is a PSPT sibling-PTE copy fault.
	EvMinorFault = obs.EvMinorFault
	// EvEviction is a victim unmap; Arg is the remote shootdown count.
	EvEviction = obs.EvEviction
	// EvWriteBack is a dirty eviction's copy-out; Arg is bytes.
	EvWriteBack = obs.EvWriteBack
	// EvShootdown is a remote TLB invalidation; Arg is target cores.
	EvShootdown = obs.EvShootdown
	// EvScanTick is one scanner-lane policy tick; Arg is its cost.
	EvScanTick = obs.EvScanTick
	// EvPromotion is CMCP admitting a page to the priority group.
	EvPromotion = obs.EvPromotion
	// EvDemotion is CMCP draining a page back to the FIFO list.
	EvDemotion = obs.EvDemotion
	// EvLockWait is a non-zero wait on a lock or the DMA bus.
	EvLockWait = obs.EvLockWait
	// EvRollback is a page-in transaction rolled back by an injected
	// transfer failure or corruption; Arg is the attempt number.
	EvRollback = obs.EvRollback
	// EvQuarantine is a corrupt frame being retired; Arg is the frame.
	EvQuarantine = obs.EvQuarantine
	// EvResend is a shootdown IPI re-sent after a dropped ack; Arg is
	// the re-send count for that target.
	EvResend = obs.EvResend
	// EvLockStuck is an injected stuck page lock; Arg is the stall.
	EvLockStuck = obs.EvLockStuck
	// EvPSPTSkew is injected PSPT bookkeeping skew; Arg is the core
	// whose phantom bit was planted.
	EvPSPTSkew = obs.EvPSPTSkew
	// EvDegraded is a page dropped to regular-table semantics after
	// skew repair.
	EvDegraded = obs.EvDegraded
	// EvPTMigration is a PSPT page-table page migrating to the socket
	// that keeps consulting it; Arg is the new home socket.
	EvPTMigration = obs.EvPTMigration
	// EvReplicaSync is an eviction synchronizing remote-socket PSPT
	// replicas; Arg is the remote socket count.
	EvReplicaSync = obs.EvReplicaSync
)

// NewRecorder builds a flight recorder to attach via Config.Probe.
func NewRecorder(cfg RecorderConfig) *Recorder { return obs.NewRecorder(cfg) }

// TraceMeta is the optional metadata header line of a JSONL event
// trace; its Dropped count is how replay tools detect that the
// recorder's bounded ring overflowed and the trace is incomplete.
type TraceMeta = obs.TraceMeta

// WriteTraceJSONL exports recorded events as JSON Lines.
func WriteTraceJSONL(w io.Writer, events []TraceEvent) error { return obs.WriteJSONL(w, events) }

// WriteTraceJSONLWithMeta exports recorded events as JSON Lines behind
// a TraceMeta header carrying the recorder's drop count. Older readers
// skip the header line; ReadTraceJSONLMeta returns it.
func WriteTraceJSONLWithMeta(w io.Writer, events []TraceEvent, dropped uint64) error {
	return obs.WriteJSONLWithMeta(w, events, dropped)
}

// ReadTraceJSONLMeta loads a JSONL event trace leniently (like
// ReadTraceJSONLLenient) and additionally returns its metadata header,
// or nil for traces written without one.
func ReadTraceJSONLMeta(r io.Reader) ([]TraceEvent, *TraceMeta, int, error) {
	return obs.ReadJSONLMeta(r)
}

// ReadTraceJSONL loads a JSONL event trace written by WriteTraceJSONL.
// The first malformed line fails the read; see ReadTraceJSONLLenient.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) { return obs.ReadJSONL(r) }

// ReadTraceJSONLLenient loads a JSONL event trace, skipping malformed,
// truncated or unknown-type lines and reporting how many were dropped —
// for traces from interrupted runs or concatenated logs.
func ReadTraceJSONLLenient(r io.Reader) ([]TraceEvent, int, error) {
	return obs.ReadJSONLLenient(r)
}

// WriteChromeTrace exports events and samples as Chrome trace_event
// JSON, loadable in Perfetto or chrome://tracing (one track per core).
func WriteChromeTrace(w io.Writer, events []TraceEvent, samples []TraceSample, cores int) error {
	return obs.WriteChromeTrace(w, events, samples, cores)
}

// WriteSamplesCSV exports the sampler time series as CSV.
func WriteSamplesCSV(w io.Writer, samples []TraceSample) error {
	return obs.WriteSamplesCSV(w, samples)
}

// TraceTimeline renders events as a bucketed text timeline.
func TraceTimeline(events []TraceEvent, buckets int) string { return obs.Timeline(events, buckets) }

// Invariant auditing: attach an Auditor through Config.Audit to
// cross-check the engine's five bookkeeping views (policy residency,
// page tables, device frames, TLBs, adaptive-size counters) against
// each other every few thousand events; any violation fails the run.
type (
	// Auditor is the cross-module invariant auditor. One Auditor serves
	// one run at a time; do not share across RunMany.
	Auditor = check.Auditor
	// AuditorConfig sets the audit period and the violation cap.
	AuditorConfig = check.Config
	// AuditViolation is one detected invariant breach.
	AuditViolation = check.Violation
)

// NewAuditor builds an invariant auditor to attach via Config.Audit.
func NewAuditor(cfg AuditorConfig) *Auditor { return check.New(cfg) }

// Simulation-failure classes. Simulate and RunMany return errors that
// wrap one of these when the simulated kernel's bookkeeping diverges
// (for example a custom policy offering a non-resident victim, or no
// victim at all while device memory is exhausted); match them with
// errors.Is.
var (
	// ErrNoVictim: device memory exhausted and the policy had no victim.
	ErrNoVictim = vm.ErrNoVictim
	// ErrBadVictim: the policy offered a victim that is not resident.
	ErrBadVictim = vm.ErrBadVictim
	// ErrMapFailed: installing a translation failed (overlapping or
	// misaligned mapping).
	ErrMapFailed = vm.ErrMapFailed
	// ErrCorruption: page content returned from the host does not match
	// what was swapped out (Config.Verify runs only).
	ErrCorruption = vm.ErrCorruption
	// ErrIOFailure: injected transient transfer failures exhausted the
	// retry budget (fault-injection runs only).
	ErrIOFailure = vm.ErrIOFailure
)

// Fault injection: attach a FaultConfig through Config.Faults to inject
// deterministic device faults — transient page-in/page-out transfer
// failures, frame corruption on swap, dropped shootdown acks, stuck
// page locks, PSPT bookkeeping skew — which the simulated kernel's
// recovery machinery (transactional page migration with capped backoff,
// frame quarantine, ack re-send, degraded-mode fallback) survives
// instead of aborting. Injection is seeded per event kind: runs with
// the same Config replay identically, recovery counters included, and
// a nil (or all-zero-rate) FaultConfig is bit-identical to a fault-free
// run.
type (
	// FaultConfig seeds and rates the deterministic fault injector.
	FaultConfig = fault.Config
	// FaultKind identifies one injectable fault class.
	FaultKind = fault.Kind
)

// Injectable fault kinds (indexes into FaultConfig.Rates).
const (
	// FaultPageIn is a transient host-to-device transfer failure.
	FaultPageIn = fault.PageIn
	// FaultPageOut is a transient device-to-host write-back failure.
	FaultPageOut = fault.PageOut
	// FaultCorrupt is frame corruption during page-in; the frame is
	// quarantined and device capacity shrinks.
	FaultCorrupt = fault.Corrupt
	// FaultDropAck is a lost TLB-shootdown acknowledgement.
	FaultDropAck = fault.DropAck
	// FaultStuckLock is a page lock that wedges until timed out.
	FaultStuckLock = fault.StuckLock
	// FaultMapSkew is PSPT core-set bookkeeping skew (repaired by the
	// auditor through degraded mode).
	FaultMapSkew = fault.MapSkew
)

// UniformFaults returns a FaultConfig injecting every fault kind at the
// same per-event rate under the given seed.
func UniformFaults(seed uint64, rate float64) *FaultConfig {
	return fault.Uniform(seed, rate)
}
