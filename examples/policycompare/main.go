// Policycompare sweeps every replacement policy across the paper's
// four workloads under their Figure 7 memory constraints and prints a
// runtime/faults/invalidations comparison — a condensed Table 1 + Fig 7.
//
// The expected ordering on every workload is the paper's headline:
// CMCP fastest, FIFO next, the access-bit scanners (LRU/CLOCK/LFU)
// behind despite fewer faults, Random worst-or-thereabouts.
package main

import (
	"fmt"
	"log"

	"cmcp"
)

func main() {
	const cores = 56
	policies := []cmcp.PolicySpec{
		{Kind: cmcp.CMCP, P: -1},
		{Kind: cmcp.FIFO},
		{Kind: cmcp.LRU},
		{Kind: cmcp.CLOCK},
		{Kind: cmcp.LFU},
		{Kind: cmcp.Random},
	}

	for _, wl := range cmcp.Workloads() {
		spec := wl.Scale(0.2) // keep the demo quick
		var cfgs []cmcp.Config
		for _, pol := range policies {
			cfgs = append(cfgs, cmcp.Config{
				Cores:       cores,
				Workload:    spec,
				MemoryRatio: cmcp.Constraint(spec.Name),
				Tables:      cmcp.PSPT,
				Policy:      pol,
				Seed:        7,
			})
		}
		results, err := cmcp.RunMany(cfgs, 0)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%s  (%d cores, %.0f%% memory)\n", spec.Name, cores,
			100*cmcp.Constraint(spec.Name))
		fmt.Printf("  %-7s %12s %14s %16s\n", "policy", "Mcycles", "faults/core", "rem.invals/core")
		base := results[1].Runtime // FIFO
		for _, res := range results {
			fmt.Printf("  %-7s %12.1f %14.0f %16.0f   (%+.1f%% vs FIFO)\n",
				res.PolicyName,
				float64(res.Runtime)/1e6,
				res.Run.PerCoreAvg(cmcp.PageFaults),
				res.Run.PerCoreAvg(cmcp.RemoteTLBInvalidations),
				100*(float64(base)/float64(res.Runtime)-1))
		}
	}
}
