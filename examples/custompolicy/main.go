// Custompolicy shows the library's policy extension point: implement
// the cmcp.Policy interface and install it via PolicySpec.Factory. The
// example policy, "MRU", evicts the most-recently-faulted page —
// occasionally useful for cyclic sweeps, usually terrible — and races
// it against FIFO and CMCP.
package main

import (
	"fmt"
	"log"

	"cmcp"
)

// mru tracks resident pages on a stack and evicts the newest.
type mru struct {
	stack []cmcp.PageID
	index map[cmcp.PageID]int
}

func newMRU() *mru { return &mru{index: make(map[cmcp.PageID]int)} }

func (m *mru) Name() string { return "MRU" }

func (m *mru) PTESetup(base cmcp.PageID) {
	if _, ok := m.index[base]; ok {
		return
	}
	m.index[base] = len(m.stack)
	m.stack = append(m.stack, base)
}

func (m *mru) Victim() (cmcp.PageID, bool) {
	if len(m.stack) == 0 {
		return 0, false
	}
	base := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	delete(m.index, base)
	return base, true
}

func (m *mru) Remove(base cmcp.PageID) {
	i, ok := m.index[base]
	if !ok {
		return
	}
	last := len(m.stack) - 1
	moved := m.stack[last]
	m.stack[i] = moved
	m.index[moved] = i
	m.stack = m.stack[:last]
	delete(m.index, base)
}

func (m *mru) Tick(cmcp.Cycles) {}

func (m *mru) Resident() int { return len(m.stack) }

func main() {
	base := cmcp.Config{
		Cores:       32,
		Workload:    cmcp.LU().Scale(0.2),
		MemoryRatio: 0.6,
		Tables:      cmcp.PSPT,
		Seed:        3,
	}

	configs := map[string]cmcp.Config{}

	mruCfg := base
	mruCfg.Policy = cmcp.PolicySpec{
		Factory: func(cmcp.PolicyHost) cmcp.Policy { return newMRU() },
	}
	configs["MRU (custom)"] = mruCfg

	fifoCfg := base
	fifoCfg.Policy = cmcp.PolicySpec{Kind: cmcp.FIFO}
	configs["FIFO"] = fifoCfg

	cmcpCfg := base
	cmcpCfg.Policy = cmcp.PolicySpec{Kind: cmcp.CMCP, P: 0.625}
	configs["CMCP"] = cmcpCfg

	for _, name := range []string{"MRU (custom)", "FIFO", "CMCP"} {
		res, err := cmcp.Simulate(configs[name])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s runtime %7.1f Mcycles, %5.0f faults/core\n",
			name, float64(res.Runtime)/1e6, res.Run.PerCoreAvg(cmcp.PageFaults))
	}
}
