// Distributed runs the same experiment sweep twice — once locally,
// once through the crash-tolerant coordinator with a small worker
// fleet — and proves the headline invariant: a sweep executed by
// leased HTTP workers merges bit-identically to the serial run.
//
// The coordinator owns the grid and the journal; workers are
// stateless lease/heartbeat/result clients, so killing one mid-run
// costs at most a lease TTL before the key is requeued (with capped
// exponential backoff) or stolen by an idle peer. Here the fleet is
// three in-process goroutines for a self-contained demo, but each
// worker speaks plain HTTP — `cmcpsim -worker http://host:port` runs
// the identical client across machines.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"cmcp"
)

func main() {
	dir, err := os.MkdirTemp("", "cmcp-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	refJournal := filepath.Join(dir, "ref.jsonl")
	coordJournal := filepath.Join(dir, "coord.jsonl")

	// Reference: the ordinary in-process sweep, journaled.
	opt := cmcp.ExperimentOptions{Quick: true, Scale: 0.02, Seed: 42}
	opt.Journal = refJournal
	if _, err := cmcp.RunExperiment("fig9", opt); err != nil {
		log.Fatal(err)
	}

	// Coordinated: same grid, but every run is leased over HTTP.
	coordinator := cmcp.NewCoordinator(cmcp.CoordinatorOptions{})
	if err := coordinator.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	base := "http://" + coordinator.Addr()
	fmt.Printf("coordinator serving on %s\n", base)

	var fleet sync.WaitGroup
	for i := 0; i < 3; i++ {
		fleet.Add(1)
		go func(i int) {
			defer fleet.Done()
			w := &cmcp.SweepWorker{Base: base, Name: fmt.Sprintf("worker-%d", i)}
			if err := w.Run(); err != nil {
				log.Printf("worker-%d: %v", i, err)
			}
		}(i)
	}

	opt.Journal = coordJournal
	opt.Runner = coordinator
	report, err := cmcp.RunExperiment("fig9", opt)
	if err != nil {
		log.Fatal(err)
	}
	coordinator.Finish() // lets idle workers exit with "sweep done"
	fleet.Wait()
	coordinator.Close()

	s := coordinator.Stats()
	fmt.Printf("fleet of 3 finished: %d keys done, %d leases granted, %d heartbeats, %d expired, %d stolen, %d poisoned\n",
		s.KeysDone, s.LeasesGranted, s.Heartbeats, s.LeasesExpired, s.LeasesStolen, s.KeysPoisoned)

	// The invariant: compact both journals (canonical last-per-key,
	// sorted, re-marshaled) and compare bytes.
	refOut, coordOut := refJournal+".c", coordJournal+".c"
	if _, err := cmcp.CompactSweepJournal(refJournal, refOut); err != nil {
		log.Fatal(err)
	}
	if _, err := cmcp.CompactSweepJournal(coordJournal, coordOut); err != nil {
		log.Fatal(err)
	}
	a, err := os.ReadFile(refOut)
	if err != nil {
		log.Fatal(err)
	}
	b, err := os.ReadFile(coordOut)
	if err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(a, b) {
		fmt.Println("compacted journals are BIT-IDENTICAL: distributed == serial")
	} else {
		fmt.Println("journals DIVERGED — determinism bug!")
		os.Exit(1)
	}

	fmt.Println()
	fmt.Print(report)
}
